(* Benchmark harness.

   Part 1: Bechamel micro-benchmarks — one Test.make per operation that a
   table or figure in the paper depends on (crypto primitive costs behind
   Figure 8 and the Section 7.2 table; FBS per-datagram send/receive costs
   behind Figure 8's FBS rows; key-derivation and cache operations behind
   Figure 11; FAM classification behind Section 7.1; keying-scheme
   comparisons behind Sections 2.1/2.2).

   Part 2: the figure harness itself — prints the same rows/series the
   paper's evaluation reports (Figures 8-14 plus the crypto table and
   ablations), via the shared [Fbsr_experiments] library. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let datagram = Fbsr_experiments.Fixture.mtu_payload (* an MTU-sized payload *)
let des_key = Fbsr_crypto.Des.of_string "k3yk3yk3"
let iv = "initvect"
let mac_key = String.make 16 'k'
let suite_paper = Fbsr_fbs.Suite.paper_md5_des
let suite_nop = Fbsr_fbs.Suite.nop

(* A pair of FBS engines with a synchronous local resolver, pre-warmed so
   the steady-state benches measure the cached fast path (Figure 6); the
   setup itself lives in [Fbsr_experiments.Fixture]. *)
let fbs_fixture suite ~secret =
  let p, attrs, wire = Fbsr_experiments.Fixture.warm_pair ~suite ~secret () in
  ( p.Fbsr_experiments.Fixture.sender,
    p.Fbsr_experiments.Fixture.receiver,
    p.Fbsr_experiments.Fixture.src,
    attrs,
    wire )

let es_paper, ed_paper, src_paper, attrs_paper, wire_paper =
  fbs_fixture suite_paper ~secret:true

(* Cross-flow batched sealing fixture: one sender with [Des_bitslice.lanes]
   warm flows (distinct source ports) and a batch sized to auto-flush
   exactly when every lane is occupied.  The bench rotates through the
   flows, so the measured per-call cost is the amortized per-datagram cost
   of the bitsliced path: 62 enqueues plus one 63-chain lockstep flush. *)
let batch_pair, batch_attrs = Fbsr_experiments.Fixture.warm_flows ~suite:suite_paper ()
let send_batch = Fbsr_fbs.Engine.Batch.create batch_pair.Fbsr_experiments.Fixture.sender
let batch_i = ref 0

(* Batched receive fixture: the decap mirror of the sealing batch.  One
   pre-sealed wire per warm flow (repeat receives stay fresh — the
   fixture engines run with strict replay off), rotated through a
   [Batch_rx] sized to auto-flush exactly when every lane is occupied,
   so the per-call cost is the amortized per-datagram cost of the
   cross-flow bitsliced open: 62 prologue+enqueues plus one 63-chain
   sweep-and-verify flush. *)
let rx_batch_wires =
  Array.map
    (fun attrs ->
      match
        Fbsr_fbs.Engine.send_sync batch_pair.Fbsr_experiments.Fixture.sender
          ~now:60.0 ~attrs ~secret:true ~payload:datagram
      with
      | Ok wire -> wire
      | Error e ->
          failwith
            (Fmt.str "bench fixture: rx batch seal: %a" Fbsr_fbs.Engine.pp_error e))
    batch_attrs

let rx_batch =
  Fbsr_fbs.Engine.Batch_rx.create batch_pair.Fbsr_experiments.Fixture.receiver

let rx_batch_i = ref 0

(* Bitsliced-kernel fixtures: one full flush of [lanes] MTU chains under
   distinct keys, and one MTU ciphertext for the receive-side slicing. *)
let bs_jobs =
  let n = Fbsr_crypto.Des_bitslice.lanes in
  let padded = Fbsr_crypto.Des.padded_length (String.length datagram) in
  Array.init n (fun i ->
      let key = Fbsr_crypto.Des.of_string (Printf.sprintf "bskey%03d" i) in
      Fbsr_crypto.Des_bitslice.cbc_job ~key ~iv ~src:datagram ~src_pos:0
        ~src_len:(String.length datagram)
        ~dst:(Bytes.create padded) ~dst_pos:0)

let des_ct_1460 = Fbsr_crypto.Des.encrypt_cbc ~iv des_key datagram

let es_nop, _, _, attrs_nop, _ = fbs_fixture suite_nop ~secret:true

let es_auth, ed_auth, src_auth, attrs_auth, wire_auth =
  fbs_fixture suite_paper ~secret:false

let es_desmac, ed_desmac, src_desmac, attrs_desmac, wire_desmac =
  fbs_fixture Fbsr_fbs.Suite.des_mac_des ~secret:true

let es_des3, ed_des3, src_des3, attrs_des3, wire_des3 =
  fbs_fixture Fbsr_fbs.Suite.md5_des3 ~secret:true

(* The non-DES leaf suite added through the armor registry alone. *)
let es_sha1ctr, ed_sha1ctr, src_sha1ctr, attrs_sha1ctr, wire_sha1ctr =
  fbs_fixture Fbsr_fbs.Suite.hmac_sha1_ctr ~secret:true

(* Combined fast path fixture (Section 7.2): warm table + sealed sends. *)
let fp_engine, fp_table, fp_flow_key =
  let p = Fbsr_experiments.Fixture.engine_pair ~suite:suite_paper () in
  let s = p.Fbsr_experiments.Fixture.src and d = p.Fbsr_experiments.Fixture.dst in
  let es = p.Fbsr_experiments.Fixture.sender in
  let alloc = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create 55) in
  let fp = Fbsr_fbs_ip.Fast_path.create ~alloc () in
  (* Prime one entry with a derived key. *)
  let sfl =
    match
      Fbsr_fbs_ip.Fast_path.lookup fp ~now:60.0 ~protocol:17
        ~src:(Fbsr_fbs.Principal.to_string s) ~src_port:1000
        ~dst:(Fbsr_fbs.Principal.to_string d) ~dst_port:2000
    with
    | Fbsr_fbs_ip.Fast_path.Miss sfl -> sfl
    | Fbsr_fbs_ip.Fast_path.Hit (sfl, _) -> sfl
  in
  let key = ref "" in
  Fbsr_fbs.Engine.derive_flow_key es ~sfl ~src:s ~dst:d (function
    | Ok k -> key := k
    | Error _ -> failwith "bench fixture: derive failed");
  Fbsr_fbs_ip.Fast_path.install_key fp ~sfl ~flow_key:!key;
  (es, fp, !key)

let fp_src = "10.9.0.1"
let fp_dst = "10.9.0.2"

(* Keying fixtures for the modexp benches. *)
let dh_small = Lazy.force Fbsr_crypto.Dh.test_group
let dh_1024 = Lazy.force Fbsr_crypto.Dh.oakley2
let bench_rng = Fbsr_util.Rng.create 7
let dh_small_priv = Fbsr_crypto.Dh.gen_private dh_small bench_rng
let dh_small_pub = Fbsr_crypto.Dh.public dh_small dh_small_priv
let dh_1024_priv = Fbsr_crypto.Dh.gen_private dh_1024 bench_rng
let dh_1024_pub = Fbsr_crypto.Dh.public dh_1024 dh_1024_priv
let bbs = Fbsr_crypto.Bbs.create ~modulus_bits:256 bench_rng ~seed:"bench-bbs-seed"

let triple_hash (sfl, a, b) =
  let open Fbsr_util.Crc32 in
  let h = update_int64 0 sfl in
  let h = update h a 0 (String.length a) in
  update h b 0 (String.length b)

let triple_equal (s1, a1, b1) (s2, a2, b2) =
  Int64.equal s1 s2 && String.equal a1 a2 && String.equal b1 b2

let cache : (int64 * string * string, string) Fbsr_fbs.Cache.t =
  Fbsr_fbs.Cache.create ~sets:128 ~hash:triple_hash ~equal:triple_equal ()

let () = Fbsr_fbs.Cache.insert cache (42L, "10.9.0.2", "10.9.0.1") "flowkey"
let alloc_for_fam = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create 77)
let fam_policy = Fbsr_fbs.Policy_five_tuple.make ~alloc:alloc_for_fam ()

let fam_attrs =
  Fbsr_fbs.Fam.attrs ~protocol:6 ~src_port:1234 ~dst_port:80
    ~src:(Fbsr_fbs.Principal.of_string "10.9.0.1")
    ~dst:(Fbsr_fbs.Principal.of_string "10.9.0.2")
    ()

let lcg = Fbsr_util.Lcg.create 99

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

let crypto_tests =
  Test.make_grouped ~name:"crypto"
    [
      (* Section 7.2 table: CryptoLib DES-CBC 549 kB/s, MD5 7060 kB/s. *)
      Test.make ~name:"des-cbc-1460B"
        (stage (fun () -> Fbsr_crypto.Des.encrypt_cbc ~iv des_key datagram));
      Test.make ~name:"md5-1460B" (stage (fun () -> Fbsr_crypto.Md5.digest datagram));
      (* Bitsliced kernel (DESIGN.md §6c): a full 63-chain lockstep flush
         (divide by [lanes] for the per-datagram cost) and the
         single-ciphertext decrypt that slices one chain across lanes. *)
      Test.make ~name:"des-bitsliced-cbc-63x1460B"
        (stage (fun () -> Fbsr_crypto.Des_bitslice.encrypt_cbc_jobs bs_jobs));
      Test.make ~name:"des-bitsliced-decrypt-1460B"
        (stage (fun () ->
             Fbsr_crypto.Des_bitslice.decrypt_cbc_sub ~iv des_key ~src:des_ct_1460
               ~pos:0 ~len:(String.length des_ct_1460)));
      Test.make ~name:"sha1-1460B" (stage (fun () -> Fbsr_crypto.Sha1.digest datagram));
      Test.make ~name:"prefix-mac-md5-1460B"
        (stage (fun () ->
             Fbsr_crypto.Mac.prefix Fbsr_crypto.Hash.md5 ~key:mac_key [ datagram ]));
      Test.make ~name:"hmac-md5-1460B"
        (stage (fun () ->
             Fbsr_crypto.Mac.hmac Fbsr_crypto.Hash.md5 ~key:mac_key [ datagram ]));
      (* Master key computation cost (MKC miss): one modular exponentiation. *)
      Test.make ~name:"dh-shared-61bit"
        (stage (fun () -> Fbsr_crypto.Dh.shared dh_small dh_small_priv dh_small_pub));
      Test.make ~name:"dh-shared-1024bit-oakley2"
        (stage (fun () -> Fbsr_crypto.Dh.shared dh_1024 dh_1024_priv dh_1024_pub));
      (* Per-datagram key generation under host-pair keying (Section 2.2). *)
      Test.make ~name:"bbs-8-bytes" (stage (fun () -> Fbsr_crypto.Bbs.bytes bbs 8));
      (* Confounder generation is nearly free (Section 5.3). *)
      Test.make ~name:"lcg-confounder" (stage (fun () -> Fbsr_util.Lcg.next_u32 lcg));
      Test.make ~name:"crc32-1460B" (stage (fun () -> Fbsr_util.Crc32.string datagram));
      (* Section 5.3's single-pass data-touching optimization. *)
      Test.make ~name:"mac+encrypt-fused-1460B"
        (stage (fun () ->
             Fbsr_crypto.Fused.mac_and_encrypt ~mac_key ~des_key ~iv
               ~prefix_parts:[ "conf"; "ts" ] datagram));
      Test.make ~name:"mac+encrypt-two-pass-1460B"
        (stage (fun () ->
             Fbsr_crypto.Fused.mac_then_encrypt ~mac_key ~des_key ~iv
               ~prefix_parts:[ "conf"; "ts" ] datagram));
    ]

let fbs_tests =
  Test.make_grouped ~name:"fbs"
    [
      (* Figure 8 FBS rows: per-datagram send/receive on the warm path.
         The send row goes through cross-flow batched sealing (the
         production gateway path): rotating over 63 warm flows, each call
         enqueues one deferred chain and every 63rd triggers the bitsliced
         flush, so the OLS slope is the amortized per-datagram cost.  The
         [-scalar-] row keeps the unbatched measurement for continuity. *)
      Test.make ~name:"send-des+md5-1460B"
        (stage (fun () ->
             let i = !batch_i in
             batch_i := if i + 1 = Array.length batch_attrs then 0 else i + 1;
             Fbsr_fbs.Engine.send_batched send_batch ~now:60.0
               ~attrs:(Array.unsafe_get batch_attrs i) ~secret:true ~payload:datagram
               (fun _ -> ())));
      Test.make ~name:"send-des+md5-scalar-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.send_sync es_paper ~now:60.0 ~attrs:attrs_paper
               ~secret:true ~payload:datagram));
      Test.make ~name:"receive-des+md5-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.receive_sync ed_paper ~now:60.0 ~src:src_paper
               ~wire:wire_paper));
      (* The receive-side twin of the batched send row: each call runs
         the scalar prologue and defers the body open; every 63rd call
         flushes one cross-flow bitsliced sweep over all lanes. *)
      Test.make ~name:"receive-des+md5-batched-1460B"
        (stage (fun () ->
             let i = !rx_batch_i in
             rx_batch_i := if i + 1 = Array.length rx_batch_wires then 0 else i + 1;
             Fbsr_fbs.Engine.receive_batched rx_batch ~now:60.0
               ~src:batch_pair.Fbsr_experiments.Fixture.src
               ~wire:(Array.unsafe_get rx_batch_wires i)
               (fun _ -> ())));
      Test.make ~name:"send-auth-only-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.send_sync es_auth ~now:60.0 ~attrs:attrs_auth
               ~secret:false ~payload:datagram));
      Test.make ~name:"receive-auth-only-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.receive_sync ed_auth ~now:60.0 ~src:src_auth
               ~wire:wire_auth));
      Test.make ~name:"send-nop-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.send_sync es_nop ~now:60.0 ~attrs:attrs_nop ~secret:true
               ~payload:datagram));
      (* Alternative suites: footnote 12's DES-for-everything, and 3DES. *)
      Test.make ~name:"send-desmac+des-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.send_sync es_desmac ~now:60.0 ~attrs:attrs_desmac
               ~secret:true ~payload:datagram));
      Test.make ~name:"send-md5+3des-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.send_sync es_des3 ~now:60.0 ~attrs:attrs_des3 ~secret:true
               ~payload:datagram));
      Test.make ~name:"receive-desmac+des-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.receive_sync ed_desmac ~now:60.0 ~src:src_desmac
               ~wire:wire_desmac));
      Test.make ~name:"receive-md5+3des-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.receive_sync ed_des3 ~now:60.0 ~src:src_des3
               ~wire:wire_des3));
      Test.make ~name:"send-hmacsha1+sha1ctr-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.send_sync es_sha1ctr ~now:60.0 ~attrs:attrs_sha1ctr
               ~secret:true ~payload:datagram));
      Test.make ~name:"receive-hmacsha1+sha1ctr-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.receive_sync ed_sha1ctr ~now:60.0 ~src:src_sha1ctr
               ~wire:wire_sha1ctr));
      (* Section 7.2's combined FST+TFKC probe vs the generic two-lookup
         path (the rest of send processing is identical). *)
      Test.make ~name:"fast-path-probe+seal-1460B"
        (stage (fun () ->
             match
               Fbsr_fbs_ip.Fast_path.lookup fp_table ~now:60.0 ~protocol:17 ~src:fp_src
                 ~src_port:1000 ~dst:fp_dst ~dst_port:2000
             with
             | Fbsr_fbs_ip.Fast_path.Hit (sfl, flow_key) ->
                 Fbsr_fbs.Engine.send_sealed fp_engine ~now:60.0 ~sfl ~flow_key
                   ~secret:true ~payload:datagram
             | Fbsr_fbs_ip.Fast_path.Miss _ -> failwith "unexpected miss"));
      Test.make ~name:"seal-only-1460B"
        (stage (fun () ->
             Fbsr_fbs.Engine.seal fp_engine ~now:60.0
               ~sfl:(Fbsr_fbs.Sfl.of_int64 42L) ~flow_key:fp_flow_key ~secret:true
               ~payload:datagram));
      (* Figure 11's unit of work: a flow-key cache probe. *)
      Test.make ~name:"cache-hit"
        (stage (fun () -> Fbsr_fbs.Cache.find cache (42L, "10.9.0.2", "10.9.0.1")));
      Test.make ~name:"cache-miss"
        (stage (fun () -> Fbsr_fbs.Cache.find cache (43L, "10.9.0.2", "10.9.0.1")));
      (* Section 7.1 policy: one FAM classification. *)
      Test.make ~name:"fam-five-tuple-map"
        (stage (fun () -> Fbsr_fbs.Policy_five_tuple.map fam_policy ~now:1.0 fam_attrs));
      (* Flow key derivation (TFKC miss, MKC hit). *)
      Test.make ~name:"flow-key-derivation"
        (stage (fun () ->
             Fbsr_fbs.Keying.flow_key ~hash:Fbsr_crypto.Hash.md5
               ~sfl:(Fbsr_fbs.Sfl.of_int64 77L) ~master:mac_key
               ~src:(Fbsr_fbs.Principal.of_string "10.9.0.1")
               ~dst:(Fbsr_fbs.Principal.of_string "10.9.0.2")));
      Test.make ~name:"header-encode+decode"
        (stage (fun () ->
             let h =
               {
                 Fbsr_fbs.Header.sfl = Fbsr_fbs.Sfl.of_int64 9L;
                 suite = suite_paper;
                 secret = true;
                 confounder = 0xdeadbeef;
                 timestamp = 12345;
                 mac = mac_key;
               }
             in
             Fbsr_fbs.Header.decode (Fbsr_fbs.Header.encode h ^ "body")));
    ]

let all_tests = Test.make_grouped ~name:"fbs-repro" [ crypto_tests; fbs_tests ]

(* ------------------------------------------------------------------ *)
(* Sharded-engine throughput rows                                      *)
(* ------------------------------------------------------------------ *)

(* Aggregate send throughput of the domain-sharded engine at 1/2/4/8
   shards.  Bechamel's OLS sampler wants one closure in a tight loop; a
   sharded dispatch has barrier semantics (classify, fan out, join), so
   these rows are timed directly: a fixed 256-datagram Zipf batch over
   1024 warm flows, dispatched [sharded_iters] times, reported as ns per
   datagram next to the bechamel rows (same "group/name" convention, so
   the regression gate covers them identically).  The iteration count is
   NOT reduced under --quick: the per-shard engine counters land in the
   artifact's counters object, and baseline (full) and CI (quick) runs
   must agree on them exactly.

   On a single-core runner the domain fan-out is pure overhead — the
   rows still exist (the gate checks their presence), but the 4x-vs-1x
   scaling assertion in bench_diff only arms when the artifact says
   [parallel] and [cores >= 4]. *)

let sharded_counts = [ 1; 2; 4; 8 ]
let sharded_batch = 256
let sharded_flows = 1024
let sharded_iters = 24

let sharded_jobs (p : Fbsr_experiments.Fixture.sharded) =
  let wl =
    Fbsr_traffic.Zipf_workload.create ~seed:123 ~flows:sharded_flows
      ~src:p.Fbsr_experiments.Fixture.sh_src
      ~dst:p.Fbsr_experiments.Fixture.sh_dst ()
  in
  Array.map
    (fun (attrs, _) -> (attrs, datagram))
    (Fbsr_traffic.Zipf_workload.batch wl sharded_batch)

let sharded_dispatch p jobs =
  ignore
    (Fbsr_fbs.Sharded.send_all p.Fbsr_experiments.Fixture.tx ~now:60.0
       ~secret:true jobs
      : (string, Fbsr_fbs.Engine.error) result array)

(* One timed run at [n] shards: returns (ns/datagram, the pair) so the
   4-shard pair can be kept for metrics registration. *)
let sharded_measure n =
  let p = Fbsr_experiments.Fixture.sharded_pair ~seed:(90 + n) ~nshards:n () in
  let jobs = sharded_jobs p in
  sharded_dispatch p jobs;
  (* warm: every flow key derived *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to sharded_iters do
    sharded_dispatch p jobs
  done;
  let t1 = Unix.gettimeofday () in
  let ns = (t1 -. t0) *. 1e9 /. float_of_int (sharded_iters * sharded_batch) in
  (ns, p)

(* The 4-shard contention tail: per-shard span recorders on a wall cost
   clock, p99 of the [engine.seal] stage across all shards. *)
let sharded_seal_p99 () =
  let recorders =
    Array.init 4 (fun i ->
        Fbsr_util.Span.create ~capacity:16384
          ~host:(Printf.sprintf "shard%d" i) ~cost_clock:Unix.gettimeofday ())
  in
  let p =
    Fbsr_experiments.Fixture.sharded_pair ~seed:97 ~nshards:4
      ~spans:(fun i -> recorders.(i))
      ()
  in
  let jobs = sharded_jobs p in
  for _ = 0 to sharded_iters do
    sharded_dispatch p jobs
  done;
  let spans = Fbsr_util.Span.collect (Array.to_list recorders) in
  match
    List.find_opt
      (fun (s : Fbsr_util.Span.stage_stat) -> s.Fbsr_util.Span.stat_stage = "engine.seal")
      (Fbsr_util.Span.stage_stats spans)
  with
  | Some s -> s.Fbsr_util.Span.p99 *. 1e9
  | None -> 0.0

type sharded_results = {
  srows : (string * float) list;  (** merged into the benchmarks rows *)
  sjson : Fbsr_util.Json.t;  (** the artifact's "sharded" object *)
  sregister : Fbsr_util.Metrics.t -> unit;
      (** registers the 4-shard pair's per-shard probes under
          [fbs_sharded.tx.] so shard.<i> counter names reach the
          artifact without colliding with the faults run's [fbs.*]. *)
}

let sharded_bench () =
  let measured = List.map (fun n -> (n, sharded_measure n)) sharded_counts in
  let dps ns = 1e9 /. ns in
  let srows =
    List.map
      (fun (n, (ns, _)) ->
        (Printf.sprintf "fbs/sharded-send-%dshard-256x1460B" n, ns))
      measured
  in
  let seal_p99 = sharded_seal_p99 () in
  let ns_of n = fst (List.assoc n measured) in
  let sjson =
    Fbsr_util.Json.Obj
      [
        ( "cores",
          Fbsr_util.Json.Int (Fbsr_util.Domain_shim.recommended_domain_count ()) );
        ( "parallel",
          Fbsr_util.Json.Bool Fbsr_util.Domain_shim.parallelism_available );
        ( "rows",
          Fbsr_util.Json.Obj
            (List.map
               (fun (n, (ns, _)) ->
                 ( string_of_int n,
                   Fbsr_util.Json.Obj
                     [
                       ("ns_per_datagram", Fbsr_util.Json.Float ns);
                       ("datagrams_per_sec", Fbsr_util.Json.Float (dps ns));
                     ] ))
               measured) );
        ("seal_p99_ns_4shard", Fbsr_util.Json.Float seal_p99);
        ("scale_4x", Fbsr_util.Json.Float (ns_of 1 /. ns_of 4));
      ]
  in
  let p4 = snd (List.assoc 4 measured) in
  let sregister m =
    Fbsr_fbs.Sharded.register_metrics p4.Fbsr_experiments.Fixture.tx
      (Fbsr_util.Metrics.sub m "fbs_sharded.tx")
  in
  { srows; sjson; sregister }

(* ------------------------------------------------------------------ *)
(* Telemetry-plane overhead: paired interleaved measurement             *)
(* ------------------------------------------------------------------ *)

(* Cost of arming the full per-datagram telemetry plane on the batched
   send path: a telemetry-off engine pair and a telemetry-armed twin
   (heavy-hitter Flowstats sketches on every seal, plus a flight-recorder
   tick and health check per datagram on a synthetic clock advancing 1 ms
   per datagram — 1 s cadence, so one snapshot per ~1000 datagrams rides
   the measured cost).  The two twins are timed with one methodology in
   interleaved rounds, so clock drift, GC ramp and frequency scaling hit
   both sides equally; bechamel's OLS would measure them minutes apart
   and its run-to-run spread at this row's microsecond scale exceeds the
   overhead being gated.  The armed side lands in the benchmarks rows as
   [fbs/send-des+md5-telemetry-1460B] (baseline-gated like any row), and
   the artifact's "telemetry" object carries the paired numbers for
   bench_diff's same-run 5% overhead gate. *)
let telemetry_rounds = 24
let telemetry_block = 63 * 8 (* whole bitsliced flushes per round *)

let telemetry_bench () =
  let mk flowstats =
    let p, attrs =
      Fbsr_experiments.Fixture.warm_flows ~suite:suite_paper ?flowstats ()
    in
    (p, Fbsr_fbs.Engine.Batch.create p.Fbsr_experiments.Fixture.sender, attrs)
  in
  let _, base_batch, base_attrs = mk None in
  let tel_flowstats = Fbsr_fbs.Flowstats.create () in
  let tel_pair, tel_batch, tel_attrs =
    mk (Some (fun () -> tel_flowstats))
  in
  let tel_metrics = Fbsr_util.Metrics.create ~scope:"bench.telemetry" () in
  Fbsr_fbs.Engine.register_metrics tel_pair.Fbsr_experiments.Fixture.sender
    tel_metrics;
  let tel_ts =
    Fbsr_util.Timeseries.create ~capacity:256 ~cadence:1.0 ~host:"bench"
      ~metrics:tel_metrics ()
  in
  let tel_health = Fbsr_fbs.Health.create ~ts:tel_ts () in
  let tel_now = ref 60.0 in
  let send batch attrs i =
    Fbsr_fbs.Engine.send_batched batch ~now:60.0
      ~attrs:(Array.unsafe_get attrs (i mod Array.length attrs))
      ~secret:true ~payload:datagram
      (fun _ -> ())
  in
  let base_block () =
    for i = 0 to telemetry_block - 1 do
      send base_batch base_attrs i
    done
  in
  let tel_block () =
    for i = 0 to telemetry_block - 1 do
      let now = !tel_now +. 0.001 in
      tel_now := now;
      Fbsr_util.Timeseries.tick tel_ts ~now;
      Fbsr_fbs.Health.check tel_health ~now;
      send tel_batch tel_attrs i
    done
  in
  (* warm both twins: every flow key derived, every lane exercised *)
  base_block ();
  tel_block ();
  (* Per-side *median* over the rounds, not the sum: a major-GC slice or
     scheduler preemption landing inside one block would otherwise skew
     one side of a single paired total by several percent — the median
     drops those rounds from both sides symmetrically. *)
  let base_t = Array.make telemetry_rounds 0.0 in
  let tel_t = Array.make telemetry_rounds 0.0 in
  for r = 0 to telemetry_rounds - 1 do
    let t0 = Unix.gettimeofday () in
    base_block ();
    let t1 = Unix.gettimeofday () in
    tel_block ();
    let t2 = Unix.gettimeofday () in
    base_t.(r) <- t1 -. t0;
    tel_t.(r) <- t2 -. t1
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  in
  let per s = s *. 1e9 /. float_of_int telemetry_block in
  let base_ns = per (median base_t) and tel_ns = per (median tel_t) in
  let overhead_pct =
    if base_ns > 0.0 then (tel_ns -. base_ns) /. base_ns *. 100.0 else 0.0
  in
  let row = ("fbs/send-des+md5-telemetry-1460B", tel_ns) in
  let tjson =
    Fbsr_util.Json.Obj
      [
        ("datagrams_per_side", Fbsr_util.Json.Int (telemetry_rounds * telemetry_block));
        ("base_ns", Fbsr_util.Json.Float base_ns);
        ("telemetry_ns", Fbsr_util.Json.Float tel_ns);
        ("overhead_pct", Fbsr_util.Json.Float overhead_pct);
        ("snapshots", Fbsr_util.Json.Int (Fbsr_util.Timeseries.taken tel_ts));
        ("health_checks", Fbsr_util.Json.Int (Fbsr_fbs.Health.checks tel_health));
        ( "sketch_total",
          Fbsr_util.Json.Int
            (Fbsr_util.Sketch.total tel_flowstats.Fbsr_fbs.Flowstats.datagrams) );
      ]
  in
  (row, tjson)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let benchmark ~quick () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    (* Quick mode feeds the CI regression gate: the quota must be large
       enough that run-to-run noise on a shared runner stays well inside
       the gate's threshold, especially for the nanosecond-scale tests. *)
    if quick then Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

(* Flatten the bechamel result table to sorted (name, ns/op) rows. *)
let result_rows results =
  let rows = ref [] in
  Hashtbl.iter
    (fun _instance tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> rows := (name, est) :: !rows
          | Some _ | None -> ())
        tbl)
    results;
  List.sort compare !rows

let print_results rows =
  Printf.printf "%-50s %15s\n" "benchmark" "time/op";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns >= 1e6 then Printf.sprintf "%10.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%10.2f us" (ns /. 1e3)
        else Printf.sprintf "%10.0f ns" ns
      in
      Printf.printf "%-50s %15s\n" name pretty)
    rows

(* ------------------------------------------------------------------ *)
(* JSON artifact (--json): bechamel medians + headline registry        *)
(* counters from one small deterministic adversarial-network run.      *)
(* ------------------------------------------------------------------ *)

(* Site-wide counters only: the per-host "host.<addr>." views are noise in
   an artifact meant for run-over-run comparison, and the "span." latency
   histograms are wall-clock sums (nondeterministic; their stable summary
   is the separate "stages" object). *)
let prefixed p name =
  String.length name >= String.length p && String.sub name 0 (String.length p) = p

(* The artifact's "rev" field defaults to the working tree's revision, so
   a regenerated baseline names the code it measured without anyone
   remembering to pass it; --rev still overrides (CI passes the exact
   commit it checked out, which on a PR merge ref differs from what
   rev-parse would say). *)
let detect_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "dev"
  with _ -> "dev"

(* "crypto/..." row names carry the byte count the closure processes
   ("-1460B"; "-63x1460B" for the whole-flush lockstep row), so ns/byte
   is derivable — surfacing it as its own column lets artifact consumers
   compare primitive throughput (the Section 7.2 kB/s table) without
   re-parsing row names.  Rows without a byte suffix (modexp, PRNG
   draws, cache probes) have no meaningful per-byte cost and are
   skipped. *)
let row_bytes name =
  let n = String.length name in
  let digits_start j =
    let i = ref j in
    while !i > 0 && name.[!i - 1] >= '0' && name.[!i - 1] <= '9' do decr i done;
    !i
  in
  if n < 2 || name.[n - 1] <> 'B' then None
  else
    let i = digits_start (n - 1) in
    if i = n - 1 then None
    else
      let block = int_of_string (String.sub name i (n - 1 - i)) in
      if i > 0 && name.[i - 1] = 'x' then
        let j = digits_start (i - 1) in
        if j = i - 1 then Some block
        else Some (int_of_string (String.sub name j (i - 1 - j)) * block)
      else Some block

(* Bechamel's grouped runner emits "<group>/crypto/<row>" names, so the
   crypto segment must be accepted after any '/' — matching only a
   "crypto/" prefix silently yields an empty object. *)
let crypto_row name =
  prefixed "crypto/" name
  ||
  let p = "/crypto/" in
  let np = String.length p and n = String.length name in
  let rec go i = i + np <= n && (String.sub name i np = p || go (i + 1)) in
  go 0

let ns_per_byte_json rows =
  Fbsr_util.Json.Obj
    (List.filter_map
       (fun (name, ns) ->
         if not (crypto_row name) then None
         else
           Option.map
             (fun b -> (name, Fbsr_util.Json.Float (ns /. float_of_int b)))
             (row_bytes name))
       rows)

let counters_json m =
  let open Fbsr_util in
  Json.Obj
    (List.filter_map
       (fun (name, v) ->
         if prefixed "host." name || prefixed "span." name then None
         else
           match v with
           | Metrics.Int i -> Some (name, Json.Int i)
           | Metrics.Float f -> Some (name, Json.Float f)
           | Metrics.Hist { count; sum; _ } ->
               Some
                 (name, Json.Obj [ ("count", Json.Int count); ("sum", Json.Float sum) ]))
       (Metrics.snapshot m))

(* Datapath allocation audit: run n seal+open round trips (paper suite,
   secret, MTU payload) through the engine's zero-copy path AND through
   the retained string-based reference path, reporting buffers allocated,
   payload bytes copied, and GC-allocated bytes per datagram for both.
   Putting both paths in one artifact makes the zero-copy reduction a
   number the regression gate can check, independent of which baseline
   file it is compared against.  Deterministic: counter deltas are exact,
   and [Gc.allocated_bytes] measures allocation, not time. *)

(* On OCaml 5 the runtime folds minor-heap allocation into the Gc stats
   only at minor collections, so a raw [Gc.allocated_bytes] read taken
   mid-minor-heap mis-attributes up to a whole minor heap (~2 MB) to
   whichever measurement window the next collection happens to land in.
   Forcing a minor collection at every window boundary makes the
   per-window deltas exact and run-to-run stable. *)
let allocated_bytes_exact () =
  Gc.minor ();
  Gc.allocated_bytes ()

let datapath_json () =
  let open Fbsr_experiments in
  let p, attrs, wire0 =
    Fixture.warm_pair ~suite:Fbsr_fbs.Suite.paper_md5_des ~secret:true ()
  in
  let es = p.Fixture.sender and ed = p.Fixture.receiver in
  let payload = Fixture.mtu_payload in
  let n = 256 in
  (* --- zero-copy engine path --- *)
  let cs = Fbsr_fbs.Engine.counters es and cr = Fbsr_fbs.Engine.counters ed in
  let allocs0 = cs.Fbsr_fbs.Engine.datapath_allocs + cr.Fbsr_fbs.Engine.datapath_allocs in
  let copied0 = cs.Fbsr_fbs.Engine.bytes_copied + cr.Fbsr_fbs.Engine.bytes_copied in
  let g0 = allocated_bytes_exact () in
  for _ = 1 to n do
    match Fbsr_fbs.Engine.send_sync es ~now:60.0 ~attrs ~secret:true ~payload with
    | Error e -> failwith (Fmt.str "datapath bench send: %a" Fbsr_fbs.Engine.pp_error e)
    | Ok wire -> (
        match Fbsr_fbs.Engine.receive_sync ed ~now:60.0 ~src:p.Fixture.src ~wire with
        | Ok _ -> ()
        | Error e ->
            failwith (Fmt.str "datapath bench receive: %a" Fbsr_fbs.Engine.pp_error e))
  done;
  let g1 = allocated_bytes_exact () in
  let allocs1 = cs.Fbsr_fbs.Engine.datapath_allocs + cr.Fbsr_fbs.Engine.datapath_allocs in
  let copied1 = cs.Fbsr_fbs.Engine.bytes_copied + cr.Fbsr_fbs.Engine.bytes_copied in
  (* --- string-based reference path, identical inputs --- *)
  let suite = Fbsr_fbs.Suite.paper_md5_des in
  let header, sfl, confounder, timestamp =
    match Fbsr_fbs.Header.decode wire0 with
    | Ok (h, _) ->
        (h, h.Fbsr_fbs.Header.sfl, h.Fbsr_fbs.Header.confounder, h.Fbsr_fbs.Header.timestamp)
    | Error _ -> failwith "datapath bench: warm wire undecodable"
  in
  ignore header;
  let flow_key = ref "" in
  Fbsr_fbs.Engine.derive_flow_key es ~sfl ~src:p.Fixture.src ~dst:p.Fixture.dst (function
    | Ok k -> flow_key := k
    | Error _ -> failwith "datapath bench: flow key derivation failed");
  let flow_key = !flow_key in
  let rc = Reference.create_counters () in
  let gr0 = allocated_bytes_exact () in
  for _ = 1 to n do
    let wire =
      Reference.seal ~counters:rc ~suite ~flow_key ~sfl ~secret:true ~confounder
        ~timestamp ~payload ()
    in
    match Reference.open_ ~counters:rc ~suite ~flow_key ~wire () with
    | Ok _ -> ()
    | Error _ -> failwith "datapath bench: reference open rejected own wire"
  done;
  let gr1 = allocated_bytes_exact () in
  let per x = float_of_int x /. float_of_int n in
  let perf x = x /. float_of_int n in
  Fbsr_util.Json.Obj
    [
      ("payload_bytes", Fbsr_util.Json.Int (String.length payload));
      ("datagrams", Fbsr_util.Json.Int n);
      ("allocs_per_datagram", Fbsr_util.Json.Float (per (allocs1 - allocs0)));
      ("bytes_copied_per_datagram", Fbsr_util.Json.Float (per (copied1 - copied0)));
      ("gc_bytes_per_datagram", Fbsr_util.Json.Float (perf (g1 -. g0)));
      ("allocs_per_datagram_reference", Fbsr_util.Json.Float (per rc.Reference.allocs));
      ( "bytes_copied_per_datagram_reference",
        Fbsr_util.Json.Float (per rc.Reference.bytes_copied) );
      ("gc_bytes_per_datagram_reference", Fbsr_util.Json.Float (perf (gr1 -. gr0)));
    ]

(* Closed-loop transfer smoke inside the artifact: a reduced run of the
   concurrent-bulk-transfer scenario (fbs-experiments transfers).  The
   simulation is fully seeded, so every field is deterministic and diffs
   cleanly run-over-run; a delivery or integrity failure fails the bench
   run itself rather than producing a quietly bad artifact. *)
let transfers_json () =
  let r =
    Fbsr_experiments.Transfers_scenario.run ~transfers:64
      ~bytes_per_transfer:16_384 ()
  in
  if not r.Fbsr_experiments.Transfers_scenario.ok then
    failwith "bench transfers scenario failed (delivery/integrity)";
  let open Fbsr_experiments.Transfers_scenario in
  Fbsr_util.Json.Obj
    [
      ("transfers", Fbsr_util.Json.Int r.transfers);
      ("bytes_per_transfer", Fbsr_util.Json.Int r.bytes_per_transfer);
      ("loss", Fbsr_util.Json.Float r.loss);
      ("elapsed_s", Fbsr_util.Json.Float r.elapsed_s);
      ("goodput_bps", Fbsr_util.Json.Float r.goodput_bps);
      ("total_retransmits", Fbsr_util.Json.Int r.total_retransmits);
      ("total_fast_retransmits", Fbsr_util.Json.Int r.total_fast_retransmits);
      ("total_timeouts", Fbsr_util.Json.Int r.total_timeouts);
      ("ok", Fbsr_util.Json.Bool r.ok);
    ]

(* Per-stage latency summary from the traced run: span costs come from the
   wall clock (Unix.gettimeofday), so p50/p99 measure real per-stage CPU
   cost — the per-stage decomposition of the paper's Section 7.2 numbers. *)
let stages_json spans =
  let open Fbsr_util in
  Json.Obj
    (List.map
       (fun (s : Span.stage_stat) ->
         ( s.Span.stat_stage,
           Json.Obj
             [
               ("count", Json.Int s.Span.count);
               ("p50_ns", Json.Float (s.Span.p50 *. 1e9));
               ("p99_ns", Json.Float (s.Span.p99 *. 1e9));
             ] ))
       (Span.stage_stats spans))

let emit_json ~path ~spans_path ~rev ~quick ~sharded ~telemetry rows =
  let m = Fbsr_util.Metrics.create () in
  (* Causal tracing is ON for this run: the datapath allocation audit below
     uses separate untraced engines, so the 2.0 allocs/datagram gate still
     measures the disabled-tracing path. *)
  (* Batched rx is on so the deterministic run exercises the deferred
     receive pipeline: the [fbs.engine.rxbatch.*] counters land in the
     artifact non-zero, and bench_diff's exact gate on them pins the
     batching shape run-over-run. *)
  let r =
    Fbsr_experiments.Faults.run ~seed:11 ~messages:50 ~batched_rx:true
      ~faults:Fbsr_experiments.Faults.lossy ~metrics:m ~span_capacity:16384
      ~span_cost_clock:Unix.gettimeofday ()
  in
  (* Per-shard probes from the sharded throughput fixture: counter
     values are deterministic (fixed batch x fixed iterations), so they
     diff cleanly run-over-run like the engine counters. *)
  sharded.sregister m;
  let doc =
    Fbsr_util.Json.Obj
      [
        ("schema", Fbsr_util.Json.String "fbsr-bench/1");
        ("rev", Fbsr_util.Json.String rev);
        ("quick", Fbsr_util.Json.Bool quick);
        ( "benchmarks",
          Fbsr_util.Json.Obj
            (List.map (fun (name, ns) -> (name, Fbsr_util.Json.Float ns)) rows) );
        ("ns_per_byte", ns_per_byte_json rows);
        ("counters", counters_json m);
        ("datapath", datapath_json ());
        ("stages", stages_json r.Fbsr_experiments.Faults.spans);
        ("sharded", sharded.sjson);
        ("telemetry", telemetry);
        ("transfers", transfers_json ());
      ]
  in
  let oc = open_out path in
  output_string oc (Fbsr_util.Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  match spans_path with
  | None -> ()
  | Some sp ->
      let oc = open_out sp in
      output_string oc
        (Fbsr_util.Json.to_string_pretty
           (Fbsr_util.Span.to_json r.Fbsr_experiments.Faults.spans));
      close_out oc;
      Printf.printf "wrote %s (%d spans)\n%!" sp
        (List.length r.Fbsr_experiments.Faults.spans)

let () =
  let json = ref None and spans = ref None and quick = ref false and rev = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--spans" :: path :: rest ->
        spans := Some path;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--rev" :: r :: rest ->
        rev := Some r;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: %s [--json PATH] [--spans PATH] [--quick] [--rev STR]\n\
           (unknown argument %S)\n"
          Sys.executable_name arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf
    "=== Bechamel micro-benchmarks (one per table/figure dependency) ===\n%!";
  let rows = result_rows (benchmark ~quick:!quick ()) in
  let sharded = sharded_bench () in
  let tel_row, tel_json = telemetry_bench () in
  let rows = rows @ sharded.srows @ [ tel_row ] in
  print_results rows;
  match !json with
  | Some path ->
      (* Artifact mode: medians + a deterministic counter run; skip the
         long figure harness. *)
      let rev = match !rev with Some r -> r | None -> detect_rev () in
      emit_json ~path ~spans_path:!spans ~rev ~quick:!quick ~sharded
        ~telemetry:tel_json rows
  | None ->
      (* Part 2: regenerate the paper's tables and figures. *)
      let seed = 7 and duration = 7200.0 and bytes = 1_000_000 in
      Fbsr_experiments.Experiments.run_all seed duration bytes
