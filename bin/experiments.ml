(* fbs-experiments: command-line driver around [Fbsr_experiments]. *)

open Fbsr_experiments.Experiments
open Cmdliner

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Trace generator seed.")

let duration_arg =
  Arg.(
    value
    & opt float (4.0 *. 3600.0)
    & info [ "duration" ] ~doc:"Trace duration in simulated seconds.")

let bytes_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "bytes" ] ~doc:"Bytes to transfer in the Figure 8 runs.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the headline counters as a JSON artifact to $(docv).")

let spans_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"PATH"
        ~doc:
          "Enable per-datagram causal tracing and write the hostile run's \
           spans as an fbsr-spans/1 JSON artifact to $(docv) (feed it to \
           fbs-tracedump).")

let metrics_text_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-text" ] ~docv:"PATH"
        ~doc:
          "Write the sweep's metrics registry in Prometheus text exposition \
           format to $(docv).")

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:
          "Arm the telemetry plane: flight-recorder time-series over the \
           run's metrics, health-rule verdicts in the output, and a \
           'telemetry' member (fbsr-timeseries/1 + fbsr-health/1) in the \
           JSON artifact.")

let cmd name doc f = Cmd.v (Cmd.info name ~doc) f

let with_trace_args f =
  Term.(const (fun seed duration -> f ~seed ~duration ()) $ seed_arg $ duration_arg)

let commands =
  [
    cmd "crypto-table" "Crypto primitive throughput (Section 7.2 numbers)"
      Term.(const crypto_table $ const ());
    cmd "fig8" "Figure 8: FBS vs GENERIC throughput"
      Term.(const (fun bytes -> fig8 ~bytes ()) $ bytes_arg);
    cmd "fig9" "Figure 9: flow sizes" (with_trace_args fig9);
    cmd "fig10" "Figure 10: flow durations" (with_trace_args fig10);
    cmd "fig11" "Figure 11: cache miss rates" (with_trace_args fig11);
    cmd "fig12" "Figure 12: active flows over time" (with_trace_args fig12);
    cmd "fig13" "Figure 13: active flows vs THRESHOLD" (with_trace_args fig13);
    cmd "fig14" "Figure 14: repeated flows vs THRESHOLD" (with_trace_args fig14);
    cmd "ablation-hash" "Cache hash-function ablation" (with_trace_args ablation_hash);
    cmd "ablation-assoc" "Cache associativity ablation" (with_trace_args ablation_assoc);
    cmd "ablation-keying" "Per-flow vs per-datagram keying cost"
      Term.(const ablation_keying $ const ());
    cmd "ablation-mac" "Prefix MAC vs HMAC" Term.(const ablation_mac $ const ());
    cmd "www-flows" "Flow characteristics of the WWW-server trace"
      (with_trace_args www_flows);
    cmd "ablation-window" "Replay freshness window sweep"
      Term.(const ablation_replay_window $ const ());
    cmd "ablation-fused" "Single-pass MAC+encrypt vs two passes"
      Term.(const ablation_fused $ const ());
    cmd "ablation-fstsize" "FST size vs hash collisions (footnote 11)"
      (with_trace_args ablation_fstsize);
    cmd "ablation-replacement" "Cache replacement policy (Section 5.3)"
      (with_trace_args ablation_replacement);
    cmd "live-site" "Drive the campus workload through real FBS stacks"
      Term.(const (fun seed -> live_site ~seed ()) $ seed_arg);
    cmd "faults" "Datagram delivery and forgery rejection over faulty links"
      Term.(
        const (fun seed json spans_out metrics_text telemetry ->
            faults ?json ?spans_out ?metrics_text ~telemetry ~seed ())
        $ seed_arg $ json_arg $ spans_arg $ metrics_text_arg $ telemetry_arg);
    cmd "zipf"
      "Million-flow Zipf workload over the domain-sharded engine (exits \
       non-zero on any per-shard invariant violation)"
      Term.(
        const (fun flows datagrams batch shards seed fst_bits miss_curve
                   sweep_study telemetry json ->
            if miss_curve then (
              (* Sweep the fig11-14 analogue up to --flows; --datagrams is
                 the per-point budget (default 200k). *)
              let points =
                List.filter
                  (fun p -> p < flows)
                  Fbsr_experiments.Zipf_scenario.default_points
                @ [ flows ]
              in
              let c =
                Fbsr_experiments.Zipf_scenario.curve_report ~points
                  ?datagrams ~batch ?nshards:shards ~seed ~fst_bits ?json ()
              in
              if not c.Fbsr_experiments.Zipf_scenario.curve_ok then
                Stdlib.exit 1)
            else if sweep_study then (
              let s =
                Fbsr_experiments.Zipf_scenario.sweep_study_report
                  ?datagrams ?nshards:shards ~seed ?json ()
              in
              if not s.Fbsr_experiments.Zipf_scenario.sw_ok then
                Stdlib.exit 1)
            else
              let r =
                Fbsr_experiments.Zipf_scenario.report ~flows
                  ~datagrams:(Option.value datagrams ~default:1_000_000)
                  ~batch ?nshards:shards ~seed ~fst_bits ~telemetry ?json ()
              in
              if not r.Fbsr_experiments.Zipf_scenario.ok then Stdlib.exit 1)
        $ Arg.(
            value & opt int 1_000_000
            & info [ "flows" ]
                ~doc:
                  "Concurrent Zipf-distributed flows (with --miss-curve: the \
                   sweep ceiling).")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "datagrams" ]
                ~doc:
                  "Datagrams to round-trip (default 1,000,000; with \
                   --miss-curve: per sweep point, default 200,000).")
        $ Arg.(
            value & opt int 4096
            & info [ "batch" ] ~doc:"Datagrams per sharded dispatch batch.")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "shards" ]
                ~doc:
                  "Shard count (default: the runtime's recommended domain \
                   count; clamped to 1 without Domains).")
        $ Arg.(value & opt int 20260808 & info [ "seed" ] ~doc:"Workload seed.")
        $ Arg.(
            value & opt int 19
            & info [ "fst-bits" ]
                ~doc:"Dispatcher FST size as a power of two.")
        $ Arg.(
            value & flag
            & info [ "miss-curve" ]
                ~doc:
                  "Instead of one run, sweep active flows vs TFKC/RFKC miss \
                   rate (the Section 7.3 figure 11-14 analogue) and emit one \
                   row per point.")
        $ Arg.(
            value & flag
            & info [ "sweep-study" ]
                ~doc:
                  "Instead of one run, study FAM sweeper cadence under Zipf \
                   skew: occupancy vs restart-and-rekey churn at several \
                   cadences (fbsr-sweep-study/1 artifact).  --datagrams is \
                   the per-point budget (default 120,000).")
        $ telemetry_arg $ json_arg);
    cmd "transfers"
      "Hundreds of concurrent ACK-clocked bulk transfers across a shared \
       lossy segment (exits non-zero unless every transfer is delivered \
       intact and closed)"
      Term.(
        const (fun transfers bytes loss seed telemetry json ->
            let r =
              Fbsr_experiments.Transfers_scenario.report ~transfers
                ~bytes_per_transfer:bytes ~loss ~seed ~telemetry ?json ()
            in
            if not r.Fbsr_experiments.Transfers_scenario.ok then Stdlib.exit 1)
        $ Arg.(
            value & opt int 200
            & info [ "transfers" ] ~doc:"Concurrent connections.")
        $ Arg.(
            value & opt int 32_768
            & info [ "bytes-per-transfer" ] ~doc:"Payload bytes per connection.")
        $ Arg.(
            value & opt float 0.01
            & info [ "loss" ] ~doc:"Per-frame drop probability on every link.")
        $ Arg.(
            value & opt int 20260809 & info [ "seed" ] ~doc:"Fault-link seed.")
        $ telemetry_arg $ json_arg);
    cmd "all" "Run every experiment"
      Term.(
        const (fun seed duration bytes json -> run_all ?json seed duration bytes)
        $ seed_arg $ duration_arg $ bytes_arg $ json_arg);
  ]

let () =
  let info = Cmd.info "fbs-experiments" ~doc:"Regenerate the paper's figures" in
  exit (Cmd.eval (Cmd.group info commands))
