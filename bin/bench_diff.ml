(* bench_diff: compare two BENCH_*.json artifacts (bench/main.exe --json)
   and fail past a regression threshold.

   Usage: bench_diff OLD.json NEW.json [--threshold 0.25]
                                       [--strict-improvements]
                                       [--exempt PREFIX]...

   A benchmark regresses when new > old * (1 + threshold).  Benchmarks are
   the gate; registry counters are printed informationally (a counter shift
   means behaviour changed, which a timing gate should not conflate with
   being slower).  Improvements (new < old * (1 - threshold)) are reported
   in their own section: by default they never fail the diff, but a stale
   baseline stops guarding the improved rows — when an intentional speedup
   lands, regenerate the baseline (see README "Regenerating the bench
   baseline").  Under [--strict-improvements] a stale baseline is a
   failure, not a warning: improvements exit nonzero so the speedup PR
   must carry its regenerated baseline.  Machine-relative rows can be
   carved out of the strictness with [--exempt PREFIX] (repeatable): a
   row is exempt when the prefix matches the row name or any of its
   '/'-separated segments.  With no [--exempt] the historical default
   applies — rows under "sharded-" are exempt (their speed scales with
   the runner's core count, so a faster machine is not a stale
   baseline).

   Datapath columns named [allocs_per_datagram] are gated exactly: they
   are deterministic counter ratios (the zero-copy invariant), so any
   drift — in either direction — means the datapath changed shape and the
   committed baseline must be re-examined, not absorbed by a timing
   threshold.  Exit status: 0 clean, 1 regression(s), 2 usage or parse
   error. *)

let usage () =
  prerr_endline
    "usage: bench_diff OLD.json NEW.json [--threshold FRACTION] \
     [--strict-improvements] [--exempt PREFIX]...";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("bench_diff: " ^ m); exit 2) fmt

let load path =
  let ic = try open_in_bin path with Sys_error m -> fail "%s" m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Fbsr_util.Json.parse s with
  | j -> j
  | exception Fbsr_util.Json.Parse_error m -> fail "%s: %s" path m

let obj_members name j =
  match Fbsr_util.Json.member name j with
  | Some (Fbsr_util.Json.Obj kvs) -> kvs
  | Some _ | None -> []

let schema j =
  match Fbsr_util.Json.member "schema" j with
  | Some (Fbsr_util.Json.String s) -> s
  | _ -> "?"

let () =
  let threshold = ref 0.25 in
  let strict_improvements = ref false in
  let exempts = ref [] in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 ->
            threshold := f;
            parse rest
        | _ -> fail "bad --threshold %S" v)
    | "--strict-improvements" :: rest ->
        strict_improvements := true;
        parse rest
    | "--exempt" :: v :: rest ->
        if v = "" then fail "empty --exempt prefix";
        exempts := v :: !exempts;
        parse rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        usage ()
    | arg :: rest ->
        files := arg :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let old_doc = load old_path and new_doc = load new_path in
  List.iter
    (fun (p, d) ->
      if schema d <> "fbsr-bench/1" then
        fail "%s: unexpected schema %S (want \"fbsr-bench/1\")" p (schema d))
    [ (old_path, old_doc); (new_path, new_doc) ];
  let old_benches = obj_members "benchmarks" old_doc in
  let new_benches = obj_members "benchmarks" new_doc in
  let regressions = ref 0 in
  let improvements = ref [] in
  (* Benchmark rows carry an absolute noise floor under the relative
     threshold, like the stage gates below: the nanosecond-scale rows
     (the ~12 ns LCG draw, the ~250 ns cache probes) move tens of
     nanoseconds between CI's reduced-iteration run and the committed
     full-run medians — loop-overhead amortization, not code — which at
     that scale is ±30% and flaps the gate in both directions.  150 ns
     (the same figure the paired telemetry gate uses for timer
     granularity) is invisible against every microsecond-scale row, so
     a real regression anywhere the datapath spends time still fails. *)
  let bench_floor_ns = 150.0 in
  Printf.printf "%-50s %12s %12s %9s\n" "benchmark" "old ns/op" "new ns/op" "delta";
  Printf.printf "%s\n" (String.make 86 '-');
  List.iter
    (fun (name, old_v) ->
      match
        (Fbsr_util.Json.to_float_opt old_v,
         Option.bind (List.assoc_opt name new_benches) Fbsr_util.Json.to_float_opt)
      with
      | Some old_ns, Some new_ns ->
          let delta =
            if old_ns > 0.0 then (new_ns -. old_ns) /. old_ns *. 100.0 else 0.0
          in
          let regressed =
            old_ns > 0.0
            && new_ns > old_ns *. (1.0 +. !threshold)
            && new_ns -. old_ns > bench_floor_ns
          in
          let improved =
            old_ns > 0.0
            && new_ns < old_ns *. (1.0 -. !threshold)
            && old_ns -. new_ns > bench_floor_ns
          in
          if regressed then incr regressions;
          if improved then improvements := (name, old_ns, new_ns, delta) :: !improvements;
          Printf.printf "%-50s %12.1f %12.1f %+8.1f%%%s\n" name old_ns new_ns delta
            (if regressed then "  REGRESSED"
             else if improved then "  improved"
             else "")
      | _ -> Printf.printf "%-50s (missing from %s)\n" name new_path)
    old_benches;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name old_benches) then
        Printf.printf "%-50s (new benchmark)\n" name)
    new_benches;
  (* Telemetry overhead: a paired gate within the NEW artifact alone.
     The artifact's "telemetry" object carries the interleaved same-run
     measurement of the batched-send row with and without the telemetry
     plane armed (heavy-hitter sketch observes, flight-recorder tick,
     health check per datagram) — pairing cancels machine speed
     entirely, so the armed twin must cost at most 5% on top of the
     plain one.  An absolute floor of 150 ns absorbs timer granularity
     at the row's microsecond scale. *)
  (let tel = obj_members "telemetry" new_doc in
   let jf name = Option.bind (List.assoc_opt name tel) Fbsr_util.Json.to_float_opt in
   match (jf "base_ns", jf "telemetry_ns") with
   | Some base_ns, Some tel_ns when base_ns > 0.0 ->
       let overhead = (tel_ns -. base_ns) /. base_ns *. 100.0 in
       let regressed = tel_ns > base_ns *. 1.05 && tel_ns -. base_ns > 150.0 in
       if regressed then incr regressions;
       Printf.printf "%-50s %12.1f %12.1f %+8.1f%%%s\n"
         "telemetry overhead (paired, new artifact)" base_ns tel_ns overhead
         (if regressed then "  REGRESSED (5% paired gate)" else "")
   | _ -> ());
  let contains_sub sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* Improvements: each one means the baseline no longer guards that row
     (a later slowdown back to the old speed would pass the gate
     unnoticed).  A warning by default; a failure under
     --strict-improvements, so speedup PRs ship a fresh baseline.
     Machine-relative rows (by default the sharded ones — a beefier
     runner improves them without any code change) stay warnings even
     under strict, via the --exempt prefixes. *)
  let exempt_prefixes =
    match List.rev !exempts with [] -> [ "sharded-" ] | l -> l
  in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let exempted name =
    List.exists
      (fun p ->
        starts_with p name
        || List.exists (starts_with p) (String.split_on_char '/' name))
      exempt_prefixes
  in
  let stale = ref 0 in
  (match List.rev !improvements with
  | [] -> ()
  | imps ->
      let strictable, exempt =
        List.partition (fun (name, _, _, _) -> not (exempted name)) imps
      in
      Printf.printf "\n%d benchmark(s) improved beyond -%.0f%% (baseline is stale for these):\n"
        (List.length imps)
        (100.0 *. !threshold);
      List.iter
        (fun (name, old_ns, new_ns, delta) ->
          Printf.printf "  %-48s %12.1f -> %.1f  (%+.1f%%)\n" name old_ns new_ns delta)
        imps;
      if !strict_improvements then begin
        stale := List.length strictable;
        if exempt <> [] then
          Printf.printf
            "  (%d row(s) exempt from --strict-improvements via prefix \
             exemption [%s]: machine-relative speed)\n"
            (List.length exempt)
            (String.concat ", " exempt_prefixes)
      end;
      Printf.printf
        "  if intentional, regenerate the committed baseline (README: \"Regenerating the bench baseline\")\n");
  (* Datapath allocation audit: gated at the same threshold when both
     artifacts carry it (the fields are deterministic counter ratios, so
     the gate is tight by construction).  Only the per-datagram fields
     are gated; the fixture-shape fields (payload size, iteration count)
     are informational.  A zero old value means the zero-copy invariant
     held — any new nonzero value is a regression of that invariant.
     [allocs_per_datagram] is tighter still: exact equality with the
     baseline, both directions, so a datapath shape change can never hide
     inside the timing threshold. *)
  let old_datapath = obj_members "datapath" old_doc in
  let new_datapath = obj_members "datapath" new_doc in
  let gated name = contains_sub "per_datagram" name in
  let exact name = contains_sub "allocs_per_datagram" name in
  if old_datapath <> [] && new_datapath <> [] then begin
    Printf.printf "\n%-50s %12s %12s %9s\n" "datapath" "old" "new" "delta";
    Printf.printf "%s\n" (String.make 86 '-');
    List.iter
      (fun (name, old_v) ->
        match
          (Fbsr_util.Json.to_float_opt old_v,
           Option.bind (List.assoc_opt name new_datapath) Fbsr_util.Json.to_float_opt)
        with
        | Some old_x, Some new_x when gated name ->
            let delta =
              if old_x > 0.0 then (new_x -. old_x) /. old_x *. 100.0 else 0.0
            in
            let regressed =
              if exact name then Float.abs (new_x -. old_x) > 1e-9
              else if old_x > 0.0 then new_x > old_x *. (1.0 +. !threshold)
              else new_x > 1e-9
            in
            if regressed then incr regressions;
            Printf.printf "%-50s %12.1f %12.1f %+8.1f%%%s\n" name old_x new_x delta
              (if regressed then
                 if exact name then "  REGRESSED (exact gate)" else "  REGRESSED"
               else "")
        | _ -> ())
      old_datapath
  end
  else if new_datapath <> [] then
    Printf.printf "\ndatapath audit present only in %s (not gated)\n" new_path;
  (* Per-stage span latencies (p50/p99 of wall-clock stage cost): gated
     like benchmarks, but with a per-column absolute noise floor on top of
     the relative threshold.  The medians are quantized at the clock
     granularity (~1 us), so a floor of two quanta absorbs quantization
     flips; the p99s are near-max statistics over only a few hundred
     samples, where a single GC pause or scheduler blip moves the tail by
     tens of microseconds, so their floor is a quarter millisecond —
     the gate still catches order-of-magnitude tail regressions. *)
  let old_stages = obj_members "stages" old_doc in
  let new_stages = obj_members "stages" new_doc in
  if old_stages <> [] && new_stages <> [] then begin
    Printf.printf "\n%-50s %12s %12s %9s\n" "stage (p50/p99 ns)" "old" "new" "delta";
    Printf.printf "%s\n" (String.make 86 '-');
    List.iter
      (fun (stage, old_v) ->
        match List.assoc_opt stage new_stages with
        | None -> Printf.printf "%-50s (missing from %s)\n" stage new_path
        | Some new_v ->
            List.iter
              (fun (field, floor_ns) ->
                match
                  ( Option.bind (Fbsr_util.Json.member field old_v)
                      Fbsr_util.Json.to_float_opt,
                    Option.bind (Fbsr_util.Json.member field new_v)
                      Fbsr_util.Json.to_float_opt )
                with
                | Some old_x, Some new_x ->
                    let delta =
                      if old_x > 0.0 then (new_x -. old_x) /. old_x *. 100.0
                      else 0.0
                    in
                    let regressed =
                      old_x > 0.0
                      && new_x > old_x *. (1.0 +. !threshold)
                      && new_x -. old_x > floor_ns
                    in
                    if regressed then incr regressions;
                    Printf.printf "%-50s %12.1f %12.1f %+8.1f%%%s\n"
                      (stage ^ "." ^ field) old_x new_x delta
                      (if regressed then "  REGRESSED" else "")
                | _ -> ())
              [ ("p50_ns", 2_000.0); ("p99_ns", 250_000.0) ])
      old_stages;
    List.iter
      (fun (stage, _) ->
        if not (List.mem_assoc stage old_stages) then
          Printf.printf "%-50s (new stage)\n" stage)
      new_stages
  end
  else if new_stages <> [] then
    Printf.printf "\nstage latencies present only in %s (not gated)\n" new_path;
  (* Counters: informational, with two exceptions.  The MAC-midstate
     cache counters come from a deterministic adversarial-network run
     (fixed seed, fixed message count), so [fbs.engine.macmid.*] is an
     exact both-direction gate like [allocs_per_datagram]: any drift
     means the per-flow midstate cache changed shape — more misses says
     midstates stopped surviving in the flow entries, more hits says the
     workload (and thus the whole artifact) changed — and the committed
     baseline must be re-examined, not absorbed.  [fbs.engine.rxbatch.*]
     is gated the same way: the deferred/flush counts of the same
     deterministic run pin the batched receive pipeline's shape — fewer
     deferrals says frames stopped reaching the cross-flow sweep (a
     silent fallback to scalar opens), more flushes says the batching
     window fragmented — and neither direction is a timing matter. *)
  let counter_exact name =
    List.exists
      (fun p ->
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p)
      [ "fbs.engine.macmid."; "fbs.engine.rxbatch." ]
  in
  let old_counters = obj_members "counters" old_doc in
  let new_counters = obj_members "counters" new_doc in
  let changed =
    List.filter_map
      (fun (name, v) ->
        match List.assoc_opt name old_counters with
        | Some v' when v' <> v -> Some (name, v', v)
        | Some _ -> None
        | None -> Some (name, Fbsr_util.Json.Null, v))
      new_counters
  in
  if changed <> [] then begin
    let gated, info = List.partition (fun (name, _, _) -> counter_exact name) changed in
    if info <> [] then begin
      Printf.printf "\ncounters that differ (informational, not gated):\n";
      List.iter
        (fun (name, o, n) ->
          Printf.printf "  %-48s %s -> %s\n" name
            (Fbsr_util.Json.to_string o) (Fbsr_util.Json.to_string n))
        info
    end;
    if gated <> [] then begin
      Printf.printf "\ncounters that differ (exact gate):\n";
      List.iter
        (fun (name, o, n) ->
          incr regressions;
          Printf.printf "  %-48s %s -> %s  REGRESSED (exact gate)\n" name
            (Fbsr_util.Json.to_string o) (Fbsr_util.Json.to_string n))
        gated
    end
  end;
  (* Sharded throughput.  The per-shard-count ns/op rows ride through
     the benchmarks gate above; here the contention tail is gated like
     the stage p99s (relative threshold plus the quarter-millisecond
     tail-noise floor), and the new artifact's own 4-shard-vs-1-shard
     scaling is asserted — but only when that artifact reports real
     parallelism and at least 4 cores, so single-core and 4.14
     (single-shard shim) runs don't fail a gate they cannot meet. *)
  let jfloat j name =
    Option.bind (Fbsr_util.Json.member name j) Fbsr_util.Json.to_float_opt
  in
  let row_dps j n =
    Option.bind (Fbsr_util.Json.member "rows" j) (fun rows ->
        Option.bind
          (Fbsr_util.Json.member (string_of_int n) rows)
          (fun r -> jfloat r "datagrams_per_sec"))
  in
  (match
     ( Fbsr_util.Json.member "sharded" old_doc,
       Fbsr_util.Json.member "sharded" new_doc )
   with
  | Some osh, Some nsh ->
      Printf.printf "\n%-50s %12s %12s %9s\n" "sharded" "old" "new" "delta";
      Printf.printf "%s\n" (String.make 86 '-');
      (match (jfloat osh "seal_p99_ns_4shard", jfloat nsh "seal_p99_ns_4shard") with
      | Some old_x, Some new_x ->
          let delta =
            if old_x > 0.0 then (new_x -. old_x) /. old_x *. 100.0 else 0.0
          in
          let regressed =
            old_x > 0.0
            && new_x > old_x *. (1.0 +. !threshold)
            && new_x -. old_x > 250_000.0
          in
          if regressed then incr regressions;
          Printf.printf "%-50s %12.1f %12.1f %+8.1f%%%s\n" "seal_p99_ns_4shard"
            old_x new_x delta
            (if regressed then "  REGRESSED" else "")
      | _ -> ());
      let parallel =
        match Fbsr_util.Json.member "parallel" nsh with
        | Some (Fbsr_util.Json.Bool b) -> b
        | _ -> false
      in
      let cores =
        match Fbsr_util.Json.member "cores" nsh with
        | Some (Fbsr_util.Json.Int i) -> i
        | _ -> 0
      in
      (match (row_dps nsh 1, row_dps nsh 4) with
      | Some d1, Some d4 when parallel && cores >= 4 ->
          if d4 < 2.0 *. d1 then begin
            incr regressions;
            Printf.printf
              "%-50s %12.0f %12.0f      REGRESSED (scaling gate: 4-shard < \
               2x 1-shard dps)\n"
              "scaling 1-shard vs 4-shard dps" d1 d4
          end
          else
            Printf.printf "%-50s %12.0f %12.0f      ok (>= 2x)\n"
              "scaling 1-shard vs 4-shard dps" d1 d4
      | _ ->
          Printf.printf
            "scaling gate skipped (parallel=%b cores=%d in %s)\n" parallel
            cores new_path)
  | None, Some _ ->
      Printf.printf "\nsharded rows present only in %s (not gated)\n" new_path
  | _ -> ());
  if !regressions > 0 || !stale > 0 then begin
    if !regressions > 0 then
      Printf.printf "\n%d benchmark(s) regressed beyond +%.0f%%\n" !regressions
        (100.0 *. !threshold);
    if !stale > 0 then
      Printf.printf
        "\n%d benchmark(s) improved beyond -%.0f%% with --strict-improvements \
         set: regenerate BENCH_baseline.json in this PR\n"
        !stale
        (100.0 *. !threshold);
    exit 1
  end
  else Printf.printf "\nno regressions beyond +%.0f%%\n" (100.0 *. !threshold)
