(* fbs-tracedump: exporters for fbsr-spans/1 causal-trace artifacts.

   Reads the span JSON written by `fbs-experiments faults --spans` or
   `fbs-bench --spans` and renders it as either a plain-text per-flow
   timeline (default, or one flow with --flow) or Chrome trace-event JSON
   loadable in chrome://tracing and Perfetto (--chrome).

   Plain Sys.argv parsing, same style as bench_diff: this tool must stay
   dependency-free so CI can build it in the smoke job. *)

let usage () =
  prerr_endline
    "usage: tracedump SPANS.json [--chrome OUT.json] [--flow HEXID]\n\n\
     SPANS.json      an fbsr-spans/1 artifact (fbs-experiments faults \
     --spans,\n\
    \                fbs-bench --spans)\n\
     --chrome OUT    write Chrome trace-event JSON to OUT (chrome://tracing,\n\
    \                Perfetto) instead of printing timelines\n\
     --flow HEXID    print only the flow with this 16-hex-digit trace id";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("tracedump: " ^ s); exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "%s" e

let parse_id s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some id when not (Int64.equal id 0L) -> id
  | _ -> fail "--flow wants a 16-hex-digit trace id, got %S" s

let () =
  let input = ref None and chrome = ref None and flow = ref None in
  let rec args = function
    | [] -> ()
    | "--chrome" :: path :: rest ->
        chrome := Some path;
        args rest
    | "--flow" :: id :: rest ->
        flow := Some (parse_id id);
        args rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then
          fail "unknown option %s" arg;
        (match !input with
        | None -> input := Some arg
        | Some _ -> fail "more than one input file");
        args rest
  in
  args (List.tl (Array.to_list Sys.argv));
  let path = match !input with Some p -> p | None -> usage () in
  let spans =
    match Fbsr_util.Json.parse_opt (read_file path) with
    | None -> fail "%s: not valid JSON" path
    | Some doc -> (
        try Fbsr_util.Span.of_json doc
        with Invalid_argument msg -> fail "%s: %s" path msg)
  in
  if spans = [] then prerr_endline "tracedump: no spans in input";
  match !chrome with
  | Some out ->
      let oc = open_out out in
      output_string oc
        (Fbsr_util.Json.to_string (Fbsr_util.Span.chrome_json spans));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s (%d spans, %d flows)\n" out (List.length spans)
        (List.length (Fbsr_util.Span.ids spans))
  | None ->
      Format.printf "%a@." (Fbsr_util.Span.pp_timeline ?id:!flow) spans
