(* fbs-tracedump: exporters for fbsr-spans/1 causal-trace artifacts.

   Reads the span JSON written by `fbs-experiments faults --spans` or
   `fbs-bench --spans` and renders it as either a plain-text per-flow
   timeline (default, or one flow with --flow) or Chrome trace-event JSON
   loadable in chrome://tracing and Perfetto (--chrome).

   Plain Sys.argv parsing, same style as bench_diff: this tool must stay
   dependency-free so CI can build it in the smoke job. *)

let usage () =
  prerr_endline
    "usage: tracedump SPANS.json [--chrome OUT.json] [--flow HEXID] [--drops] \
     [--stats]\n\n\
     SPANS.json      an fbsr-spans/1 artifact (fbs-experiments faults \
     --spans,\n\
    \                fbs-bench --spans)\n\
     --chrome OUT    write Chrome trace-event JSON to OUT (chrome://tracing,\n\
    \                Perfetto) instead of printing timelines\n\
     --flow HEXID    print only the flow with this 16-hex-digit trace id\n\
     --drops         keep only chains whose terminal span is a drop:* \
     outcome\n\
    \                (composes with --chrome, --flow and --stats)\n\
     --stats         print the per-stage latency table (count/p50/p99/worst\n\
    \                over span cost) instead of timelines";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("tracedump: " ^ s); exit 2) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error e -> fail "%s" e

let parse_id s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some id when not (Int64.equal id 0L) -> id
  | _ -> fail "--flow wants a 16-hex-digit trace id, got %S" s

let is_drop outcome =
  String.length outcome >= 5 && String.sub outcome 0 5 = "drop:"

(* Chains whose terminal span carries a drop:* outcome, in full — every
   span of a dropped datagram's life, not just the terminal one. *)
let drop_chains spans =
  let module Tbl = Hashtbl in
  let dropped = Tbl.create 64 in
  List.iter
    (fun (s : Fbsr_util.Span.span) ->
      if is_drop s.outcome then Tbl.replace dropped s.id ())
    spans;
  List.filter (fun (s : Fbsr_util.Span.span) -> Tbl.mem dropped s.id) spans

let print_stats spans =
  let stats = Fbsr_util.Span.stage_stats spans in
  Printf.printf "%-24s %8s %12s %12s %12s\n" "stage" "count" "p50 (s)"
    "p99 (s)" "worst (s)";
  List.iter
    (fun (st : Fbsr_util.Span.stage_stat) ->
      Printf.printf "%-24s %8d %12.6f %12.6f %12.6f\n" st.stat_stage st.count
        st.p50 st.p99 st.worst)
    stats;
  let drops = Hashtbl.create 16 in
  List.iter
    (fun (s : Fbsr_util.Span.span) ->
      if is_drop s.outcome then
        Hashtbl.replace drops s.outcome
          (1 + Option.value ~default:0 (Hashtbl.find_opt drops s.outcome)))
    spans;
  let causes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) drops [] in
  if causes <> [] then begin
    print_newline ();
    Printf.printf "%-24s %8s\n" "drop cause" "chains";
    List.iter
      (fun (cause, n) -> Printf.printf "%-24s %8d\n" cause n)
      (List.sort compare causes)
  end

let () =
  let input = ref None
  and chrome = ref None
  and flow = ref None
  and drops = ref false
  and stats = ref false in
  let rec args = function
    | [] -> ()
    | "--chrome" :: path :: rest ->
        chrome := Some path;
        args rest
    | "--flow" :: id :: rest ->
        flow := Some (parse_id id);
        args rest
    | "--drops" :: rest ->
        drops := true;
        args rest
    | "--stats" :: rest ->
        stats := true;
        args rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then
          fail "unknown option %s" arg;
        (match !input with
        | None -> input := Some arg
        | Some _ -> fail "more than one input file");
        args rest
  in
  args (List.tl (Array.to_list Sys.argv));
  let path = match !input with Some p -> p | None -> usage () in
  let spans =
    match Fbsr_util.Json.parse_opt (read_file path) with
    | None -> fail "%s: not valid JSON" path
    | Some doc -> (
        try Fbsr_util.Span.of_json doc
        with Invalid_argument msg -> fail "%s: %s" path msg)
  in
  if spans = [] then prerr_endline "tracedump: no spans in input";
  let spans = if !drops then drop_chains spans else spans in
  if !drops && spans = [] then print_endline "no drop-terminated chains";
  match !chrome with
  | Some out ->
      let oc = open_out out in
      output_string oc
        (Fbsr_util.Json.to_string (Fbsr_util.Span.chrome_json spans));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s (%d spans, %d flows)\n" out (List.length spans)
        (List.length (Fbsr_util.Span.ids spans))
  | None when !stats ->
      let spans =
        match !flow with
        | Some id -> Fbsr_util.Span.by_id id spans
        | None -> spans
      in
      print_stats spans
  | None ->
      Format.printf "%a@." (Fbsr_util.Span.pp_timeline ?id:!flow) spans
