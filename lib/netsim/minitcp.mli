(** Miniature TCP: handshake, cumulative ACK, a Reno-style
    congestion-controlled sliding window (slow start, AIMD, fast
    retransmit on three duplicate ACKs), adaptive RTO, out-of-order
    reassembly, FIN teardown.

    Exists to run ttcp-style bulk transfers (Figure 8) and to exercise the
    paper's tcp_output MSS fix: the MSS calculation subtracts the security
    header allowance published via {!set_mss_reduction}. *)

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Last_ack
  | Closed

type conn

val install : Host.t -> unit
val listen : Host.t -> port:int -> (conn -> unit) -> unit
val connect : Host.t -> dst:Addr.t -> dst_port:int -> conn

val send : conn -> string -> unit
val close : conn -> unit
val abort : conn -> unit

val on_receive : conn -> (string -> unit) -> unit
val on_established : conn -> (unit -> unit) -> unit
val on_close : conn -> (unit -> unit) -> unit

val state : conn -> state

val mss : conn -> int
(** Current sender MSS.  Recomputed from the host's published
    security-header allowance on every read — like the paper's
    tcp_output, segment sizing honors a {!set_mss_reduction} published
    after the connection was established. *)

val bytes_delivered : conn -> int

val retransmits : conn -> int
(** Total retransmitted segments (timeout, fast retransmit, and
    recovery hole-filling). *)

val fast_retransmits : conn -> int
(** Fast-retransmit episodes entered on the third duplicate ACK. *)

val timeouts : conn -> int
(** Retransmission-timer expirations. *)

val cwnd : conn -> int
(** Current congestion window, bytes. *)

val ssthresh : conn -> int
(** Current slow-start threshold, bytes. *)

val rto : conn -> float
(** Current retransmission timeout, seconds. *)

val segments_out : conn -> int
val local_port : conn -> int
val peer : conn -> Addr.t * int

val set_mss_reduction : Host.t -> int -> unit
(** Published by the security layer (FBS header size); the paper's
    tcp_output change. *)

val mss_reduction : Host.t -> int
