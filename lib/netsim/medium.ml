(* A shared network segment — the simulated stand-in for the paper's
   "dedicated 10M Ethernet segment".

   The medium is half-duplex with a single serialization resource: a frame
   occupies the wire for (size + framing overhead) * 8 / bandwidth seconds
   starting no earlier than the previous frame finished, then propagates to
   the destination station.  Loss, duplication and extra jitter are
   configurable for robustness tests.  Sniffer taps observe every frame at
   transmit time, exactly like tcpdump on the paper's LAN. *)

type station = { addr : Addr.t; deliver : string -> unit }

type t = {
  engine : Engine.t;
  bandwidth_bps : float;
  propagation : float;
  frame_overhead : int;
  mutable busy_until : float;
  mutable stations : station list;
  mutable loss : float;
  mutable dup : float;
  mutable jitter : float;
  rng : Fbsr_util.Rng.t;
  mutable sniffers : (float -> string -> unit) list;
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
}

(* 8 B preamble + 14 B header + 4 B FCS + 12 B interframe gap. *)
let ethernet_overhead = 38
let ethernet_min_payload = 46

let create ?(bandwidth_bps = 10_000_000.0) ?(propagation = 5e-6)
    ?(frame_overhead = ethernet_overhead) ?(loss = 0.0) ?(dup = 0.0) ?(jitter = 0.0)
    ?(seed = 1) engine =
  {
    engine;
    bandwidth_bps;
    propagation;
    frame_overhead;
    busy_until = 0.0;
    stations = [];
    loss;
    dup;
    jitter;
    rng = Fbsr_util.Rng.create seed;
    sniffers = [];
    frames_sent = 0;
    frames_dropped = 0;
    bytes_sent = 0;
  }

let attach t ~addr ~deliver = t.stations <- { addr; deliver } :: t.stations

let add_sniffer t f = t.sniffers <- f :: t.sniffers

let set_loss t p = t.loss <- p
let set_dup t p = t.dup <- p
let set_jitter t j = t.jitter <- j

let station_for t addr =
  List.find_opt (fun s -> Addr.equal s.addr addr) t.stations

(* Wire time for a frame of [bytes] IP bytes, including framing overhead
   and the Ethernet minimum-frame rule. *)
let tx_time t bytes =
  let payload = max bytes ethernet_min_payload in
  float_of_int ((payload + t.frame_overhead) * 8) /. t.bandwidth_bps

let transmit t ~dst (raw : string) =
  let now = Engine.now t.engine in
  let start = Float.max now t.busy_until in
  let tx = tx_time t (String.length raw) in
  t.busy_until <- start +. tx;
  t.frames_sent <- t.frames_sent + 1;
  t.bytes_sent <- t.bytes_sent + String.length raw;
  let stamp = start in
  List.iter (fun sn -> sn stamp raw) t.sniffers;
  (* Delivery metadata for causal tracing: the sender's ambient trace id
     is captured here and restored around the delivery callback, so the
     receiving stack processes the frame under the trace that sent it.
     The frame itself carries no trace bytes. *)
  let tid = Fbsr_util.Span.current () in
  let deliver_once () =
    match station_for t dst with
    | None -> t.frames_dropped <- t.frames_dropped + 1
    | Some s ->
        let extra =
          if t.jitter > 0.0 then Fbsr_util.Rng.float t.rng t.jitter else 0.0
        in
        let arrival = t.busy_until +. t.propagation +. extra -. now in
        Engine.schedule t.engine ~delay:arrival (fun () ->
            if Int64.equal tid 0L then s.deliver raw
            else Fbsr_util.Span.with_current tid (fun () -> s.deliver raw))
  in
  if t.loss > 0.0 && Fbsr_util.Rng.uniform t.rng < t.loss then
    t.frames_dropped <- t.frames_dropped + 1
  else begin
    deliver_once ();
    if t.dup > 0.0 && Fbsr_util.Rng.uniform t.rng < t.dup then deliver_once ()
  end

type stats = { frames : int; dropped : int; bytes : int }

let stats t = { frames = t.frames_sent; dropped = t.frames_dropped; bytes = t.bytes_sent }

let utilization t ~elapsed =
  if elapsed <= 0.0 then 0.0
  else
    float_of_int ((t.bytes_sent + (t.frames_sent * t.frame_overhead)) * 8)
    /. t.bandwidth_bps /. elapsed
