(* A miniature TCP: 3-way handshake, cumulative ACKs, a Reno-style
   congestion-controlled sliding window (slow start, AIMD, fast
   retransmit on three duplicate ACKs, NewReno partial-ack recovery),
   adaptive RTO with exponential backoff, out-of-order reassembly, FIN
   teardown.  Enough machinery to run ttcp-style bulk transfers
   (Figure 8) over the simulated network and to exercise the paper's
   tcp_output MSS fix: tcp_output computes exactly how much data fits in
   a packet without fragmentation and sets DF, which breaks when FBS
   grows the datagram — so, like the paper, the MSS calculation reads
   the security-header allowance published by the host's security
   layer. *)

(* The FBS IP mapping stores its header size under this extension tag so
   that MSS computation can subtract it (the paper's tcp_output change). *)
exception Mss_reduction of int

let mss_reduction_tag = "tcp-mss-reduction"

let set_mss_reduction host n =
  Host.set_extension host ~tag:mss_reduction_tag (Mss_reduction n)

let mss_reduction host =
  match Host.find_extension host ~tag:mss_reduction_tag with
  | Some (Mss_reduction n) -> n
  | Some _ | None -> 0

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait (* we sent FIN, awaiting its ACK (and possibly peer FIN) *)
  | Close_wait (* peer sent FIN; we have not closed yet *)
  | Last_ack (* peer closed, then we sent FIN *)
  | Closed

type conn = {
  host : Host.t;
  local_port : int;
  peer : Addr.t;
  peer_port : int;
  window : int; (* our advertised receive window *)
  (* Adaptive retransmission timeout (RFC 6298 style): smoothed RTT and
     variance estimated from ack timing, Karn's rule (no samples across
     retransmissions), exponential backoff on timeout. *)
  mutable rto : float;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rtt_probe : (int32 * float) option; (* ack that will sample, send time *)
  (* Congestion control (RFC 5681/6582): slow start below [ssthresh],
     additive increase above it, fast retransmit after three duplicate
     ACKs with NewReno hole-filling until [recover], multiplicative
     decrease on loss.  Flight is capped by min(cwnd, peer window,
     [window]). *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable snd_wnd : int; (* peer's advertised window *)
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover : int32; (* snd_nxt when fast retransmit fired *)
  mutable state : state;
  mutable snd_una : int32;
  mutable snd_nxt : int32;
  sendq : Fbsr_util.Byte_queue.t; (* bytes from snd_una onward *)
  mutable fin_pending : bool;
  mutable fin_seq : int32 option; (* sequence number our FIN occupies *)
  mutable rcv_nxt : int32;
  ooo : (int32, string) Hashtbl.t; (* ahead-of-sequence segments, by seq *)
  mutable on_receive : string -> unit;
  mutable on_established : unit -> unit;
  mutable on_close : unit -> unit;
  mutable timer_gen : int;
  mutable timer_armed : bool;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable timeouts : int;
  mutable segments_out : int;
  mutable bytes_delivered : int;
}

type host_state = {
  conns : (int * int * int, conn) Hashtbl.t; (* local port, peer, peer port *)
  listeners : (int, conn -> unit) Hashtbl.t;
  mutable next_port : int;
  mutable next_iss : int32;
}

exception E of host_state

let tag = "minitcp"

let get host =
  match Host.find_extension host ~tag with
  | Some (E s) -> s
  | Some _ | None -> invalid_arg "Minitcp: not installed on this host"

let conn_key c = (c.local_port, Addr.to_int c.peer, c.peer_port)

let default_mss host =
  Host.mtu host - Ipv4.header_size - Tcp_seg.header_size - mss_reduction host

(* Like the paper's tcp_output, the segment-size computation reads the
   published security-header allowance every time it sizes a segment, so
   a reduction published after connection setup is honored immediately —
   including for connections established before the security layer came
   up. *)
let conn_mss c = default_mss c.host

(* Cap on buffered ahead-of-sequence segments; beyond it the receiver
   drops and relies on retransmission. *)
let max_ooo = 256

let make_conn host ~local_port ~peer ~peer_port ~iss ~state ?(window = 65535) ?(rto = 0.2)
    () =
  let mss = default_mss host in
  {
    host;
    local_port;
    peer;
    peer_port;
    window;
    rto;
    srtt = None;
    rttvar = 0.0;
    rtt_probe = None;
    cwnd = 2 * mss;
    ssthresh = 65535;
    snd_wnd = 65535;
    dup_acks = 0;
    in_recovery = false;
    recover = iss;
    state;
    snd_una = iss;
    snd_nxt = iss;
    sendq = Fbsr_util.Byte_queue.create ();
    fin_pending = false;
    fin_seq = None;
    rcv_nxt = 0l;
    ooo = Hashtbl.create 16;
    on_receive = (fun _ -> ());
    on_established = (fun () -> ());
    on_close = (fun () -> ());
    timer_gen = 0;
    timer_armed = false;
    retransmits = 0;
    fast_retransmits = 0;
    timeouts = 0;
    segments_out = 0;
    bytes_delivered = 0;
  }

let emit c ~seq ~flags payload =
  let h =
    {
      Tcp_seg.src_port = c.local_port;
      dst_port = c.peer_port;
      seq;
      ack_seq = c.rcv_nxt;
      flags;
      window = c.window land 0xffff;
    }
  in
  let raw = Tcp_seg.encode ~src:(Host.addr c.host) ~dst:c.peer h payload in
  c.segments_out <- c.segments_out + 1;
  (* tcp_output sets DF: it sized the segment to avoid fragmentation.  The
     MSS already accounts for the security header via [mss_reduction]. *)
  Host.ip_output c.host ~dont_fragment:true ~protocol:Ipv4.proto_tcp ~dst:c.peer raw

let ack_flags = { Tcp_seg.no_flags with ack = true }

let rec arm_timer c =
  if not c.timer_armed then begin
    c.timer_armed <- true;
    let gen = c.timer_gen in
    Engine.schedule (Host.engine c.host) ~delay:c.rto (fun () -> on_timer c gen)
  end

and on_timer c gen =
  if gen = c.timer_gen && c.state <> Closed then begin
    c.timer_armed <- false;
    let outstanding = Tcp_seg.seq_diff c.snd_nxt c.snd_una in
    if outstanding > 0 || c.state = Syn_sent || c.state = Syn_received then begin
      c.retransmits <- c.retransmits + 1;
      c.timeouts <- c.timeouts + 1;
      (* Timeout is the strong congestion signal: halve the flight into
         ssthresh, restart from one segment, abandon any fast-recovery
         episode. *)
      c.ssthresh <- max (outstanding / 2) (2 * (conn_mss c));
      c.cwnd <- (conn_mss c);
      c.dup_acks <- 0;
      c.in_recovery <- false;
      (* Exponential backoff; discard any in-flight RTT sample (Karn). *)
      c.rto <- Float.min 60.0 (c.rto *. 2.0);
      c.rtt_probe <- None;
      retransmit_one c;
      arm_timer c
    end
  end
  else if gen = c.timer_gen then c.timer_armed <- false

and cancel_timer c =
  c.timer_gen <- c.timer_gen + 1;
  c.timer_armed <- false

(* Resend only the first unacknowledged segment — the cumulative ACK (or
   the receiver's reassembly buffer) tells us nothing beyond the first
   hole, and resending the whole window is go-back-N waste. *)
and retransmit_one c =
  match c.state with
  | Syn_sent -> emit c ~seq:c.snd_una ~flags:{ Tcp_seg.no_flags with syn = true } ""
  | Syn_received ->
      emit c ~seq:c.snd_una ~flags:{ Tcp_seg.no_flags with syn = true; ack = true } ""
  | Established | Fin_wait | Close_wait | Last_ack -> (
      match c.fin_seq with
      | Some fs when Tcp_seg.seq_cmp c.snd_una fs >= 0 ->
          (* All data acked; the unacked octet is our FIN. *)
          emit c ~seq:fs ~flags:{ ack_flags with fin = true } ""
      | _ ->
          let outstanding = Tcp_seg.seq_diff c.snd_nxt c.snd_una in
          let data_out =
            match c.fin_seq with
            | Some fs when Tcp_seg.seq_cmp c.snd_nxt fs > 0 -> outstanding - 1
            | _ -> outstanding
          in
          let len = min (conn_mss c) data_out in
          if len > 0 then
            emit c ~seq:c.snd_una
              ~flags:{ ack_flags with psh = len = data_out }
              (Fbsr_util.Byte_queue.read c.sendq ~off:0 ~len))
  | Closed -> ()

and try_output c =
  match c.state with
  | Established | Close_wait ->
      let effective_window = min c.window (min c.cwnd (max (conn_mss c) c.snd_wnd)) in
      let in_flight = Tcp_seg.seq_diff c.snd_nxt c.snd_una in
      let unsent = Fbsr_util.Byte_queue.length c.sendq - in_flight in
      let budget = ref (min unsent (effective_window - in_flight)) in
      while !budget > 0 do
        let in_flight = Tcp_seg.seq_diff c.snd_nxt c.snd_una in
        let len = min (conn_mss c) !budget in
        let payload = Fbsr_util.Byte_queue.read c.sendq ~off:in_flight ~len in
        emit c ~seq:c.snd_nxt ~flags:{ ack_flags with psh = len = !budget } payload;
        c.snd_nxt <- Tcp_seg.seq_add c.snd_nxt len;
        if c.rtt_probe = None then
          c.rtt_probe <- Some (c.snd_nxt, Engine.now (Host.engine c.host));
        budget := !budget - len;
        arm_timer c
      done;
      (* Send FIN once all data is queued on the wire. *)
      if
        c.fin_pending && c.fin_seq = None
        && Fbsr_util.Byte_queue.length c.sendq = Tcp_seg.seq_diff c.snd_nxt c.snd_una
      then begin
        c.fin_seq <- Some c.snd_nxt;
        emit c ~seq:c.snd_nxt ~flags:{ ack_flags with fin = true } "";
        c.snd_nxt <- Tcp_seg.seq_add c.snd_nxt 1;
        c.state <- (if c.state = Close_wait then Last_ack else Fin_wait);
        arm_timer c
      end
  | Syn_sent | Syn_received | Fin_wait | Last_ack | Closed -> ()

let destroy c =
  cancel_timer c;
  c.state <- Closed;
  Hashtbl.remove (get c.host).conns (conn_key c)

let handle_ack c (h : Tcp_seg.header) ~payload_len =
  if h.flags.ack then begin
    c.snd_wnd <- h.window;
    let ack = h.ack_seq in
    if Tcp_seg.seq_cmp ack c.snd_una > 0 && Tcp_seg.seq_cmp ack c.snd_nxt <= 0 then begin
      let advanced = Tcp_seg.seq_diff ack c.snd_una in
      (* Bytes consumed from the send queue exclude any FIN sequence slot. *)
      let data_bytes =
        match c.fin_seq with
        | Some fs when Tcp_seg.seq_cmp ack fs > 0 -> advanced - 1
        | _ -> advanced
      in
      if data_bytes > 0 then Fbsr_util.Byte_queue.drop c.sendq data_bytes;
      c.snd_una <- ack;
      c.dup_acks <- 0;
      (* Congestion window update. *)
      if c.in_recovery then begin
        if Tcp_seg.seq_cmp ack c.recover >= 0 then begin
          (* Full ack: the whole flight at loss detection is repaired. *)
          c.in_recovery <- false;
          c.cwnd <- c.ssthresh
        end
        else begin
          (* Partial ack: the next hole is also lost — retransmit it now
             (NewReno) and deflate the inflation by what was acked. *)
          c.retransmits <- c.retransmits + 1;
          c.rtt_probe <- None;
          retransmit_one c;
          c.cwnd <- max (conn_mss c) (c.cwnd - advanced + (conn_mss c))
        end
      end
      else if c.cwnd < c.ssthresh then
        (* Slow start: one MSS per ACK (bounded by bytes acked). *)
        c.cwnd <- c.cwnd + min advanced (conn_mss c)
      else
        (* Congestion avoidance: ~one MSS per RTT. *)
        c.cwnd <- c.cwnd + max 1 ((conn_mss c) * (conn_mss c) / c.cwnd);
      (* RTT sample: the probe's ack (or any later one) arrived without an
         intervening retransmission. *)
      (match c.rtt_probe with
      | Some (probe_seq, sent_at) when Tcp_seg.seq_cmp ack probe_seq >= 0 ->
          c.rtt_probe <- None;
          let rtt = Engine.now (Host.engine c.host) -. sent_at in
          (match c.srtt with
          | None ->
              c.srtt <- Some rtt;
              c.rttvar <- rtt /. 2.0
          | Some srtt ->
              c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. abs_float (srtt -. rtt));
              c.srtt <- Some ((0.875 *. srtt) +. (0.125 *. rtt)));
          let srtt = Option.value ~default:rtt c.srtt in
          c.rto <- Float.max 0.05 (Float.min 60.0 (srtt +. (4.0 *. c.rttvar) +. 0.01))
      | _ -> ());
      cancel_timer c;
      if Tcp_seg.seq_cmp c.snd_nxt c.snd_una > 0 then arm_timer c;
      (match (c.state, c.fin_seq) with
      | Fin_wait, Some fs when Tcp_seg.seq_cmp ack fs > 0 ->
          (* Our FIN is acked; if the peer already closed we are done,
             otherwise wait for its FIN. *)
          ()
      | Last_ack, Some fs when Tcp_seg.seq_cmp ack fs > 0 ->
          let cb = c.on_close in
          destroy c;
          cb ()
      | _ -> ());
      try_output c
    end
    else if
      Tcp_seg.seq_cmp ack c.snd_una = 0
      && payload_len = 0
      && (not h.flags.syn) && (not h.flags.fin)
      && Tcp_seg.seq_diff c.snd_nxt c.snd_una > 0
    then begin
      (* Duplicate ACK: the receiver got something ahead of sequence. *)
      c.dup_acks <- c.dup_acks + 1;
      if c.dup_acks = 3 && not c.in_recovery then begin
        (* Fast retransmit: resend the first unacked segment without
           waiting for the RTO, then inflate by the three segments known
           to have left the network. *)
        let flight = Tcp_seg.seq_diff c.snd_nxt c.snd_una in
        c.ssthresh <- max (flight / 2) (2 * (conn_mss c));
        c.cwnd <- c.ssthresh + (3 * (conn_mss c));
        c.in_recovery <- true;
        c.recover <- c.snd_nxt;
        c.fast_retransmits <- c.fast_retransmits + 1;
        c.retransmits <- c.retransmits + 1;
        c.rtt_probe <- None;
        retransmit_one c;
        cancel_timer c;
        arm_timer c
      end
      else if c.in_recovery then begin
        (* Each further dup ACK means another segment left the network. *)
        c.cwnd <- c.cwnd + (conn_mss c);
        try_output c
      end
    end
  end

(* Deliver any buffered ahead-of-sequence segments that now overlap
   [rcv_nxt] (partial overlaps deliver only the fresh tail). *)
let rec drain_ooo c =
  let next = ref None in
  Hashtbl.iter
    (fun seq payload ->
      if !next = None && Tcp_seg.seq_cmp seq c.rcv_nxt <= 0 then
        next := Some (seq, payload))
    c.ooo;
  match !next with
  | None -> ()
  | Some (seq, payload) ->
      Hashtbl.remove c.ooo seq;
      let len = String.length payload in
      let past = Tcp_seg.seq_diff c.rcv_nxt seq in
      if past < len then begin
        let fresh = String.sub payload past (len - past) in
        c.rcv_nxt <- Tcp_seg.seq_add c.rcv_nxt (len - past);
        c.bytes_delivered <- c.bytes_delivered + (len - past);
        c.on_receive fresh
      end;
      drain_ooo c

let deliver_data c (h : Tcp_seg.header) payload =
  let len = String.length payload in
  if len > 0 then begin
    if Tcp_seg.seq_cmp h.seq c.rcv_nxt <= 0 then begin
      (* In order, possibly overlapping already-delivered bytes (a
         retransmission crossing its ACK): deliver only the fresh tail. *)
      let past = Tcp_seg.seq_diff c.rcv_nxt h.seq in
      if past < len then begin
        let fresh = if past = 0 then payload else String.sub payload past (len - past) in
        c.rcv_nxt <- Tcp_seg.seq_add h.seq len;
        c.bytes_delivered <- c.bytes_delivered + (len - past);
        c.on_receive fresh;
        drain_ooo c
      end
    end
    else if Hashtbl.length c.ooo < max_ooo then
      Hashtbl.replace c.ooo h.seq payload;
    (* ACK unconditionally: in-order data advances the cumulative ack,
       anything else produces the duplicate ACKs that drive the sender's
       fast retransmit. *)
    emit c ~seq:c.snd_nxt ~flags:ack_flags ""
  end

let handle_fin c (h : Tcp_seg.header) payload_len =
  if h.flags.fin then begin
    let fin_seq = Tcp_seg.seq_add h.seq payload_len in
    if Tcp_seg.seq_cmp fin_seq c.rcv_nxt = 0 then begin
      c.rcv_nxt <- Tcp_seg.seq_add c.rcv_nxt 1;
      emit c ~seq:c.snd_nxt ~flags:ack_flags "";
      match c.state with
      | Established ->
          c.state <- Close_wait;
          c.on_close ()
      | Fin_wait ->
          (* Both sides closed. *)
          let cb = c.on_close in
          destroy c;
          cb ()
      | Syn_sent | Syn_received | Close_wait | Last_ack | Closed -> ()
    end
    else if Tcp_seg.seq_cmp fin_seq c.rcv_nxt < 0 then
      (* Duplicate FIN: re-ACK. *)
      emit c ~seq:c.snd_nxt ~flags:ack_flags ""
  end

let fresh_iss s =
  let iss = s.next_iss in
  s.next_iss <- Int32.add s.next_iss 64021l;
  iss

let handle host (ih : Ipv4.header) payload =
  let s = get host in
  match Tcp_seg.decode ~src:ih.src ~dst:ih.dst payload with
  | exception Tcp_seg.Bad_segment _ -> ()
  | h, data -> (
      let key = (h.dst_port, Addr.to_int ih.src, h.src_port) in
      match Hashtbl.find_opt s.conns key with
      | Some c -> (
          match c.state with
          | Syn_sent ->
              if h.flags.syn && h.flags.ack && Tcp_seg.seq_cmp h.ack_seq c.snd_nxt = 0
              then begin
                c.rcv_nxt <- Tcp_seg.seq_add h.seq 1;
                c.snd_una <- h.ack_seq;
                c.snd_wnd <- h.window;
                c.state <- Established;
                cancel_timer c;
                emit c ~seq:c.snd_nxt ~flags:ack_flags "";
                c.on_established ();
                try_output c
              end
          | Syn_received ->
              if h.flags.ack && Tcp_seg.seq_cmp h.ack_seq c.snd_nxt = 0 then begin
                c.state <- Established;
                c.snd_una <- h.ack_seq;
                c.snd_wnd <- h.window;
                cancel_timer c;
                c.on_established ();
                (* The ACK may carry data. *)
                deliver_data c h data;
                handle_fin c h (String.length data);
                try_output c
              end
          | Established | Fin_wait | Close_wait | Last_ack ->
              handle_ack c h ~payload_len:(String.length data);
              if c.state <> Closed then begin
                deliver_data c h data;
                handle_fin c h (String.length data)
              end
          | Closed -> ())
      | None -> (
          (* No connection: a SYN to a listening port creates one. *)
          match Hashtbl.find_opt s.listeners h.dst_port with
          | Some accept_cb when h.flags.syn && not h.flags.ack ->
              let iss = fresh_iss s in
              let c =
                make_conn host ~local_port:h.dst_port ~peer:ih.src ~peer_port:h.src_port
                  ~iss ~state:Syn_received ()
              in
              c.rcv_nxt <- Tcp_seg.seq_add h.seq 1;
              c.snd_wnd <- h.window;
              Hashtbl.replace s.conns (conn_key c) c;
              (* Let the application set callbacks before any data flows. *)
              accept_cb c;
              emit c ~seq:c.snd_nxt ~flags:{ Tcp_seg.no_flags with syn = true; ack = true } "";
              c.snd_nxt <- Tcp_seg.seq_add c.snd_nxt 1;
              arm_timer c
          | _ -> ()))

let install host =
  let s =
    { conns = Hashtbl.create 16; listeners = Hashtbl.create 8; next_port = 0x8000;
      next_iss = 1000l }
  in
  Host.set_extension host ~tag (E s);
  Host.register_protocol host ~protocol:Ipv4.proto_tcp handle

let listen host ~port accept_cb =
  let s = get host in
  if Hashtbl.mem s.listeners port then invalid_arg "Minitcp.listen: port in use";
  Hashtbl.replace s.listeners port accept_cb

let connect host ~dst ~dst_port =
  let s = get host in
  let rec pick tries =
    if tries > 0x4000 then failwith "Minitcp: no free ports";
    let p = s.next_port in
    s.next_port <- (if p >= 0xbfff then 0x8000 else p + 1);
    if Hashtbl.mem s.conns (p, Addr.to_int dst, dst_port) then pick (tries + 1) else p
  in
  let local_port = pick 0 in
  let iss = fresh_iss s in
  let c = make_conn host ~local_port ~peer:dst ~peer_port:dst_port ~iss ~state:Syn_sent () in
  Hashtbl.replace s.conns (conn_key c) c;
  emit c ~seq:c.snd_nxt ~flags:{ Tcp_seg.no_flags with syn = true } "";
  c.snd_nxt <- Tcp_seg.seq_add c.snd_nxt 1;
  arm_timer c;
  c

let send c data =
  if c.state = Closed || c.fin_pending then invalid_arg "Minitcp.send: connection closing";
  Fbsr_util.Byte_queue.push c.sendq data;
  try_output c

let close c =
  if not c.fin_pending && c.state <> Closed then begin
    c.fin_pending <- true;
    try_output c
  end

let abort c = if c.state <> Closed then destroy c

let on_receive c f = c.on_receive <- f
let on_established c f = c.on_established <- f
let on_close c f = c.on_close <- f

let state c = c.state
let mss c = conn_mss c
let bytes_delivered c = c.bytes_delivered
let retransmits c = c.retransmits
let fast_retransmits c = c.fast_retransmits
let timeouts c = c.timeouts
let cwnd c = c.cwnd
let ssthresh c = c.ssthresh
let rto c = c.rto
let segments_out c = c.segments_out
let local_port c = c.local_port
let peer c = (c.peer, c.peer_port)
