(** Fault-injection link layer: a deterministic (seeded-RNG) stage between
    a host and its medium that can drop, duplicate, reorder (bounded delay
    queue), truncate and bit-flip frames, with per-link statistics.

    This is the adversarial-network substrate for the soft-state robustness
    claims of the paper's Sections 5.3 and 6: attach one with
    {!Host.set_link} and every egress frame passes through it. *)

type profile = {
  drop : float;  (** P(frame silently discarded) *)
  duplicate : float;  (** P(frame delivered twice) *)
  reorder : float;  (** P(frame held back so later frames overtake it) *)
  reorder_delay : float;  (** bound (seconds) on the reorder hold-back *)
  truncate : float;  (** P(frame cut to a random proper prefix) *)
  corrupt : float;  (** P(one random bit flipped) *)
}

val perfect : profile
(** All fault probabilities zero (10 ms reorder-delay bound, unused). *)

type stats = {
  mutable offered : int;
  mutable delivered : int;  (** deliveries performed, duplicates included *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable truncated : int;
  mutable corrupted : int;
}

val new_stats : unit -> stats
(** A zeroed statistics record (for aggregation across links). *)

type t

val create :
  ?seed:int -> ?profile:profile -> ?spans:Fbsr_util.Span.t -> Engine.t -> t
(** [spans] (default disabled) records one ["netsim.link"] span per
    delivery of a traced frame (the ambient {!Fbsr_util.Span.current} id
    at transmit time; untraced frames record nothing), with fault
    verdicts in the detail and a terminal ["drop:link"] outcome for
    dropped frames.  The ambient id is restored around each [deliver]
    callback, so the receive side joins the sender's trace.
    @raise Invalid_argument if a probability is outside [0,1] or
    [reorder_delay] is negative. *)

val profile : t -> profile
val set_profile : t -> profile -> unit
val set_spans : t -> Fbsr_util.Span.t -> unit
val stats : t -> stats

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register pull-probes for every {!stats} field under the registry's
    current prefix — scope it first, e.g.
    [register_metrics l (Metrics.sub m "netsim.link")].  Registering
    several links under one scope sums their statistics. *)

val transmit : t -> deliver:(string -> unit) -> string -> unit
(** Pass one frame through the fault stage.  [deliver] is called zero, one
    or two times — immediately, or up to [reorder_delay] seconds later for
    held-back frames — possibly with a truncated or bit-flipped frame. *)

val pp_stats : Format.formatter -> stats -> unit
