(* Fault-injection link layer.

   The paper's central robustness claim (Sections 5.3, 6) is that FBS is
   built entirely from soft state over an *insecure, unreliable* datagram
   substrate: any cache entry may be dropped at any time and the protocol
   merely recomputes, and any datagram may be lost, duplicated, reordered
   or tampered with and the protocol merely rejects or recovers.  The
   perfect in-memory medium never exercises that claim, so every host's
   egress can be routed through a [Link.t]: a deterministic (seeded-RNG)
   fault stage that drops, duplicates, reorders, truncates, and bit-flips
   frames, with per-link statistics.

   Faults are applied in a fixed order per frame — drop, then mutation
   (truncate / bit-flip), then scheduling (reorder hold-back, duplicate) —
   so a single uniform draw per fault keeps runs reproducible from one
   integer seed regardless of which faults are enabled.

   Reordering uses a bounded delay queue: a reordered frame is held back a
   uniform time in (0, reorder_delay] while later frames overtake it.  The
   bound means no frame is delayed indefinitely, so "eventual delivery"
   remains meaningful. *)

type profile = {
  drop : float;  (* P(frame silently discarded) *)
  duplicate : float;  (* P(frame delivered twice) *)
  reorder : float;  (* P(frame held back so later frames overtake it) *)
  reorder_delay : float;  (* bound (seconds) on the hold-back *)
  truncate : float;  (* P(frame cut to a random proper prefix) *)
  corrupt : float;  (* P(one random bit flipped) *)
}

let perfect =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_delay = 0.01;
    truncate = 0.0;
    corrupt = 0.0;
  }

let validate_profile p =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Link: %s probability %g not in [0,1]" name v)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "reorder" p.reorder;
  prob "truncate" p.truncate;
  prob "corrupt" p.corrupt;
  if p.reorder_delay < 0.0 then invalid_arg "Link: negative reorder_delay"

type stats = {
  mutable offered : int;  (* frames handed to the link *)
  mutable delivered : int;  (* deliveries performed (duplicates included) *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable truncated : int;
  mutable corrupted : int;
}

let new_stats () =
  {
    offered = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    truncated = 0;
    corrupted = 0;
  }

type t = {
  engine : Engine.t;
  rng : Fbsr_util.Rng.t;
  mutable profile : profile;
  stats : stats;
}

let create ?(seed = 0x7a11) ?(profile = perfect) engine =
  validate_profile profile;
  { engine; rng = Fbsr_util.Rng.create seed; profile; stats = new_stats () }

let profile t = t.profile

let set_profile t p =
  validate_profile p;
  t.profile <- p

let stats t = t.stats

(* Registry names relative to the caller's scope (e.g. "netsim.link").
   Registering every link of a medium under one scope sums them into the
   site-wide fault totals. *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  let s = t.stats in
  register_probe m "offered" (fun () -> s.offered);
  register_probe m "delivered" (fun () -> s.delivered);
  register_probe m "dropped" (fun () -> s.dropped);
  register_probe m "duplicated" (fun () -> s.duplicated);
  register_probe m "reordered" (fun () -> s.reordered);
  register_probe m "truncated" (fun () -> s.truncated);
  register_probe m "corrupted" (fun () -> s.corrupted)

let hit t p = p > 0.0 && Fbsr_util.Rng.uniform t.rng < p

(* Fault mutations operate on borrowed slices of the offered frame: a
   truncation is just a narrower view (no copy), and only a bit-flip
   materializes a mutated buffer (one blit).  The RNG draw order is
   identical to the original string-based stages, so runs stay
   reproducible from the same seed. *)

(* Cut the frame to a uniformly random proper prefix (possibly empty). *)
let truncate_frame t (frame : Fbsr_util.Slice.t) =
  t.stats.truncated <- t.stats.truncated + 1;
  Fbsr_util.Slice.sub frame ~pos:0
    ~len:(Fbsr_util.Rng.int t.rng (Fbsr_util.Slice.length frame))

(* Flip one uniformly random bit. *)
let corrupt_frame t (frame : Fbsr_util.Slice.t) =
  t.stats.corrupted <- t.stats.corrupted + 1;
  let len = Fbsr_util.Slice.length frame in
  let b = Bytes.create len in
  Fbsr_util.Slice.blit frame b 0;
  let bit = Fbsr_util.Rng.int t.rng (8 * len) in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Fbsr_util.Slice.of_bytes_unsafe b

let transmit t ~deliver raw =
  t.stats.offered <- t.stats.offered + 1;
  let p = t.profile in
  if hit t p.drop then t.stats.dropped <- t.stats.dropped + 1
  else begin
    let frame = Fbsr_util.Slice.of_string raw in
    let frame =
      if Fbsr_util.Slice.length frame > 0 && hit t p.truncate then
        truncate_frame t frame
      else frame
    in
    let frame =
      if Fbsr_util.Slice.length frame > 0 && hit t p.corrupt then
        corrupt_frame t frame
      else frame
    in
    (* Materialized once per offered frame: a pristine frame round-trips
       through [of_string]/[to_string] without any copy at all. *)
    let raw = Fbsr_util.Slice.to_string frame in
    let send_one () =
      t.stats.delivered <- t.stats.delivered + 1;
      if hit t p.reorder && p.reorder_delay > 0.0 then begin
        t.stats.reordered <- t.stats.reordered + 1;
        let delay = Fbsr_util.Rng.float t.rng p.reorder_delay in
        Engine.schedule t.engine ~delay (fun () -> deliver raw)
      end
      else deliver raw
    in
    send_one ();
    if hit t p.duplicate then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      send_one ()
    end
  end

let pp_stats ppf s =
  Fmt.pf ppf
    "offered=%d delivered=%d dropped=%d duplicated=%d reordered=%d truncated=%d \
     corrupted=%d"
    s.offered s.delivered s.dropped s.duplicated s.reordered s.truncated s.corrupted
