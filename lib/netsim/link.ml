(* Fault-injection link layer.

   The paper's central robustness claim (Sections 5.3, 6) is that FBS is
   built entirely from soft state over an *insecure, unreliable* datagram
   substrate: any cache entry may be dropped at any time and the protocol
   merely recomputes, and any datagram may be lost, duplicated, reordered
   or tampered with and the protocol merely rejects or recovers.  The
   perfect in-memory medium never exercises that claim, so every host's
   egress can be routed through a [Link.t]: a deterministic (seeded-RNG)
   fault stage that drops, duplicates, reorders, truncates, and bit-flips
   frames, with per-link statistics.

   Faults are applied in a fixed order per frame — drop, then mutation
   (truncate / bit-flip), then scheduling (reorder hold-back, duplicate) —
   so a single uniform draw per fault keeps runs reproducible from one
   integer seed regardless of which faults are enabled.

   Reordering uses a bounded delay queue: a reordered frame is held back a
   uniform time in (0, reorder_delay] while later frames overtake it.  The
   bound means no frame is delayed indefinitely, so "eventual delivery"
   remains meaningful. *)

type profile = {
  drop : float;  (* P(frame silently discarded) *)
  duplicate : float;  (* P(frame delivered twice) *)
  reorder : float;  (* P(frame held back so later frames overtake it) *)
  reorder_delay : float;  (* bound (seconds) on the hold-back *)
  truncate : float;  (* P(frame cut to a random proper prefix) *)
  corrupt : float;  (* P(one random bit flipped) *)
}

let perfect =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_delay = 0.01;
    truncate = 0.0;
    corrupt = 0.0;
  }

let validate_profile p =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Link: %s probability %g not in [0,1]" name v)
  in
  prob "drop" p.drop;
  prob "duplicate" p.duplicate;
  prob "reorder" p.reorder;
  prob "truncate" p.truncate;
  prob "corrupt" p.corrupt;
  if p.reorder_delay < 0.0 then invalid_arg "Link: negative reorder_delay"

type stats = {
  mutable offered : int;  (* frames handed to the link *)
  mutable delivered : int;  (* deliveries performed (duplicates included) *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable truncated : int;
  mutable corrupted : int;
}

let new_stats () =
  {
    offered = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    truncated = 0;
    corrupted = 0;
  }

type t = {
  engine : Engine.t;
  rng : Fbsr_util.Rng.t;
  mutable profile : profile;
  stats : stats;
  mutable spans : Fbsr_util.Span.t;
}

let create ?(seed = 0x7a11) ?(profile = perfect)
    ?(spans = Fbsr_util.Span.none) engine =
  validate_profile profile;
  {
    engine;
    rng = Fbsr_util.Rng.create seed;
    profile;
    stats = new_stats ();
    spans;
  }

let set_spans t spans = t.spans <- spans
let profile t = t.profile

let set_profile t p =
  validate_profile p;
  t.profile <- p

let stats t = t.stats

(* Registry names relative to the caller's scope (e.g. "netsim.link").
   Registering every link of a medium under one scope sums them into the
   site-wide fault totals. *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  let s = t.stats in
  register_probe m "offered" (fun () -> s.offered);
  register_probe m "delivered" (fun () -> s.delivered);
  register_probe m "dropped" (fun () -> s.dropped);
  register_probe m "duplicated" (fun () -> s.duplicated);
  register_probe m "reordered" (fun () -> s.reordered);
  register_probe m "truncated" (fun () -> s.truncated);
  register_probe m "corrupted" (fun () -> s.corrupted)

let hit t p = p > 0.0 && Fbsr_util.Rng.uniform t.rng < p

(* Fault mutations operate on borrowed slices of the offered frame: a
   truncation is just a narrower view (no copy), and only a bit-flip
   materializes a mutated buffer (one blit).  The RNG draw order is
   identical to the original string-based stages, so runs stay
   reproducible from the same seed. *)

(* Cut the frame to a uniformly random proper prefix (possibly empty). *)
let truncate_frame t (frame : Fbsr_util.Slice.t) =
  t.stats.truncated <- t.stats.truncated + 1;
  Fbsr_util.Slice.sub frame ~pos:0
    ~len:(Fbsr_util.Rng.int t.rng (Fbsr_util.Slice.length frame))

(* Flip one uniformly random bit. *)
let corrupt_frame t (frame : Fbsr_util.Slice.t) =
  t.stats.corrupted <- t.stats.corrupted + 1;
  let len = Fbsr_util.Slice.length frame in
  let b = Bytes.create len in
  Fbsr_util.Slice.blit frame b 0;
  let bit = Fbsr_util.Rng.int t.rng (8 * len) in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Fbsr_util.Slice.of_bytes_unsafe b

let transmit t ~deliver raw =
  t.stats.offered <- t.stats.offered + 1;
  (* Sidecar capture: the frame carries no trace bytes, so the ambient
     trace id is read at transmit time and restored around each delivery
     callback — this is how receive-side spans join the sender's trace.
     An id of 0 (no trace in scope, or tracing disabled) records nothing.
     The RNG draw order below is unchanged from the untraced code, so
     runs stay reproducible from the same seed with tracing on or off. *)
  let tid =
    if Fbsr_util.Span.enabled t.spans then Fbsr_util.Span.current () else 0L
  in
  let tm = if Int64.equal tid 0L then None else Some (Fbsr_util.Span.start t.spans) in
  let p = t.profile in
  if hit t p.drop then begin
    t.stats.dropped <- t.stats.dropped + 1;
    match tm with
    | Some stm ->
        (* Terminal: the datagram's life ends on this link. *)
        Fbsr_util.Span.finish t.spans stm ~id:tid ~outcome:"drop:link"
          "netsim.link"
          ~detail:[ ("verdict", Fbsr_util.Json.String "drop") ]
    | None -> ()
  end
  else begin
    let frame = Fbsr_util.Slice.of_string raw in
    let truncated = Fbsr_util.Slice.length frame > 0 && hit t p.truncate in
    let frame = if truncated then truncate_frame t frame else frame in
    let corrupted = Fbsr_util.Slice.length frame > 0 && hit t p.corrupt in
    let frame = if corrupted then corrupt_frame t frame else frame in
    (* Materialized once per offered frame: a pristine frame round-trips
       through [of_string]/[to_string] without any copy at all. *)
    let raw = Fbsr_util.Slice.to_string frame in
    let record_transit stm ~reordered ~dup =
      Fbsr_util.Span.finish t.spans stm ~id:tid "netsim.link"
        ~detail:
          [
            ("truncated", Fbsr_util.Json.Bool truncated);
            ("corrupted", Fbsr_util.Json.Bool corrupted);
            ("reordered", Fbsr_util.Json.Bool reordered);
            ("duplicate", Fbsr_util.Json.Bool dup);
          ]
    in
    let deliver_traced () =
      if Int64.equal tid 0L then deliver raw
      else Fbsr_util.Span.with_current tid (fun () -> deliver raw)
    in
    let send_one ~dup =
      t.stats.delivered <- t.stats.delivered + 1;
      if hit t p.reorder && p.reorder_delay > 0.0 then begin
        t.stats.reordered <- t.stats.reordered + 1;
        let delay = Fbsr_util.Rng.float t.rng p.reorder_delay in
        Engine.schedule t.engine ~delay (fun () ->
            (* One span per delivery (a duplicated frame records two,
               sharing the begin timestamp); a held-back frame's span ends
               at its delayed delivery, making the hold-back visible. *)
            (match tm with
            | Some stm -> record_transit stm ~reordered:true ~dup
            | None -> ());
            deliver_traced ())
      end
      else begin
        (match tm with
        | Some stm -> record_transit stm ~reordered:false ~dup
        | None -> ());
        deliver_traced ()
      end
    in
    send_one ~dup:false;
    if hit t p.duplicate then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      send_one ~dup:true
    end
  end

let pp_stats ppf s =
  Fmt.pf ppf
    "offered=%d delivered=%d dropped=%d duplicated=%d reordered=%d truncated=%d \
     corrupted=%d"
    s.offered s.delivered s.dropped s.duplicated s.reordered s.truncated s.corrupted
