(** Simulated host IP stack with 4.4BSD-style hook points.

    The output path mirrors ip_output's three logical parts (process /
    fragment / transmit) and the input path mirrors ip_input's (validate /
    reassemble / dispatch).  Security hooks run between parts 1-2 on output
    and parts 2-3 on input — the exact insertion points of the paper's
    FBSSend()/FBSReceive() kernel hooks. *)

type hook_result = Pass of Ipv4.header * string | Drop of string

type hook = Ipv4.header -> string -> hook_result

type stats = {
  mutable packets_out : int;
  mutable packets_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable fragments_out : int;
  mutable reassembled : int;
  mutable drops_bad : int;
  mutable drops_hook : int;
  mutable drops_no_proto : int;
  mutable drops_not_mine : int;
  mutable send_errors : int;
}

type t

val create : name:string -> addr:Addr.t -> ?mtu:int -> Engine.t -> t
val attach : t -> Medium.t -> unit

val name : t -> string
val addr : t -> Addr.t
val engine : t -> Engine.t
val mtu : t -> int
val stats : t -> stats

val now : t -> float
(** This host's local clock: simulated time plus its clock offset. *)

val set_clock_offset : t -> float -> unit
(** Skew this host's clock (FBS only assumes loose synchronization; this
    knob quantifies "loose"). *)

val clock_offset : t -> float

val set_gateway : t -> prefix:int -> gateway:Addr.t -> unit
(** Off-subnet destinations are framed to [gateway] at the link layer; the
    IP destination is unchanged so a {!Router} can forward. *)

val set_link : t -> Link.t -> unit
(** Route every egress frame through a fault-injection {!Link} (applied
    after fragmentation, before the medium). *)

val clear_link : t -> unit
val link : t -> Link.t option

val set_output_hook : t -> hook -> unit
val set_input_hook : t -> hook -> unit
val clear_hooks : t -> unit

val register_protocol : t -> protocol:int -> (t -> Ipv4.header -> string -> unit) -> unit

exception Send_error of string

val ip_output :
  t -> ?dont_fragment:bool -> ?ttl:int -> protocol:int -> dst:Addr.t -> string -> unit
(** @raise Send_error if unattached, or if DF is set and the datagram
    exceeds the MTU. *)

val ip_input : t -> string -> unit
(** Entry point for raw packets from the medium (exposed for tests). *)

val transmit_prepared : t -> Ipv4.header -> string -> unit
(** Output parts 2+3 only (fragment + transmit), skipping the output hook:
    lets a security layer finish a datagram that waited on key material. *)

val deliver_up : t -> Ipv4.header -> string -> unit
(** Input part 3 only (protocol dispatch), skipping the input hook. *)

val loopback : t -> protocol:int -> dst:Addr.t -> string -> unit

val set_extension : t -> tag:string -> exn -> unit
val find_extension : t -> tag:string -> exn option
(** Per-host extension state for the transport stacks and FBS engine
    (exception-as-existential storage). *)
