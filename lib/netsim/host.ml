(* A simulated host's IP stack, structured after 4.4BSD's ip_output /
   ip_input so that FBS can hook in at exactly the points the paper's
   FreeBSD implementation modified:

   Output (Section 7.2): part 1 performs the bulk of output processing
   (route selection, header construction); part 2 fragments; part 3
   transmits.  The FBS send hook runs between parts 1 and 2, so FBS
   processing is transparent to IP and fragmentation applies to the
   FBS-augmented datagram.

   Input: part 1 validates; part 2 reassembles; part 3 dispatches to the
   higher-layer protocol.  The FBS receive hook runs between parts 2 and 3.

   A hook takes the header and payload, and may transform them (FBS header
   insertion/removal), pass them through unchanged, or drop the packet. *)

type hook_result =
  | Pass of Ipv4.header * string
  | Drop of string (* reason, counted in stats *)

type hook = Ipv4.header -> string -> hook_result

type stats = {
  mutable packets_out : int;
  mutable packets_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable fragments_out : int;
  mutable reassembled : int;
  mutable drops_bad : int; (* malformed / checksum *)
  mutable drops_hook : int; (* dropped by a security hook *)
  mutable drops_no_proto : int;
  mutable drops_not_mine : int;
  mutable send_errors : int; (* e.g. DF + too big *)
}

let new_stats () =
  {
    packets_out = 0;
    packets_in = 0;
    bytes_out = 0;
    bytes_in = 0;
    fragments_out = 0;
    reassembled = 0;
    drops_bad = 0;
    drops_hook = 0;
    drops_no_proto = 0;
    drops_not_mine = 0;
    send_errors = 0;
  }

type t = {
  name : string;
  addr : Addr.t;
  engine : Engine.t;
  mutable medium : Medium.t option;
  mutable link : Link.t option;
      (* Fault-injection stage between this host and the medium; egress
         frames pass through it when present. *)
  mtu : int;
  protocols : (int, t -> Ipv4.header -> string -> unit) Hashtbl.t;
  mutable output_hook : hook option;
  mutable input_hook : hook option;
  reassembler : Frag.t;
  mutable next_ident : int;
  mutable clock_offset : float;
      (* This host's clock error relative to simulated true time.  FBS's
         timestamp scheme only assumes *loose* synchronization; the offset
         lets tests and experiments quantify how loose. *)
  (* Off-subnet traffic goes to the gateway at the link layer (the IP
     destination is unchanged — that is what lets a router forward it). *)
  mutable subnet_prefix : int option;
  mutable gateway : Addr.t option;
  stats : stats;
  (* Arbitrary per-host extension state (used by the UDP/TCP stacks and by
     FBS to store its engine), keyed by a string tag. *)
  extensions : (string, exn) Hashtbl.t;
}

let create ~name ~addr ?(mtu = 1500) engine =
  {
    name;
    addr;
    engine;
    medium = None;
    link = None;
    mtu;
    protocols = Hashtbl.create 8;
    output_hook = None;
    input_hook = None;
    reassembler = Frag.create ();
    next_ident = 1;
    clock_offset = 0.0;
    subnet_prefix = None;
    gateway = None;
    stats = new_stats ();
    extensions = Hashtbl.create 8;
  }

let name t = t.name
let addr t = t.addr
let engine t = t.engine
let mtu t = t.mtu
let stats t = t.stats
let now t = Engine.now t.engine +. t.clock_offset
let set_clock_offset t seconds = t.clock_offset <- seconds
let clock_offset t = t.clock_offset

let set_gateway t ~prefix ~gateway =
  if prefix < 0 || prefix > 32 then invalid_arg "Host.set_gateway: bad prefix";
  t.subnet_prefix <- Some prefix;
  t.gateway <- Some gateway

(* Link-layer destination for an IP destination: direct neighbours get the
   frame directly, everything else goes to the gateway. *)
let link_dst t dst =
  match (t.subnet_prefix, t.gateway) with
  | Some prefix, Some gw when not (Addr.in_subnet ~network:t.addr ~prefix dst) -> gw
  | _ -> dst

let set_link t link = t.link <- Some link
let clear_link t = t.link <- None
let link t = t.link

let set_output_hook t h = t.output_hook <- Some h
let set_input_hook t h = t.input_hook <- Some h
let clear_hooks t =
  t.output_hook <- None;
  t.input_hook <- None

let register_protocol t ~protocol handler =
  Hashtbl.replace t.protocols protocol handler

(* Extension storage: type-safe via the "exception as existential" trick. *)
let set_extension t ~tag v = Hashtbl.replace t.extensions tag v
let find_extension t ~tag = Hashtbl.find_opt t.extensions tag

let rec ip_input t raw =
  t.stats.packets_in <- t.stats.packets_in + 1;
  t.stats.bytes_in <- t.stats.bytes_in + String.length raw;
  match Ipv4.decode raw with
  | exception Ipv4.Bad_packet _ -> t.stats.drops_bad <- t.stats.drops_bad + 1
  | h, payload ->
      if not (Addr.equal h.dst t.addr || Addr.equal h.dst Addr.broadcast) then
        t.stats.drops_not_mine <- t.stats.drops_not_mine + 1
      else begin
        (* Part 2: reassembly. *)
        match Frag.add t.reassembler ~now:(now t) h payload with
        | None -> ()
        | Some (h, payload) ->
            if h.frag_offset = 0 && not h.more_fragments then ()
            else t.stats.reassembled <- t.stats.reassembled + 1;
            let verdict =
              match t.input_hook with
              | None -> Pass (h, payload)
              | Some hook -> hook h payload
            in
            (match verdict with
            | Drop _ -> t.stats.drops_hook <- t.stats.drops_hook + 1
            | Pass (h, payload) -> dispatch t h payload)
      end

and dispatch t h payload =
  match Hashtbl.find_opt t.protocols h.protocol with
  | Some handler -> handler t h payload
  | None -> t.stats.drops_no_proto <- t.stats.drops_no_proto + 1

let attach t medium =
  t.medium <- Some medium;
  Medium.attach medium ~addr:t.addr ~deliver:(fun raw -> ip_input t raw)

exception Send_error of string

(* Parts 2+3 of output: fix the length, fragment, and transmit each
   fragment — through the fault-injection link when one is attached. *)
let fragment_and_transmit t (h : Ipv4.header) payload =
  let medium =
    match t.medium with
    | Some m -> m
    | None -> raise (Send_error "host not attached to a network")
  in
  let h = { h with Ipv4.total_length = Ipv4.header_length h + String.length payload } in
  match Frag.fragment h payload ~mtu:t.mtu with
  | exception Frag.Cannot_fragment ->
      t.stats.send_errors <- t.stats.send_errors + 1;
      raise (Send_error "message too long (DF set)")
  | fragments ->
      if List.length fragments > 1 then
        t.stats.fragments_out <- t.stats.fragments_out + List.length fragments;
      List.iter
        (fun (fh, fp) ->
          let raw = Ipv4.encode fh fp in
          t.stats.packets_out <- t.stats.packets_out + 1;
          t.stats.bytes_out <- t.stats.bytes_out + String.length raw;
          let dst = link_dst t fh.Ipv4.dst in
          match t.link with
          | None -> Medium.transmit medium ~dst raw
          | Some link ->
              Link.transmit link ~deliver:(fun raw -> Medium.transmit medium ~dst raw) raw)
        fragments

let fresh_ident t =
  let id = t.next_ident in
  t.next_ident <- (t.next_ident + 1) land 0xffff;
  id

let ip_output t ?(dont_fragment = false) ?(ttl = 64) ~protocol ~dst payload =
  if t.medium = None then raise (Send_error "host not attached to a network");
  (* Part 1: header construction (route selection is trivial: one medium). *)
  let h =
    Ipv4.make ~ident:(fresh_ident t) ~dont_fragment ~ttl ~protocol ~src:t.addr ~dst
      ~payload_length:(String.length payload) ()
  in
  (* FBS send hook: between part 1 and fragmentation. *)
  let verdict =
    match t.output_hook with None -> Pass (h, payload) | Some hook -> hook h payload
  in
  match verdict with
  | Drop _ -> t.stats.drops_hook <- t.stats.drops_hook + 1
  | Pass (h, payload) ->
      (* The hook may have grown the payload: [fragment_and_transmit] fixes
         the length (as FBSSend() fixes the IP header after insertion). *)
      fragment_and_transmit t h payload

(* Part 2+3 of output only: fragment and transmit a prepared header and
   payload, skipping the output hook.  Used by a security layer to finish
   sending a datagram whose processing had to wait for key material. *)
let transmit_prepared t (h : Ipv4.header) payload = fragment_and_transmit t h payload

(* Part 3 of input only: hand a datagram to its protocol handler, skipping
   the input hook.  Used by a security layer to finish delivery of a
   datagram whose verification had to wait for key material. *)
let deliver_up t h payload = dispatch t h payload

(* Deliver a packet locally without touching the medium (loopback). *)
let loopback t ~protocol ~dst payload =
  ignore dst;
  let h =
    Ipv4.make ~ident:(fresh_ident t) ~protocol ~src:t.addr ~dst:t.addr
      ~payload_length:(String.length payload) ()
  in
  dispatch t h payload
