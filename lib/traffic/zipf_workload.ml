(* Zipf-popularity job stream.  See zipf_workload.mli. *)

(* 60000 usable source ports per destination port keeps both sides
   inside the dynamic range. *)
let src_ports = 60000
let dst_ports = 60000

type t = {
  zipf : Zipf.t;
  src : Fbsr_fbs.Principal.t;
  dst : Fbsr_fbs.Principal.t;
  payload : string;
  seen : Bytes.t; (* bitset over ranks *)
  mutable drawn : int;
  mutable touched : int;
}

let create ?(seed = 7) ?(s = 1.0) ?(payload = String.make 256 'z') ~flows ~src
    ~dst () =
  if flows > src_ports * dst_ports then
    invalid_arg "Zipf_workload.create: flows exceed the port-pair space";
  {
    zipf = Zipf.create ~s ~n:flows (Fbsr_util.Rng.create seed);
    src;
    dst;
    payload;
    seen = Bytes.make ((flows + 7) / 8) '\000';
    drawn = 0;
    touched = 0;
  }

let flows t = Zipf.n t.zipf
let drawn t = t.drawn
let touched t = t.touched

let attrs_of_rank t rank =
  Fbsr_fbs.Fam.attrs ~protocol:17
    ~src_port:(1024 + (rank mod src_ports))
    ~dst_port:(1024 + (rank / src_ports))
    ~size:(String.length t.payload) ~src:t.src ~dst:t.dst ()

let batch t k =
  Array.init k (fun _ ->
      let rank = Zipf.sample t.zipf in
      let byte = rank lsr 3 and bit = 1 lsl (rank land 7) in
      let b = Char.code (Bytes.get t.seen byte) in
      if b land bit = 0 then begin
        Bytes.set t.seen byte (Char.chr (b lor bit));
        t.touched <- t.touched + 1
      end;
      t.drawn <- t.drawn + 1;
      (attrs_of_rank t rank, t.payload))
