(* Zipf sampler: precomputed CDF + binary search.  See zipf.mli. *)

type t = { n : int; s : float; rng : Fbsr_util.Rng.t; cdf : float array }

let create ?(s = 1.0) ~n rng =
  if n < 1 then invalid_arg "Zipf.create: n < 1";
  if s < 0.0 then invalid_arg "Zipf.create: s < 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.of_int (i + 1) ** s);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  (* Guard against rounding leaving the last bucket unreachable. *)
  cdf.(n - 1) <- 1.0;
  { n; s; rng; cdf }

let n t = t.n
let s t = t.s

let sample t =
  let u = Fbsr_util.Rng.uniform t.rng in
  (* Smallest rank whose cumulative mass covers u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let mass t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.mass: rank out of range";
  t.cdf.(i) -. (if i = 0 then 0.0 else t.cdf.(i - 1))
