(** Zipf-distributed rank sampling for flow popularity.

    Internet flow popularity is heavy-tailed: a few flows carry most
    datagrams while a long tail appears once.  [P(rank = i) ∝ 1/(i+1)^s]
    over ranks [0..n-1]; rank 0 is the most popular flow.  The sampler
    precomputes the normalized CDF once ([O(n)] floats) and answers each
    draw with a binary search, so sampling a million-flow distribution
    costs [O(log n)] and allocates nothing. *)

type t

val create : ?s:float -> n:int -> Fbsr_util.Rng.t -> t
(** [create ~n rng] builds a sampler over [n] ranks with exponent [s]
    (default 1.0, the classic Zipf).  Draws consume [rng].
    @raise Invalid_argument if [n < 1] or [s < 0]. *)

val n : t -> int
val s : t -> float

val sample : t -> int
(** A rank in [\[0, n)], rank 0 most frequent.  Deterministic in the
    creating rng's state. *)

val mass : t -> int -> float
(** [mass t i] — the probability of rank [i]. *)
