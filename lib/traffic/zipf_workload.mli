(** A Zipf-popularity datagram stream over a fixed flow population.

    Rank [i] of the {!Zipf} distribution maps to a five-tuple flow
    between one host pair — UDP, source/destination ports spread so a
    million ranks yield a million distinct tuples.  One host pair means
    one master key: exactly the gateway-to-gateway regime where the
    paper's flow-key caches, not the DH exchange, dominate.  Batches
    come out as [(attrs, payload)] jobs ready for
    {!Fbsr_fbs.Sharded.send_all}. *)

type t

val create :
  ?seed:int ->
  ?s:float ->
  ?payload:string ->
  flows:int ->
  src:Fbsr_fbs.Principal.t ->
  dst:Fbsr_fbs.Principal.t ->
  unit ->
  t
(** [flows] ranks (at most 3.6 billion distinct port pairs); [s] is the
    Zipf exponent (default 1.0); [payload] (default 256 bytes) is shared
    by every job — the datapath never mutates it.  Deterministic in
    [seed].
    @raise Invalid_argument if [flows] exceeds the port-pair space. *)

val flows : t -> int

val batch : t -> int -> (Fbsr_fbs.Fam.attrs * string) array
(** [batch t k] draws the next [k] datagrams of the stream. *)

val drawn : t -> int
(** Datagrams drawn so far. *)

val touched : t -> int
(** Distinct flow ranks seen so far — climbs toward [flows t] with the
    long tail. *)
