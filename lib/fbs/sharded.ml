(* Domain-sharded datapath.  See sharded.mli for the model.

   The dispatch loop is deliberately bulk-synchronous: classify and
   partition a whole batch on the calling domain, fan the per-shard
   buckets out with Domain_shim.parallel_run, join, return results in
   input order.  No cross-domain queues, no locks — each shard engine is
   touched by exactly one domain per batch, and the dispatcher-side
   state (FAM, confounder LCG) is touched only between fan-outs. *)

type t = {
  nshards : int;
  requested_shards : int;
  engines : Engine.t array;
  (* One receive batch per shard: a shard's bucket enqueues its frames
     (scalar prologue in input order) and flushes before the join, so
     every deferred open of a batch resolves on the shard's own domain. *)
  rx_batches : Engine.Batch_rx.batch array;
  fam : Fam.t;
  confounders : Fbsr_util.Lcg.t;
  (* Telemetry tick: runs on the dispatching domain after each batch
     joins, when every shard's state is quiescent and safe to snapshot. *)
  mutable on_tick : now:float -> unit;
}

let create ?nshards ?(confounder_seed = 0x5eed) ~engine ~fam () =
  let requested =
    match nshards with
    | None -> Fbsr_util.Domain_shim.recommended_domain_count ()
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Sharded.create: nshards %d < 1" n)
  in
  let n = if Fbsr_util.Domain_shim.parallelism_available then requested else 1 in
  let engines = Array.init n engine in
  {
    nshards = n;
    requested_shards = requested;
    engines;
    rx_batches = Array.map (fun e -> Engine.Batch_rx.create e) engines;
    fam;
    confounders = Fbsr_util.Lcg.create confounder_seed;
    on_tick = (fun ~now:_ -> ());
  }

let nshards t = t.nshards
let requested_shards t = t.requested_shards
let engine t i = t.engines.(i)
let engines t = Array.copy t.engines
let fam t = t.fam
let set_tick_hook t f = t.on_tick <- f

let flowstats t =
  Flowstats.merge (Array.to_list (Array.map Engine.flowstats t.engines))

let shard_of_crc t crc = crc land max_int mod t.nshards
let shard_of_sfl t sfl = shard_of_crc t (Fbsr_util.Crc32.update_int64 0 (Sfl.to_int64 sfl))

(* Partition job indices 0..n-1 into per-shard buckets, preserving input
   order within each bucket (per-flow order depends on it). *)
let buckets_of t shard_of n =
  let counts = Array.make t.nshards 0 in
  for i = 0 to n - 1 do
    let s = shard_of i in
    counts.(s) <- counts.(s) + 1
  done;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make t.nshards 0 in
  for i = 0 to n - 1 do
    let s = shard_of i in
    buckets.(s).(fill.(s)) <- i;
    fill.(s) <- fill.(s) + 1
  done;
  buckets

(* Fan non-empty buckets out to domains.  Each thunk writes disjoint
   slots of [results]; the joins in parallel_run publish them back.
   [after] runs on the shard's domain once its bucket is drained —
   the receive path's end-of-bucket batch flush. *)
let run_buckets ?(after = fun (_ : int) -> ()) t buckets per_index =
  let thunks =
    Array.of_list
      (List.filter_map
         (fun s ->
           if Array.length buckets.(s) = 0 then None
           else
             Some
               (fun () ->
                 Array.iter (per_index s) buckets.(s);
                 after s))
         (List.init t.nshards Fun.id))
  in
  ignore (Fbsr_util.Domain_shim.parallel_run thunks : unit array)

let settled what = function
  | Some r -> r
  | None -> invalid_arg ("Sharded." ^ what ^ ": keying resolver deferred")

let send_all t ~now ~secret jobs =
  let n = Array.length jobs in
  (* Classification and confounder draws happen here, in input order, on
     the dispatching domain — the wire bytes cannot depend on the shard
     count. *)
  let sfls = Array.make n (Sfl.of_int64 0L) in
  let confs = Array.make n 0 in
  for i = 0 to n - 1 do
    let attrs, _ = jobs.(i) in
    let sfl, _decision = Fam.classify t.fam ~now attrs in
    sfls.(i) <- sfl;
    confs.(i) <- Fbsr_util.Lcg.next_u32 t.confounders
  done;
  let buckets = buckets_of t (fun i -> shard_of_sfl t sfls.(i)) n in
  let results = Array.make n None in
  run_buckets t buckets (fun s i ->
      let attrs, payload = jobs.(i) in
      Engine.send_classified ~confounder:confs.(i) t.engines.(s) ~now
        ~sfl:sfls.(i) ~src:attrs.Fam.src ~dst:attrs.Fam.dst ~secret ~payload
        (fun r -> results.(i) <- Some r));
  t.on_tick ~now;
  Array.map (settled "send_all") results

let receive_all t ~now ~src wires =
  let n = Array.length wires in
  let shard_of i =
    let w = wires.(i) in
    (* The sfl is the first 8 bytes of every well-formed header; anything
       shorter goes to shard 0, whose decode rejects it normally. *)
    if String.length w < 8 then 0
    else shard_of_crc t (Fbsr_util.Crc32.update_int64 0 (String.get_int64_be w 0))
  in
  let buckets = buckets_of t shard_of n in
  let results = Array.make n None in
  (* Each shard's bucket feeds its receive batch: prologue per frame in
     input order, one cross-flow bitsliced decrypt sweep per flush (the
     queue auto-flushes at capacity; the end-of-bucket flush drains the
     remainder), verdicts identical to scalar [Engine.receive]. *)
  run_buckets t buckets
    ~after:(fun s -> ignore (Engine.Batch_rx.flush t.rx_batches.(s) : int * int))
    (fun s i ->
      Engine.receive_batched t.rx_batches.(s) ~now ~src ~wire:wires.(i)
        (fun r -> results.(i) <- Some r));
  t.on_tick ~now;
  Array.map (settled "receive_all") results

let register_metrics t m =
  Array.iteri
    (fun i e ->
      Engine.register_metrics e m;
      Engine.register_metrics e (Fbsr_util.Metrics.sub m (Printf.sprintf "shard.%d" i)))
    t.engines

let aggregate_counters t =
  let z : Engine.counters =
    {
      sends = 0;
      receives = 0;
      accepted = 0;
      flow_key_computations = 0;
      flow_key_recoveries = 0;
      macs_computed = 0;
      encryptions = 0;
      decryptions = 0;
      errors_header = 0;
      errors_stale = 0;
      errors_duplicate = 0;
      errors_keying = 0;
      errors_mac = 0;
      errors_decrypt = 0;
      bytes_copied = 0;
      datapath_allocs = 0;
      keysched_hits = 0;
      keysched_misses = 0;
      mac_midstate_hits = 0;
      mac_midstate_misses = 0;
      rx_batch_deferred = 0;
      rx_batch_flushes = 0;
    }
  in
  Array.iter
    (fun e ->
      let c = Engine.counters e in
      z.sends <- z.sends + c.Engine.sends;
      z.receives <- z.receives + c.Engine.receives;
      z.accepted <- z.accepted + c.Engine.accepted;
      z.flow_key_computations <- z.flow_key_computations + c.Engine.flow_key_computations;
      z.flow_key_recoveries <- z.flow_key_recoveries + c.Engine.flow_key_recoveries;
      z.macs_computed <- z.macs_computed + c.Engine.macs_computed;
      z.encryptions <- z.encryptions + c.Engine.encryptions;
      z.decryptions <- z.decryptions + c.Engine.decryptions;
      z.errors_header <- z.errors_header + c.Engine.errors_header;
      z.errors_stale <- z.errors_stale + c.Engine.errors_stale;
      z.errors_duplicate <- z.errors_duplicate + c.Engine.errors_duplicate;
      z.errors_keying <- z.errors_keying + c.Engine.errors_keying;
      z.errors_mac <- z.errors_mac + c.Engine.errors_mac;
      z.errors_decrypt <- z.errors_decrypt + c.Engine.errors_decrypt;
      z.bytes_copied <- z.bytes_copied + c.Engine.bytes_copied;
      z.datapath_allocs <- z.datapath_allocs + c.Engine.datapath_allocs;
      z.keysched_hits <- z.keysched_hits + c.Engine.keysched_hits;
      z.keysched_misses <- z.keysched_misses + c.Engine.keysched_misses;
      z.mac_midstate_hits <- z.mac_midstate_hits + c.Engine.mac_midstate_hits;
      z.mac_midstate_misses <- z.mac_midstate_misses + c.Engine.mac_midstate_misses;
      z.rx_batch_deferred <- z.rx_batch_deferred + c.Engine.rx_batch_deferred;
      z.rx_batch_flushes <- z.rx_batch_flushes + c.Engine.rx_batch_flushes)
    t.engines;
  z
