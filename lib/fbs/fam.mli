(** The Flow Association Mechanism: policy-driven classification of
    outgoing datagrams into flows (paper Figure 1). *)

type attrs = {
  src : Principal.t;
  dst : Principal.t;
  protocol : int;
  src_port : int;
  dst_port : int;
  app_tag : string;
  size : int;
}

val attrs :
  ?protocol:int ->
  ?src_port:int ->
  ?dst_port:int ->
  ?app_tag:string ->
  ?size:int ->
  src:Principal.t ->
  dst:Principal.t ->
  unit ->
  attrs

type decision = Fresh | Existing

type policy = {
  policy_name : string;
  map : now:float -> attrs -> Sfl.t * decision;
  sweep : now:float -> int;
  active : now:float -> int;
}

type stats = {
  mutable datagrams : int;
  mutable flows_started : int;
  mutable sweeps : int;
  mutable expired : int;
}

type t

val create : policy -> t
val classify : t -> now:float -> attrs -> Sfl.t * decision
val sweep : t -> now:float -> int
val active : t -> now:float -> int
val stats : t -> stats
val policy_name : t -> string

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register pull-probes ([datagrams], [flows_started], [sweeps],
    [expired]) under the registry's current prefix — scope it first,
    e.g. [register_metrics f (Metrics.sub m "fbs.fam")]. *)
