(** Zero-message keying: implicit Diffie-Hellman master keys, flow-key
    derivation, and the PVC/MKC levels of the Figure 5 cache hierarchy. *)

type error =
  | No_certificate of string
  | Bad_certificate of string
  | Wrong_group of string

type fetch_result = (Fbsr_cert.Certificate.t, string) result

type resolver = Principal.t -> (fetch_result -> unit) -> unit
(** Continuation-passing certificate fetch (the MKD's job).  May complete
    inline (local directory) or after a network round trip. *)

type counters = {
  mutable master_key_computations : int;
  mutable certificate_fetches : int;
  mutable certificate_fetch_retries : int;
      (** Resolver failures retried from the keying layer (see
          [fetch_retries] in {!create}). *)
  mutable certificate_verifications : int;
}

type t

val create :
  ?pvc_sets:int ->
  ?mkc_sets:int ->
  ?assoc:int ->
  ?fetch_retries:int ->
  ?trace:Fbsr_util.Trace.t ->
  local:Principal.t ->
  group:Fbsr_crypto.Dh.group ->
  private_value:Fbsr_crypto.Dh.private_value ->
  ca_public:Fbsr_crypto.Rsa.public_key ->
  ca_hash:Fbsr_crypto.Hash.t ->
  resolver:resolver ->
  clock:(unit -> float) ->
  unit ->
  t
(** [fetch_retries] (default 0) is the number of extra resolver attempts
    after a failed certificate fetch before giving up on a keying request.
    [trace] (default disabled) receives an ["fbs.keying.cert.fetch"] event
    per resolver attempt, plus cache-eviction events from the PVC/MKC. *)

val local : t -> Principal.t
val group : t -> Fbsr_crypto.Dh.group
val public_value : t -> Fbsr_crypto.Dh.public_value
val counters : t -> counters
val pvc : t -> (string, Fbsr_cert.Certificate.t) Cache.t

val mkc : t -> (string, string * float) Cache.t
(** Master keys with the expiry of the certificate they derive from; an
    expired entry is treated as a miss and the stale certificate is dropped
    from the PVC. *)

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register pull-probes for every {!counters} field under the registry's
    current prefix — scope it first, e.g.
    [register_metrics k (Metrics.sub m "fbs.keying")].  The PVC/MKC caches
    are not included; register them via {!Cache.register_metrics}. *)

val get_master : t -> Principal.t -> ((string, error) result -> unit) -> unit
val get_master_sync : t -> Principal.t -> (string, error) result

val last_resolution : t -> string
(** Which cache level satisfied the most recent {!get_master} completion:
    ["mkc"], ["pvc"] or ["fetch"] (["none"] before any resolution).
    Stable inside the completion's continuation (completions run it
    synchronously); used by span instrumentation for miss attribution. *)

val pin_certificate : t -> Fbsr_cert.Certificate.t -> unit

val flow_key :
  hash:Fbsr_crypto.Hash.t ->
  sfl:Sfl.t ->
  master:string ->
  src:Principal.t ->
  dst:Principal.t ->
  string
(** [K_f = H(sfl | K_{S,D} | S | D)]. *)

val pp_error : Format.formatter -> error -> unit
