(* The security flow header (paper, Section 5.2, Figure 2), with the field
   sizes of the paper's FreeBSD implementation (Section 7.2):

     sfl 64 bits | confounder 32 bits | timestamp 32 bits | MAC 128 bits

   plus the algorithm-identification field the paper specifies but leaves
   undescribed (one suite byte) and one flags byte carrying the "secret"
   bit, which the receiver needs to know whether to decrypt.  The MAC field
   width is fixed by the suite's [mac_length].

   Wire layout (big-endian):
     u64 sfl | u8 suite | u8 flags | u32 confounder | u32 timestamp | MAC *)

open Fbsr_util

type t = {
  sfl : Sfl.t;
  suite : Suite.t;
  secret : bool; (* payload is encrypted *)
  confounder : int; (* 32-bit statistically-random value *)
  timestamp : int; (* minutes since the FBS epoch, 32-bit *)
  mac : string; (* suite.mac_length bytes *)
}

let fixed_size = 8 + 1 + 1 + 4 + 4
let size t = fixed_size + t.suite.Suite.mac_length
let size_for_suite (suite : Suite.t) = fixed_size + suite.Suite.mac_length

let flag_secret = 0x01

(* Write the fixed fields up to (but excluding) the MAC — the assembly
   primitive the zero-copy seal path uses to build header and body in one
   buffer. *)
let encode_fields_into w ~sfl ~(suite : Suite.t) ~secret ~confounder ~timestamp =
  Byte_writer.u64 w (Sfl.to_int64 sfl);
  Byte_writer.u8 w suite.Suite.id;
  Byte_writer.u8 w (if secret then flag_secret else 0);
  Byte_writer.u32_int w confounder;
  Byte_writer.u32_int w timestamp

let encode_into w t =
  if String.length t.mac <> t.suite.Suite.mac_length then
    invalid_arg "Header.encode: MAC length does not match suite";
  encode_fields_into w ~sfl:t.sfl ~suite:t.suite ~secret:t.secret
    ~confounder:t.confounder ~timestamp:t.timestamp;
  Byte_writer.bytes w t.mac

let encode t =
  let w = Byte_writer.create ~capacity:(size t) () in
  encode_into w t;
  (* Exact capacity: [finalize] steals the backing buffer — one
     allocation for the encoded header. *)
  Byte_writer.finalize w

type error = Truncated | Unknown_suite of int | Bad_flags of int

let decode raw : (t * string, error) result =
  let r = Byte_reader.of_string raw in
  match
    let sfl = Sfl.of_int64 (Byte_reader.u64 r) in
    let suite_id = Byte_reader.u8 r in
    let flags = Byte_reader.u8 r in
    let confounder = Byte_reader.u32_int r in
    let timestamp = Byte_reader.u32_int r in
    (sfl, suite_id, flags, confounder, timestamp)
  with
  | exception Byte_reader.Truncated -> Error Truncated
  | sfl, suite_id, flags, confounder, timestamp -> (
      match Suite.of_id suite_id with
      | None -> Error (Unknown_suite suite_id)
      | Some _ when flags land lnot flag_secret <> 0 ->
          (* Reserved flag bits must be zero: they are not covered by the
             MAC recomputation (the receiver rebuilds the flags byte from
             the parsed fields), so tolerating them would let an attacker
             flip them undetected. *)
          Error (Bad_flags flags)
      | Some suite -> (
          match Byte_reader.bytes r suite.Suite.mac_length with
          | exception Byte_reader.Truncated -> Error Truncated
          | mac ->
              let body = Byte_reader.rest r in
              Ok
                ( {
                    sfl;
                    suite;
                    secret = flags land flag_secret <> 0;
                    confounder;
                    timestamp;
                    mac;
                  },
                  body )))

(* Zero-copy decode: a [view] borrows the MAC and body straight out of
   the wire buffer instead of copying them into fresh strings.  The
   scalar fields are parsed eagerly (they are cheap immediates); only the
   variable-length fields stay as slices.  [decode] above is retained
   unchanged as the string-based reference implementation for the
   differential suite. *)
type view = {
  v_sfl : Sfl.t;
  v_suite : Suite.t;
  v_secret : bool;
  v_confounder : int;
  v_timestamp : int;
  v_mac : Slice.t; (* borrowed from the wire buffer *)
  v_body : Slice.t; (* borrowed from the wire buffer *)
}

let decode_view (wire : Slice.t) : (view, error) result =
  let r =
    Byte_reader.of_string ~pos:wire.Slice.off ~len:wire.Slice.len wire.Slice.base
  in
  match
    let sfl = Sfl.of_int64 (Byte_reader.u64 r) in
    let suite_id = Byte_reader.u8 r in
    let flags = Byte_reader.u8 r in
    let confounder = Byte_reader.u32_int r in
    let timestamp = Byte_reader.u32_int r in
    (sfl, suite_id, flags, confounder, timestamp)
  with
  | exception Byte_reader.Truncated -> Error Truncated
  | sfl, suite_id, flags, confounder, timestamp -> (
      match Suite.of_id suite_id with
      | None -> Error (Unknown_suite suite_id)
      | Some _ when flags land lnot flag_secret <> 0 -> Error (Bad_flags flags)
      | Some suite ->
          let mac_len = suite.Suite.mac_length in
          if Byte_reader.remaining r < mac_len then Error Truncated
          else begin
            let mac_pos = Byte_reader.position r in
            Byte_reader.skip r mac_len;
            let body_pos = Byte_reader.position r in
            Ok
              {
                v_sfl = sfl;
                v_suite = suite;
                v_secret = flags land flag_secret <> 0;
                v_confounder = confounder;
                v_timestamp = timestamp;
                v_mac = Slice.v ~off:mac_pos ~len:mac_len wire.Slice.base;
                v_body =
                  Slice.v ~off:body_pos ~len:(Byte_reader.remaining r)
                    wire.Slice.base;
              }
          end)

(* Materialize the header record from a view — only called once a
   datagram is accepted, so rejected traffic never pays the MAC copy. *)
let to_header v =
  {
    sfl = v.v_sfl;
    suite = v.v_suite;
    secret = v.v_secret;
    confounder = v.v_confounder;
    timestamp = v.v_timestamp;
    mac = Slice.to_string v.v_mac;
  }

(* The suite and flags bytes as fed to the MAC.  The paper MACs only
   confounder | timestamp | payload (sfl integrity is implicit in the
   key); the algorithm-identification field is our concretization of the
   paper's sketch, so we authenticate those two bytes as well — otherwise
   reserved flag bits could be flipped in transit undetected. *)
let auth_bytes t =
  String.init 2 (fun i ->
      if i = 0 then Char.chr t.suite.Suite.id
      else Char.chr (if t.secret then flag_secret else 0))

(* Byte encodings of the confounder and timestamp as fed to the MAC: the
   same big-endian bytes that go on the wire. *)
let confounder_bytes t =
  String.init 4 (fun i -> Char.chr ((t.confounder lsr (8 * (3 - i))) land 0xff))

let timestamp_bytes t =
  String.init 4 (fun i -> Char.chr ((t.timestamp lsr (8 * (3 - i))) land 0xff))

(* The confounder expanded to a DES IV: "For DES encryption, the confounder
   is first duplicated to provide a 64-bit quantity" (Section 7.2). *)
let confounder_iv t =
  let c = confounder_bytes t in
  c ^ c

(* Scratch-buffer writers for the zero-copy datapath: the engine keeps a
   reusable 10-byte MAC-prelude buffer and an 8-byte IV buffer per
   instance, refilled per datagram instead of allocated per datagram.
   The byte streams are identical to [auth_bytes | confounder_bytes |
   timestamp_bytes] and [confounder_iv]. *)

let mac_prelude_size = 2 + 4 + 4

let write_mac_prelude scratch ~(suite : Suite.t) ~secret ~confounder ~timestamp =
  if Bytes.length scratch < mac_prelude_size then
    invalid_arg "Header.write_mac_prelude: scratch too short";
  Bytes.set scratch 0 (Char.chr suite.Suite.id);
  Bytes.set scratch 1 (Char.chr (if secret then flag_secret else 0));
  for i = 0 to 3 do
    Bytes.set scratch (2 + i) (Char.chr ((confounder lsr (8 * (3 - i))) land 0xff));
    Bytes.set scratch (6 + i) (Char.chr ((timestamp lsr (8 * (3 - i))) land 0xff))
  done

let write_confounder_iv scratch ~confounder =
  if Bytes.length scratch < 8 then
    invalid_arg "Header.write_confounder_iv: scratch too short";
  for i = 0 to 3 do
    let c = Char.chr ((confounder lsr (8 * (3 - i))) land 0xff) in
    Bytes.set scratch i c;
    Bytes.set scratch (4 + i) c
  done

let pp ppf t =
  Fmt.pf ppf "%a %a%s conf=%08x ts=%d" Sfl.pp t.sfl Suite.pp t.suite
    (if t.secret then " secret" else "")
    t.confounder t.timestamp
