(* The HMAC-SHA1 + SHA-1-counter-keystream armor (suite id 5) — the
   leaf-change proof of the armor seam: a genuinely new suite (non-DES
   cipher, new MAC/tag size, an authenticate-only prefix) that touches
   no engine code.

   Secret bodies are length-preserving: the first [auth_prefix_len]
   payload bytes travel in cleartext (still covered by the MAC — the SST
   FlowArmor "encofs" shape, keeping leading transport words readable by
   middle-boxes), the rest is XORed with the per-flow keystream.  The
   keystream's frozen key absorption is the armor-private [aux] state in
   the flow entry, accounted through the same keysched hit/miss counters
   as the DES schedules. *)

type Armor.aux += Keystream of Fbsr_crypto.Keystream.t

let suite = Suite.hmac_sha1_ctr
let auth_prefix_len = 4

let keystream_of ctx (entry : Armor.flow_state) =
  match entry.Armor.aux with
  | Some (Keystream k) ->
      ctx.Armor.counters.Armor.keysched_hits <-
        ctx.Armor.counters.Armor.keysched_hits + 1;
      k
  | _ ->
      ctx.Armor.counters.Armor.keysched_misses <-
        ctx.Armor.counters.Armor.keysched_misses + 1;
      let k = Fbsr_crypto.Keystream.create Fbsr_crypto.Hash.sha1 ~key:entry.Armor.fk in
      entry.Armor.aux <- Some (Keystream k);
      k

let armor : Armor.armor =
  (module struct
    let suite = suite
    let auth_prefix_len = auth_prefix_len
    let encrypts = true
    let max_body_growth = 0 (* length-preserving keystream *)
    let sealed_body_len ~secret:_ len = len

    let seal_mac ctx entry ~secret ~confounder ~timestamp ~payload =
      Armor.compute_mac ctx entry ~suite ~secret ~confounder ~timestamp ~payload

    let verify_mac ctx entry ~secret ~confounder ~timestamp ~payload ~expected =
      Armor.verify_mac ctx entry ~suite ~secret ~confounder ~timestamp ~payload
        ~expected

    let seal_body ctx entry ~secret ~confounder ~payload w =
      if not secret then Fbsr_util.Byte_writer.bytes w payload
      else begin
        let c = ctx.Armor.counters in
        c.Armor.encryptions <- c.Armor.encryptions + 1;
        let ks = keystream_of ctx entry in
        let iv = Armor.iv_of_confounder ctx ~confounder in
        let len = String.length payload in
        let p = min auth_prefix_len len in
        let dst, dst_pos = Fbsr_util.Byte_writer.reserve w len in
        (* Cleartext-but-MACed prefix, then the keystream XOR straight
           into the reserved wire region — no intermediate buffer. *)
        Bytes.blit_string payload 0 dst dst_pos p;
        Fbsr_crypto.Keystream.transform_into ks ~iv ~src:payload ~src_pos:p
          ~src_len:(len - p) ~dst ~dst_pos:(dst_pos + p)
      end

    let open_body ctx entry ~confounder ~(body : Fbsr_util.Slice.t) =
      let c = ctx.Armor.counters in
      c.Armor.decryptions <- c.Armor.decryptions + 1;
      let ks = keystream_of ctx entry in
      let iv = Armor.iv_of_confounder ctx ~confounder in
      let len = body.Fbsr_util.Slice.len in
      let p = min auth_prefix_len len in
      (* The one plaintext allocation of a received secret datagram:
         prefix blitted verbatim, remainder XOR-decrypted in place. *)
      let dst = Bytes.create len in
      Bytes.blit_string body.Fbsr_util.Slice.base body.Fbsr_util.Slice.off dst 0 p;
      Fbsr_crypto.Keystream.transform_into ks ~iv ~src:body.Fbsr_util.Slice.base
        ~src_pos:(body.Fbsr_util.Slice.off + p) ~src_len:(len - p) ~dst ~dst_pos:p;
      Ok (Bytes.unsafe_to_string dst)

    let batch = None
    let batch_rx = None
  end : Armor.S)
