(* Health rules over the flight recorder.  See health.mli for the rule
   catalogue.  Everything reads the newest two Timeseries rows through
   [last2] — O(rules + columns) per cadence, nothing on the datapath. *)

module Ts = Fbsr_util.Timeseries
module Trace = Fbsr_util.Trace
module Json = Fbsr_util.Json

type worst = { mutable at : float; mutable value : float; mutable detail : string }

type rule = {
  name : string;
  threshold : float;
  mutable rule_fired : int;
  mutable worst : worst option;
}

type t = {
  ts : Ts.t;
  trace : Trace.t;
  min_events : int;
  rules : rule list;
  tfkc_miss : rule;
  rfkc_miss : rule;
  forgery : rule;
  replay : rule;
  stage_p99 : rule;
  imbalance : rule;
  mutable seen : int; (* Timeseries.taken at the last evaluation *)
  mutable checks : int;
}

let make_rules ~miss_rate_limit ~p99_limit ~imbalance_factor =
  let r name threshold = { name; threshold; rule_fired = 0; worst = None } in
  let tfkc_miss = r "tfkc-miss-rate" miss_rate_limit in
  let rfkc_miss = r "rfkc-miss-rate" miss_rate_limit in
  let forgery = r "forgery-drops" 0.0 in
  let replay = r "replay-drops" 0.0 in
  let stage_p99 = r "stage-p99" p99_limit in
  let imbalance = r "shard-imbalance" imbalance_factor in
  ( [ tfkc_miss; rfkc_miss; forgery; replay; stage_p99; imbalance ],
    tfkc_miss,
    rfkc_miss,
    forgery,
    replay,
    stage_p99,
    imbalance )

let none =
  let rules, tfkc_miss, rfkc_miss, forgery, replay, stage_p99, imbalance =
    make_rules ~miss_rate_limit:0.5 ~p99_limit:0.01 ~imbalance_factor:4.0
  in
  {
    ts = Ts.none;
    trace = Trace.none;
    min_events = 32;
    rules;
    tfkc_miss;
    rfkc_miss;
    forgery;
    replay;
    stage_p99;
    imbalance;
    seen = 0;
    checks = 0;
  }

let create ?(trace = Trace.none) ?(min_events = 32) ?(miss_rate_limit = 0.5)
    ?(p99_limit = 0.01) ?(imbalance_factor = 4.0) ~ts () =
  let rules, tfkc_miss, rfkc_miss, forgery, replay, stage_p99, imbalance =
    make_rules ~miss_rate_limit ~p99_limit ~imbalance_factor
  in
  {
    ts;
    trace;
    min_events;
    rules;
    tfkc_miss;
    rfkc_miss;
    forgery;
    replay;
    stage_p99;
    imbalance;
    seen = 0;
    checks = 0;
  }

let enabled t = Ts.enabled t.ts
let checks t = t.checks
let fired t = List.fold_left (fun a r -> a + r.rule_fired) 0 t.rules
let ok t = fired t = 0

let fire t rule ~now ~value ~detail =
  rule.rule_fired <- rule.rule_fired + 1;
  (match rule.worst with
  | Some w when w.value >= value -> ()
  | Some w ->
      w.at <- now;
      w.value <- value;
      w.detail <- detail
  | None -> rule.worst <- Some { at = now; value; detail });
  if Trace.enabled t.trace then
    Trace.emit t.trace ~time:now
      ("health." ^ rule.name)
      [
        ("value", Json.Float value);
        ("threshold", Json.Float rule.threshold);
        ("detail", Json.String detail);
      ]

let delta t name =
  let prev, last = Ts.last2 t.ts name in
  last -. prev

(* Interval miss rate of one cache level, gated on a minimum number of
   interval lookups so a cold 1-of-2 miss cannot page anyone. *)
let check_miss_rate t rule scope ~now =
  let misses = delta t ("fbs.cache." ^ scope ^ ".misses.total") in
  let hits = delta t ("fbs.cache." ^ scope ^ ".hits") in
  let lookups = misses +. hits in
  if lookups >= float_of_int t.min_events then begin
    let rate = misses /. lookups in
    if rate > rule.threshold then
      fire t rule ~now ~value:rate
        ~detail:
          (Printf.sprintf "%s: %.0f misses / %.0f lookups this interval"
             scope misses lookups)
  end

let check_drop_delta t rule names ~now =
  let d = List.fold_left (fun a n -> a +. delta t n) 0.0 names in
  if d > rule.threshold then
    fire t rule ~now ~value:d
      ~detail:(Printf.sprintf "%.0f drops this interval" d)

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let has_prefix ~prefix s =
  let ls = String.length s and lx = String.length prefix in
  ls >= lx && String.sub s 0 lx = prefix

let contains ~sub s =
  let ls = String.length s and lx = String.length sub in
  let rec go i = i + lx <= ls && (String.sub s i lx = sub || go (i + 1)) in
  go 0

let check_stage_p99 t ~now =
  List.iter
    (fun name ->
      if has_suffix ~suffix:".p99" name && contains ~sub:".stage." name then begin
        let _, p99 = Ts.last2 t.ts name in
        if p99 > t.stage_p99.threshold then
          fire t t.stage_p99 ~now ~value:p99
            ~detail:(Printf.sprintf "%s = %.6fs" name p99)
      end)
    (Ts.names t.ts)

let check_imbalance t ~now =
  let deltas =
    List.filter_map
      (fun name ->
        if
          has_prefix ~prefix:"shard." name
          && has_suffix ~suffix:".fbs.engine.sends" name
        then Some (name, delta t name)
        else None)
      (Ts.names t.ts)
  in
  let n = List.length deltas in
  if n >= 2 then begin
    let total = List.fold_left (fun a (_, d) -> a +. d) 0.0 deltas in
    if total >= float_of_int t.min_events then begin
      let worst_name, worst =
        List.fold_left
          (fun ((_, bd) as b) ((_, d) as x) -> if d > bd then x else b)
          (List.hd deltas) (List.tl deltas)
      in
      let mean = total /. float_of_int n in
      if mean > 0.0 && worst > t.imbalance.threshold *. mean then
        fire t t.imbalance ~now
          ~value:(worst /. mean)
          ~detail:
            (Printf.sprintf "%s: %.0f sends vs mean %.1f" worst_name worst
               mean)
    end
  end

let check t ~now =
  if Ts.enabled t.ts then begin
    let taken = Ts.taken t.ts in
    if taken > t.seen && Ts.kept t.ts >= 2 then begin
      t.seen <- taken;
      t.checks <- t.checks + 1;
      check_miss_rate t t.tfkc_miss "tfkc" ~now;
      check_miss_rate t t.rfkc_miss "rfkc" ~now;
      check_drop_delta t t.forgery [ "fbs.engine.drops.mac" ] ~now;
      check_drop_delta t t.replay
        [ "fbs.engine.drops.stale"; "fbs.engine.drops.duplicate" ]
        ~now;
      check_stage_p99 t ~now;
      check_imbalance t ~now
    end
    else if taken > t.seen then t.seen <- taken
  end

let rule_to_json r =
  Json.Obj
    [
      ("rule", Json.String r.name);
      ("fired", Json.Int r.rule_fired);
      ("threshold", Json.Float r.threshold);
      ( "worst",
        match r.worst with
        | None -> Json.Null
        | Some w ->
            Json.Obj
              [
                ("at", Json.Float w.at);
                ("value", Json.Float w.value);
                ("detail", Json.String w.detail);
              ] );
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "fbsr-health/1");
      ("checks", Json.Int t.checks);
      ("fired", Json.Int (fired t));
      ("ok", Json.Bool (ok t));
      ("rules", Json.List (List.map rule_to_json t.rules));
    ]

let report ppf t =
  Format.fprintf ppf "health: %d checks, %d firings, %s@," t.checks (fired t)
    (if ok t then "ok" else "NOT ok");
  List.iter
    (fun r ->
      match r.worst with
      | None -> Format.fprintf ppf "  %-16s ok@," r.name
      | Some w ->
          Format.fprintf ppf "  %-16s fired %dx, worst %.4f at t=%.2f (%s)@,"
            r.name r.rule_fired w.value w.at w.detail)
    t.rules
