(* Heavy-hitter attribution bundle.  Pure aggregation of Sketch — the
   engine decides what counts as a datagram/drop/degradation event. *)

open Fbsr_util

type t = {
  datagrams : Sketch.t;
  bytes : Sketch.t;
  drops : Sketch.t;
  degraded : Sketch.t;
}

let none =
  {
    datagrams = Sketch.none;
    bytes = Sketch.none;
    drops = Sketch.none;
    degraded = Sketch.none;
  }

let create ?slots ?cm_depth ?cm_width () =
  {
    datagrams = Sketch.create ?slots ?cm_depth ?cm_width ();
    bytes = Sketch.create ?slots ?cm_depth ?cm_width ();
    drops = Sketch.create ?slots ?cm_depth ?cm_width ();
    degraded = Sketch.create ?slots ?cm_depth ?cm_width ();
  }

let enabled t = Sketch.enabled t.datagrams

let merge ts =
  match ts with
  | [] -> invalid_arg "Flowstats.merge: empty list"
  | _ ->
      {
        datagrams = Sketch.merge (List.map (fun t -> t.datagrams) ts);
        bytes = Sketch.merge (List.map (fun t -> t.bytes) ts);
        drops = Sketch.merge (List.map (fun t -> t.drops) ts);
        degraded = Sketch.merge (List.map (fun t -> t.degraded) ts);
      }

let to_json ?k t =
  Json.Obj
    [
      ("schema", Json.String "fbsr-flowstats/1");
      ("datagrams", Sketch.to_json ?k t.datagrams);
      ("bytes", Sketch.to_json ?k t.bytes);
      ("drops", Sketch.to_json ?k t.drops);
      ("degraded", Sketch.to_json ?k t.degraded);
    ]
