(* Replay protection (paper, Sections 5.3 and 6.2).

   FBS uses a window-based timestamp scheme: the timestamp is the number of
   minutes since a fixed epoch, and the receiver accepts a datagram iff its
   timestamp falls inside a sliding window centered on the current time.
   No hard state is required; the trade-off is that a replay *within* the
   window succeeds — the paper accepts this and leaves exact replay
   protection to higher layers.

   As a documented extension beyond the paper (Section 6.2 "ultimately,
   complete replay protection can only be achieved in high-layer
   protocols"), [strict] mode additionally remembers (sfl, confounder,
   timestamp) triples seen inside the window and rejects exact duplicates.
   The memory is bounded: entries die with the window. *)

let minutes_of_seconds s = int_of_float (s /. 60.0) land 0xffffffff

type t = {
  window_minutes : int; (* accept |ts - now| <= window_minutes *)
  strict : bool;
  seen : (int64 * int * int, int) Hashtbl.t; (* (sfl,conf,ts) -> ts *)
  mutable last_gc : int;
  mutable accepted : int;
  mutable rejected_stale : int;
  mutable rejected_duplicate : int;
}

let create ?(window_minutes = 2) ?(strict = false) () =
  {
    window_minutes;
    strict;
    seen = Hashtbl.create 64;
    last_gc = 0;
    accepted = 0;
    rejected_stale = 0;
    rejected_duplicate = 0;
  }

let window_minutes t = t.window_minutes

type verdict = Fresh | Stale | Duplicate

let gc t now_min =
  if t.strict && now_min > t.last_gc then begin
    t.last_gc <- now_min;
    let dead =
      Hashtbl.fold
        (fun k ts acc -> if abs (now_min - ts) > t.window_minutes then k :: acc else acc)
        t.seen []
    in
    List.iter (Hashtbl.remove t.seen) dead
  end

let check t ~now ~sfl ~confounder ~timestamp : verdict =
  let now_min = minutes_of_seconds now in
  gc t now_min;
  if abs (now_min - timestamp) > t.window_minutes then begin
    t.rejected_stale <- t.rejected_stale + 1;
    Stale
  end
  else if t.strict then begin
    let key = (Sfl.to_int64 sfl, confounder, timestamp) in
    if Hashtbl.mem t.seen key then begin
      t.rejected_duplicate <- t.rejected_duplicate + 1;
      Duplicate
    end
    else begin
      Hashtbl.replace t.seen key timestamp;
      t.accepted <- t.accepted + 1;
      Fresh
    end
  end
  else begin
    t.accepted <- t.accepted + 1;
    Fresh
  end

type stats = { accepted : int; rejected_stale : int; rejected_duplicate : int }

let stats (t : t) =
  {
    accepted = t.accepted;
    rejected_stale = t.rejected_stale;
    rejected_duplicate = t.rejected_duplicate;
  }

(* Registry names relative to the caller's scope (e.g. "fbs.replay"). *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  register_probe m "accepted" (fun () -> t.accepted);
  register_probe m "rejected.stale" (fun () -> t.rejected_stale);
  register_probe m "rejected.duplicate" (fun () -> t.rejected_duplicate);
  register_probe m "window.entries" (fun () -> Hashtbl.length t.seen)
