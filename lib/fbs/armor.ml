(* Armor modules — first-class cipher-suite drivers.  See armor.mli for
   the design; this file holds the shared per-flow state, the counter
   record (re-exported by Engine), the helper layer every instance
   builds on, and the suite-id registry. *)

type counters = {
  mutable sends : int;
  mutable receives : int;
  mutable accepted : int;
  mutable flow_key_computations : int;
  mutable flow_key_recoveries : int;
  mutable macs_computed : int;
  mutable encryptions : int;
  mutable decryptions : int;
  mutable errors_header : int;
  mutable errors_stale : int;
  mutable errors_duplicate : int;
  mutable errors_keying : int;
  mutable errors_mac : int;
  mutable errors_decrypt : int;
  mutable bytes_copied : int;
  mutable datapath_allocs : int;
  mutable keysched_hits : int;
  mutable keysched_misses : int;
  mutable mac_midstate_hits : int;
  mutable mac_midstate_misses : int;
  mutable rx_batch_deferred : int;
  mutable rx_batch_flushes : int;
}

type aux = ..

type flow_state = {
  fk : string;
  mutable des_sched : Fbsr_crypto.Des.key option;
  mutable des3_sched : Fbsr_crypto.Des3.key option;
  mutable mac_mid : Fbsr_crypto.Mac.midstate option;
      (* frozen per-flow MAC precomputation, any suite *)
  mutable aux : aux option; (* armor-private per-flow state *)
}

let flow_state_of_key fk =
  { fk; des_sched = None; des3_sched = None; mac_mid = None; aux = None }

type ctx = {
  counters : counters;
  mac_prelude : Bytes.t;
  iv_scratch : Bytes.t;
}

let make_ctx counters =
  {
    counters;
    mac_prelude = Bytes.create Header.mac_prelude_size;
    iv_scratch = Bytes.create 8;
  }

(* --- shared per-flow lazy state, with the exact hit/miss accounting --- *)

let des_key_of_flow_key flow_key =
  (* DES wants 8 key bytes; the flow key is a 16-byte (MD5) or 20-byte
     (SHA-1) digest.  Take the first 8 bytes with adjusted parity, as the
     paper's CryptoLib-based implementation does. *)
  Fbsr_crypto.Des.adjust_parity (String.sub flow_key 0 8)

let des3_key_of_flow_key flow_key =
  (* 3DES wants 24 key bytes; expand the flow key by hashing (standard
     KDF-by-rehash) and force odd parity on every byte.  Assembled in an
     exact-capacity writer: only the key bytes actually used are written
     (byte-identical to [String.sub (flow_key ^ Md5.digest flow_key) 0 24]). *)
  let w = Fbsr_util.Byte_writer.create ~capacity:24 () in
  let n = min (String.length flow_key) 24 in
  Fbsr_util.Byte_writer.substring w flow_key 0 n;
  if n < 24 then
    Fbsr_util.Byte_writer.substring w (Fbsr_crypto.Md5.digest flow_key) 0 (24 - n);
  Fbsr_crypto.Des3.of_string
    (Fbsr_crypto.Des.adjust_parity (Fbsr_util.Byte_writer.finalize w))

let des_sched ctx entry =
  match entry.des_sched with
  | Some k ->
      ctx.counters.keysched_hits <- ctx.counters.keysched_hits + 1;
      k
  | None ->
      ctx.counters.keysched_misses <- ctx.counters.keysched_misses + 1;
      let k = Fbsr_crypto.Des.of_string (des_key_of_flow_key entry.fk) in
      entry.des_sched <- Some k;
      k

let des3_sched ctx entry =
  match entry.des3_sched with
  | Some k ->
      ctx.counters.keysched_hits <- ctx.counters.keysched_hits + 1;
      k
  | None ->
      ctx.counters.keysched_misses <- ctx.counters.keysched_misses + 1;
      let k = des3_key_of_flow_key entry.fk in
      entry.des3_sched <- Some k;
      k

let mac_midstate ctx entry ~(suite : Suite.t) =
  match entry.mac_mid with
  | Some m ->
      ctx.counters.mac_midstate_hits <- ctx.counters.mac_midstate_hits + 1;
      m
  | None ->
      ctx.counters.mac_midstate_misses <- ctx.counters.mac_midstate_misses + 1;
      let m =
        Fbsr_crypto.Mac.prepare ~algorithm:suite.Suite.mac_algorithm
          suite.Suite.mac_hash ~key:entry.fk
      in
      entry.mac_mid <- Some m;
      m

let iv_of_confounder ctx ~confounder =
  Header.write_confounder_iv ctx.iv_scratch ~confounder;
  Bytes.unsafe_to_string ctx.iv_scratch

(* MAC input: auth (suite+flags) | confounder | timestamp | payload — the
   paper's Section 5.2 definition plus the authenticated algorithm field
   (see [Header.auth_bytes]).  The prelude is assembled in the engine's
   reusable scratch and the payload passed as a borrowed slice, so MAC
   computation allocates nothing beyond the digest itself. *)
let compute_mac ctx entry ~suite ~secret ~confounder ~timestamp
    ~(payload : Fbsr_util.Slice.t) =
  ctx.counters.macs_computed <- ctx.counters.macs_computed + 1;
  Header.write_mac_prelude ctx.mac_prelude ~suite ~secret ~confounder ~timestamp;
  let parts = [ Fbsr_util.Slice.of_bytes_unsafe ctx.mac_prelude; payload ] in
  Fbsr_crypto.Mac.compute_midstate (mac_midstate ctx entry ~suite) parts

let verify_mac ctx entry ~suite ~secret ~confounder ~timestamp
    ~(payload : Fbsr_util.Slice.t) ~(expected : Fbsr_util.Slice.t) =
  ctx.counters.macs_computed <- ctx.counters.macs_computed + 1;
  Header.write_mac_prelude ctx.mac_prelude ~suite ~secret ~confounder ~timestamp;
  let parts = [ Fbsr_util.Slice.of_bytes_unsafe ctx.mac_prelude; payload ] in
  (* Constant-time comparison of the (possibly truncated) wire MAC
     against the matching prefix of the resumed computation. *)
  Fbsr_crypto.Mac.verify_midstate (mac_midstate ctx entry ~suite) parts ~expected

(* --- batching hook --- *)

type job = ..

type batch_ops = {
  defer :
    ctx ->
    flow_state ->
    confounder:int ->
    payload:string ->
    Fbsr_util.Byte_writer.t ->
    job;
  run : threshold:int -> job array -> int * int;
}

type batch_rx_ops = {
  defer_open :
    ctx ->
    flow_state ->
    confounder:int ->
    body:Fbsr_util.Slice.t ->
    (job * string, unit) result;
  run_rx : threshold:int -> job array -> int * int;
}

module type S = sig
  val suite : Suite.t
  val auth_prefix_len : int
  val encrypts : bool
  val max_body_growth : int
  val sealed_body_len : secret:bool -> int -> int

  val seal_mac :
    ctx ->
    flow_state ->
    secret:bool ->
    confounder:int ->
    timestamp:int ->
    payload:Fbsr_util.Slice.t ->
    string

  val verify_mac :
    ctx ->
    flow_state ->
    secret:bool ->
    confounder:int ->
    timestamp:int ->
    payload:Fbsr_util.Slice.t ->
    expected:Fbsr_util.Slice.t ->
    bool

  val seal_body :
    ctx ->
    flow_state ->
    secret:bool ->
    confounder:int ->
    payload:string ->
    Fbsr_util.Byte_writer.t ->
    unit

  val open_body :
    ctx ->
    flow_state ->
    confounder:int ->
    body:Fbsr_util.Slice.t ->
    (string, unit) result

  val batch : batch_ops option
  val batch_rx : batch_rx_ops option
end

type armor = (module S)

(* --- registry --- *)

let registry : (int, armor) Hashtbl.t = Hashtbl.create 16

let register (a : armor) =
  let module A = (val a) in
  Hashtbl.replace registry A.suite.Suite.id a

let of_id id = Hashtbl.find_opt registry id

let of_suite (suite : Suite.t) =
  match of_id suite.Suite.id with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Armor.of_suite: no armor registered for suite %d (%s)"
           suite.Suite.id (Suite.name suite))

let all () =
  Hashtbl.fold (fun _ a acc -> a :: acc) registry []
  |> List.sort (fun a b ->
         let module A = (val (a : armor)) in
         let module B = (val (b : armor)) in
         compare A.suite.Suite.id B.suite.Suite.id)
