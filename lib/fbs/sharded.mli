(** Domain-sharded datapath: N independent engines, each owning the
    TFKC/RFKC/replay/key-schedule state for the flows whose sfl hashes to
    it, driven in bulk-synchronous batches with one domain per shard.

    Shard selection is [crc32(sfl) mod nshards].  The sfl is the first
    field of the wire header, so the receive side routes without parsing;
    on the send side the dispatcher runs FAM classification itself (the
    sfl {e determines} the shard, so classification cannot happen inside
    one).  Because every datagram of a flow carries the same sfl, a flow
    lives its whole life on one shard: per-flow datagram order, replay
    windows, cached key schedules and MAC midstates never cross shards,
    and the exact allocs-per-datagram audit holds shard by shard.

    The dispatcher owns the confounder generator and draws one value per
    datagram in input order, so the wire bytes of a batch are
    byte-identical whatever the shard count — the differential suite
    asserts sharded ≡ single-shard output.

    On OCaml 4.14 (or under [FBSR_FORCE_SINGLE_SHARD], see
    {!Fbsr_util.Domain_shim}) the shard count degrades to 1 and batches
    run sequentially on the calling domain: same results, no Domains. *)

type t

val create :
  ?nshards:int ->
  ?confounder_seed:int ->
  engine:(int -> Engine.t) ->
  fam:Fam.t ->
  unit ->
  t
(** [create ~engine ~fam ()] builds one engine per shard via [engine i]
    (each must have its own caches, scratch, keying and span recorder —
    shards share nothing) plus the dispatcher's [fam].  [nshards]
    defaults to {!Fbsr_util.Domain_shim.recommended_domain_count};
    whatever is requested is clamped to 1 when parallelism is
    unavailable.  The per-shard engines' own confounder generators are
    unused on this path (the dispatcher's, seeded from
    [confounder_seed], replaces them).

    The engines' keying resolvers must complete synchronously: a shard
    domain cannot park a datagram waiting for a certificate fetch.
    @raise Invalid_argument if [nshards < 1]. *)

val nshards : t -> int
(** Effective shard count (after the compat clamp). *)

val requested_shards : t -> int
(** The shard count asked of {!create}, before any clamp — equals
    {!nshards} whenever parallelism is available. *)

val engine : t -> int -> Engine.t
val engines : t -> Engine.t array
val fam : t -> Fam.t

val set_tick_hook : t -> (now:float -> unit) -> unit
(** Install a telemetry tick: called on the dispatching domain after each
    {!send_all}/{!receive_all} batch joins (shards quiescent), with the
    batch's [now].  Scenario drivers hang {!Fbsr_util.Timeseries.tick}
    and health evaluation here. *)

val flowstats : t -> Flowstats.t
(** Exact {!Flowstats.merge} of every shard engine's sketches (sfl
    sharding keeps their key spaces disjoint).  Call between batches. *)

val shard_of_sfl : t -> Sfl.t -> int
(** [crc32(sfl) mod nshards] — the owning shard. *)

val send_all :
  t ->
  now:float ->
  secret:bool ->
  (Fam.attrs * string) array ->
  (string, Engine.error) result array
(** Seal a batch: classify every datagram (in input order, drawing its
    confounder), partition by owning shard, run the shards in parallel,
    and return per-datagram results in input order.  Within a shard,
    datagrams are processed in input order — so per-flow order is
    globally preserved.
    @raise Invalid_argument if an engine's keying resolver defers. *)

val receive_all :
  t ->
  now:float ->
  src:Principal.t ->
  string array ->
  (Engine.accepted, Engine.error) result array
(** Verify/decrypt a batch: route each wire by peeking the sfl (first 8
    bytes; short wires go to shard 0, whose header decode rejects them),
    run the shards in parallel, return results in input order.

    Within a shard the bucket drains through the engine's
    {!Engine.Batch_rx} queue: the scalar receive prologue runs per
    frame in input order, deferred body opens run in cross-flow
    bitsliced sweeps, and the bucket flushes its queue before the
    domains join — verdicts, payload bytes and counters (beyond the
    [rx_batch_*] pair) are identical to scalar {!Engine.receive},
    frame for frame. *)

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register every shard engine on [m] twice: once at the root — probes
    registered under one name sum on read, so the bare [fbs.*] tree
    becomes the aggregate view — and once under [shard.<i>.] for the
    per-shard view.  The differential suite checks the per-shard
    [shard.<i>.fbs.*] probes sum to the aggregate. *)

val aggregate_counters : t -> Engine.counters
(** Field-wise sum of every shard engine's counters. *)
