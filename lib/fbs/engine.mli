(** The FBS protocol engine: FBSSend()/FBSReceive() of Figure 4 with the
    soft-state cache fast paths of Figure 6.

    Layer-independent: consumes attributes + payload bytes, produces wire
    bytes (security flow header followed by the protected body).  Keying
    may suspend on a certificate fetch, so the primary API is
    continuation-passing; [_sync] variants serve callers whose resolver
    completes inline. *)

type error =
  | Header_error of Header.error
  | Stale of { timestamp : int; now_minutes : int }
  | Duplicate
  | Keying_error of Keying.error
  | Bad_mac
  | Decrypt_error

val pp_error : Format.formatter -> error -> unit

type counters = Armor.counters = {
  mutable sends : int;
  mutable receives : int;
  mutable accepted : int;
  mutable flow_key_computations : int;
  mutable flow_key_recoveries : int;
      (** Of the computations, those for a key the cache had seen before:
          recomputation after eviction/invalidation — soft-state recovery,
          never a hidden hard failure. *)
  mutable macs_computed : int;
  mutable encryptions : int;
  mutable decryptions : int;
  mutable errors_header : int;  (** undecodable header or suite mismatch *)
  mutable errors_stale : int;  (** timestamp outside the freshness window *)
  mutable errors_duplicate : int;  (** strict-mode duplicate suppression *)
  mutable errors_keying : int;  (** certificate fetch / verification failed *)
  mutable errors_mac : int;  (** MAC verification failed *)
  mutable errors_decrypt : int;  (** ciphertext would not decrypt *)
  mutable bytes_copied : int;
      (** Payload bytes moved between buffers beyond the single mandatory
          write into the wire (or plaintext) buffer — the zero-copy
          datapath keeps this near zero for secret CBC traffic. *)
  mutable datapath_allocs : int;
      (** Buffers allocated on the seal/receive datapath: one per sealed
          datagram (the wire buffer), one per received secret datagram
          (the plaintext). *)
  mutable keysched_hits : int;
      (** Cipher/MAC key-schedule reuses from a flow entry (TFKC/RFKC or
          the seal memo) — the expansion was skipped. *)
  mutable keysched_misses : int;
      (** Key-schedule expansions paid: first use per flow entry, or
          recomputation after eviction. *)
  mutable mac_midstate_hits : int;
      (** Per-datagram MACs resumed from a flow entry's frozen
          precomputation (keyed-prefix hash state, HMAC inner state, or
          CBC-MAC schedule) — the key absorption was skipped. *)
  mutable mac_midstate_misses : int;
      (** MAC midstates built and cached: first MAC per flow entry, or
          recomputation after eviction. *)
  mutable rx_batch_deferred : int;
      (** Received datagrams whose body open was deferred into a
          {!Batch_rx} queue (each still pays its one plaintext
          allocation, counted in [datapath_allocs] at enqueue). *)
  mutable rx_batch_flushes : int;
      (** Non-empty {!Batch_rx.flush} passes (one bitsliced kernel sweep
          each). *)
}

val drops_by_cause : counters -> (string * int) list
(** Receive-side rejections as [(cause, count)] pairs, one per
    [errors_*] counter, in a fixed order. *)

val drops : counters -> int
(** Total receive-side rejections (sum of {!drops_by_cause}). *)

type t

val create :
  ?suite:Suite.t ->
  ?tfkc_sets:int ->
  ?rfkc_sets:int ->
  ?cache_assoc:int ->
  ?replay_window_minutes:int ->
  ?strict_replay:bool ->
  ?confounder_seed:int ->
  ?trace:Fbsr_util.Trace.t ->
  ?spans:Fbsr_util.Span.t ->
  ?flowstats:Flowstats.t ->
  keying:Keying.t ->
  fam:Fam.t ->
  unit ->
  t
(** [trace] (default disabled) receives structured events from the engine
    and its caches: ["fbs.engine.flow.setup"] per fresh flow,
    ["fbs.engine.key.derive"] per flow-key computation (with a [recovered]
    flag for post-eviction recomputation), ["fbs.engine.replay.reject"]
    per stale/duplicate rejection, and ["fbs.cache.evict"] per eviction.

    [spans] (default disabled) receives per-datagram causal spans.  Each
    {!send} opens a fresh trace id in the {!Fbsr_util.Span} sidecar
    context and records ["fam.classify"], ["keying.derive"] (with
    TFKC/RFKC hit-or-miss and MKC/PVC/fetch attribution) and
    ["engine.seal"]; each {!receive_slice} records ["replay.check"] and a
    terminal ["engine.receive"] span whose outcome is ["delivered"] or
    ["drop:<cause>"] with causes mirroring {!drops_by_cause} (a send-side
    keying failure terminates as ["engine.send"]/["drop:keying"]).  With
    spans disabled the datapath pays one branch per stage and allocates
    nothing. *)

val local : t -> Principal.t
val suite : t -> Suite.t

val armor : t -> Armor.armor
(** The suite's registered driver — everything algorithm-specific the
    engine delegates to ({!Armor.S}). *)

val fam : t -> Fam.t
val keying : t -> Keying.t
type flow_entry
(** A TFKC/RFKC entry: the derived flow key plus lazily-expanded cipher
    and MAC key schedules.  The schedules share the entry's lifetime —
    cache eviction or invalidation drops key material and schedules
    together ([fbs.engine.keysched.{hits,misses}] observe the reuse). *)

val flow_entry_key : flow_entry -> string
(** The flow key the entry caches schedules for. *)

val tfkc : t -> (int64 * string * string, flow_entry) Cache.t
val rfkc : t -> (int64 * string * string, flow_entry) Cache.t
val replay : t -> Replay.t
val counters : t -> counters

val spans : t -> Fbsr_util.Span.t
(** The engine's span recorder ({!Fbsr_util.Span.none} when disabled). *)

val flowstats : t -> Flowstats.t
(** Per-flow heavy-hitter attribution ({!Flowstats.none} when disabled).
    The seal paths observe one datagram and [payload] bytes per sealed
    datagram under the flow's sfl; receive-side drop verdicts that carry
    an sfl (everything but header-decode failures) observe one drop; a
    post-eviction flow-key recomputation observes one degradation. *)

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register the engine's whole [fbs.*] subtree on [m]: its counters under
    [fbs.engine.] (drop causes as [fbs.engine.drops.<cause>]), all five
    cache levels under [fbs.cache.{tfkc,rfkc,inbound,pvc,mkc}.], replay
    under [fbs.replay.], FAM under [fbs.fam.] and keying under
    [fbs.keying.].  All pull-probes — zero cost on the protocol paths.
    Pass [Metrics.sub m "host.<addr>"] for a per-host view; registering
    several engines on one registry sums them. *)

val send :
  t ->
  now:float ->
  attrs:Fam.attrs ->
  secret:bool ->
  payload:string ->
  ((string, error) result -> unit) ->
  unit
(** Classify into a flow, derive/cache the flow key, MAC, optionally
    encrypt; the continuation receives the wire bytes. *)

val send_classified :
  ?confounder:int ->
  t ->
  now:float ->
  sfl:Sfl.t ->
  src:Principal.t ->
  dst:Principal.t ->
  secret:bool ->
  payload:string ->
  ((string, error) result -> unit) ->
  unit
(** {!send} for a datagram already classified by the caller's FAM — the
    sharded dispatcher's entry point ({!Sharded}), where the sfl must be
    known before a shard can be chosen.  Skips classification (and its
    span/trace events); everything from the TFKC lookup on is identical
    to {!send}.  [confounder] overrides the engine's own generator so a
    dispatcher can draw confounders in input order, making sharded wire
    output byte-identical to a single engine's. *)

val seal :
  t -> now:float -> sfl:Sfl.t -> flow_key:string -> secret:bool -> payload:string ->
  string
(** Steps S4-S10 only (header construction, MAC, optional encryption),
    for callers that manage flow association and keys themselves (the
    Section 7.2 combined FST+TFKC fast path). *)

val send_sealed :
  t -> now:float -> sfl:Sfl.t -> flow_key:string -> secret:bool -> payload:string ->
  string
(** [seal] plus send accounting. *)

(** Cross-flow seal batching: the feed for the bitsliced DES kernel.

    CBC serializes cipher blocks within a flow but not across flows, so
    secret DES-CBC sends through a batch defer their body encryption:
    each datagram is fully assembled (header, MAC, reserved body region)
    and its pending CBC chain queued; {!Batch.flush} advances all queued
    chains in lockstep through {!Fbsr_crypto.Des_bitslice} and only then
    fires the senders' continuations, so a caller never observes a
    half-sealed datagram.  Results are byte-identical to the unbatched
    {!send}, datagram for datagram. *)
module Batch : sig
  type batch
  (** A pending-seal queue bound to one engine. *)

  val create :
    ?threshold:int -> ?capacity:int -> ?linger:float -> t -> batch
  (** [threshold] (default 24): minimum jobs per kernel group to take
      the bitsliced path; smaller flushes run scalar (identical bytes).
      [capacity] (default {!Fbsr_crypto.Des_bitslice.lanes}): enqueue
      auto-flushes when the queue reaches this size.  [linger] (default
      1 ms): {!tick} flushes a partial batch older than this. *)

  val pending : batch -> int
  (** Datagrams currently queued. *)

  val flush : batch -> int * int
  (** Run every queued chain and deliver the completed wires in enqueue
      order (each under its datagram's captured trace id; the deferred
      ["engine.seal"] span finishes here, covering queue residence).
      Returns the kernel's [(bitsliced_blocks, scalar_blocks)] split —
      [(0, 0)] when the queue was empty. *)

  val tick : batch -> now:float -> (int * int) option
  (** Flush iff the oldest queued datagram has waited at least [linger];
      [Some counts] when a flush ran.  Call from the event loop. *)
end

val send_batched :
  Batch.batch ->
  now:float ->
  attrs:Fam.attrs ->
  secret:bool ->
  payload:string ->
  ((string, error) result -> unit) ->
  unit
(** {!send} with body encryption routed through the batch.  For
    deferrable datagrams (secret, non-NOP suite, DES-CBC cipher) the
    continuation fires from {!Batch.flush} — immediately when this
    enqueue fills the batch, else at a later [flush]/[tick]; everything
    else seals and delivers inline with {!send} semantics.  Counters,
    spans and trace events match {!send} datagram for datagram (the
    encryption is counted at enqueue; the seal span finishes at flush). *)

val derive_flow_key :
  t ->
  sfl:Sfl.t ->
  src:Principal.t ->
  dst:Principal.t ->
  ((string, error) result -> unit) ->
  unit
(** Flow-key derivation without consulting the TFKC (combined-path miss). *)

type accepted = { header : Header.t; payload : string; peer : Principal.t }

val receive :
  t ->
  now:float ->
  src:Principal.t ->
  wire:string ->
  ((accepted, error) result -> unit) ->
  unit
(** [receive_slice] over the whole string (zero-cost wrapper). *)

val receive_slice :
  t ->
  now:float ->
  src:Principal.t ->
  wire:Fbsr_util.Slice.t ->
  ((accepted, error) result -> unit) ->
  unit
(** Zero-copy receive: parses the header as a borrowed view, verifies the
    MAC against the wire bytes in place, and allocates only the plaintext
    of an accepted secret datagram (plus the payload copy of an accepted
    non-secret one).  The slice is only borrowed for the duration of the
    call; [accepted] owns its bytes. *)

(** Cross-flow receive batching: the decrypt-side mirror of {!Batch}.

    CBC decryption has no cross-block dependency at all, so secret
    DES-CBC receives through a batch defer their body open: the scalar
    prologue (header decode, suite enforcement, replay check — which
    registers the frame — and the RFKC probe) runs at enqueue in arrival
    order, so every early-refusal verdict, replay registration and drop
    counter is identical to the scalar {!receive}, frame for frame.
    {!Batch_rx.flush} then advances all queued opens in lockstep through
    {!Fbsr_crypto.Des_bitslice}, verifies each frame's MAC over the
    completed plaintext and delivers verdicts in enqueue order — so
    per-flow delivery order is preserved and a caller never observes a
    half-opened datagram.  Accept/drop verdicts and payload bytes are
    identical to the unbatched {!receive}, frame for frame. *)
module Batch_rx : sig
  type batch
  (** A pending-open queue bound to one engine. *)

  val create :
    ?threshold:int -> ?capacity:int -> ?linger:float -> t -> batch
  (** [threshold] (default 24): minimum jobs per kernel group to take
      the cross-flow bitsliced path; smaller flushes run each job on the
      per-datagram kernel (identical bytes).  [capacity] (default
      {!Fbsr_crypto.Des_bitslice.lanes}): enqueue auto-flushes when the
      queue reaches this size.  [linger] (default 1 ms): {!tick} flushes
      a partial batch older than this. *)

  val set_on_park : batch -> (unit -> unit) -> unit
  (** [set_on_park b f] installs [f] to run after every enqueue that
      leaves a frame parked (i.e. that did not trigger a capacity
      flush).  Deferrable frames whose keying suspended enqueue {e
      later}, when the continuation resumes in another event — after
      {!receive_batched} has already returned — so a caller that arms
      its linger flush only when it observes {!pending} grow
      synchronously would never flush such a frame.  Install the
      flush-arming logic here instead; the hook always runs in the
      event that performed the enqueue. *)

  val pending : batch -> int
  (** Frames currently queued.  A queued frame's plaintext string (the
      one {!Armor.batch_rx_ops.defer_open} returned) is not yet stable:
      its bytes are written by the kernel pass inside {!flush}.  Nothing
      may read, hash or compare a deferred payload until the flush that
      delivers it has run. *)

  val flush : batch -> int * int
  (** Run every queued open, then verify and deliver in enqueue order
      (each under its datagram's captured trace id; the terminal
      ["engine.receive"] span finishes here, covering queue residence).
      Returns the kernel's [(bitsliced_blocks, scalar_blocks)] split —
      [(0, 0)] when the queue was empty. *)

  val tick : batch -> now:float -> (int * int) option
  (** Flush iff the oldest queued frame has waited at least [linger];
      [Some counts] when a flush ran.  Call from the event loop. *)
end

val receive_batched :
  Batch_rx.batch ->
  now:float ->
  src:Principal.t ->
  wire:string ->
  ((accepted, error) result -> unit) ->
  unit
(** {!receive} with the body open routed through the batch.  For
    deferrable frames (secret, encrypting armor with a batched decrypt
    kernel — DES-CBC suites) the continuation fires from
    {!Batch_rx.flush} — immediately when this enqueue fills the batch,
    else at a later [flush]/[tick]; the wire string is borrowed by the
    queue until that flush.  When the keying layer suspends (cold flow),
    the enqueue itself is deferred to the resumed continuation's event —
    use {!Batch_rx.set_on_park} to learn of it, since [pending] will not
    have grown when this call returns.  Everything else — prologue
    refusals,
    non-secret bodies, NOP and non-DES-CBC suites, frames whose
    ciphertext is rejected up front (bad length, corrupt padding) —
    resolves inline with {!receive} semantics, counter for counter. *)

val send_sync :
  t -> now:float -> attrs:Fam.attrs -> secret:bool -> payload:string ->
  (string, error) result

val receive_sync :
  t -> now:float -> src:Principal.t -> wire:string -> (accepted, error) result

val header_overhead : t -> int
(** Bytes the FBS header adds to every datagram. *)

val max_body_growth : t -> int
(** Worst-case padding growth of an encrypted body. *)

val wire_overhead : t -> int
(** [header_overhead + max_body_growth]: what the MSS calculation must
    subtract (the tcp_output fix). *)

(** Receive-side flow view: the per-flow statistics the receiver
    accumulates while passively demultiplexing on the sfl.  Soft state,
    bounded by an internal cache. *)
type inbound_flow = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_seen : float;
  mutable last_seen : float;
}

val inbound_flows : t -> (Sfl.t * Principal.t * inbound_flow) list
