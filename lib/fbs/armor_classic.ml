(* The pre-refactor engine drivers as armor instances: DES-CBC under the
   keyed-MD5 / HMAC-MD5 / keyed-SHA1 / DES-CBC-MAC suites, 3DES-CBC, and
   the NOP suite.  Byte-identical to the old in-engine dispatch, counter
   bump for counter bump — the twin-engine differential suite holds the
   instances to the retained string reference. *)

(* The pending cross-flow CBC chain / open for the bitsliced kernel. *)
type Armor.job +=
  | Des_cbc_chain of Fbsr_crypto.Des_bitslice.cbc_job
  | Des_cbc_open of Fbsr_crypto.Des_bitslice.dec_job

let des_cbc_batch : Armor.batch_ops =
  {
    Armor.defer =
      (fun ctx entry ~confounder ~payload w ->
        let c = ctx.Armor.counters in
        c.Armor.encryptions <- c.Armor.encryptions + 1;
        let key = Armor.des_sched ctx entry in
        let iv = Armor.iv_of_confounder ctx ~confounder in
        let payload_len = String.length payload in
        let body_len = Fbsr_crypto.Des.padded_length payload_len in
        let dst, dst_pos = Fbsr_util.Byte_writer.reserve w body_len in
        (* The job snapshots [iv] (ctx scratch, rewritten by the next
           seal) and borrows [payload]/[dst] until it runs. *)
        Des_cbc_chain
          (Fbsr_crypto.Des_bitslice.cbc_job ~key ~iv ~src:payload ~src_pos:0
             ~src_len:payload_len ~dst ~dst_pos));
    run =
      (fun ~threshold jobs ->
        Fbsr_crypto.Des_bitslice.encrypt_cbc_jobs ~threshold
          (Array.map
             (function
               | Des_cbc_chain j -> j
               | _ -> invalid_arg "Armor_classic: foreign job in DES-CBC batch")
             jobs));
  }

let des_cbc_batch_rx : Armor.batch_rx_ops =
  {
    Armor.defer_open =
      (fun ctx entry ~confounder ~(body : Fbsr_util.Slice.t) ->
        let c = ctx.Armor.counters in
        (* Counted before the attempt, exactly like the inline
           [open_body]: a rejected frame still paid for a decryption. *)
        c.Armor.decryptions <- c.Armor.decryptions + 1;
        let key = Armor.des_sched ctx entry in
        let iv = Armor.iv_of_confounder ctx ~confounder in
        match
          Fbsr_crypto.Des_bitslice.dec_job ~key ~iv
            ~src:body.Fbsr_util.Slice.base ~src_pos:body.Fbsr_util.Slice.off
            ~src_len:body.Fbsr_util.Slice.len
        with
        | job ->
            (* The returned string aliases the job's output buffer: its
               bytes land when the batch runs, the same finalize-shares-
               storage idiom as the deferred seal's wire.  Per the
               [defer_open] contract this breaks string immutability
               until [run_rx]: the queue owner must not read it before
               the flush, nor deliver it from a dropped job. *)
            Ok
              ( Des_cbc_open job,
                Bytes.unsafe_to_string (Fbsr_crypto.Des_bitslice.dec_job_out job)
              )
        (* Bad length or corrupt padding — the same [Invalid_argument]
           family the inline path maps to a decrypt error. *)
        | exception Invalid_argument _ -> Error ());
    run_rx =
      (fun ~threshold jobs ->
        Fbsr_crypto.Des_bitslice.decrypt_cbc_jobs ~threshold
          (Array.map
             (function
               | Des_cbc_open j -> j
               | _ -> invalid_arg "Armor_classic: foreign job in DES-CBC rx batch")
             jobs));
  }

let make (suite : Suite.t) : Armor.armor =
  let nop = Suite.is_nop suite in
  let nop_mac = String.make suite.Suite.mac_length '\000' in
  let encrypts = not nop in
  let module M = struct
    let suite = suite
    let auth_prefix_len = 0
    let encrypts = encrypts

    (* CBC/ECB padding always adds 1-8 bytes; stream modes add none.
       Kept cipher-derived even for NOP (its descriptor says DES-CBC),
       so [Engine.wire_overhead] is unchanged by the refactor. *)
    let max_body_growth =
      match suite.Suite.cipher with
      | Suite.Des_cbc | Suite.Des_ecb | Suite.Des3_cbc -> 8
      | Suite.Des_cfb | Suite.Des_ofb -> 0
      | Suite.Sha1_ctr -> assert false (* not a classic cipher *)

    let sealed_body_len ~secret len =
      if not (secret && encrypts) then len
      else
        match suite.Suite.cipher with
        | Suite.Des_cbc | Suite.Des_ecb | Suite.Des3_cbc ->
            Fbsr_crypto.Des.padded_length len
        | Suite.Des_cfb | Suite.Des_ofb -> len
        | Suite.Sha1_ctr -> assert false

    let seal_mac ctx entry ~secret ~confounder ~timestamp ~payload =
      if nop then nop_mac
      else Armor.compute_mac ctx entry ~suite ~secret ~confounder ~timestamp ~payload

    let verify_mac ctx entry ~secret ~confounder ~timestamp ~payload ~expected =
      if nop then
        (* The NOP MAC is all-zero on the wire; still compared in
           constant time so the NOP measurement keeps the comparison
           cost. *)
        Fbsr_crypto.Ct.equal_string_slice nop_mac expected
      else
        Armor.verify_mac ctx entry ~suite ~secret ~confounder ~timestamp ~payload
          ~expected

    let seal_body ctx entry ~secret ~confounder ~payload w =
      if not (secret && encrypts) then
        (* The single mandatory write of the payload into the wire buffer. *)
        Fbsr_util.Byte_writer.bytes w payload
      else begin
        let c = ctx.Armor.counters in
        c.Armor.encryptions <- c.Armor.encryptions + 1;
        let iv = Armor.iv_of_confounder ctx ~confounder in
        let payload_len = String.length payload in
        match suite.Suite.cipher with
        | Suite.Des_cbc ->
            let key = Armor.des_sched ctx entry in
            let body_len = Fbsr_crypto.Des.padded_length payload_len in
            let dst, dst_pos = Fbsr_util.Byte_writer.reserve w body_len in
            ignore
              (Fbsr_crypto.Des.encrypt_cbc_into ~iv key ~src:payload ~src_pos:0
                 ~src_len:payload_len ~dst ~dst_pos)
        | Suite.Des3_cbc ->
            let key = Armor.des3_sched ctx entry in
            let body_len = Fbsr_crypto.Des.padded_length payload_len in
            let dst, dst_pos = Fbsr_util.Byte_writer.reserve w body_len in
            ignore
              (Fbsr_crypto.Des3.encrypt_cbc_into ~iv key ~src:payload ~src_pos:0
                 ~src_len:payload_len ~dst ~dst_pos)
        | (Suite.Des_cfb | Suite.Des_ofb | Suite.Des_ecb) as cipher ->
            (* Stream/ECB modes still go through the string API: one
               intermediate ciphertext, accounted as an extra allocation
               and copy. *)
            let key = Armor.des_sched ctx entry in
            let ct =
              match cipher with
              | Suite.Des_cfb -> Fbsr_crypto.Des.encrypt_cfb ~iv key payload
              | Suite.Des_ofb -> Fbsr_crypto.Des.encrypt_ofb ~iv key payload
              | _ -> Fbsr_crypto.Des.encrypt_ecb ~confounder:iv key payload
            in
            c.Armor.datapath_allocs <- c.Armor.datapath_allocs + 1;
            c.Armor.bytes_copied <- c.Armor.bytes_copied + String.length ct;
            Fbsr_util.Byte_writer.bytes w ct
        | Suite.Sha1_ctr -> assert false
      end

    let open_body ctx entry ~confounder ~(body : Fbsr_util.Slice.t) =
      let c = ctx.Armor.counters in
      c.Armor.decryptions <- c.Armor.decryptions + 1;
      let iv = Armor.iv_of_confounder ctx ~confounder in
      match
        match suite.Suite.cipher with
        | Suite.Des_cbc ->
            let key = Armor.des_sched ctx entry in
            (* CBC decryption has no cross-block dependency, so one large
               ciphertext slices across bitslice lanes; short bodies stay
               on the scalar kernel (the dispatch threshold lives in
               [Des_bitslice]).  Byte- and error-identical to
               [Des.decrypt_cbc_sub]. *)
            Fbsr_crypto.Des_bitslice.decrypt_cbc_sub ~iv key
              ~src:body.Fbsr_util.Slice.base ~pos:body.Fbsr_util.Slice.off
              ~len:body.Fbsr_util.Slice.len
        | Suite.Des3_cbc ->
            Fbsr_crypto.Des3.decrypt_cbc_sub ~iv (Armor.des3_sched ctx entry)
              ~src:body.Fbsr_util.Slice.base ~pos:body.Fbsr_util.Slice.off
              ~len:body.Fbsr_util.Slice.len
        | (Suite.Des_cfb | Suite.Des_ofb | Suite.Des_ecb) as cipher ->
            let key = Armor.des_sched ctx entry in
            let ct = Fbsr_util.Slice.to_string body in
            c.Armor.datapath_allocs <- c.Armor.datapath_allocs + 1;
            c.Armor.bytes_copied <- c.Armor.bytes_copied + String.length ct;
            (match cipher with
            | Suite.Des_cfb -> Fbsr_crypto.Des.decrypt_cfb ~iv key ct
            | Suite.Des_ofb -> Fbsr_crypto.Des.decrypt_ofb ~iv key ct
            | _ -> Fbsr_crypto.Des.decrypt_ecb ~confounder:iv key ct)
        | Suite.Sha1_ctr -> assert false
      with
      | plaintext -> Ok plaintext
      | exception Invalid_argument _ -> Error ()

    let batch =
      if encrypts && suite.Suite.cipher = Suite.Des_cbc then Some des_cbc_batch
      else None

    let batch_rx =
      if encrypts && suite.Suite.cipher = Suite.Des_cbc then
        Some des_cbc_batch_rx
      else None
  end in
  (module M : Armor.S)

let instances =
  List.map make
    [
      Suite.paper_md5_des;
      Suite.hmac_md5_des;
      Suite.sha1_des;
      Suite.des_mac_des;
      Suite.md5_des3;
      Suite.nop;
    ]
