(** Per-flow traffic attribution without per-flow state: a bundle of
    {!Fbsr_util.Sketch} instances keyed on the sfl, fed by the engine's
    seal and receive paths.

    Four quantities are tracked — sealed datagrams, sealed payload bytes,
    receive-side drops, and degradation events (soft-state flow-key
    recoveries) — each in [O(slots)] space per engine regardless of how
    many distinct flows pass through.  Per-shard bundles merge exactly
    (see {!Fbsr_util.Sketch.merge}), so a sharded site reports the same
    canonical top-K attribution as a single engine would. *)

type t = {
  datagrams : Fbsr_util.Sketch.t;
  bytes : Fbsr_util.Sketch.t;
  drops : Fbsr_util.Sketch.t;
  degraded : Fbsr_util.Sketch.t;
}

val none : t
(** All four sketches disabled; the engine hot path pays one branch. *)

val create : ?slots:int -> ?cm_depth:int -> ?cm_width:int -> unit -> t

val enabled : t -> bool

val merge : t list -> t
(** Quantity-wise {!Fbsr_util.Sketch.merge} across shards. *)

val to_json : ?k:int -> t -> Fbsr_util.Json.t
(** ["fbsr-flowstats/1"]: one canonical sketch document per quantity. *)
