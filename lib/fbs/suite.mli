(** Algorithm suites selected by the FBS header's algorithm-identification
    field. *)

type cipher = Des_cbc | Des_cfb | Des_ofb | Des_ecb | Des3_cbc | Sha1_ctr

type t = {
  id : int;
  kdf_hash : Fbsr_crypto.Hash.t;
  mac_algorithm : Fbsr_crypto.Mac.algorithm;
  mac_hash : Fbsr_crypto.Hash.t;
  mac_length : int;
  cipher : cipher;
}

val paper_md5_des : t
(** The paper's implementation: keyed MD5 + DES-CBC (suite id 0). *)

val hmac_md5_des : t
val sha1_des : t

val des_mac_des : t
(** DES for both encryption and MAC (paper footnote 12); 8-byte tag. *)

val md5_des3 : t
(** 3DES-CBC confidentiality (extension for the key "wear out" concern). *)

val hmac_sha1_ctr : t
(** HMAC-SHA1 (160-bit tag) + SHA-1 counter-mode keystream with a 4-byte
    authenticate-only payload prefix — the leaf suite added through the
    armor registry with no engine edits (suite id 5). *)

val nop : t
(** "Nullified" encryption and MAC, for the Figure 8 FBS NOP measurement. *)

val is_nop : t -> bool
val all : t list
val of_id : int -> t option
val name : t -> string
val pp : Format.formatter -> t -> unit
