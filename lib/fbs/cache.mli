(** Generic soft-state cache: set-associative, LRU-within-set, pluggable
    randomising hash, three-C's miss classification (paper Section 5.3). *)

type stats = {
  mutable hits : int;
  mutable misses_cold : int;
  mutable misses_capacity : int;
  mutable misses_conflict : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type ('k, 'v) t

type replacement = Lru | Fifo | Random of Fbsr_util.Rng.t
(** Within-set replacement policy (Section 5.3 lists "a better replacement
    policy" among the levers against conflict misses). *)

val create :
  ?assoc:int ->
  ?classify:bool ->
  ?replacement:replacement ->
  ?name:string ->
  ?trace:Fbsr_util.Trace.t ->
  sets:int ->
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  unit ->
  ('k, 'v) t
(** [classify:false] disables the shadow-LRU bookkeeping (faster; all
    non-cold misses count as capacity).  Default replacement is [Lru].
    [name] labels the cache in metrics/trace output; [trace] (default
    disabled) receives an ["fbs.cache.evict"] event per eviction. *)

val name : ('k, 'v) t -> string

val register_metrics : ('k, 'v) t -> Fbsr_util.Metrics.t -> unit
(** Register pull-probes for every {!stats} field under the registry's
    current prefix ([hits], [misses.cold], [misses.capacity],
    [misses.conflict], [misses.total], [evictions], [invalidations]) —
    scope the registry first, e.g.
    [register_metrics c (Metrics.sub m "fbs.cache.tfkc")]. *)

val capacity : ('k, 'v) t -> int
val find : ('k, 'v) t -> 'k -> 'v option
val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but does not touch statistics or LRU state. *)

val was_seen : ('k, 'v) t -> 'k -> bool
(** Whether this key has ever missed here (never cleared, soft-state-loss
    detector; always [false] when [classify:false]). *)

val insert : ('k, 'v) t -> 'k -> 'v -> unit
val invalidate : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit
val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
val fold : ('k, 'v) t -> ('k -> 'v -> 'a -> 'a) -> 'a -> 'a
val occupancy : ('k, 'v) t -> int

val stats : ('k, 'v) t -> stats
val total_misses : stats -> int
val accesses : stats -> int
val miss_rate : ('k, 'v) t -> float
val pp_stats : Format.formatter -> stats -> unit
