(** Armor modules — first-class cipher-suite drivers.

    The paper's algorithm-identification field implies pluggable suites;
    an armor is the pluggable unit: everything algorithm-specific about
    sealing and opening a datagram body, packaged behind one module type
    and selected through a registry keyed by suite id.  The engine keeps
    the algorithm-independent machinery (FAM, keying, caches, replay,
    header assembly, spans) and delegates MAC computation, body sizing
    and body transformation to the armor of its configured suite — so a
    new suite is a leaf change: a new module plus a registry entry, with
    no edits to the engine's seal/receive paths.

    The shape follows SST's [FlowArmor] ([txenc]/[rxdec] writing in
    place, plus an authenticate-only prefix for header words that must
    stay readable in flight); here the datapath currency is the
    repository's {!Fbsr_util.Byte_writer}/{!Fbsr_util.Slice} zero-copy
    pair, and per-flow expensive state (cipher key schedules, MAC
    midstates) lives in the {!flow_state} owned by the engine's
    TFKC/RFKC entries, so cache eviction drops key material and
    schedules together. *)

(** Engine counters, defined here so armors can account their work on
    the same record the engine owns ({!Engine.counters} re-exports this
    type, field for field). *)
type counters = {
  mutable sends : int;
  mutable receives : int;
  mutable accepted : int;
  mutable flow_key_computations : int;
  mutable flow_key_recoveries : int;
  mutable macs_computed : int;
  mutable encryptions : int;
  mutable decryptions : int;
  mutable errors_header : int;
  mutable errors_stale : int;
  mutable errors_duplicate : int;
  mutable errors_keying : int;
  mutable errors_mac : int;
  mutable errors_decrypt : int;
  mutable bytes_copied : int;
  mutable datapath_allocs : int;
  mutable keysched_hits : int;
  mutable keysched_misses : int;
  mutable mac_midstate_hits : int;
  mutable mac_midstate_misses : int;
  mutable rx_batch_deferred : int;
  mutable rx_batch_flushes : int;
}

type aux = ..
(** Armor-private per-flow state (e.g. a keystream midstate).  Each
    armor extends this with its own constructor; the slot lives in
    {!flow_state} so it shares the cache entry's lifetime. *)

(** A TFKC/RFKC entry: the derived flow key plus lazily-built expensive
    state — cipher key schedules, the frozen MAC midstate, and an
    armor-private [aux] slot.  All fields are owned by the entry. *)
type flow_state = {
  fk : string;
  mutable des_sched : Fbsr_crypto.Des.key option;
  mutable des3_sched : Fbsr_crypto.Des3.key option;
  mutable mac_mid : Fbsr_crypto.Mac.midstate option;
  mutable aux : aux option;
}

val flow_state_of_key : string -> flow_state

(** Per-engine context handed to every armor call: the counters record
    and the engine's reusable scratch buffers (MAC prelude, IV).  The
    scratch is read through unsafe string views consumed before the next
    refill — the engine's established idiom. *)
type ctx = {
  counters : counters;
  mac_prelude : Bytes.t; (* Header.mac_prelude_size bytes *)
  iv_scratch : Bytes.t; (* 8 bytes *)
}

val make_ctx : counters -> ctx

(** {1 Shared helpers}

    The per-flow lazy-build-and-cache pattern with its exact counter
    accounting, shared by armor instances so hit/miss bookkeeping stays
    uniform across suites. *)

val des_key_of_flow_key : string -> string
(** First 8 flow-key bytes, parity-adjusted (the paper's CryptoLib
    convention). *)

val des3_key_of_flow_key : string -> Fbsr_crypto.Des3.key
(** 24 key bytes by KDF-rehash of the flow key, parity-adjusted. *)

val des_sched : ctx -> flow_state -> Fbsr_crypto.Des.key
val des3_sched : ctx -> flow_state -> Fbsr_crypto.Des3.key

val mac_midstate : ctx -> flow_state -> suite:Suite.t -> Fbsr_crypto.Mac.midstate
(** The flow's frozen MAC precomputation, built on first use
    ([mac_midstate_misses]) and resumed thereafter ([mac_midstate_hits]). *)

val iv_of_confounder : ctx -> confounder:int -> string
(** The duplicated-confounder IV, refreshed in [ctx.iv_scratch] and read
    through an unsafe view — consume before the next armor call. *)

val compute_mac :
  ctx ->
  flow_state ->
  suite:Suite.t ->
  secret:bool ->
  confounder:int ->
  timestamp:int ->
  payload:Fbsr_util.Slice.t ->
  string
(** Untruncated MAC over prelude | payload, resumed from the flow's
    midstate; bumps [macs_computed]. *)

val verify_mac :
  ctx ->
  flow_state ->
  suite:Suite.t ->
  secret:bool ->
  confounder:int ->
  timestamp:int ->
  payload:Fbsr_util.Slice.t ->
  expected:Fbsr_util.Slice.t ->
  bool
(** Constant-time comparison of the (possibly truncated) wire MAC
    against the resumed computation; bumps [macs_computed]. *)

(** {1 Batching} *)

type job = ..
(** A deferred body-transformation job (either direction).  Armors that
    support cross-flow batching extend this with their kernel's job
    types; a batch only ever mixes jobs from one engine (hence one
    armor), so the armor's [run]/[run_rx] may assume its own
    constructors. *)

type batch_ops = {
  defer :
    ctx ->
    flow_state ->
    confounder:int ->
    payload:string ->
    Fbsr_util.Byte_writer.t ->
    job;
      (** Reserve the body region in the writer and return the pending
          job that will fill it; accounts the encryption exactly as the
          inline path would ([encryptions], key-schedule hit/miss). *)
  run : threshold:int -> job array -> int * int;
      (** Run every job to completion; returns the kernel's
          [(batched, scalar)] block split. *)
}

(** The receive-side mirror of {!batch_ops}: deferring a body {e open}
    instead of a body seal. *)
type batch_rx_ops = {
  defer_open :
    ctx ->
    flow_state ->
    confounder:int ->
    body:Fbsr_util.Slice.t ->
    (job * string, unit) result;
      (** Validate the ciphertext (exactly as the inline [open_body]
          would — a frame the inline path rejects must return [Error]
          here, with identical counter accounting) and return the
          pending job plus the plaintext string the job will fill.  The
          string's bytes are complete only after [run_rx]; the body
          slice is borrowed by the job until then.  The string may alias
          the job's mutable output buffer (an [unsafe_to_string] of it),
          so it must be treated as write-once-at-flush: the queue owner
          must not read, hash or compare it before [run_rx], and must
          never deliver it from a job that was dropped without running.
          Bumps [decryptions] and key-schedule hit/miss like the inline
          path. *)
  run_rx : threshold:int -> job array -> int * int;
      (** Run every pending open; returns the kernel's
          [(batched, scalar)] block split. *)
}

(** The armor interface proper. *)
module type S = sig
  val suite : Suite.t

  val auth_prefix_len : int
  (** Leading payload bytes left cleartext (but MACed) when sealing
      secret — the SST authenticate-only prefix.  0 for full-body
      ciphers. *)

  val encrypts : bool
  (** Whether [secret] datagrams carry an encrypted body.  [false] for
      the NOP armor: the receive path then treats the body as plaintext
      regardless of the secret flag. *)

  val max_body_growth : int
  (** Worst-case body growth when sealing secret (cipher padding). *)

  val sealed_body_len : secret:bool -> int -> int
  (** Exact on-wire body length for a payload of the given length. *)

  val seal_mac :
    ctx ->
    flow_state ->
    secret:bool ->
    confounder:int ->
    timestamp:int ->
    payload:Fbsr_util.Slice.t ->
    string
  (** The MAC to write (untruncated; the engine writes the suite's
      [mac_length] prefix). *)

  val verify_mac :
    ctx ->
    flow_state ->
    secret:bool ->
    confounder:int ->
    timestamp:int ->
    payload:Fbsr_util.Slice.t ->
    expected:Fbsr_util.Slice.t ->
    bool

  val seal_body :
    ctx ->
    flow_state ->
    secret:bool ->
    confounder:int ->
    payload:string ->
    Fbsr_util.Byte_writer.t ->
    unit
  (** Write exactly [sealed_body_len ~secret (String.length payload)]
      bytes into the writer: the payload verbatim when not encrypting,
      else the ciphertext (preferably straight into a reserved region). *)

  val open_body :
    ctx ->
    flow_state ->
    confounder:int ->
    body:Fbsr_util.Slice.t ->
    (string, unit) result
  (** Recover the plaintext of a secret body (only called when
      [encrypts]).  Must allocate exactly the returned string on the
      success path and bump [decryptions]. *)

  val batch : batch_ops option
  (** Cross-flow batching hook; [None] when the cipher has no batched
      kernel (or nothing to defer). *)

  val batch_rx : batch_rx_ops option
  (** Receive-side cross-flow batching hook; [None] when body opens
      cannot be deferred. *)
end

type armor = (module S)

(** {1 Registry} *)

val register : armor -> unit
(** Keyed by [suite.id]; later registrations replace earlier ones. *)

val of_id : int -> armor option
val of_suite : Suite.t -> armor
(** @raise Invalid_argument when no armor is registered for the suite. *)

val all : unit -> armor list
(** Registered armors, sorted by suite id. *)
