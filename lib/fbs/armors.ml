(* The armor manifest: every built-in instance registered in one place.

   Registration cannot live only in each instance's own module
   initializer — an archive member nothing references is dropped at link
   time, taking its [let () = register ...] side effect with it.  The
   engine forces this module instead ([Armors.ensure] is called from
   [Engine.create]), which transitively links and initializes every
   listed instance.  A new leaf suite adds its module to this list and
   touches nothing else. *)

let () = List.iter Armor.register (Armor_classic.instances @ [ Armor_sha1ctr.armor ])

(* Forcing this module's initialization is the call's only effect. *)
let ensure () = ()
