(** Rule-driven health monitor over the telemetry flight recorder.

    Each cadence (after {!Fbsr_util.Timeseries.tick} lands a new row),
    {!check} evaluates a fixed rule set against the interval deltas of
    the newest two rows and records any firings:

    - [tfkc-miss-rate] / [rfkc-miss-rate]: the interval miss rate of the
      flow-key cache ([fbs.cache.{tfkc,rfkc}.misses.total] against
      [.hits]) exceeded [miss_rate_limit] with at least [min_events]
      lookups in the interval — the soft-state recovery storm of the
      paper's Section 6, caught live.
    - [forgery-drops]: nonzero interval delta of [fbs.engine.drops.mac]
      — somebody's MACs are failing verification.
    - [replay-drops]: nonzero interval delta of
      [fbs.engine.drops.stale + fbs.engine.drops.duplicate].
    - [stage-p99]: any per-stage interval p99 column
      ([*.stage.<stage>.p99]) exceeded [p99_limit] seconds.
    - [shard-imbalance]: with at least [min_events] interval sends, the
      busiest shard's [shard.<i>.fbs.engine.sends] delta exceeded
      [imbalance_factor] times the per-shard mean.

    Every firing emits a [health.<rule>] event on the attached trace and
    updates the rule's worst-seen record; {!to_json} serializes the
    whole monitor as the ["fbsr-health/1"] artifact section.  The
    monitor is advisory: {!ok} reports whether any rule ever fired, and
    scenario drivers decide what that means (a fault-injection run
    {e expects} firings — they prove the monitor sees the faults). *)

type t

val none : t
(** Shared disabled monitor: [check] is a single branch. *)

val create :
  ?trace:Fbsr_util.Trace.t ->
  ?min_events:int ->
  ?miss_rate_limit:float ->
  ?p99_limit:float ->
  ?imbalance_factor:float ->
  ts:Fbsr_util.Timeseries.t ->
  unit ->
  t
(** Defaults: [min_events] 32 interval samples before a rate/balance
    rule may fire, [miss_rate_limit] 0.5, [p99_limit] 0.01 s,
    [imbalance_factor] 4.0.  [trace] (default disabled) receives one
    [health.<rule>] event per firing. *)

val enabled : t -> bool

val check : t -> now:float -> unit
(** Evaluate the rules if the recorder has taken a new row since the
    last call (and has at least two rows to delta).  Call right after
    [Timeseries.tick] from the same loop. *)

val checks : t -> int
(** Evaluations performed (calls that saw a fresh row). *)

val fired : t -> int
(** Total rule firings across all evaluations. *)

val ok : t -> bool
(** True iff no rule has ever fired. *)

val to_json : t -> Fbsr_util.Json.t
(** ["fbsr-health/1"]: [{schema; checks; fired; ok; rules: [{rule;
    fired; threshold; worst: {at; value; detail} | null}]}]. *)

val report : Format.formatter -> t -> unit
(** One line per rule: fired count, threshold, worst observation. *)
