(** Window-based timestamp replay protection (paper Sections 5.3/6.2),
    with an optional strict duplicate-suppression extension. *)

val minutes_of_seconds : float -> int
(** Timestamp encoding: whole minutes since the FBS epoch. *)

type t

val create : ?window_minutes:int -> ?strict:bool -> unit -> t
val window_minutes : t -> int

type verdict = Fresh | Stale | Duplicate

val check : t -> now:float -> sfl:Sfl.t -> confounder:int -> timestamp:int -> verdict

type stats = { accepted : int; rejected_stale : int; rejected_duplicate : int }

val stats : t -> stats

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register pull-probes ([accepted], [rejected.stale],
    [rejected.duplicate], [window.entries]) under the registry's current
    prefix — scope it first, e.g.
    [register_metrics r (Metrics.sub m "fbs.replay")]. *)
