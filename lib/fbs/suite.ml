(* Algorithm suites — the paper's "algorithm identification field, which
   specifies the cryptographic algorithms used (e.g., for MAC computation,
   encryption)" (Section 5.2).  A suite fixes the key-derivation hash H,
   the MAC construction and its hash, and the cipher mode for optional
   confidentiality. *)

type cipher = Des_cbc | Des_cfb | Des_ofb | Des_ecb | Des3_cbc | Sha1_ctr

type t = {
  id : int; (* wire identifier *)
  kdf_hash : Fbsr_crypto.Hash.t; (* H in K_f = H(sfl | K | S | D) *)
  mac_algorithm : Fbsr_crypto.Mac.algorithm;
  mac_hash : Fbsr_crypto.Hash.t;
  mac_length : int; (* truncated MAC bytes on the wire *)
  cipher : cipher;
}

(* Suite 0 is the paper's own implementation choice: keyed (prefix) MD5 for
   both H and the MAC, DES-CBC for confidentiality, full 128-bit MAC. *)
let paper_md5_des =
  {
    id = 0;
    kdf_hash = Fbsr_crypto.Hash.md5;
    mac_algorithm = Fbsr_crypto.Mac.Prefix;
    mac_hash = Fbsr_crypto.Hash.md5;
    mac_length = 16;
    cipher = Des_cbc;
  }

(* Modern-construction variant: HMAC instead of the prefix MAC. *)
let hmac_md5_des = { paper_md5_des with id = 1; mac_algorithm = Fbsr_crypto.Mac.Hmac }

(* SHS variant the paper mentions as a candidate (MAC truncated to 128 bits
   to keep the header layout unchanged, a trade-off Section 5.3 endorses). *)
let sha1_des =
  {
    id = 2;
    kdf_hash = Fbsr_crypto.Hash.sha1;
    mac_algorithm = Fbsr_crypto.Mac.Prefix;
    mac_hash = Fbsr_crypto.Hash.sha1;
    mac_length = 16;
    cipher = Des_cbc;
  }

(* Footnote 12: "For efficiency, DES could have been used for both
   encryption and MAC computation" — a suite with an 8-byte DES-CBC-MAC
   instead of keyed MD5. *)
let des_mac_des =
  {
    id = 3;
    kdf_hash = Fbsr_crypto.Hash.md5;
    mac_algorithm = Fbsr_crypto.Mac.Des_cbc_mac;
    mac_hash = Fbsr_crypto.Hash.md5; (* unused by the DES MAC *)
    mac_length = 8;
    cipher = Des_cbc;
  }

(* Extension: 3DES confidentiality for deployments worried about single-DES
   key lifetime (the Section 5.2 "wear out" discussion). *)
let md5_des3 =
  {
    id = 4;
    kdf_hash = Fbsr_crypto.Hash.md5;
    mac_algorithm = Fbsr_crypto.Mac.Prefix;
    mac_hash = Fbsr_crypto.Hash.md5;
    mac_length = 16;
    cipher = Des3_cbc;
  }

(* The first post-refactor leaf suite, proving the armor seam: HMAC-SHA1
   authentication (full 160-bit tag) over a non-DES cipher — a SHA-1
   counter-mode keystream ({!Fbsr_crypto.Keystream}) with a 4-byte
   authenticate-only payload prefix (the SST FlowArmor "encofs" idea:
   leading transport words stay readable in flight but are still MACed). *)
let hmac_sha1_ctr =
  {
    id = 5;
    kdf_hash = Fbsr_crypto.Hash.sha1;
    mac_algorithm = Fbsr_crypto.Mac.Hmac;
    mac_hash = Fbsr_crypto.Hash.sha1;
    mac_length = 20;
    cipher = Sha1_ctr;
  }

(* "Nullified" crypto for the FBS NOP measurement in Figure 8: header
   processing and flow management run, MAC and encryption are identity
   operations. *)
let nop =
  {
    id = 255;
    kdf_hash = Fbsr_crypto.Hash.md5;
    mac_algorithm = Fbsr_crypto.Mac.Prefix;
    mac_hash = Fbsr_crypto.Hash.md5;
    mac_length = 16;
    cipher = Des_cbc;
  }

let is_nop t = t.id = 255

let all =
  [ paper_md5_des; hmac_md5_des; sha1_des; des_mac_des; md5_des3; hmac_sha1_ctr; nop ]

let of_id id = List.find_opt (fun s -> s.id = id) all

let name t =
  match t.id with
  | 0 -> "md5/des-cbc (paper)"
  | 1 -> "hmac-md5/des-cbc"
  | 2 -> "sha1/des-cbc"
  | 3 -> "des-mac/des-cbc (footnote 12)"
  | 4 -> "md5/3des-cbc"
  | 5 -> "hmac-sha1/sha1-ctr"
  | 255 -> "nop"
  | n -> Printf.sprintf "suite-%d" n

let pp ppf t = Fmt.string ppf (name t)
