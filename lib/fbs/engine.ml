(* FBS protocol processing — FBSSend()/FBSReceive() of Figure 4, with the
   cache fast path of Figure 6.

   The engine is deliberately layer-independent (Section 3): it consumes and
   produces opaque byte strings plus the attributes the FAM policy needs,
   and assumes only an insecure datagram transport underneath.  The IP
   mapping in [Fbsr_fbs_ip] embeds its output between the IPv4 header and
   the transport payload; tests drive it directly.

   One pseudo-code ambiguity resolved: Figure 4 computes the MAC over
   P.body *before* encryption on the send side (S6 precedes S8-9) but shows
   verification *before* decryption on the receive side (R7 precedes
   R10-11).  Both cannot hold with MAC-over-plaintext, so we follow the
   send side — the MAC covers the plaintext body — and the receiver
   decrypts first, then verifies.  DESIGN.md records this choice. *)

type error =
  | Header_error of Header.error
  | Stale of { timestamp : int; now_minutes : int }
  | Duplicate
  | Keying_error of Keying.error
  | Bad_mac
  | Decrypt_error

let pp_error ppf = function
  | Header_error Header.Truncated -> Fmt.string ppf "truncated header"
  | Header_error (Header.Unknown_suite id) -> Fmt.pf ppf "unknown suite %d" id
  | Header_error (Header.Bad_flags f) -> Fmt.pf ppf "reserved flag bits set (%#x)" f
  | Stale { timestamp; now_minutes } ->
      Fmt.pf ppf "stale timestamp %d (now %d)" timestamp now_minutes
  | Duplicate -> Fmt.string ppf "duplicate datagram"
  | Keying_error e -> Keying.pp_error ppf e
  | Bad_mac -> Fmt.string ppf "MAC verification failed"
  | Decrypt_error -> Fmt.string ppf "decryption failed"

(* Drops are counted by cause so graceful degradation is observable: under
   an adversarial network the split between MAC failures (corruption or
   forgery), duplicates (replay), and keying errors (certificate fetch
   lost) tells the operator *why* datagrams are being refused.
   [flow_key_recoveries] counts flow keys recomputed for a key the cache
   had seen before — i.e. successful soft-state recovery after eviction or
   invalidation, never a hidden hard failure.

   The record itself lives in [Armor] (armor instances account their
   work on it directly); re-exported here field for field so existing
   consumers keep reading [c.Engine.sends] etc. unchanged. *)
type counters = Armor.counters = {
  mutable sends : int;
  mutable receives : int;
  mutable accepted : int;
  mutable flow_key_computations : int;
  mutable flow_key_recoveries : int;
  mutable macs_computed : int;
  mutable encryptions : int;
  mutable decryptions : int;
  mutable errors_header : int;
  mutable errors_stale : int;
  mutable errors_duplicate : int;
  mutable errors_keying : int;
  mutable errors_mac : int;
  mutable errors_decrypt : int;
  (* Datapath accounting for the zero-copy refactor: [bytes_copied]
     counts payload bytes moved between buffers (beyond the single
     mandatory write into the wire/plaintext buffer); [datapath_allocs]
     counts buffers allocated per datagram on the seal/receive paths.
     The target steady state is one allocation per sealed datagram and
     one per received secret datagram. *)
  mutable bytes_copied : int;
  mutable datapath_allocs : int;
  (* Key-schedule cache accounting: a hit reuses an expanded cipher/MAC
     schedule stored in the flow entry; a miss pays the expansion (and
     populates the entry).  With the table-driven kernel the expansion
     is a visible fraction of per-datagram cost, so the cache is worth
     observing in its own right. *)
  mutable keysched_hits : int;
  mutable keysched_misses : int;
  (* MAC-midstate cache accounting: a hit resumes the per-flow frozen
     MAC precomputation (keyed-prefix hash state, HMAC inner state, or
     CBC-MAC schedule); a miss builds and caches it.  Split from the
     cipher-schedule counters because the two caches cover different
     suites and evict together but miss independently. *)
  mutable mac_midstate_hits : int;
  mutable mac_midstate_misses : int;
  (* Receive-batch accounting: [rx_batch_deferred] counts receives whose
     body open was parked in a Batch_rx queue (the scalar prologue ran at
     enqueue; decrypt and MAC verify at flush); [rx_batch_flushes] counts
     kernel flushes.  Both stay 0 on the scalar receive path. *)
  mutable rx_batch_deferred : int;
  mutable rx_batch_flushes : int;
}

let drops_by_cause c =
  [
    ("header", c.errors_header);
    ("stale", c.errors_stale);
    ("duplicate", c.errors_duplicate);
    ("keying", c.errors_keying);
    ("mac", c.errors_mac);
    ("decrypt", c.errors_decrypt);
  ]

let drops c = List.fold_left (fun acc (_, n) -> acc + n) 0 (drops_by_cause c)

(* Receive-side demultiplexing record: the receiver "passively
   demultiplexes a datagram, based on its flow assignment, into the
   individual flows" — this is the per-flow view it accumulates.  Soft
   state, bounded by the cache it lives in. *)
type inbound_flow = {
  mutable packets : int;
  mutable bytes : int;
  mutable first_seen : float;
  mutable last_seen : float;
}

(* A TFKC/RFKC entry: the derived flow key plus the expanded key
   schedules for whatever cipher/MAC the suite uses, populated lazily on
   first use.  The schedules are owned by the entry — they share its
   lifetime, so cache eviction or invalidation drops key material and
   schedules together and there is no separate invalidation protocol.
   The record lives in [Armor] so armor instances can stash their own
   per-flow state alongside the shared schedules. *)
type flow_entry = Armor.flow_state

let flow_entry_of_key = Armor.flow_state_of_key
let flow_entry_key (e : flow_entry) = e.Armor.fk

type t = {
  keying : Keying.t;
  fam : Fam.t;
  suite : Suite.t;
  armor : Armor.armor; (* the suite's driver, from the registry *)
  (* Armor-call context: the counters record (shared with [counters]
     below) plus the reusable per-engine scratch for the zero-copy
     datapath (MAC prelude, duplicated-confounder IV).  Scratch is read
     through [Bytes.unsafe_to_string] views consumed before the next
     refill, so no datagram ever observes another's bytes. *)
  actx : Armor.ctx;
  tfkc : (int64 * string * string, flow_entry) Cache.t; (* (sfl, peer, local) *)
  rfkc : (int64 * string * string, flow_entry) Cache.t;
  inbound : (int64 * string, inbound_flow) Cache.t; (* (sfl, peer) *)
  replay : Replay.t;
  confounder_gen : Fbsr_util.Lcg.t;
  counters : counters;
  trace : Fbsr_util.Trace.t;
  spans : Fbsr_util.Span.t;
  (* Per-flow heavy-hitter attribution (sfl-keyed sketches); [Flowstats.none]
     keeps the datapath at one branch per quantity. *)
  flowstats : Flowstats.t;
  (* One-entry memo for the string-keyed [seal]/[send_sealed] path (the
     combined FST+TFKC fast path supplies raw flow keys from its own
     table): reuses the expanded schedules as long as consecutive calls
     present the same flow key. *)
  mutable seal_memo : flow_entry option;
}

let triple_hash (sfl, peer, local) =
  let open Fbsr_util.Crc32 in
  let h = update_int64 0 sfl in
  let h = update h peer 0 (String.length peer) in
  update h local 0 (String.length local)

let triple_equal (a1, b1, c1) (a2, b2, c2) =
  Int64.equal a1 a2 && String.equal b1 b2 && String.equal c1 c2

let create ?(suite = Suite.paper_md5_des) ?(tfkc_sets = 128) ?(rfkc_sets = 128)
    ?(cache_assoc = 1) ?(replay_window_minutes = 2) ?(strict_replay = false)
    ?(confounder_seed = 0x5eed) ?(trace = Fbsr_util.Trace.none)
    ?(spans = Fbsr_util.Span.none) ?(flowstats = Flowstats.none) ~keying ~fam
    () =
  (* Force the built-in armor manifest before consulting the registry:
     linking semantics drop unreferenced archive members, so the
     instances' registrations must be reachable from here. *)
  Armors.ensure ();
  let counters =
    {
      sends = 0;
      receives = 0;
      accepted = 0;
      flow_key_computations = 0;
      flow_key_recoveries = 0;
      macs_computed = 0;
      encryptions = 0;
      decryptions = 0;
      errors_header = 0;
      errors_stale = 0;
      errors_duplicate = 0;
      errors_keying = 0;
      errors_mac = 0;
      errors_decrypt = 0;
      bytes_copied = 0;
      datapath_allocs = 0;
      keysched_hits = 0;
      keysched_misses = 0;
      mac_midstate_hits = 0;
      mac_midstate_misses = 0;
      rx_batch_deferred = 0;
      rx_batch_flushes = 0;
    }
  in
  {
    keying;
    fam;
    suite;
    armor = Armor.of_suite suite;
    actx = Armor.make_ctx counters;
    tfkc =
      Cache.create ~assoc:cache_assoc ~sets:tfkc_sets ~hash:triple_hash
        ~equal:triple_equal ~name:"tfkc" ~trace ();
    rfkc =
      Cache.create ~assoc:cache_assoc ~sets:rfkc_sets ~hash:triple_hash
        ~equal:triple_equal ~name:"rfkc" ~trace ();
    inbound =
      Cache.create ~assoc:2 ~classify:false ~sets:rfkc_sets
        ~hash:(fun (sfl, peer) ->
          Fbsr_util.Crc32.update (Fbsr_util.Crc32.update_int64 0 sfl) peer 0
            (String.length peer))
        ~equal:(fun (s1, p1) (s2, p2) -> Int64.equal s1 s2 && String.equal p1 p2)
        ~name:"inbound" ~trace ();
    replay = Replay.create ~window_minutes:replay_window_minutes ~strict:strict_replay ();
    confounder_gen = Fbsr_util.Lcg.create confounder_seed;
    trace;
    spans;
    flowstats;
    seal_memo = None;
    counters;
  }

let local t = Keying.local t.keying
let suite t = t.suite
let fam t = t.fam
let keying t = t.keying
let tfkc t = t.tfkc
let rfkc t = t.rfkc
let replay t = t.replay
let counters t = t.counters
let spans t = t.spans
let flowstats t = t.flowstats

(* Receive-side drop attribution: called on every drop verdict where the
   sfl made it out of the header (header-decode failures have no flow to
   attribute to). *)
let note_flow_drop t sfl =
  if Flowstats.enabled t.flowstats then
    Fbsr_util.Sketch.observe t.flowstats.Flowstats.drops (Sfl.to_int64 sfl) 1

let note_flow_degraded t sfl =
  if Flowstats.enabled t.flowstats then
    Fbsr_util.Sketch.observe t.flowstats.Flowstats.degraded (Sfl.to_int64 sfl) 1

(* Register the whole fbs.* subtree for this engine: its own counters
   (including drops.<cause>), all five cache levels, replay and FAM
   bookkeeping, and the keying counters.  Names are relative to the
   registry's scope, so the root registry yields "fbs.engine.sends" while
   [Metrics.sub m "host.10.0.0.1"] yields a per-host view; registering
   several engines on one registry sums them (probes accumulate). *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  let e = sub m "fbs.engine" in
  let c = t.counters in
  register_probe e "sends" (fun () -> c.sends);
  register_probe e "receives" (fun () -> c.receives);
  register_probe e "accepted" (fun () -> c.accepted);
  register_probe e "flow_key_computations" (fun () -> c.flow_key_computations);
  register_probe e "flow_key_recoveries" (fun () -> c.flow_key_recoveries);
  register_probe e "macs_computed" (fun () -> c.macs_computed);
  register_probe e "encryptions" (fun () -> c.encryptions);
  register_probe e "decryptions" (fun () -> c.decryptions);
  register_probe e "drops.header" (fun () -> c.errors_header);
  register_probe e "drops.stale" (fun () -> c.errors_stale);
  register_probe e "drops.duplicate" (fun () -> c.errors_duplicate);
  register_probe e "drops.keying" (fun () -> c.errors_keying);
  register_probe e "drops.mac" (fun () -> c.errors_mac);
  register_probe e "drops.decrypt" (fun () -> c.errors_decrypt);
  register_probe e "drops.total" (fun () -> drops c);
  register_probe e "datapath.bytes_copied" (fun () -> c.bytes_copied);
  register_probe e "datapath.allocs" (fun () -> c.datapath_allocs);
  register_probe e "keysched.hits" (fun () -> c.keysched_hits);
  register_probe e "keysched.misses" (fun () -> c.keysched_misses);
  register_probe e "macmid.hits" (fun () -> c.mac_midstate_hits);
  register_probe e "macmid.misses" (fun () -> c.mac_midstate_misses);
  register_probe e "rxbatch.deferred" (fun () -> c.rx_batch_deferred);
  register_probe e "rxbatch.flushes" (fun () -> c.rx_batch_flushes);
  (* Per-datagram views of the same counters: the zero-copy invariant in
     observable form (~1 alloc and ~0 extra copies per datagram).  Ratio
     probes, not float probes: several engines registered under one name
     (the sharded dispatcher's aggregate view, or one engine registered
     at the root and under a scope) must fold the underlying tallies and
     report the true combined ratio, not the sum of per-engine ratios. *)
  let datagrams () = float_of_int (c.sends + c.receives) in
  register_probe_ratio e "datapath.bytes_copied_per_datagram" (fun () ->
      (float_of_int c.bytes_copied, datagrams ()));
  register_probe_ratio e "datapath.allocs_per_datagram" (fun () ->
      (float_of_int c.datapath_allocs, datagrams ()));
  Cache.register_metrics t.tfkc (sub m "fbs.cache.tfkc");
  Cache.register_metrics t.rfkc (sub m "fbs.cache.rfkc");
  Cache.register_metrics t.inbound (sub m "fbs.cache.inbound");
  Cache.register_metrics (Keying.pvc t.keying) (sub m "fbs.cache.pvc");
  Cache.register_metrics (Keying.mkc t.keying) (sub m "fbs.cache.mkc");
  Replay.register_metrics t.replay (sub m "fbs.replay");
  Fam.register_metrics t.fam (sub m "fbs.fam");
  Keying.register_metrics t.keying (sub m "fbs.keying")

(* Snapshot of the inbound flows currently tracked: (sfl, peer, stats). *)
let inbound_flows t =
  Cache.fold t.inbound
    (fun (sfl, peer) flow acc -> (Sfl.of_int64 sfl, Principal.of_string peer, flow) :: acc)
    []

let track_inbound t ~now ~sfl ~peer ~bytes =
  let key = (Sfl.to_int64 sfl, Principal.to_string peer) in
  match Cache.peek t.inbound key with
  | Some flow ->
      flow.packets <- flow.packets + 1;
      flow.bytes <- flow.bytes + bytes;
      flow.last_seen <- now
  | None ->
      Cache.insert t.inbound key
        { packets = 1; bytes; first_seen = now; last_seen = now }

(* Obtain the flow key for (sfl, peer), using the given cache (TFKC on
   send, RFKC on receive).  CPS because the master key may need a
   certificate fetch. *)
(* Span bookkeeping for key derivation: the timer plus the trace id
   captured at stage entry (the continuation may resume in a later
   scheduler event, when the ambient id belongs to someone else). *)
let finish_derive t (tm : (Fbsr_util.Span.timer * int64) option) ~cache ~hit
    ~revisit ~master =
  match tm with
  | None -> ()
  | Some (tm, id) ->
      Fbsr_util.Span.finish t.spans tm ~id "keying.derive"
        ~detail:
          [
            ("cache", Fbsr_util.Json.String cache);
            ("hit", Fbsr_util.Json.Bool hit);
            ("master", Fbsr_util.Json.String master);
            ("recovered", Fbsr_util.Json.Bool revisit);
          ]

let flow_key_via t cache ~sfl ~peer ~src ~dst (k : (flow_entry, error) result -> unit) =
  let key = (Sfl.to_int64 sfl, Principal.to_string peer, Principal.to_string (local t)) in
  (* Captured before [find], which registers the key as seen: a miss on a
     previously-seen key means the entry was evicted or invalidated and we
     are recovering by recomputation — the soft-state guarantee at work. *)
  let revisit = Cache.was_seen cache key in
  let tm =
    if Fbsr_util.Span.enabled t.spans then
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    else None
  in
  match Cache.find cache key with
  | Some entry ->
      finish_derive t tm ~cache:(Cache.name cache) ~hit:true ~revisit
        ~master:"cached";
      k (Ok entry)
  | None ->
      Keying.get_master t.keying peer (function
        | Error e ->
            finish_derive t tm ~cache:(Cache.name cache) ~hit:false ~revisit
              ~master:"error";
            k (Error (Keying_error e))
        | Ok master ->
            t.counters.flow_key_computations <- t.counters.flow_key_computations + 1;
            if revisit then begin
              t.counters.flow_key_recoveries <- t.counters.flow_key_recoveries + 1;
              (* Soft-state degradation: the flow's key material had to be
                 recomputed after eviction — attribute it to the flow. *)
              note_flow_degraded t sfl
            end;
            if Fbsr_util.Trace.enabled t.trace then
              Fbsr_util.Trace.emit t.trace "fbs.engine.key.derive"
                [
                  ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp sfl));
                  ("cache", Fbsr_util.Json.String (Cache.name cache));
                  ("recovered", Fbsr_util.Json.Bool revisit);
                ];
            let fk =
              Keying.flow_key ~hash:t.suite.Suite.kdf_hash ~sfl ~master ~src ~dst
            in
            let entry = flow_entry_of_key fk in
            Cache.insert cache key entry;
            finish_derive t tm ~cache:(Cache.name cache) ~hit:false ~revisit
              ~master:(Keying.last_resolution t.keying);
            k (Ok entry))

(* Steps S4-S10 of Figure 4, given the flow key: confounder, timestamp,
   MAC, optional encryption, header insertion.  Exposed so the Section 7.2
   combined FST+TFKC fast path can supply (sfl, flow key) from its own
   table and skip the separate FAM and TFKC lookups.

   Zero-copy assembly: the wire size is known up front (fixed header +
   suite MAC length + armor body length), so header, MAC and body are
   written into one exact-capacity buffer which [finalize] steals — one
   allocation per sealed datagram.  Everything algorithm-specific — MAC
   construction, body sizing, the body transform itself — is the armor's
   business; the engine only assembles. *)
let seal_entry ?confounder t ~now ~sfl ~entry ~secret ~payload =
  let module A = (val t.armor : Armor.S) in
  let stm =
    if Fbsr_util.Span.enabled t.spans then Some (Fbsr_util.Span.start t.spans)
    else None
  in
  (* Key-schedule and MAC-midstate cache deltas over this seal, for span
     cost attribution. *)
  let ksh0 = t.counters.keysched_hits and ksm0 = t.counters.keysched_misses in
  let mmh0 = t.counters.mac_midstate_hits
  and mmm0 = t.counters.mac_midstate_misses in
  (* The sharded dispatcher pre-draws confounders in input order so the
     wire bytes are independent of the shard count; a lone engine draws
     from its own generator as before. *)
  let confounder =
    match confounder with
    | Some c -> c
    | None -> Fbsr_util.Lcg.next_u32 t.confounder_gen
  in
  let timestamp = Replay.minutes_of_seconds now in
  let payload_len = String.length payload in
  if Flowstats.enabled t.flowstats then begin
    let key = Sfl.to_int64 sfl in
    Fbsr_util.Sketch.observe t.flowstats.Flowstats.datagrams key 1;
    Fbsr_util.Sketch.observe t.flowstats.Flowstats.bytes key payload_len
  end;
  let mac =
    A.seal_mac t.actx entry ~secret ~confounder ~timestamp
      ~payload:(Fbsr_util.Slice.of_string payload)
  in
  let body_len = A.sealed_body_len ~secret payload_len in
  let w =
    Fbsr_util.Byte_writer.create
      ~capacity:(Header.fixed_size + t.suite.Suite.mac_length + body_len)
      ()
  in
  t.counters.datapath_allocs <- t.counters.datapath_allocs + 1;
  Header.encode_fields_into w ~sfl ~suite:t.suite ~secret ~confounder ~timestamp;
  (* Writing the MAC through [substring] also performs the suite's
     truncation (Section 5.3) without an intermediate string. *)
  Fbsr_util.Byte_writer.substring w mac 0 t.suite.Suite.mac_length;
  A.seal_body t.actx entry ~secret ~confounder ~payload w;
  let wire = Fbsr_util.Byte_writer.finalize w in
  (match stm with
  | Some tm ->
      Fbsr_util.Span.finish t.spans tm "engine.seal"
        ~detail:
          [
            ("bytes", Fbsr_util.Json.Int (String.length wire));
            ("secret", Fbsr_util.Json.Bool secret);
            ( "keysched_hits",
              Fbsr_util.Json.Int (t.counters.keysched_hits - ksh0) );
            ( "keysched_misses",
              Fbsr_util.Json.Int (t.counters.keysched_misses - ksm0) );
            ( "macmid_hits",
              Fbsr_util.Json.Int (t.counters.mac_midstate_hits - mmh0) );
            ( "macmid_misses",
              Fbsr_util.Json.Int (t.counters.mac_midstate_misses - mmm0) );
          ]
  | None -> ());
  wire

(* Flow entry for a caller-supplied raw flow key (the combined-path
   [seal]/[send_sealed] API): a one-entry memo keyed on the flow key
   keeps the expanded schedules across consecutive datagrams of the same
   flow, which is the common pattern for the FST fast path. *)
let entry_of_flow_key t flow_key =
  match t.seal_memo with
  | Some e when String.equal e.Armor.fk flow_key -> e
  | _ ->
      let e = flow_entry_of_key flow_key in
      t.seal_memo <- Some e;
      e

let seal t ~now ~sfl ~flow_key ~secret ~payload =
  seal_entry t ~now ~sfl ~entry:(entry_of_flow_key t flow_key) ~secret ~payload

(* Derive the flow key outside the TFKC path — used by the combined fast
   path on a table miss. *)
let derive_flow_key t ~sfl ~src ~dst (k : (string, error) result -> unit) =
  Keying.get_master t.keying dst (function
    | Error e -> k (Error (Keying_error e))
    | Ok master ->
        t.counters.flow_key_computations <- t.counters.flow_key_computations + 1;
        k (Ok (Keying.flow_key ~hash:t.suite.Suite.kdf_hash ~sfl ~master ~src ~dst)))

(* FBSSend(), Figure 4 S1-S10 with the Figure 6 TFKC fast path.  [now] is
   supplied by the caller (the datagram layer knows the time); the result
   is the wire representation: FBS header followed by the (possibly
   encrypted) body. *)
let send t ~now ~attrs ~secret ~payload (k : (string, error) result -> unit) =
  t.counters.sends <- t.counters.sends + 1;
  (* Each datagram entering the send path opens a new trace: a fresh
     64-bit id in the ambient sidecar context.  Everything downstream —
     seal, link transit, the receiver's whole pipeline — attributes its
     spans to this id.  [tm] also captures the id so continuations that
     resume in a later scheduler event (certificate fetch in flight)
     still record under it. *)
  let tm =
    if Fbsr_util.Span.enabled t.spans then begin
      Fbsr_util.Span.set_current (Fbsr_util.Span.fresh_id ());
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    end
    else None
  in
  let sfl, decision = Fam.classify t.fam ~now attrs in
  let src = attrs.Fam.src and dst = attrs.Fam.dst in
  (match tm with
  | Some (stm, id) ->
      Fbsr_util.Span.finish t.spans stm ~id "fam.classify"
        ~detail:
          [
            ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp sfl));
            ( "decision",
              Fbsr_util.Json.String
                (if decision = Fam.Fresh then "fresh" else "established") );
          ]
  | None -> ());
  if decision = Fam.Fresh && Fbsr_util.Trace.enabled t.trace then
    Fbsr_util.Trace.emit t.trace ~time:now "fbs.engine.flow.setup"
      [
        ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp sfl));
        ("src", Fbsr_util.Json.String (Principal.to_string src));
        ("dst", Fbsr_util.Json.String (Principal.to_string dst));
      ];
  flow_key_via t t.tfkc ~sfl ~peer:dst ~src ~dst (function
    | Error e ->
        (* The datagram dies on the sender: terminal span here (the
           receive-side terminal stage never runs). *)
        (match tm with
        | Some (stm, id) ->
            Fbsr_util.Span.finish t.spans stm ~id ~outcome:"drop:keying"
              "engine.send"
        | None -> ());
        k (Error e)
    | Ok entry -> (
        match tm with
        | Some (_, id) ->
            (* Restore the datagram's id for seal and the caller's
               transmit hook — the continuation may be running under a
               later event's ambient context. *)
            Fbsr_util.Span.with_current id (fun () ->
                k (Ok (seal_entry t ~now ~sfl ~entry ~secret ~payload)))
        | None -> k (Ok (seal_entry t ~now ~sfl ~entry ~secret ~payload))))

(* [send] for a datagram whose flow is already classified: the sharded
   dispatcher runs FAM once, up front, because the sfl *determines* the
   owning shard — classification cannot move inside the shard without a
   circularity.  Identical to [send] minus the classify span and the
   flow-setup trace event (both belong to the dispatcher). *)
let send_classified ?confounder t ~now ~sfl ~src ~dst ~secret ~payload
    (k : (string, error) result -> unit) =
  t.counters.sends <- t.counters.sends + 1;
  let tm =
    if Fbsr_util.Span.enabled t.spans then begin
      Fbsr_util.Span.set_current (Fbsr_util.Span.fresh_id ());
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    end
    else None
  in
  flow_key_via t t.tfkc ~sfl ~peer:dst ~src ~dst (function
    | Error e ->
        (match tm with
        | Some (stm, id) ->
            Fbsr_util.Span.finish t.spans stm ~id ~outcome:"drop:keying"
              "engine.send"
        | None -> ());
        k (Error e)
    | Ok entry -> (
        match tm with
        | Some (_, id) ->
            Fbsr_util.Span.with_current id (fun () ->
                k (Ok (seal_entry ?confounder t ~now ~sfl ~entry ~secret ~payload)))
        | None ->
            k (Ok (seal_entry ?confounder t ~now ~sfl ~entry ~secret ~payload))))

(* The combined-path sibling of [send]: counts the datagram but leaves flow
   association and key lookup to the caller. *)
let send_sealed t ~now ~sfl ~flow_key ~secret ~payload =
  t.counters.sends <- t.counters.sends + 1;
  if Fbsr_util.Span.enabled t.spans then
    Fbsr_util.Span.set_current (Fbsr_util.Span.fresh_id ());
  seal t ~now ~sfl ~flow_key ~secret ~payload

(* The deferred-seal core for the cross-flow batch: steps S4-S10 minus
   the body encryption, which comes back as a pending CBC job.  The wire
   string is finalized with the body region still unwritten and ALIASES
   the job's destination buffer ([Byte_writer.finalize] shares storage at
   exact capacity), so when the batch later runs the job, the ciphertext
   lands in the already-issued string.  Callers must not hand the wire
   out before the job has run — [Batch] delivers continuations only
   after its flush.  Only called for DES-CBC + secret + non-NOP.

   The seal span timer (and the datagram's trace id) are captured here
   but finished at flush, so the span covers queue residence — the real
   seal latency under batching. *)
let seal_entry_deferred t ~(ops : Armor.batch_ops) ~now ~sfl ~entry ~payload =
  let module A = (val t.armor : Armor.S) in
  let stm =
    if Fbsr_util.Span.enabled t.spans then
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    else None
  in
  let ksh0 = t.counters.keysched_hits and ksm0 = t.counters.keysched_misses in
  let mmh0 = t.counters.mac_midstate_hits
  and mmm0 = t.counters.mac_midstate_misses in
  let confounder = Fbsr_util.Lcg.next_u32 t.confounder_gen in
  let timestamp = Replay.minutes_of_seconds now in
  let payload_len = String.length payload in
  if Flowstats.enabled t.flowstats then begin
    let key = Sfl.to_int64 sfl in
    Fbsr_util.Sketch.observe t.flowstats.Flowstats.datagrams key 1;
    Fbsr_util.Sketch.observe t.flowstats.Flowstats.bytes key payload_len
  end;
  let mac =
    A.seal_mac t.actx entry ~secret:true ~confounder ~timestamp
      ~payload:(Fbsr_util.Slice.of_string payload)
  in
  let body_len = A.sealed_body_len ~secret:true payload_len in
  let w =
    Fbsr_util.Byte_writer.create
      ~capacity:(Header.fixed_size + t.suite.Suite.mac_length + body_len)
      ()
  in
  t.counters.datapath_allocs <- t.counters.datapath_allocs + 1;
  Header.encode_fields_into w ~sfl ~suite:t.suite ~secret:true ~confounder ~timestamp;
  Fbsr_util.Byte_writer.substring w mac 0 t.suite.Suite.mac_length;
  (* The armor reserves the body region and returns the pending job that
     will fill it (accounting the encryption as the inline path would). *)
  let job = ops.Armor.defer t.actx entry ~confounder ~payload w in
  let wire = Fbsr_util.Byte_writer.finalize w in
  let detail =
    [
      ("bytes", Fbsr_util.Json.Int (String.length wire));
      ("secret", Fbsr_util.Json.Bool true);
      ("batched", Fbsr_util.Json.Bool true);
      ("keysched_hits", Fbsr_util.Json.Int (t.counters.keysched_hits - ksh0));
      ( "keysched_misses",
        Fbsr_util.Json.Int (t.counters.keysched_misses - ksm0) );
      ("macmid_hits", Fbsr_util.Json.Int (t.counters.mac_midstate_hits - mmh0));
      ( "macmid_misses",
        Fbsr_util.Json.Int (t.counters.mac_midstate_misses - mmm0) );
    ]
  in
  (wire, job, stm, detail)

(* Cross-flow seal batching — the bitsliced-DES feed.  CBC serializes
   blocks {e within} a flow but not {e across} flows, so DES-CBC secret
   sends defer their body encryption: the datagram is fully assembled
   (header, MAC, reserved body region) and its pending chain queued;
   [flush] advances every queued chain in lockstep through
   {!Fbsr_crypto.Des_bitslice} and only then hands each wire to its
   continuation, so callers never observe a half-sealed datagram.
   Sends the kernel cannot help (non-secret, NOP suite, other ciphers)
   seal and deliver immediately with [send] semantics. *)
module Batch = struct
  type pending = {
    job : Armor.job;
    wire : string; (* aliases the job's destination; complete after flush *)
    deliver : (string, error) result -> unit;
    enqueued_at : float;
    seal_tm : (Fbsr_util.Span.timer * int64) option;
    seal_detail : (string * Fbsr_util.Json.t) list;
  }

  type batch = {
    engine : t;
    threshold : int;
    capacity : int;
    linger : float;
    queue : pending Queue.t;
  }

  let create ?(threshold = 24) ?(capacity = Fbsr_crypto.Des_bitslice.lanes)
      ?(linger = 0.001) engine =
    if capacity < 1 then invalid_arg "Engine.Batch.create: capacity < 1";
    if linger < 0. then invalid_arg "Engine.Batch.create: negative linger";
    { engine; threshold; capacity; linger; queue = Queue.create () }

  let pending b = Queue.length b.queue

  (* Run every queued chain (bitsliced when at least [threshold] jobs
     share a kernel group, scalar otherwise), then deliver the completed
     wires in enqueue order, each under its datagram's trace id.
     Returns the kernel's (bitsliced_blocks, scalar_blocks) split. *)
  let flush b =
    if Queue.is_empty b.queue then (0, 0)
    else begin
      let t = b.engine in
      let n = Queue.length b.queue in
      (* Explicit drain: [Array.init]'s evaluation order is unspecified,
         and delivery order must be enqueue order. *)
      let ps = Array.make n (Queue.peek b.queue) in
      for i = 0 to n - 1 do
        ps.(i) <- Queue.pop b.queue
      done;
      let counts =
        let module A = (val t.armor : Armor.S) in
        match A.batch with
        | Some ops -> ops.Armor.run ~threshold:b.threshold (Array.map (fun p -> p.job) ps)
        | None -> assert false (* jobs only enqueue through the armor's ops *)
      in
      Array.iter
        (fun p ->
          match p.seal_tm with
          | Some (tm, id) ->
              Fbsr_util.Span.finish t.spans tm ~id "engine.seal"
                ~detail:p.seal_detail;
              Fbsr_util.Span.with_current id (fun () -> p.deliver (Ok p.wire))
          | None -> p.deliver (Ok p.wire))
        ps;
      counts
    end

  (* Time-based flush: a partial batch older than [linger] stops waiting
     for lanes and ships.  Call from the event loop / timer wheel. *)
  let tick b ~now =
    match Queue.peek_opt b.queue with
    | Some p when now -. p.enqueued_at >= b.linger -> Some (flush b)
    | _ -> None
end

(* [send] with the body encryption routed through a batch.  Semantics
   match [send] except that for deferrable datagrams (secret, non-NOP,
   DES-CBC) the continuation fires from [Batch.flush] — immediately
   below when the enqueue fills the batch, else at a later [flush]/
   [tick].  Everything else — counters, spans, trace events, the TFKC
   path — is identical, datagram for datagram. *)
let send_batched (b : Batch.batch) ~now ~attrs ~secret ~payload
    (k : (string, error) result -> unit) =
  let t = b.Batch.engine in
  t.counters.sends <- t.counters.sends + 1;
  let tm =
    if Fbsr_util.Span.enabled t.spans then begin
      Fbsr_util.Span.set_current (Fbsr_util.Span.fresh_id ());
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    end
    else None
  in
  let sfl, decision = Fam.classify t.fam ~now attrs in
  let src = attrs.Fam.src and dst = attrs.Fam.dst in
  (match tm with
  | Some (stm, id) ->
      Fbsr_util.Span.finish t.spans stm ~id "fam.classify"
        ~detail:
          [
            ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp sfl));
            ( "decision",
              Fbsr_util.Json.String
                (if decision = Fam.Fresh then "fresh" else "established") );
          ]
  | None -> ());
  if decision = Fam.Fresh && Fbsr_util.Trace.enabled t.trace then
    Fbsr_util.Trace.emit t.trace ~time:now "fbs.engine.flow.setup"
      [
        ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp sfl));
        ("src", Fbsr_util.Json.String (Principal.to_string src));
        ("dst", Fbsr_util.Json.String (Principal.to_string dst));
      ];
  flow_key_via t t.tfkc ~sfl ~peer:dst ~src ~dst (function
    | Error e ->
        (match tm with
        | Some (stm, id) ->
            Fbsr_util.Span.finish t.spans stm ~id ~outcome:"drop:keying"
              "engine.send"
        | None -> ());
        k (Error e)
    | Ok entry ->
        let deferrable =
          let module A = (val t.armor : Armor.S) in
          if secret then A.batch else None
        in
        let run () =
          match deferrable with
          | None -> k (Ok (seal_entry t ~now ~sfl ~entry ~secret ~payload))
          | Some ops ->
            let wire, job, seal_tm, seal_detail =
              seal_entry_deferred t ~ops ~now ~sfl ~entry ~payload
            in
            Queue.add
              {
                Batch.job;
                wire;
                deliver = k;
                enqueued_at = now;
                seal_tm;
                seal_detail;
              }
              b.Batch.queue;
            if Queue.length b.Batch.queue >= b.Batch.capacity then
              ignore (Batch.flush b)
        in
        (match tm with
        | Some (_, id) -> Fbsr_util.Span.with_current id run
        | None -> run ()))

type accepted = {
  header : Header.t;
  payload : string; (* plaintext body *)
  peer : Principal.t;
}

(* Decrypt a body slice into a fresh exact-size plaintext string (the one
   allocation a received secret datagram needs) — the armor's
   [open_body], with its unit error mapped to the engine's. *)
let decrypt_body_slice t ~entry ~confounder ~(body : Fbsr_util.Slice.t) =
  let module A = (val t.armor : Armor.S) in
  match A.open_body t.actx entry ~confounder ~body with
  | Ok plaintext -> Ok plaintext
  | Error () -> Error Decrypt_error

(* Terminal span of the receive pipeline: exactly one per received
   datagram, carrying the verdict — "delivered" or "drop:<cause>", the
   causes mirroring [drops_by_cause].  A top-level function taking the
   optional timer keeps the disabled path a constant [None] with no
   closure allocation at the exit points. *)
let conclude_receive t (tm : (Fbsr_util.Span.timer * int64) option) outcome =
  match tm with
  | None -> ()
  | Some (stm, id) ->
      Fbsr_util.Span.finish t.spans stm ~id ~outcome "engine.receive"

(* The scalar receive prologue — header decode, suite enforcement, replay
   check (Figure 4 R1-R5) — shared verbatim by the inline and batched
   receive paths, so a frame is accepted or refused at the same stage
   with the same counters, traces and spans on both.  An [Error] has
   already been fully accounted (counter, flow-drop attribution, trace
   event, terminal span); the caller just delivers it. *)
let receive_prologue t ~now tm ~(wire : Fbsr_util.Slice.t) =
  match Header.decode_view wire with
  | Error e ->
      t.counters.errors_header <- t.counters.errors_header + 1;
      conclude_receive t tm "drop:header";
      Error (Header_error e)
  | Ok v -> (
      (* The suite is taken from the header only to the extent we accept
         it: a receiver enforces its own configured suite to prevent
         algorithm-downgrade games (the paper leaves this open). *)
      if v.Header.v_suite.Suite.id <> t.suite.Suite.id then begin
        t.counters.errors_header <- t.counters.errors_header + 1;
        conclude_receive t tm "drop:header";
        Error (Header_error (Header.Unknown_suite v.Header.v_suite.Suite.id))
      end
      else
        let rtm =
          if Fbsr_util.Span.enabled t.spans then
            Some (Fbsr_util.Span.start t.spans)
          else None
        in
        let verdict =
          Replay.check t.replay ~now ~sfl:v.Header.v_sfl
            ~confounder:v.Header.v_confounder ~timestamp:v.Header.v_timestamp
        in
        (match rtm with
        | Some stm ->
            let id = match tm with Some (_, id) -> id | None -> 0L in
            Fbsr_util.Span.finish t.spans stm ~id "replay.check"
              ~detail:
                [
                  ( "verdict",
                    Fbsr_util.Json.String
                      (match verdict with
                      | Replay.Fresh -> "fresh"
                      | Replay.Stale -> "stale"
                      | Replay.Duplicate -> "duplicate") );
                ]
        | None -> ());
        match verdict with
        | Replay.Stale ->
            t.counters.errors_stale <- t.counters.errors_stale + 1;
            note_flow_drop t v.Header.v_sfl;
            if Fbsr_util.Trace.enabled t.trace then
              Fbsr_util.Trace.emit t.trace ~time:now "fbs.engine.replay.reject"
                [
                  ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp v.Header.v_sfl));
                  ("cause", Fbsr_util.Json.String "stale");
                  ("timestamp", Fbsr_util.Json.Int v.Header.v_timestamp);
                  ("now_minutes", Fbsr_util.Json.Int (Replay.minutes_of_seconds now));
                ];
            conclude_receive t tm "drop:stale";
            Error
              (Stale
                 {
                   timestamp = v.Header.v_timestamp;
                   now_minutes = Replay.minutes_of_seconds now;
                 })
        | Replay.Duplicate ->
            t.counters.errors_duplicate <- t.counters.errors_duplicate + 1;
            note_flow_drop t v.Header.v_sfl;
            if Fbsr_util.Trace.enabled t.trace then
              Fbsr_util.Trace.emit t.trace ~time:now "fbs.engine.replay.reject"
                [
                  ("sfl", Fbsr_util.Json.String (Fmt.str "%a" Sfl.pp v.Header.v_sfl));
                  ("cause", Fbsr_util.Json.String "duplicate");
                ];
            conclude_receive t tm "drop:duplicate";
            Error Duplicate
        | Replay.Fresh -> Ok v)

(* R6-R12 once the flow entry is in hand: decrypt (inline), verify the
   MAC, deliver — the tail of the scalar path, also the fallback of the
   batched path for frames whose open cannot be deferred. *)
let finish_scalar t ~now ~src ~(v : Header.view) ~entry tm
    (k : (accepted, error) result -> unit) =
  (* [plaintext] borrows either the wire buffer (non-secret / NOP) or
     the decrypted string; [materialize] copies it out only on
     acceptance. *)
  let module A = (val t.armor : Armor.S) in
  let finish (plaintext : Fbsr_util.Slice.t) materialize =
    if
      A.verify_mac t.actx entry ~secret:v.Header.v_secret
        ~confounder:v.Header.v_confounder ~timestamp:v.Header.v_timestamp
        ~payload:plaintext ~expected:v.Header.v_mac
    then begin
      t.counters.accepted <- t.counters.accepted + 1;
      track_inbound t ~now ~sfl:v.Header.v_sfl ~peer:src
        ~bytes:(Fbsr_util.Slice.length plaintext);
      conclude_receive t tm "delivered";
      let accepted =
        Ok { header = Header.to_header v; payload = materialize (); peer = src }
      in
      match tm with
      | Some (_, id) ->
          (* Deliver under the datagram's id even when the keying
             continuation resumed in a later event; an acknowledgement
             sent from the handler opens its own trace and this scope
             restores ours. *)
          Fbsr_util.Span.with_current id (fun () -> k accepted)
      | None -> k accepted
    end
    else begin
      t.counters.errors_mac <- t.counters.errors_mac + 1;
      note_flow_drop t v.Header.v_sfl;
      conclude_receive t tm "drop:mac";
      k (Error Bad_mac)
    end
  in
  let body = v.Header.v_body in
  if v.Header.v_secret && A.encrypts then
    match decrypt_body_slice t ~entry ~confounder:v.Header.v_confounder ~body with
    | Ok plaintext ->
        t.counters.datapath_allocs <- t.counters.datapath_allocs + 1;
        (* Already a fresh exact-size string: hand it out as-is, no
           further copy. *)
        finish (Fbsr_util.Slice.of_string plaintext) (fun () -> plaintext)
    | Error e ->
        t.counters.errors_decrypt <- t.counters.errors_decrypt + 1;
        note_flow_drop t v.Header.v_sfl;
        conclude_receive t tm "drop:decrypt";
        k (Error e)
  else
    (* Plaintext body stays in the wire buffer until the datagram is
       accepted; only then is it copied out (the slice must not outlive
       the wire buffer). *)
    finish body (fun () ->
        t.counters.datapath_allocs <- t.counters.datapath_allocs + 1;
        t.counters.bytes_copied <-
          t.counters.bytes_copied + Fbsr_util.Slice.length body;
        Fbsr_util.Slice.to_string body)

(* FBSReceive(), Figure 4 R1-R12 with the RFKC fast path.  The wire is a
   borrowed slice: the header is parsed as a view, the MAC is verified
   against the wire bytes in place, and only an accepted datagram
   materializes a header record and payload string. *)
let receive_slice t ~now ~src ~(wire : Fbsr_util.Slice.t)
    (k : (accepted, error) result -> unit) =
  t.counters.receives <- t.counters.receives + 1;
  (* The ambient id was restored by the delivery path (netsim) from the
     sender's transmit-time capture — this is where the receive-side
     chain joins the sender's trace. *)
  let tm =
    if Fbsr_util.Span.enabled t.spans then
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    else None
  in
  match receive_prologue t ~now tm ~wire with
  | Error e -> k (Error e)
  | Ok v ->
      let dst = local t in
      flow_key_via t t.rfkc ~sfl:v.Header.v_sfl ~peer:src ~src ~dst (function
        | Error e ->
            t.counters.errors_keying <- t.counters.errors_keying + 1;
            note_flow_drop t v.Header.v_sfl;
            conclude_receive t tm "drop:keying";
            k (Error e)
        | Ok entry -> finish_scalar t ~now ~src ~v ~entry tm k)

let receive t ~now ~src ~wire (k : (accepted, error) result -> unit) =
  receive_slice t ~now ~src ~wire:(Fbsr_util.Slice.of_string wire) k

(* Cross-flow receive batching — the decrypt-side mirror of [Batch].
   The scalar prologue (header decode, suite check, replay check, RFKC
   probe) runs at enqueue, in arrival order — so replay registration,
   drop counters and every early-refusal verdict are identical to the
   scalar path, frame for frame.  Only the body open and the MAC verify
   are deferred: [flush] runs one bitsliced decrypt pass over all queued
   frames, then verifies and delivers in enqueue order, so per-flow
   delivery order is preserved and a caller never observes a
   half-opened datagram. *)
module Batch_rx = struct
  type pending = {
    job : Armor.job;
    entry : flow_entry;
    header : Header.t; (* materialized at enqueue; the wire is borrowed *)
    expected_mac : Fbsr_util.Slice.t; (* borrows the wire until flush *)
    plaintext : string; (* aliases the job's output; complete after flush *)
    peer : Principal.t;
    deliver : (accepted, error) result -> unit;
    enqueued_at : float;
    tm : (Fbsr_util.Span.timer * int64) option;
  }

  type batch = {
    engine : t;
    threshold : int;
    capacity : int;
    linger : float;
    queue : pending Queue.t;
    mutable on_park : (unit -> unit) option;
        (* fires on every enqueue that leaves the frame parked (no
           capacity flush) — including late enqueues from a resumed
           keying continuation, which the caller of [receive_batched]
           cannot observe synchronously *)
  }

  let create ?(threshold = 24) ?(capacity = Fbsr_crypto.Des_bitslice.lanes)
      ?(linger = 0.001) engine =
    if capacity < 1 then invalid_arg "Engine.Batch_rx.create: capacity < 1";
    if linger < 0. then invalid_arg "Engine.Batch_rx.create: negative linger";
    { engine; threshold; capacity; linger; queue = Queue.create (); on_park = None }

  let set_on_park b f = b.on_park <- Some f
  let pending b = Queue.length b.queue

  (* Run every queued open (bitsliced when at least [threshold] jobs
     share a kernel group), then verify each frame's MAC over its now-
     complete plaintext and deliver verdicts in enqueue order, each
     under its datagram's trace id.  Returns the kernel's
     (bitsliced_blocks, scalar_blocks) split. *)
  let flush b =
    if Queue.is_empty b.queue then (0, 0)
    else begin
      let t = b.engine in
      let n = Queue.length b.queue in
      let ps = Array.make n (Queue.peek b.queue) in
      for i = 0 to n - 1 do
        ps.(i) <- Queue.pop b.queue
      done;
      t.counters.rx_batch_flushes <- t.counters.rx_batch_flushes + 1;
      let counts =
        let module A = (val t.armor : Armor.S) in
        match A.batch_rx with
        | Some ops ->
            ops.Armor.run_rx ~threshold:b.threshold
              (Array.map (fun p -> p.job) ps)
        | None -> assert false (* jobs only enqueue through the armor's ops *)
      in
      let module A = (val t.armor : Armor.S) in
      Array.iter
        (fun p ->
          let h = p.header in
          let fin () =
            if
              A.verify_mac t.actx p.entry ~secret:h.Header.secret
                ~confounder:h.Header.confounder ~timestamp:h.Header.timestamp
                ~payload:(Fbsr_util.Slice.of_string p.plaintext)
                ~expected:p.expected_mac
            then begin
              t.counters.accepted <- t.counters.accepted + 1;
              track_inbound t ~now:p.enqueued_at ~sfl:h.Header.sfl ~peer:p.peer
                ~bytes:(String.length p.plaintext);
              conclude_receive t p.tm "delivered";
              p.deliver (Ok { header = h; payload = p.plaintext; peer = p.peer })
            end
            else begin
              t.counters.errors_mac <- t.counters.errors_mac + 1;
              note_flow_drop t h.Header.sfl;
              conclude_receive t p.tm "drop:mac";
              p.deliver (Error Bad_mac)
            end
          in
          match p.tm with
          | Some (_, id) -> Fbsr_util.Span.with_current id fin
          | None -> fin ())
        ps;
      counts
    end

  (* Time-based flush: a partial batch older than [linger] stops waiting
     for lanes and ships.  Call from the event loop / timer wheel. *)
  let tick b ~now =
    match Queue.peek_opt b.queue with
    | Some p when now -. p.enqueued_at >= b.linger -> Some (flush b)
    | _ -> None
end

(* [receive] with the body open routed through a batch.  Semantics match
   [receive] except that for deferrable frames (secret, encrypting
   armor with a batched decrypt kernel) the continuation fires from
   [Batch_rx.flush] — immediately below when the enqueue fills the
   batch, else at a later [flush]/[tick].  The wire string is borrowed
   by the pending job until that flush.  Every prologue refusal
   (header, suite, replay, keying) and every frame the kernel cannot
   help (non-secret, NOP suite, other ciphers, corrupt padding)
   resolves inline with [receive] semantics, counter for counter. *)
let receive_batched (b : Batch_rx.batch) ~now ~src ~(wire : string)
    (k : (accepted, error) result -> unit) =
  let t = b.Batch_rx.engine in
  t.counters.receives <- t.counters.receives + 1;
  let tm =
    if Fbsr_util.Span.enabled t.spans then
      Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.current ())
    else None
  in
  match receive_prologue t ~now tm ~wire:(Fbsr_util.Slice.of_string wire) with
  | Error e -> k (Error e)
  | Ok v ->
      let dst = local t in
      flow_key_via t t.rfkc ~sfl:v.Header.v_sfl ~peer:src ~src ~dst (function
        | Error e ->
            t.counters.errors_keying <- t.counters.errors_keying + 1;
            note_flow_drop t v.Header.v_sfl;
            conclude_receive t tm "drop:keying";
            k (Error e)
        | Ok entry -> (
            let module A = (val t.armor : Armor.S) in
            let deferrable =
              if v.Header.v_secret && A.encrypts then A.batch_rx else None
            in
            match deferrable with
            | None -> finish_scalar t ~now ~src ~v ~entry tm k
            | Some ops -> (
                match
                  ops.Armor.defer_open t.actx entry
                    ~confounder:v.Header.v_confounder ~body:v.Header.v_body
                with
                | Error () ->
                    (* Rejected at the same stage, with the same verdict,
                       as the inline open would have rejected it. *)
                    t.counters.errors_decrypt <- t.counters.errors_decrypt + 1;
                    note_flow_drop t v.Header.v_sfl;
                    conclude_receive t tm "drop:decrypt";
                    k (Error Decrypt_error)
                | Ok (job, plaintext) ->
                    t.counters.datapath_allocs <-
                      t.counters.datapath_allocs + 1;
                    t.counters.rx_batch_deferred <-
                      t.counters.rx_batch_deferred + 1;
                    Queue.add
                      {
                        Batch_rx.job;
                        entry;
                        header = Header.to_header v;
                        expected_mac = v.Header.v_mac;
                        plaintext;
                        peer = src;
                        deliver = k;
                        enqueued_at = now;
                        tm;
                      }
                      b.Batch_rx.queue;
                    if Queue.length b.Batch_rx.queue >= b.Batch_rx.capacity
                    then ignore (Batch_rx.flush b)
                    else
                      (* The frame stays parked.  Notify here — at actual
                         enqueue time — rather than leaving the caller to
                         infer a park from [pending], because when the
                         keying layer suspended above, this enqueue runs
                         in a later event, after the caller's synchronous
                         check: without the hook nothing would arm a
                         linger flush and the frame could park forever. *)
                      match b.Batch_rx.on_park with
                      | Some f -> f ()
                      | None -> ())))

(* Synchronous conveniences for callers whose resolver completes inline. *)

let send_sync t ~now ~attrs ~secret ~payload =
  let result = ref (Error (Keying_error (Keying.No_certificate "pending"))) in
  send t ~now ~attrs ~secret ~payload (fun r -> result := r);
  !result

let receive_sync t ~now ~src ~wire =
  let result = ref (Error (Keying_error (Keying.No_certificate "pending"))) in
  receive t ~now ~src ~wire (fun r -> result := r);
  !result

let header_overhead t = Header.size_for_suite t.suite

(* Worst-case body growth when [secret]: the armor knows its padding. *)
let max_body_growth t =
  let module A = (val t.armor : Armor.S) in
  A.max_body_growth

let wire_overhead t = header_overhead t + max_body_growth t

let armor t = t.armor
