(* The Flow Association Mechanism (paper, Section 5.1, Figure 1).

   The FAM separates outgoing datagrams into flows.  Policy is expressed by
   pluggable *mapper* and *sweeper* modules operating over a flow state
   table; the FAM itself only keeps bookkeeping.  Note the paper's key
   observation: although the FAM is stateful, the state lives entirely in
   the sender — the receiver demultiplexes passively on the sfl, so no
   state synchronization is ever needed between the two ends. *)

(* The attributes a policy may inspect.  The paper's FAM takes "the whole
   packet and other system parameters"; this record covers the network-,
   transport- and application-layer instantiations we provide.  Fields that
   do not apply at a given layer are zero/empty. *)
type attrs = {
  src : Principal.t;
  dst : Principal.t;
  protocol : int; (* transport protocol number; 0 if n/a *)
  src_port : int;
  dst_port : int;
  app_tag : string; (* application conversation tag; "" if n/a *)
  size : int; (* body size in bytes (rekeying policies use it) *)
}

let attrs ?(protocol = 0) ?(src_port = 0) ?(dst_port = 0) ?(app_tag = "") ?(size = 0)
    ~src ~dst () =
  { src; dst; protocol; src_port; dst_port; app_tag; size }

type decision = Fresh | Existing

(* A policy instance: mapper + sweeper as closures over private state. *)
type policy = {
  policy_name : string;
  map : now:float -> attrs -> Sfl.t * decision;
  sweep : now:float -> int; (* expire idle flows; returns number expired *)
  active : now:float -> int; (* currently active flows *)
}

type stats = {
  mutable datagrams : int;
  mutable flows_started : int;
  mutable sweeps : int;
  mutable expired : int;
}

type t = { policy : policy; stats : stats }

let create policy =
  { policy; stats = { datagrams = 0; flows_started = 0; sweeps = 0; expired = 0 } }

let classify t ~now attrs =
  t.stats.datagrams <- t.stats.datagrams + 1;
  let sfl, decision = t.policy.map ~now attrs in
  if decision = Fresh then t.stats.flows_started <- t.stats.flows_started + 1;
  (sfl, decision)

let sweep t ~now =
  t.stats.sweeps <- t.stats.sweeps + 1;
  let n = t.policy.sweep ~now in
  t.stats.expired <- t.stats.expired + n;
  n

let active t ~now = t.policy.active ~now
let stats t = t.stats
let policy_name t = t.policy.policy_name

(* Registry names relative to the caller's scope (e.g. "fbs.fam"). *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  let s = t.stats in
  register_probe m "datagrams" (fun () -> s.datagrams);
  register_probe m "flows_started" (fun () -> s.flows_started);
  register_probe m "sweeps" (fun () -> s.sweeps);
  register_probe m "expired" (fun () -> s.expired)
