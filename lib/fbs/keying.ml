(* Zero-message keying (paper, Sections 5.1-5.3).

   The pair-based master key K_{S,D} = g^{sd} mod p is implicit: each side
   computes it from its own Diffie-Hellman private value and the peer's
   certified public value.  The flow key is

       K_f = H(sfl | K_{S,D} | S | D)

   Knowing K_f reveals neither K_{S,D} nor any other flow key (one-way H).

   This module owns the bottom two levels of the cache hierarchy of
   Figure 5:

   - PVC (public-value cache) holds *certificates*, not bare values,
     "because the former need not be secure; a certificate can be verified
     each time it is used".  Misses go to the resolver — the master key
     daemon's network fetch in the IP mapping, or a local directory in
     tests ("pinning" certificates is the paper's alternative).
   - MKC (master-key cache) holds computed K_{S,D} values; each fill costs
     a modular exponentiation.

   Resolution is continuation-passing so a PVC miss can suspend a datagram
   while the certificate fetch round-trips the (simulated) network. *)

type error =
  | No_certificate of string (* resolver failed for this principal *)
  | Bad_certificate of string (* verification failed *)
  | Wrong_group of string

type fetch_result = (Fbsr_cert.Certificate.t, string) result

type resolver = Principal.t -> (fetch_result -> unit) -> unit

type counters = {
  mutable master_key_computations : int; (* modular exponentiations *)
  mutable certificate_fetches : int;
  mutable certificate_fetch_retries : int; (* resolver failures retried *)
  mutable certificate_verifications : int;
}

type t = {
  local : Principal.t;
  group : Fbsr_crypto.Dh.group;
  private_value : Fbsr_crypto.Dh.private_value;
  public_value : Fbsr_crypto.Dh.public_value;
  ca_public : Fbsr_crypto.Rsa.public_key;
  ca_hash : Fbsr_crypto.Hash.t;
  resolver : resolver;
  fetch_retries : int;
      (* Extra resolver attempts after a failed fetch: the resolver's own
         failure (MKD gave up, CA unreachable) is itself soft — retrying
         from the keying layer recovers once the network heals. *)
  clock : unit -> float;
  trace : Fbsr_util.Trace.t;
  pvc : (string, Fbsr_cert.Certificate.t) Cache.t;
  (* MKC entries carry the expiry of the certificate they were computed
     from: "a certificate can be verified each time it is used" — caching
     the computed master key must not outlive the certificate's validity. *)
  mkc : (string, string * float) Cache.t; (* name -> (master key, expiry) *)
  counters : counters;
  (* Fetches in flight, so a burst of datagrams to one peer triggers a
     single certificate fetch and a single master-key computation. *)
  pending : (string, ((string, error) result -> unit) list ref) Hashtbl.t;
  (* Which cache level satisfied the most recent [get_master] completion:
     "mkc" (live master key), "pvc" (cached certificate), or "fetch"
     (resolver round trip, including coalesced waiters).  Read by the
     engine's span instrumentation for hit/miss attribution; the
     continuation runs synchronously from the completing path, so the
     field is accurate inside it. *)
  mutable last_resolution : string;
}

let principal_hash name = Fbsr_util.Crc32.string name

let create ?(pvc_sets = 64) ?(mkc_sets = 64) ?(assoc = 2) ?(fetch_retries = 0)
    ?(trace = Fbsr_util.Trace.none) ~local ~group ~private_value ~ca_public ~ca_hash
    ~resolver ~clock () =
  if fetch_retries < 0 then invalid_arg "Keying.create: negative fetch_retries";
  {
    local;
    group;
    private_value;
    public_value = Fbsr_crypto.Dh.public group private_value;
    ca_public;
    ca_hash;
    resolver;
    fetch_retries;
    clock;
    trace;
    pvc =
      Cache.create ~assoc ~sets:pvc_sets ~hash:principal_hash ~equal:String.equal
        ~name:"pvc" ~trace ();
    mkc =
      Cache.create ~assoc ~sets:mkc_sets ~hash:principal_hash ~equal:String.equal
        ~name:"mkc" ~trace ();
    counters =
      { master_key_computations = 0; certificate_fetches = 0;
        certificate_fetch_retries = 0; certificate_verifications = 0 };
    pending = Hashtbl.create 8;
    last_resolution = "none";
  }

let local t = t.local
let group t = t.group
let public_value t = t.public_value
let last_resolution t = t.last_resolution
let counters t = t.counters
let pvc t = t.pvc
let mkc t = t.mkc

(* Registry names relative to the caller's scope (e.g. "fbs.keying").
   The PVC/MKC caches are registered separately by the engine under the
   site-wide "fbs.cache.{pvc,mkc}" prefixes. *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  let c = t.counters in
  register_probe m "master_key_computations" (fun () -> c.master_key_computations);
  register_probe m "certificate_fetches" (fun () -> c.certificate_fetches);
  register_probe m "certificate_fetch_retries" (fun () -> c.certificate_fetch_retries);
  register_probe m "certificate_verifications" (fun () ->
      c.certificate_verifications)

let find_live_master t name =
  match Cache.find t.mkc name with
  | Some (key, expiry) when t.clock () <= expiry -> Some key
  | Some _ ->
      (* The certificate behind this key has expired: drop the key and the
         stale certificate so resolution fetches a fresh one. *)
      Cache.invalidate t.mkc name;
      Cache.invalidate t.pvc name;
      None
  | None -> None

(* Verify a certificate and compute the master key from it. *)
let master_from_certificate t peer (cert : Fbsr_cert.Certificate.t) =
  t.counters.certificate_verifications <- t.counters.certificate_verifications + 1;
  let name = Principal.to_string peer in
  match
    Fbsr_cert.Certificate.verify ~ca_public:t.ca_public ~hash:t.ca_hash
      ~now:(t.clock ()) ~expected_subject:name cert
  with
  | Error e -> Error (Bad_certificate (Fmt.str "%a" Fbsr_cert.Certificate.pp_verify_error e))
  | Ok () ->
      if cert.Fbsr_cert.Certificate.group <> t.group.Fbsr_crypto.Dh.name then
        Error (Wrong_group cert.Fbsr_cert.Certificate.group)
      else begin
        let peer_public = Fbsr_cert.Certificate.public_nat cert in
        t.counters.master_key_computations <- t.counters.master_key_computations + 1;
        match Fbsr_crypto.Dh.shared_bytes t.group t.private_value peer_public with
        | key -> Ok key
        | exception Invalid_argument m -> Error (Bad_certificate m)
      end

(* Obtain K_{S,D} for a peer, consulting MKC, then PVC, then the resolver.
   The continuation may run immediately (cache hit or synchronous resolver)
   or later (network fetch). *)
let get_master t peer (k : (string, error) result -> unit) =
  let name = Principal.to_string peer in
  match find_live_master t name with
  | Some key ->
      t.last_resolution <- "mkc";
      k (Ok key)
  | None -> (
      let complete result =
        match Hashtbl.find_opt t.pending name with
        | None -> ()
        | Some waiters ->
            Hashtbl.remove t.pending name;
            List.iter (fun k -> k result) (List.rev !waiters)
      in
      let from_cert cert =
        match master_from_certificate t peer cert with
        | Ok key ->
            Cache.insert t.mkc name (key, cert.Fbsr_cert.Certificate.not_after);
            complete (Ok key)
        | Error e -> complete (Error e)
      in
      (* Fetch via the resolver, retrying a failed fetch up to
         [t.fetch_retries] extra times: the resolver's failure is itself
         soft state (an MKD that gave up, a momentarily unreachable CA). *)
      let rec fetch attempts_left =
        t.last_resolution <- "fetch";
        t.counters.certificate_fetches <- t.counters.certificate_fetches + 1;
        if Fbsr_util.Trace.enabled t.trace then
          Fbsr_util.Trace.emit t.trace ~time:(t.clock ()) "fbs.keying.cert.fetch"
            [
              ("peer", Fbsr_util.Json.String name);
              ("attempts_left", Fbsr_util.Json.Int attempts_left);
            ];
        t.resolver peer (function
          | Error _ when attempts_left > 0 ->
              t.counters.certificate_fetch_retries <-
                t.counters.certificate_fetch_retries + 1;
              fetch (attempts_left - 1)
          | Error m -> complete (Error (No_certificate m))
          | Ok cert ->
              Cache.insert t.pvc name cert;
              from_cert cert)
      in
      match Hashtbl.find_opt t.pending name with
      | Some waiters -> waiters := k :: !waiters
      | None -> (
          Hashtbl.replace t.pending name (ref [ k ]);
          match Cache.find t.pvc name with
          | Some cert when t.clock () <= cert.Fbsr_cert.Certificate.not_after ->
              t.last_resolution <- "pvc";
              from_cert cert
          | Some _ ->
              (* Cached certificate has expired: evict and refetch. *)
              Cache.invalidate t.pvc name;
              fetch t.fetch_retries
          | None -> fetch t.fetch_retries))

(* Synchronous variant: usable when the resolver completes inline (local
   directory / pinned certificates).  Returns an error if it would block. *)
let get_master_sync t peer =
  let result = ref (Error (No_certificate "resolver did not complete synchronously")) in
  get_master t peer (fun r -> result := r);
  !result

(* Pin a certificate directly into the PVC ("an alternative is to 'pin'
   certain certificates in the cache upon initialization"). *)
let pin_certificate t cert =
  Cache.insert t.pvc cert.Fbsr_cert.Certificate.subject cert

(* Flow key derivation: K_f = H(sfl | K_{S,D} | S | D).  S and D use their
   canonical length-prefixed encodings so the concatenation is injective. *)
let flow_key ~(hash : Fbsr_crypto.Hash.t) ~sfl ~master ~src ~dst =
  let sfl_bytes =
    let v = Sfl.to_int64 sfl in
    String.init 8 (fun i ->
        Char.chr (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xff))
  in
  Fbsr_crypto.Hash.digest_list hash
    [ sfl_bytes; master; Principal.encode src; Principal.encode dst ]

let pp_error ppf = function
  | No_certificate m -> Fmt.pf ppf "no certificate: %s" m
  | Bad_certificate m -> Fmt.pf ppf "bad certificate: %s" m
  | Wrong_group g -> Fmt.pf ppf "certificate for wrong group %s" g
