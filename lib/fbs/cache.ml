(* Soft-state key caches (paper, Section 5.3 "Key Caching").

   A generic set-associative cache with:
   - pluggable randomising hash (CRC-32 by default — the paper's
     recommendation, because cache inputs such as local addresses and
     sequential sfl values are highly correlated);
   - LRU replacement within a set;
   - miss classification into the three C's (compulsory/cold, capacity,
     conflict), which the paper uses to reason about cache sizing.

   Classification follows the standard methodology: a miss on a never-seen
   key is *cold*; a miss on a key that a fully-associative LRU cache of the
   same total capacity would still hold is *conflict*; otherwise it is
   *capacity*.  The shadow fully-associative cache is maintained alongside.

   The cache is soft state by construction: any entry may be dropped at any
   time and the protocol merely recomputes — correctness never depends on
   cache contents. *)

type ('k, 'v) slot = {
  key : 'k;
  mutable value : 'v;
  mutable last_used : int;
  inserted : int; (* tick at insertion, for FIFO replacement *)
}

(* Replacement policy within a set — the paper's Section 5.3 lists "a
   better replacement policy" among the levers against conflict misses. *)
type replacement = Lru | Fifo | Random of Fbsr_util.Rng.t

type stats = {
  mutable hits : int;
  mutable misses_cold : int;
  mutable misses_capacity : int;
  mutable misses_conflict : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type ('k, 'v) t = {
  sets : int;
  assoc : int;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  replacement : replacement;
  slots : ('k, 'v) slot option array; (* sets * assoc *)
  mutable tick : int;
  stats : stats;
  (* Shadow state for miss classification. *)
  seen : ('k, unit) Hashtbl.t;
  shadow : ('k, int) Hashtbl.t; (* key -> last use tick in the shadow LRU *)
  mutable classify : bool;
  name : string; (* observability label, e.g. "tfkc" *)
  trace : Fbsr_util.Trace.t;
}

let new_stats () =
  {
    hits = 0;
    misses_cold = 0;
    misses_capacity = 0;
    misses_conflict = 0;
    evictions = 0;
    invalidations = 0;
  }

let create ?(assoc = 1) ?(classify = true) ?(replacement = Lru) ?(name = "cache")
    ?(trace = Fbsr_util.Trace.none) ~sets ~hash ~equal () =
  if sets <= 0 || assoc <= 0 then invalid_arg "Cache.create: bad geometry";
  {
    sets;
    assoc;
    hash;
    equal;
    replacement;
    slots = Array.make (sets * assoc) None;
    tick = 0;
    stats = new_stats ();
    seen = Hashtbl.create 64;
    shadow = Hashtbl.create 64;
    classify;
    name;
    trace;
  }

let capacity t = t.sets * t.assoc
let stats t = t.stats
let name t = t.name

(* Expose the statistics record through the metrics registry, under the
   registry's current prefix (callers scope it, e.g. "fbs.cache.tfkc").
   Pull-probes: the record stays the single source of truth and the hot
   path is untouched. *)
let register_metrics t m =
  let open Fbsr_util.Metrics in
  let s = t.stats in
  register_probe m "hits" (fun () -> s.hits);
  register_probe m "misses.cold" (fun () -> s.misses_cold);
  register_probe m "misses.capacity" (fun () -> s.misses_capacity);
  register_probe m "misses.conflict" (fun () -> s.misses_conflict);
  register_probe m "misses.total" (fun () ->
      s.misses_cold + s.misses_capacity + s.misses_conflict);
  register_probe m "evictions" (fun () -> s.evictions);
  register_probe m "invalidations" (fun () -> s.invalidations)

let total_misses s = s.misses_cold + s.misses_capacity + s.misses_conflict
let accesses s = s.hits + total_misses s

let miss_rate t =
  let s = t.stats in
  let total = accesses s in
  if total = 0 then 0.0 else float_of_int (total_misses s) /. float_of_int total

let set_base t key = t.hash key mod t.sets * t.assoc

(* Shadow fully-associative LRU of the same capacity. *)
let shadow_touch t key =
  if t.classify then begin
    Hashtbl.replace t.shadow key t.tick;
    if Hashtbl.length t.shadow > capacity t then begin
      (* Evict the least recently used shadow entry. *)
      let victim =
        Hashtbl.fold
          (fun k tick acc ->
            match acc with
            | Some (_, best) when best <= tick -> acc
            | _ -> Some (k, tick))
          t.shadow None
      in
      match victim with Some (k, _) -> Hashtbl.remove t.shadow k | None -> ()
    end
  end

let classify_miss t key =
  if not t.classify then t.stats.misses_capacity <- t.stats.misses_capacity + 1
  else if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.stats.misses_cold <- t.stats.misses_cold + 1
  end
  else if Hashtbl.mem t.shadow key then
    t.stats.misses_conflict <- t.stats.misses_conflict + 1
  else t.stats.misses_capacity <- t.stats.misses_capacity + 1

(* Has this key ever missed in this cache?  (Population happens on first
   miss, so for find-before-insert access patterns this means "ever
   accessed".)  Survives {!clear}: it is the memory that lets a caller
   distinguish a compulsory first computation from a *recomputation* after
   soft-state loss.  Always false when classification is disabled. *)
let was_seen t key = Hashtbl.mem t.seen key

let find t key =
  t.tick <- t.tick + 1;
  let base = set_base t key in
  let result = ref None in
  for way = 0 to t.assoc - 1 do
    match t.slots.(base + way) with
    | Some slot when t.equal slot.key key ->
        slot.last_used <- t.tick;
        result := Some slot.value
    | Some _ | None -> ()
  done;
  (match !result with
  | Some _ -> t.stats.hits <- t.stats.hits + 1
  | None -> classify_miss t key);
  shadow_touch t key;
  !result

(* Probe without affecting statistics or LRU state. *)
let peek t key =
  let base = set_base t key in
  let result = ref None in
  for way = 0 to t.assoc - 1 do
    match t.slots.(base + way) with
    | Some slot when t.equal slot.key key -> result := Some slot.value
    | Some _ | None -> ()
  done;
  !result

let victim_index t base =
  (* Pick the way to evict according to the replacement policy. *)
  match t.replacement with
  | Random rng -> base + Fbsr_util.Rng.int rng t.assoc
  | Lru | Fifo ->
      let metric slot =
        match t.replacement with Fifo -> slot.inserted | _ -> slot.last_used
      in
      let best = ref base in
      for way = 1 to t.assoc - 1 do
        match (t.slots.(base + way), t.slots.(!best)) with
        | Some s, Some b when metric s < metric b -> best := base + way
        | _ -> ()
      done;
      !best

let insert t key value =
  t.tick <- t.tick + 1;
  let base = set_base t key in
  (* Reuse an existing slot for the key, else an empty way, else evict. *)
  let existing = ref None and empty = ref None in
  for way = 0 to t.assoc - 1 do
    match t.slots.(base + way) with
    | Some slot when t.equal slot.key key -> existing := Some (base + way)
    | Some _ -> ()
    | None -> if !empty = None then empty := Some (base + way)
  done;
  let idx =
    match (!existing, !empty) with
    | Some i, _ -> i
    | None, Some i -> i
    | None, None ->
        t.stats.evictions <- t.stats.evictions + 1;
        if Fbsr_util.Trace.enabled t.trace then
          Fbsr_util.Trace.emit t.trace "fbs.cache.evict"
            [
              ("cache", Fbsr_util.Json.String t.name);
              ("evictions", Fbsr_util.Json.Int t.stats.evictions);
            ];
        victim_index t base
  in
  t.slots.(idx) <- Some { key; value; last_used = t.tick; inserted = t.tick };
  shadow_touch t key

let invalidate t key =
  let base = set_base t key in
  for way = 0 to t.assoc - 1 do
    match t.slots.(base + way) with
    | Some slot when t.equal slot.key key ->
        t.slots.(base + way) <- None;
        t.stats.invalidations <- t.stats.invalidations + 1
    | Some _ | None -> ()
  done

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Hashtbl.reset t.shadow

let iter t f =
  Array.iter (function Some slot -> f slot.key slot.value | None -> ()) t.slots

let fold t f acc =
  Array.fold_left
    (fun acc -> function Some slot -> f slot.key slot.value acc | None -> acc)
    acc t.slots

let occupancy t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.slots

let pp_stats ppf s =
  Fmt.pf ppf "hits=%d cold=%d capacity=%d conflict=%d evictions=%d" s.hits s.misses_cold
    s.misses_capacity s.misses_conflict s.evictions
