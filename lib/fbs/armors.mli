(** The built-in armor manifest.  [ensure ()] forces this module (and so
    every registration in it) to be linked and initialized — called by
    [Engine.create] before the registry is consulted. *)

val ensure : unit -> unit
