(** The security flow header (Figure 2 of the paper, Section 7.2 sizes):
    sfl 64 b | suite 8 b | flags 8 b | confounder 32 b | timestamp 32 b |
    MAC (suite-dependent, 128 b for the paper's suite). *)

type t = {
  sfl : Sfl.t;
  suite : Suite.t;
  secret : bool;
  confounder : int;
  timestamp : int;
  mac : string;
}

val fixed_size : int
val size : t -> int
val size_for_suite : Suite.t -> int

val encode : t -> string
(** One allocation: assembled in an exact-capacity writer whose backing
    buffer is stolen by {!Fbsr_util.Byte_writer.finalize}. *)

val encode_into : Fbsr_util.Byte_writer.t -> t -> unit
(** Append the encoded header to an existing writer (shared-buffer
    assembly of header + body). *)

val encode_fields_into :
  Fbsr_util.Byte_writer.t ->
  sfl:Sfl.t ->
  suite:Suite.t ->
  secret:bool ->
  confounder:int ->
  timestamp:int ->
  unit
(** The fixed fields up to (but excluding) the MAC — for seal paths that
    write the MAC and body into the same buffer afterwards. *)

type error = Truncated | Unknown_suite of int | Bad_flags of int

val decode : string -> (t * string, error) result
(** Returns the header and the remaining bytes (the protected body).
    Copies the MAC and body out of the wire buffer; retained as the
    reference implementation — hot paths use {!decode_view}. *)

(** Zero-copy decode result: scalar fields parsed eagerly, MAC and body
    borrowed from the wire buffer as slices.  The slices are valid only
    while the wire buffer is; copy ({!Fbsr_util.Slice.to_string}) before
    retaining them past datagram processing. *)
type view = {
  v_sfl : Sfl.t;
  v_suite : Suite.t;
  v_secret : bool;
  v_confounder : int;
  v_timestamp : int;
  v_mac : Fbsr_util.Slice.t;
  v_body : Fbsr_util.Slice.t;
}

val decode_view : Fbsr_util.Slice.t -> (view, error) result

val to_header : view -> t
(** Materialize a header record (copies the MAC). *)

val confounder_bytes : t -> string
val timestamp_bytes : t -> string

val auth_bytes : t -> string
(** The suite and flags bytes, included in the MAC input (hardening of the
    paper's sketch: the algorithm-identification field is authenticated). *)

val confounder_iv : t -> string
(** The 32-bit confounder duplicated into a 64-bit DES IV (Section 7.2). *)

val mac_prelude_size : int
(** 10: suite and flags bytes plus confounder and timestamp encodings —
    everything the MAC covers ahead of the payload. *)

val write_mac_prelude :
  Bytes.t -> suite:Suite.t -> secret:bool -> confounder:int -> timestamp:int -> unit
(** Fill a caller-owned scratch buffer (>= {!mac_prelude_size} bytes)
    with [auth_bytes | confounder_bytes | timestamp_bytes] — the
    allocation-free flavour for reusable per-engine scratch. *)

val write_confounder_iv : Bytes.t -> confounder:int -> unit
(** Fill the first 8 bytes of a caller-owned scratch buffer with the
    duplicated-confounder DES IV ({!confounder_iv} without the
    allocations). *)

val pp : Format.formatter -> t -> unit
