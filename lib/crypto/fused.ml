(* Single-pass MAC + encryption.

   Section 5.3: "The MAC computation is an expensive operation.  It
   requires touching all the data in the datagram.  An efficient
   implementation should try to combine all such data touching operations
   into a single pass.  For example, if data confidentiality is desired,
   then the MAC computation and encryption should be rolled into one
   loop."

   [mac_and_encrypt] walks the payload once in cache-friendly chunks,
   feeding each chunk to the (prefix-MD5) MAC context and to an incremental
   DES-CBC context.  Results are bit-identical to running the two passes
   separately; the ablation bench measures the locality benefit. *)

let chunk_size = 4096

let mac_and_encrypt ~mac_key ~des_key ~iv ~prefix_parts payload =
  (* MAC = MD5(mac_key | prefix_parts... | payload), as the FBS engine
     computes it; ciphertext = DES-CBC(des_key, iv, payload).

     The loop allocates only the exact-size ciphertext buffer up front:
     each chunk is fed to the MD5 context in place ([Md5.feed], no copy)
     and CBC-encrypted straight into the output ([Des.cbc_blocks_into]),
     so the interleaving costs nothing over the cheaper of the two
     passes — the earlier piece-list/concat version was slower than
     two-pass despite the locality win. *)
  let md5 = Md5.init () in
  Md5.update md5 mac_key;
  List.iter (Md5.update md5) prefix_parts;
  let n = String.length payload in
  let out = Bytes.create (Des.padded_length n) in
  let chain = Array.make 2 0 in
  Des.cbc_seed_chain ~iv chain;
  let whole = n land lnot 7 in
  let off = ref 0 in
  while !off < whole do
    let len = min chunk_size (whole - !off) in
    Md5.feed md5 payload !off len;
    Des.cbc_blocks_into des_key chain ~src:payload ~src_pos:!off ~nblocks:(len / 8)
      ~dst:out ~dst_pos:!off;
    off := !off + len
  done;
  if n > whole then Md5.feed md5 payload whole (n - whole);
  Des.cbc_tail_into des_key chain ~src:payload ~src_pos:whole ~src_len:(n - whole)
    ~dst:out ~dst_pos:whole;
  let mac = Md5.final md5 in
  (mac, Bytes.unsafe_to_string out)

(* The two-pass equivalent, for equivalence tests and the bench. *)
let mac_then_encrypt ~mac_key ~des_key ~iv ~prefix_parts payload =
  let mac = Md5.digest_list ((mac_key :: prefix_parts) @ [ payload ]) in
  let ct = Des.encrypt_cbc ~iv des_key payload in
  (mac, ct)
