(* A common interface over the hash functions, so the FBS algorithm-suite
   field can select the key-derivation hash H and the MAC hash at run time
   (the paper's "algorithm identification field", Section 5.2). *)

module type S = sig
  val name : string
  val digest_size : int
  val block_size : int

  type ctx

  val init : unit -> ctx
  val copy : ctx -> ctx
  val update : ctx -> string -> unit
  val feed : ctx -> string -> int -> int -> unit
  val feed_slice : ctx -> Fbsr_util.Slice.t -> unit
  val final : ctx -> string
  val digest : string -> string
  val digest_list : string list -> string
end

type t = (module S)

let md5 : t = (module Md5)
let sha1 : t = (module Sha1)

let name (module H : S) = H.name
let digest_size (module H : S) = H.digest_size
let digest (module H : S) s = H.digest s
let digest_list (module H : S) parts = H.digest_list parts

(* Digest of the concatenation of slice parts — the zero-copy sibling of
   [digest_list]: each part streams through [feed_slice], nothing is
   concatenated. *)
let digest_slices (module H : S) (parts : Fbsr_util.Slice.t list) =
  let ctx = H.init () in
  List.iter (H.feed_slice ctx) parts;
  H.final ctx

let of_name = function
  | "md5" -> md5
  | "sha1" -> sha1
  | n -> invalid_arg ("Hash.of_name: unknown hash " ^ n)

(* A midstate is a frozen streaming context — typically the compression
   state after absorbing a keyed prefix — packed with its hash module so
   the existential context type never escapes.  Resuming copies the
   context first, so one midstate serves any number of digests.  Cost
   model: absorbing the prefix is paid once at construction; each resume
   pays one context copy (~80 bytes) instead. *)
type midstate = Mid : (module S with type ctx = 'a) * 'a -> midstate

let midstate ((module H : S) : t) ~prefix =
  let ctx = H.init () in
  H.update ctx prefix;
  Mid ((module H), ctx)

let midstate_hash (Mid ((module H), _)) : t =
  (* Recover the wrapped hash by name: the packed module is the same
     underlying implementation, but its [ctx] is existential, so it
     cannot be returned at type [t] directly. *)
  of_name H.name

let resume_slices (Mid ((module H), mid)) (parts : Fbsr_util.Slice.t list) =
  let ctx = H.copy mid in
  List.iter (H.feed_slice ctx) parts;
  H.final ctx

let resume_list (Mid ((module H), mid)) parts =
  let ctx = H.copy mid in
  List.iter (H.update ctx) parts;
  H.final ctx
