(* Constant-time byte-string comparison for MAC verification: the running
   time depends only on the lengths, never on where the first difference
   falls, so a forger learns nothing from timing. *)

let equal (a : string) (b : string) =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

(* Slice variant: compares a computed MAC against a view into the wire
   buffer without first copying the wire bytes out.  Same constant-time
   discipline — the loop always runs the full (public) length. *)
let equal_slice (a : Fbsr_util.Slice.t) (b : Fbsr_util.Slice.t) =
  let open Fbsr_util in
  if Slice.length a <> Slice.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Slice.length a - 1 do
      acc :=
        !acc lor (Char.code (Slice.unsafe_get a i) lxor Char.code (Slice.unsafe_get b i))
    done;
    !acc = 0
  end

let equal_string_slice (a : string) (b : Fbsr_util.Slice.t) =
  equal_slice (Fbsr_util.Slice.of_string a) b
