(* SHA-1 reference implementation — the pre-kernel-rewrite [Sha1], kept
   verbatim as the differential oracle for the unrolled native-int
   compression kernel (the same retained-oracle pattern as [Des_ref]).
   Int32-boxed and per-block-allocating by design: it is the known-good
   transcription of FIPS PUB 180-1, not a fast path. *)

let digest_size = 20
let block_size = 64
let name = "sha1"

type ctx = {
  mutable h0 : int32;
  mutable h1 : int32;
  mutable h2 : int32;
  mutable h3 : int32;
  mutable h4 : int32;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int64;
}

let init () =
  {
    h0 = 0x67452301l;
    h1 = 0xefcdab89l;
    h2 = 0x98badcfel;
    h3 = 0x10325476l;
    h4 = 0xc3d2e1f0l;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

(* Independent snapshot of a streaming context: the midstate cache
   resumes MAC computations from a copy, leaving the original pristine. *)
let copy t = { t with buf = Bytes.copy t.buf }

let rotl32 x n =
  Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let word_be s off =
  let b i = Int32.of_int (Char.code (Bytes.get s (off + i))) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor
       (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let compress ctx block off =
  let w = Array.make 80 0l in
  for i = 0 to 15 do
    w.(i) <- word_be block (off + (4 * i))
  done;
  for i = 16 to 79 do
    w.(i) <-
      rotl32
        (Int32.logxor w.(i - 3)
           (Int32.logxor w.(i - 8) (Int32.logxor w.(i - 14) w.(i - 16))))
        1
  done;
  let a = ref ctx.h0 and b = ref ctx.h1 and c = ref ctx.h2 in
  let d = ref ctx.h3 and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then
        (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d),
         0x5a827999l)
      else if i < 40 then (Int32.logxor !b (Int32.logxor !c !d), 0x6ed9eba1l)
      else if i < 60 then
        (Int32.logor
           (Int32.logand !b !c)
           (Int32.logor (Int32.logand !b !d) (Int32.logand !c !d)),
         0x8f1bbcdcl)
      else (Int32.logxor !b (Int32.logxor !c !d), 0xca62c1d6l)
    in
    let tmp =
      Int32.add (Int32.add (Int32.add (Int32.add (rotl32 !a 5) f) !e) k) w.(i)
    in
    e := !d;
    d := !c;
    c := rotl32 !b 30;
    b := !a;
    a := tmp
  done;
  ctx.h0 <- Int32.add ctx.h0 !a;
  ctx.h1 <- Int32.add ctx.h1 !b;
  ctx.h2 <- Int32.add ctx.h2 !c;
  ctx.h3 <- Int32.add ctx.h3 !d;
  ctx.h4 <- Int32.add ctx.h4 !e

let feed ctx s pos len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  if ctx.buf_len > 0 then begin
    let take = min !len (block_size - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= block_size do
    Bytes.blit_string s !pos ctx.buf 0 block_size;
    compress ctx ctx.buf 0;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let update ctx s = feed ctx s 0 (String.length s)

let feed_slice ctx (s : Fbsr_util.Slice.t) =
  feed ctx s.Fbsr_util.Slice.base s.Fbsr_util.Slice.off s.Fbsr_util.Slice.len

let word_out_be b off (v : int32) =
  for i = 0 to 3 do
    Bytes.set b (off + i)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v (24 - (8 * i))) land 0xff))
  done

let final ctx =
  let bit_len = Int64.mul ctx.total 8L in
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bit_len (56 - (8 * i))) land 0xff))
  done;
  update ctx (Bytes.unsafe_to_string pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  word_out_be out 0 ctx.h0;
  word_out_be out 4 ctx.h1;
  word_out_be out 8 ctx.h2;
  word_out_be out 12 ctx.h3;
  word_out_be out 16 ctx.h4;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  final ctx

let hexdigest s = Fbsr_util.Hex.encode (digest s)
