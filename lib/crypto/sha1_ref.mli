(** SHA-1 reference implementation: the pre-kernel-rewrite streaming
    [Sha1], retained verbatim as the differential oracle the test battery
    pins the unrolled native-int kernel to (the [Des_ref] pattern).  Same
    interface as {!Sha1}; not used on any datapath. *)

val digest_size : int
val block_size : int
val name : string

type ctx

val init : unit -> ctx
val copy : ctx -> ctx
val update : ctx -> string -> unit
val feed : ctx -> string -> int -> int -> unit
val feed_slice : ctx -> Fbsr_util.Slice.t -> unit
val final : ctx -> string
val digest : string -> string
val digest_list : string list -> string
val hexdigest : string -> string
