(** SHA-1 (FIPS PUB 180), streaming implementation. *)

val digest_size : int
(** 20 bytes. *)

val block_size : int
(** 64 bytes. *)

val name : string

type ctx

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot: feeding or finalizing the copy leaves the
    original untouched (and vice versa). *)

val update : ctx -> string -> unit
val feed : ctx -> string -> int -> int -> unit
val feed_slice : ctx -> Fbsr_util.Slice.t -> unit
val final : ctx -> string
val digest : string -> string
val digest_list : string list -> string
val hexdigest : string -> string
