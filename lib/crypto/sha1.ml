(* SHA-1 (FIPS PUB 180, "SHS" in the paper's reference list).

   The paper lists SHS as a candidate for both the key-derivation hash H and
   the MAC hash; we provide it so the algorithm-identification field of the
   FBS header has a real second suite to select.

   Compression runs entirely on the native [int] — the same untagged
   deferred-masking style as [Md5] and [Des_kernel] — because an [int32]
   pipeline boxes every intermediate without flambda.  The schedule
   expansion is interleaved into the round steps (step i also fills
   w[i+16]) so its independent xor/rotate work hides behind the serial
   a→e dependency chain instead of running as a second sequential loop.
   The pre-rewrite Int32 implementation is retained verbatim as
   [Sha1_ref], the oracle the differential battery in
   test/test_crypto.ml pins this kernel to. *)

let digest_size = 20
let block_size = 64
let name = "sha1"

type ctx = {
  mutable h0 : int; (* chaining words, 32-bit values in native ints *)
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int64; (* bytes processed *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

(* Independent snapshot of a streaming context: the midstate cache
   resumes MAC computations from a copy, leaving the original pristine. *)
let copy t = { t with buf = Bytes.copy t.buf }

let mask = 0xFFFFFFFF

(* Message-schedule and final-state scratch, one per domain (shard
   domains MAC concurrently; see the note in md5.ml).  [sw] holds the
   80-word schedule, every entry stored masked; [sst] receives the
   post-round state instead of a returned tuple (which would box). *)
type scratch = { sw : int array; sst : int array }

let scratch =
  Fbsr_util.Domain_shim.local_make (fun () ->
      { sw = Array.make 80 0; sst = Array.make 5 0 })

(* One round = four five-step iterations; the (a, b, c, d, e) rotation is
   static renaming, so after five steps the names line up again and the
   state lives in function arguments (registers), not refs.  Step i also
   expands w[i+16] = rotl1(w[i+13] ^ w[i+8] ^ w[i+2] ^ w[i]) — those
   loads/stores have no dependency on the round state, so they execute
   in the shadow of the serial chain; the fill runs through w[75], and
   w[76..79] are finished at the round-3/round-4 boundary.

   Masking discipline: each step's new word is masked once at
   production, so the two values a rotate ever sees — the fresh word
   (rotl5 next step, rotl30 a step later) and a schedule entry — are
   always exact, and the [lsr] halves cannot smear garbage downward.
   The rotl30 *outputs* are deliberately left unmasked (bits 32..61
   carry garbage): they only ever flow through the bitwise fs and
   upward-carrying additions, where the low 32 bits stay exact, and
   are re-masked when [compress] folds the final state.  One mask per
   step instead of the two a mask-before-rotate scheme costs. *)
let rec round1 w st i a b c d e =
  if i = 20 then round2 w st 20 a b c d e
  else begin
    let x =
      Array.unsafe_get w (i + 13) lxor Array.unsafe_get w (i + 8)
      lxor Array.unsafe_get w (i + 2) lxor Array.unsafe_get w i
    in
    Array.unsafe_set w (i + 16) (((x lsl 1) lor (x lsr 31)) land mask);
    let e =
      (((a lsl 5) lor (a lsr 27)) + ((b land c) lor (lnot b land d)) + e
      + 0x5a827999 + Array.unsafe_get w i)
      land mask
    in
    let b = (b lsl 30) lor (b lsr 2) in
    let x =
      Array.unsafe_get w (i + 14) lxor Array.unsafe_get w (i + 9)
      lxor Array.unsafe_get w (i + 3) lxor Array.unsafe_get w (i + 1)
    in
    Array.unsafe_set w (i + 17) (((x lsl 1) lor (x lsr 31)) land mask);
    let d =
      (((e lsl 5) lor (e lsr 27)) + ((a land b) lor (lnot a land c)) + d
      + 0x5a827999 + Array.unsafe_get w (i + 1))
      land mask
    in
    let a = (a lsl 30) lor (a lsr 2) in
    let x =
      Array.unsafe_get w (i + 15) lxor Array.unsafe_get w (i + 10)
      lxor Array.unsafe_get w (i + 4) lxor Array.unsafe_get w (i + 2)
    in
    Array.unsafe_set w (i + 18) (((x lsl 1) lor (x lsr 31)) land mask);
    let c =
      (((d lsl 5) lor (d lsr 27)) + ((e land a) lor (lnot e land b)) + c
      + 0x5a827999 + Array.unsafe_get w (i + 2))
      land mask
    in
    let e = (e lsl 30) lor (e lsr 2) in
    let x =
      Array.unsafe_get w (i + 16) lxor Array.unsafe_get w (i + 11)
      lxor Array.unsafe_get w (i + 5) lxor Array.unsafe_get w (i + 3)
    in
    Array.unsafe_set w (i + 19) (((x lsl 1) lor (x lsr 31)) land mask);
    let b =
      (((c lsl 5) lor (c lsr 27)) + ((d land e) lor (lnot d land a)) + b
      + 0x5a827999 + Array.unsafe_get w (i + 3))
      land mask
    in
    let d = (d lsl 30) lor (d lsr 2) in
    let x =
      Array.unsafe_get w (i + 17) lxor Array.unsafe_get w (i + 12)
      lxor Array.unsafe_get w (i + 6) lxor Array.unsafe_get w (i + 4)
    in
    Array.unsafe_set w (i + 20) (((x lsl 1) lor (x lsr 31)) land mask);
    let a =
      (((b lsl 5) lor (b lsr 27)) + ((c land d) lor (lnot c land e)) + a
      + 0x5a827999 + Array.unsafe_get w (i + 4))
      land mask
    in
    let c = (c lsl 30) lor (c lsr 2) in
    round1 w st (i + 5) a b c d e
  end

and round2 w st i a b c d e =
  if i = 40 then round3 w st 40 a b c d e
  else begin
    let x =
      Array.unsafe_get w (i + 13) lxor Array.unsafe_get w (i + 8)
      lxor Array.unsafe_get w (i + 2) lxor Array.unsafe_get w i
    in
    Array.unsafe_set w (i + 16) (((x lsl 1) lor (x lsr 31)) land mask);
    let e =
      (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0x6ed9eba1
      + Array.unsafe_get w i)
      land mask
    in
    let b = (b lsl 30) lor (b lsr 2) in
    let x =
      Array.unsafe_get w (i + 14) lxor Array.unsafe_get w (i + 9)
      lxor Array.unsafe_get w (i + 3) lxor Array.unsafe_get w (i + 1)
    in
    Array.unsafe_set w (i + 17) (((x lsl 1) lor (x lsr 31)) land mask);
    let d =
      (((e lsl 5) lor (e lsr 27)) + (a lxor b lxor c) + d + 0x6ed9eba1
      + Array.unsafe_get w (i + 1))
      land mask
    in
    let a = (a lsl 30) lor (a lsr 2) in
    let x =
      Array.unsafe_get w (i + 15) lxor Array.unsafe_get w (i + 10)
      lxor Array.unsafe_get w (i + 4) lxor Array.unsafe_get w (i + 2)
    in
    Array.unsafe_set w (i + 18) (((x lsl 1) lor (x lsr 31)) land mask);
    let c =
      (((d lsl 5) lor (d lsr 27)) + (e lxor a lxor b) + c + 0x6ed9eba1
      + Array.unsafe_get w (i + 2))
      land mask
    in
    let e = (e lsl 30) lor (e lsr 2) in
    let x =
      Array.unsafe_get w (i + 16) lxor Array.unsafe_get w (i + 11)
      lxor Array.unsafe_get w (i + 5) lxor Array.unsafe_get w (i + 3)
    in
    Array.unsafe_set w (i + 19) (((x lsl 1) lor (x lsr 31)) land mask);
    let b =
      (((c lsl 5) lor (c lsr 27)) + (d lxor e lxor a) + b + 0x6ed9eba1
      + Array.unsafe_get w (i + 3))
      land mask
    in
    let d = (d lsl 30) lor (d lsr 2) in
    let x =
      Array.unsafe_get w (i + 17) lxor Array.unsafe_get w (i + 12)
      lxor Array.unsafe_get w (i + 6) lxor Array.unsafe_get w (i + 4)
    in
    Array.unsafe_set w (i + 20) (((x lsl 1) lor (x lsr 31)) land mask);
    let a =
      (((b lsl 5) lor (b lsr 27)) + (c lxor d lxor e) + a + 0x6ed9eba1
      + Array.unsafe_get w (i + 4))
      land mask
    in
    let c = (c lsl 30) lor (c lsr 2) in
    round2 w st (i + 5) a b c d e
  end

and round3 w st i a b c d e =
  if i = 60 then begin
    (* w76..w79: the interleaved fill above stops at w75 (step 59 wrote
       w[59+16]); finish the schedule before the expansion-free round 4. *)
    for j = 76 to 79 do
      let x =
        Array.unsafe_get w (j - 3) lxor Array.unsafe_get w (j - 8)
        lxor Array.unsafe_get w (j - 14) lxor Array.unsafe_get w (j - 16)
      in
      Array.unsafe_set w j (((x lsl 1) lor (x lsr 31)) land mask)
    done;
    round4 w st 60 a b c d e
  end
  else begin
    let x =
      Array.unsafe_get w (i + 13) lxor Array.unsafe_get w (i + 8)
      lxor Array.unsafe_get w (i + 2) lxor Array.unsafe_get w i
    in
    Array.unsafe_set w (i + 16) (((x lsl 1) lor (x lsr 31)) land mask);
    let e =
      (((a lsl 5) lor (a lsr 27))
      + ((b land c) lor (b land d) lor (c land d))
      + e + 0x8f1bbcdc + Array.unsafe_get w i)
      land mask
    in
    let b = (b lsl 30) lor (b lsr 2) in
    let x =
      Array.unsafe_get w (i + 14) lxor Array.unsafe_get w (i + 9)
      lxor Array.unsafe_get w (i + 3) lxor Array.unsafe_get w (i + 1)
    in
    Array.unsafe_set w (i + 17) (((x lsl 1) lor (x lsr 31)) land mask);
    let d =
      (((e lsl 5) lor (e lsr 27))
      + ((a land b) lor (a land c) lor (b land c))
      + d + 0x8f1bbcdc + Array.unsafe_get w (i + 1))
      land mask
    in
    let a = (a lsl 30) lor (a lsr 2) in
    let x =
      Array.unsafe_get w (i + 15) lxor Array.unsafe_get w (i + 10)
      lxor Array.unsafe_get w (i + 4) lxor Array.unsafe_get w (i + 2)
    in
    Array.unsafe_set w (i + 18) (((x lsl 1) lor (x lsr 31)) land mask);
    let c =
      (((d lsl 5) lor (d lsr 27))
      + ((e land a) lor (e land b) lor (a land b))
      + c + 0x8f1bbcdc + Array.unsafe_get w (i + 2))
      land mask
    in
    let e = (e lsl 30) lor (e lsr 2) in
    let x =
      Array.unsafe_get w (i + 16) lxor Array.unsafe_get w (i + 11)
      lxor Array.unsafe_get w (i + 5) lxor Array.unsafe_get w (i + 3)
    in
    Array.unsafe_set w (i + 19) (((x lsl 1) lor (x lsr 31)) land mask);
    let b =
      (((c lsl 5) lor (c lsr 27))
      + ((d land e) lor (d land a) lor (e land a))
      + b + 0x8f1bbcdc + Array.unsafe_get w (i + 3))
      land mask
    in
    let d = (d lsl 30) lor (d lsr 2) in
    let x =
      Array.unsafe_get w (i + 17) lxor Array.unsafe_get w (i + 12)
      lxor Array.unsafe_get w (i + 6) lxor Array.unsafe_get w (i + 4)
    in
    Array.unsafe_set w (i + 20) (((x lsl 1) lor (x lsr 31)) land mask);
    let a =
      (((b lsl 5) lor (b lsr 27))
      + ((c land d) lor (c land e) lor (d land e))
      + a + 0x8f1bbcdc + Array.unsafe_get w (i + 4))
      land mask
    in
    let c = (c lsl 30) lor (c lsr 2) in
    round3 w st (i + 5) a b c d e
  end

and round4 w st i a b c d e =
  if i = 80 then begin
    Array.unsafe_set st 0 a;
    Array.unsafe_set st 1 b;
    Array.unsafe_set st 2 c;
    Array.unsafe_set st 3 d;
    Array.unsafe_set st 4 e
  end
  else begin
    let e =
      (((a lsl 5) lor (a lsr 27)) + (b lxor c lxor d) + e + 0xca62c1d6
      + Array.unsafe_get w i)
      land mask
    in
    let b = (b lsl 30) lor (b lsr 2) in
    let d =
      (((e lsl 5) lor (e lsr 27)) + (a lxor b lxor c) + d + 0xca62c1d6
      + Array.unsafe_get w (i + 1))
      land mask
    in
    let a = (a lsl 30) lor (a lsr 2) in
    let c =
      (((d lsl 5) lor (d lsr 27)) + (e lxor a lxor b) + c + 0xca62c1d6
      + Array.unsafe_get w (i + 2))
      land mask
    in
    let e = (e lsl 30) lor (e lsr 2) in
    let b =
      (((c lsl 5) lor (c lsr 27)) + (d lxor e lxor a) + b + 0xca62c1d6
      + Array.unsafe_get w (i + 3))
      land mask
    in
    let d = (d lsl 30) lor (d lsr 2) in
    let a =
      (((b lsl 5) lor (b lsr 27)) + (c lxor d lxor e) + a + 0xca62c1d6
      + Array.unsafe_get w (i + 4))
      land mask
    in
    let c = (c lsl 30) lor (c lsr 2) in
    round4 w st (i + 5) a b c d e
  end

let compress ctx (block : string) off =
  let { sw = w; sst = st } = Fbsr_util.Domain_shim.local_get scratch in
  for i = 0 to 15 do
    Array.unsafe_set w i
      (Int32.to_int (String.get_int32_be block (off + (4 * i))) land mask)
  done;
  round1 w st 0 ctx.h0 ctx.h1 ctx.h2 ctx.h3 ctx.h4;
  ctx.h0 <- (ctx.h0 + Array.unsafe_get st 0) land mask;
  ctx.h1 <- (ctx.h1 + Array.unsafe_get st 1) land mask;
  ctx.h2 <- (ctx.h2 + Array.unsafe_get st 2) land mask;
  ctx.h3 <- (ctx.h3 + Array.unsafe_get st 3) land mask;
  ctx.h4 <- (ctx.h4 + Array.unsafe_get st 4) land mask

let feed ctx s pos len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (block_size - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = block_size then begin
      compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks compress straight from the source — no blit. *)
  while !len >= block_size do
    compress ctx s !pos;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let update ctx s = feed ctx s 0 (String.length s)

let feed_slice ctx (s : Fbsr_util.Slice.t) =
  feed ctx s.Fbsr_util.Slice.base s.Fbsr_util.Slice.off s.Fbsr_util.Slice.len

let word_out_be b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (24 - (8 * i))) land 0xff))
  done

let final ctx =
  let bit_len = Int64.mul ctx.total 8L in
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bit_len (56 - (8 * i))) land 0xff))
  done;
  (* Careful: feeding the pad updates [total], but [bit_len] is captured. *)
  update ctx (Bytes.unsafe_to_string pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  word_out_be out 0 ctx.h0;
  word_out_be out 4 ctx.h1;
  word_out_be out 8 ctx.h2;
  word_out_be out 12 ctx.h3;
  word_out_be out 16 ctx.h4;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  final ctx

let hexdigest s = Fbsr_util.Hex.encode (digest s)
