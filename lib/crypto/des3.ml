(* Triple DES (EDE3) — an extension beyond the paper for the key "wear
   out" concern of Section 5.2: a deployment worried about single-DES key
   lifetime can select a 3DES suite through the algorithm-identification
   field without any protocol change.

   Encryption: E(k3, D(k2, E(k1, block))); 24-byte keys.  Built on
   {!Des_kernel} with the interior IP/FP pairs cancelled: the kernel's
   [rounds] maps post-IP halves to the FIPS preoutput, and FP-then-IP is
   the identity, so a block takes one IP, three sixteen-round passes with
   the appropriate schedules, and one FP — a 3DES block costs three DES
   round-sets, not three full DES passes. *)

let key_size = 24
let block_size = 8

type key = { k1 : Des.key; k2 : Des.key; k3 : Des.key }

let of_string key =
  if String.length key <> key_size then invalid_arg "Des3: key must be 24 bytes";
  {
    k1 = Des.of_string (String.sub key 0 8);
    k2 = Des.of_string (String.sub key 8 8);
    k3 = Des.of_string (String.sub key 16 8);
  }

(* E(k3, D(k2, E(k1, .))) with the interior FP/IP cancelled. *)
let[@inline] encrypt_io key (io : int array) =
  Des_kernel.ip io;
  Des_kernel.rounds (Des.sched_e key.k1) io;
  Des_kernel.rounds (Des.sched_d key.k2) io;
  Des_kernel.rounds (Des.sched_e key.k3) io;
  Des_kernel.fp io

let[@inline] decrypt_io key (io : int array) =
  Des_kernel.ip io;
  Des_kernel.rounds (Des.sched_d key.k3) io;
  Des_kernel.rounds (Des.sched_e key.k2) io;
  Des_kernel.rounds (Des.sched_d key.k1) io;
  Des_kernel.fp io

let crypt_block_i64 crypt key (block : int64) : int64 =
  let io = Array.make 2 0 in
  io.(0) <- Int64.to_int (Int64.shift_right_logical block 32);
  io.(1) <- Int64.to_int (Int64.logand block 0xffffffffL);
  crypt key io;
  Int64.logor (Int64.shift_left (Int64.of_int io.(0)) 32) (Int64.of_int io.(1))

let encrypt_block key b = crypt_block_i64 encrypt_io key b
let decrypt_block key b = crypt_block_i64 decrypt_io key b

(* Byte [j] (0..7, MSB first) of a block held as two 32-bit halves. *)
let[@inline] blk_byte h l j =
  if j < 4 then (h lsr (24 - (8 * j))) land 0xff else (l lsr (56 - (8 * j))) land 0xff

let check_iv iv = if String.length iv <> 8 then invalid_arg "Des3: IV must be 8 bytes"

(* CBC inner loop over whole blocks, chaining through [io]. *)
let cbc_blocks key (io : int array) src src_pos n dst dst_pos =
  for i = 0 to n - 1 do
    let sp = src_pos + (i * 8) and dp = dst_pos + (i * 8) in
    io.(0) <- io.(0) lxor Des_kernel.read32 src sp;
    io.(1) <- io.(1) lxor Des_kernel.read32 src (sp + 4);
    encrypt_io key io;
    Des_kernel.write32 dst dp io.(0);
    Des_kernel.write32 dst (dp + 4) io.(1)
  done

let cbc_final_block key (io : int array) src src_pos r dst dst_pos =
  let padding = 8 - r in
  let byte j = if j < r then Char.code (String.unsafe_get src (src_pos + j)) else padding in
  let bh = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  let bl = (byte 4 lsl 24) lor (byte 5 lsl 16) lor (byte 6 lsl 8) lor byte 7 in
  io.(0) <- io.(0) lxor bh;
  io.(1) <- io.(1) lxor bl;
  encrypt_io key io;
  Des_kernel.write32 dst dst_pos io.(0);
  Des_kernel.write32 dst (dst_pos + 4) io.(1)

let encrypt_cbc ~iv key pt =
  check_iv iv;
  let data = Des.pad pt in
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  let io = Array.make 2 0 in
  io.(0) <- Des_kernel.read32 iv 0;
  io.(1) <- Des_kernel.read32 iv 4;
  cbc_blocks key io data 0 n out 0;
  Bytes.unsafe_to_string out

let decrypt_cbc ~iv key ct =
  check_iv iv;
  let n = String.length ct in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des3.decrypt_cbc: bad length";
  let out = Bytes.create n in
  let io = Array.make 2 0 in
  let ph = ref (Des_kernel.read32 iv 0) and pl = ref (Des_kernel.read32 iv 4) in
  for i = 0 to (n / 8) - 1 do
    let pos = i * 8 in
    let ch = Des_kernel.read32 ct pos and cl = Des_kernel.read32 ct (pos + 4) in
    io.(0) <- ch;
    io.(1) <- cl;
    decrypt_io key io;
    Des_kernel.write32 out pos (io.(0) lxor !ph);
    Des_kernel.write32 out (pos + 4) (io.(1) lxor !pl);
    ph := ch;
    pl := cl
  done;
  Des.unpad (Bytes.unsafe_to_string out)

(* Direct-into-buffer / sub-range CBC, mirroring [Des.encrypt_cbc_into]
   and [Des.decrypt_cbc_sub] for the one-allocation datapath. *)

let encrypt_cbc_into ~iv key ~src ~src_pos ~src_len ~dst ~dst_pos =
  check_iv iv;
  if src_pos < 0 || src_len < 0 || src_pos > String.length src - src_len then
    invalid_arg "Des3.encrypt_cbc_into: bad source range";
  let out_len = Des.padded_length src_len in
  if dst_pos < 0 || dst_pos > Bytes.length dst - out_len then
    invalid_arg "Des3.encrypt_cbc_into: destination too short";
  let io = Array.make 2 0 in
  io.(0) <- Des_kernel.read32 iv 0;
  io.(1) <- Des_kernel.read32 iv 4;
  let whole = src_len land lnot 7 in
  cbc_blocks key io src src_pos (whole / 8) dst dst_pos;
  cbc_final_block key io src (src_pos + whole) (src_len - whole) dst (dst_pos + whole);
  out_len

let decrypt_cbc_sub ~iv key ~src ~pos ~len =
  check_iv iv;
  if pos < 0 || len < 0 || pos > String.length src - len then
    invalid_arg "Des3.decrypt_cbc_sub: bad source range";
  if len = 0 || len mod 8 <> 0 then invalid_arg "Des3.decrypt_cbc_sub: bad length";
  let ivh = Des_kernel.read32 iv 0 and ivl = Des_kernel.read32 iv 4 in
  let n = len / 8 in
  let io = Array.make 2 0 in
  let lp_pos = pos + ((n - 2) * 8) in
  let lph = if n = 1 then ivh else Des_kernel.read32 src lp_pos in
  let lpl = if n = 1 then ivl else Des_kernel.read32 src (lp_pos + 4) in
  io.(0) <- Des_kernel.read32 src (pos + ((n - 1) * 8));
  io.(1) <- Des_kernel.read32 src (pos + ((n - 1) * 8) + 4);
  decrypt_io key io;
  let lh = io.(0) lxor lph and ll = io.(1) lxor lpl in
  let padding = ll land 0xff in
  if padding < 1 || padding > 8 then invalid_arg "Des3.decrypt_cbc_sub: corrupt padding";
  for j = 8 - padding to 7 do
    if blk_byte lh ll j <> padding then invalid_arg "Des3.decrypt_cbc_sub: corrupt padding"
  done;
  let out = Bytes.create (len - padding) in
  let ph = ref ivh and pl = ref ivl in
  for i = 0 to n - 2 do
    let sp = pos + (i * 8) in
    let ch = Des_kernel.read32 src sp and cl = Des_kernel.read32 src (sp + 4) in
    io.(0) <- ch;
    io.(1) <- cl;
    decrypt_io key io;
    Des_kernel.write32 out (i * 8) (io.(0) lxor !ph);
    Des_kernel.write32 out ((i * 8) + 4) (io.(1) lxor !pl);
    ph := ch;
    pl := cl
  done;
  for j = 0 to 7 - padding do
    Bytes.set out (((n - 1) * 8) + j) (Char.chr (blk_byte lh ll j))
  done;
  Bytes.unsafe_to_string out

(* EDE with k1=k2=k3 degenerates to single DES — the standard backwards
   compatibility property, and a strong implementation check. *)
let degenerate_of_des_key key8 = of_string (key8 ^ key8 ^ key8)
