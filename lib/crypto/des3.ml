(* Triple DES (EDE3) — an extension beyond the paper for the key "wear
   out" concern of Section 5.2: a deployment worried about single-DES key
   lifetime can select a 3DES suite through the algorithm-identification
   field without any protocol change.

   Encryption: E(k3, D(k2, E(k1, block))); 24-byte keys.  Modes reuse the
   same structure as single DES. *)

let key_size = 24
let block_size = 8

type key = { k1 : Des.key; k2 : Des.key; k3 : Des.key }

let of_string key =
  if String.length key <> key_size then invalid_arg "Des3: key must be 24 bytes";
  {
    k1 = Des.of_string (String.sub key 0 8);
    k2 = Des.of_string (String.sub key 8 8);
    k3 = Des.of_string (String.sub key 16 8);
  }

let encrypt_block key b =
  Des.encrypt_block key.k3 (Des.decrypt_block key.k2 (Des.encrypt_block key.k1 b))

let decrypt_block key b =
  Des.decrypt_block key.k1 (Des.encrypt_block key.k2 (Des.decrypt_block key.k3 b))

let block_of_string s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let block_to_bytes b off (v : int64) =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xff))
  done

let encrypt_cbc ~iv key pt =
  if String.length iv <> 8 then invalid_arg "Des3: IV must be 8 bytes";
  let data = Des.pad pt in
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  let prev = ref (block_of_string iv 0) in
  for i = 0 to n - 1 do
    let b = Int64.logxor (block_of_string data (i * 8)) !prev in
    let c = encrypt_block key b in
    block_to_bytes out (i * 8) c;
    prev := c
  done;
  Bytes.unsafe_to_string out

let decrypt_cbc ~iv key ct =
  if String.length iv <> 8 then invalid_arg "Des3: IV must be 8 bytes";
  let n = String.length ct in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des3.decrypt_cbc: bad length";
  let out = Bytes.create n in
  let prev = ref (block_of_string iv 0) in
  for i = 0 to (n / 8) - 1 do
    let c = block_of_string ct (i * 8) in
    let p = Int64.logxor (decrypt_block key c) !prev in
    block_to_bytes out (i * 8) p;
    prev := c
  done;
  Des.unpad (Bytes.unsafe_to_string out)

(* Direct-into-buffer / sub-range CBC, mirroring [Des.encrypt_cbc_into]
   and [Des.decrypt_cbc_sub] for the one-allocation datapath. *)

let encrypt_cbc_into ~iv key ~src ~src_pos ~src_len ~dst ~dst_pos =
  if String.length iv <> 8 then invalid_arg "Des3: IV must be 8 bytes";
  if src_pos < 0 || src_len < 0 || src_pos > String.length src - src_len then
    invalid_arg "Des3.encrypt_cbc_into: bad source range";
  let out_len = Des.padded_length src_len in
  if dst_pos < 0 || dst_pos > Bytes.length dst - out_len then
    invalid_arg "Des3.encrypt_cbc_into: destination too short";
  let prev = ref (block_of_string iv 0) in
  let whole = src_len land lnot 7 in
  for i = 0 to (whole / 8) - 1 do
    let b = Int64.logxor (block_of_string src (src_pos + (i * 8))) !prev in
    let c = encrypt_block key b in
    block_to_bytes dst (dst_pos + (i * 8)) c;
    prev := c
  done;
  let r = src_len - whole in
  let padding = 8 - r in
  let b = ref 0L in
  for j = 0 to 7 do
    let byte = if j < r then Char.code src.[src_pos + whole + j] else padding in
    b := Int64.logor (Int64.shift_left !b 8) (Int64.of_int byte)
  done;
  block_to_bytes dst (dst_pos + whole) (encrypt_block key (Int64.logxor !b !prev));
  out_len

let decrypt_cbc_sub ~iv key ~src ~pos ~len =
  if String.length iv <> 8 then invalid_arg "Des3: IV must be 8 bytes";
  if pos < 0 || len < 0 || pos > String.length src - len then
    invalid_arg "Des3.decrypt_cbc_sub: bad source range";
  if len = 0 || len mod 8 <> 0 then invalid_arg "Des3.decrypt_cbc_sub: bad length";
  let iv = block_of_string iv 0 in
  let n = len / 8 in
  let last_prev = if n = 1 then iv else block_of_string src (pos + ((n - 2) * 8)) in
  let last =
    Int64.logxor (decrypt_block key (block_of_string src (pos + ((n - 1) * 8)))) last_prev
  in
  let padding = Int64.to_int (Int64.logand last 0xffL) in
  if padding < 1 || padding > 8 then invalid_arg "Des3.decrypt_cbc_sub: corrupt padding";
  for j = 8 - padding to 7 do
    if Int64.to_int (Int64.shift_right_logical last (56 - (8 * j))) land 0xff <> padding
    then invalid_arg "Des3.decrypt_cbc_sub: corrupt padding"
  done;
  let out = Bytes.create (len - padding) in
  let prev = ref iv in
  for i = 0 to n - 2 do
    let c = block_of_string src (pos + (i * 8)) in
    block_to_bytes out (i * 8) (Int64.logxor (decrypt_block key c) !prev);
    prev := c
  done;
  for j = 0 to 7 - padding do
    Bytes.set out (((n - 1) * 8) + j)
      (Char.chr (Int64.to_int (Int64.shift_right_logical last (56 - (8 * j))) land 0xff))
  done;
  Bytes.unsafe_to_string out

(* EDE with k1=k2=k3 degenerates to single DES — the standard backwards
   compatibility property, and a strong implementation check. *)
let degenerate_of_des_key key8 = of_string (key8 ^ key8 ^ key8)
