(** Triple DES (EDE3) with CBC mode — extension suite for the paper's key
    "wear out" concern. *)

val key_size : int
val block_size : int

type key

val of_string : string -> key
(** 24 bytes. *)

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64
val encrypt_cbc : iv:string -> key -> string -> string
val decrypt_cbc : iv:string -> key -> string -> string

val encrypt_cbc_into :
  iv:string ->
  key ->
  src:string ->
  src_pos:int ->
  src_len:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  int
(** CBC-encrypt a sub-range directly into [dst]; see
    {!Des.encrypt_cbc_into}.  Returns the bytes written. *)

val decrypt_cbc_sub : iv:string -> key -> src:string -> pos:int -> len:int -> string
(** CBC-decrypt a sub-range allocating only the exact plaintext; see
    {!Des.decrypt_cbc_sub}. *)

val degenerate_of_des_key : string -> key
(** k1=k2=k3: equals single DES (compatibility property used in tests). *)
