(* Message authentication codes.

   The paper defines the FBS MAC as a keyed hash with the key prepended:

       MAC = HMAC(K_f | confounder | timestamp | payload)

   where "HMAC" in the paper's notation is simply "some one-way
   cryptographic hash function" applied to the key-prefixed message — i.e.
   the 1996-era prefix MAC (keyed MD5), not RFC 2104 HMAC.  We implement
   both: [prefix] reproduces the paper exactly, and [hmac] is the modern
   construction (RFC 2104), selectable through the FBS algorithm-suite field
   and compared in an ablation bench.

   Each construction comes in two input flavours: string parts (the
   original, retained as the reference implementation for the
   differential suite in test/test_slice.ml) and [Slice.t] parts (the
   hot-path flavour, which folds over borrowed views of the wire buffer
   with zero concatenation or copying). *)

open Fbsr_util

let prefix (hash : Hash.t) ~key parts = Hash.digest_list hash (key :: parts)

let prefix_slices ((module H : Hash.S) : Hash.t) ~key parts =
  let ctx = H.init () in
  H.update ctx key;
  List.iter (H.feed_slice ctx) parts;
  H.final ctx

let hmac_key_pads (module H : Hash.S) ~key =
  let block = H.block_size in
  let key = if String.length key > block then H.digest key else key in
  let key = key ^ String.make (block - String.length key) '\000' in
  let xor_pad byte =
    String.init block (fun i -> Char.chr (Char.code key.[i] lxor byte))
  in
  (xor_pad 0x36, xor_pad 0x5c)

let hmac ((module H : Hash.S) as hash : Hash.t) ~key parts =
  let ipad, opad = hmac_key_pads hash ~key in
  let inner = H.digest_list (ipad :: parts) in
  H.digest_list [ opad; inner ]

let hmac_slices ((module H : Hash.S) as hash : Hash.t) ~key parts =
  let ipad, opad = hmac_key_pads hash ~key in
  let ctx = H.init () in
  H.update ctx ipad;
  List.iter (H.feed_slice ctx) parts;
  let inner = H.final ctx in
  H.digest_list [ opad; inner ]

(* DES-CBC-MAC (FIPS 113 style): the paper's footnote 12 — "for
   efficiency, DES could have been used for both encryption and MAC
   computation".  The MAC is the last cipher block of a zero-IV CBC pass
   over the padded message; the 8-byte DES key is derived from the first
   key bytes with adjusted parity. *)
(* The schedule expansion is the expensive part now that the block kernel
   is table-driven; [des_cbc_prepare] exposes it so the engine can cache
   the expanded MAC key per flow next to the cipher schedules. *)
let des_cbc_prepare ~key =
  if String.length key < 8 then invalid_arg "Mac.des_cbc: key too short";
  Des.of_string (Des.adjust_parity (String.sub key 0 8))

let des_cbc ~key parts =
  let des_key = des_cbc_prepare ~key in
  let message = String.concat "" parts in
  let ct = Des.encrypt_cbc ~iv:(String.make 8 '\000') des_key message in
  String.sub ct (String.length ct - 8) 8

(* Streaming CBC fold over slice parts: the CBC state is one cipher block
   (two native-int halves in a scratch array, fed straight to the
   {!Des_kernel} rounds) plus a <8-byte carry, so the MAC needs no
   concatenation and no ciphertext buffer at all — only the final block
   survives.  Byte-identical to [des_cbc] over the same byte stream. *)
let des_cbc_slices_keyed des_key parts =
  let ks = Des.sched_e des_key in
  let io = Array.make 2 0 in
  (* io holds the running ciphertext block; starts at the zero IV. *)
  let carry = Bytes.create 8 in
  let carry_view = Bytes.unsafe_to_string carry in
  let carry_len = ref 0 in
  let total = ref 0 in
  let eat_block hi lo =
    io.(0) <- io.(0) lxor hi;
    io.(1) <- io.(1) lxor lo;
    Des_kernel.ip io;
    Des_kernel.rounds ks io;
    Des_kernel.fp io
  in
  let eat_carry () =
    eat_block (Des_kernel.read32 carry_view 0) (Des_kernel.read32 carry_view 4);
    carry_len := 0
  in
  let feed base pos len =
    total := !total + len;
    let pos = ref pos and len = ref len in
    if !carry_len > 0 then begin
      let take = min !len (8 - !carry_len) in
      Bytes.blit_string base !pos carry !carry_len take;
      carry_len := !carry_len + take;
      pos := !pos + take;
      len := !len - take;
      if !carry_len = 8 then eat_carry ()
    end;
    while !len >= 8 do
      eat_block (Des_kernel.read32 base !pos) (Des_kernel.read32 base (!pos + 4));
      pos := !pos + 8;
      len := !len - 8
    done;
    if !len > 0 then begin
      Bytes.blit_string base !pos carry 0 !len;
      carry_len := !len
    end
  in
  List.iter (fun (s : Slice.t) -> feed s.Slice.base s.Slice.off s.Slice.len) parts;
  (* PKCS#7 tail, as [Des.pad] appends it: 8 - (total mod 8) bytes, each
     equal to that count (a full padding block when already aligned). *)
  let padding = 8 - (!total mod 8) in
  for _ = 1 to padding do
    Bytes.set carry !carry_len (Char.chr padding);
    incr carry_len;
    if !carry_len = 8 then eat_carry ()
  done;
  let out = Bytes.create 8 in
  Des_kernel.write32 out 0 io.(0);
  Des_kernel.write32 out 4 io.(1);
  Bytes.unsafe_to_string out

let des_cbc_slices ~key parts = des_cbc_slices_keyed (des_cbc_prepare ~key) parts

type algorithm = Prefix | Hmac | Des_cbc_mac

(* Per-flow MAC midstates: everything about the key that can be absorbed
   ahead of time, so the per-datagram MAC starts from a frozen state
   instead of re-absorbing K_f (or re-expanding the DES-CBC-MAC key).

   - [Prefix_mid]: the hash state after absorbing the key prefix — for
     the paper's keyed-MD5 MAC this folds the whole key absorption into
     flow setup.
   - [Hmac_mid]: the inner hash state after absorbing ipad, plus opad
     for the outer pass (the outer state cannot be frozen: it absorbs
     the inner digest, which depends on the message).
   - [Des_cbc_seed]: the pre-expanded CBC-MAC key schedule; the chain
     itself starts from the zero IV, so the schedule is the entire
     key-dependent precomputation. *)
type midstate =
  | Prefix_mid of Hash.midstate
  | Hmac_mid of { inner : Hash.midstate; opad : string; hash : Hash.t }
  | Des_cbc_seed of Des.key

let prepare ?(algorithm = Prefix) hash ~key =
  match algorithm with
  | Prefix -> Prefix_mid (Hash.midstate hash ~prefix:key)
  | Hmac ->
      let ipad, opad = hmac_key_pads hash ~key in
      Hmac_mid { inner = Hash.midstate hash ~prefix:ipad; opad; hash }
  | Des_cbc_mac -> Des_cbc_seed (des_cbc_prepare ~key)

let compute_midstate mid parts =
  match mid with
  | Prefix_mid m -> Hash.resume_slices m parts
  | Hmac_mid { inner; opad; hash } ->
      Hash.digest_list hash [ opad; Hash.resume_slices inner parts ]
  | Des_cbc_seed k -> des_cbc_slices_keyed k parts

let compute ?(algorithm = Prefix) hash ~key parts =
  match algorithm with
  | Prefix -> prefix hash ~key parts
  | Hmac -> hmac hash ~key parts
  | Des_cbc_mac -> des_cbc ~key parts

let compute_slices ?(algorithm = Prefix) hash ~key parts =
  match algorithm with
  | Prefix -> prefix_slices hash ~key parts
  | Hmac -> hmac_slices hash ~key parts
  | Des_cbc_mac -> des_cbc_slices ~key parts

let verify ?(algorithm = Prefix) hash ~key parts ~expected =
  Ct.equal (compute ~algorithm hash ~key parts) expected

(* Slice verification: [expected] is typically the MAC field sliced out
   of the wire buffer and may be a truncated MAC (Section 5.3's
   header-overhead trade-off) — the computed MAC is compared through a
   prefix view of the same (public) length, so nothing is copied. *)
let verify_slice ?(algorithm = Prefix) hash ~key parts ~(expected : Slice.t) =
  let mac = compute_slices ~algorithm hash ~key parts in
  let n = Slice.length expected in
  n <= String.length mac && Ct.equal_slice (Slice.v ~len:n mac) expected

(* Midstate flavour of [verify_slice]: same truncated-prefix,
   constant-time comparison discipline. *)
let verify_midstate mid parts ~(expected : Slice.t) =
  let mac = compute_midstate mid parts in
  let n = Slice.length expected in
  n <= String.length mac && Ct.equal_slice (Slice.v ~len:n mac) expected

let truncate mac n =
  if n > String.length mac then invalid_arg "Mac.truncate: too long";
  String.sub mac 0 n
