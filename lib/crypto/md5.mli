(** MD5 message digest (RFC 1321), streaming implementation. *)

val digest_size : int
(** 16 bytes. *)

val block_size : int
(** 64 bytes. *)

val name : string

type ctx

val init : unit -> ctx

val copy : ctx -> ctx
(** Independent snapshot: feeding or finalizing the copy leaves the
    original untouched (and vice versa). *)

val update : ctx -> string -> unit
val feed : ctx -> string -> int -> int -> unit
(** [feed ctx s pos len] hashes a slice without copying the whole string. *)

val feed_slice : ctx -> Fbsr_util.Slice.t -> unit
(** [feed] over a {!Fbsr_util.Slice.t} view — streaming input with zero
    copies. *)

val final : ctx -> string
(** Finish and return the 16-byte digest.  The context must not be reused. *)

val digest : string -> string
val digest_list : string list -> string
(** Digest of the concatenation of the parts, without concatenating. *)

val hexdigest : string -> string
