(* Hash-counter keystream: block i = H(key | iv | be32 i), XOR.  The key
   prefix is absorbed once into a midstate; each block resumes it over
   iv | counter.  See keystream.mli. *)

type t = {
  mid : Hash.midstate;
  block : int;
  ctr : Bytes.t; (* 4-byte big-endian counter scratch, refilled per block *)
}

let create hash ~key =
  { mid = Hash.midstate hash ~prefix:key; block = Hash.digest_size hash; ctr = Bytes.create 4 }

let block_size t = t.block

let transform_into t ~iv ~src ~src_pos ~src_len ~dst ~dst_pos =
  if String.length iv <> 8 then
    invalid_arg "Keystream.transform_into: IV must be 8 bytes";
  if
    src_len < 0
    || src_pos < 0
    || src_pos + src_len > String.length src
    || dst_pos < 0
    || dst_pos + src_len > Bytes.length dst
  then invalid_arg "Keystream.transform_into: bad range";
  let nblocks = (src_len + t.block - 1) / t.block in
  let off = ref 0 in
  for i = 0 to nblocks - 1 do
    Bytes.set t.ctr 0 (Char.chr ((i lsr 24) land 0xff));
    Bytes.set t.ctr 1 (Char.chr ((i lsr 16) land 0xff));
    Bytes.set t.ctr 2 (Char.chr ((i lsr 8) land 0xff));
    Bytes.set t.ctr 3 (Char.chr (i land 0xff));
    (* The counter scratch is consumed by the resume before the next
       refill; the midstate itself is reusable. *)
    let ks = Hash.resume_list t.mid [ iv; Bytes.unsafe_to_string t.ctr ] in
    let n = min t.block (src_len - !off) in
    for j = 0 to n - 1 do
      Bytes.unsafe_set dst
        (dst_pos + !off + j)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get src (src_pos + !off + j))
           lxor Char.code (String.unsafe_get ks j)))
    done;
    off := !off + n
  done

let transform t ~iv src =
  let len = String.length src in
  let dst = Bytes.create len in
  transform_into t ~iv ~src ~src_pos:0 ~src_len:len ~dst ~dst_pos:0;
  Bytes.unsafe_to_string dst
