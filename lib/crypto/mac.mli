(** Message authentication codes.

    [Prefix] is the paper's construction (hash over the key-prefixed
    message, i.e. keyed MD5 as used by the 4.4BSD implementation); [Hmac]
    is RFC 2104.

    Each construction takes either string parts (reference
    implementation, retained for the differential suite) or
    {!Fbsr_util.Slice.t} parts (zero-copy hot path: the parts are folded
    into the underlying primitive with no concatenation). *)

type algorithm = Prefix | Hmac | Des_cbc_mac

val prefix : Hash.t -> key:string -> string list -> string
val prefix_slices : Hash.t -> key:string -> Fbsr_util.Slice.t list -> string
val hmac : Hash.t -> key:string -> string list -> string
val hmac_slices : Hash.t -> key:string -> Fbsr_util.Slice.t list -> string

val des_cbc : key:string -> string list -> string
(** DES-CBC-MAC over the concatenated parts (footnote 12 of the paper):
    8-byte tag, key taken from the first 8 key bytes. *)

val des_cbc_slices : key:string -> Fbsr_util.Slice.t list -> string
(** Streaming CBC-MAC fold over slice parts — no concatenation and no
    ciphertext buffer; byte-identical to [des_cbc] over the same byte
    stream. *)

val des_cbc_prepare : key:string -> Des.key
(** Expand the DES-CBC-MAC key (parity-adjusted first 8 key bytes) into
    its schedule.  Expansion dominates short-message MAC cost with the
    table-driven kernel, so the engine caches this per flow. *)

val des_cbc_slices_keyed : Des.key -> Fbsr_util.Slice.t list -> string
(** [des_cbc_slices] with a pre-expanded key from {!des_cbc_prepare}. *)

val compute : ?algorithm:algorithm -> Hash.t -> key:string -> string list -> string
(** Default algorithm is [Prefix], matching the paper. *)

val compute_slices :
  ?algorithm:algorithm -> Hash.t -> key:string -> Fbsr_util.Slice.t list -> string
(** Slice-parts flavour of {!compute}; byte-identical results. *)

val verify :
  ?algorithm:algorithm -> Hash.t -> key:string -> string list -> expected:string -> bool
(** Constant-time comparison against [expected]. *)

val verify_slice :
  ?algorithm:algorithm ->
  Hash.t ->
  key:string ->
  Fbsr_util.Slice.t list ->
  expected:Fbsr_util.Slice.t ->
  bool
(** Constant-time comparison of a (possibly truncated) wire MAC slice
    against the matching prefix of the computed MAC.  The expected
    length is public information (it comes from the suite descriptor),
    so using it to select the prefix leaks nothing. *)

val truncate : string -> int -> string
(** Keep the first [n] bytes of a MAC (header-overhead/security trade-off
    the paper mentions in Section 5.3). *)

(** {1 Per-flow MAC midstates}

    Everything about the key that can be absorbed ahead of time: the
    hash state after the keyed prefix ([Prefix]), the inner-hash state
    after ipad plus the retained opad ([Hmac]), or the pre-expanded
    key schedule ([Des_cbc_mac]).  The engine caches one per flow
    entry, so per-datagram MACs skip the key absorption/expansion
    entirely. *)

type midstate

val prepare : ?algorithm:algorithm -> Hash.t -> key:string -> midstate
(** Freeze the key-dependent precomputation of [algorithm] (default
    [Prefix], matching {!compute}). *)

val compute_midstate : midstate -> Fbsr_util.Slice.t list -> string
(** Byte-identical to {!compute_slices} with the algorithm, hash and key
    given to {!prepare}.  The midstate is reusable: any number of
    computations, in any order. *)

val verify_midstate :
  midstate -> Fbsr_util.Slice.t list -> expected:Fbsr_util.Slice.t -> bool
(** Midstate flavour of {!verify_slice}: constant-time comparison of a
    (possibly truncated) wire MAC against the computed MAC's prefix. *)
