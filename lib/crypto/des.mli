(** DES (FIPS 46) with ECB/CBC/CFB/OFB modes of operation (FIPS 81).

    The FBS protocol uses the per-datagram confounder as the IV for the
    feedback modes; in ECB mode the confounder is XORed with every plaintext
    block before encryption (paper, Section 5.2). *)

exception Weak_key

val block_size : int
(** 8 bytes. *)

val key_size : int
(** 8 bytes (56 effective bits + parity). *)

type key

val of_string : ?check_weak:bool -> string -> key
(** Expand an 8-byte key into the sixteen round subkeys.
    @raise Weak_key when [check_weak] and the key is one of the four weak
    keys.
    @raise Invalid_argument on wrong length. *)

val is_weak_key : string -> bool
val adjust_parity : string -> string
(** Force odd parity on every key byte, as FIPS 46 specifies. *)

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64
val encrypt_block_bytes : key -> string -> string
val decrypt_block_bytes : key -> string -> string

type mode = Ecb | Cbc | Cfb | Ofb

val pad : string -> string
(** PKCS#7-style padding to a multiple of 8 bytes (always adds >= 1 byte). *)

val unpad : string -> string
(** @raise Invalid_argument on corrupt padding. *)

val encrypt_ecb : ?confounder:string -> key -> string -> string
(** ECB with the paper's confounder whitening (confounder XORed into every
    block).  Pads the input. *)

val decrypt_ecb : ?confounder:string -> key -> string -> string
val encrypt_cbc : iv:string -> key -> string -> string
val decrypt_cbc : iv:string -> key -> string -> string

val padded_length : int -> int
(** CBC/ECB ciphertext length for an [n]-byte plaintext (next multiple
    of 8; padding always adds 1-8 bytes). *)

val encrypt_cbc_into :
  iv:string ->
  key ->
  src:string ->
  src_pos:int ->
  src_len:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  int
(** CBC-encrypt [src[src_pos, src_pos+src_len)] directly into [dst] at
    [dst_pos], padding on the fly — no intermediate padded copy, no
    output allocation.  Returns the bytes written
    ([padded_length src_len]).  Byte-identical to [encrypt_cbc] of the
    equivalent [String.sub].  @raise Invalid_argument on bad ranges. *)

val decrypt_cbc_sub : iv:string -> key -> src:string -> pos:int -> len:int -> string
(** CBC-decrypt the sub-range [src[pos, pos+len)] allocating only the
    exact unpadded plaintext (the padding length is learned by
    decrypting the final block first).
    @raise Invalid_argument on bad length or corrupt padding. *)

(** Incremental CBC encryption (for the single-pass MAC+encrypt
    optimization of the paper's Section 5.3). *)

type cbc_ctx

val cbc_init : iv:string -> key -> cbc_ctx

val cbc_update : cbc_ctx -> string -> string
(** Feed data; returns the ciphertext produced so far (whole blocks). *)

val cbc_finish : cbc_ctx -> string
(** Pad and flush; returns the final ciphertext block(s). *)

(** Zero-allocation incremental CBC into a caller buffer, used by
    {!Fused} to interleave MAC and encryption in one pass over the
    payload.  The chaining block lives in a caller-owned 2-element
    scratch array seeded with [cbc_seed_chain]. *)

val cbc_seed_chain : iv:string -> int array -> unit

val cbc_blocks_into :
  key ->
  int array ->
  src:string ->
  src_pos:int ->
  nblocks:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  unit
(** Encrypt [nblocks] whole blocks of [src] into [dst], advancing the
    chain.  @raise Invalid_argument on bad ranges. *)

val cbc_tail_into :
  key ->
  int array ->
  src:string ->
  src_pos:int ->
  src_len:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  unit
(** Encrypt the final [src_len] (0-7) leftover bytes plus PKCS#7 padding;
    writes exactly one block.  @raise Invalid_argument on bad ranges. *)

val encrypt_cfb : iv:string -> key -> string -> string
(** 64-bit CFB; stream mode, output length = input length. *)

val decrypt_cfb : iv:string -> key -> string -> string
val encrypt_ofb : iv:string -> key -> string -> string
val decrypt_ofb : iv:string -> key -> string -> string

val encrypt : mode:mode -> iv:string -> key -> string -> string
val decrypt : mode:mode -> iv:string -> key -> string -> string

(**/**)

(* Internal: the packed {!Des_kernel} schedules, for sibling modules
   ([Des3], [Mac], [Fused]) that drive the kernel directly. *)
val sched_e : key -> int array
val sched_d : key -> int array
