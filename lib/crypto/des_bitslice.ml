(* Bitsliced DES: up to 63 independent blocks per pass on untagged native
   ints (Biham's "fast new DES implementation" layout, adapted to
   OCaml's 63-bit int).  See DESIGN.md §6c "Bitsliced cross-flow kernel".

   Data layout.  Lane [l] (0..62) owns one fixed bit of every word
   (bit 31-l for lanes 0..31, bit 94-l for lanes 32..62 — all 63
   logical bits of a native int).  A block's 64 bits become 64 words:
   word [i] holds FIPS input bit [i+1] of all lanes.  Lanes 0..31 live
   in 32×32 bit-matrices (one for the big-endian high word, one for
   the low word) transposed in place with the Hacker's Delight
   masked-swap transpose; lanes 32..62 use a second matrix pair whose
   words are OR-ed in at bit offset 31 (their bit 0 is the 64th lane a
   63-bit int cannot hold).  In this domain every FIPS permutation
   (IP, FP, E, P, PC-2) is
   a renaming of word indices, so the only per-pass bit shuffling is
   the four transposes in and four out; the round function is the
   generated {!Des_sbox_circuits} evaluated once per S-box on whole
   words, giving all live lanes one DES round per ~1.7k ALU ops.

   Key schedules are not recomputed here: lanes feed the packed
   [Des.sched_e]/[sched_d] words from PR 5's per-flow caches, and
   [load_keys] transposes them into 16×48 lane-mask words once per group
   composition.  A group's key words are never rebuilt: a lane that
   finishes its CBC chain early keeps encrypting all-zero inputs as junk
   that the gather simply skips.

   All scratch lives in a per-domain record behind
   [Fbsr_util.Domain_shim.local_make]: the sharded engine runs one
   receive pipeline per domain and each calls [decrypt_cbc_sub]
   concurrently, so the lane matrices cannot be module-global.  Each
   public entry point fetches its domain's scratch once and threads it
   through the helpers. *)

let lanes = 63

(* --- 32×32 bit-matrix transpose (Hacker's Delight 7-3), in place.
   Convention: rows are array indices top-down, columns are bit
   positions MSB-left, so afterwards bit b of word i = former bit
   (31-i) of word (31-b).  The masked-swap network is its own
   inverse.  Feeding per-lane rows in therefore leaves lane [l]'s data
   at bit (31-l) of the per-bit words — and makes the word-index side
   an identity: the word for big-endian-high-word bit j (i.e. FIPS
   input bit 32-j) lands at array index 31-j, so index i = FIPS input
   bit i+1 with no renaming at all. --- *)

let transpose32 (a : int array) =
  (* stages unrolled with literal shift/mask constants so each 16-swap
     stage is an independent-iteration for-loop the compiler schedules
     well; k enumerates the indices with the stage bit clear *)
  for k = 0 to 15 do
    let x = Array.unsafe_get a k and y = Array.unsafe_get a (k + 16) in
    let t = (x lxor (y lsr 16)) land 0xFFFF in
    Array.unsafe_set a k (x lxor t);
    Array.unsafe_set a (k + 16) (y lxor (t lsl 16))
  done;
  for i = 0 to 15 do
    let k = ((i lsr 3) lsl 4) lor (i land 7) in
    let x = Array.unsafe_get a k and y = Array.unsafe_get a (k + 8) in
    let t = (x lxor (y lsr 8)) land 0x00FF00FF in
    Array.unsafe_set a k (x lxor t);
    Array.unsafe_set a (k + 8) (y lxor (t lsl 8))
  done;
  for i = 0 to 15 do
    let k = ((i lsr 2) lsl 3) lor (i land 3) in
    let x = Array.unsafe_get a k and y = Array.unsafe_get a (k + 4) in
    let t = (x lxor (y lsr 4)) land 0x0F0F0F0F in
    Array.unsafe_set a k (x lxor t);
    Array.unsafe_set a (k + 4) (y lxor (t lsl 4))
  done;
  for i = 0 to 15 do
    let k = ((i lsr 1) lsl 2) lor (i land 1) in
    let x = Array.unsafe_get a k and y = Array.unsafe_get a (k + 2) in
    let t = (x lxor (y lsr 2)) land 0x33333333 in
    Array.unsafe_set a k (x lxor t);
    Array.unsafe_set a (k + 2) (y lxor (t lsl 2))
  done;
  for i = 0 to 15 do
    let k = i lsl 1 in
    let x = Array.unsafe_get a k and y = Array.unsafe_get a (k + 1) in
    let t = (x lxor (y lsr 1)) land 0x55555555 in
    Array.unsafe_set a k (x lxor t);
    Array.unsafe_set a (k + 1) (y lxor (t lsl 1))
  done

(* --- FIPS tables as 0-based word renamings --- *)

(* E expansion (the scalar kernel fuses it into its SP tables, so it is
   transcribed here; the differential battery pins it to Des_ref). *)
let e_table =
  [| 32;  1;  2;  3;  4;  5;  4;  5;  6;  7;  8;  9;
      8;  9; 10; 11; 12; 13; 12; 13; 14; 15; 16; 17;
     16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32;  1 |]

let ip_l = Array.init 32 (fun i -> Des_kernel.ip_table.(i) - 1)
let ip_r = Array.init 32 (fun i -> Des_kernel.ip_table.(i + 32) - 1)
let fp_src = Array.init 64 (fun i -> Des_kernel.fp_table.(i) - 1)
let e0 = Array.init 48 (fun i -> e_table.(i) - 1)

(* Packed-schedule bit positions: round subkey bit i (0..47) of a
   [Des.sched_e] schedule lives in word [2*round + kb_word.(i)] at bit
   [kb_shift.(i)] (the kernel packs 6-bit chunks 0,2,4,6 in the even
   word and 1,3,5,7 in the odd word, at shifts 26/18/10/2). *)
let kb_word = Array.init 48 (fun i -> (i / 6) land 1)

let kb_shift =
  Array.init 48 (fun i ->
      let j = i / 6 and m = i mod 6 in
      26 - (8 * (j lsr 1)) + 5 - m)

(* --- Per-domain scratch --- *)

(* Pure index halves of the fused IP/FP gathers: module-global is fine,
   they are written once at module init and only read after. *)
let ip_l_idx =
  Array.init 32 (fun i -> if ip_l.(i) < 32 then ip_l.(i) else ip_l.(i) - 32)

let ip_r_idx =
  Array.init 32 (fun i -> if ip_r.(i) < 32 then ip_r.(i) else ip_r.(i) - 32)

let fp_hi_idx =
  Array.init 32 (fun i ->
      if fp_src.(i) < 32 then fp_src.(i) else fp_src.(i) - 32)

let fp_lo_idx =
  Array.init 32 (fun i ->
      if fp_src.(32 + i) < 32 then fp_src.(32 + i) else fp_src.(32 + i) - 32)

type scratch = {
  hi_a : int array; (* lanes 0..31, big-endian high word *)
  hi_b : int array; (* lanes 32..62 (index 31 stays zero) *)
  lo_a : int array;
  lo_b : int array;
  l_arr : int array;
  r_arr : int array;
  kw : int array; (* lane-mask subkey words *)
  (* IP fused with the transposed-word assembly: post-transpose index i
     of the hi/lo matrices is FIPS input bit i+1 / i+33, so L0 bit i+1
     reads matrix pair [ip_?_a/_b] at index [ip_?_idx] — the array
     pointers are precomputed per position to keep the gather
     branchless; they alias this record's own matrices, so they are
     rebuilt per scratch. *)
  ip_l_a : int array array;
  ip_l_b : int array array;
  ip_r_a : int array array;
  ip_r_b : int array array;
  (* FP fused the same way: output bit i+1 = preoutput bit fp_src.(i),
     preoutput = R16 (bits 1..32) then L16; after the even number of
     round swaps R16/L16 sit in the physical [r_arr]/[l_arr]. *)
  fp_hi_arr : int array array;
  fp_lo_arr : int array array;
  (* key loading *)
  ka : int array;
  kb : int array;
  sched_scratch : int array array;
  (* CBC chaining state *)
  ch_hi : int array;
  ch_lo : int array;
  nb_scratch : int array;
  full_scratch : int array;
  fin_hi : int array;
  fin_lo : int array;
  io2 : int array; (* 2-word block for the scalar Des_kernel fallbacks *)
}

let make_scratch () =
  let hi_a = Array.make 32 0
  and hi_b = Array.make 32 0
  and lo_a = Array.make 32 0
  and lo_b = Array.make 32 0
  and l_arr = Array.make 32 0
  and r_arr = Array.make 32 0 in
  {
    hi_a;
    hi_b;
    lo_a;
    lo_b;
    l_arr;
    r_arr;
    kw = Array.make (16 * 48) 0;
    ip_l_a = Array.init 32 (fun i -> if ip_l.(i) < 32 then hi_a else lo_a);
    ip_l_b = Array.init 32 (fun i -> if ip_l.(i) < 32 then hi_b else lo_b);
    ip_r_a = Array.init 32 (fun i -> if ip_r.(i) < 32 then hi_a else lo_a);
    ip_r_b = Array.init 32 (fun i -> if ip_r.(i) < 32 then hi_b else lo_b);
    fp_hi_arr =
      Array.init 32 (fun i -> if fp_src.(i) < 32 then r_arr else l_arr);
    fp_lo_arr =
      Array.init 32 (fun i -> if fp_src.(32 + i) < 32 then r_arr else l_arr);
    ka = Array.make 32 0;
    kb = Array.make 32 0;
    sched_scratch = Array.make lanes [||];
    ch_hi = Array.make lanes 0;
    ch_lo = Array.make lanes 0;
    nb_scratch = Array.make lanes 0;
    full_scratch = Array.make lanes 0;
    fin_hi = Array.make lanes 0;
    fin_lo = Array.make lanes 0;
    io2 = Array.make 2 0;
  }

let scratch = Fbsr_util.Domain_shim.local_make make_scratch

let clear_lanes s =
  Array.fill s.hi_a 0 32 0;
  Array.fill s.hi_b 0 32 0;
  Array.fill s.lo_a 0 32 0;
  Array.fill s.lo_b 0 32 0

let set_lane s l hi lo =
  if l < 32 then begin
    Array.unsafe_set s.hi_a l hi;
    Array.unsafe_set s.lo_a l lo
  end
  else begin
    Array.unsafe_set s.hi_b (l - 32) hi;
    Array.unsafe_set s.lo_b (l - 32) lo
  end

let lane_hi s l =
  if l < 32 then Array.unsafe_get s.hi_a l
  else Array.unsafe_get s.hi_b (l - 32)

let lane_lo s l =
  if l < 32 then Array.unsafe_get s.lo_a l
  else Array.unsafe_get s.lo_b (l - 32)

(* Fill [kw] from per-lane packed schedules ([ke_of l] is lane [l]'s
   [Des.sched_e]/[sched_d] array).  ~768×n single-bit gathers, done once
   per group composition and amortised over every pass the group runs. *)
(* Subkey-bit positions split by packed word, as (subkey index, 31-shift)
   so the transposed-word lookup below is a straight table walk. *)
let kb_split wsel =
  let idx = ref [] and tr = ref [] in
  for i = 47 downto 0 do
    if kb_word.(i) = wsel then begin
      idx := i :: !idx;
      tr := (31 - kb_shift.(i)) :: !tr
    end
  done;
  (Array.of_list !idx, Array.of_list !tr)

let kb_i0, kb_t0 = kb_split 0
let kb_i1, kb_t1 = kb_split 1

(* Fill [kw] from per-lane packed schedules ([ke_of l] is lane [l]'s
   [Des.sched_e]/[sched_d] array).  Gathering 768 subkey bits per lane
   one at a time would cost more than the encryption itself, so the
   packed words are run through the same 32×32 transpose as the data:
   two transposes per (round, packed word) turn all lanes' schedule
   words bit-planar at once, and the 24 used bit positions are copied
   out by table. *)
let load_keys s ke_of n =
  let { ka; kb; kw; sched_scratch; _ } = s in
  for l = 0 to n - 1 do
    sched_scratch.(l) <- ke_of l
  done;
  let na = if n < 32 then n else 32 in
  for rnd = 0 to 15 do
    let ko = rnd * 48 in
    for wsel = 0 to 1 do
      let w = (2 * rnd) + wsel in
      Array.fill ka 0 32 0;
      Array.fill kb 0 32 0;
      for l = 0 to na - 1 do
        Array.unsafe_set ka l
          (Array.unsafe_get (Array.unsafe_get sched_scratch l) w)
      done;
      for l = 32 to n - 1 do
        Array.unsafe_set kb (l - 32)
          (Array.unsafe_get (Array.unsafe_get sched_scratch l) w)
      done;
      transpose32 ka;
      transpose32 kb;
      let ki = if wsel = 0 then kb_i0 else kb_i1
      and kt = if wsel = 0 then kb_t0 else kb_t1 in
      for t = 0 to 23 do
        let b = Array.unsafe_get kt t in
        Array.unsafe_set kw (ko + Array.unsafe_get ki t)
          (Array.unsafe_get ka b lor (Array.unsafe_get kb b lsl 31))
      done
    done
  done

(* Same-key broadcast (used by the single-datagram decrypt path): a set
   subkey bit becomes the all-lanes mask ([-1] = every logical bit). *)
let load_keys_broadcast s ke =
  let kw = s.kw in
  for rnd = 0 to 15 do
    let ko = rnd * 48 in
    let w0 = Array.unsafe_get ke (2 * rnd)
    and w1 = Array.unsafe_get ke ((2 * rnd) + 1) in
    for i = 0 to 47 do
      let w = if Array.unsafe_get kb_word i = 0 then w0 else w1 in
      Array.unsafe_set kw (ko + i)
        (-((w lsr Array.unsafe_get kb_shift i) land 1))
    done
  done

(* One full DES pass (IP, 16 rounds, FP) over the scattered lanes, in
   place, with the subkey words currently in [kw]. *)
let des_pass s =
  let {
    hi_a;
    hi_b;
    lo_a;
    lo_b;
    l_arr;
    r_arr;
    kw;
    ip_l_a;
    ip_l_b;
    ip_r_a;
    ip_r_b;
    fp_hi_arr;
    fp_lo_arr;
    _
  } =
    s
  in
  transpose32 hi_a;
  transpose32 hi_b;
  transpose32 lo_a;
  transpose32 lo_b;
  for i = 0 to 31 do
    let il = Array.unsafe_get ip_l_idx i in
    Array.unsafe_set l_arr i
      (Array.unsafe_get (Array.unsafe_get ip_l_a i) il
      lor (Array.unsafe_get (Array.unsafe_get ip_l_b i) il lsl 31));
    let ir = Array.unsafe_get ip_r_idx i in
    Array.unsafe_set r_arr i
      (Array.unsafe_get (Array.unsafe_get ip_r_a i) ir
      lor (Array.unsafe_get (Array.unsafe_get ip_r_b i) ir lsl 31))
  done;
  let l = ref l_arr and r = ref r_arr in
  for rnd = 0 to 15 do
    let ko = rnd * 48 in
    let rr = !r and ll = !l in
    let x i =
      Array.unsafe_get rr (Array.unsafe_get e0 i)
      lxor Array.unsafe_get kw (ko + i)
    in
    Des_sbox_circuits.s1 (x 0) (x 1) (x 2) (x 3) (x 4) (x 5) ll;
    Des_sbox_circuits.s2 (x 6) (x 7) (x 8) (x 9) (x 10) (x 11) ll;
    Des_sbox_circuits.s3 (x 12) (x 13) (x 14) (x 15) (x 16) (x 17) ll;
    Des_sbox_circuits.s4 (x 18) (x 19) (x 20) (x 21) (x 22) (x 23) ll;
    Des_sbox_circuits.s5 (x 24) (x 25) (x 26) (x 27) (x 28) (x 29) ll;
    Des_sbox_circuits.s6 (x 30) (x 31) (x 32) (x 33) (x 34) (x 35) ll;
    Des_sbox_circuits.s7 (x 36) (x 37) (x 38) (x 39) (x 40) (x 41) ll;
    Des_sbox_circuits.s8 (x 42) (x 43) (x 44) (x 45) (x 46) (x 47) ll;
    let t = !l in
    l := !r;
    r := t
  done;
  (* (the [fp_*_arr] tables rely on the swap count being even: R16/L16
     are back in the physical r_arr/l_arr) *)
  for i = 0 to 31 do
    (* the gates set junk above bit 62 (lnot runs the full native int)
       and bit 0 of a lifted B word aliases lane 0's A bit, so mask
       both group extractions down to their own lanes *)
    let w =
      Array.unsafe_get (Array.unsafe_get fp_hi_arr i)
        (Array.unsafe_get fp_hi_idx i)
    in
    Array.unsafe_set hi_a i (w land 0xFFFFFFFF);
    Array.unsafe_set hi_b i ((w lsr 31) land 0xFFFFFFFE);
    let w =
      Array.unsafe_get (Array.unsafe_get fp_lo_arr i)
        (Array.unsafe_get fp_lo_idx i)
    in
    Array.unsafe_set lo_a i (w land 0xFFFFFFFF);
    Array.unsafe_set lo_b i ((w lsr 31) land 0xFFFFFFFE)
  done;
  transpose32 hi_a;
  transpose32 hi_b;
  transpose32 lo_a;
  transpose32 lo_b

(* --- Single-block lanes (the differential battery's entry point) --- *)

let crypt_block_lanes sched_of keys blocks =
  let n = Array.length blocks in
  if Array.length keys <> n then
    invalid_arg "Des_bitslice: one key per block required";
  Array.iter
    (fun b ->
      if String.length b <> 8 then
        invalid_arg "Des_bitslice: blocks must be 8 bytes")
    blocks;
  let s = Fbsr_util.Domain_shim.local_get scratch in
  let out = Array.make n "" in
  let pos = ref 0 in
  while !pos < n do
    let p = !pos in
    let g = min lanes (n - p) in
    load_keys s (fun l -> sched_of keys.(p + l)) g;
    clear_lanes s;
    for l = 0 to g - 1 do
      let blk = blocks.(p + l) in
      set_lane s l (Des_kernel.read32 blk 0) (Des_kernel.read32 blk 4)
    done;
    des_pass s;
    for l = 0 to g - 1 do
      let b = Bytes.create 8 in
      Des_kernel.write32 b 0 (lane_hi s l);
      Des_kernel.write32 b 4 (lane_lo s l);
      out.(p + l) <- Bytes.unsafe_to_string b
    done;
    pos := p + g
  done;
  out

let encrypt_block_lanes keys blocks = crypt_block_lanes Des.sched_e keys blocks
let decrypt_block_lanes keys blocks = crypt_block_lanes Des.sched_d keys blocks

(* --- Cross-flow CBC jobs --- *)

type cbc_job = {
  key : Des.key;
  iv_hi : int;
  iv_lo : int;
  src : string;
  src_pos : int;
  src_len : int;
  dst : Bytes.t;
  dst_pos : int;
}

let cbc_job ~key ~iv ~src ~src_pos ~src_len ~dst ~dst_pos =
  if String.length iv <> 8 then
    invalid_arg "Des_bitslice.cbc_job: IV must be 8 bytes";
  if src_pos < 0 || src_len < 0 || src_pos > String.length src - src_len then
    invalid_arg "Des_bitslice.cbc_job: bad source range";
  let padded = src_len + 8 - (src_len mod 8) in
  if dst_pos < 0 || dst_pos > Bytes.length dst - padded then
    invalid_arg "Des_bitslice.cbc_job: bad destination range";
  {
    key;
    iv_hi = Des_kernel.read32 iv 0;
    iv_lo = Des_kernel.read32 iv 4;
    src;
    src_pos;
    src_len;
    dst;
    dst_pos;
  }

let job_blocks j = (j.src_len / 8) + 1

(* PKCS#7 final block of a job as two 32-bit words, mirroring the byte
   semantics of [Des.cbc_final_block]. *)
let final_words src src_pos src_len =
  let r = src_len land 7 in
  let base = src_pos + (src_len - r) in
  let pad = 8 - r in
  let word j0 =
    let w = ref 0 in
    for j = j0 to j0 + 3 do
      let b =
        if j < r then Char.code (String.unsafe_get src (base + j)) else pad
      in
      w := (!w lsl 8) lor b
    done;
    !w
  in
  (word 0, word 4)

(* Advance one ≤63-lane group of CBC chains in lockstep to completion.
   Returns the number of blocks encrypted. *)
let run_group s (jobs : cbc_job array) p g =
  let { ch_hi; ch_lo; nb_scratch; full_scratch; fin_hi; fin_lo; _ } = s in
  load_keys s (fun l -> Des.sched_e jobs.(p + l).key) g;
  clear_lanes s;
  let max_nb = ref 0 in
  for l = 0 to g - 1 do
    let j = jobs.(p + l) in
    ch_hi.(l) <- j.iv_hi;
    ch_lo.(l) <- j.iv_lo;
    let nb = job_blocks j in
    nb_scratch.(l) <- nb;
    full_scratch.(l) <- j.src_len / 8;
    let fh, fl = final_words j.src j.src_pos j.src_len in
    fin_hi.(l) <- fh;
    fin_lo.(l) <- fl;
    if nb > !max_nb then max_nb := nb
  done;
  let total = ref 0 in
  for step = 0 to !max_nb - 1 do
    for l = 0 to g - 1 do
      let nb = Array.unsafe_get nb_scratch l in
      if step < nb then
        if step < Array.unsafe_get full_scratch l then begin
          let j = Array.unsafe_get jobs (p + l) in
          let sp = j.src_pos + (step * 8) in
          set_lane s l
            (Array.unsafe_get ch_hi l lxor Des_kernel.read32 j.src sp)
            (Array.unsafe_get ch_lo l lxor Des_kernel.read32 j.src (sp + 4))
        end
        else
          set_lane s l
            (Array.unsafe_get ch_hi l lxor Array.unsafe_get fin_hi l)
            (Array.unsafe_get ch_lo l lxor Array.unsafe_get fin_lo l)
      else if step = nb then
        (* chain finished last step: retire the lane to all-zero input
           (it keeps encrypting junk; the gather below skips it) *)
        set_lane s l 0 0
    done;
    des_pass s;
    for l = 0 to g - 1 do
      if step < Array.unsafe_get nb_scratch l then begin
        let j = Array.unsafe_get jobs (p + l) in
        let hi = lane_hi s l and lo = lane_lo s l in
        let dp = j.dst_pos + (step * 8) in
        Des_kernel.write32 j.dst dp hi;
        Des_kernel.write32 j.dst (dp + 4) lo;
        Array.unsafe_set ch_hi l hi;
        Array.unsafe_set ch_lo l lo;
        incr total
      end
    done
  done;
  !total

(* Scalar fallback: one job through the table-driven kernel, byte-for-
   byte [Des.encrypt_cbc_into]. *)
let run_scalar (j : cbc_job) =
  let iv = Bytes.create 8 in
  Des_kernel.write32 iv 0 j.iv_hi;
  Des_kernel.write32 iv 4 j.iv_lo;
  let (_ : int) =
    Des.encrypt_cbc_into ~iv:(Bytes.unsafe_to_string iv) j.key ~src:j.src
      ~src_pos:j.src_pos ~src_len:j.src_len ~dst:j.dst ~dst_pos:j.dst_pos
  in
  job_blocks j

let default_threshold = 24

let encrypt_cbc_jobs ?(threshold = default_threshold) jobs =
  let s = Fbsr_util.Domain_shim.local_get scratch in
  let n = Array.length jobs in
  let bitsliced = ref 0 and scalar = ref 0 in
  let pos = ref 0 in
  while !pos < n do
    let p = !pos in
    let g = min lanes (n - p) in
    if g >= threshold then bitsliced := !bitsliced + run_group s jobs p g
    else
      for l = p to p + g - 1 do
        scalar := !scalar + run_scalar jobs.(l)
      done;
    pos := p + g
  done;
  (!bitsliced, !scalar)

(* --- CBC decrypt primitives (shared by the single-ciphertext and
       cross-flow batched paths) --- *)

let decrypt_threshold = 16

(* Scalar-decrypt the final block of the [nb]-block ciphertext at
   [src/pos], xor with the preceding ciphertext block (the IV words for
   a one-block message), and validate PKCS#7 padding.  Returns the
   plaintext words and padding length; raises on corrupt padding with
   the same message as [Des.decrypt_cbc_sub] so callers classify the
   failure identically regardless of path. *)
let dec_final_block io kd ~src ~pos ~nb ~iv_hi ~iv_lo =
  io.(0) <- Des_kernel.read32 src (pos + ((nb - 1) * 8));
  io.(1) <- Des_kernel.read32 src (pos + ((nb - 1) * 8) + 4);
  Des_kernel.ip io;
  Des_kernel.rounds kd io;
  Des_kernel.fp io;
  let ph, pl =
    if nb = 1 then (iv_hi, iv_lo)
    else
      let pp = pos + ((nb - 2) * 8) in
      (Des_kernel.read32 src pp, Des_kernel.read32 src (pp + 4))
  in
  let lh = io.(0) lxor ph and ll = io.(1) lxor pl in
  let padding = ll land 0xff in
  if padding < 1 || padding > 8 then
    invalid_arg "Des.decrypt_cbc_sub: corrupt padding";
  let blk_byte j =
    if j < 4 then (lh lsr (24 - (8 * j))) land 0xff
    else (ll lsr (56 - (8 * j))) land 0xff
  in
  for j = 8 - padding to 7 do
    if blk_byte j <> padding then
      invalid_arg "Des.decrypt_cbc_sub: corrupt padding"
  done;
  (lh, ll, padding)

(* Write the surviving bytes of a validated final block into [out]. *)
let write_final_tail out ~off lh ll ~padding =
  for j = 0 to 7 - padding do
    let b =
      if j < 4 then (lh lsr (24 - (8 * j))) land 0xff
      else (ll lsr (56 - (8 * j))) land 0xff
    in
    Bytes.unsafe_set out (off + j) (Char.unsafe_chr b)
  done

(* Decrypt full blocks 0..nfull-1 of the ciphertext at [src/pos] across
   lanes (keys already loaded into [s], typically broadcast), xoring
   each result with its predecessor ciphertext block (the IV words for
   block 0) into [out].  Decrypt has no cross-block dependency, so lanes
   are consecutive blocks of one ciphertext. *)
let dec_blocks_lanes s ~src ~pos ~iv_hi ~iv_lo ~nfull ~(out : Bytes.t) =
  let base = ref 0 in
  while !base < nfull do
    let b0 = !base in
    let g = min lanes (nfull - b0) in
    clear_lanes s;
    for l = 0 to g - 1 do
      let sp = pos + ((b0 + l) * 8) in
      set_lane s l (Des_kernel.read32 src sp) (Des_kernel.read32 src (sp + 4))
    done;
    des_pass s;
    for l = 0 to g - 1 do
      let i = b0 + l in
      let ph, pl =
        if i = 0 then (iv_hi, iv_lo)
        else
          let pp = pos + ((i - 1) * 8) in
          (Des_kernel.read32 src pp, Des_kernel.read32 src (pp + 4))
      in
      Des_kernel.write32 out (i * 8) (lane_hi s l lxor ph);
      Des_kernel.write32 out ((i * 8) + 4) (lane_lo s l lxor pl)
    done;
    base := b0 + g
  done

(* --- Cross-flow batched CBC decrypt --- *)

type dec_job = {
  kd : int array; (* packed decrypt schedule *)
  div_hi : int;
  div_lo : int;
  d_src : string; (* borrowed until the run; not copied *)
  d_pos : int;
  nfull : int; (* full plaintext blocks still owed by the run *)
  out : Bytes.t; (* exact-size plaintext; tail already written *)
}

let dec_job ~key ~iv ~src ~src_pos ~src_len =
  if String.length iv <> 8 then
    invalid_arg "Des_bitslice.dec_job: IV must be 8 bytes";
  if src_pos < 0 || src_len < 0 || src_pos > String.length src - src_len then
    invalid_arg "Des_bitslice.dec_job: bad source range";
  if src_len = 0 || src_len mod 8 <> 0 then
    invalid_arg "Des_bitslice.dec_job: bad length";
  let s = Fbsr_util.Domain_shim.local_get scratch in
  let kd = Des.sched_d key in
  let nb = src_len / 8 in
  let iv_hi = Des_kernel.read32 iv 0 and iv_lo = Des_kernel.read32 iv 4 in
  (* The final block decrypts scalar at construction: its padding byte
     sizes the output buffer, and a corrupt-padding frame must fail
     here — before it occupies a batch lane — so batched and scalar
     receive reject at the same point with the same exception. *)
  let lh, ll, padding =
    dec_final_block s.io2 kd ~src ~pos:src_pos ~nb ~iv_hi ~iv_lo
  in
  let out = Bytes.create (src_len - padding) in
  write_final_tail out ~off:((nb - 1) * 8) lh ll ~padding;
  {
    kd;
    div_hi = iv_hi;
    div_lo = iv_lo;
    d_src = src;
    d_pos = src_pos;
    nfull = nb - 1;
    out;
  }

let dec_job_out j = j.out

(* Advance one ≤63-lane group of decrypt jobs in lockstep.  Unlike the
   encrypt side there is no chain state to carry: each lane's xor source
   is read back out of its own ciphertext.  Returns blocks decrypted. *)
let run_dec_group s (jobs : dec_job array) p g =
  let { nb_scratch; _ } = s in
  load_keys s (fun l -> jobs.(p + l).kd) g;
  clear_lanes s;
  let max_nf = ref 0 in
  for l = 0 to g - 1 do
    let nf = jobs.(p + l).nfull in
    nb_scratch.(l) <- nf;
    if nf > !max_nf then max_nf := nf
  done;
  let total = ref 0 in
  for step = 0 to !max_nf - 1 do
    for l = 0 to g - 1 do
      let nf = Array.unsafe_get nb_scratch l in
      if step < nf then begin
        let j = Array.unsafe_get jobs (p + l) in
        let sp = j.d_pos + (step * 8) in
        set_lane s l (Des_kernel.read32 j.d_src sp)
          (Des_kernel.read32 j.d_src (sp + 4))
      end
      else if step = nf then
        (* job finished last step: retire the lane to all-zero input *)
        set_lane s l 0 0
    done;
    des_pass s;
    for l = 0 to g - 1 do
      if step < Array.unsafe_get nb_scratch l then begin
        let j = Array.unsafe_get jobs (p + l) in
        let ph, pl =
          if step = 0 then (j.div_hi, j.div_lo)
          else
            let pp = j.d_pos + ((step - 1) * 8) in
            (Des_kernel.read32 j.d_src pp, Des_kernel.read32 j.d_src (pp + 4))
        in
        Des_kernel.write32 j.out (step * 8) (lane_hi s l lxor ph);
        Des_kernel.write32 j.out ((step * 8) + 4) (lane_lo s l lxor pl);
        incr total
      end
    done
  done;
  !total

(* Per-job fallback for under-threshold batches: long ciphertexts still
   go lane-parallel (blocks as lanes, broadcast key), short ones through
   the table-driven kernel.  Matches what scalar receive would have done
   for the same datagram, so a sparse batch never regresses below the
   unbatched path.  Returns (bitsliced, scalar) block counts. *)
let run_dec_scalar s (j : dec_job) =
  if j.nfull = 0 then (0, 0)
  else if j.nfull >= decrypt_threshold then begin
    load_keys_broadcast s j.kd;
    dec_blocks_lanes s ~src:j.d_src ~pos:j.d_pos ~iv_hi:j.div_hi
      ~iv_lo:j.div_lo ~nfull:j.nfull ~out:j.out;
    (j.nfull, 0)
  end
  else begin
    let io = s.io2 in
    for i = 0 to j.nfull - 1 do
      let sp = j.d_pos + (i * 8) in
      io.(0) <- Des_kernel.read32 j.d_src sp;
      io.(1) <- Des_kernel.read32 j.d_src (sp + 4);
      Des_kernel.ip io;
      Des_kernel.rounds j.kd io;
      Des_kernel.fp io;
      let ph, pl =
        if i = 0 then (j.div_hi, j.div_lo)
        else
          (Des_kernel.read32 j.d_src (sp - 8), Des_kernel.read32 j.d_src (sp - 4))
      in
      Des_kernel.write32 j.out (i * 8) (io.(0) lxor ph);
      Des_kernel.write32 j.out ((i * 8) + 4) (io.(1) lxor pl)
    done;
    (0, j.nfull)
  end

let decrypt_cbc_jobs ?(threshold = default_threshold) jobs =
  let s = Fbsr_util.Domain_shim.local_get scratch in
  let n = Array.length jobs in
  let bitsliced = ref 0 and scalar = ref 0 in
  let pos = ref 0 in
  while !pos < n do
    let p = !pos in
    let g = min lanes (n - p) in
    if g >= threshold then bitsliced := !bitsliced + run_dec_group s jobs p g
    else
      for l = p to p + g - 1 do
        let bs, sc = run_dec_scalar s jobs.(l) in
        bitsliced := !bitsliced + bs;
        scalar := !scalar + sc
      done;
    pos := p + g
  done;
  (!bitsliced, !scalar)

(* --- Single-ciphertext CBC decrypt, blocks as lanes --- *)

let decrypt_cbc_sub ?(threshold = decrypt_threshold) ~iv key ~src ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length src - len then
    invalid_arg "Des_bitslice.decrypt_cbc_sub: bad source range";
  if len = 0 || len mod 8 <> 0 then
    invalid_arg "Des_bitslice.decrypt_cbc_sub: bad length";
  let nb = len / 8 in
  if nb < threshold || nb < 2 then Des.decrypt_cbc_sub ~iv key ~src ~pos ~len
  else begin
    if String.length iv <> 8 then
      invalid_arg "Des_bitslice.decrypt_cbc_sub: IV must be 8 bytes";
    let kd = Des.sched_d key in
    let s = Fbsr_util.Domain_shim.local_get scratch in
    let iv_hi = Des_kernel.read32 iv 0 and iv_lo = Des_kernel.read32 iv 4 in
    (* Last block first, scalar, to learn the padding length (mirrors
       Des.decrypt_cbc_sub so the two paths are drop-in equivalent). *)
    let lh, ll, padding = dec_final_block s.io2 kd ~src ~pos ~nb ~iv_hi ~iv_lo in
    let out = Bytes.create (len - padding) in
    load_keys_broadcast s kd;
    dec_blocks_lanes s ~src ~pos ~iv_hi ~iv_lo ~nfull:(nb - 1) ~out;
    write_final_tail out ~off:((nb - 1) * 8) lh ll ~padding;
    Bytes.unsafe_to_string out
  end
