(* Generator for Des_sbox_circuits: straight-line boolean circuits for the
   eight DES S-boxes, evaluated on whole machine words so one pass computes
   the S-box for every lane of the bitsliced kernel at once.

   Construction (per box): with x1..x6 the six S-box input bit-vectors
   (x1 = FIPS input bit 1, the row MSB; x6 = the row LSB; x2..x5 the
   column, MSB first), build

     - complements  n_i = lnot x_i                       (as needed)
     - pair products a_i over (x2,x3) and b_j over (x4,x5)
     - the sixteen column minterms m_c = a_(c lsr 2) land b_(c land 3)
     - the four row selectors r_0..r_3 over (x1,x6)

   Each DES S-box row is a permutation of 0..15, so every (row, output
   bit) pair has exactly eight ones: each output bit is an OR of four
   (row selector AND (OR of eight minterms)) terms.  The sixteen
   OR-of-eight trees per box share heavily; a greedy common-pair
   extraction (most frequent minterm pair becomes a shared node,
   repeat) cuts the OR count by roughly a third.

   The round-function P permutation maps each S output bit to exactly
   one L position, so instead of staging outputs in a scratch array the
   emitted functions XOR each finished bit-vector straight into the
   caller's L array at its P destination — the P step costs nothing.

   The generator tracks which intermediate bindings each box actually
   references and emits only those, because the generated module is
   compiled under the CI profile's [-warn-error +a]. *)

(* FIPS P: f bit j+1 = S-output bit p_table.(j). *)
let p_table =
  [| 16;  7; 20; 21; 29; 12; 28; 17;  1; 15; 23; 26;  5; 18; 31; 10;
      2;  8; 24; 14; 32; 27;  3;  9; 19; 13; 30;  6; 22; 11;  4; 25 |]

(* L destination of S-output bit [sb+1] (0-based). *)
let p_dest sb =
  let d = ref (-1) in
  Array.iteri (fun j src -> if src = sb + 1 then d := j) p_table;
  assert (!d >= 0);
  !d

let sboxes =
  [| (* S1 *)
     [| 14;  4; 13;  1;  2; 15; 11;  8;  3; 10;  6; 12;  5;  9;  0;  7;
         0; 15;  7;  4; 14;  2; 13;  1; 10;  6; 12; 11;  9;  5;  3;  8;
         4;  1; 14;  8; 13;  6;  2; 11; 15; 12;  9;  7;  3; 10;  5;  0;
        15; 12;  8;  2;  4;  9;  1;  7;  5; 11;  3; 14; 10;  0;  6; 13 |];
     (* S2 *)
     [| 15;  1;  8; 14;  6; 11;  3;  4;  9;  7;  2; 13; 12;  0;  5; 10;
         3; 13;  4;  7; 15;  2;  8; 14; 12;  0;  1; 10;  6;  9; 11;  5;
         0; 14;  7; 11; 10;  4; 13;  1;  5;  8; 12;  6;  9;  3;  2; 15;
        13;  8; 10;  1;  3; 15;  4;  2; 11;  6;  7; 12;  0;  5; 14;  9 |];
     (* S3 *)
     [| 10;  0;  9; 14;  6;  3; 15;  5;  1; 13; 12;  7; 11;  4;  2;  8;
        13;  7;  0;  9;  3;  4;  6; 10;  2;  8;  5; 14; 12; 11; 15;  1;
        13;  6;  4;  9;  8; 15;  3;  0; 11;  1;  2; 12;  5; 10; 14;  7;
         1; 10; 13;  0;  6;  9;  8;  7;  4; 15; 14;  3; 11;  5;  2; 12 |];
     (* S4 *)
     [|  7; 13; 14;  3;  0;  6;  9; 10;  1;  2;  8;  5; 11; 12;  4; 15;
        13;  8; 11;  5;  6; 15;  0;  3;  4;  7;  2; 12;  1; 10; 14;  9;
        10;  6;  9;  0; 12; 11;  7; 13; 15;  1;  3; 14;  5;  2;  8;  4;
         3; 15;  0;  6; 10;  1; 13;  8;  9;  4;  5; 11; 12;  7;  2; 14 |];
     (* S5 *)
     [|  2; 12;  4;  1;  7; 10; 11;  6;  8;  5;  3; 15; 13;  0; 14;  9;
        14; 11;  2; 12;  4;  7; 13;  1;  5;  0; 15; 10;  3;  9;  8;  6;
         4;  2;  1; 11; 10; 13;  7;  8; 15;  9; 12;  5;  6;  3;  0; 14;
        11;  8; 12;  7;  1; 14;  2; 13;  6; 15;  0;  9; 10;  4;  5;  3 |];
     (* S6 *)
     [| 12;  1; 10; 15;  9;  2;  6;  8;  0; 13;  3;  4; 14;  7;  5; 11;
        10; 15;  4;  2;  7; 12;  9;  5;  6;  1; 13; 14;  0; 11;  3;  8;
         9; 14; 15;  5;  2;  8; 12;  3;  7;  0;  4; 10;  1; 13; 11;  6;
         4;  3;  2; 12;  9;  5; 15; 10; 11; 14;  1;  7;  6;  0;  8; 13 |];
     (* S7 *)
     [|  4; 11;  2; 14; 15;  0;  8; 13;  3; 12;  9;  7;  5; 10;  6;  1;
        13;  0; 11;  7;  4;  9;  1; 10; 14;  3;  5; 12;  2; 15;  8;  6;
         1;  4; 11; 13; 12;  3;  7; 14; 10; 15;  6;  8;  0;  5;  9;  2;
         6; 11; 13;  8;  1;  4; 10;  7;  9;  5;  0; 15; 14;  2;  3; 12 |];
     (* S8 *)
     [| 13;  2;  8;  4;  6; 15; 11;  1; 10;  9;  3; 14;  5;  0; 12;  7;
         1; 15; 13;  8; 10;  3;  7;  4; 12;  5;  6; 11;  0; 14;  9;  2;
         7; 11;  4;  1;  9; 12; 14;  2;  0;  6; 10; 13; 15;  3;  5;  8;
         2;  1; 14;  7;  4; 10;  8; 13; 15; 12;  9;  0;  3;  5;  6; 11 |] |]

let pf fmt = Printf.printf fmt

(* Greedy common-pair extraction over the sixteen OR-subsets of one box.
   Subsets are lists of node ids (0..15 = minterms, 16+ = shared OR
   nodes); returns (shared nodes in creation order, reduced subsets). *)
let cse subsets =
  let nodes = ref [] (* (id, left, right), newest first *) in
  let next = ref 16 in
  let subsets = Array.map (fun l -> ref l) subsets in
  let rec loop () =
    let count = Hashtbl.create 64 in
    Array.iter
      (fun s ->
        let l = List.sort compare !s in
        let rec pairs = function
          | [] -> ()
          | x :: rest ->
              List.iter
                (fun y ->
                  let k = (x, y) in
                  Hashtbl.replace count k
                    (1 + try Hashtbl.find count k with Not_found -> 0))
                rest;
              pairs rest
        in
        pairs l)
      subsets;
    let best = ref ((-1, -1), 1) in
    Hashtbl.iter (fun k v -> if v > snd !best then best := (k, v)) count;
    let (x, y), freq = !best in
    if freq > 1 then begin
      let id = !next in
      incr next;
      nodes := (id, x, y) :: !nodes;
      Array.iter
        (fun s ->
          if List.mem x !s && List.mem y !s then
            s := id :: List.filter (fun e -> e <> x && e <> y) !s)
        subsets;
      loop ()
    end
  in
  loop ();
  (List.rev !nodes, Array.map (fun s -> !s) subsets)

let emit_box b =
  let tbl = sboxes.(b) in
  (* ones.(row).(k) = columns where output bit k (MSB-first) is set. *)
  let ones =
    Array.init 4 (fun row ->
        Array.init 4 (fun k ->
            List.filter
              (fun c -> (tbl.((row * 16) + c) lsr (3 - k)) land 1 = 1)
              (List.init 16 Fun.id)))
  in
  Array.iter
    (fun per_bit ->
      Array.iter (fun cols -> assert (List.length cols = 8)) per_bit)
    ones;
  (* subsets.(row*4+k) = minterm ids of output bit k in row [row] *)
  let subsets = Array.init 16 (fun i -> ones.(i / 4).(i mod 4)) in
  let nodes, reduced = cse subsets in
  let node_name id =
    if id < 16 then Printf.sprintf "m%d" id else Printf.sprintf "q%d" id
  in
  (* Liveness: minterms referenced by reduced subsets or shared nodes. *)
  let m_used = Array.make 16 false in
  let mark id = if id < 16 then m_used.(id) <- true in
  Array.iter (List.iter mark) reduced;
  List.iter
    (fun (_, x, y) ->
      mark x;
      mark y)
    nodes;
  let a_used = Array.make 4 false and b_used = Array.make 4 false in
  for c = 0 to 15 do
    if m_used.(c) then begin
      a_used.(c lsr 2) <- true;
      b_used.(c land 3) <- true
    end
  done;
  let need_n2 = a_used.(0) || a_used.(1) in
  let need_n3 = a_used.(0) || a_used.(2) in
  let need_n4 = b_used.(0) || b_used.(1) in
  let need_n5 = b_used.(0) || b_used.(2) in
  pf "let s%d x1 x2 x3 x4 x5 x6 (l : int array) =\n" (b + 1);
  pf "  let n1 = lnot x1 and n6 = lnot x6 in\n";
  if need_n2 then pf "  let n2 = lnot x2 in\n";
  if need_n3 then pf "  let n3 = lnot x3 in\n";
  if need_n4 then pf "  let n4 = lnot x4 in\n";
  if need_n5 then pf "  let n5 = lnot x5 in\n";
  let a_expr = [| "n2 land n3"; "n2 land x3"; "x2 land n3"; "x2 land x3" |] in
  let b_expr = [| "n4 land n5"; "n4 land x5"; "x4 land n5"; "x4 land x5" |] in
  for i = 0 to 3 do
    if a_used.(i) then pf "  let a%d = %s in\n" i a_expr.(i)
  done;
  for j = 0 to 3 do
    if b_used.(j) then pf "  let b%d = %s in\n" j b_expr.(j)
  done;
  for c = 0 to 15 do
    if m_used.(c) then pf "  let m%d = a%d land b%d in\n" c (c lsr 2) (c land 3)
  done;
  pf "  let r0 = n1 land n6 and r1 = n1 land x6\n";
  pf "  and r2 = x1 land n6 and r3 = x1 land x6 in\n";
  List.iter
    (fun (id, x, y) ->
      pf "  let q%d = %s lor %s in\n" id (node_name x) (node_name y))
    nodes;
  for k = 0 to 3 do
    let term row =
      match reduced.((row * 4) + k) with
      | [ id ] -> Printf.sprintf "(r%d land %s)" row (node_name id)
      | ids ->
          Printf.sprintf "(r%d land (%s))" row
            (String.concat " lor " (List.map node_name ids))
    in
    let d = p_dest ((4 * b) + k) in
    pf "  Array.unsafe_set l %d\n    (Array.unsafe_get l %d\n     lxor (%s\n           lor %s\n           lor %s\n           lor %s))%s\n"
      d d (term 0) (term 1) (term 2) (term 3)
      (if k = 3 then "" else ";")
  done;
  pf "\n"

let () =
  pf "(* Generated by gen/gen_sboxes.ml — do not edit.\n";
  pf "   Word-parallel DES S-box circuits for the bitsliced kernel, with\n";
  pf "   the round-function P permutation baked in: [s<b> x1..x6 l] XORs\n";
  pf "   S-box [b]'s four output bit-vectors into the caller's L array at\n";
  pf "   their P destinations. *)\n\n";
  for b = 0 to 7 do
    emit_box b
  done
