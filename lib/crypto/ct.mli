(** Constant-time comparison for MAC verification. *)

val equal : string -> string -> bool

val equal_slice : Fbsr_util.Slice.t -> Fbsr_util.Slice.t -> bool
(** Constant-time comparison of two byte views (e.g. a computed MAC
    against the MAC field sliced out of the wire buffer, with no copy). *)

val equal_string_slice : string -> Fbsr_util.Slice.t -> bool
