(** Bitsliced DES: up to 63 independent blocks advance one round per
    word-parallel step, each lane owning one bit position of a native
    [int] (bit 63 is never used — OCaml ints are 63-bit).  CBC
    serializes blocks {e within} a flow but not {e across} flows, so the
    gateway batches pending chains from distinct flows and runs them in
    lockstep here; a single datagram's CBC {e decrypt} side has no
    cross-block dependency either, so receive slices one ciphertext
    across lanes.  Differentially pinned to {!Des} / {!Des_kernel} /
    {!Des_ref} by test/test_crypto.ml; layout derivation in DESIGN.md
    §6c.

    Scratch is domain-local ({!Fbsr_util.Domain_shim.local_make}): each
    domain owns a private set of lane matrices, so the sharded engine's
    per-shard receive pipelines may call into this module concurrently.
    Within one domain the module is still not re-entrant. *)

val lanes : int
(** Lanes per pass: 63. *)

(** {1 Single-block lanes}

    Differential-testing entry points: lane [i] processes [blocks.(i)]
    (8 bytes) under [keys.(i)].  Any number of blocks — chunked
    internally into ≤[lanes] groups, so ragged and oversize batches
    exercise the same scatter/gather. *)

val encrypt_block_lanes : Des.key array -> string array -> string array
val decrypt_block_lanes : Des.key array -> string array -> string array

(** {1 Cross-flow CBC encryption} *)

type cbc_job
(** One flow's pending CBC chain: key, IV snapshot, a source substring
    to encrypt and a caller-owned destination region that receives the
    [Des.padded_length] ciphertext. *)

val cbc_job :
  key:Des.key ->
  iv:string ->
  src:string ->
  src_pos:int ->
  src_len:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  cbc_job
(** Validates ranges and snapshots the 8-byte [iv] (the job holds no
    reference to it, so callers may reuse IV scratch buffers).
    @raise Invalid_argument on bad ranges or IV length. *)

val encrypt_cbc_jobs : ?threshold:int -> cbc_job array -> int * int
(** Runs every job to completion, byte-identical to
    [Des.encrypt_cbc_into] per job.  Jobs are cut into groups of
    ≤[lanes]; a group of at least [threshold] (default 24) advances
    bitsliced in lockstep, smaller groups — including the ragged tail of
    a large batch — fall back to the scalar kernel.  Returns
    [(bitsliced_blocks, scalar_blocks)] so callers and tests can assert
    which path ran. *)

(** {1 Cross-flow CBC decryption} *)

type dec_job
(** One received frame's pending CBC decrypt: decrypt key schedule, IV
    snapshot, a borrowed ciphertext substring, and the exact-size
    plaintext buffer the run fills in.  The ciphertext is {e borrowed},
    not copied — it must stay valid until {!decrypt_cbc_jobs} runs. *)

val dec_job :
  key:Des.key -> iv:string -> src:string -> src_pos:int -> src_len:int ->
  dec_job
(** Validates ranges, then scalar-decrypts the {e final} block up front:
    its PKCS#7 padding byte sizes the plaintext allocation (the job's
    single allocation), and a corrupt-padding frame is rejected here —
    before it occupies a batch lane — so batched and scalar receive fail
    at the same point with the same exception.  The final block's bytes
    are already written into the output; the remaining [src_len/8 - 1]
    full blocks are owed by the run.
    @raise Invalid_argument on bad ranges, bad IV length, a [src_len]
    that is zero or not a multiple of 8, or corrupt padding (message
    ["Des.decrypt_cbc_sub: corrupt padding"], matching the scalar
    path). *)

val dec_job_out : dec_job -> Bytes.t
(** The job's plaintext buffer.  Fully valid only after
    {!decrypt_cbc_jobs} has run over the job (the final-block tail is
    valid from construction). *)

val decrypt_cbc_jobs : ?threshold:int -> dec_job array -> int * int
(** Runs every job's remaining full blocks, byte-identical to
    {!Des.decrypt_cbc_sub} per job.  Jobs are cut into groups of
    ≤[lanes]; a group of at least [threshold] (default 24) advances
    bitsliced in lockstep under per-lane key schedules.  Smaller groups
    fall back per job to what scalar receive would have done: long
    ciphertexts slice their own blocks across broadcast-key lanes,
    short ones run the table-driven kernel — so a sparse batch never
    regresses below the unbatched path.  Returns
    [(bitsliced_blocks, scalar_blocks)]; final blocks (decrypted at
    construction) are not counted, so the sum over a run equals the
    total of per-job full blocks. *)

(** {1 Single-ciphertext CBC decryption} *)

val decrypt_cbc_sub :
  ?threshold:int ->
  iv:string ->
  Des.key ->
  src:string ->
  pos:int ->
  len:int ->
  string
(** Drop-in equivalent of {!Des.decrypt_cbc_sub} (same results, same
    [Invalid_argument] on corrupt padding): decrypts the last block
    scalar to learn the padding, then slices the remaining blocks
    across lanes under a broadcast key schedule.  Ciphertexts below
    [threshold] blocks (default 16) delegate to the scalar kernel. *)
