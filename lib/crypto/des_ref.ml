(* Reference DES: the original generic bit-gather implementation, retained
   verbatim (minus the incremental/zero-copy entry points) when the fast
   table-driven kernel replaced it in [Des].

   Purpose: differential testing.  This module's structure is a direct
   transliteration of the FIPS 46 description — every permutation is
   applied bit by bit from the published tables — so it is easy to audit
   and hard to get subtly wrong.  The fast kernel in [Des_kernel] must
   agree with it on every key, block, mode and length; test/test_crypto.ml
   enforces that over randomized inputs.  Nothing on a hot path may call
   this module. *)

let block_size = 8
let key_size = 8

(* --- FIPS tables (entries are 1-based source bit positions, MSB first) --- *)

let ip_table =
  [| 58; 50; 42; 34; 26; 18; 10; 2; 60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6; 64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1; 59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5; 63; 55; 47; 39; 31; 23; 15; 7 |]

let fp_table =
  [| 40; 8; 48; 16; 56; 24; 64; 32; 39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30; 37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28; 35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26; 33; 1; 41;  9; 49; 17; 57; 25 |]

let e_table =
  [| 32;  1;  2;  3;  4;  5;  4;  5;  6;  7;  8;  9;
      8;  9; 10; 11; 12; 13; 12; 13; 14; 15; 16; 17;
     16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32;  1 |]

let p_table =
  [| 16;  7; 20; 21; 29; 12; 28; 17;  1; 15; 23; 26;  5; 18; 31; 10;
      2;  8; 24; 14; 32; 27;  3;  9; 19; 13; 30;  6; 22; 11;  4; 25 |]

let pc1_table =
  [| 57; 49; 41; 33; 25; 17;  9;  1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27; 19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;  7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29; 21; 13;  5; 28; 20; 12;  4 |]

let pc2_table =
  [| 14; 17; 11; 24;  1;  5;  3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8; 16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55; 30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53; 46; 42; 50; 36; 29; 32 |]

let key_shifts = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [| (* S1 *)
     [| 14;  4; 13;  1;  2; 15; 11;  8;  3; 10;  6; 12;  5;  9;  0;  7;
         0; 15;  7;  4; 14;  2; 13;  1; 10;  6; 12; 11;  9;  5;  3;  8;
         4;  1; 14;  8; 13;  6;  2; 11; 15; 12;  9;  7;  3; 10;  5;  0;
        15; 12;  8;  2;  4;  9;  1;  7;  5; 11;  3; 14; 10;  0;  6; 13 |];
     (* S2 *)
     [| 15;  1;  8; 14;  6; 11;  3;  4;  9;  7;  2; 13; 12;  0;  5; 10;
         3; 13;  4;  7; 15;  2;  8; 14; 12;  0;  1; 10;  6;  9; 11;  5;
         0; 14;  7; 11; 10;  4; 13;  1;  5;  8; 12;  6;  9;  3;  2; 15;
        13;  8; 10;  1;  3; 15;  4;  2; 11;  6;  7; 12;  0;  5; 14;  9 |];
     (* S3 *)
     [| 10;  0;  9; 14;  6;  3; 15;  5;  1; 13; 12;  7; 11;  4;  2;  8;
        13;  7;  0;  9;  3;  4;  6; 10;  2;  8;  5; 14; 12; 11; 15;  1;
        13;  6;  4;  9;  8; 15;  3;  0; 11;  1;  2; 12;  5; 10; 14;  7;
         1; 10; 13;  0;  6;  9;  8;  7;  4; 15; 14;  3; 11;  5;  2; 12 |];
     (* S4 *)
     [|  7; 13; 14;  3;  0;  6;  9; 10;  1;  2;  8;  5; 11; 12;  4; 15;
        13;  8; 11;  5;  6; 15;  0;  3;  4;  7;  2; 12;  1; 10; 14;  9;
        10;  6;  9;  0; 12; 11;  7; 13; 15;  1;  3; 14;  5;  2;  8;  4;
         3; 15;  0;  6; 10;  1; 13;  8;  9;  4;  5; 11; 12;  7;  2; 14 |];
     (* S5 *)
     [|  2; 12;  4;  1;  7; 10; 11;  6;  8;  5;  3; 15; 13;  0; 14;  9;
        14; 11;  2; 12;  4;  7; 13;  1;  5;  0; 15; 10;  3;  9;  8;  6;
         4;  2;  1; 11; 10; 13;  7;  8; 15;  9; 12;  5;  6;  3;  0; 14;
        11;  8; 12;  7;  1; 14;  2; 13;  6; 15;  0;  9; 10;  4;  5;  3 |];
     (* S6 *)
     [| 12;  1; 10; 15;  9;  2;  6;  8;  0; 13;  3;  4; 14;  7;  5; 11;
        10; 15;  4;  2;  7; 12;  9;  5;  6;  1; 13; 14;  0; 11;  3;  8;
         9; 14; 15;  5;  2;  8; 12;  3;  7;  0;  4; 10;  1; 13; 11;  6;
         4;  3;  2; 12;  9;  5; 15; 10; 11; 14;  1;  7;  6;  0;  8; 13 |];
     (* S7 *)
     [|  4; 11;  2; 14; 15;  0;  8; 13;  3; 12;  9;  7;  5; 10;  6;  1;
        13;  0; 11;  7;  4;  9;  1; 10; 14;  3;  5; 12;  2; 15;  8;  6;
         1;  4; 11; 13; 12;  3;  7; 14; 10; 15;  6;  8;  0;  5;  9;  2;
         6; 11; 13;  8;  1;  4; 10;  7;  9;  5;  0; 15; 14;  2;  3; 12 |];
     (* S8 *)
     [| 13;  2;  8;  4;  6; 15; 11;  1; 10;  9;  3; 14;  5;  0; 12;  7;
         1; 15; 13;  8; 10;  3;  7;  4; 12;  5;  6; 11;  0; 14;  9;  2;
         7; 11;  4;  1;  9; 12; 14;  2;  0;  6; 10; 13; 15;  3;  5;  8;
         2;  1; 14;  7;  4; 10;  8; 13; 15; 12;  9;  0;  3;  5;  6; 11 |] |]

(* Generic bit gather: source value is [width] bits wide, bit 1 = MSB. *)
let permute (v : int64) ~width table =
  let out = ref 0L in
  let n = Array.length table in
  for i = 0 to n - 1 do
    let src = table.(i) in
    let bit = Int64.logand (Int64.shift_right_logical v (width - src)) 1L in
    out := Int64.logor (Int64.shift_left !out 1) bit
  done;
  !out

(* SP tables: S-box output already pushed through the P permutation, one
   32-bit word per (box, 6-bit input). *)
let sp_tables =
  lazy
    (Array.init 8 (fun box ->
         Array.init 64 (fun six ->
             let row = ((six lsr 4) land 2) lor (six land 1) in
             let col = (six lsr 1) land 0xf in
             let s = sboxes.(box).((row * 16) + col) in
             (* Place the 4-bit output at its position in the 32-bit word. *)
             let word = Int64.of_int (s lsl (28 - (4 * box))) in
             Int64.to_int (permute word ~width:32 p_table))))

(* Key schedule: sixteen 48-bit subkeys as int64. *)
let key_schedule (key : string) : int64 array =
  if String.length key <> key_size then invalid_arg "Des_ref: key must be 8 bytes";
  let k64 = ref 0L in
  String.iter
    (fun c -> k64 := Int64.logor (Int64.shift_left !k64 8) (Int64.of_int (Char.code c)))
    key;
  let k56 = permute !k64 ~width:64 pc1_table in
  let c = ref (Int64.to_int (Int64.shift_right_logical k56 28)) in
  let d = ref (Int64.to_int (Int64.logand k56 0xfffffffL)) in
  let rot28 v n = ((v lsl n) lor (v lsr (28 - n))) land 0xfffffff in
  Array.init 16 (fun round ->
      let n = key_shifts.(round) in
      c := rot28 !c n;
      d := rot28 !d n;
      let cd = Int64.logor (Int64.shift_left (Int64.of_int !c) 28) (Int64.of_int !d) in
      permute cd ~width:56 pc2_table)

type key = { subkeys : int64 array }

let of_string key = { subkeys = key_schedule key }

(* The round function, on native ints for speed: r and the return value are
   32-bit values stored in an int. *)
let feistel sp (r : int) (subkey : int64) : int =
  let er = permute (Int64.of_int r) ~width:32 e_table in
  let x = Int64.logxor er subkey in
  let out = ref 0 in
  for box = 0 to 7 do
    let six = Int64.to_int (Int64.shift_right_logical x (42 - (6 * box))) land 0x3f in
    out := !out lor sp.(box).(six)
  done;
  !out

let crypt_block key ~decrypt (block : int64) : int64 =
  let sp = Lazy.force sp_tables in
  let v = permute block ~width:64 ip_table in
  let l = ref (Int64.to_int (Int64.shift_right_logical v 32)) in
  let r = ref (Int64.to_int (Int64.logand v 0xffffffffL)) in
  for round = 0 to 15 do
    let k = if decrypt then key.subkeys.(15 - round) else key.subkeys.(round) in
    let nl = !r in
    let nr = !l lxor feistel sp !r k in
    l := nl;
    r := nr
  done;
  (* Final swap then FP. *)
  let pre = Int64.logor (Int64.shift_left (Int64.of_int !r) 32) (Int64.of_int !l) in
  permute pre ~width:64 fp_table

let block_of_string s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let block_to_bytes b off (v : int64) =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xff))
  done

let encrypt_block key pt = crypt_block key ~decrypt:false pt
let decrypt_block key ct = crypt_block key ~decrypt:true ct

(* --- Modes of operation (FIPS 81), as the seed kernel implemented them --- *)

type mode = Ecb | Cbc | Cfb | Ofb

let pad s =
  let n = String.length s in
  let padding = 8 - (n mod 8) in
  s ^ String.make padding (Char.chr padding)

let unpad s =
  let n = String.length s in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des_ref.unpad: bad length";
  let padding = Char.code s.[n - 1] in
  if padding < 1 || padding > 8 || padding > n then
    invalid_arg "Des_ref.unpad: corrupt padding";
  for i = n - padding to n - 1 do
    if Char.code s.[i] <> padding then invalid_arg "Des_ref.unpad: corrupt padding"
  done;
  String.sub s 0 (n - padding)

let check_iv iv =
  if String.length iv <> 8 then invalid_arg "Des_ref: IV must be 8 bytes";
  block_of_string iv 0

let encrypt_ecb ?(confounder = String.make 8 '\000') key pt =
  let cf = check_iv confounder in
  let data = pad pt in
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    let b = Int64.logxor (block_of_string data (i * 8)) cf in
    block_to_bytes out (i * 8) (encrypt_block key b)
  done;
  Bytes.unsafe_to_string out

let decrypt_ecb ?(confounder = String.make 8 '\000') key ct =
  let cf = check_iv confounder in
  let n = String.length ct in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des_ref.decrypt_ecb: bad length";
  let out = Bytes.create n in
  for i = 0 to (n / 8) - 1 do
    let b = decrypt_block key (block_of_string ct (i * 8)) in
    block_to_bytes out (i * 8) (Int64.logxor b cf)
  done;
  unpad (Bytes.unsafe_to_string out)

let encrypt_cbc ~iv key pt =
  let data = pad pt in
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  let prev = ref (check_iv iv) in
  for i = 0 to n - 1 do
    let b = Int64.logxor (block_of_string data (i * 8)) !prev in
    let c = encrypt_block key b in
    block_to_bytes out (i * 8) c;
    prev := c
  done;
  Bytes.unsafe_to_string out

let decrypt_cbc ~iv key ct =
  let n = String.length ct in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des_ref.decrypt_cbc: bad length";
  let out = Bytes.create n in
  let prev = ref (check_iv iv) in
  for i = 0 to (n / 8) - 1 do
    let c = block_of_string ct (i * 8) in
    let p = Int64.logxor (decrypt_block key c) !prev in
    block_to_bytes out (i * 8) p;
    prev := c
  done;
  unpad (Bytes.unsafe_to_string out)

let cfb_transform ~iv ~decrypt key input =
  let n = String.length input in
  let out = Bytes.create n in
  let shiftreg = ref (check_iv iv) in
  let i = ref 0 in
  while !i < n do
    let keystream = encrypt_block key !shiftreg in
    let take = min 8 (n - !i) in
    let inblk = ref 0L in
    for j = 0 to take - 1 do
      inblk := Int64.logor (Int64.shift_left !inblk 8) (Int64.of_int (Char.code input.[!i + j]))
    done;
    (* Align a short final block to the top of the 64-bit word. *)
    let inblk = Int64.shift_left !inblk (8 * (8 - take)) in
    let outblk = Int64.logxor inblk keystream in
    for j = 0 to take - 1 do
      Bytes.set out (!i + j)
        (Char.chr (Int64.to_int (Int64.shift_right_logical outblk (56 - (8 * j))) land 0xff))
    done;
    (* Feedback is the ciphertext block. *)
    shiftreg := (if decrypt then inblk else outblk);
    i := !i + take
  done;
  Bytes.unsafe_to_string out

let encrypt_cfb ~iv key pt = cfb_transform ~iv ~decrypt:false key pt
let decrypt_cfb ~iv key ct = cfb_transform ~iv ~decrypt:true key ct

let ofb_transform ~iv key input =
  let n = String.length input in
  let out = Bytes.create n in
  let reg = ref (check_iv iv) in
  let i = ref 0 in
  while !i < n do
    reg := encrypt_block key !reg;
    let take = min 8 (n - !i) in
    for j = 0 to take - 1 do
      let ks = Int64.to_int (Int64.shift_right_logical !reg (56 - (8 * j))) land 0xff in
      Bytes.set out (!i + j) (Char.chr (Char.code input.[!i + j] lxor ks))
    done;
    i := !i + take
  done;
  Bytes.unsafe_to_string out

let encrypt_ofb ~iv key pt = ofb_transform ~iv key pt
let decrypt_ofb ~iv key ct = ofb_transform ~iv key ct

let encrypt ~mode ~iv key pt =
  match mode with
  | Ecb -> encrypt_ecb ~confounder:iv key pt
  | Cbc -> encrypt_cbc ~iv key pt
  | Cfb -> encrypt_cfb ~iv key pt
  | Ofb -> encrypt_ofb ~iv key pt

let decrypt ~mode ~iv key ct =
  match mode with
  | Ecb -> decrypt_ecb ~confounder:iv key ct
  | Cbc -> decrypt_cbc ~iv key ct
  | Cfb -> decrypt_cfb ~iv key ct
  | Ofb -> decrypt_ofb ~iv key ct
