(** The fast table-driven DES kernel shared by {!Des}, {!Des3}, {!Mac} and
    {!Fused}.  E-expansion fused into 8×64 SP tables, byte-indexed IP/FP,
    sixteen unrolled rounds on untagged native [int] halves.  See
    DESIGN.md §6c "Cipher kernels" for the layout derivation; {!Des_ref}
    is the slow oracle this kernel is differentially tested against.

    This is a low-level internal module: blocks travel in caller-owned
    2-element scratch arrays and the load/store helpers skip bounds
    checks.  Callers (the mode loops in [Des]/[Des3]) validate ranges
    once per call. *)

val schedule : string -> int array * int array
(** [schedule key] expands an 8-byte key into [(encrypt, decrypt)]
    round-word arrays (32 ints each: two packed subkey words per round,
    decrypt order reversed).  Raises [Invalid_argument] unless the key is
    exactly 8 bytes.  Expansion costs ~16 bit-gather permutes — do it
    once per key and cache (the engine caches per flow). *)

val ip : int array -> unit
(** Initial permutation, in place: [io.(0)] (high word) and [io.(1)] (low
    word) become the post-IP (L0, R0) halves.  16 table lookups. *)

val fp : int array -> unit
(** Final permutation, inverse of {!ip}, same convention. *)

val rounds : int array -> int array -> unit
(** [rounds ks io] runs the sixteen Feistel rounds with the packed
    schedule [ks] (from {!schedule}).  Input: post-IP (L0, R0); output:
    FIPS preoutput (R16, L16).  Chaining [rounds] calls back-to-back
    composes full DES passes with interior FP/IP cancelled — how [Des3]
    does EDE3 under a single IP/FP pair. *)

val read32 : string -> int -> int
(** Big-endian 32-bit load; no bounds check. *)

val write32 : Bytes.t -> int -> int -> unit
(** Big-endian 32-bit store; no bounds check. *)

(** {1 FIPS permutation tables}

    1-based source-bit tables (FIPS 46 numbering, bit 1 = MSB), exported
    for {!Des_bitslice}: in the bitsliced domain every permutation is a
    pure renaming of bit-vector words, so the kernels share one table
    transcription instead of each risking its own typo. *)

val ip_table : int array
(** Initial permutation (64 entries). *)

val fp_table : int array
(** Final permutation, inverse of {!ip_table} (64 entries). *)

val p_table : int array
(** Round-function P permutation over the 32 S-box output bits. *)
