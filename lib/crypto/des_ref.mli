(** Reference DES: the original generic bit-gather kernel, retained as the
    differential-testing oracle for the fast table-driven kernel in
    {!Des_kernel}/{!Des}.  Bit-by-bit transliteration of FIPS 46/81 —
    slow, auditable, and never called from a hot path. *)

val block_size : int
val key_size : int

type key

val of_string : string -> key
(** 8 bytes; no weak-key check (the oracle accepts any key). *)

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64

type mode = Ecb | Cbc | Cfb | Ofb

val pad : string -> string
val unpad : string -> string
val encrypt_ecb : ?confounder:string -> key -> string -> string
val decrypt_ecb : ?confounder:string -> key -> string -> string
val encrypt_cbc : iv:string -> key -> string -> string
val decrypt_cbc : iv:string -> key -> string -> string
val encrypt_cfb : iv:string -> key -> string -> string
val decrypt_cfb : iv:string -> key -> string -> string
val encrypt_ofb : iv:string -> key -> string -> string
val decrypt_ofb : iv:string -> key -> string -> string
val encrypt : mode:mode -> iv:string -> key -> string -> string
val decrypt : mode:mode -> iv:string -> key -> string -> string
