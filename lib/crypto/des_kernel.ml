(* The fast DES kernel: table-driven, unboxed, shared by [Des], [Des3],
   [Mac] and [Fused].  Replaces the generic per-round bit-gather of the
   seed implementation ([Des_ref], retained as the differential-testing
   oracle) with the classic software-DES layout:

   - The E expansion is folded into the SP-table indexing.  A 32-bit round
     input [r] is rotated twice (right 1 for the odd S-boxes, left 3 for
     the even ones) so that each 6-bit E-group lands on a fixed shift
     (26/18/10/2) of one of the two rotated words; the per-round work is
     then two rotates, two subkey XORs and eight table lookups — no
     48-iteration permute.
   - Each SP table entry is the S-box output already pushed through the P
     permutation, so the round function is a pure OR of eight lookups.
   - IP and FP are byte-indexed: one precomputed table row per (input
     byte position, byte value), ORed over the eight input bytes — 16
     lookups per permutation instead of 64 single-bit gathers.
   - Everything runs on untagged native [int]s holding 32-bit halves; the
     only [Int64]s left are in the one-time key-schedule derivation.

   A block lives in a caller-provided 2-element scratch array [io]
   (io.(0) = high/left word, io.(1) = low/right word), so the mode loops
   in [Des]/[Des3] allocate nothing per block.  [rounds] maps the post-IP
   halves to the FIPS "preoutput" (R16, L16) — feeding its output straight
   back into [rounds] is exactly the FP-then-IP cancellation EDE3 needs,
   which is how [Des3] runs three passes with a single IP/FP pair.

   Subkey layout: two words per round.  Word [2i] carries the 6-bit
   subkey chunks for S1/S3/S5/S7 at shifts 26/18/10/2 (matching the
   rotate-right-1 word), word [2i+1] the chunks for S2/S4/S6/S8
   (matching rotate-left-3). *)

(* --- FIPS tables (1-based source bit positions, MSB first) --- *)

let ip_table =
  [| 58; 50; 42; 34; 26; 18; 10; 2; 60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6; 64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1; 59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5; 63; 55; 47; 39; 31; 23; 15; 7 |]

let fp_table =
  [| 40; 8; 48; 16; 56; 24; 64; 32; 39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30; 37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28; 35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26; 33; 1; 41;  9; 49; 17; 57; 25 |]

let p_table =
  [| 16;  7; 20; 21; 29; 12; 28; 17;  1; 15; 23; 26;  5; 18; 31; 10;
      2;  8; 24; 14; 32; 27;  3;  9; 19; 13; 30;  6; 22; 11;  4; 25 |]

let pc1_table =
  [| 57; 49; 41; 33; 25; 17;  9;  1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27; 19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;  7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29; 21; 13;  5; 28; 20; 12;  4 |]

let pc2_table =
  [| 14; 17; 11; 24;  1;  5;  3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8; 16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55; 30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53; 46; 42; 50; 36; 29; 32 |]

let key_shifts = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [| (* S1 *)
     [| 14;  4; 13;  1;  2; 15; 11;  8;  3; 10;  6; 12;  5;  9;  0;  7;
         0; 15;  7;  4; 14;  2; 13;  1; 10;  6; 12; 11;  9;  5;  3;  8;
         4;  1; 14;  8; 13;  6;  2; 11; 15; 12;  9;  7;  3; 10;  5;  0;
        15; 12;  8;  2;  4;  9;  1;  7;  5; 11;  3; 14; 10;  0;  6; 13 |];
     (* S2 *)
     [| 15;  1;  8; 14;  6; 11;  3;  4;  9;  7;  2; 13; 12;  0;  5; 10;
         3; 13;  4;  7; 15;  2;  8; 14; 12;  0;  1; 10;  6;  9; 11;  5;
         0; 14;  7; 11; 10;  4; 13;  1;  5;  8; 12;  6;  9;  3;  2; 15;
        13;  8; 10;  1;  3; 15;  4;  2; 11;  6;  7; 12;  0;  5; 14;  9 |];
     (* S3 *)
     [| 10;  0;  9; 14;  6;  3; 15;  5;  1; 13; 12;  7; 11;  4;  2;  8;
        13;  7;  0;  9;  3;  4;  6; 10;  2;  8;  5; 14; 12; 11; 15;  1;
        13;  6;  4;  9;  8; 15;  3;  0; 11;  1;  2; 12;  5; 10; 14;  7;
         1; 10; 13;  0;  6;  9;  8;  7;  4; 15; 14;  3; 11;  5;  2; 12 |];
     (* S4 *)
     [|  7; 13; 14;  3;  0;  6;  9; 10;  1;  2;  8;  5; 11; 12;  4; 15;
        13;  8; 11;  5;  6; 15;  0;  3;  4;  7;  2; 12;  1; 10; 14;  9;
        10;  6;  9;  0; 12; 11;  7; 13; 15;  1;  3; 14;  5;  2;  8;  4;
         3; 15;  0;  6; 10;  1; 13;  8;  9;  4;  5; 11; 12;  7;  2; 14 |];
     (* S5 *)
     [|  2; 12;  4;  1;  7; 10; 11;  6;  8;  5;  3; 15; 13;  0; 14;  9;
        14; 11;  2; 12;  4;  7; 13;  1;  5;  0; 15; 10;  3;  9;  8;  6;
         4;  2;  1; 11; 10; 13;  7;  8; 15;  9; 12;  5;  6;  3;  0; 14;
        11;  8; 12;  7;  1; 14;  2; 13;  6; 15;  0;  9; 10;  4;  5;  3 |];
     (* S6 *)
     [| 12;  1; 10; 15;  9;  2;  6;  8;  0; 13;  3;  4; 14;  7;  5; 11;
        10; 15;  4;  2;  7; 12;  9;  5;  6;  1; 13; 14;  0; 11;  3;  8;
         9; 14; 15;  5;  2;  8; 12;  3;  7;  0;  4; 10;  1; 13; 11;  6;
         4;  3;  2; 12;  9;  5; 15; 10; 11; 14;  1;  7;  6;  0;  8; 13 |];
     (* S7 *)
     [|  4; 11;  2; 14; 15;  0;  8; 13;  3; 12;  9;  7;  5; 10;  6;  1;
        13;  0; 11;  7;  4;  9;  1; 10; 14;  3;  5; 12;  2; 15;  8;  6;
         1;  4; 11; 13; 12;  3;  7; 14; 10; 15;  6;  8;  0;  5;  9;  2;
         6; 11; 13;  8;  1;  4; 10;  7;  9;  5;  0; 15; 14;  2;  3; 12 |];
     (* S8 *)
     [| 13;  2;  8;  4;  6; 15; 11;  1; 10;  9;  3; 14;  5;  0; 12;  7;
         1; 15; 13;  8; 10;  3;  7;  4; 12;  5;  6; 11;  0; 14;  9;  2;
         7; 11;  4;  1;  9; 12; 14;  2;  0;  6; 10; 13; 15;  3;  5;  8;
         2;  1; 14;  7;  4; 10;  8; 13; 15; 12;  9;  0;  3;  5;  6; 11 |] |]

(* Generic bit gather over int64, used only at table-construction and
   key-schedule time (never per block). *)
let permute (v : int64) ~width table =
  let out = ref 0L in
  let n = Array.length table in
  for i = 0 to n - 1 do
    let src = table.(i) in
    let bit = Int64.logand (Int64.shift_right_logical v (width - src)) 1L in
    out := Int64.logor (Int64.shift_left !out 1) bit
  done;
  !out

(* SP tables, one flat 64-entry int array per S-box: entry [six] is the
   P-permuted S-box output for the 6-bit E-group value [six] (row = bits
   1 and 6, column = bits 2-5, FIPS numbering). *)
let sp_table box =
  Array.init 64 (fun six ->
      let row = ((six lsr 4) land 2) lor (six land 1) in
      let col = (six lsr 1) land 0xf in
      let s = sboxes.(box).((row * 16) + col) in
      let word = Int64.of_int (s lsl (28 - (4 * box))) in
      Int64.to_int (permute word ~width:32 p_table))

let sp1 = sp_table 0
let sp2 = sp_table 1
let sp3 = sp_table 2
let sp4 = sp_table 3
let sp5 = sp_table 4
let sp6 = sp_table 5
let sp7 = sp_table 6
let sp8 = sp_table 7

(* Byte-indexed tables for a 64->64 permutation: row [p*256 + v] is the
   contribution of input byte [p] holding value [v] to the high (resp.
   low) 32-bit output word; a permutation is then the OR of eight rows
   per word.  Built once from the FIPS table by scattering each input
   bit to its output position. *)
let byte_tables table =
  let hi = Array.make (8 * 256) 0 and lo = Array.make (8 * 256) 0 in
  for i = 0 to 63 do
    let s = table.(i) - 1 in
    let p = s / 8 and bit = 7 - (s mod 8) in
    let out = if i < 32 then hi else lo in
    let mask = 1 lsl (if i < 32 then 31 - i else 63 - i) in
    for v = 0 to 255 do
      if (v lsr bit) land 1 = 1 then begin
        let idx = (p * 256) + v in
        out.(idx) <- out.(idx) lor mask
      end
    done
  done;
  (hi, lo)

let ip_hi, ip_lo = byte_tables ip_table
let fp_hi, fp_lo = byte_tables fp_table

(* OR of the eight byte rows of [tab] selected by the bytes of (hi, lo). *)
let[@inline] gather (tab : int array) hi lo =
  Array.unsafe_get tab ((hi lsr 24) land 0xff)
  lor Array.unsafe_get tab (256 + ((hi lsr 16) land 0xff))
  lor Array.unsafe_get tab (512 + ((hi lsr 8) land 0xff))
  lor Array.unsafe_get tab (768 + (hi land 0xff))
  lor Array.unsafe_get tab (1024 + ((lo lsr 24) land 0xff))
  lor Array.unsafe_get tab (1280 + ((lo lsr 16) land 0xff))
  lor Array.unsafe_get tab (1536 + ((lo lsr 8) land 0xff))
  lor Array.unsafe_get tab (1792 + (lo land 0xff))

let ip (io : int array) =
  let hi = Array.unsafe_get io 0 and lo = Array.unsafe_get io 1 in
  Array.unsafe_set io 0 (gather ip_hi hi lo);
  Array.unsafe_set io 1 (gather ip_lo hi lo)

let fp (io : int array) =
  let hi = Array.unsafe_get io 0 and lo = Array.unsafe_get io 1 in
  Array.unsafe_set io 0 (gather fp_hi hi lo);
  Array.unsafe_set io 1 (gather fp_lo hi lo)

(* The round function.  [r] is the 32-bit round input; [ka] covers the odd
   S-boxes (S1/S3/S5/S7, aligned with r rotated right by 1), [kb] the even
   ones (S2/S4/S6/S8, aligned with r rotated left by 3).  Each E-group
   sits at a fixed 6-bit field (shifts 26/18/10/2) of the rotated word. *)
let[@inline] feistel r ka kb =
  let a = (((r lsr 1) lor (r lsl 31)) land 0xffffffff) lxor ka in
  let b = (((r lsl 3) lor (r lsr 29)) land 0xffffffff) lxor kb in
  Array.unsafe_get sp1 ((a lsr 26) land 0x3f)
  lor Array.unsafe_get sp3 ((a lsr 18) land 0x3f)
  lor Array.unsafe_get sp5 ((a lsr 10) land 0x3f)
  lor Array.unsafe_get sp7 ((a lsr 2) land 0x3f)
  lor Array.unsafe_get sp2 ((b lsr 26) land 0x3f)
  lor Array.unsafe_get sp4 ((b lsr 18) land 0x3f)
  lor Array.unsafe_get sp6 ((b lsr 10) land 0x3f)
  lor Array.unsafe_get sp8 ((b lsr 2) land 0x3f)

(* The sixteen rounds, fully unrolled, two per step with the half-swap
   folded into the alternation (no per-round shuffle).  Input: io holds
   the post-IP halves (L0, R0); output: io holds the FIPS preoutput
   (R16, L16).  Because FP and IP are inverses, feeding the output of one
   [rounds] call directly into another composes complete DES passes with
   the interior FP/IP pairs cancelled — the EDE3 fast path. *)
let rounds (ks : int array) (io : int array) =
  let k i = Array.unsafe_get ks i in
  let l = Array.unsafe_get io 0 and r = Array.unsafe_get io 1 in
  let l = l lxor feistel r (k 0) (k 1) in
  let r = r lxor feistel l (k 2) (k 3) in
  let l = l lxor feistel r (k 4) (k 5) in
  let r = r lxor feistel l (k 6) (k 7) in
  let l = l lxor feistel r (k 8) (k 9) in
  let r = r lxor feistel l (k 10) (k 11) in
  let l = l lxor feistel r (k 12) (k 13) in
  let r = r lxor feistel l (k 14) (k 15) in
  let l = l lxor feistel r (k 16) (k 17) in
  let r = r lxor feistel l (k 18) (k 19) in
  let l = l lxor feistel r (k 20) (k 21) in
  let r = r lxor feistel l (k 22) (k 23) in
  let l = l lxor feistel r (k 24) (k 25) in
  let r = r lxor feistel l (k 26) (k 27) in
  let l = l lxor feistel r (k 28) (k 29) in
  let r = r lxor feistel l (k 30) (k 31) in
  Array.unsafe_set io 0 r;
  Array.unsafe_set io 1 l

(* Key schedule: PC-1/PC-2 via the generic gather (once per key — the
   engine caches the result per flow), then each 48-bit subkey packed
   into the two round words at the feistel shifts. *)
let schedule (key : string) : int array * int array =
  if String.length key <> 8 then invalid_arg "Des: key must be 8 bytes";
  let k64 = ref 0L in
  String.iter
    (fun c -> k64 := Int64.logor (Int64.shift_left !k64 8) (Int64.of_int (Char.code c)))
    key;
  let k56 = permute !k64 ~width:64 pc1_table in
  let c = ref (Int64.to_int (Int64.shift_right_logical k56 28)) in
  let d = ref (Int64.to_int (Int64.logand k56 0xfffffffL)) in
  let rot28 v n = ((v lsl n) lor (v lsr (28 - n))) land 0xfffffff in
  let ke = Array.make 32 0 in
  for round = 0 to 15 do
    let n = key_shifts.(round) in
    c := rot28 !c n;
    d := rot28 !d n;
    let cd = Int64.logor (Int64.shift_left (Int64.of_int !c) 28) (Int64.of_int !d) in
    let sk = permute cd ~width:56 pc2_table in
    let chunk j = Int64.to_int (Int64.shift_right_logical sk (42 - (6 * j))) land 0x3f in
    ke.(2 * round) <-
      (chunk 0 lsl 26) lor (chunk 2 lsl 18) lor (chunk 4 lsl 10) lor (chunk 6 lsl 2);
    ke.((2 * round) + 1) <-
      (chunk 1 lsl 26) lor (chunk 3 lsl 18) lor (chunk 5 lsl 10) lor (chunk 7 lsl 2)
  done;
  let kd = Array.make 32 0 in
  for round = 0 to 15 do
    kd.(2 * round) <- ke.(2 * (15 - round));
    kd.((2 * round) + 1) <- ke.((2 * (15 - round)) + 1)
  done;
  (ke, kd)

(* Big-endian 32-bit loads/stores for the mode loops, via the stdlib's
   word-at-a-time primitives (one load/store plus a byte swap; the
   intermediate [int32] never escapes the expression, so it stays
   unboxed even without flambda).  [Int32.to_int] sign-extends, hence
   the mask on the load. *)
let[@inline] read32 (s : string) pos =
  Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

let[@inline] write32 (b : Bytes.t) pos v =
  Bytes.set_int32_be b pos (Int32.of_int v)
