(* MD5 message digest (RFC 1321).

   The paper's implementation uses keyed MD5 (via CryptoLib) for the FBS MAC
   and as the flow-key derivation hash H.  This is a from-scratch streaming
   implementation; the round constants are computed from the sine definition
   in the RFC rather than transcribed, eliminating table-typo risk. *)

let digest_size = 16
let block_size = 64
let name = "md5"

(* K[i] = floor(2^32 * |sin(i+1)|), i = 0..63. *)
let k_table =
  lazy
    (Array.init 64 (fun i ->
         let v = abs_float (sin (float_of_int (i + 1))) *. 4294967296.0 in
         Int32.of_int (int_of_float v)))

let s_table =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

type ctx = {
  mutable a : int32;
  mutable b : int32;
  mutable c : int32;
  mutable d : int32;
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int64; (* bytes processed *)
}

let init () =
  {
    a = 0x67452301l;
    b = 0xefcdab89l;
    c = 0x98badcfel;
    d = 0x10325476l;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

let rotl32 x n =
  Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let word_le s off =
  let b i = Int32.of_int (Char.code (Bytes.get s (off + i))) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let compress ctx block off =
  let k = Lazy.force k_table in
  let m = Array.init 16 (fun i -> word_le block (off + (4 * i))) in
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then
        (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), i)
      else if i < 32 then
        (Int32.logor (Int32.logand !d !b) (Int32.logand (Int32.lognot !d) !c),
         ((5 * i) + 1) mod 16)
      else if i < 48 then (Int32.logxor !b (Int32.logxor !c !d), ((3 * i) + 5) mod 16)
      else (Int32.logxor !c (Int32.logor !b (Int32.lognot !d)), 7 * i mod 16)
    in
    let tmp = !d in
    d := !c;
    c := !b;
    let sum = Int32.add (Int32.add (Int32.add !a f) k.(i)) m.(g) in
    b := Int32.add !b (rotl32 sum s_table.(i));
    a := tmp
  done;
  ctx.a <- Int32.add ctx.a !a;
  ctx.b <- Int32.add ctx.b !b;
  ctx.c <- Int32.add ctx.c !c;
  ctx.d <- Int32.add ctx.d !d

let feed ctx s pos len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (block_size - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= block_size do
    (* Copy to the context buffer to reuse the Bytes-based compressor. *)
    Bytes.blit_string s !pos ctx.buf 0 block_size;
    compress ctx ctx.buf 0;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let update ctx s = feed ctx s 0 (String.length s)

let feed_slice ctx (s : Fbsr_util.Slice.t) =
  feed ctx s.Fbsr_util.Slice.base s.Fbsr_util.Slice.off s.Fbsr_util.Slice.len

let word_out b off (v : int32) =
  for i = 0 to 3 do
    Bytes.set b (off + i)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff))
  done

let final ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 8-byte little-endian bit length. *)
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bit_len (8 * i)) land 0xff))
  done;
  (* Careful: feeding the pad updates [total], but [bit_len] is captured. *)
  update ctx (Bytes.unsafe_to_string pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  word_out out 0 ctx.a;
  word_out out 4 ctx.b;
  word_out out 8 ctx.c;
  word_out out 12 ctx.d;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  final ctx

let hexdigest s = Fbsr_util.Hex.encode (digest s)
