(* The Data Encryption Standard (FIPS PUB 46) and its modes of operation
   (FIPS PUB 81).  The paper uses DES for data confidentiality; the
   confounder in the FBS header is the IV for CBC/CFB/OFB, and in ECB mode
   it is XORed with every plaintext block before encryption (Section 5.2).

   The block kernel lives in {!Des_kernel}: fused SP tables, byte-indexed
   IP/FP, sixteen unrolled rounds on untagged native [int] halves.  This
   module owns key handling (schedules, parity, weak keys) and the FIPS 81
   mode loops.  The mode loops keep a block in a single reused 2-element
   scratch array and load/store halves straight from the source/destination
   buffers, so steady-state encryption allocates nothing per block.  The
   original bit-gather implementation survives as {!Des_ref}, the
   differential-testing oracle. *)

exception Weak_key

let block_size = 8
let key_size = 8

(* A key is its expanded schedule, packed for the kernel: encrypt-order
   and decrypt-order round words.  Expansion happens once in [of_string];
   the engine additionally caches expanded keys per flow (TFKC/RFKC). *)
type key = { ke : int array; kd : int array }

let sched_e k = k.ke
let sched_d k = k.kd

let weak_keys =
  (* The four weak keys of FIPS 74, with standard odd parity. *)
  [ "0101010101010101"; "fefefefefefefefe"; "e0e0e0e0f1f1f1f1"; "1f1f1f1f0e0e0e0e" ]

let strip_parity key =
  (* Two keys differing only in parity bits are the same DES key. *)
  String.init (String.length key) (fun i -> Char.chr (Char.code key.[i] land 0xfe))

let is_weak_key key =
  let k = strip_parity key in
  List.exists (fun w -> strip_parity (Fbsr_util.Hex.decode w) = k) weak_keys

let of_string ?(check_weak = false) key =
  if String.length key <> key_size then invalid_arg "Des: key must be 8 bytes";
  if check_weak && is_weak_key key then raise Weak_key;
  let ke, kd = Des_kernel.schedule key in
  { ke; kd }

let adjust_parity key =
  String.init (String.length key) (fun i ->
      let b = Char.code key.[i] land 0xfe in
      let ones = ref 0 in
      for j = 1 to 7 do
        if (b lsr j) land 1 = 1 then incr ones
      done;
      Char.chr (b lor if !ones land 1 = 0 then 1 else 0))

(* One full DES pass over the scratch block. *)
let[@inline] crypt_io ks io =
  Des_kernel.ip io;
  Des_kernel.rounds ks io;
  Des_kernel.fp io

(* Byte [j] (0..7, MSB first) of the block held as two 32-bit halves. *)
let[@inline] blk_byte h l j =
  if j < 4 then (h lsr (24 - (8 * j))) land 0xff else (l lsr (56 - (8 * j))) land 0xff

(* --- Int64 block API (tests, oracles; not on the datagram path) --- *)

let crypt_block_i64 ks (block : int64) : int64 =
  let io = Array.make 2 0 in
  io.(0) <- Int64.to_int (Int64.shift_right_logical block 32);
  io.(1) <- Int64.to_int (Int64.logand block 0xffffffffL);
  crypt_io ks io;
  Int64.logor (Int64.shift_left (Int64.of_int io.(0)) 32) (Int64.of_int io.(1))

let encrypt_block key pt = crypt_block_i64 key.ke pt
let decrypt_block key ct = crypt_block_i64 key.kd ct

let block_of_string s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let block_to_bytes b off (v : int64) =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xff))
  done

let encrypt_block_bytes key (pt : string) : string =
  if String.length pt <> 8 then invalid_arg "Des.encrypt_block_bytes: need 8 bytes";
  let out = Bytes.create 8 in
  block_to_bytes out 0 (encrypt_block key (block_of_string pt 0));
  Bytes.unsafe_to_string out

let decrypt_block_bytes key (ct : string) : string =
  if String.length ct <> 8 then invalid_arg "Des.decrypt_block_bytes: need 8 bytes";
  let out = Bytes.create 8 in
  block_to_bytes out 0 (decrypt_block key (block_of_string ct 0));
  Bytes.unsafe_to_string out

(* --- Modes of operation (FIPS 81) --- *)

type mode = Ecb | Cbc | Cfb | Ofb

(* PKCS#7-style padding for the block modes; always adds at least one byte,
   so the unpadded length is unambiguous. *)
let pad s =
  let n = String.length s in
  let padding = 8 - (n mod 8) in
  s ^ String.make padding (Char.chr padding)

let unpad s =
  let n = String.length s in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des.unpad: bad length";
  let padding = Char.code s.[n - 1] in
  if padding < 1 || padding > 8 || padding > n then invalid_arg "Des.unpad: corrupt padding";
  for i = n - padding to n - 1 do
    if Char.code s.[i] <> padding then invalid_arg "Des.unpad: corrupt padding"
  done;
  String.sub s 0 (n - padding)

let check_iv iv = if String.length iv <> 8 then invalid_arg "Des: IV must be 8 bytes"

(* ECB with the paper's confounder whitening: the confounder (expanded to a
   64-bit block) is XORed with every plaintext block before encryption. *)
let encrypt_ecb ?(confounder = String.make 8 '\000') key pt =
  check_iv confounder;
  let cfh = Des_kernel.read32 confounder 0 and cfl = Des_kernel.read32 confounder 4 in
  let data = pad pt in
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  let io = Array.make 2 0 in
  for i = 0 to n - 1 do
    let pos = i * 8 in
    io.(0) <- Des_kernel.read32 data pos lxor cfh;
    io.(1) <- Des_kernel.read32 data (pos + 4) lxor cfl;
    crypt_io key.ke io;
    Des_kernel.write32 out pos io.(0);
    Des_kernel.write32 out (pos + 4) io.(1)
  done;
  Bytes.unsafe_to_string out

let decrypt_ecb ?(confounder = String.make 8 '\000') key ct =
  check_iv confounder;
  let cfh = Des_kernel.read32 confounder 0 and cfl = Des_kernel.read32 confounder 4 in
  let n = String.length ct in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des.decrypt_ecb: bad length";
  let out = Bytes.create n in
  let io = Array.make 2 0 in
  for i = 0 to (n / 8) - 1 do
    let pos = i * 8 in
    io.(0) <- Des_kernel.read32 ct pos;
    io.(1) <- Des_kernel.read32 ct (pos + 4);
    crypt_io key.kd io;
    Des_kernel.write32 out pos (io.(0) lxor cfh);
    Des_kernel.write32 out (pos + 4) (io.(1) lxor cfl)
  done;
  unpad (Bytes.unsafe_to_string out)

(* The CBC inner loop: encrypt [n] whole blocks of [src] starting at
   [src_pos] into [dst] at [dst_pos], chaining through [io]'s current
   contents (the previous ciphertext block or IV), leaving the last
   ciphertext block in [io].  Shared by the string, incremental and
   into-buffer entry points; no allocation, no bounds checks. *)
let cbc_blocks ks (io : int array) src src_pos n dst dst_pos =
  for i = 0 to n - 1 do
    let sp = src_pos + (i * 8) and dp = dst_pos + (i * 8) in
    io.(0) <- io.(0) lxor Des_kernel.read32 src sp;
    io.(1) <- io.(1) lxor Des_kernel.read32 src (sp + 4);
    crypt_io ks io;
    Des_kernel.write32 dst dp io.(0);
    Des_kernel.write32 dst (dp + 4) io.(1)
  done

let encrypt_cbc ~iv key pt =
  check_iv iv;
  let data = pad pt in
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  let io = Array.make 2 0 in
  io.(0) <- Des_kernel.read32 iv 0;
  io.(1) <- Des_kernel.read32 iv 4;
  cbc_blocks key.ke io data 0 n out 0;
  Bytes.unsafe_to_string out

let decrypt_cbc ~iv key ct =
  check_iv iv;
  let n = String.length ct in
  if n = 0 || n mod 8 <> 0 then invalid_arg "Des.decrypt_cbc: bad length";
  let out = Bytes.create n in
  let io = Array.make 2 0 in
  let ph = ref (Des_kernel.read32 iv 0) and pl = ref (Des_kernel.read32 iv 4) in
  for i = 0 to (n / 8) - 1 do
    let pos = i * 8 in
    let ch = Des_kernel.read32 ct pos and cl = Des_kernel.read32 ct (pos + 4) in
    io.(0) <- ch;
    io.(1) <- cl;
    crypt_io key.kd io;
    Des_kernel.write32 out pos (io.(0) lxor !ph);
    Des_kernel.write32 out (pos + 4) (io.(1) lxor !pl);
    ph := ch;
    pl := cl
  done;
  unpad (Bytes.unsafe_to_string out)

(* Ciphertext length of a padded-mode (CBC/ECB) encryption: the padding
   always adds 1-8 bytes, so the output is the next multiple of 8. *)
let padded_length n = n + 8 - (n mod 8)

(* Encrypt the final CBC block: the 0-7 leftover source bytes then PKCS#7
   padding bytes, chained through [io]. *)
let cbc_final_block ks (io : int array) src src_pos r dst dst_pos =
  let padding = 8 - r in
  let byte j = if j < r then Char.code (String.unsafe_get src (src_pos + j)) else padding in
  let bh = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  let bl = (byte 4 lsl 24) lor (byte 5 lsl 16) lor (byte 6 lsl 8) lor byte 7 in
  io.(0) <- io.(0) lxor bh;
  io.(1) <- io.(1) lxor bl;
  crypt_io ks io;
  Des_kernel.write32 dst dst_pos io.(0);
  Des_kernel.write32 dst (dst_pos + 4) io.(1)

(* CBC encryption from a sub-range of [src] directly into [dst] — the
   one-allocation seal path builds the wire buffer and encrypts into it,
   with the PKCS#7 padding applied on the fly instead of via an
   intermediate padded copy.  Byte-identical to
   [encrypt_cbc ~iv key (String.sub src src_pos src_len)]. *)
let encrypt_cbc_into ~iv key ~src ~src_pos ~src_len ~dst ~dst_pos =
  if src_pos < 0 || src_len < 0 || src_pos > String.length src - src_len then
    invalid_arg "Des.encrypt_cbc_into: bad source range";
  let out_len = padded_length src_len in
  if dst_pos < 0 || dst_pos > Bytes.length dst - out_len then
    invalid_arg "Des.encrypt_cbc_into: destination too short";
  check_iv iv;
  let io = Array.make 2 0 in
  io.(0) <- Des_kernel.read32 iv 0;
  io.(1) <- Des_kernel.read32 iv 4;
  let whole = src_len land lnot 7 in
  cbc_blocks key.ke io src src_pos (whole / 8) dst dst_pos;
  cbc_final_block key.ke io src (src_pos + whole) (src_len - whole) dst (dst_pos + whole);
  out_len

(* CBC decryption of a sub-range without copying the ciphertext out of
   its surrounding buffer first, allocating only the exact plaintext.
   CBC decryption is position-independent (each block needs only its
   ciphertext predecessor), so the last block is decrypted first to
   learn the padding length, then the output is sized exactly. *)
let decrypt_cbc_sub ~iv key ~src ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length src - len then
    invalid_arg "Des.decrypt_cbc_sub: bad source range";
  if len = 0 || len mod 8 <> 0 then invalid_arg "Des.decrypt_cbc_sub: bad length";
  check_iv iv;
  let ivh = Des_kernel.read32 iv 0 and ivl = Des_kernel.read32 iv 4 in
  let n = len / 8 in
  let io = Array.make 2 0 in
  let lp_pos = pos + ((n - 2) * 8) in
  let lph = if n = 1 then ivh else Des_kernel.read32 src lp_pos in
  let lpl = if n = 1 then ivl else Des_kernel.read32 src (lp_pos + 4) in
  io.(0) <- Des_kernel.read32 src (pos + ((n - 1) * 8));
  io.(1) <- Des_kernel.read32 src (pos + ((n - 1) * 8) + 4);
  crypt_io key.kd io;
  let lh = io.(0) lxor lph and ll = io.(1) lxor lpl in
  let padding = ll land 0xff in
  if padding < 1 || padding > 8 then invalid_arg "Des.decrypt_cbc_sub: corrupt padding";
  for j = 8 - padding to 7 do
    if blk_byte lh ll j <> padding then invalid_arg "Des.decrypt_cbc_sub: corrupt padding"
  done;
  let out = Bytes.create (len - padding) in
  let ph = ref ivh and pl = ref ivl in
  for i = 0 to n - 2 do
    let sp = pos + (i * 8) in
    let ch = Des_kernel.read32 src sp and cl = Des_kernel.read32 src (sp + 4) in
    io.(0) <- ch;
    io.(1) <- cl;
    crypt_io key.kd io;
    Des_kernel.write32 out (i * 8) (io.(0) lxor !ph);
    Des_kernel.write32 out ((i * 8) + 4) (io.(1) lxor !pl);
    ph := ch;
    pl := cl
  done;
  for j = 0 to 7 - padding do
    Bytes.set out (((n - 1) * 8) + j) (Char.chr (blk_byte lh ll j))
  done;
  Bytes.unsafe_to_string out

(* Incremental CBC: lets callers interleave encryption with other
   data-touching work (Section 5.3 of the paper: "the MAC computation and
   encryption should be rolled into one loop").  Feed whole blocks with
   [cbc_update]; [cbc_finish] pads the tail.  The chaining block lives in
   the context's scratch array, so whole-block updates do not box. *)

type cbc_ctx = { cbc_key : key; chain : int array; tail : Buffer.t }

let cbc_init ~iv key =
  check_iv iv;
  let chain = Array.make 2 0 in
  chain.(0) <- Des_kernel.read32 iv 0;
  chain.(1) <- Des_kernel.read32 iv 4;
  { cbc_key = key; chain; tail = Buffer.create 8 }

let cbc_encrypt_blocks ctx data =
  (* data length must be a multiple of 8 *)
  let n = String.length data / 8 in
  let out = Bytes.create (n * 8) in
  cbc_blocks ctx.cbc_key.ke ctx.chain data 0 n out 0;
  Bytes.unsafe_to_string out

let cbc_update ctx data =
  Buffer.add_string ctx.tail data;
  let buffered = Buffer.contents ctx.tail in
  let whole = String.length buffered land lnot 7 in
  if whole = 0 then ""
  else begin
    Buffer.clear ctx.tail;
    Buffer.add_substring ctx.tail buffered whole (String.length buffered - whole);
    cbc_encrypt_blocks ctx (String.sub buffered 0 whole)
  end

let cbc_finish ctx =
  let rest = Buffer.contents ctx.tail in
  Buffer.clear ctx.tail;
  let r = String.length rest in
  let out = Bytes.create 8 in
  cbc_final_block ctx.cbc_key.ke ctx.chain rest 0 r out 0;
  Bytes.unsafe_to_string out

(* Zero-allocation incremental CBC over whole blocks straight into a
   caller buffer — the [Fused] single-pass MAC+encrypt loop.  [chain] is
   a 2-element scratch holding the running ciphertext block (seed it with
   [cbc_seed_chain]); [cbc_blocks_into] consumes [nblocks] whole blocks,
   [cbc_tail_into] the final 0-7 leftover bytes plus padding (writes
   exactly one block). *)

let cbc_seed_chain ~iv chain =
  check_iv iv;
  chain.(0) <- Des_kernel.read32 iv 0;
  chain.(1) <- Des_kernel.read32 iv 4

let cbc_blocks_into key chain ~src ~src_pos ~nblocks ~dst ~dst_pos =
  if src_pos < 0 || nblocks < 0 || src_pos > String.length src - (nblocks * 8) then
    invalid_arg "Des.cbc_blocks_into: bad source range";
  if dst_pos < 0 || dst_pos > Bytes.length dst - (nblocks * 8) then
    invalid_arg "Des.cbc_blocks_into: destination too short";
  cbc_blocks key.ke chain src src_pos nblocks dst dst_pos

let cbc_tail_into key chain ~src ~src_pos ~src_len ~dst ~dst_pos =
  if src_pos < 0 || src_len < 0 || src_len > 7 || src_pos > String.length src - src_len
  then invalid_arg "Des.cbc_tail_into: bad source range";
  if dst_pos < 0 || dst_pos > Bytes.length dst - 8 then
    invalid_arg "Des.cbc_tail_into: destination too short";
  cbc_final_block key.ke chain src src_pos src_len dst dst_pos

(* Full-block (64-bit) CFB; stream-mode, no padding needed. *)
let cfb_transform ~iv ~decrypt key input =
  check_iv iv;
  let n = String.length input in
  let out = Bytes.create n in
  let io = Array.make 2 0 in
  let sh = ref (Des_kernel.read32 iv 0) and sl = ref (Des_kernel.read32 iv 4) in
  let i = ref 0 in
  while !i < n do
    io.(0) <- !sh;
    io.(1) <- !sl;
    crypt_io key.ke io;
    let take = min 8 (n - !i) in
    (* Gather the input block, a short final block aligned to the top. *)
    let bh = ref 0 and bl = ref 0 in
    for j = 0 to take - 1 do
      let c = Char.code input.[!i + j] in
      if j < 4 then bh := !bh lor (c lsl (24 - (8 * j)))
      else bl := !bl lor (c lsl (56 - (8 * j)))
    done;
    let oh = !bh lxor io.(0) and ol = !bl lxor io.(1) in
    for j = 0 to take - 1 do
      Bytes.set out (!i + j) (Char.chr (blk_byte oh ol j))
    done;
    (* Feedback is the ciphertext block. *)
    if decrypt then begin
      sh := !bh;
      sl := !bl
    end
    else begin
      sh := oh;
      sl := ol
    end;
    i := !i + take
  done;
  Bytes.unsafe_to_string out

let encrypt_cfb ~iv key pt = cfb_transform ~iv ~decrypt:false key pt
let decrypt_cfb ~iv key ct = cfb_transform ~iv ~decrypt:true key ct

(* OFB: keystream independent of the data, encrypt = decrypt. *)
let ofb_transform ~iv key input =
  check_iv iv;
  let n = String.length input in
  let out = Bytes.create n in
  let io = Array.make 2 0 in
  io.(0) <- Des_kernel.read32 iv 0;
  io.(1) <- Des_kernel.read32 iv 4;
  let i = ref 0 in
  while !i < n do
    crypt_io key.ke io;
    let take = min 8 (n - !i) in
    for j = 0 to take - 1 do
      let ks = blk_byte io.(0) io.(1) j in
      Bytes.set out (!i + j) (Char.chr (Char.code input.[!i + j] lxor ks))
    done;
    i := !i + take
  done;
  Bytes.unsafe_to_string out

let encrypt_ofb ~iv key pt = ofb_transform ~iv key pt
let decrypt_ofb ~iv key ct = ofb_transform ~iv key ct

let encrypt ~mode ~iv key pt =
  match mode with
  | Ecb -> encrypt_ecb ~confounder:iv key pt
  | Cbc -> encrypt_cbc ~iv key pt
  | Cfb -> encrypt_cfb ~iv key pt
  | Ofb -> encrypt_ofb ~iv key pt

let decrypt ~mode ~iv key ct =
  match mode with
  | Ecb -> decrypt_ecb ~confounder:iv key ct
  | Cbc -> decrypt_cbc ~iv key ct
  | Cfb -> decrypt_cfb ~iv key ct
  | Ofb -> decrypt_ofb ~iv key ct
