(* MD5 reference implementation — the pre-kernel-rewrite [Md5], kept
   verbatim as the differential oracle for the unrolled compression
   kernel (the same retained-oracle pattern as [Des_ref]).  Not on any
   datapath: test/test_crypto.ml pins [Md5] to this module over KATs and
   QCheck-generated ragged inputs. *)

let digest_size = 16
let block_size = 64
let name = "md5"

(* K[i] = floor(2^32 * |sin(i+1)|), i = 0..63.  Held as native ints: the
   whole compression runs on the native [int] with arithmetic masked to
   32 bits, which keeps every word immediate (an [int32] pipeline boxes
   each intermediate without flambda and costs ~3x). *)
let k_table =
  Array.init 64 (fun i ->
      let v = abs_float (sin (float_of_int (i + 1))) *. 4294967296.0 in
      int_of_float v)

type ctx = {
  mutable a : int; (* chaining words, 32-bit values in native ints *)
  mutable b : int;
  mutable c : int;
  mutable d : int;
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int64; (* bytes processed *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
  }

(* Independent snapshot of a streaming context: the midstate cache
   resumes MAC computations from a copy, leaving the original pristine. *)
let copy t = { t with buf = Bytes.copy t.buf }

let mask = 0xFFFFFFFF

(* Message-schedule and round-state scratch.  [compress] runs to
   completion before returning, so one scratch per *domain* is safe —
   module-global scratch would race when shard domains MAC concurrently,
   so each domain lazily gets its own pair (a plain cell on 4.14).  The
   round state lands in [sst] instead of a returned tuple (which would
   box); both arrays are threaded through the quad chain as arguments so
   the domain-local lookup happens once per block. *)
type scratch = { sm : int array; sst : int array }

let scratch =
  Fbsr_util.Domain_shim.local_make (fun () ->
      { sm = Array.make 16 0; sst = Array.make 4 0 })

(* One round = four quad iterations; each quad is four steps with the
   (a, b, c, d) rotation as static renaming, shift counts as literals,
   and the state carried in function arguments so it lives in registers
   (a [ref] pipeline pays a store-to-load forward on the serial chain
   every step).

   Masking is deferred: the state words carry garbage above bit 31
   between steps.  That is sound because [land]/[lor]/[lxor]/[lnot]
   are bitwise and addition only carries upward, so the low 32 bits of
   every expression here are always exact; the one operation that
   would smear high bits downward — the [lsr] half of the rotate — is
   fed the explicitly masked [s0..s3].  The final state is masked once
   in [compress].  This takes two serial ops per step off the
   dependency chain, which is the whole cost of MD5. *)
let rec quad1 m st i a b c d =
  if i = 16 then quad2 m st 16 a b c d
  else begin
    let k = k_table in
    let s0 =
      (a + ((b land c) lor (lnot b land d))
      + Array.unsafe_get k i + Array.unsafe_get m i)
      land mask
    in
    let a = b + ((s0 lsl 7) lor (s0 lsr 25)) in
    let s1 =
      (d + ((a land b) lor (lnot a land c))
      + Array.unsafe_get k (i + 1) + Array.unsafe_get m (i + 1))
      land mask
    in
    let d = a + ((s1 lsl 12) lor (s1 lsr 20)) in
    let s2 =
      (c + ((d land a) lor (lnot d land b))
      + Array.unsafe_get k (i + 2) + Array.unsafe_get m (i + 2))
      land mask
    in
    let c = d + ((s2 lsl 17) lor (s2 lsr 15)) in
    let s3 =
      (b + ((c land d) lor (lnot c land a))
      + Array.unsafe_get k (i + 3) + Array.unsafe_get m (i + 3))
      land mask
    in
    let b = c + ((s3 lsl 22) lor (s3 lsr 10)) in
    quad1 m st (i + 4) a b c d
  end

and quad2 m st i a b c d =
  if i = 32 then quad3 m st 32 a b c d
  else begin
    let k = k_table in
    let g = ((5 * i) + 1) land 15 in
    let s0 =
      (a + ((d land b) lor (lnot d land c))
      + Array.unsafe_get k i + Array.unsafe_get m g)
      land mask
    in
    let a = b + ((s0 lsl 5) lor (s0 lsr 27)) in
    let s1 =
      (d + ((c land a) lor (lnot c land b))
      + Array.unsafe_get k (i + 1) + Array.unsafe_get m ((g + 5) land 15))
      land mask
    in
    let d = a + ((s1 lsl 9) lor (s1 lsr 23)) in
    let s2 =
      (c + ((b land d) lor (lnot b land a))
      + Array.unsafe_get k (i + 2) + Array.unsafe_get m ((g + 10) land 15))
      land mask
    in
    let c = d + ((s2 lsl 14) lor (s2 lsr 18)) in
    let s3 =
      (b + ((a land c) lor (lnot a land d))
      + Array.unsafe_get k (i + 3) + Array.unsafe_get m ((g + 15) land 15))
      land mask
    in
    let b = c + ((s3 lsl 20) lor (s3 lsr 12)) in
    quad2 m st (i + 4) a b c d
  end

and quad3 m st i a b c d =
  if i = 48 then quad4 m st 48 a b c d
  else begin
    let k = k_table in
    let g = ((3 * i) + 5) land 15 in
    let s0 =
      (a + (b lxor c lxor d)
      + Array.unsafe_get k i + Array.unsafe_get m g)
      land mask
    in
    let a = b + ((s0 lsl 4) lor (s0 lsr 28)) in
    let s1 =
      (d + (a lxor b lxor c)
      + Array.unsafe_get k (i + 1) + Array.unsafe_get m ((g + 3) land 15))
      land mask
    in
    let d = a + ((s1 lsl 11) lor (s1 lsr 21)) in
    let s2 =
      (c + (d lxor a lxor b)
      + Array.unsafe_get k (i + 2) + Array.unsafe_get m ((g + 6) land 15))
      land mask
    in
    let c = d + ((s2 lsl 16) lor (s2 lsr 16)) in
    let s3 =
      (b + (c lxor d lxor a)
      + Array.unsafe_get k (i + 3) + Array.unsafe_get m ((g + 9) land 15))
      land mask
    in
    let b = c + ((s3 lsl 23) lor (s3 lsr 9)) in
    quad3 m st (i + 4) a b c d
  end

and quad4 m st i a b c d =
  if i = 64 then begin
    Array.unsafe_set st 0 a;
    Array.unsafe_set st 1 b;
    Array.unsafe_set st 2 c;
    Array.unsafe_set st 3 d
  end
  else begin
    let k = k_table in
    let g = 7 * i land 15 in
    let s0 =
      (a + (c lxor (b lor lnot d))
      + Array.unsafe_get k i + Array.unsafe_get m g)
      land mask
    in
    let a = b + ((s0 lsl 6) lor (s0 lsr 26)) in
    let s1 =
      (d + (b lxor (a lor lnot c))
      + Array.unsafe_get k (i + 1) + Array.unsafe_get m ((g + 7) land 15))
      land mask
    in
    let d = a + ((s1 lsl 10) lor (s1 lsr 22)) in
    let s2 =
      (c + (a lxor (d lor lnot b))
      + Array.unsafe_get k (i + 2) + Array.unsafe_get m ((g + 14) land 15))
      land mask
    in
    let c = d + ((s2 lsl 15) lor (s2 lsr 17)) in
    let s3 =
      (b + (d lxor (c lor lnot a))
      + Array.unsafe_get k (i + 3) + Array.unsafe_get m ((g + 21) land 15))
      land mask
    in
    let b = c + ((s3 lsl 21) lor (s3 lsr 11)) in
    quad4 m st (i + 4) a b c d
  end

let compress ctx block off =
  let { sm = m; sst = st } = Fbsr_util.Domain_shim.local_get scratch in
  for i = 0 to 15 do
    Array.unsafe_set m i
      (Int32.to_int (Bytes.get_int32_le block (off + (4 * i))) land mask)
  done;
  quad1 m st 0 ctx.a ctx.b ctx.c ctx.d;
  ctx.a <- (ctx.a + Array.unsafe_get st 0) land mask;
  ctx.b <- (ctx.b + Array.unsafe_get st 1) land mask;
  ctx.c <- (ctx.c + Array.unsafe_get st 2) land mask;
  ctx.d <- (ctx.d + Array.unsafe_get st 3) land mask

let feed ctx s pos len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (block_size - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= block_size do
    (* Copy to the context buffer to reuse the Bytes-based compressor. *)
    Bytes.blit_string s !pos ctx.buf 0 block_size;
    compress ctx ctx.buf 0;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let update ctx s = feed ctx s 0 (String.length s)

let feed_slice ctx (s : Fbsr_util.Slice.t) =
  feed ctx s.Fbsr_util.Slice.base s.Fbsr_util.Slice.off s.Fbsr_util.Slice.len

let word_out b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let final ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 8-byte little-endian bit length. *)
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bit_len (8 * i)) land 0xff))
  done;
  (* Careful: feeding the pad updates [total], but [bit_len] is captured. *)
  update ctx (Bytes.unsafe_to_string pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  word_out out 0 ctx.a;
  word_out out 4 ctx.b;
  word_out out 8 ctx.c;
  word_out out 12 ctx.d;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  final ctx

let hexdigest s = Fbsr_util.Hex.encode (digest s)
