(** Run-time-selectable hash functions (for the FBS algorithm-suite field). *)

module type S = sig
  val name : string
  val digest_size : int
  val block_size : int

  type ctx

  val init : unit -> ctx
  val update : ctx -> string -> unit
  val feed : ctx -> string -> int -> int -> unit

  val feed_slice : ctx -> Fbsr_util.Slice.t -> unit
  (** Streaming input from a borrowed byte view — no copy. *)

  val final : ctx -> string
  val digest : string -> string
  val digest_list : string list -> string
end

type t = (module S)

val md5 : t
val sha1 : t

val name : t -> string
val digest_size : t -> int
val digest : t -> string -> string
val digest_list : t -> string list -> string

val digest_slices : t -> Fbsr_util.Slice.t list -> string
(** Digest of the concatenation of the slice parts, with zero
    concatenation or copying (streams each part through [feed_slice]). *)

val of_name : string -> t
(** @raise Invalid_argument on unknown names. *)
