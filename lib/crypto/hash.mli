(** Run-time-selectable hash functions (for the FBS algorithm-suite field). *)

module type S = sig
  val name : string
  val digest_size : int
  val block_size : int

  type ctx

  val init : unit -> ctx

  val copy : ctx -> ctx
  (** Independent snapshot of a streaming context. *)

  val update : ctx -> string -> unit
  val feed : ctx -> string -> int -> int -> unit

  val feed_slice : ctx -> Fbsr_util.Slice.t -> unit
  (** Streaming input from a borrowed byte view — no copy. *)

  val final : ctx -> string
  val digest : string -> string
  val digest_list : string list -> string
end

type t = (module S)

val md5 : t
val sha1 : t

val name : t -> string
val digest_size : t -> int
val digest : t -> string -> string
val digest_list : t -> string list -> string

val digest_slices : t -> Fbsr_util.Slice.t list -> string
(** Digest of the concatenation of the slice parts, with zero
    concatenation or copying (streams each part through [feed_slice]). *)

val of_name : string -> t
(** @raise Invalid_argument on unknown names. *)

(** {1 Midstates}

    A midstate freezes a streaming context — typically the compression
    state after absorbing a keyed prefix — so per-message digests resume
    from it instead of re-absorbing the prefix.  Absorption cost is paid
    once at construction; each resume pays only a small context copy. *)

type midstate

val midstate : t -> prefix:string -> midstate
(** The frozen state of [t] after absorbing [prefix]. *)

val midstate_hash : midstate -> t
(** The hash the midstate was built over. *)

val resume_slices : midstate -> Fbsr_util.Slice.t list -> string
(** [resume_slices m parts] = [digest_slices h (prefix-as-slice :: parts)]
    for the [h] and [prefix] the midstate froze — byte-identical, without
    re-absorbing the prefix.  The midstate itself is not consumed: any
    number of resumes may follow, in any order. *)

val resume_list : midstate -> string list -> string
(** String-parts flavour of {!resume_slices}. *)
