(** Hash-counter keystream cipher: block [i] of the keystream is
    [H(key | iv | be32 i)], XORed over the data — length-preserving,
    self-inverse (encrypt = decrypt), and built entirely from the hash
    primitives already in the suite descriptor, so a non-DES
    confidentiality suite needs no new block-cipher core.

    The key absorption is frozen once per instance as a {!Hash.midstate}
    (the same per-flow precomputation trick the MAC path uses), so each
    keystream block costs one midstate resume over 12 counter bytes.

    Security note: this is the classic hash-CTR construction (cf. the
    CryptoLib era the paper draws from) — fine for the repository's
    measurement purposes, not an argument against a real AEAD. *)

type t

val create : Hash.t -> key:string -> t
(** Freeze the key absorption for [H]. *)

val block_size : t -> int
(** Keystream bytes per counter block ([H]'s digest size). *)

val transform_into :
  t ->
  iv:string ->
  src:string ->
  src_pos:int ->
  src_len:int ->
  dst:Bytes.t ->
  dst_pos:int ->
  unit
(** XOR [src[src_pos..src_pos+src_len)] with the keystream into
    [dst[dst_pos..)], counter starting at 0.  Self-inverse.  [iv] must
    be 8 bytes (the duplicated-confounder IV).
    @raise Invalid_argument on bad ranges or IV length. *)

val transform : t -> iv:string -> string -> string
(** Whole-string convenience (used by the string-based reference path). *)
