(** Hundreds of concurrent ACK-clocked bulk transfers between one pair of
    FBS hosts across a shared lossy segment — the closed-loop stress test
    for the Reno-style {!Fbsr_netsim.Minitcp} riding on the secured
    datapath.

    Every connection sends a deterministic per-connection payload and the
    receiver's bytes are compared against it, so [ok] means 100%%
    delivered-byte integrity on every transfer (not merely the right
    byte counts), with every client connection fully closed.  The CLI
    wrapper turns [ok = false] into a non-zero exit, which is what the
    bench-smoke CI probe gates on. *)

type conn_row = {
  index : int;
  bytes_expected : int;
  bytes_received : int;
  intact : bool;  (** received bytes equal the expected payload *)
  closed : bool;  (** client side reached Closed *)
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  cwnd : int;  (** final congestion window, bytes *)
  ssthresh : int;  (** final slow-start threshold, bytes *)
  segments_out : int;
}

type result = {
  transfers : int;
  bytes_per_transfer : int;
  loss : float;  (** per-frame drop probability on every host's egress *)
  seed : int;
  suite : string;
  elapsed_s : float;  (** simulated seconds until the last client close *)
  delivered_bytes : int;
  goodput_bps : float;  (** delivered payload bits over simulated time *)
  link_offered : int;
  link_dropped : int;
  total_retransmits : int;
  total_fast_retransmits : int;
  total_timeouts : int;
  rows : conn_row list;
  failures : string list;  (** violated invariants; empty iff [ok] *)
  ok : bool;
  timeseries : Fbsr_util.Timeseries.t;
      (** flight recorder over the site registry
          ({!Fbsr_util.Timeseries.none} unless [telemetry_cadence]) *)
  health : Fbsr_fbs.Health.t;
      (** rule monitor over [timeseries] ({!Fbsr_fbs.Health.none} unless
          [telemetry_cadence]) *)
}

val run :
  ?transfers:int ->
  ?bytes_per_transfer:int ->
  ?loss:float ->
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?telemetry_cadence:float ->
  unit ->
  result
(** Defaults: 200 transfers of 32 KiB each, 1%% frame loss,
    the paper's MD5/DES suite securing every datagram.
    [telemetry_cadence] arms the flight recorder + health monitor at
    that many simulated seconds per snapshot.
    @raise Invalid_argument if [transfers] or [bytes_per_transfer] < 1. *)

val to_json : result -> Fbsr_util.Json.t
(** The fbsr-transfers/1 document: run parameters, aggregate delivery and
    retransmission statistics, and one row per connection. *)

val report :
  ?transfers:int ->
  ?bytes_per_transfer:int ->
  ?loss:float ->
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?telemetry:bool ->
  ?json:string ->
  unit ->
  result
(** {!run}, print a human summary, optionally write {!to_json} to [json].
    [telemetry] (default off) runs with a 1 s telemetry cadence and adds
    the health verdicts to the printout and a [telemetry] member to the
    artifact. *)
