(** Shared engine-pair fixture for benchmarks and ablations: two FBS
    engines wired to a synchronous in-process certificate authority — the
    common setup bench/main.ml and the experiment harness both need. *)

type t = {
  src : Fbsr_fbs.Principal.t;
  dst : Fbsr_fbs.Principal.t;
  sender : Fbsr_fbs.Engine.t;
  receiver : Fbsr_fbs.Engine.t;
}

val mtu_payload : string
(** An MTU-sized (1460-byte) payload. *)

val engine_pair :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?replay_window_minutes:int ->
  ?strict_replay:bool ->
  ?src:string ->
  ?dst:string ->
  ?spans:Fbsr_util.Span.t ->
  ?flowstats:(unit -> Fbsr_fbs.Flowstats.t) ->
  unit ->
  t
(** Enroll both principals with a fresh 512-bit authority over the fast
    61-bit test group and build one engine per side.  Deterministic in
    [seed].  [spans] (default disabled) is shared by both engines;
    [flowstats] (default disabled) builds each engine's own heavy-hitter
    sketch set — called once per engine, sender first. *)

type sharded = {
  sh_src : Fbsr_fbs.Principal.t;
  sh_dst : Fbsr_fbs.Principal.t;
  tx : Fbsr_fbs.Sharded.t;  (** sender side *)
  rx : Fbsr_fbs.Sharded.t;  (** receiver side *)
}

val sharded_pair :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?nshards:int ->
  ?fst_bits:int ->
  ?fam_threshold:float ->
  ?replay_window_minutes:int ->
  ?strict_replay:bool ->
  ?src:string ->
  ?dst:string ->
  ?spans:(int -> Fbsr_util.Span.t) ->
  ?flowstats:(int -> Fbsr_fbs.Flowstats.t) ->
  unit ->
  sharded
(** The sharded sibling of {!engine_pair}: one authority and two
    principals, each side a {!Fbsr_fbs.Sharded.t} whose per-shard
    engines share nothing (own keying over the shared CA, own caches,
    span recorder via [spans shard] and heavy-hitter sketches via
    [flowstats shard] — both default disabled).  Shard masters
    are pre-derived synchronously, so no shard domain ever runs DH.
    [fst_bits] sizes the sender dispatcher's FST at [2^fst_bits]
    entries (default 8 — raise it for million-flow workloads);
    [fam_threshold] overrides its idle-timeout THRESHOLD (the sweeper
    study's knob).
    Deterministic in [seed] for a fixed shard count.
    @raise Failure if master derivation fails. *)

val warm_pair :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?secret:bool ->
  ?payload:string ->
  unit ->
  t * Fbsr_fbs.Fam.attrs * string
(** {!engine_pair} plus one send/receive round trip at [now = 60.0] so
    every cache is warm; returns the pair, the attrs used, and the wire
    bytes of the warm-up datagram (for receive-side benchmarks).
    @raise Failure if the warm-up round trip fails. *)

val warm_flows :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?secret:bool ->
  ?payload:string ->
  ?flows:int ->
  ?spans:Fbsr_util.Span.t ->
  ?flowstats:(unit -> Fbsr_fbs.Flowstats.t) ->
  unit ->
  t * Fbsr_fbs.Fam.attrs array
(** {!engine_pair} plus one send/receive round trip per flow — [flows]
    (default {!Fbsr_crypto.Des_bitslice.lanes}) five-tuple flows differing
    only in source port — so the sender's TFKC holds that many warm
    entries.  The setup for cross-flow batched sealing.  [spans] and
    [flowstats] are forwarded to {!engine_pair}.
    @raise Failure if any warm-up round trip fails. *)
