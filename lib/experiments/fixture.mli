(** Shared engine-pair fixture for benchmarks and ablations: two FBS
    engines wired to a synchronous in-process certificate authority — the
    common setup bench/main.ml and the experiment harness both need. *)

type t = {
  src : Fbsr_fbs.Principal.t;
  dst : Fbsr_fbs.Principal.t;
  sender : Fbsr_fbs.Engine.t;
  receiver : Fbsr_fbs.Engine.t;
}

val mtu_payload : string
(** An MTU-sized (1460-byte) payload. *)

val engine_pair :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?replay_window_minutes:int ->
  ?strict_replay:bool ->
  ?src:string ->
  ?dst:string ->
  ?spans:Fbsr_util.Span.t ->
  unit ->
  t
(** Enroll both principals with a fresh 512-bit authority over the fast
    61-bit test group and build one engine per side.  Deterministic in
    [seed].  [spans] (default disabled) is shared by both engines. *)

val warm_pair :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?secret:bool ->
  ?payload:string ->
  unit ->
  t * Fbsr_fbs.Fam.attrs * string
(** {!engine_pair} plus one send/receive round trip at [now = 60.0] so
    every cache is warm; returns the pair, the attrs used, and the wire
    bytes of the warm-up datagram (for receive-side benchmarks).
    @raise Failure if the warm-up round trip fails. *)

val warm_flows :
  ?seed:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?secret:bool ->
  ?payload:string ->
  ?flows:int ->
  ?spans:Fbsr_util.Span.t ->
  unit ->
  t * Fbsr_fbs.Fam.attrs array
(** {!engine_pair} plus one send/receive round trip per flow — [flows]
    (default {!Fbsr_crypto.Des_bitslice.lanes}) five-tuple flows differing
    only in source port — so the sender's TFKC holds that many warm
    entries.  The setup for cross-flow batched sealing.
    @raise Failure if any warm-up round trip fails. *)
