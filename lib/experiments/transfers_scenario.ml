(* Concurrent bulk transfers over a lossy shared segment.  See
   transfers_scenario.mli. *)

open Fbsr_netsim
open Fbsr_fbs_ip
module J = Fbsr_util.Json

type conn_row = {
  index : int;
  bytes_expected : int;
  bytes_received : int;
  intact : bool;
  closed : bool;
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  cwnd : int;
  ssthresh : int;
  segments_out : int;
}

type result = {
  transfers : int;
  bytes_per_transfer : int;
  loss : float;
  seed : int;
  suite : string;
  elapsed_s : float;
  delivered_bytes : int;
  goodput_bps : float;
  link_offered : int;
  link_dropped : int;
  total_retransmits : int;
  total_fast_retransmits : int;
  total_timeouts : int;
  rows : conn_row list;
  failures : string list;
  ok : bool;
  timeseries : Fbsr_util.Timeseries.t;
  health : Fbsr_fbs.Health.t;
}

(* Deterministic per-connection payload: integrity means every byte came
   back in order from the right connection, not merely the right count. *)
let payload ~bytes index =
  String.init bytes (fun i -> Char.chr ((i + (index * 131)) land 0xff))

let string_of_state : Minitcp.state -> string = function
  | Syn_sent -> "syn-sent"
  | Syn_received -> "syn-received"
  | Established -> "established"
  | Fin_wait -> "fin-wait"
  | Close_wait -> "close-wait"
  | Last_ack -> "last-ack"
  | Closed -> "closed"

let horizon = 1800.0

let run ?(transfers = 200) ?(bytes_per_transfer = 32_768) ?(loss = 0.01)
    ?(seed = 20260809) ?(suite = Fbsr_fbs.Suite.paper_md5_des)
    ?telemetry_cadence () =
  if transfers < 1 then invalid_arg "Transfers_scenario.run: transfers < 1";
  if bytes_per_transfer < 1 then
    invalid_arg "Transfers_scenario.run: bytes_per_transfer < 1";
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* Batched receive: back-to-back segments of a delivery burst decrypt
     in one cross-flow bitsliced sweep (flushed after at most 1 ms of
     simulated linger) — the gateway-style decap path under a real
     closed-loop workload. *)
  let tb =
    Testbed.create ~seed
      ~config:(Stack.default_config ~suite ~batched_rx:true ())
      ~faults:{ Link.perfect with Link.drop = loss }
      ()
  in
  (* Telemetry plane over the site registry, ticked on the simulated
     clock; ticks are pre-scheduled over the fixed run bound so they
     cannot extend it. *)
  let ts, health =
    match telemetry_cadence with
    | None -> (Fbsr_util.Timeseries.none, Fbsr_fbs.Health.none)
    | Some cad ->
        let ts =
          Fbsr_util.Timeseries.create ~capacity:2048 ~cadence:cad
            ~host:"transfers" ~metrics:(Testbed.metrics tb) ()
        in
        let health = Fbsr_fbs.Health.create ~ts () in
        let engine = Testbed.engine tb in
        let ticks = min 4096 (int_of_float (horizon /. cad)) in
        for i = 0 to ticks do
          Engine.schedule engine ~delay:(Float.of_int i *. cad) (fun () ->
              let now = Engine.now engine in
              Fbsr_util.Timeseries.tick ts ~now;
              Fbsr_fbs.Health.check health ~now)
        done;
        (ts, health)
  in
  let a = Testbed.add_host tb ~name:"sender" ~addr:"10.0.0.1" in
  let b = Testbed.add_host tb ~name:"receiver" ~addr:"10.0.0.2" in
  let sender = a.Testbed.host and receiver = b.Testbed.host in
  let bufs = Array.init transfers (fun _ -> Buffer.create bytes_per_transfer) in
  (* The accept callback only sees the server-side conn; the client's
     ephemeral port is the demultiplexing key back to the transfer index. *)
  let idx_of_port = Hashtbl.create transfers in
  Minitcp.listen receiver ~port:5001 (fun conn ->
      (match Hashtbl.find_opt idx_of_port (snd (Minitcp.peer conn)) with
      | Some idx ->
          Minitcp.on_receive conn (fun d -> Buffer.add_string bufs.(idx) d)
      | None -> failf "accept from unknown client port %d" (snd (Minitcp.peer conn)));
      Minitcp.on_close conn (fun () -> Minitcp.close conn));
  (* The site's periodic soft-state timers keep the event queue alive
     past the transfers, so the run always reaches the bound; the last
     client close stamps the actual completion time. *)
  let finished_at = ref 0.0 in
  let conns =
    Array.init transfers (fun idx ->
        let c = Minitcp.connect sender ~dst:(Host.addr receiver) ~dst_port:5001 in
        Hashtbl.replace idx_of_port (Minitcp.local_port c) idx;
        Minitcp.on_established c (fun () ->
            Minitcp.send c (payload ~bytes:bytes_per_transfer idx);
            Minitcp.close c);
        Minitcp.on_close c (fun () ->
            finished_at := Float.max !finished_at (Testbed.now tb));
        c)
  in
  Testbed.run ~until:horizon tb;
  (match telemetry_cadence with
  | None -> ()
  | Some _ ->
      let now = Testbed.now tb in
      Fbsr_util.Timeseries.force ts ~now;
      Fbsr_fbs.Health.check health ~now);
  let elapsed = !finished_at in
  let rows =
    Array.to_list
      (Array.mapi
         (fun idx c ->
           let got = Buffer.contents bufs.(idx) in
           let intact = String.equal got (payload ~bytes:bytes_per_transfer idx) in
           let closed = Minitcp.state c = Minitcp.Closed in
           if not closed then
             failf "conn %d: client not closed (%s)" idx
               (string_of_state (Minitcp.state c));
           if String.length got <> bytes_per_transfer then
             failf "conn %d: delivered %d of %d bytes" idx (String.length got)
               bytes_per_transfer
           else if not intact then failf "conn %d: delivered bytes corrupted" idx;
           {
             index = idx;
             bytes_expected = bytes_per_transfer;
             bytes_received = String.length got;
             intact;
             closed;
             retransmits = Minitcp.retransmits c;
             fast_retransmits = Minitcp.fast_retransmits c;
             timeouts = Minitcp.timeouts c;
             cwnd = Minitcp.cwnd c;
             ssthresh = Minitcp.ssthresh c;
             segments_out = Minitcp.segments_out c;
           })
         conns)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let delivered = sum (fun r -> r.bytes_received) in
  let ls = Testbed.link_stats tb in
  {
    transfers;
    bytes_per_transfer;
    loss;
    seed;
    suite = Fbsr_fbs.Suite.name suite;
    elapsed_s = elapsed;
    delivered_bytes = delivered;
    goodput_bps =
      (if elapsed > 0.0 then Float.of_int (delivered * 8) /. elapsed else 0.0);
    link_offered = ls.Link.offered;
    link_dropped = ls.Link.dropped;
    total_retransmits = sum (fun r -> r.retransmits);
    total_fast_retransmits = sum (fun r -> r.fast_retransmits);
    total_timeouts = sum (fun r -> r.timeouts);
    rows;
    failures = List.rev !failures;
    ok = !failures = [];
    timeseries = ts;
    health;
  }

let to_json r =
  J.Obj
    ([
       ("schema", J.String "fbsr-transfers/1");
      ("transfers", J.Int r.transfers);
      ("bytes_per_transfer", J.Int r.bytes_per_transfer);
      ("loss", J.Float r.loss);
      ("seed", J.Int r.seed);
      ("suite", J.String r.suite);
      ("elapsed_s", J.Float r.elapsed_s);
      ("delivered_bytes", J.Int r.delivered_bytes);
      ("goodput_bps", J.Float r.goodput_bps);
      ("link_offered", J.Int r.link_offered);
      ("link_dropped", J.Int r.link_dropped);
      ("total_retransmits", J.Int r.total_retransmits);
      ("total_fast_retransmits", J.Int r.total_fast_retransmits);
      ("total_timeouts", J.Int r.total_timeouts);
      ( "connections",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("index", J.Int c.index);
                   ("bytes_expected", J.Int c.bytes_expected);
                   ("bytes_received", J.Int c.bytes_received);
                   ("intact", J.Bool c.intact);
                   ("closed", J.Bool c.closed);
                   ("retransmits", J.Int c.retransmits);
                   ("fast_retransmits", J.Int c.fast_retransmits);
                   ("timeouts", J.Int c.timeouts);
                   ("cwnd", J.Int c.cwnd);
                   ("ssthresh", J.Int c.ssthresh);
                   ("segments_out", J.Int c.segments_out);
                 ])
             r.rows) );
      ("failures", J.List (List.map (fun m -> J.String m) r.failures));
      ("ok", J.Bool r.ok);
    ]
    @
    if Fbsr_util.Timeseries.enabled r.timeseries then
      [
        ( "telemetry",
          J.Obj
            [
              ("timeseries", Fbsr_util.Timeseries.to_json r.timeseries);
              ("health", Fbsr_fbs.Health.to_json r.health);
            ] );
      ]
    else [])

let report ?transfers ?bytes_per_transfer ?loss ?seed ?suite
    ?(telemetry = false) ?json () =
  let telemetry_cadence = if telemetry then Some 1.0 else None in
  let r =
    run ?transfers ?bytes_per_transfer ?loss ?seed ?suite ?telemetry_cadence ()
  in
  Fmt.pr "=== concurrent bulk transfers over a lossy shared segment ===@.";
  Fmt.pr "%d transfers x %d B  suite %s  frame loss %.2f%%  seed %d@."
    r.transfers r.bytes_per_transfer r.suite (100.0 *. r.loss) r.seed;
  Fmt.pr "simulated %.2f s  delivered %d B  goodput %.2f Mb/s@." r.elapsed_s
    r.delivered_bytes (r.goodput_bps /. 1e6);
  Fmt.pr "link: %d frames offered, %d dropped@." r.link_offered r.link_dropped;
  let over f init cmp = List.fold_left (fun acc c -> cmp acc (f c)) init r.rows in
  let n = Float.of_int (List.length r.rows) in
  let mean f = Float.of_int (over f 0 ( + )) /. n in
  Fmt.pr
    "retransmits %d (fast %d, timeouts %d)  per-conn retransmits \
     min/mean/max %d/%.1f/%d@."
    r.total_retransmits r.total_fast_retransmits r.total_timeouts
    (over (fun c -> c.retransmits) max_int min)
    (mean (fun c -> c.retransmits))
    (over (fun c -> c.retransmits) 0 max);
  Fmt.pr "final cwnd min/mean/max %d/%.0f/%d B  ssthresh mean %.0f B@."
    (over (fun c -> c.cwnd) max_int min)
    (mean (fun c -> c.cwnd))
    (over (fun c -> c.cwnd) 0 max)
    (mean (fun c -> c.ssthresh));
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) r.failures;
  if Fbsr_util.Timeseries.enabled r.timeseries then begin
    Fmt.pr "telemetry: %d snapshots, %d columns@."
      (Fbsr_util.Timeseries.taken r.timeseries)
      (List.length (Fbsr_util.Timeseries.names r.timeseries));
    Format.printf "@[<v>%a@]@." Fbsr_fbs.Health.report r.health
  end;
  Fmt.pr "%s@."
    (if r.ok then "transfers scenario: OK (100% integrity)"
     else "transfers scenario: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (to_json r));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  r
