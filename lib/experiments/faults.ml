(* Adversarial-network experiment: datagram delivery through real FBS
   stacks over fault-injection links (Fbsr_netsim.Link).

   The paper's robustness story (Sections 5.3 and 6) is that every piece
   of FBS state is soft: loss is recovered by retransmission above and
   recomputation below, and nothing an adversarial network does — drop,
   duplicate, reorder, truncate, flip bits — can make a receiver accept a
   datagram that fails verification.  This experiment measures both halves:

   - *liveness*: a stop-and-wait application with bounded retries reaches
     near-total eventual delivery over a lossy, reordering network, with
     the MKD's retry/backoff carrying the certificate fetches through the
     same network;
   - *safety*: under bit-flip corruption, every corrupted datagram dies at
     the MAC (or earlier, at header decode) and none reaches the
     application with altered content.

   Everything is driven from a fixed seed, so a run is a deterministic
   function of its parameters. *)

open Fbsr_netsim
open Fbsr_fbs_ip

type result = {
  offered : int;  (** distinct application messages attempted *)
  accepted : int;  (** messages eventually delivered (deduplicated) *)
  transmissions : int;  (** datagram sends including retransmissions *)
  duplicates_delivered : int;  (** extra deliveries of an already-seen seq *)
  forgeries_accepted : int;  (** deliveries whose payload differs from the canonical *)
  mac_failures : int;
  header_failures : int;
  stale_rejections : int;
  duplicate_rejections : int;
  decrypt_failures : int;
  flow_key_recoveries : int;
  mkd_fetches : int;
  mkd_retransmissions : int;
  link : Link.stats;
  spans : Fbsr_util.Span.span list;
      (** merged causal-trace spans from every host's flight recorder
          (empty unless [run ~span_capacity] was positive) *)
  sampler : Fbsr_util.Span.sampler_stats option;
      (** adaptive-sampling audit (present iff [span_sample > 1]) *)
  timeseries : Fbsr_util.Timeseries.t;
      (** flight-recorder rows over the site registry
          ({!Fbsr_util.Timeseries.none} unless [telemetry_cadence]) *)
  health : Fbsr_fbs.Health.t;
      (** rule monitor over [timeseries] ({!Fbsr_fbs.Health.none} unless
          [telemetry_cadence]) *)
}

let acceptance_rate r =
  if r.offered = 0 then 1.0 else float_of_int r.accepted /. float_of_int r.offered

(* Canonical payload for sequence number [seq]: self-describing and long
   enough that truncation or corruption cannot yield another valid one
   without defeating the MAC. *)
let payload_for seq = Printf.sprintf "D%08d|%s" seq (String.make 64 'x')

(* Stop-and-wait driver: each message is retransmitted on a fixed timeout
   until acknowledged or out of attempts.  The transport is deliberately
   dumb — the point is the network and the security layer under it, not
   ARQ sophistication. *)
let run ?(seed = 11) ?(messages = 200) ?(max_attempts = 8) ?(rto = 0.5)
    ?(spacing = 0.05) ?(strict_replay = true) ?(batched_rx = false) ?faults
    ?metrics ?trace ?(span_capacity = 0) ?span_cost_clock ?(span_sample = 1)
    ?telemetry_cadence () =
  let config =
    Stack.default_config ~strict_replay ~batched_rx ~keying_fetch_retries:2 ()
  in
  let mkd_config =
    (* Aggressive enough that keying completes within the experiment even
       when several fetch attempts are lost in a row. *)
    { Mkd.default_config with Mkd.timeout = 0.25; max_attempts = 6 }
  in
  let tb =
    Testbed.create ~seed ~config ~mkd_config ?faults ?metrics ?trace
      ~span_capacity ?span_cost_clock ~span_sample ()
  in
  (* Telemetry plane: a flight recorder over the site registry plus the
     health monitor, ticked on the simulated clock.  The tick events are
     pre-scheduled over the experiment's bounded horizon, so the recorder
     cannot keep the (run-to-quiescence) event loop alive. *)
  let ts, health =
    match telemetry_cadence with
    | None -> (Fbsr_util.Timeseries.none, Fbsr_fbs.Health.none)
    | Some cad ->
        let ts =
          Fbsr_util.Timeseries.create ~cadence:cad ~host:"faults"
            ~metrics:(Testbed.metrics tb) ()
        in
        let health = Fbsr_fbs.Health.create ?trace ~ts () in
        (ts, health)
  in
  let sender = Testbed.add_host tb ~name:"sender" ~addr:"10.0.0.1" in
  let receiver = Testbed.add_host tb ~name:"receiver" ~addr:"10.0.0.2" in
  let engine = Testbed.engine tb in
  let acked = Array.make messages false in
  let seen = Array.make messages false in
  let duplicates_delivered = ref 0 in
  let forgeries_accepted = ref 0 in
  let transmissions = ref 0 in
  let data_port = 4000 and ack_port = 4001 in
  (* Receiver: deliver-once per sequence number, ack every copy (the ack
     may be the one that got lost), flag any payload that differs from
     the canonical bytes for its claimed sequence number. *)
  Udp_stack.listen receiver.Testbed.host ~port:data_port
    (fun ~src ~src_port:_ msg ->
      match
        if String.length msg >= 10 && msg.[0] = 'D' then
          int_of_string_opt (String.sub msg 1 8)
        else None
      with
      | Some seq when seq >= 0 && seq < messages ->
          if not (String.equal msg (payload_for seq)) then
            incr forgeries_accepted
          else begin
            if seen.(seq) then incr duplicates_delivered else seen.(seq) <- true;
            Udp_stack.send receiver.Testbed.host ~src_port:data_port ~dst:src
              ~dst_port:ack_port (Printf.sprintf "A%08d" seq)
          end
      | Some _ | None -> incr forgeries_accepted);
  Udp_stack.listen sender.Testbed.host ~port:ack_port (fun ~src:_ ~src_port:_ msg ->
      if String.length msg = 9 && msg.[0] = 'A' then
        match int_of_string_opt (String.sub msg 1 8) with
        | Some seq when seq >= 0 && seq < messages -> acked.(seq) <- true
        | Some _ | None -> ());
  (* One stop-and-wait machine per message, started [spacing] apart so
     flows overlap but the run stays bounded. *)
  let send_seq seq =
    incr transmissions;
    Udp_stack.send sender.Testbed.host ~src_port:ack_port
      ~dst:(Host.addr receiver.Testbed.host) ~dst_port:data_port (payload_for seq)
  in
  let rec attempt seq n =
    if (not acked.(seq)) && n <= max_attempts then begin
      send_seq seq;
      Engine.schedule engine ~delay:rto (fun () -> attempt seq (n + 1))
    end
  in
  for seq = 0 to messages - 1 do
    Engine.schedule engine ~delay:(float_of_int seq *. spacing) (fun () ->
        attempt seq 1)
  done;
  (match telemetry_cadence with
  | None -> ()
  | Some cad ->
      let horizon =
        (float_of_int messages *. spacing)
        +. (float_of_int (max_attempts + 2) *. rto)
      in
      let ticks = min 4096 (int_of_float (horizon /. cad)) in
      for i = 0 to ticks do
        Engine.schedule engine ~delay:(float_of_int i *. cad) (fun () ->
            let now = Engine.now engine in
            Fbsr_util.Timeseries.tick ts ~now;
            Fbsr_fbs.Health.check health ~now)
      done);
  Testbed.run tb;
  (match telemetry_cadence with
  | None -> ()
  | Some _ ->
      let now = Testbed.now tb in
      Fbsr_util.Timeseries.force ts ~now;
      Fbsr_fbs.Health.check health ~now);
  let accepted = Array.fold_left (fun n s -> if s then n + 1 else n) 0 seen in
  let c tap =
    List.fold_left
      (fun acc (node : Testbed.node) ->
        acc + tap (Fbsr_fbs.Engine.counters (Stack.engine node.Testbed.stack)))
      0
      [ sender; receiver ]
  in
  let mkd tap =
    List.fold_left
      (fun acc (node : Testbed.node) -> acc + tap (Mkd.stats node.Testbed.mkd))
      0
      [ sender; receiver ]
  in
  {
    offered = messages;
    accepted;
    transmissions = !transmissions;
    duplicates_delivered = !duplicates_delivered;
    forgeries_accepted = !forgeries_accepted;
    mac_failures = c (fun x -> x.Fbsr_fbs.Engine.errors_mac);
    header_failures = c (fun x -> x.Fbsr_fbs.Engine.errors_header);
    stale_rejections = c (fun x -> x.Fbsr_fbs.Engine.errors_stale);
    duplicate_rejections = c (fun x -> x.Fbsr_fbs.Engine.errors_duplicate);
    decrypt_failures = c (fun x -> x.Fbsr_fbs.Engine.errors_decrypt);
    flow_key_recoveries = c (fun x -> x.Fbsr_fbs.Engine.flow_key_recoveries);
    mkd_fetches = mkd (fun s -> s.Mkd.fetches);
    mkd_retransmissions = mkd (fun s -> s.Mkd.retransmissions);
    link = Testbed.link_stats tb;
    spans = Testbed.collect_spans tb;
    sampler = Option.map Fbsr_util.Span.sampler_stats (Testbed.span_sampler tb);
    timeseries = ts;
    health;
  }

let to_json (r : result) =
  let open Fbsr_util.Json in
  let l = r.link in
  Obj
    [
      ("offered", Int r.offered);
      ("accepted", Int r.accepted);
      ("transmissions", Int r.transmissions);
      ("duplicates_delivered", Int r.duplicates_delivered);
      ("forgeries_accepted", Int r.forgeries_accepted);
      ("mac_failures", Int r.mac_failures);
      ("header_failures", Int r.header_failures);
      ("stale_rejections", Int r.stale_rejections);
      ("duplicate_rejections", Int r.duplicate_rejections);
      ("decrypt_failures", Int r.decrypt_failures);
      ("flow_key_recoveries", Int r.flow_key_recoveries);
      ("mkd_fetches", Int r.mkd_fetches);
      ("mkd_retransmissions", Int r.mkd_retransmissions);
      ( "link",
        Obj
          [
            ("offered", Int l.Link.offered);
            ("delivered", Int l.Link.delivered);
            ("dropped", Int l.Link.dropped);
            ("duplicated", Int l.Link.duplicated);
            ("reordered", Int l.Link.reordered);
            ("truncated", Int l.Link.truncated);
            ("corrupted", Int l.Link.corrupted);
          ] );
    ]

(* The fault profiles the report sweeps. *)
let lossy =
  { Link.perfect with Link.drop = 0.10; reorder = 0.05; reorder_delay = 0.2 }

let corrupting = { Link.perfect with Link.corrupt = 0.01 }

let hostile =
  {
    Link.drop = 0.10;
    duplicate = 0.02;
    reorder = 0.05;
    reorder_delay = 0.2;
    truncate = 0.005;
    corrupt = 0.01;
  }

let sampler_stats_to_json (s : Fbsr_util.Span.sampler_stats) =
  let open Fbsr_util.Json in
  Obj
    [
      ("kept_chains", Int s.Fbsr_util.Span.kept_chains);
      ("promoted_chains", Int s.Fbsr_util.Span.promoted_chains);
      ("discarded_chains", Int s.Fbsr_util.Span.discarded_chains);
      ("evicted_chains", Int s.Fbsr_util.Span.evicted_chains);
      ("pending_spans", Int s.Fbsr_util.Span.pending_spans);
    ]

let report ?(seed = 11) ?json ?spans_out ?metrics_text ?(telemetry = false) () =
  let pf = Printf.printf in
  pf "\n================================================================\n";
  pf "Adversarial network: FBS over fault-injection links\n";
  pf "================================================================\n";
  pf "%-28s %9s %8s %7s %7s %7s %7s\n" "profile" "accepted" "xmit" "macerr"
    "dup rej" "forged" "recov";
  (* One registry across all four runs: the exposition dump aggregates the
     whole sweep.  Tracing is armed only when a spans path was asked for. *)
  let metrics =
    match metrics_text with
    | Some _ -> Some (Fbsr_util.Metrics.create ())
    | None -> None
  in
  let span_capacity =
    match (spans_out, telemetry) with
    | Some _, _ -> 32768
    | None, true -> 32768 (* telemetry demos the adaptive sampler *)
    | None, false -> 0
  in
  let span_sample = if telemetry then 64 else 1 in
  let telemetry_cadence = if telemetry then Some 0.5 else None in
  let row name faults =
    let r =
      run ~seed ?faults ?metrics ~span_capacity ~span_sample
        ?telemetry_cadence ()
    in
    pf "%-28s %4d/%-4d %8d %7d %7d %7d %7d\n" name r.accepted r.offered
      r.transmissions r.mac_failures r.duplicate_rejections r.forgeries_accepted
      r.flow_key_recoveries;
    r
  in
  let clean = row "clean" None in
  let loss = row "10% loss + 5% reorder" (Some lossy) in
  let corrupt = row "1% bit flips" (Some corrupting) in
  let combined = row "hostile (all faults)" (Some hostile) in
  pf "\nlink totals under 'hostile': %s\n"
    (Format.asprintf "%a" Link.pp_stats combined.link);
  pf "MKD under 'hostile': %d fetches, %d retransmissions\n"
    combined.mkd_fetches combined.mkd_retransmissions;
  let verdict ok = if ok then "PASS" else "FAIL" in
  pf "\n[%s] >= 99%% eventual acceptance under 10%% loss / 5%% reorder (got %.1f%%)\n"
    (verdict (acceptance_rate loss >= 0.99))
    (100.0 *. acceptance_rate loss);
  pf "[%s] zero forgeries accepted under 1%% corruption (got %d, %d MAC rejections)\n"
    (verdict (corrupt.forgeries_accepted = 0))
    corrupt.forgeries_accepted corrupt.mac_failures;
  if telemetry then begin
    let ts = combined.timeseries in
    pf "\ntelemetry ('hostile' run): %d snapshots at %.2fs cadence, %d columns\n"
      (Fbsr_util.Timeseries.taken ts)
      (Fbsr_util.Timeseries.cadence ts)
      (List.length (Fbsr_util.Timeseries.names ts));
    (match combined.sampler with
    | None -> ()
    | Some s ->
        pf
          "span sampling 1/%d: %d kept, %d promoted (anomaly tail-keep), %d \
           discarded, %d evicted\n"
          span_sample s.Fbsr_util.Span.kept_chains
          s.Fbsr_util.Span.promoted_chains s.Fbsr_util.Span.discarded_chains
          s.Fbsr_util.Span.evicted_chains);
    Format.printf "@[<v>%a@]@." Fbsr_fbs.Health.report combined.health;
    Format.printf "@[<v>%a@]@."
      (fun ppf () ->
        Fbsr_util.Timeseries.dashboard ppf ts
          ~names:[ "fbs.engine.drops.total"; "fbs.engine.accepted" ])
      ()
  end;
  (match json with
  | None -> ()
  | Some path ->
      let doc =
        Fbsr_util.Json.Obj
          ([
             ("schema", Fbsr_util.Json.String "fbsr-faults/1");
             ("seed", Fbsr_util.Json.Int seed);
             ( "profiles",
               Fbsr_util.Json.Obj
                 [
                   ("clean", to_json clean);
                   ("lossy", to_json loss);
                   ("corrupting", to_json corrupt);
                   ("hostile", to_json combined);
                 ] );
           ]
          @
          if telemetry then
            [
              ( "telemetry",
                Fbsr_util.Json.Obj
                  [
                    ( "timeseries",
                      Fbsr_util.Timeseries.to_json combined.timeseries );
                    ("health", Fbsr_fbs.Health.to_json combined.health);
                    ( "sampler",
                      match combined.sampler with
                      | None -> Fbsr_util.Json.Null
                      | Some s -> sampler_stats_to_json s );
                  ] );
            ]
          else [])
      in
      let oc = open_out path in
      output_string oc (Fbsr_util.Json.to_string_pretty doc);
      close_out oc;
      pf "\nwrote %s\n" path);
  (match spans_out with
  | None -> ()
  | Some path ->
      (* The hostile run's spans: the richest timeline — drops, duplicates,
         reorders and MKD fetch chains all appear.  Feed the file to
         tracedump for text timelines or Chrome trace-event conversion. *)
      let oc = open_out path in
      output_string oc
        (Fbsr_util.Json.to_string_pretty (Fbsr_util.Span.to_json combined.spans));
      close_out oc;
      pf "wrote %s (%d spans from the hostile run)\n" path
        (List.length combined.spans));
  match metrics_text with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (match metrics with
        | Some m -> Fbsr_util.Metrics.to_text m
        | None -> "");
      close_out oc;
      pf "wrote %s\n" path
