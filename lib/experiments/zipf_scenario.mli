(** The million-flow scenario: a Zipf-popularity datagram stream over
    10⁶ concurrent flows, driven in batches through a pair of
    domain-sharded engines ({!Fbsr_fbs.Sharded}), with the paper's
    soft-state invariants checked per shard.

    Every datagram must round-trip (seal on the sender's owning shard,
    verify + decrypt on the receiver's), and each shard pair must hold
    the zero-copy audit exactly: sender wire alloc + receiver plaintext
    alloc = 2 allocations per datagram.  [ok = false] on any violation —
    the CLI wrapper turns that into a non-zero exit, which is what the
    bench-multicore CI lane gates on. *)

type shard_row = {
  shard : int;
  datagrams : int;  (** sealed by this sender shard *)
  allocs_per_datagram : float;  (** send + receive allocs over datagrams *)
}

type result = {
  flows : int;
  datagrams : int;
  nshards : int;  (** effective (post-clamp) shard count *)
  touched_flows : int;  (** distinct ranks the Zipf stream actually hit *)
  flows_started : int;  (** fresh classifications at the dispatcher FAM *)
  elapsed_s : float;
  datagrams_per_sec : float;
  flow_key_computations : int;
  keysched_hits : int;
  keysched_misses : int;
  rows : shard_row list;
  failures : string list;  (** violated invariants; empty iff [ok] *)
  ok : bool;
}

val run :
  ?flows:int ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  unit ->
  result
(** Defaults: 10⁶ flows, 10⁶ datagrams, batches of 4096, shard count
    from {!Fbsr_util.Domain_shim.recommended_domain_count}, FST sized at
    [2^fst_bits] (default 19). *)

val to_json : result -> Fbsr_util.Json.t
(** An [fbsr-zipf/1] document. *)

val report :
  ?flows:int ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  ?json:string ->
  unit ->
  result
(** {!run}, print the human summary, optionally write the JSON artifact. *)

(** {2 Miss-rate curve}

    The Section 7.3 figure 11-14 analogue re-measured at million-flow
    scale: each sweep point runs a fresh (cold-cache) sharded pair under
    a Zipf workload of that many offered flows and reports the active
    flow count against the aggregate TFKC and RFKC miss rates summed
    across shards. *)

type curve_row = {
  offered_flows : int;  (** flow population offered to the Zipf stream *)
  active_flows : int;  (** distinct flows the stream actually touched *)
  tfkc_accesses : int;
  tfkc_miss_rate : float;  (** misses over accesses, all sender shards *)
  rfkc_accesses : int;
  rfkc_miss_rate : float;  (** misses over accesses, all receiver shards *)
  point_flow_key_computations : int;
}

type curve = {
  points : curve_row list;
  datagrams_per_point : int;
  curve_nshards : int;
  curve_elapsed_s : float;
  curve_failures : string list;  (** violated invariants; empty iff ok *)
  curve_ok : bool;
}

val default_points : int list
(** 10³ … 10⁶ in roughly half-decade steps. *)

val miss_curve :
  ?points:int list ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  unit ->
  curve
(** [datagrams] (default 200 000) is the per-point round-trip budget.
    Every datagram must still round-trip cleanly at every point.
    @raise Invalid_argument on an empty [points] list. *)

val curve_to_json : curve -> Fbsr_util.Json.t
(** An [fbsr-zipf-miss-curve/1] document. *)

val curve_report :
  ?points:int list ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  ?json:string ->
  unit ->
  curve
(** {!miss_curve}, print the curve as a table, optionally write the
    JSON artifact. *)
