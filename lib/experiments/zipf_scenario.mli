(** The million-flow scenario: a Zipf-popularity datagram stream over
    10⁶ concurrent flows, driven in batches through a pair of
    domain-sharded engines ({!Fbsr_fbs.Sharded}), with the paper's
    soft-state invariants checked per shard.

    Every datagram must round-trip (seal on the sender's owning shard,
    verify + decrypt on the receiver's), and each shard pair must hold
    the zero-copy audit exactly: sender wire alloc + receiver plaintext
    alloc = 2 allocations per datagram.  [ok = false] on any violation —
    the CLI wrapper turns that into a non-zero exit, which is what the
    bench-multicore CI lane gates on. *)

type shard_row = {
  shard : int;
  datagrams : int;  (** sealed by this sender shard *)
  allocs_per_datagram : float;  (** send + receive allocs over datagrams *)
}

type result = {
  flows : int;
  datagrams : int;
  nshards : int;  (** effective (post-clamp) shard count *)
  touched_flows : int;  (** distinct ranks the Zipf stream actually hit *)
  flows_started : int;  (** fresh classifications at the dispatcher FAM *)
  elapsed_s : float;
  datagrams_per_sec : float;
  flow_key_computations : int;
  keysched_hits : int;
  keysched_misses : int;
  rows : shard_row list;
  failures : string list;  (** violated invariants; empty iff [ok] *)
  ok : bool;
  timeseries : Fbsr_util.Timeseries.t;
      (** flight recorder over both sides' registries
          ({!Fbsr_util.Timeseries.none} unless [telemetry]) *)
  health : Fbsr_fbs.Health.t;
      (** rule monitor over [timeseries] ({!Fbsr_fbs.Health.none} unless
          [telemetry]) *)
  flowstats : Fbsr_fbs.Flowstats.t;
      (** heavy-hitter sketches exact-merged across every shard of both
          sides ({!Fbsr_fbs.Flowstats.none} unless [telemetry]) *)
}

val run :
  ?flows:int ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  ?telemetry:bool ->
  unit ->
  result
(** Defaults: 10⁶ flows, 10⁶ datagrams, batches of 4096, shard count
    from {!Fbsr_util.Domain_shim.recommended_domain_count}, FST sized at
    [2^fst_bits] (default 19).

    [telemetry] (default off) arms the whole telemetry plane: per-shard
    heavy-hitter sketches on every engine, a flight recorder ticked from
    the dispatcher's batch hook at 0.05 s (sim) cadence over a registry
    holding both sides (root aggregate + [shard.<i>.] twins), and the
    health monitor evaluated each snapshot. *)

val to_json : result -> Fbsr_util.Json.t
(** An [fbsr-zipf/1] document (with a [telemetry] member — timeseries,
    health, flowstats — when the run was telemetered). *)

val report :
  ?flows:int ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  ?telemetry:bool ->
  ?json:string ->
  unit ->
  result
(** {!run}, print the human summary (plus top flows, health verdicts and
    a drop dashboard when [telemetry]), optionally write the JSON
    artifact. *)

(** {2 Miss-rate curve}

    The Section 7.3 figure 11-14 analogue re-measured at million-flow
    scale: each sweep point runs a fresh (cold-cache) sharded pair under
    a Zipf workload of that many offered flows and reports the active
    flow count against the aggregate TFKC and RFKC miss rates summed
    across shards. *)

type curve_row = {
  offered_flows : int;  (** flow population offered to the Zipf stream *)
  active_flows : int;  (** distinct flows the stream actually touched *)
  tfkc_accesses : int;
  tfkc_miss_rate : float;  (** misses over accesses, all sender shards *)
  rfkc_accesses : int;
  rfkc_miss_rate : float;  (** misses over accesses, all receiver shards *)
  point_flow_key_computations : int;
}

type curve = {
  points : curve_row list;
  datagrams_per_point : int;
  curve_nshards : int;
  curve_elapsed_s : float;
  curve_failures : string list;  (** violated invariants; empty iff ok *)
  curve_ok : bool;
}

val default_points : int list
(** 10³ … 10⁶ in roughly half-decade steps. *)

val miss_curve :
  ?points:int list ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  unit ->
  curve
(** [datagrams] (default 200 000) is the per-point round-trip budget.
    Every datagram must still round-trip cleanly at every point.
    @raise Invalid_argument on an empty [points] list. *)

val curve_to_json : curve -> Fbsr_util.Json.t
(** An [fbsr-zipf-miss-curve/1] document. *)

val curve_report :
  ?points:int list ->
  ?datagrams:int ->
  ?batch:int ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  ?json:string ->
  unit ->
  curve
(** {!miss_curve}, print the curve as a table, optionally write the
    JSON artifact. *)

(** {2 Sweeper-cadence study}

    The other open half of the §7.3 ROADMAP item: under Zipf skew, how
    often should the FAM sweeper run?  Each point replays the same
    skewed workload against a fresh sharded pair whose dispatcher FST
    has a deliberately short idle THRESHOLD, sweeping at a different
    cadence (0 = never).  Hot flows survive any cadence; tail flows
    swept out between revisits restart as fresh flows — new sfl, new
    flow-key derivation — so the table reads as FST occupancy versus
    restart-and-rekey churn, with the per-tick TFKC miss-rate series
    recovered from the flight recorder. *)

type sweep_row = {
  cadence_s : float;  (** seconds between sweeps; 0 = never swept *)
  sweeps : int;
  expired : int;  (** flows the sweeper expired *)
  sw_flows_started : int;
  restarts : int;  (** [flows_started] minus distinct flows touched *)
  active_end : int;  (** FST occupancy at the end of the run *)
  sw_tfkc_accesses : int;
  sw_tfkc_miss_rate : float;
  sw_flow_keys : int;
  miss_series : (float * float) list;
      (** [(time, interval TFKC miss rate)] per recorder tick *)
}

type sweep_study = {
  sweep_points : sweep_row list;
  sw_flows : int;
  sw_datagrams : int;
  sw_threshold : float;
  sw_round_dt : float;
  sw_nshards : int;
  sw_elapsed_s : float;
  sw_failures : string list;
  sw_ok : bool;
}

val default_cadences : float list
(** [0.25 … 5.0] seconds, plus never. *)

val sweep_study :
  ?cadences:float list ->
  ?flows:int ->
  ?datagrams:int ->
  ?batch:int ->
  ?round_dt:float ->
  ?threshold:float ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  unit ->
  sweep_study
(** Defaults: 10⁵ flows, 120 000 datagrams per point in batches of
    1024, the simulated clock advancing [round_dt] (0.1 s) per batch,
    idle threshold 2 s.  Every datagram must still round-trip cleanly
    at every point.
    @raise Invalid_argument on an empty [cadences] list. *)

val sweep_study_to_json : sweep_study -> Fbsr_util.Json.t
(** An [fbsr-sweep-study/1] document. *)

val sweep_study_report :
  ?cadences:float list ->
  ?flows:int ->
  ?datagrams:int ->
  ?batch:int ->
  ?round_dt:float ->
  ?threshold:float ->
  ?nshards:int ->
  ?seed:int ->
  ?fst_bits:int ->
  ?json:string ->
  unit ->
  sweep_study
(** {!sweep_study}, print the table, optionally write the artifact. *)
