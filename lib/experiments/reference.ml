(* The pre-refactor string-based datapath, retained verbatim as a
   reference implementation.

   Two consumers:

   - the differential property suite (test/test_slice.ml) checks that the
     engine's zero-copy seal/receive produce byte-identical wires and
     accept each other's output;
   - the bench artifact measures this path next to the zero-copy one, so
     the allocations-per-datagram reduction is visible inside a single
     artifact instead of across baseline files.

   Every explicit buffer allocation and payload copy is tallied in
   [counters] — the same accounting the engine keeps for its own datapath
   — so the two paths are comparable number-for-number. *)

type counters = { mutable allocs : int; mutable bytes_copied : int }

let create_counters () = { allocs = 0; bytes_copied = 0 }

let tally c ~allocs ~copied =
  c.allocs <- c.allocs + allocs;
  c.bytes_copied <- c.bytes_copied + copied

(* MAC input exactly as the old [Engine.compute_mac] built it: three fresh
   header-field strings, the digest, and a truncation copy. *)
let compute_mac c (suite : Fbsr_fbs.Suite.t) ~flow_key ~(header : Fbsr_fbs.Header.t)
    ~payload =
  if Fbsr_fbs.Suite.is_nop suite then begin
    tally c ~allocs:1 ~copied:0;
    String.make suite.Fbsr_fbs.Suite.mac_length '\000'
  end
  else begin
    let parts =
      [
        Fbsr_fbs.Header.auth_bytes header;
        Fbsr_fbs.Header.confounder_bytes header;
        Fbsr_fbs.Header.timestamp_bytes header;
        payload;
      ]
    in
    tally c ~allocs:3 ~copied:0;
    let mac =
      Fbsr_crypto.Mac.compute ~algorithm:suite.Fbsr_fbs.Suite.mac_algorithm
        suite.Fbsr_fbs.Suite.mac_hash ~key:flow_key parts
    in
    (* [Mac.truncate] is an unconditional [String.sub]. *)
    tally c ~allocs:1 ~copied:0;
    Fbsr_crypto.Mac.truncate mac suite.Fbsr_fbs.Suite.mac_length
  end

let des_key_of_flow_key flow_key =
  Fbsr_crypto.Des.adjust_parity (String.sub flow_key 0 8)

let des3_key_of_flow_key flow_key =
  let material = flow_key ^ Fbsr_crypto.Md5.digest flow_key in
  Fbsr_crypto.Des3.of_string (Fbsr_crypto.Des.adjust_parity (String.sub material 0 24))

(* [Header.confounder_iv]: confounder bytes allocated, then duplicated. *)
let confounder_iv c header =
  tally c ~allocs:2 ~copied:0;
  Fbsr_fbs.Header.confounder_iv header

(* The hmac-sha1/sha1-ctr body transform, string-at-a-time: the cleartext
   (but MACed) 4-byte prefix, then the SHA-1 counter keystream over the
   remainder.  Self-inverse.  Mirrors [Armor_sha1ctr] byte for byte. *)
let sha1_ctr_prefix = 4

let sha1_ctr_body c ~flow_key ~iv body =
  let len = String.length body in
  let p = min sha1_ctr_prefix len in
  (* Tail sub, keystream output buffer, prefix ^ tail concatenation. *)
  tally c ~allocs:3 ~copied:len;
  let ks = Fbsr_crypto.Keystream.create Fbsr_crypto.Hash.sha1 ~key:flow_key in
  let tail = Fbsr_crypto.Keystream.transform ks ~iv (String.sub body p (len - p)) in
  String.sub body 0 p ^ tail

let encrypt_body c (suite : Fbsr_fbs.Suite.t) ~flow_key ~iv ~payload =
  if Fbsr_fbs.Suite.is_nop suite then payload
  else if suite.Fbsr_fbs.Suite.cipher = Fbsr_fbs.Suite.Sha1_ctr then
    sha1_ctr_body c ~flow_key ~iv payload
  else begin
    (* [Des.pad] copies the payload into a padded buffer, then the cipher
       allocates the ciphertext. *)
    tally c ~allocs:2 ~copied:(String.length payload);
    match suite.Fbsr_fbs.Suite.cipher with
    | Fbsr_fbs.Suite.Sha1_ctr -> assert false (* handled above *)
    | Fbsr_fbs.Suite.Des3_cbc ->
        Fbsr_crypto.Des3.encrypt_cbc ~iv (des3_key_of_flow_key flow_key) payload
    | ( Fbsr_fbs.Suite.Des_cbc | Fbsr_fbs.Suite.Des_cfb | Fbsr_fbs.Suite.Des_ofb
      | Fbsr_fbs.Suite.Des_ecb ) as cipher -> (
        let key = Fbsr_crypto.Des.of_string (des_key_of_flow_key flow_key) in
        match cipher with
        | Fbsr_fbs.Suite.Des_cbc -> Fbsr_crypto.Des.encrypt_cbc ~iv key payload
        | Fbsr_fbs.Suite.Des_cfb -> Fbsr_crypto.Des.encrypt_cfb ~iv key payload
        | Fbsr_fbs.Suite.Des_ofb -> Fbsr_crypto.Des.encrypt_ofb ~iv key payload
        | Fbsr_fbs.Suite.Des_ecb -> Fbsr_crypto.Des.encrypt_ecb ~confounder:iv key payload
        | Fbsr_fbs.Suite.Des3_cbc | Fbsr_fbs.Suite.Sha1_ctr -> assert false)
  end

let decrypt_body c (suite : Fbsr_fbs.Suite.t) ~flow_key ~iv ~body =
  if Fbsr_fbs.Suite.is_nop suite then Ok body
  else if suite.Fbsr_fbs.Suite.cipher = Fbsr_fbs.Suite.Sha1_ctr then
    Ok (sha1_ctr_body c ~flow_key ~iv body)
  else begin
    (* Cipher output buffer, then [Des.unpad]'s exact-size copy. *)
    tally c ~allocs:2 ~copied:(String.length body);
    match
      match suite.Fbsr_fbs.Suite.cipher with
      | Fbsr_fbs.Suite.Sha1_ctr -> assert false (* handled above *)
      | Fbsr_fbs.Suite.Des3_cbc ->
          Fbsr_crypto.Des3.decrypt_cbc ~iv (des3_key_of_flow_key flow_key) body
      | ( Fbsr_fbs.Suite.Des_cbc | Fbsr_fbs.Suite.Des_cfb | Fbsr_fbs.Suite.Des_ofb
        | Fbsr_fbs.Suite.Des_ecb ) as cipher -> (
          let key = Fbsr_crypto.Des.of_string (des_key_of_flow_key flow_key) in
          match cipher with
          | Fbsr_fbs.Suite.Des_cbc -> Fbsr_crypto.Des.decrypt_cbc ~iv key body
          | Fbsr_fbs.Suite.Des_cfb -> Fbsr_crypto.Des.decrypt_cfb ~iv key body
          | Fbsr_fbs.Suite.Des_ofb -> Fbsr_crypto.Des.decrypt_ofb ~iv key body
          | Fbsr_fbs.Suite.Des_ecb -> Fbsr_crypto.Des.decrypt_ecb ~confounder:iv key body
          | Fbsr_fbs.Suite.Des3_cbc | Fbsr_fbs.Suite.Sha1_ctr -> assert false)
    with
    | plaintext -> Ok plaintext
    | exception Invalid_argument _ -> Error `Decrypt
  end

(* The old [Engine.seal], with the confounder and timestamp supplied by
   the caller (the engine draws them from its own LCG/clock; passing them
   in makes the two paths comparable on identical inputs). *)
let seal ?counters:(c = create_counters ()) ~(suite : Fbsr_fbs.Suite.t) ~flow_key ~sfl
    ~secret ~confounder ~timestamp ~payload () =
  let header0 =
    { Fbsr_fbs.Header.sfl; suite; secret; confounder; timestamp; mac = "" }
  in
  let mac = compute_mac c suite ~flow_key ~header:header0 ~payload in
  let header = { header0 with Fbsr_fbs.Header.mac } in
  let body =
    if secret then
      encrypt_body c suite ~flow_key ~iv:(confounder_iv c header) ~payload
    else payload
  in
  (* Header encode (writer buffer + contents copy) and the final
     header ^ body concatenation. *)
  let encoded = Fbsr_fbs.Header.encode header in
  tally c ~allocs:3 ~copied:(String.length encoded + String.length body);
  encoded ^ body

type open_error = [ `Header of Fbsr_fbs.Header.error | `Bad_mac | `Decrypt ]

(* The old receive-side datapath (decode, decrypt, MAC recomputation and
   comparison) without the engine's replay/keying machinery: the
   differential suite drives those through the engine itself. *)
let open_ ?counters:(c = create_counters ()) ~(suite : Fbsr_fbs.Suite.t) ~flow_key ~wire
    () =
  match Fbsr_fbs.Header.decode wire with
  | Error e -> Error (`Header e)
  | Ok (header, body) ->
      (* [decode] copies the MAC and the body out of the wire. *)
      tally c ~allocs:2 ~copied:(String.length body);
      if header.Fbsr_fbs.Header.suite.Fbsr_fbs.Suite.id <> suite.Fbsr_fbs.Suite.id
      then Error (`Header (Fbsr_fbs.Header.Unknown_suite header.Fbsr_fbs.Header.suite.Fbsr_fbs.Suite.id))
      else
        let finish plaintext =
          let mac' = compute_mac c suite ~flow_key ~header ~payload:plaintext in
          if Fbsr_crypto.Ct.equal mac' header.Fbsr_fbs.Header.mac then Ok (header, plaintext)
          else Error `Bad_mac
        in
        if header.Fbsr_fbs.Header.secret then
          match
            decrypt_body c suite ~flow_key ~iv:(confounder_iv c header) ~body
          with
          | Ok plaintext -> finish plaintext
          | Error `Decrypt -> Error `Decrypt
        else finish body
