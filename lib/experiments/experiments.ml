(* fbs-experiments: regenerate every figure of the paper's evaluation
   (Section 7.3), plus the ablations DESIGN.md calls out.

   One subcommand per figure; `all` runs everything.  Output is the
   series/rows each figure plots, as aligned text tables.  EXPERIMENTS.md
   records a reference run and compares it against the paper. *)

open Fbsr_netsim
open Fbsr_fbs_ip

let pf = Printf.printf

let section title =
  pf "\n================================================================\n";
  pf "%s\n" title;
  pf "================================================================\n"

(* ------------------------------------------------------------------ *)
(* Crypto throughput (the CryptoLib numbers quoted in Section 7.2).    *)
(* ------------------------------------------------------------------ *)

let time_throughput f ~bytes =
  (* Run [f] enough times to get a stable per-byte cost. *)
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.3 do
    f ();
    incr reps
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  float_of_int (!reps * bytes) /. elapsed

let crypto_rates () =
  let buf = String.make 65536 'x' in
  let key = Fbsr_crypto.Des.of_string "01234567" in
  let iv = "abcdefgh" in
  let des_bps =
    time_throughput ~bytes:(String.length buf) (fun () ->
        ignore (Fbsr_crypto.Des.encrypt_cbc ~iv key buf))
  in
  let md5_bps =
    time_throughput ~bytes:(String.length buf) (fun () ->
        ignore (Fbsr_crypto.Md5.digest buf))
  in
  let sha1_bps =
    time_throughput ~bytes:(String.length buf) (fun () ->
        ignore (Fbsr_crypto.Sha1.digest buf))
  in
  (des_bps, md5_bps, sha1_bps)

let crypto_table () =
  section "Crypto primitive throughput (paper Section 7.2 quotes CryptoLib on a \
           Pentium 133: DES-CBC 549 kB/s, MD5 7060 kB/s)";
  let des, md5, sha1 = crypto_rates () in
  pf "%-12s %12s %18s\n" "primitive" "ours (kB/s)" "paper P133 (kB/s)";
  pf "%-12s %12.0f %18s\n" "des-cbc" (des /. 1e3) "549";
  pf "%-12s %12.0f %18s\n" "md5" (md5 /. 1e3) "7060";
  pf "%-12s %12.0f %18s\n" "sha1" (sha1 /. 1e3) "-";
  pf "ratio md5/des: ours %.1fx, paper %.1fx\n" (md5 /. des) (7060.0 /. 549.0)

(* ------------------------------------------------------------------ *)
(* Figure 8: ttcp-style throughput, GENERIC vs FBS NOP vs FBS DES+MD5. *)
(* ------------------------------------------------------------------ *)

type fig8_config = {
  label : string;
  security :
    [ `None
    | `Fbs of Fbsr_fbs.Suite.t * bool (* secret *)
    | `Fbs_combined of Fbsr_fbs.Suite.t * bool (* Section 7.2 fast path *)
    | `Hostpair of Fbsr_baselines.Hostpair.variant
    | `Kdc
    | `Photuris ];
}

(* Run one bulk transfer through the simulated stack; returns goodput in
   simulated bit/s (captures header overhead, MSS reduction, handshakes,
   MKD/KDC round trips, half-duplex ack traffic). *)
let ttcp_run config ~bytes =
  let tb_config ?(combined = false) secret suite =
    Stack.default_config ~suite ~combined_fast_path:combined
      ~secret_policy:(fun ~protocol ~src_port ~dst_port ->
        ignore (protocol, src_port, dst_port);
        secret)
      ()
  in
  let tb =
    match config.security with
    | `Fbs (suite, secret) -> Testbed.create ~config:(tb_config secret suite) ()
    | `Fbs_combined (suite, secret) ->
        Testbed.create ~config:(tb_config ~combined:true secret suite) ()
    | _ -> Testbed.create ()
  in
  let sender, receiver =
    match config.security with
    | `None | `Kdc | `Photuris ->
        ( Testbed.add_plain_host tb ~name:"sender" ~addr:"10.0.0.1",
          Testbed.add_plain_host tb ~name:"receiver" ~addr:"10.0.0.2" )
    | `Fbs _ | `Fbs_combined _ ->
        let a = Testbed.add_host tb ~name:"sender" ~addr:"10.0.0.1" in
        let b = Testbed.add_host tb ~name:"receiver" ~addr:"10.0.0.2" in
        (a.Testbed.host, b.Testbed.host)
    | `Hostpair variant ->
        let a = Testbed.add_plain_host tb ~name:"sender" ~addr:"10.0.0.1" in
        let b = Testbed.add_plain_host tb ~name:"receiver" ~addr:"10.0.0.2" in
        let install host =
          let group = Testbed.group tb in
          let rng = Fbsr_util.Rng.create (Addr.to_int (Host.addr host)) in
          let private_value = Fbsr_crypto.Dh.gen_private group rng in
          let public = Fbsr_crypto.Dh.public group private_value in
          let authority = Testbed.authority tb in
          let (_ : Fbsr_cert.Certificate.t) =
            Fbsr_cert.Authority.enroll authority ~now:0.0
              ~subject:(Addr.to_string (Host.addr host))
              ~group:group.Fbsr_crypto.Dh.name
              ~public_value:(Fbsr_crypto.Dh.public_to_bytes group public)
          in
          let resolver peer k =
            match
              Fbsr_cert.Authority.lookup authority (Fbsr_fbs.Principal.to_string peer)
            with
            | Some c -> k (Ok c)
            | None -> k (Error "unknown")
          in
          ignore
            (Fbsr_baselines.Hostpair.install ~variant ~private_value ~group
               ~ca_public:(Fbsr_cert.Authority.public authority)
               ~ca_hash:(Fbsr_cert.Authority.hash authority)
               ~resolver host)
        in
        install a;
        install b;
        (a, b)
  in
  (match config.security with
  | `Photuris ->
      let group = Testbed.group tb in
      ignore (Fbsr_baselines.Photuris.install ~group sender);
      ignore (Fbsr_baselines.Photuris.install ~group receiver)
  | `Kdc ->
      let kdc_host = Testbed.add_plain_host tb ~name:"kdc" ~addr:"10.0.0.50" in
      let server = Fbsr_baselines.Kdc.Server.install kdc_host in
      let enroll host =
        let key =
          Fbsr_baselines.Kdc.Server.enroll server
            ~name:(Addr.to_string (Host.addr host))
        in
        ignore
          (Fbsr_baselines.Kdc.install ~kdc_addr:(Host.addr kdc_host) ~shared_key:key
             host)
      in
      enroll sender;
      enroll receiver
  | _ -> ());
  let received = ref 0 in
  let start_time = ref 0.0 in
  let done_time = ref None in
  Minitcp.listen receiver ~port:5001 (fun conn ->
      Minitcp.on_receive conn (fun d -> received := !received + String.length d);
      Minitcp.on_close conn (fun () -> Minitcp.close conn));
  let conn = Minitcp.connect sender ~dst:(Host.addr receiver) ~dst_port:5001 in
  let payload = String.make 65536 'b' in
  Minitcp.on_established conn (fun () ->
      start_time := Testbed.now tb;
      let remaining = ref bytes in
      while !remaining > 0 do
        let n = min !remaining (String.length payload) in
        Minitcp.send conn (String.sub payload 0 n);
        remaining := !remaining - n
      done;
      Minitcp.close conn);
  Minitcp.on_close conn (fun () -> done_time := Some (Testbed.now tb));
  Testbed.run ~until:3600.0 tb;
  match !done_time with
  | Some t when !received >= bytes ->
      float_of_int (bytes * 8) /. (t -. !start_time)
  | _ -> nan

(* Per-byte crypto cost charged to the CPU model: [`Ours] uses this
   machine's measured rates, [`P133] the paper's CryptoLib rates. *)
let crypto_cost_per_byte ~rates config =
  let des_bps, md5_bps, _ = rates in
  let des, md5 =
    match (config : [ `Ours | `P133 ]) with
    | `Ours -> (des_bps, md5_bps)
    | `P133 -> (549e3, 7060e3)
  in
  fun security ->
    match security with
    | `None -> 0.0
    | `Fbs (suite, secret) | `Fbs_combined (suite, secret) ->
        if Fbsr_fbs.Suite.is_nop suite then 0.0
        else (1.0 /. md5) +. (if secret then 1.0 /. des else 0.0)
    | `Hostpair _ -> (1.0 /. md5) +. (1.0 /. des)
    | `Kdc | `Photuris -> (1.0 /. md5) +. (1.0 /. des)

let fig8 ?(bytes = 2_000_000) () =
  section "Figure 8: throughput (ttcp-style bulk TCP transfer, 10 Mb/s shared \
           Ethernet segment)";
  let rates = crypto_rates () in
  let configs =
    [
      { label = "GENERIC"; security = `None };
      { label = "FBS NOP"; security = `Fbs (Fbsr_fbs.Suite.nop, true) };
      { label = "FBS MD5 (auth only)"; security = `Fbs (Fbsr_fbs.Suite.paper_md5_des, false) };
      { label = "FBS DES+MD5"; security = `Fbs (Fbsr_fbs.Suite.paper_md5_des, true) };
      {
        label = "FBS DES+MD5 (7.2 comb.)";
        security = `Fbs_combined (Fbsr_fbs.Suite.paper_md5_des, true);
      };
      { label = "Host-pair direct"; security = `Hostpair Fbsr_baselines.Hostpair.Direct };
      { label = "KDC session"; security = `Kdc };
      { label = "Photuris session"; security = `Photuris };
    ]
  in
  pf "%-24s %14s %16s %16s\n" "configuration" "wire (kb/s)" "eff-ours (kb/s)"
    "eff-P133 (kb/s)";
  let cost_ours = crypto_cost_per_byte ~rates `Ours in
  let cost_p133 = crypto_cost_per_byte ~rates `P133 in
  let chart_rows = ref [] in
  List.iter
    (fun config ->
      let wire_bps = ttcp_run config ~bytes in
      (* Per byte: 8/wire seconds on the wire + cpu seconds of crypto;
         they serialize on a mid-90s single-CPU host. *)
      let effective cost_fn =
        let cpu = cost_fn config.security in
        8.0 /. ((8.0 /. wire_bps) +. cpu)
      in
      chart_rows := (config.label, effective cost_p133 /. 1e3) :: !chart_rows;
      pf "%-24s %14.0f %16.0f %16.0f\n" config.label (wire_bps /. 1e3)
        (effective cost_ours /. 1e3)
        (effective cost_p133 /. 1e3))
    configs;
  pf "\neffective throughput at P133 crypto rates (kb/s):\n";
  Fbsr_util.Chart.hbar Fmt.stdout (List.rev !chart_rows);
  pf "\npaper: GENERIC 7700 kb/s, FBS NOP ~GENERIC, FBS DES+MD5 3400 kb/s\n"

(* ------------------------------------------------------------------ *)
(* Figures 9-14: flow characteristics over the campus LAN trace.       *)
(* ------------------------------------------------------------------ *)

let the_trace = ref None

let trace ~seed ~duration () =
  match !the_trace with
  | Some (s, d, t) when s = seed && d = duration -> t
  | _ ->
      let t = Fbsr_traffic.Scenario.campus_lan ~seed ~duration () in
      the_trace := Some (seed, duration, t);
      t

let pp_log_histogram label unit h =
  pf "%-24s %12s %10s %8s\n" label ("bucket (" ^ unit ^ ")") "flows" "cum%";
  let total =
    List.fold_left (fun acc (_, _, n) -> acc + n) 0 h.Fbsr_util.Stats.buckets
  in
  let cum = ref 0 in
  List.iter
    (fun (lo, hi, n) ->
      cum := !cum + n;
      pf "%-24s %5.0f-%-6.0f %10d %7.1f%%\n" "" lo hi n
        (100.0 *. float_of_int !cum /. float_of_int total))
    h.Fbsr_util.Stats.buckets

let fig9 ~seed ~duration () =
  section "Figure 9: flow size (campus LAN trace, THRESHOLD=600s)";
  let sc = trace ~seed ~duration () in
  let res = Fbsr_traffic.Flow_sim.run ~threshold:600.0 sc.Fbsr_traffic.Scenario.records in
  let pk = Fbsr_traffic.Flow_sim.sizes_packets res in
  let by = Fbsr_traffic.Flow_sim.sizes_bytes res in
  pf "flows: %d over %.0f s (%d datagrams)\n" (List.length res.Fbsr_traffic.Flow_sim.flows)
    res.Fbsr_traffic.Flow_sim.trace_duration res.Fbsr_traffic.Flow_sim.datagrams;
  pf "\n(a) packets per flow: median=%.0f mean=%.1f p90=%.0f p99=%.0f max=%.0f\n"
    (Fbsr_util.Stats.median pk)
    (Fbsr_util.Stats.summary pk).Fbsr_util.Stats.mean
    (Fbsr_util.Stats.percentile pk 90.0)
    (Fbsr_util.Stats.percentile pk 99.0)
    (Fbsr_util.Stats.summary pk).Fbsr_util.Stats.max;
  pp_log_histogram "packets/flow" "pkts" (Fbsr_util.Stats.log_histogram ~base:4.0 pk);
  Fbsr_util.Chart.hbar Fmt.stdout
    (List.map
       (fun (lo, hi, n) -> (Printf.sprintf "%.0f-%.0f pkts" lo hi, float_of_int n))
       (Fbsr_util.Stats.log_histogram ~base:4.0 pk).Fbsr_util.Stats.buckets);
  pf "\n(b) bytes per flow: median=%.0f p90=%.0f p99=%.0f max=%.0f\n"
    (Fbsr_util.Stats.median by)
    (Fbsr_util.Stats.percentile by 90.0)
    (Fbsr_util.Stats.percentile by 99.0)
    (Fbsr_util.Stats.summary by).Fbsr_util.Stats.max;
  pp_log_histogram "bytes/flow" "bytes" (Fbsr_util.Stats.log_histogram ~base:8.0 by);
  pf "\nconcentration: top 10%% of flows carry %.1f%% of bytes (paper: 'a few \
      long-lived flows carry the bulk of the traffic')\n"
    (100.0 *. Fbsr_traffic.Flow_sim.bytes_in_top res ~fraction:0.1)

let fig10 ~seed ~duration () =
  section "Figure 10: flow duration (campus LAN trace, THRESHOLD=600s)";
  let sc = trace ~seed ~duration () in
  let res = Fbsr_traffic.Flow_sim.run ~threshold:600.0 sc.Fbsr_traffic.Scenario.records in
  let d = Fbsr_traffic.Flow_sim.durations res in
  pf "duration (s): median=%.1f mean=%.1f p90=%.1f p99=%.1f max=%.1f\n"
    (Fbsr_util.Stats.median d)
    (Fbsr_util.Stats.summary d).Fbsr_util.Stats.mean
    (Fbsr_util.Stats.percentile d 90.0)
    (Fbsr_util.Stats.percentile d 99.0)
    (Fbsr_util.Stats.summary d).Fbsr_util.Stats.max;
  let short = Array.fold_left (fun n x -> if x < 60.0 then n + 1 else n) 0 d in
  pf "flows shorter than one minute: %.1f%% (paper: 'the majority of flows are \
      short')\n"
    (100.0 *. float_of_int short /. float_of_int (Array.length d))

let fig11 ~seed ~duration () =
  section "Figure 11: flow-key cache miss rate vs cache size (campus LAN trace)";
  let sc = trace ~seed ~duration () in
  let records = sc.Fbsr_traffic.Scenario.records in
  let sizes = [ 4; 8; 16; 32; 64; 128; 256; 512 ] in
  List.iter
    (fun side ->
      let side_name =
        match side with Fbsr_traffic.Cache_sim.Tfkc -> "TFKC" | _ -> "RFKC"
      in
      pf "\n(%s, direct-mapped, CRC-32 indexing)\n" side_name;
      pf "%8s %10s %10s %10s %10s\n" "entries" "miss rate" "cold" "capacity" "conflict";
      let rows =
        Fbsr_traffic.Cache_sim.size_sweep
          ~config:{ Fbsr_traffic.Cache_sim.default_config with side }
          ~sizes records
      in
      List.iter
        (fun r ->
          pf "%8d %9.2f%% %10d %10d %10d\n" r.Fbsr_traffic.Cache_sim.config.Fbsr_traffic.Cache_sim.sets
            (100.0 *. r.Fbsr_traffic.Cache_sim.miss_rate)
            r.Fbsr_traffic.Cache_sim.misses_cold r.Fbsr_traffic.Cache_sim.misses_capacity
            r.Fbsr_traffic.Cache_sim.misses_conflict)
        rows;
      Fbsr_util.Chart.hbar Fmt.stdout
        (List.map
           (fun r ->
             ( string_of_int r.Fbsr_traffic.Cache_sim.config.Fbsr_traffic.Cache_sim.sets,
               100.0 *. r.Fbsr_traffic.Cache_sim.miss_rate ))
           rows))
    [ Fbsr_traffic.Cache_sim.Tfkc; Fbsr_traffic.Cache_sim.Rfkc ];
  pf "\npaper: 'the cache miss rate drops off sharply even with reasonably small \
      cache sizes'\n"

let fig12 ~seed ~duration () =
  section "Figure 12: number of active flows over time (THRESHOLD=600s)";
  let sc = trace ~seed ~duration () in
  let res = Fbsr_traffic.Flow_sim.run ~threshold:600.0 sc.Fbsr_traffic.Scenario.records in
  let series = Fbsr_traffic.Flow_sim.active_series ~bin:300.0 res in
  pf "LAN-wide active flows per 5-minute bin:\n";
  pf "%10s %8s\n" "time (s)" "active";
  Array.iteri (fun i n -> if i mod 2 = 0 then pf "%10.0f %8d\n" (float_of_int i *. 300.0) n) series;
  pf "\n";
  Fbsr_util.Chart.timeseries Fmt.stdout ~x_label:"time (5-minute bins)"
    ~y_label:"active flows (LAN-wide)"
    (Array.map float_of_int series);
  let host, hseries, mean_peak = Fbsr_traffic.Flow_sim.active_series_per_host res in
  pf "\nper-host: busiest host %s peaks at %d simultaneous flows; mean per-host \
      peak %.1f\n"
    host
    (Array.fold_left max 0 hseries)
    mean_peak;
  pf "paper: 'the number of simultaneous active flows in a host are not \
      exceedingly high'\n"

let fig13 ~seed ~duration () =
  section "Figure 13: active flows for different THRESHOLDs";
  let sc = trace ~seed ~duration () in
  pf "%10s %8s %12s %14s %16s\n" "THRESHOLD" "flows" "avg active" "busiest-host" "mean host peak";
  List.iter
    (fun th ->
      let res = Fbsr_traffic.Flow_sim.run ~threshold:th sc.Fbsr_traffic.Scenario.records in
      let series = Fbsr_traffic.Flow_sim.active_series ~bin:60.0 res in
      let avg =
        float_of_int (Array.fold_left ( + ) 0 series) /. float_of_int (Array.length series)
      in
      let _, hseries, mean_peak = Fbsr_traffic.Flow_sim.active_series_per_host res in
      pf "%9.0fs %8d %12.1f %14d %16.1f\n" th
        (List.length res.Fbsr_traffic.Flow_sim.flows)
        avg
        (Array.fold_left max 0 hseries)
        mean_peak)
    [ 300.0; 600.0; 900.0; 1200.0; 1800.0 ];
  pf "\npaper: active flows increase 300->600s, then the policy becomes relatively \
      insensitive above ~900s\n"

let fig14 ~seed ~duration () =
  section "Figure 14: repeated flows (same 5-tuple split into multiple flows)";
  let chart = ref [] in
  let sc = trace ~seed ~duration () in
  pf "%10s %8s %10s %16s\n" "THRESHOLD" "flows" "repeated" "distinct tuples";
  List.iter
    (fun th ->
      let res = Fbsr_traffic.Flow_sim.run ~threshold:th sc.Fbsr_traffic.Scenario.records in
      let tcp_rep, udp_rep = Fbsr_traffic.Flow_sim.repeated_flows_by_protocol res in
      pf "%9.0fs %8d %10d %16d   (tcp %d / udp %d)\n" th
        (List.length res.Fbsr_traffic.Flow_sim.flows)
        (Fbsr_traffic.Flow_sim.repeated_flows res)
        (Fbsr_traffic.Flow_sim.distinct_tuples res)
        tcp_rep udp_rep;
      chart := (Printf.sprintf "%.0fs" th,
                float_of_int (Fbsr_traffic.Flow_sim.repeated_flows res)) :: !chart)
    [ 300.0; 600.0; 900.0; 1200.0; 1800.0 ];
  pf "\nrepeated flows vs THRESHOLD:\n";
  Fbsr_util.Chart.hbar Fmt.stdout (List.rev !chart);
  pf "\npaper: 'the number of repeated flows drops off quickly as THRESHOLD \
      increases'.\nTCP repeats are connections split into multiple flows (e.g. quiet \
      TELNET periods);\nUDP repeats are periodic NFS/DNS traffic re-keyed across \
      gaps — Section 7.1's\n'a connection may be broken up into multiple flows', \
      measured.\n"

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper's figures.                               *)
(* ------------------------------------------------------------------ *)

let ablation_hash ~seed ~duration () =
  section "Ablation: cache index hash function (Section 5.3's argument for CRC-32)";
  let sc = trace ~seed ~duration () in
  let records = sc.Fbsr_traffic.Scenario.records in
  pf "%8s %12s %12s %12s\n" "entries" "crc32 miss" "modulo miss" "xor miss";
  List.iter
    (fun sets ->
      let run hash =
        (Fbsr_traffic.Cache_sim.run
           ~config:{ Fbsr_traffic.Cache_sim.default_config with sets; hash }
           records)
          .Fbsr_traffic.Cache_sim.miss_rate
      in
      pf "%8d %11.2f%% %11.2f%% %11.2f%%\n" sets
        (100.0 *. run Fbsr_traffic.Cache_sim.Crc32)
        (100.0 *. run Fbsr_traffic.Cache_sim.Modulo)
        (100.0 *. run Fbsr_traffic.Cache_sim.Xor_fold))
    [ 16; 64; 256 ];
  pf
    "\nReproduction note: with per-host caches and counter-allocated sfls, low-bit\n\
     'modulo' indexing is already uniform (sequential labels stripe the sets), so\n\
     CRC-32 does not win here.  The paper's concern applies when the index mixes\n\
     correlated fields (local addresses, ports) or when caches are shared; the\n\
     XOR-fold column, which mixes in addresses, degrades at larger sizes exactly\n\
     as Section 5.3 predicts.\n"

let ablation_assoc ~seed ~duration () =
  section "Ablation: cache associativity (conflict misses vs ways)";
  let sc = trace ~seed ~duration () in
  let records = sc.Fbsr_traffic.Scenario.records in
  pf "%8s %8s %12s %12s\n" "entries" "ways" "miss rate" "conflict";
  List.iter
    (fun (sets, assoc) ->
      let r =
        Fbsr_traffic.Cache_sim.run
          ~config:{ Fbsr_traffic.Cache_sim.default_config with sets; assoc }
          records
      in
      pf "%8d %8d %11.2f%% %12d\n" (sets * assoc) assoc
        (100.0 *. r.Fbsr_traffic.Cache_sim.miss_rate)
        r.Fbsr_traffic.Cache_sim.misses_conflict)
    [ (64, 1); (32, 2); (16, 4); (256, 1); (128, 2); (64, 4) ]

let ablation_keying () =
  section "Ablation: per-flow vs per-datagram keying cost (Section 2.2)";
  (* Cost of key material per datagram: FBS derives one flow key per flow
     (one MD5); per-datagram host-pair keying draws 8 cryptographically
     random bytes from BBS per datagram. *)
  let rng = Fbsr_util.Rng.create 5 in
  let bbs = Fbsr_crypto.Bbs.create ~modulus_bits:256 rng ~seed:"benchseed" in
  let t0 = Unix.gettimeofday () in
  let n_bbs = 200 in
  for _ = 1 to n_bbs do
    ignore (Fbsr_crypto.Bbs.bytes bbs 8)
  done;
  let bbs_per_key = (Unix.gettimeofday () -. t0) /. float_of_int n_bbs in
  let t0 = Unix.gettimeofday () in
  let n_md5 = 20000 in
  for _ = 1 to n_md5 do
    ignore (Fbsr_crypto.Md5.digest "0123456789abcdef0123456789abcdef0123456789")
  done;
  let md5_per_key = (Unix.gettimeofday () -. t0) /. float_of_int n_md5 in
  pf "flow key derivation (MD5):            %8.1f us per key, once per FLOW\n"
    (md5_per_key *. 1e6);
  pf "BBS per-datagram key (256-bit modulus): %8.1f us per key, once per DATAGRAM\n"
    (bbs_per_key *. 1e6);
  pf "=> at 30 packets per flow (trace median ~6-30), per-datagram keying costs \
      %.0fx more key-material CPU\n"
    (30.0 *. bbs_per_key /. md5_per_key)

let ablation_mac () =
  section "Ablation: prefix MAC (paper) vs HMAC (RFC 2104)";
  let key = String.make 16 'k' in
  let buf = String.make 1460 'd' in
  let t_prefix =
    time_throughput ~bytes:1460 (fun () ->
        ignore (Fbsr_crypto.Mac.prefix Fbsr_crypto.Hash.md5 ~key [ buf ]))
  in
  let t_hmac =
    time_throughput ~bytes:1460 (fun () ->
        ignore (Fbsr_crypto.Mac.hmac Fbsr_crypto.Hash.md5 ~key [ buf ]))
  in
  pf "prefix keyed-MD5: %8.0f kB/s\n" (t_prefix /. 1e3);
  pf "HMAC-MD5:         %8.0f kB/s (extra inner/outer passes)\n" (t_hmac /. 1e3);
  pf "HMAC costs %.0f%% more on MTU-sized datagrams; FBS's suite field lets a \
      deployment choose.\n"
    (100.0 *. ((t_prefix /. t_hmac) -. 1.0))


(* Section 5.3: "Collision misses can be avoided by increasing the
   associativity of the cache, by using a better replacement policy, or by
   indexing the cache with a better hash function" — the replacement leg. *)
let ablation_replacement ~seed ~duration () =
  section "Ablation: cache replacement policy (Section 5.3)";
  let sc = trace ~seed ~duration () in
  let records = sc.Fbsr_traffic.Scenario.records in
  pf "%8s %6s %12s %12s %12s\n" "entries" "ways" "LRU miss" "FIFO miss" "random miss";
  List.iter
    (fun (sets, assoc) ->
      let run replacement =
        (Fbsr_traffic.Cache_sim.run
           ~config:{ Fbsr_traffic.Cache_sim.default_config with sets; assoc; replacement }
           records)
          .Fbsr_traffic.Cache_sim.miss_rate
      in
      pf "%8d %6d %11.2f%% %11.2f%% %11.2f%%\n" (sets * assoc) assoc
        (100.0 *. run Fbsr_fbs.Cache.Lru)
        (100.0 *. run Fbsr_fbs.Cache.Fifo)
        (100.0 *. run (Fbsr_fbs.Cache.Random (Fbsr_util.Rng.create 9))))
    [ (32, 2); (16, 4); (128, 2); (64, 4) ];
  pf
    "\nLRU edges out FIFO and random at every geometry, but the gap is small: the\n\
     packet-train access pattern gives any recency-ish policy most of the benefit,\n\
     consistent with Section 5.3's observation that low associativity 'reduces the\n\
     influence of the replacement policy'.\n"

(* Footnote 11: "a hash collision can prematurely terminate a flow.  This
   does not affect security though.  Also, almost no collision is observed
   with a reasonable FSTSIZE, e.g., 32 or above." *)
let ablation_fstsize ~seed ~duration () =
  section "Ablation: FST size vs hash collisions (footnote 11)";
  let sc = trace ~seed ~duration () in
  pf "%8s %10s %12s %22s\n" "FSTSIZE" "flows" "collisions" "collisions/datagram";
  List.iter
    (fun fst_size ->
      let res =
        Fbsr_traffic.Flow_sim.run ~threshold:600.0 ~fst_size
          sc.Fbsr_traffic.Scenario.records
      in
      pf "%8d %10d %12d %21.5f\n" fst_size
        (List.length res.Fbsr_traffic.Flow_sim.flows)
        res.Fbsr_traffic.Flow_sim.collisions
        (float_of_int res.Fbsr_traffic.Flow_sim.collisions
        /. float_of_int res.Fbsr_traffic.Flow_sim.datagrams))
    [ 8; 16; 32; 64; 256; 1024 ];
  pf
    "\nfootnote 11 holds for the desktops; the busy servers of a 1990s-scale LAN \
     want a\nfew hundred entries -- memory that 'is not very large compared to the \
     amount of\nmemory available in a modern kernel' even then.\n"

let ablation_fused () =
  section "Ablation: single-pass MAC+encrypt (Section 5.3 'one loop' suggestion)";
  let des_key = Fbsr_crypto.Des.of_string "k3yk3yk3" in
  let mac_key = String.make 16 'k' in
  pf "%10s %16s %16s %8s\n" "size" "two-pass (MB/s)" "fused (MB/s)" "gain";
  List.iter
    (fun size ->
      let payload = String.make size 'd' in
      let two =
        time_throughput ~bytes:size (fun () ->
            ignore
              (Fbsr_crypto.Fused.mac_then_encrypt ~mac_key ~des_key ~iv:"initvect"
                 ~prefix_parts:[ "c"; "t" ] payload))
      in
      let fused =
        time_throughput ~bytes:size (fun () ->
            ignore
              (Fbsr_crypto.Fused.mac_and_encrypt ~mac_key ~des_key ~iv:"initvect"
                 ~prefix_parts:[ "c"; "t" ] payload))
      in
      pf "%9dB %16.2f %16.2f %7.1f%%\n" size (two /. 1e6) (fused /. 1e6)
        (100.0 *. ((fused /. two) -. 1.0)))
    [ 1460; 65536; 1048576 ];
  pf
    "\nBoth produce bit-identical (MAC, ciphertext).  Honest reproduction note: \
     with a\ncompute-bound DES (~4 MB/s) the extra memory pass of the two-pass \
     version is in\nthe noise, so fusing MAC and encryption alone buys little — \
     which is consistent\nwith the paper's fuller suggestion that the win comes \
     from folding in the OTHER\ndata-touching passes too (checksums, user/kernel \
     copies), not from crypto-crypto\nfusion by itself.\n"

(* The paper's second trace environment: the lightly-hit WWW server. *)
let www_flows ~seed ~duration () =
  section "WWW server trace (the paper's second environment, ~10k hits/day)";
  let sc = Fbsr_traffic.Scenario.www_server ~seed ~duration () in
  let records = sc.Fbsr_traffic.Scenario.records in
  pf "%d datagrams over %.0f s from %d client hosts\n"
    (Fbsr_traffic.Record.count records) duration
    (List.length sc.Fbsr_traffic.Scenario.hosts - 1);
  let res = Fbsr_traffic.Flow_sim.run ~threshold:600.0 records in
  let pk = Fbsr_traffic.Flow_sim.sizes_packets res in
  let d = Fbsr_traffic.Flow_sim.durations res in
  pf "flows: %d; packets/flow median=%.0f p99=%.0f; duration median=%.1fs p99=%.1fs\n"
    (List.length res.Fbsr_traffic.Flow_sim.flows)
    (Fbsr_util.Stats.median pk)
    (Fbsr_util.Stats.percentile pk 99.0)
    (Fbsr_util.Stats.median d)
    (Fbsr_util.Stats.percentile d 99.0);
  Fbsr_util.Chart.hbar Fmt.stdout
    (List.map
       (fun (lo, hi, n) -> (Printf.sprintf "%.0f-%.0f pkts" lo hi, float_of_int n))
       (Fbsr_util.Stats.log_histogram ~base:4.0 pk).Fbsr_util.Stats.buckets);
  let host, hseries, _ = Fbsr_traffic.Flow_sim.active_series_per_host res in
  pf "server-side active flows (host %s): peak %d\n" host (Array.fold_left max 0 hseries);
  pf "WWW traffic is the short-flow extreme: almost every conversation is a few \
     packets, reinforcing the case for datagram semantics.\n"

(* Replay window sweep: the Section 6.2 trade-off between clock-skew
   tolerance and the replay-acceptance window. *)
let ablation_replay_window () =
  section "Ablation: replay freshness window (Section 6.2 trade-off)";
  pf "%12s %22s %22s\n" "window (min)" "skew 90s accepted?" "replay +5min accepted?";
  List.iter
    (fun window_minutes ->
      let p =
        Fixture.engine_pair ~seed:61 ~replay_window_minutes:window_minutes
          ~src:"10.0.0.1" ~dst:"10.0.0.2" ()
      in
      let attrs =
        Fbsr_fbs.Fam.attrs ~protocol:17 ~src_port:1 ~dst_port:2
          ~src:p.Fixture.src ~dst:p.Fixture.dst ()
      in
      let wire =
        Result.get_ok
          (Fbsr_fbs.Engine.send_sync p.Fixture.sender ~now:600.0 ~attrs
             ~secret:true ~payload:"x")
      in
      let accepted_at recv_now =
        match
          Fbsr_fbs.Engine.receive_sync p.Fixture.receiver ~now:recv_now
            ~src:p.Fixture.src ~wire
        with
        | Ok _ -> "yes"
        | Error _ -> "no"
      in
      pf "%12d %22s %22s\n" window_minutes (accepted_at 690.0) (accepted_at 900.0))
    [ 0; 1; 2; 5; 10 ];
  pf "\nsmall windows reject replays sooner but demand tighter clock sync; the \
     paper picks minutes-scale windows and defers exact replay protection to \
     higher layers.\n"

(* The live-site run: the workload through REAL stacks, cross-checking the
   offline cache simulator's Figure 11 predictions against measured cache
   behaviour. *)
let live_site ~seed () =
  section "Live site: the campus workload through real FBS stacks";
  let duration = 1800.0 and desktops = 6 in
  let scenario = Fbsr_traffic.Scenario.campus_lan ~seed ~duration ~desktops () in
  pf "%d datagrams over %.0f s, %d hosts — every one through real \
      FBSSend()/FBSReceive()\n"
    (Fbsr_traffic.Record.count scenario.Fbsr_traffic.Scenario.records)
    duration
    (List.length scenario.Fbsr_traffic.Scenario.hosts);
  pf "\n%8s %12s %12s %14s %14s\n" "entries" "live TFKC" "sim TFKC" "live RFKC"
    "sim RFKC";
  List.iter
    (fun sets ->
      let live =
        Live_site.run ~seed ~duration ~desktops ~tfkc_sets:sets
          ~rfkc_sets:sets ()
      in
      let sim side =
        (Fbsr_traffic.Cache_sim.run
           ~config:{ Fbsr_traffic.Cache_sim.default_config with sets; side }
           scenario.Fbsr_traffic.Scenario.records)
          .Fbsr_traffic.Cache_sim.miss_rate
      in
      pf "%8d %11.2f%% %11.2f%% %13.2f%% %13.2f%%\n" sets
        (100.0 *. (1.0 -. live.Live_site.tfkc_hit_rate))
        (100.0 *. sim Fbsr_traffic.Cache_sim.Tfkc)
        (100.0 *. (1.0 -. live.Live_site.rfkc_hit_rate))
        (100.0 *. sim Fbsr_traffic.Cache_sim.Rfkc))
    [ 16; 64 ];
  let live = Live_site.run ~seed ~duration ~desktops () in
  pf "\nend-to-end: %d/%d datagrams delivered; %d flows; %d certificate fetches; \
      %d DH computations; %d MACs; %d MAC failures\n"
    live.Live_site.datagrams_delivered
    live.Live_site.datagrams_sent
    live.Live_site.flows_started
    live.Live_site.mkd_fetches
    live.Live_site.master_key_computations
    live.Live_site.macs
    live.Live_site.mac_failures;
  pf "the offline simulator (the paper's methodology) and the live protocol agree \
      on the miss-rate shape.\n"

let faults ?json ?spans_out ?metrics_text ?telemetry ~seed () =
  Faults.report ~seed ?json ?spans_out ?metrics_text ?telemetry ()

let run_all ?json seed duration bytes =
  crypto_table ();
  fig8 ~bytes ();
  fig9 ~seed ~duration ();
  fig10 ~seed ~duration ();
  fig11 ~seed ~duration ();
  fig12 ~seed ~duration ();
  fig13 ~seed ~duration ();
  fig14 ~seed ~duration ();
  ablation_hash ~seed ~duration ();
  ablation_assoc ~seed ~duration ();
  ablation_keying ();
  ablation_mac ();
  ablation_fstsize ~seed ~duration ();
  ablation_replacement ~seed ~duration ();
  ablation_fused ();
  www_flows ~seed ~duration ();
  ablation_replay_window ();
  live_site ~seed ();
  faults ?json ~seed ()
