(** The pre-refactor string-based seal/open datapath, retained as a
    reference implementation for the differential suite
    (test/test_slice.ml) and for the in-artifact allocation comparison
    of [bench/main.exe --json].

    Byte-compatible with the engine: [seal] with the confounder and
    timestamp taken from an engine-produced wire reproduces that wire
    exactly, and [open_] accepts engine output (and vice versa). *)

type counters = { mutable allocs : int; mutable bytes_copied : int }
(** Explicit datapath buffers allocated and payload bytes copied —
    the same accounting {!Fbsr_fbs.Engine.counters} keeps for the
    zero-copy path. *)

val create_counters : unit -> counters

val seal :
  ?counters:counters ->
  suite:Fbsr_fbs.Suite.t ->
  flow_key:string ->
  sfl:Fbsr_fbs.Sfl.t ->
  secret:bool ->
  confounder:int ->
  timestamp:int ->
  payload:string ->
  unit ->
  string

type open_error = [ `Header of Fbsr_fbs.Header.error | `Bad_mac | `Decrypt ]

val open_ :
  ?counters:counters ->
  suite:Fbsr_fbs.Suite.t ->
  flow_key:string ->
  wire:string ->
  unit ->
  (Fbsr_fbs.Header.t * string, open_error) result
(** Decode, decrypt and verify one wire datagram (no replay or keying
    machinery — the differential suite exercises those through the
    engine itself). *)
