(* Shared engine-pair fixture: two FBS engines over a synchronous local
   resolver (certificates served from an in-process authority, no
   simulated network).  This is the setup every micro-benchmark and
   several ablations need — one enrollment per endpoint, one engine per
   side — extracted here so bench/main.ml and the experiment harness stop
   duplicating it. *)

type t = {
  src : Fbsr_fbs.Principal.t;
  dst : Fbsr_fbs.Principal.t;
  sender : Fbsr_fbs.Engine.t;
  receiver : Fbsr_fbs.Engine.t;
}

let mtu_payload = String.make 1460 'd'

let engine_pair ?(seed = 424242) ?(suite = Fbsr_fbs.Suite.paper_md5_des)
    ?(replay_window_minutes = 2) ?(strict_replay = false) ?(src = "10.9.0.1")
    ?(dst = "10.9.0.2") ?(spans = Fbsr_util.Span.none)
    ?(flowstats = fun () -> Fbsr_fbs.Flowstats.none) () =
  let rng = Fbsr_util.Rng.create seed in
  let group = Lazy.force Fbsr_crypto.Dh.test_group in
  let ca = Fbsr_cert.Authority.create ~rng ~bits:512 () in
  let enroll name =
    let priv = Fbsr_crypto.Dh.gen_private group rng in
    let pub = Fbsr_crypto.Dh.public group priv in
    let (_ : Fbsr_cert.Certificate.t) =
      Fbsr_cert.Authority.enroll ca ~now:0.0 ~subject:name
        ~group:group.Fbsr_crypto.Dh.name
        ~public_value:(Fbsr_crypto.Dh.public_to_bytes group pub)
    in
    (Fbsr_fbs.Principal.of_string name, priv)
  in
  let s, s_priv = enroll src in
  let d, d_priv = enroll dst in
  let resolver peer k =
    match Fbsr_cert.Authority.lookup ca (Fbsr_fbs.Principal.to_string peer) with
    | Some c -> k (Ok c)
    | None -> k (Error "unknown")
  in
  let engine_for local priv sfl_seed =
    let keying =
      Fbsr_fbs.Keying.create ~local ~group ~private_value:priv
        ~ca_public:(Fbsr_cert.Authority.public ca)
        ~ca_hash:(Fbsr_cert.Authority.hash ca)
        ~resolver
        ~clock:(fun () -> 0.0)
        ()
    in
    let alloc = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create sfl_seed) in
    let fam = Fbsr_fbs.Fam.create (Fbsr_fbs.Policy_five_tuple.policy ~alloc ()) in
    Fbsr_fbs.Engine.create ~suite ~replay_window_minutes ~strict_replay ~spans
      ~flowstats:(flowstats ()) ~keying ~fam ()
  in
  {
    src = s;
    dst = d;
    sender = engine_for s s_priv (seed lxor 1);
    receiver = engine_for d d_priv (seed lxor 2);
  }

(* Sharded variant: same one-CA/two-principal world, but each side is a
   Sharded.t whose per-shard engines share nothing — own Keying (own
   PVC/MKC over the shared authority), own caches, own scratch, own span
   recorder.  The per-shard masters are pre-derived synchronously here so
   no shard domain ever runs the DH exponentiation (the resolver and
   authority are only guaranteed read-only at that point). *)

type sharded = {
  sh_src : Fbsr_fbs.Principal.t;
  sh_dst : Fbsr_fbs.Principal.t;
  tx : Fbsr_fbs.Sharded.t;
  rx : Fbsr_fbs.Sharded.t;
}

let sharded_pair ?(seed = 424242) ?(suite = Fbsr_fbs.Suite.paper_md5_des)
    ?nshards ?(fst_bits = 8) ?fam_threshold ?(replay_window_minutes = 2)
    ?(strict_replay = false) ?(src = "10.9.0.1") ?(dst = "10.9.0.2")
    ?(spans = fun (_shard : int) -> Fbsr_util.Span.none)
    ?(flowstats = fun (_shard : int) -> Fbsr_fbs.Flowstats.none) () =
  let rng = Fbsr_util.Rng.create seed in
  let group = Lazy.force Fbsr_crypto.Dh.test_group in
  let ca = Fbsr_cert.Authority.create ~rng ~bits:512 () in
  let enroll name =
    let priv = Fbsr_crypto.Dh.gen_private group rng in
    let pub = Fbsr_crypto.Dh.public group priv in
    let (_ : Fbsr_cert.Certificate.t) =
      Fbsr_cert.Authority.enroll ca ~now:0.0 ~subject:name
        ~group:group.Fbsr_crypto.Dh.name
        ~public_value:(Fbsr_crypto.Dh.public_to_bytes group pub)
    in
    (Fbsr_fbs.Principal.of_string name, priv)
  in
  let s, s_priv = enroll src in
  let d, d_priv = enroll dst in
  let resolver peer k =
    match Fbsr_cert.Authority.lookup ca (Fbsr_fbs.Principal.to_string peer) with
    | Some c -> k (Ok c)
    | None -> k (Error "unknown")
  in
  let engine_for local priv peer sfl_seed shard =
    let keying =
      Fbsr_fbs.Keying.create ~local ~group ~private_value:priv
        ~ca_public:(Fbsr_cert.Authority.public ca)
        ~ca_hash:(Fbsr_cert.Authority.hash ca)
        ~resolver
        ~clock:(fun () -> 0.0)
        ()
    in
    (match Fbsr_fbs.Keying.get_master_sync keying peer with
    | Ok _ -> ()
    | Error e ->
        failwith
          (Fmt.str "Fixture.sharded_pair: master derivation failed: %a"
             Fbsr_fbs.Keying.pp_error e));
    let alloc = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create sfl_seed) in
    let fam = Fbsr_fbs.Fam.create (Fbsr_fbs.Policy_five_tuple.policy ~alloc ()) in
    Fbsr_fbs.Engine.create ~suite ~replay_window_minutes ~strict_replay
      ~spans:(spans shard) ~flowstats:(flowstats shard) ~keying ~fam ()
  in
  let dispatcher_fam =
    let alloc = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create (seed lxor 3)) in
    Fbsr_fbs.Fam.create
      (Fbsr_fbs.Policy_five_tuple.policy ~fst_size:(1 lsl fst_bits)
         ?threshold:fam_threshold ~alloc ())
  in
  let tx =
    Fbsr_fbs.Sharded.create ?nshards ~confounder_seed:(seed lxor 5)
      ~engine:(fun i -> engine_for s s_priv d ((seed lxor 1) + (i * 1693)) i)
      ~fam:dispatcher_fam ()
  in
  (* The receive side never classifies, but Sharded.create still wants a
     dispatcher FAM; give it an inert one. *)
  let rx_fam =
    let alloc = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create (seed lxor 4)) in
    Fbsr_fbs.Fam.create (Fbsr_fbs.Policy_five_tuple.policy ~alloc ())
  in
  let rx =
    Fbsr_fbs.Sharded.create ?nshards ~confounder_seed:(seed lxor 6)
      ~engine:(fun i -> engine_for d d_priv s ((seed lxor 2) + (i * 1693)) i)
      ~fam:rx_fam ()
  in
  { sh_src = s; sh_dst = d; tx; rx }

let warm_pair ?seed ?(suite = Fbsr_fbs.Suite.paper_md5_des) ?(secret = true)
    ?(payload = mtu_payload) () =
  let p = engine_pair ?seed ~suite () in
  let attrs =
    Fbsr_fbs.Fam.attrs ~protocol:17 ~src_port:1000 ~dst_port:2000 ~src:p.src
      ~dst:p.dst ()
  in
  let wire =
    match
      Fbsr_fbs.Engine.send_sync p.sender ~now:60.0 ~attrs ~secret ~payload
    with
    | Ok w -> w
    | Error e ->
        failwith (Fmt.str "Fixture.warm_pair: send failed: %a" Fbsr_fbs.Engine.pp_error e)
  in
  (match Fbsr_fbs.Engine.receive_sync p.receiver ~now:60.0 ~src:p.src ~wire with
  | Ok _ -> ()
  | Error e ->
      failwith
        (Fmt.str "Fixture.warm_pair: receive failed: %a" Fbsr_fbs.Engine.pp_error e));
  (p, attrs, wire)

(* Many-flow variant for the cross-flow batching work: the bitsliced DES
   kernel only pays off when a flush holds chains from many *distinct*
   flows, so benchmarks and tests need a sender whose TFKC already holds
   that many warm entries.  Flows differ only in source port — same
   principals, same suite — which is exactly the five-tuple split the
   paper's FAM policy produces for parallel connections. *)
let warm_flows ?seed ?(suite = Fbsr_fbs.Suite.paper_md5_des) ?(secret = true)
    ?(payload = mtu_payload) ?(flows = Fbsr_crypto.Des_bitslice.lanes) ?spans
    ?flowstats () =
  let p = engine_pair ?seed ~suite ?spans ?flowstats () in
  let attrs =
    Array.init flows (fun i ->
        Fbsr_fbs.Fam.attrs ~protocol:17 ~src_port:(1000 + i) ~dst_port:2000
          ~src:p.src ~dst:p.dst ())
  in
  Array.iter
    (fun a ->
      let wire =
        match Fbsr_fbs.Engine.send_sync p.sender ~now:60.0 ~attrs:a ~secret ~payload with
        | Ok w -> w
        | Error e ->
            failwith
              (Fmt.str "Fixture.warm_flows: send failed: %a" Fbsr_fbs.Engine.pp_error
                 e)
      in
      match Fbsr_fbs.Engine.receive_sync p.receiver ~now:60.0 ~src:p.src ~wire with
      | Ok _ -> ()
      | Error e ->
          failwith
            (Fmt.str "Fixture.warm_flows: receive failed: %a" Fbsr_fbs.Engine.pp_error
               e))
    attrs;
  (p, attrs)
