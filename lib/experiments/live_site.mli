(** The synthetic campus workload driven through real FBS stacks end to
    end: the measured analogue of the trace-driven figures. *)

type result = {
  datagrams_sent : int;
  datagrams_delivered : int;
  hosts : int;
  flows_started : int;
  mkd_fetches : int;
  master_key_computations : int;
  flow_key_computations : int;
  macs : int;
  tfkc_hit_rate : float;
  rfkc_hit_rate : float;
  replay_rejections : int;
  mac_failures : int;
}

val run :
  ?seed:int ->
  ?duration:float ->
  ?desktops:int ->
  ?tfkc_sets:int ->
  ?rfkc_sets:int ->
  ?suite:Fbsr_fbs.Suite.t ->
  ?faults:Fbsr_netsim.Link.profile ->
  unit ->
  result
(** [faults] runs the whole site over fault-injection links (see
    {!Fbsr_netsim.Link}); delivery then measures the stacks' loss
    tolerance rather than the clean-wire baseline. *)
