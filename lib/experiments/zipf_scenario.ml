(* Million-flow Zipf scenario over the sharded engines.  See
   zipf_scenario.mli. *)

module J = Fbsr_util.Json

type shard_row = { shard : int; datagrams : int; allocs_per_datagram : float }

type result = {
  flows : int;
  datagrams : int;
  nshards : int;
  touched_flows : int;
  flows_started : int;
  elapsed_s : float;
  datagrams_per_sec : float;
  flow_key_computations : int;
  keysched_hits : int;
  keysched_misses : int;
  rows : shard_row list;
  failures : string list;
  ok : bool;
}

(* Round-trip [datagrams] Zipf datagrams through a sharded pair in
   batches.  The simulated clock advances ~10 ms per batch: far inside
   the replay window over the whole run, far enough to exercise
   timestamping. *)
let drive p wl ~datagrams ~batch fail =
  let sent = ref 0 in
  let round = ref 0 in
  while !sent < datagrams do
    let k = min batch (datagrams - !sent) in
    let now = 60.0 +. (0.01 *. Float.of_int !round) in
    incr round;
    let jobs = Fbsr_traffic.Zipf_workload.batch wl k in
    let wires = Fbsr_fbs.Sharded.send_all p.Fixture.tx ~now ~secret:true jobs in
    let ok_wires =
      Array.map
        (function
          | Ok w -> w
          | Error e ->
              fail (Fmt.str "send failed: %a" Fbsr_fbs.Engine.pp_error e);
              "")
        wires
    in
    let received =
      Fbsr_fbs.Sharded.receive_all p.Fixture.rx ~now ~src:p.Fixture.sh_src
        ok_wires
    in
    Array.iter
      (function
        | Ok (_ : Fbsr_fbs.Engine.accepted) -> ()
        | Error e ->
            fail (Fmt.str "receive failed: %a" Fbsr_fbs.Engine.pp_error e))
      received;
    sent := !sent + k
  done

let run ?(flows = 1_000_000) ?(datagrams = 1_000_000) ?(batch = 4096)
    ?nshards ?(seed = 20260808) ?(fst_bits = 19) () =
  let p = Fixture.sharded_pair ~seed ?nshards ~fst_bits () in
  let wl =
    Fbsr_traffic.Zipf_workload.create ~seed:(seed lxor 0xf10c) ~flows
      ~src:p.Fixture.sh_src ~dst:p.Fixture.sh_dst ()
  in
  let n = Fbsr_fbs.Sharded.nshards p.Fixture.tx in
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let t0 = Unix.gettimeofday () in
  drive p wl ~datagrams ~batch (fun m -> failf "%s" m);
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Per-shard zero-copy audit: the sender shard allocates the wire, the
     receiver shard (same index — shard choice is a pure function of the
     sfl and both sides run the same count) the plaintext.  Exactly 2
     allocations per datagram, shard by shard. *)
  let rows =
    List.init n (fun i ->
        let txc = Fbsr_fbs.Engine.counters (Fbsr_fbs.Sharded.engine p.Fixture.tx i) in
        let rxc = Fbsr_fbs.Engine.counters (Fbsr_fbs.Sharded.engine p.Fixture.rx i) in
        let d = txc.Fbsr_fbs.Engine.sends in
        if rxc.Fbsr_fbs.Engine.accepted <> d then
          failf "shard %d: %d sealed but %d accepted" i d
            rxc.Fbsr_fbs.Engine.accepted;
        let allocs =
          txc.Fbsr_fbs.Engine.datapath_allocs
          + rxc.Fbsr_fbs.Engine.datapath_allocs
        in
        let apd = if d = 0 then 0.0 else Float.of_int allocs /. Float.of_int d in
        if d > 0 && allocs <> 2 * d then
          failf "shard %d: %d datapath allocs over %d datagrams (want exactly 2/datagram)"
            i allocs d;
        { shard = i; datagrams = d; allocs_per_datagram = apd })
  in
  let agg = Fbsr_fbs.Sharded.aggregate_counters p.Fixture.tx in
  if agg.Fbsr_fbs.Engine.sends <> datagrams then
    failf "aggregate sends %d <> offered %d" agg.Fbsr_fbs.Engine.sends datagrams;
  let fam_stats = Fbsr_fbs.Fam.stats (Fbsr_fbs.Sharded.fam p.Fixture.tx) in
  {
    flows;
    datagrams;
    nshards = n;
    touched_flows = Fbsr_traffic.Zipf_workload.touched wl;
    flows_started = fam_stats.Fbsr_fbs.Fam.flows_started;
    elapsed_s = elapsed;
    datagrams_per_sec =
      (if elapsed > 0.0 then Float.of_int datagrams /. elapsed else 0.0);
    flow_key_computations = agg.Fbsr_fbs.Engine.flow_key_computations;
    keysched_hits = agg.Fbsr_fbs.Engine.keysched_hits;
    keysched_misses = agg.Fbsr_fbs.Engine.keysched_misses;
    rows;
    failures = List.rev !failures;
    ok = !failures = [];
  }

let to_json r =
  J.Obj
    [
      ("schema", J.String "fbsr-zipf/1");
      ("flows", J.Int r.flows);
      ("datagrams", J.Int r.datagrams);
      ("nshards", J.Int r.nshards);
      ("touched_flows", J.Int r.touched_flows);
      ("flows_started", J.Int r.flows_started);
      ("elapsed_s", J.Float r.elapsed_s);
      ("datagrams_per_sec", J.Float r.datagrams_per_sec);
      ("flow_key_computations", J.Int r.flow_key_computations);
      ("keysched_hits", J.Int r.keysched_hits);
      ("keysched_misses", J.Int r.keysched_misses);
      ( "shards",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("shard", J.Int row.shard);
                   ("datagrams", J.Int row.datagrams);
                   ("allocs_per_datagram", J.Float row.allocs_per_datagram);
                 ])
             r.rows) );
      ("failures", J.List (List.map (fun m -> J.String m) r.failures));
      ("ok", J.Bool r.ok);
    ]

let report ?flows ?datagrams ?batch ?nshards ?seed ?fst_bits ?json () =
  let r = run ?flows ?datagrams ?batch ?nshards ?seed ?fst_bits () in
  Fmt.pr "=== million-flow Zipf over the sharded engine ===@.";
  Fmt.pr "flows %d (touched %d, started %d)  datagrams %d  shards %d@."
    r.flows r.touched_flows r.flows_started r.datagrams r.nshards;
  Fmt.pr "%.2f s  %.0f datagrams/s  flow keys %d  keysched %d hit / %d miss@."
    r.elapsed_s r.datagrams_per_sec r.flow_key_computations r.keysched_hits
    r.keysched_misses;
  List.iter
    (fun row ->
      Fmt.pr "  shard %d: %8d datagrams  allocs/datagram %.3f@." row.shard
        row.datagrams row.allocs_per_datagram)
    r.rows;
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) r.failures;
  Fmt.pr "%s@." (if r.ok then "zipf scenario: OK" else "zipf scenario: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (to_json r));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  r

(* ------------------------------------------------------------------ *)
(* Section 7.3 miss-rate curve (fig11-14 analogue) at million-flow     *)
(* scale: a fresh sharded pair per point, so each point's caches start *)
(* cold and the curve is active flows vs steady-state miss rate.       *)
(* ------------------------------------------------------------------ *)

type curve_row = {
  offered_flows : int;
  active_flows : int;
  tfkc_accesses : int;
  tfkc_miss_rate : float;
  rfkc_accesses : int;
  rfkc_miss_rate : float;
  point_flow_key_computations : int;
}

type curve = {
  points : curve_row list;
  datagrams_per_point : int;
  curve_nshards : int;
  curve_elapsed_s : float;
  curve_failures : string list;
  curve_ok : bool;
}

let default_points =
  [ 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000 ]

let miss_curve ?(points = default_points) ?(datagrams = 200_000) ?(batch = 4096)
    ?nshards ?(seed = 20260808) ?(fst_bits = 19) () =
  if points = [] then invalid_arg "Zipf_scenario.miss_curve: no points";
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let t0 = Unix.gettimeofday () in
  let nshards_seen = ref 0 in
  let rows =
    List.map
      (fun flows ->
        let p = Fixture.sharded_pair ~seed:(seed + flows) ?nshards ~fst_bits () in
        let wl =
          Fbsr_traffic.Zipf_workload.create ~seed:(seed lxor flows) ~flows
            ~src:p.Fixture.sh_src ~dst:p.Fixture.sh_dst ()
        in
        drive p wl ~datagrams ~batch (fun m -> failf "%s" m);
        let n = Fbsr_fbs.Sharded.nshards p.Fixture.tx in
        nshards_seen := n;
        (* Sum each side's flow-key-cache statistics across its shards:
           the aggregate behaves like one cache n times the size, which
           is exactly what the sharded datapath presents to the site. *)
        let totals side cache =
          List.fold_left
            (fun (a, m) i ->
              let s =
                Fbsr_fbs.Cache.stats (cache (Fbsr_fbs.Sharded.engine side i))
              in
              ( a + Fbsr_fbs.Cache.accesses s,
                m + Fbsr_fbs.Cache.total_misses s ))
            (0, 0)
            (List.init n (fun i -> i))
        in
        let rate (a, m) =
          if a = 0 then 0.0 else Float.of_int m /. Float.of_int a
        in
        let t = totals p.Fixture.tx Fbsr_fbs.Engine.tfkc in
        let r = totals p.Fixture.rx Fbsr_fbs.Engine.rfkc in
        let agg = Fbsr_fbs.Sharded.aggregate_counters p.Fixture.tx in
        if agg.Fbsr_fbs.Engine.sends <> datagrams then
          failf "point %d: aggregate sends %d <> offered %d" flows
            agg.Fbsr_fbs.Engine.sends datagrams;
        {
          offered_flows = flows;
          active_flows = Fbsr_traffic.Zipf_workload.touched wl;
          tfkc_accesses = fst t;
          tfkc_miss_rate = rate t;
          rfkc_accesses = fst r;
          rfkc_miss_rate = rate r;
          point_flow_key_computations =
            agg.Fbsr_fbs.Engine.flow_key_computations;
        })
      points
  in
  {
    points = rows;
    datagrams_per_point = datagrams;
    curve_nshards = !nshards_seen;
    curve_elapsed_s = Unix.gettimeofday () -. t0;
    curve_failures = List.rev !failures;
    curve_ok = !failures = [];
  }

let curve_to_json c =
  J.Obj
    [
      ("schema", J.String "fbsr-zipf-miss-curve/1");
      ("datagrams_per_point", J.Int c.datagrams_per_point);
      ("nshards", J.Int c.curve_nshards);
      ("elapsed_s", J.Float c.curve_elapsed_s);
      ( "points",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("offered_flows", J.Int p.offered_flows);
                   ("active_flows", J.Int p.active_flows);
                   ("tfkc_accesses", J.Int p.tfkc_accesses);
                   ("tfkc_miss_rate", J.Float p.tfkc_miss_rate);
                   ("rfkc_accesses", J.Int p.rfkc_accesses);
                   ("rfkc_miss_rate", J.Float p.rfkc_miss_rate);
                   ( "flow_key_computations",
                     J.Int p.point_flow_key_computations );
                 ])
             c.points) );
      ("failures", J.List (List.map (fun m -> J.String m) c.curve_failures));
      ("ok", J.Bool c.curve_ok);
    ]

let curve_report ?points ?datagrams ?batch ?nshards ?seed ?fst_bits ?json () =
  let c = miss_curve ?points ?datagrams ?batch ?nshards ?seed ?fst_bits () in
  Fmt.pr "=== active flows vs flow-key-cache miss rate (fig11-14 analogue) ===@.";
  Fmt.pr "%d datagrams/point  %d shards  %.2f s total@." c.datagrams_per_point
    c.curve_nshards c.curve_elapsed_s;
  Fmt.pr "%10s %10s %12s %12s %12s@." "flows" "active" "TFKC miss" "RFKC miss"
    "flow keys";
  List.iter
    (fun p ->
      Fmt.pr "%10d %10d %11.2f%% %11.2f%% %12d@." p.offered_flows
        p.active_flows
        (100.0 *. p.tfkc_miss_rate)
        (100.0 *. p.rfkc_miss_rate)
        p.point_flow_key_computations)
    c.points;
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) c.curve_failures;
  Fmt.pr "%s@."
    (if c.curve_ok then "miss-curve sweep: OK" else "miss-curve sweep: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (curve_to_json c));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  c
