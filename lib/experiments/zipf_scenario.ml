(* Million-flow Zipf scenario over the sharded engines.  See
   zipf_scenario.mli. *)

module J = Fbsr_util.Json

type shard_row = { shard : int; datagrams : int; allocs_per_datagram : float }

type result = {
  flows : int;
  datagrams : int;
  nshards : int;
  touched_flows : int;
  flows_started : int;
  elapsed_s : float;
  datagrams_per_sec : float;
  flow_key_computations : int;
  keysched_hits : int;
  keysched_misses : int;
  rows : shard_row list;
  failures : string list;
  ok : bool;
  timeseries : Fbsr_util.Timeseries.t;
  health : Fbsr_fbs.Health.t;
  flowstats : Fbsr_fbs.Flowstats.t;
}

(* Round-trip [datagrams] Zipf datagrams through a sharded pair in
   batches.  The simulated clock advances ~10 ms per batch: far inside
   the replay window over the whole run, far enough to exercise
   timestamping. *)
let drive p wl ~datagrams ~batch fail =
  let sent = ref 0 in
  let round = ref 0 in
  while !sent < datagrams do
    let k = min batch (datagrams - !sent) in
    let now = 60.0 +. (0.01 *. Float.of_int !round) in
    incr round;
    let jobs = Fbsr_traffic.Zipf_workload.batch wl k in
    let wires = Fbsr_fbs.Sharded.send_all p.Fixture.tx ~now ~secret:true jobs in
    let ok_wires =
      Array.map
        (function
          | Ok w -> w
          | Error e ->
              fail (Fmt.str "send failed: %a" Fbsr_fbs.Engine.pp_error e);
              "")
        wires
    in
    let received =
      Fbsr_fbs.Sharded.receive_all p.Fixture.rx ~now ~src:p.Fixture.sh_src
        ok_wires
    in
    Array.iter
      (function
        | Ok (_ : Fbsr_fbs.Engine.accepted) -> ()
        | Error e ->
            fail (Fmt.str "receive failed: %a" Fbsr_fbs.Engine.pp_error e))
      received;
    sent := !sent + k
  done

let run ?(flows = 1_000_000) ?(datagrams = 1_000_000) ?(batch = 4096)
    ?nshards ?(seed = 20260808) ?(fst_bits = 19) ?(telemetry = false) () =
  let flowstats =
    if telemetry then fun (_ : int) -> Fbsr_fbs.Flowstats.create ()
    else fun _ -> Fbsr_fbs.Flowstats.none
  in
  let p = Fixture.sharded_pair ~seed ?nshards ~fst_bits ~flowstats () in
  (* Telemetry plane: both sides' engines register on one registry (root
     aggregate + shard.<i> twins), the flight recorder snapshots it on
     the batch clock via the dispatcher tick hook, and the health rules
     run right after each snapshot. *)
  let ts, health =
    if not telemetry then (Fbsr_util.Timeseries.none, Fbsr_fbs.Health.none)
    else begin
      let m = Fbsr_util.Metrics.create () in
      Fbsr_fbs.Sharded.register_metrics p.Fixture.tx m;
      Fbsr_fbs.Sharded.register_metrics p.Fixture.rx m;
      Fbsr_fbs.Fam.register_metrics
        (Fbsr_fbs.Sharded.fam p.Fixture.tx)
        (Fbsr_util.Metrics.sub m "fbs.fam");
      let ts =
        Fbsr_util.Timeseries.create ~capacity:1024 ~cadence:0.05 ~host:"zipf"
          ~metrics:m ()
      in
      let health = Fbsr_fbs.Health.create ~ts () in
      Fbsr_fbs.Sharded.set_tick_hook p.Fixture.tx (fun ~now ->
          Fbsr_util.Timeseries.tick ts ~now;
          Fbsr_fbs.Health.check health ~now);
      (ts, health)
    end
  in
  let wl =
    Fbsr_traffic.Zipf_workload.create ~seed:(seed lxor 0xf10c) ~flows
      ~src:p.Fixture.sh_src ~dst:p.Fixture.sh_dst ()
  in
  let n = Fbsr_fbs.Sharded.nshards p.Fixture.tx in
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let t0 = Unix.gettimeofday () in
  drive p wl ~datagrams ~batch (fun m -> failf "%s" m);
  let elapsed = Unix.gettimeofday () -. t0 in
  if telemetry then begin
    let now = 60.0 +. (0.01 *. Float.of_int ((datagrams + batch - 1) / batch)) in
    Fbsr_util.Timeseries.force ts ~now;
    Fbsr_fbs.Health.check health ~now
  end;
  (* Per-shard zero-copy audit: the sender shard allocates the wire, the
     receiver shard (same index — shard choice is a pure function of the
     sfl and both sides run the same count) the plaintext.  Exactly 2
     allocations per datagram, shard by shard. *)
  let rows =
    List.init n (fun i ->
        let txc = Fbsr_fbs.Engine.counters (Fbsr_fbs.Sharded.engine p.Fixture.tx i) in
        let rxc = Fbsr_fbs.Engine.counters (Fbsr_fbs.Sharded.engine p.Fixture.rx i) in
        let d = txc.Fbsr_fbs.Engine.sends in
        if rxc.Fbsr_fbs.Engine.accepted <> d then
          failf "shard %d: %d sealed but %d accepted" i d
            rxc.Fbsr_fbs.Engine.accepted;
        let allocs =
          txc.Fbsr_fbs.Engine.datapath_allocs
          + rxc.Fbsr_fbs.Engine.datapath_allocs
        in
        let apd = if d = 0 then 0.0 else Float.of_int allocs /. Float.of_int d in
        if d > 0 && allocs <> 2 * d then
          failf "shard %d: %d datapath allocs over %d datagrams (want exactly 2/datagram)"
            i allocs d;
        { shard = i; datagrams = d; allocs_per_datagram = apd })
  in
  let agg = Fbsr_fbs.Sharded.aggregate_counters p.Fixture.tx in
  if agg.Fbsr_fbs.Engine.sends <> datagrams then
    failf "aggregate sends %d <> offered %d" agg.Fbsr_fbs.Engine.sends datagrams;
  let fam_stats = Fbsr_fbs.Fam.stats (Fbsr_fbs.Sharded.fam p.Fixture.tx) in
  {
    flows;
    datagrams;
    nshards = n;
    touched_flows = Fbsr_traffic.Zipf_workload.touched wl;
    flows_started = fam_stats.Fbsr_fbs.Fam.flows_started;
    elapsed_s = elapsed;
    datagrams_per_sec =
      (if elapsed > 0.0 then Float.of_int datagrams /. elapsed else 0.0);
    flow_key_computations = agg.Fbsr_fbs.Engine.flow_key_computations;
    keysched_hits = agg.Fbsr_fbs.Engine.keysched_hits;
    keysched_misses = agg.Fbsr_fbs.Engine.keysched_misses;
    rows;
    failures = List.rev !failures;
    ok = !failures = [];
    timeseries = ts;
    health;
    flowstats =
      (if telemetry then
         Fbsr_fbs.Flowstats.merge
           [
             Fbsr_fbs.Sharded.flowstats p.Fixture.tx;
             Fbsr_fbs.Sharded.flowstats p.Fixture.rx;
           ]
       else Fbsr_fbs.Flowstats.none);
  }

let json_fields r =
  [
    ("schema", J.String "fbsr-zipf/1");
      ("flows", J.Int r.flows);
      ("datagrams", J.Int r.datagrams);
      ("nshards", J.Int r.nshards);
      ("touched_flows", J.Int r.touched_flows);
      ("flows_started", J.Int r.flows_started);
      ("elapsed_s", J.Float r.elapsed_s);
      ("datagrams_per_sec", J.Float r.datagrams_per_sec);
      ("flow_key_computations", J.Int r.flow_key_computations);
      ("keysched_hits", J.Int r.keysched_hits);
      ("keysched_misses", J.Int r.keysched_misses);
      ( "shards",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("shard", J.Int row.shard);
                   ("datagrams", J.Int row.datagrams);
                   ("allocs_per_datagram", J.Float row.allocs_per_datagram);
                 ])
             r.rows) );
      ("failures", J.List (List.map (fun m -> J.String m) r.failures));
      ("ok", J.Bool r.ok);
    ]
    @
    if Fbsr_util.Timeseries.enabled r.timeseries then
      [
        ( "telemetry",
          J.Obj
            [
              ("timeseries", Fbsr_util.Timeseries.to_json r.timeseries);
              ("health", Fbsr_fbs.Health.to_json r.health);
              ("flowstats", Fbsr_fbs.Flowstats.to_json r.flowstats);
            ] );
      ]
    else []

let to_json r = J.Obj (json_fields r)

let report ?flows ?datagrams ?batch ?nshards ?seed ?fst_bits ?telemetry ?json
    () =
  let r = run ?flows ?datagrams ?batch ?nshards ?seed ?fst_bits ?telemetry () in
  Fmt.pr "=== million-flow Zipf over the sharded engine ===@.";
  Fmt.pr "flows %d (touched %d, started %d)  datagrams %d  shards %d@."
    r.flows r.touched_flows r.flows_started r.datagrams r.nshards;
  Fmt.pr "%.2f s  %.0f datagrams/s  flow keys %d  keysched %d hit / %d miss@."
    r.elapsed_s r.datagrams_per_sec r.flow_key_computations r.keysched_hits
    r.keysched_misses;
  List.iter
    (fun row ->
      Fmt.pr "  shard %d: %8d datagrams  allocs/datagram %.3f@." row.shard
        row.datagrams row.allocs_per_datagram)
    r.rows;
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) r.failures;
  if Fbsr_util.Timeseries.enabled r.timeseries then begin
    Fmt.pr "telemetry: %d snapshots, %d columns@."
      (Fbsr_util.Timeseries.taken r.timeseries)
      (List.length (Fbsr_util.Timeseries.names r.timeseries));
    if Fbsr_fbs.Flowstats.enabled r.flowstats then begin
      Fmt.pr "top flows by datagrams (Space-Saving + count-min):@.";
      List.iter
        (fun (key, est) -> Fmt.pr "  sfl %016Lx  ~%d datagrams@." key est)
        (Fbsr_util.Sketch.top r.flowstats.Fbsr_fbs.Flowstats.datagrams 8)
    end;
    Format.printf "@[<v>%a@]@." Fbsr_fbs.Health.report r.health
  end;
  Fmt.pr "%s@." (if r.ok then "zipf scenario: OK" else "zipf scenario: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (to_json r));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  r

(* ------------------------------------------------------------------ *)
(* Section 7.3 miss-rate curve (fig11-14 analogue) at million-flow     *)
(* scale: a fresh sharded pair per point, so each point's caches start *)
(* cold and the curve is active flows vs steady-state miss rate.       *)
(* ------------------------------------------------------------------ *)

type curve_row = {
  offered_flows : int;
  active_flows : int;
  tfkc_accesses : int;
  tfkc_miss_rate : float;
  rfkc_accesses : int;
  rfkc_miss_rate : float;
  point_flow_key_computations : int;
}

type curve = {
  points : curve_row list;
  datagrams_per_point : int;
  curve_nshards : int;
  curve_elapsed_s : float;
  curve_failures : string list;
  curve_ok : bool;
}

let default_points =
  [ 1_000; 3_000; 10_000; 30_000; 100_000; 300_000; 1_000_000 ]

let miss_curve ?(points = default_points) ?(datagrams = 200_000) ?(batch = 4096)
    ?nshards ?(seed = 20260808) ?(fst_bits = 19) () =
  if points = [] then invalid_arg "Zipf_scenario.miss_curve: no points";
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let t0 = Unix.gettimeofday () in
  let nshards_seen = ref 0 in
  let rows =
    List.map
      (fun flows ->
        let p = Fixture.sharded_pair ~seed:(seed + flows) ?nshards ~fst_bits () in
        let wl =
          Fbsr_traffic.Zipf_workload.create ~seed:(seed lxor flows) ~flows
            ~src:p.Fixture.sh_src ~dst:p.Fixture.sh_dst ()
        in
        drive p wl ~datagrams ~batch (fun m -> failf "%s" m);
        let n = Fbsr_fbs.Sharded.nshards p.Fixture.tx in
        nshards_seen := n;
        (* Sum each side's flow-key-cache statistics across its shards:
           the aggregate behaves like one cache n times the size, which
           is exactly what the sharded datapath presents to the site. *)
        let totals side cache =
          List.fold_left
            (fun (a, m) i ->
              let s =
                Fbsr_fbs.Cache.stats (cache (Fbsr_fbs.Sharded.engine side i))
              in
              ( a + Fbsr_fbs.Cache.accesses s,
                m + Fbsr_fbs.Cache.total_misses s ))
            (0, 0)
            (List.init n (fun i -> i))
        in
        let rate (a, m) =
          if a = 0 then 0.0 else Float.of_int m /. Float.of_int a
        in
        let t = totals p.Fixture.tx Fbsr_fbs.Engine.tfkc in
        let r = totals p.Fixture.rx Fbsr_fbs.Engine.rfkc in
        let agg = Fbsr_fbs.Sharded.aggregate_counters p.Fixture.tx in
        if agg.Fbsr_fbs.Engine.sends <> datagrams then
          failf "point %d: aggregate sends %d <> offered %d" flows
            agg.Fbsr_fbs.Engine.sends datagrams;
        {
          offered_flows = flows;
          active_flows = Fbsr_traffic.Zipf_workload.touched wl;
          tfkc_accesses = fst t;
          tfkc_miss_rate = rate t;
          rfkc_accesses = fst r;
          rfkc_miss_rate = rate r;
          point_flow_key_computations =
            agg.Fbsr_fbs.Engine.flow_key_computations;
        })
      points
  in
  {
    points = rows;
    datagrams_per_point = datagrams;
    curve_nshards = !nshards_seen;
    curve_elapsed_s = Unix.gettimeofday () -. t0;
    curve_failures = List.rev !failures;
    curve_ok = !failures = [];
  }

let curve_to_json c =
  J.Obj
    [
      ("schema", J.String "fbsr-zipf-miss-curve/1");
      ("datagrams_per_point", J.Int c.datagrams_per_point);
      ("nshards", J.Int c.curve_nshards);
      ("elapsed_s", J.Float c.curve_elapsed_s);
      ( "points",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("offered_flows", J.Int p.offered_flows);
                   ("active_flows", J.Int p.active_flows);
                   ("tfkc_accesses", J.Int p.tfkc_accesses);
                   ("tfkc_miss_rate", J.Float p.tfkc_miss_rate);
                   ("rfkc_accesses", J.Int p.rfkc_accesses);
                   ("rfkc_miss_rate", J.Float p.rfkc_miss_rate);
                   ( "flow_key_computations",
                     J.Int p.point_flow_key_computations );
                 ])
             c.points) );
      ("failures", J.List (List.map (fun m -> J.String m) c.curve_failures));
      ("ok", J.Bool c.curve_ok);
    ]

let curve_report ?points ?datagrams ?batch ?nshards ?seed ?fst_bits ?json () =
  let c = miss_curve ?points ?datagrams ?batch ?nshards ?seed ?fst_bits () in
  Fmt.pr "=== active flows vs flow-key-cache miss rate (fig11-14 analogue) ===@.";
  Fmt.pr "%d datagrams/point  %d shards  %.2f s total@." c.datagrams_per_point
    c.curve_nshards c.curve_elapsed_s;
  Fmt.pr "%10s %10s %12s %12s %12s@." "flows" "active" "TFKC miss" "RFKC miss"
    "flow keys";
  List.iter
    (fun p ->
      Fmt.pr "%10d %10d %11.2f%% %11.2f%% %12d@." p.offered_flows
        p.active_flows
        (100.0 *. p.tfkc_miss_rate)
        (100.0 *. p.rfkc_miss_rate)
        p.point_flow_key_computations)
    c.points;
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) c.curve_failures;
  Fmt.pr "%s@."
    (if c.curve_ok then "miss-curve sweep: OK" else "miss-curve sweep: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (curve_to_json c));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  c

(* ------------------------------------------------------------------ *)
(* Sweeper-cadence study (the ROADMAP's open half of the §7.3 item):   *)
(* how often should the FAM sweeper run under Zipf skew?  Each point   *)
(* replays the same skewed workload against a fresh sharded pair with  *)
(* a short idle THRESHOLD, sweeping the dispatcher FST at a different  *)
(* cadence.  Hot flows survive any cadence; the Zipf tail is the       *)
(* contested ground — swept-out tail flows that reappear restart as    *)
(* fresh flows (new sfl, new flow-key derivation), so the curve is     *)
(* occupancy vs restart-and-rekey churn, with the per-tick TFKC miss   *)
(* rate read back from the flight recorder.                            *)
(* ------------------------------------------------------------------ *)

type sweep_row = {
  cadence_s : float;  (* 0.0 = never sweep *)
  sweeps : int;
  expired : int;
  sw_flows_started : int;
  restarts : int;
  active_end : int;
  sw_tfkc_accesses : int;
  sw_tfkc_miss_rate : float;
  sw_flow_keys : int;
  miss_series : (float * float) list;
}

type sweep_study = {
  sweep_points : sweep_row list;
  sw_flows : int;
  sw_datagrams : int;
  sw_threshold : float;
  sw_round_dt : float;
  sw_nshards : int;
  sw_elapsed_s : float;
  sw_failures : string list;
  sw_ok : bool;
}

let default_cadences = [ 0.25; 0.5; 1.0; 2.0; 5.0; 0.0 ]

let sweep_study ?(cadences = default_cadences) ?(flows = 100_000)
    ?(datagrams = 120_000) ?(batch = 1024) ?(round_dt = 0.1)
    ?(threshold = 2.0) ?nshards ?(seed = 20260808) ?(fst_bits = 17) () =
  if cadences = [] then invalid_arg "Zipf_scenario.sweep_study: no cadences";
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let t0 = Unix.gettimeofday () in
  let nshards_seen = ref 0 in
  let points =
    List.map
      (fun cadence ->
        let p =
          Fixture.sharded_pair ~seed ?nshards ~fst_bits
            ~fam_threshold:threshold ()
        in
        (* Same workload seed at every point: the cadence is the only
           thing that varies between rows. *)
        let wl =
          Fbsr_traffic.Zipf_workload.create ~seed:(seed lxor 0x53ee) ~flows
            ~src:p.Fixture.sh_src ~dst:p.Fixture.sh_dst ()
        in
        nshards_seen := Fbsr_fbs.Sharded.nshards p.Fixture.tx;
        let m = Fbsr_util.Metrics.create () in
        Fbsr_fbs.Sharded.register_metrics p.Fixture.tx m;
        let ts =
          Fbsr_util.Timeseries.create ~capacity:2048 ~cadence:round_dt
            ~host:"sweep-study" ~metrics:m ()
        in
        let fam = Fbsr_fbs.Sharded.fam p.Fixture.tx in
        let sent = ref 0 and round = ref 0 in
        let next_sweep = ref (60.0 +. cadence) in
        let last_now = ref 60.0 in
        while !sent < datagrams do
          let k = min batch (datagrams - !sent) in
          let now = 60.0 +. (round_dt *. Float.of_int !round) in
          last_now := now;
          incr round;
          let jobs = Fbsr_traffic.Zipf_workload.batch wl k in
          let wires =
            Fbsr_fbs.Sharded.send_all p.Fixture.tx ~now ~secret:true jobs
          in
          let ok_wires =
            Array.map
              (function
                | Ok w -> w
                | Error e ->
                    failf "cadence %.2f: send failed: %s" cadence
                      (Fmt.str "%a" Fbsr_fbs.Engine.pp_error e);
                    "")
              wires
          in
          Array.iter
            (function
              | Ok (_ : Fbsr_fbs.Engine.accepted) -> ()
              | Error e ->
                  failf "cadence %.2f: receive failed: %s" cadence
                    (Fmt.str "%a" Fbsr_fbs.Engine.pp_error e))
            (Fbsr_fbs.Sharded.receive_all p.Fixture.rx ~now
               ~src:p.Fixture.sh_src ok_wires);
          if cadence > 0.0 && now >= !next_sweep then begin
            ignore (Fbsr_fbs.Fam.sweep fam ~now : int);
            while !next_sweep <= now do
              next_sweep := !next_sweep +. cadence
            done
          end;
          Fbsr_util.Timeseries.tick ts ~now;
          sent := !sent + k
        done;
        Fbsr_util.Timeseries.force ts ~now:!last_now;
        (* Interval TFKC miss rate per tick, from the recorded series. *)
        let misses =
          Fbsr_util.Timeseries.series ts "fbs.cache.tfkc.misses.total"
        in
        let hits = Fbsr_util.Timeseries.series ts "fbs.cache.tfkc.hits" in
        let miss_series =
          List.filter_map
            (fun i ->
              let at, m1 = misses.(i) in
              let _, m0 = misses.(i - 1) in
              let _, h1 = hits.(i) in
              let _, h0 = hits.(i - 1) in
              let dm = m1 -. m0 and dh = h1 -. h0 in
              let acc = dm +. dh in
              if acc <= 0.0 then None else Some (at, dm /. acc))
            (List.init (max 0 (Array.length misses - 1)) (fun i -> i + 1))
        in
        let n = !nshards_seen in
        let acc_tot, miss_tot =
          List.fold_left
            (fun (a, mi) i ->
              let s =
                Fbsr_fbs.Cache.stats
                  (Fbsr_fbs.Engine.tfkc (Fbsr_fbs.Sharded.engine p.Fixture.tx i))
              in
              (a + Fbsr_fbs.Cache.accesses s, mi + Fbsr_fbs.Cache.total_misses s))
            (0, 0)
            (List.init n (fun i -> i))
        in
        let fam_stats = Fbsr_fbs.Fam.stats fam in
        let agg = Fbsr_fbs.Sharded.aggregate_counters p.Fixture.tx in
        if agg.Fbsr_fbs.Engine.sends <> datagrams then
          failf "cadence %.2f: aggregate sends %d <> offered %d" cadence
            agg.Fbsr_fbs.Engine.sends datagrams;
        let touched = Fbsr_traffic.Zipf_workload.touched wl in
        {
          cadence_s = cadence;
          sweeps = fam_stats.Fbsr_fbs.Fam.sweeps;
          expired = fam_stats.Fbsr_fbs.Fam.expired;
          sw_flows_started = fam_stats.Fbsr_fbs.Fam.flows_started;
          restarts = fam_stats.Fbsr_fbs.Fam.flows_started - touched;
          active_end = Fbsr_fbs.Fam.active fam ~now:!last_now;
          sw_tfkc_accesses = acc_tot;
          sw_tfkc_miss_rate =
            (if acc_tot = 0 then 0.0
             else Float.of_int miss_tot /. Float.of_int acc_tot);
          sw_flow_keys = agg.Fbsr_fbs.Engine.flow_key_computations;
          miss_series;
        })
      cadences
  in
  {
    sweep_points = points;
    sw_flows = flows;
    sw_datagrams = datagrams;
    sw_threshold = threshold;
    sw_round_dt = round_dt;
    sw_nshards = !nshards_seen;
    sw_elapsed_s = Unix.gettimeofday () -. t0;
    sw_failures = List.rev !failures;
    sw_ok = !failures = [];
  }

let sweep_study_to_json s =
  J.Obj
    [
      ("schema", J.String "fbsr-sweep-study/1");
      ("flows", J.Int s.sw_flows);
      ("datagrams", J.Int s.sw_datagrams);
      ("threshold_s", J.Float s.sw_threshold);
      ("round_dt_s", J.Float s.sw_round_dt);
      ("nshards", J.Int s.sw_nshards);
      ("elapsed_s", J.Float s.sw_elapsed_s);
      ( "points",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("cadence_s", J.Float p.cadence_s);
                   ("sweeps", J.Int p.sweeps);
                   ("expired", J.Int p.expired);
                   ("flows_started", J.Int p.sw_flows_started);
                   ("restarts", J.Int p.restarts);
                   ("active_end", J.Int p.active_end);
                   ("tfkc_accesses", J.Int p.sw_tfkc_accesses);
                   ("tfkc_miss_rate", J.Float p.sw_tfkc_miss_rate);
                   ("flow_key_computations", J.Int p.sw_flow_keys);
                   ( "miss_series",
                     J.List
                       (List.map
                          (fun (at, r) -> J.List [ J.Float at; J.Float r ])
                          p.miss_series) );
                 ])
             s.sweep_points) );
      ("failures", J.List (List.map (fun m -> J.String m) s.sw_failures));
      ("ok", J.Bool s.sw_ok);
    ]

let sweep_study_report ?cadences ?flows ?datagrams ?batch ?round_dt ?threshold
    ?nshards ?seed ?fst_bits ?json () =
  let s =
    sweep_study ?cadences ?flows ?datagrams ?batch ?round_dt ?threshold
      ?nshards ?seed ?fst_bits ()
  in
  Fmt.pr "=== sweeper-cadence study under Zipf skew ===@.";
  Fmt.pr
    "%d flows  %d datagrams  idle threshold %.1fs  round dt %.2fs  %d shards  \
     %.2fs total@."
    s.sw_flows s.sw_datagrams s.sw_threshold s.sw_round_dt s.sw_nshards
    s.sw_elapsed_s;
  Fmt.pr "%10s %7s %9s %9s %9s %9s %11s %10s@." "cadence" "sweeps" "expired"
    "started" "restarts" "active" "TFKC miss" "flow keys";
  List.iter
    (fun p ->
      Fmt.pr "%10s %7d %9d %9d %9d %9d %10.2f%% %10d@."
        (if p.cadence_s > 0.0 then Fmt.str "%.2fs" p.cadence_s else "never")
        p.sweeps p.expired p.sw_flows_started p.restarts p.active_end
        (100.0 *. p.sw_tfkc_miss_rate)
        p.sw_flow_keys)
    s.sweep_points;
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) s.sw_failures;
  Fmt.pr "%s@."
    (if s.sw_ok then "sweep study: OK" else "sweep study: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (sweep_study_to_json s));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  s
