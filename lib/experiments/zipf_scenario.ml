(* Million-flow Zipf scenario over the sharded engines.  See
   zipf_scenario.mli. *)

module J = Fbsr_util.Json

type shard_row = { shard : int; datagrams : int; allocs_per_datagram : float }

type result = {
  flows : int;
  datagrams : int;
  nshards : int;
  touched_flows : int;
  flows_started : int;
  elapsed_s : float;
  datagrams_per_sec : float;
  flow_key_computations : int;
  keysched_hits : int;
  keysched_misses : int;
  rows : shard_row list;
  failures : string list;
  ok : bool;
}

let run ?(flows = 1_000_000) ?(datagrams = 1_000_000) ?(batch = 4096)
    ?nshards ?(seed = 20260808) ?(fst_bits = 19) () =
  let p = Fixture.sharded_pair ~seed ?nshards ~fst_bits () in
  let wl =
    Fbsr_traffic.Zipf_workload.create ~seed:(seed lxor 0xf10c) ~flows
      ~src:p.Fixture.sh_src ~dst:p.Fixture.sh_dst ()
  in
  let n = Fbsr_fbs.Sharded.nshards p.Fixture.tx in
  let failures = ref [] in
  let failf fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let t0 = Unix.gettimeofday () in
  let sent = ref 0 in
  (* The simulated clock advances ~10 ms per batch: far inside the replay
     window over the whole run, far enough to exercise timestamping. *)
  let round = ref 0 in
  while !sent < datagrams do
    let k = min batch (datagrams - !sent) in
    let now = 60.0 +. (0.01 *. Float.of_int !round) in
    incr round;
    let jobs = Fbsr_traffic.Zipf_workload.batch wl k in
    let wires = Fbsr_fbs.Sharded.send_all p.Fixture.tx ~now ~secret:true jobs in
    let ok_wires =
      Array.map
        (function
          | Ok w -> w
          | Error e ->
              failf "send failed: %s" (Fmt.str "%a" Fbsr_fbs.Engine.pp_error e);
              "")
        wires
    in
    let received =
      Fbsr_fbs.Sharded.receive_all p.Fixture.rx ~now ~src:p.Fixture.sh_src
        ok_wires
    in
    Array.iter
      (function
        | Ok (_ : Fbsr_fbs.Engine.accepted) -> ()
        | Error e ->
            failf "receive failed: %s" (Fmt.str "%a" Fbsr_fbs.Engine.pp_error e))
      received;
    sent := !sent + k
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Per-shard zero-copy audit: the sender shard allocates the wire, the
     receiver shard (same index — shard choice is a pure function of the
     sfl and both sides run the same count) the plaintext.  Exactly 2
     allocations per datagram, shard by shard. *)
  let rows =
    List.init n (fun i ->
        let txc = Fbsr_fbs.Engine.counters (Fbsr_fbs.Sharded.engine p.Fixture.tx i) in
        let rxc = Fbsr_fbs.Engine.counters (Fbsr_fbs.Sharded.engine p.Fixture.rx i) in
        let d = txc.Fbsr_fbs.Engine.sends in
        if rxc.Fbsr_fbs.Engine.accepted <> d then
          failf "shard %d: %d sealed but %d accepted" i d
            rxc.Fbsr_fbs.Engine.accepted;
        let allocs =
          txc.Fbsr_fbs.Engine.datapath_allocs
          + rxc.Fbsr_fbs.Engine.datapath_allocs
        in
        let apd = if d = 0 then 0.0 else Float.of_int allocs /. Float.of_int d in
        if d > 0 && allocs <> 2 * d then
          failf "shard %d: %d datapath allocs over %d datagrams (want exactly 2/datagram)"
            i allocs d;
        { shard = i; datagrams = d; allocs_per_datagram = apd })
  in
  let agg = Fbsr_fbs.Sharded.aggregate_counters p.Fixture.tx in
  if agg.Fbsr_fbs.Engine.sends <> datagrams then
    failf "aggregate sends %d <> offered %d" agg.Fbsr_fbs.Engine.sends datagrams;
  let fam_stats = Fbsr_fbs.Fam.stats (Fbsr_fbs.Sharded.fam p.Fixture.tx) in
  {
    flows;
    datagrams;
    nshards = n;
    touched_flows = Fbsr_traffic.Zipf_workload.touched wl;
    flows_started = fam_stats.Fbsr_fbs.Fam.flows_started;
    elapsed_s = elapsed;
    datagrams_per_sec =
      (if elapsed > 0.0 then Float.of_int datagrams /. elapsed else 0.0);
    flow_key_computations = agg.Fbsr_fbs.Engine.flow_key_computations;
    keysched_hits = agg.Fbsr_fbs.Engine.keysched_hits;
    keysched_misses = agg.Fbsr_fbs.Engine.keysched_misses;
    rows;
    failures = List.rev !failures;
    ok = !failures = [];
  }

let to_json r =
  J.Obj
    [
      ("schema", J.String "fbsr-zipf/1");
      ("flows", J.Int r.flows);
      ("datagrams", J.Int r.datagrams);
      ("nshards", J.Int r.nshards);
      ("touched_flows", J.Int r.touched_flows);
      ("flows_started", J.Int r.flows_started);
      ("elapsed_s", J.Float r.elapsed_s);
      ("datagrams_per_sec", J.Float r.datagrams_per_sec);
      ("flow_key_computations", J.Int r.flow_key_computations);
      ("keysched_hits", J.Int r.keysched_hits);
      ("keysched_misses", J.Int r.keysched_misses);
      ( "shards",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("shard", J.Int row.shard);
                   ("datagrams", J.Int row.datagrams);
                   ("allocs_per_datagram", J.Float row.allocs_per_datagram);
                 ])
             r.rows) );
      ("failures", J.List (List.map (fun m -> J.String m) r.failures));
      ("ok", J.Bool r.ok);
    ]

let report ?flows ?datagrams ?batch ?nshards ?seed ?fst_bits ?json () =
  let r = run ?flows ?datagrams ?batch ?nshards ?seed ?fst_bits () in
  Fmt.pr "=== million-flow Zipf over the sharded engine ===@.";
  Fmt.pr "flows %d (touched %d, started %d)  datagrams %d  shards %d@."
    r.flows r.touched_flows r.flows_started r.datagrams r.nshards;
  Fmt.pr "%.2f s  %.0f datagrams/s  flow keys %d  keysched %d hit / %d miss@."
    r.elapsed_s r.datagrams_per_sec r.flow_key_computations r.keysched_hits
    r.keysched_misses;
  List.iter
    (fun row ->
      Fmt.pr "  shard %d: %8d datagrams  allocs/datagram %.3f@." row.shard
        row.datagrams row.allocs_per_datagram)
    r.rows;
  List.iter (fun m -> Fmt.pr "  FAIL: %s@." m) r.failures;
  Fmt.pr "%s@." (if r.ok then "zipf scenario: OK" else "zipf scenario: FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string_pretty (to_json r));
      output_string oc "\n";
      close_out oc;
      Fmt.pr "wrote %s@." path);
  r
