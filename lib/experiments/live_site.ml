(* A live campus site: the synthetic workload driven through REAL FBS
   stacks rather than through the offline flow simulator.

   This is the strongest validation in the harness: every datagram of the
   trace is sent by an actual simulated host through actual FBSSend()
   processing — DES, MD5, caches, MKD fetches — received and verified by
   the actual FBSReceive() path.  The cache statistics that fall out are
   the *measured* analogue of Figure 11, which lets us check the offline
   cache simulator's predictions against the real protocol.  (The offline
   simulator exists because the paper's own methodology was trace-driven
   simulation; the live site is what the paper could not easily do at
   scale on one Pentium.) *)

open Fbsr_netsim
open Fbsr_fbs_ip

type result = {
  datagrams_sent : int;
  datagrams_delivered : int;
  hosts : int;
  flows_started : int;
  mkd_fetches : int;
  master_key_computations : int;
  flow_key_computations : int;
  macs : int;
  tfkc_hit_rate : float;
  rfkc_hit_rate : float;
  replay_rejections : int;
  mac_failures : int;
}

let run ?(seed = 7) ?(duration = 1800.0) ?(desktops = 6) ?(tfkc_sets = 64)
    ?(rfkc_sets = 64) ?(suite = Fbsr_fbs.Suite.paper_md5_des) ?faults () =
  let scenario = Fbsr_traffic.Scenario.campus_lan ~seed ~duration ~desktops () in
  let config = Stack.default_config ~suite ~tfkc_sets ~rfkc_sets () in
  let tb = Testbed.create ~config ~bandwidth_bps:100_000_000.0 ?faults () in
  (* 100 Mb/s so the wire never throttles the trace's timing. *)
  let nodes = Hashtbl.create 32 in
  List.iter
    (fun addr ->
      let node = Testbed.add_host tb ~name:addr ~addr in
      (* Accept every datagram on any port: the trace's ports are data,
         not services we implement. *)
      Hashtbl.replace nodes addr node)
    scenario.Fbsr_traffic.Scenario.hosts;
  let delivered = ref 0 in
  Hashtbl.iter
    (fun _ (node : Testbed.node) ->
      Udp_stack.listen_default node.Testbed.host (fun ~dst_port:_ ~src:_ ~src_port:_ _ ->
          incr delivered))
    nodes;
  let sent = ref 0 in
  List.iter
    (fun (r : Fbsr_traffic.Record.t) ->
      match (Hashtbl.find_opt nodes r.src, Hashtbl.find_opt nodes r.dst) with
      | Some src_node, Some dst_node ->
          incr sent;
          Engine.schedule (Testbed.engine tb) ~delay:r.time (fun () ->
              Udp_stack.send src_node.Testbed.host ~src_port:r.src_port
                ~dst:(Host.addr dst_node.Testbed.host) ~dst_port:r.dst_port
                (String.make (max 1 (min r.size 1400)) 'd'))
      | _ -> ())
    scenario.Fbsr_traffic.Scenario.records;
  Testbed.run tb;
  (* Aggregate across all nodes. *)
  let acc f = Hashtbl.fold (fun _ node acc -> acc + f node) nodes 0 in
  let accf f init =
    Hashtbl.fold (fun _ node (num, den) -> f node num den) nodes init
  in
  let flows_started =
    acc (fun n ->
        (Fbsr_fbs.Fam.stats (Fbsr_fbs.Engine.fam (Stack.engine n.Testbed.stack)))
          .Fbsr_fbs.Fam.flows_started)
  in
  let mkd_fetches = acc (fun n -> (Mkd.stats n.Testbed.mkd).Mkd.fetches) in
  let master_key_computations =
    acc (fun n ->
        (Fbsr_fbs.Keying.counters (Fbsr_fbs.Engine.keying (Stack.engine n.Testbed.stack)))
          .Fbsr_fbs.Keying.master_key_computations)
  in
  let engine_counter f =
    acc (fun n -> f (Fbsr_fbs.Engine.counters (Stack.engine n.Testbed.stack)))
  in
  let tfkc_num, tfkc_den =
    accf
      (fun n num den ->
        let s = Fbsr_fbs.Cache.stats (Fbsr_fbs.Engine.tfkc (Stack.engine n.Testbed.stack)) in
        (num + s.Fbsr_fbs.Cache.hits, den + Fbsr_fbs.Cache.accesses s))
      (0, 0)
  in
  let rfkc_num, rfkc_den =
    accf
      (fun n num den ->
        let s = Fbsr_fbs.Cache.stats (Fbsr_fbs.Engine.rfkc (Stack.engine n.Testbed.stack)) in
        (num + s.Fbsr_fbs.Cache.hits, den + Fbsr_fbs.Cache.accesses s))
      (0, 0)
  in
  {
    datagrams_sent = !sent;
    datagrams_delivered = !delivered;
    hosts = Hashtbl.length nodes;
    flows_started;
    mkd_fetches;
    master_key_computations;
    flow_key_computations =
      engine_counter (fun c -> c.Fbsr_fbs.Engine.flow_key_computations);
    macs = engine_counter (fun c -> c.Fbsr_fbs.Engine.macs_computed);
    tfkc_hit_rate =
      (if tfkc_den = 0 then 1.0 else float_of_int tfkc_num /. float_of_int tfkc_den);
    rfkc_hit_rate =
      (if rfkc_den = 0 then 1.0 else float_of_int rfkc_num /. float_of_int rfkc_den);
    replay_rejections =
      engine_counter (fun c ->
          c.Fbsr_fbs.Engine.errors_stale + c.Fbsr_fbs.Engine.errors_duplicate);
    mac_failures = engine_counter (fun c -> c.Fbsr_fbs.Engine.errors_mac);
  }
