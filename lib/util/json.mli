(** Minimal dependency-free JSON for the observability layer: Metrics/Trace
    serialization, the [BENCH_*.json] artifacts and their differ.

    Integers and floats are kept distinct so counter values round-trip
    exactly; [to_string] output parses back structurally equal. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line form.  NaN and infinities print as [null]. *)

val to_string_pretty : t -> string
(** Two-space indented form with a trailing newline, for artifacts that
    live in version control. *)

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects and missing keys. *)

val members : t -> (string * t) list
(** Object members; [[]] on non-objects. *)

val to_float_opt : t -> float option
(** Numeric value as float ([Int] widens). *)

val to_int_opt : t -> int option
(** Numeric value as int (integral [Float] narrows). *)

val to_string_opt : t -> string option
