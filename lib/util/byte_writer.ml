(* A growable big-endian byte writer used by all the wire codecs. *)

type t = { mutable buf : Bytes.t; mutable len : int }

let create ?(capacity = 64) () =
  { buf = Bytes.create (max 1 capacity); len = 0 }

let length t = t.len

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit t.buf 0 nb 0 t.len;
    t.buf <- nb
  end

let u8 t v =
  ensure t 1;
  Bytes.set t.buf t.len (Char.chr (v land 0xff));
  t.len <- t.len + 1

let u16 t v =
  ensure t 2;
  Bytes.set t.buf t.len (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.buf (t.len + 1) (Char.chr (v land 0xff));
  t.len <- t.len + 2

let u32 t v =
  ensure t 4;
  Bytes.set t.buf t.len (Char.chr ((Int32.to_int (Int32.shift_right_logical v 24)) land 0xff));
  Bytes.set t.buf (t.len + 1) (Char.chr ((Int32.to_int (Int32.shift_right_logical v 16)) land 0xff));
  Bytes.set t.buf (t.len + 2) (Char.chr ((Int32.to_int (Int32.shift_right_logical v 8)) land 0xff));
  Bytes.set t.buf (t.len + 3) (Char.chr (Int32.to_int (Int32.logand v 0xffl)));
  t.len <- t.len + 4

let u32_int t v = u32 t (Int32.of_int (v land 0xffffffff))

let u64 t v =
  ensure t 8;
  for i = 0 to 7 do
    let shift = 56 - (8 * i) in
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xffL) in
    Bytes.set t.buf (t.len + i) (Char.chr byte)
  done;
  t.len <- t.len + 8

let bytes t s =
  let n = String.length s in
  ensure t n;
  Bytes.blit_string s 0 t.buf t.len n;
  t.len <- t.len + n

let substring t s pos len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Byte_writer.substring: out of bounds";
  ensure t len;
  Bytes.blit_string s pos t.buf t.len len;
  t.len <- t.len + len

let reserve t n =
  if n < 0 then invalid_arg "Byte_writer.reserve: negative length";
  ensure t n;
  let pos = t.len in
  t.len <- t.len + n;
  (t.buf, pos)

let reset t = t.len <- 0

let contents t = Bytes.sub_string t.buf 0 t.len

let to_string = contents

let sub_string t ~pos ~len =
  if pos < 0 || len < 0 || pos > t.len - len then
    invalid_arg "Byte_writer.sub_string: out of bounds";
  Bytes.sub_string t.buf pos len

let finalize t =
  let s =
    if t.len = Bytes.length t.buf then begin
      let s = Bytes.unsafe_to_string t.buf in
      (* Detach the buffer so later writes cannot mutate the returned
         string through the alias. *)
      t.buf <- Bytes.create 1;
      s
    end
    else contents t
  in
  t.len <- 0;
  s
