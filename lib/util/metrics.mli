(** Unified metrics registry: named counters, gauges, log-bucket
    histograms, and pull-probes over existing statistics records.

    Names are dotted paths ("fbs.engine.drops.mac", "netsim.link.corrupted");
    {!sub} derives a prefixed view of the same registry so per-instance
    metrics ("host.10.0.0.1.fbs.engine.sends") can coexist with aggregates.
    Updates to owned cells are single mutable-field stores — no allocation
    on the hot path.  Probes registered under one name are SUMMED on read,
    which is how per-host components aggregate into site-wide totals. *)

type t
(** A registry (or a scoped view of one — see {!sub}). *)

val create : ?scope:string -> unit -> t
val default : t
(** The process-wide registry. *)

val sub : t -> string -> t
(** [sub t s] shares [t]'s cells under the prefix [s ^ "."]. *)

val scope : t -> string
(** The current dotted prefix, "" for the root (trailing [.] included). *)

(** {1 Owned cells} *)

type counter

val counter : t -> string -> counter
(** Create-or-fetch: the same name yields the same cell.
    @raise Invalid_argument if the name holds a different metric kind. *)

val incr : ?by:int -> counter -> unit
(** @raise Invalid_argument if [by < 0]: counters are monotone. *)

val counter_value : counter -> int
val counter_name : counter -> string

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

type histogram

val histogram : ?buckets:float array -> t -> string -> histogram
(** Fixed log-scale buckets.  [buckets] gives the strictly-increasing upper
    bounds (an overflow bucket is implicit); the default is 5 buckets per
    decade from 1e-6 to 1e2.
    @raise Invalid_argument on empty or non-increasing bounds. *)

val observe : histogram -> float -> unit
(** Bucket [i] counts [bounds.(i-1) < v <= bounds.(i)]; underflow lands in
    the first bucket, overflow in the implicit last.  Allocation-free. *)

val time : histogram -> clock:(unit -> float) -> (unit -> 'a) -> 'a
(** Run the thunk and observe its elapsed [clock] span (also on raise). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * float * int) list
(** [(lower, upper, count)] per bucket, including the overflow bucket;
    the first lower bound is [neg_infinity], the last upper is [infinity]. *)

(** {1 Probes}

    Read-time closures over statistics records the registry does not own:
    the record keeps being updated exactly as before, the registry only
    evaluates the closure when read.  Registering several probes under one
    name sums them. *)

val register_probe : t -> string -> (unit -> int) -> unit
val register_probe_f : t -> string -> (unit -> float) -> unit

val register_probe_ratio : t -> string -> (unit -> float * float) -> unit
(** A derived-ratio probe: the closure yields [(numerator, denominator)]
    and a read returns [Σnum /. Σden] over every probe sharing the name
    ([0.] when the denominators sum to zero).  Use for per-datagram
    ratios: plain float probes SUM on shared names, so N shard engines
    registered under one name would report N× the true ratio — a ratio
    probe folds the underlying tallies first and keeps the invariant one
    number whether it is read per shard, per engine, or site-wide. *)

val describe : t -> string -> string -> unit
(** [describe t name text] registers the [# HELP] text {!to_text} emits
    for [name] (resolved under this view's prefix).  Metrics without a
    description get a generated [# HELP] line. *)

(** {1 Reading} *)

val mem : t -> string -> bool

val get : t -> string -> int
(** Integer view: counter value, probe sum, histogram observation count,
    truncated gauge.  @raise Invalid_argument on unknown names (loud on
    typos — use {!mem} to test). *)

val get_float : t -> string -> float
(** Float view; for histograms, the sum of observations. *)

val names : t -> string list
(** Sorted full names visible under this view's prefix. *)

type value =
  | Int of int
  | Float of float
  | Hist of { count : int; sum : float; buckets : (float * float * int) list }

val snapshot : t -> (string * value) list
(** Sorted, prefix-filtered point-in-time read of every metric. *)

val reset : t -> unit
(** Zero owned cells under this view's prefix; probes (live records owned
    elsewhere) are untouched. *)

val to_json : t -> Json.t
(** Object keyed by full metric name; histograms serialize as
    [{count, sum, buckets: [[upper, n], ...]}] with empty buckets elided. *)

val to_text : t -> string
(** Prometheus-style text exposition of everything under this view's
    prefix.  Dotted names fold to underscores (a leading digit is guarded
    with ['_']); every metric gets a [# HELP] line (see {!describe}; help
    text and label values are escaped per the exposition format) followed
    by [# TYPE].  Counters and int probes emit as [counter], gauges and
    float probes as [gauge], histograms as [histogram] with cumulative
    [_bucket{le="..."}] lines (empty interior buckets elided, a final
    [le="+Inf"] always present) plus [_sum] and [_count]. *)

val pp : Format.formatter -> t -> unit
