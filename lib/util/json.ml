(* Minimal JSON: just enough for the observability layer's machine-readable
   artifacts (Metrics/Trace serialization, BENCH_*.json emit and diff).

   Deliberately dependency-free: the repo's toolchain does not bake in a
   JSON library, and the subset we need — objects, arrays, strings, bools,
   null, and numbers split into exact integers vs floats — fits in a page.
   Printing is canonical enough that [parse (to_string j)] round-trips
   structurally: integers print without a decimal point, floats with %.17g
   (exact double round-trip), and object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no nan/inf. *)
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        members;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_to buf j;
  Buffer.contents buf

(* Pretty printer with two-space indentation, for artifacts a human will
   also read (BENCH_*.json lives in version control). *)
let to_string_pretty j =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as atom -> print_to buf atom
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            escape_to buf k;
            Buffer.add_string buf ": ";
            go (indent + 2) v)
          members;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.text && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.text then fail cur "bad \\u escape";
            let hex = String.sub cur.text cur.pos 4 in
            cur.pos <- cur.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail cur "bad \\u escape"
            | Some code ->
                (* Only the Latin-1 subset is emitted by our printer; decode
                   the rest as UTF-8 for completeness. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end);
            go ()
        | _ -> fail cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
        advance cur;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.text start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* An integer too wide for OCaml's int: keep it as a float. *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value cur :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              go ()
          | Some ']' -> advance cur
          | _ -> fail cur "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec go () =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          members := (k, v) :: !members;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              go ()
          | Some '}' -> advance cur
          | _ -> fail cur "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !members)
      end
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let cur = { text = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let parse_opt s = match parse s with v -> Some v | exception Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors (for bench_diff and tests)                                *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let members = function Obj m -> m | _ -> []
