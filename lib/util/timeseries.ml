(* Fixed-cadence flight recorder over a Metrics registry.  Rows live in a
   circular buffer; columns are discovered as metrics appear (a row only
   stores the columns that existed when it was taken — reads pad with 0).
   Histograms keep the previous snapshot's bucket counts around so the
   recorded p99 is over the *interval*, not the lifetime distribution. *)

type row = { at : float; values : float array }

type t = {
  metrics : Metrics.t;
  cap : int; (* 0 = disabled *)
  cad : float;
  host : string;
  cols : (string, int) Hashtbl.t; (* name -> column *)
  mutable col_names : string array; (* column -> name, grows *)
  mutable ncols : int;
  ring : row option array;
  mutable taken : int;
  mutable next_at : float; (* nan until the first tick anchors the grid *)
  prev_buckets : (string, int array) Hashtbl.t; (* histogram interval state *)
}

let none =
  {
    metrics = Metrics.create ~scope:"timeseries.none" ();
    cap = 0;
    cad = 1.0;
    host = "";
    cols = Hashtbl.create 1;
    col_names = [||];
    ncols = 0;
    ring = [||];
    taken = 0;
    next_at = nan;
    prev_buckets = Hashtbl.create 1;
  }

let create ?(capacity = 1024) ?(cadence = 1.0) ?(host = "") ~metrics () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  if not (cadence > 0.0) then invalid_arg "Timeseries.create: cadence must be positive";
  {
    metrics;
    cap = capacity;
    cad = cadence;
    host;
    cols = Hashtbl.create 64;
    col_names = Array.make 64 "";
    ncols = 0;
    ring = Array.make capacity None;
    taken = 0;
    next_at = nan;
    prev_buckets = Hashtbl.create 16;
  }

let enabled t = t.cap > 0
let cadence t = t.cad
let taken t = t.taken
let kept t = min t.taken t.cap

let col t name =
  match Hashtbl.find_opt t.cols name with
  | Some c -> c
  | None ->
      let c = t.ncols in
      if c = Array.length t.col_names then begin
        let bigger = Array.make (2 * max 1 c) "" in
        Array.blit t.col_names 0 bigger 0 c;
        t.col_names <- bigger
      end;
      t.col_names.(c) <- name;
      t.ncols <- c + 1;
      Hashtbl.replace t.cols name c;
      c

(* Nearest-rank p99 of the interval histogram: walk the per-bucket deltas
   since the previous snapshot to the 0.99 rank and report that bucket's
   finite edge (overflow bucket reports its lower bound). *)
let interval_p99 t name buckets =
  let n = List.length buckets in
  let cur = Array.make n 0 in
  List.iteri (fun i (_, _, c) -> cur.(i) <- c) buckets;
  let prev =
    match Hashtbl.find_opt t.prev_buckets name with
    | Some p when Array.length p = n -> p
    | _ -> Array.make n 0
  in
  let deltas = Array.mapi (fun i c -> c - prev.(i)) cur in
  Hashtbl.replace t.prev_buckets name cur;
  let total = Array.fold_left ( + ) 0 deltas in
  if total <= 0 then 0.0
  else begin
    let rank = int_of_float (ceil (0.99 *. float_of_int total)) in
    let rank = max 1 (min total rank) in
    let acc = ref 0 and result = ref 0.0 and found = ref false in
    List.iteri
      (fun i (lower, upper, _) ->
        if not !found then begin
          acc := !acc + deltas.(i);
          if !acc >= rank then begin
            found := true;
            result := (if upper < infinity then upper else max lower 0.0)
          end
        end)
      buckets;
    !result
  end

let snapshot t ~at =
  let snap = Metrics.snapshot t.metrics in
  let cells = ref [] in
  List.iter
    (fun (name, v) ->
      match (v : Metrics.value) with
      | Int i -> cells := (col t name, float_of_int i) :: !cells
      | Float f -> cells := (col t name, f) :: !cells
      | Hist { count; sum; buckets } ->
          cells := (col t (name ^ ".count"), float_of_int count) :: !cells;
          cells := (col t (name ^ ".sum"), sum) :: !cells;
          cells := (col t (name ^ ".p99"), interval_p99 t name buckets) :: !cells)
    snap;
  let values = Array.make t.ncols 0.0 in
  List.iter (fun (c, v) -> values.(c) <- v) !cells;
  t.ring.(t.taken mod t.cap) <- Some { at; values };
  t.taken <- t.taken + 1

let tick t ~now =
  if t.cap > 0 then
    if Float.is_nan t.next_at then begin
      t.next_at <- now +. t.cad;
      snapshot t ~at:now
    end
    else if now >= t.next_at then begin
      while t.next_at <= now do
        t.next_at <- t.next_at +. t.cad
      done;
      snapshot t ~at:now
    end

let force t ~now = if t.cap > 0 then snapshot t ~at:now

let names t =
  List.sort compare (Array.to_list (Array.sub t.col_names 0 t.ncols))

let rows t =
  let k = kept t in
  Array.init k (fun i ->
      match t.ring.((t.taken - k + i) mod t.cap) with
      | Some r -> r
      | None -> { at = 0.0; values = [||] })

let series t name =
  match Hashtbl.find_opt t.cols name with
  | None -> [||]
  | Some c ->
      Array.map
        (fun r ->
          (r.at, if Array.length r.values > c then r.values.(c) else 0.0))
        (rows t)

let times t = Array.map (fun r -> r.at) (rows t)

let nth_last_row t i =
  let k = kept t in
  if i >= k then None else t.ring.((t.taken - 1 - i) mod t.cap)

let last2 t name =
  match Hashtbl.find_opt t.cols name with
  | None -> (0.0, 0.0)
  | Some c ->
      let read i =
        match nth_last_row t i with
        | Some r when Array.length r.values > c -> r.values.(c)
        | _ -> 0.0
      in
      (read 1, read 0)

let jnum v =
  if Float.is_integer v && Float.abs v < 4e15 then Json.Int (int_of_float v)
  else Json.Float v

let to_json t =
  let open Json in
  let rows = rows t in
  let ncols = t.ncols in
  let value r c = if Array.length r.values > c then r.values.(c) else 0.0 in
  let base, deltas =
    if Array.length rows = 0 then (List [], List [])
    else begin
      let base = List.init ncols (fun c -> jnum (value rows.(0) c)) in
      let deltas =
        Array.to_list
          (Array.init
             (Array.length rows - 1)
             (fun i ->
               List
                 (List.init ncols (fun c ->
                      jnum (value rows.(i + 1) c -. value rows.(i) c)))))
      in
      (List base, List deltas)
    end
  in
  Obj
    [
      ("schema", String "fbsr-timeseries/1");
      ("host", String t.host);
      ("cadence", Float t.cad);
      ("taken", Int t.taken);
      ("kept", Int (Array.length rows));
      ( "names",
        List
          (List.init ncols (fun c -> String t.col_names.(c))) );
      ("times", List (Array.to_list (Array.map (fun r -> Float r.at) rows)));
      ("base", base);
      ("deltas", deltas);
    ]

let dashboard ?(width = 64) ?(height = 10) ppf t ~names =
  List.iter
    (fun name ->
      let s = series t name in
      if Array.length s > 0 then begin
        Format.pp_print_cut ppf ();
        Chart.timeseries ~width ~height ppf ~x_label:"tick" ~y_label:name
          (Array.map snd s)
      end)
    names
