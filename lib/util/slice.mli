(** A borrowed [{base; off; len}] view of a byte string.

    Slices let the datagram datapath pass sub-ranges of wire buffers
    without copying.  A slice borrows its base: it is valid only while
    the base buffer is, and data that outlives the current datagram's
    processing (cache entries, application payloads) must be copied out
    with {!to_string}.  See DESIGN.md, "Datapath and buffer ownership". *)

type t = private { base : string; off : int; len : int }

val v : ?off:int -> ?len:int -> string -> t
(** [v ?off ?len base] views [base] from [off] (default 0) for [len]
    bytes (default: to the end).  @raise Invalid_argument on bad bounds. *)

val of_string : string -> t
(** Whole-string view; zero-copy both ways ({!to_string} returns the
    base itself for whole-base slices). *)

val of_bytes_unsafe : Bytes.t -> t
(** Zero-copy view of a mutable scratch buffer.  The caller promises not
    to mutate the buffer while the slice is being consumed (the
    per-engine scratch idiom: fill, feed, refill). *)

val base : t -> string
val offset : t -> int
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** @raise Invalid_argument out of bounds. *)

val unsafe_get : t -> int -> char

val sub : t -> pos:int -> len:int -> t
(** Narrow the view; no copy.  @raise Invalid_argument on bad bounds. *)

val to_string : t -> string
(** Materialize.  Returns the base itself (no copy) when the slice
    covers the whole base. *)

val blit : t -> Bytes.t -> int -> unit
(** [blit t dst dst_pos] copies the slice's bytes into [dst]. *)

val iter : (char -> unit) -> t -> unit
val iteri : (int -> char -> unit) -> t -> unit

val equal : t -> t -> bool
(** Structural byte equality.  Not constant-time — MAC comparison must
    use [Ct.equal_slice]. *)

val equal_string : t -> string -> bool

val append : Byte_writer.t -> t -> unit
(** Append the slice's bytes to an assembly buffer (single blit). *)

val pp : Format.formatter -> t -> unit
