(* Unified metrics registry.

   Every subsystem in the repo keeps measurement state — engine drop
   counters, cache three-C statistics, MKD retransmission counts, link
   fault tallies — and before this module each was a module-private record
   with its own ad-hoc accessors.  The registry gives them one namespace
   (dotted names: "fbs.engine.drops.mac", "netsim.link.corrupted"), one
   read path, and one serializer, without touching the hot paths.

   Two kinds of metric coexist:

   - *owned* cells — counters, gauges and log-bucket histograms allocated
     by [counter]/[gauge]/[histogram].  Updates are single mutable-field
     stores (no allocation, no hashing: the handle is the cell), so they
     are safe on per-datagram paths.

   - *probes* — closures registered over existing mutable records with
     [register_probe]/[register_probe_f].  The record keeps being updated
     exactly as before (zero behavior change); the registry evaluates the
     closure only when read.  Several probes may share one name, in which
     case reads return their SUM — registering every host's engine under
     the same name yields site-wide totals for free, while per-host views
     live under a [sub]-scoped prefix.

   A registry is cheap (one hashtable); [default] is the process-wide one.
   [sub] returns a view onto the same table with a longer dotted prefix,
   so one registry can hold "host.10.0.0.1.fbs.engine.sends" next to the
   aggregated "fbs.engine.sends". *)

type counter = { name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

(* Log-scale histogram: bucket [i] counts observations v with
   bounds.(i-1) < v <= bounds.(i); an implicit overflow bucket counts
   v > bounds.(last).  Bounds are fixed at creation (lo * base^i), so
   [observe] is a branch-and-increment scan — no allocation. *)
type histogram = {
  h_name : string;
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable observations : int;
  mutable sum : float;
}

type cell =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Probe of (unit -> int) list ref
  | Probe_f of (unit -> float) list ref
  | Probe_ratio of (unit -> float * float) list ref
      (* each probe yields (numerator, denominator); a read returns
         Σnum / Σden, so N engines sharing one name report the true
         combined ratio instead of the sum of N ratios *)

type t = {
  prefix : string;
  cells : (string, cell) Hashtbl.t;
  help : (string, string) Hashtbl.t; (* full name -> # HELP text *)
}

let create ?(scope = "") () =
  {
    prefix = (if scope = "" then "" else scope ^ ".");
    cells = Hashtbl.create 64;
    help = Hashtbl.create 16;
  }

let default = create ()

let sub t scope =
  if scope = "" then t else { t with prefix = t.prefix ^ scope ^ "." }

let scope t = t.prefix

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Probe _ -> "probe"
  | Probe_f _ -> "float probe"
  | Probe_ratio _ -> "ratio probe"

let clash full cell want =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" full
       (kind_name cell) want)

(* ------------------------------------------------------------------ *)
(* Owned cells                                                         *)
(* ------------------------------------------------------------------ *)

let counter t name =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.cells full with
  | Some (Counter c) -> c
  | Some cell -> clash full cell "counter"
  | None ->
      let c = { name = full; count = 0 } in
      Hashtbl.replace t.cells full (Counter c);
      c

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotone (by < 0)";
  c.count <- c.count + by

let counter_value c = c.count
let counter_name c = c.name

let gauge t name =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.cells full with
  | Some (Gauge g) -> g
  | Some cell -> clash full cell "gauge"
  | None ->
      let g = { g_name = full; value = 0.0 } in
      Hashtbl.replace t.cells full (Gauge g);
      g

let set g v = g.value <- v
let add g v = g.value <- g.value +. v
let gauge_value g = g.value
let gauge_name g = g.g_name

let default_buckets =
  (* Five buckets per decade from 1 microsecond to 100 seconds: suits both
     simulated-time waits (MKD backoff) and wall-clock timings. *)
  lazy
    (let lo = 1e-6 and per_decade = 5 and decades = 8 in
     Array.init
       (per_decade * decades)
       (fun i -> lo *. (10.0 ** (float_of_int i /. float_of_int per_decade))))

let histogram ?buckets t name =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.cells full with
  | Some (Histogram h) -> h
  | Some cell -> clash full cell "histogram"
  | None ->
      let bounds =
        match buckets with
        | Some b ->
            if Array.length b = 0 then
              invalid_arg "Metrics.histogram: empty bucket list";
            Array.iteri
              (fun i v ->
                if i > 0 && v <= b.(i - 1) then
                  invalid_arg "Metrics.histogram: bounds must increase")
              b;
            Array.copy b
        | None -> Array.copy (Lazy.force default_buckets)
      in
      let h =
        {
          h_name = full;
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          observations = 0;
          sum = 0.0;
        }
      in
      Hashtbl.replace t.cells full (Histogram h);
      h

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. v

(* Time [f] with the caller's clock and record the elapsed span — the
   registry stays clock-agnostic (simulated vs wall time). *)
let time h ~clock f =
  let t0 = clock () in
  let finally () = observe h (clock () -. t0) in
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let histogram_count h = h.observations
let histogram_sum h = h.sum

let histogram_buckets h =
  let lower i = if i = 0 then Float.neg_infinity else h.bounds.(i - 1) in
  let upper i =
    if i = Array.length h.bounds then Float.infinity else h.bounds.(i)
  in
  List.init (Array.length h.counts) (fun i -> (lower i, upper i, h.counts.(i)))

(* ------------------------------------------------------------------ *)
(* Probes over existing records                                        *)
(* ------------------------------------------------------------------ *)

let register_probe t name f =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.cells full with
  | Some (Probe fs) -> fs := f :: !fs
  | Some cell -> clash full cell "probe"
  | None -> Hashtbl.replace t.cells full (Probe (ref [ f ]))

let register_probe_f t name f =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.cells full with
  | Some (Probe_f fs) -> fs := f :: !fs
  | Some cell -> clash full cell "float probe"
  | None -> Hashtbl.replace t.cells full (Probe_f (ref [ f ]))

let register_probe_ratio t name f =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.cells full with
  | Some (Probe_ratio fs) -> fs := f :: !fs
  | Some cell -> clash full cell "ratio probe"
  | None -> Hashtbl.replace t.cells full (Probe_ratio (ref [ f ]))

let ratio_value fs =
  let num, den =
    List.fold_left
      (fun (n, d) f ->
        let fn, fd = f () in
        (n +. fn, d +. fd))
      (0.0, 0.0) !fs
  in
  if den = 0.0 then 0.0 else num /. den

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let mem t name = Hashtbl.mem t.cells (t.prefix ^ name)

let read_int = function
  | Counter c -> c.count
  | Gauge g -> int_of_float g.value
  | Histogram h -> h.observations
  | Probe fs -> List.fold_left (fun acc f -> acc + f ()) 0 !fs
  | Probe_f fs ->
      int_of_float (List.fold_left (fun acc f -> acc +. f ()) 0.0 !fs)
  | Probe_ratio fs -> int_of_float (ratio_value fs)

let read_float = function
  | Counter c -> float_of_int c.count
  | Gauge g -> g.value
  | Histogram h -> h.sum
  | Probe fs -> float_of_int (List.fold_left (fun acc f -> acc + f ()) 0 !fs)
  | Probe_f fs -> List.fold_left (fun acc f -> acc +. f ()) 0.0 !fs
  | Probe_ratio fs -> ratio_value fs

let get t name =
  match Hashtbl.find_opt t.cells (t.prefix ^ name) with
  | Some cell -> read_int cell
  | None -> invalid_arg (Printf.sprintf "Metrics.get: unknown metric %S" (t.prefix ^ name))

let get_float t name =
  match Hashtbl.find_opt t.cells (t.prefix ^ name) with
  | Some cell -> read_float cell
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics.get_float: unknown metric %S" (t.prefix ^ name))

let in_scope t full = String.length t.prefix = 0 || String.starts_with ~prefix:t.prefix full

let names t =
  Hashtbl.fold (fun k _ acc -> if in_scope t k then k :: acc else acc) t.cells []
  |> List.sort String.compare

type value =
  | Int of int
  | Float of float
  | Hist of { count : int; sum : float; buckets : (float * float * int) list }

let snapshot t =
  List.map
    (fun name ->
      let v =
        match Hashtbl.find_opt t.cells name with
        | Some (Gauge g) -> Float g.value
        | Some (Probe_f fs) ->
            Float (List.fold_left (fun acc f -> acc +. f ()) 0.0 !fs)
        | Some (Probe_ratio fs) -> Float (ratio_value fs)
        | Some (Histogram h) ->
            Hist { count = h.observations; sum = h.sum; buckets = histogram_buckets h }
        | Some cell -> Int (read_int cell)
        | None -> assert false
      in
      (name, v))
    (names t)

(* Zero every owned cell.  Probes read live records the registry does not
   own, so they are left alone (reset those at their source). *)
let reset t =
  Hashtbl.iter
    (fun name cell ->
      if in_scope t name then
        match cell with
        | Counter c -> c.count <- 0
        | Gauge g -> g.value <- 0.0
        | Histogram h ->
            Array.fill h.counts 0 (Array.length h.counts) 0;
            h.observations <- 0;
            h.sum <- 0.0
        | Probe _ | Probe_f _ | Probe_ratio _ -> ())
    t.cells

let to_json t =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Int i -> Json.Int i
           | Float f -> Json.Float f
           | Hist { count; sum; buckets } ->
               Json.Obj
                 [
                   ("count", Json.Int count);
                   ("sum", Json.Float sum);
                   ( "buckets",
                     Json.List
                       (List.filter_map
                          (fun (_, hi, n) ->
                            if n = 0 then None
                            else Some (Json.List [ Json.Float hi; Json.Int n ]))
                          buckets) );
                 ] ))
       (snapshot t))

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Int i -> Fmt.pf ppf "%s %d@." name i
      | Float f -> Fmt.pf ppf "%s %g@." name f
      | Hist { count; sum; _ } -> Fmt.pf ppf "%s count=%d sum=%g@." name count sum)
    (snapshot t)

(* ------------------------------------------------------------------ *)
(* Prometheus-style exposition                                         *)
(* ------------------------------------------------------------------ *)

(* Metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted namespace maps
   onto it with '.' (and anything else exotic) folded to '_', and a
   leading digit guarded with '_'. *)
let prometheus_name name =
  let mapped =
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Escaping for # HELP text and label values per the exposition format:
   backslash and newline always; double quotes additionally inside label
   values. *)
let prometheus_escape ?(quote = false) s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let describe t name text = Hashtbl.replace t.help (t.prefix ^ name) text

let prometheus_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_text t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let head name p kind =
    (* # HELP precedes # TYPE; registered text wins, otherwise a generated
       line naming the original dotted metric (which the name folding may
       have obscured). *)
    let help =
      match Hashtbl.find_opt t.help name with
      | Some h -> h
      | None -> Printf.sprintf "fbsr %s %s" kind name
    in
    line "# HELP %s %s" p (prometheus_escape help);
    line "# TYPE %s %s" p kind
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.cells name with
      | None -> ()
      | Some cell -> (
          let p = prometheus_name name in
          match cell with
          | Counter c ->
              head name p "counter";
              line "%s %d" p c.count
          | Probe fs ->
              (* Probes read monotone subsystem tallies; expose as counters. *)
              head name p "counter";
              line "%s %d" p (List.fold_left (fun acc f -> acc + f ()) 0 !fs)
          | Gauge g ->
              head name p "gauge";
              line "%s %s" p (prometheus_float g.value)
          | Probe_f fs ->
              head name p "gauge";
              line "%s %s" p
                (prometheus_float
                   (List.fold_left (fun acc f -> acc +. f ()) 0.0 !fs))
          | Probe_ratio fs ->
              head name p "gauge";
              line "%s %s" p (prometheus_float (ratio_value fs))
          | Histogram h ->
              (* Prometheus buckets are cumulative over 'le' upper bounds and
                 must end with +Inf; empty interior buckets are elided (any
                 subset of the cumulative series is valid exposition). *)
              head name p "histogram";
              let cumulative = ref 0 in
              List.iter
                (fun (_, upper, n) ->
                  cumulative := !cumulative + n;
                  if n > 0 && upper <> Float.infinity then
                    line "%s_bucket{le=\"%s\"} %d" p
                      (prometheus_escape ~quote:true (prometheus_float upper))
                      !cumulative)
                (histogram_buckets h);
              line "%s_bucket{le=\"+Inf\"} %d" p h.observations;
              line "%s_sum %s" p (prometheus_float h.sum);
              line "%s_count %d" p h.observations))
    (names t);
  Buffer.contents buf
