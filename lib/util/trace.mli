(** Bounded ring buffer of structured events — the "what happened, in what
    order" half of the observability layer (Metrics is the "how many").

    Instrumented components take a [Trace.t] and emit events such as flow
    setup, key derivation, cache eviction, replay reject and MKD fetch
    attempts; tests and experiments snapshot the ring with {!events} and
    assert on it.  The shared {!none} instance is disabled (zero capacity):
    guard event construction with [if Trace.enabled t then ...] so the
    default configuration pays one branch and allocates nothing. *)

type event = {
  seq : int;  (** monotone event number since creation/clear *)
  time : float;  (** caller-supplied clock; [nan] when not provided *)
  name : string;  (** dotted event kind, e.g. ["fbs.engine.flow.setup"] *)
  fields : (string * Json.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 1024.  When full, new events overwrite the oldest.
    @raise Invalid_argument on negative capacity. *)

val none : t
(** The shared disabled trace: [enabled none = false], [emit] is a no-op. *)

val enabled : t -> bool
val capacity : t -> int

val emit : t -> ?time:float -> string -> (string * Json.t) list -> unit

val events : t -> event list
(** The retained window, oldest first. *)

val find : t -> string -> event list
(** Retained events with the given name, oldest first. *)

val count : t -> string -> int
val total : t -> int
(** Events emitted since creation/clear, including overwritten ones. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** [total - length]: events lost to ring overwrite. *)

val clear : t -> unit

val event_to_json : event -> Json.t
(** One event as an object.  The ["time"] member is always present;
    events recorded without a clock (default [nan] time) carry
    ["time": null] so the output stays spec-valid JSON. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
