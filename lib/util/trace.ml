(* Bounded ring of structured trace events.

   Where Metrics answers "how many", Trace answers "what happened, in what
   order": flow setups, key derivations, cache evictions, replay rejects,
   MKD fetch attempts.  Experiments and tests snapshot the ring and assert
   on the sequence; the ring is bounded so tracing can stay attached to a
   long run without growing memory — old events fall off the back and are
   counted in [dropped].

   Tracing is opt-in per component: the shared [none] instance has zero
   capacity and [enabled none = false], so instrumented code guards its
   event construction with [if Trace.enabled t then ...] and the default
   configuration pays one branch, no allocation. *)

type event = {
  seq : int; (* monotone across the whole ring's lifetime *)
  time : float; (* caller-supplied clock; nan when not provided *)
  name : string; (* dotted event kind, e.g. "fbs.engine.flow.setup" *)
  fields : (string * Json.t) list;
}

type t = {
  capacity : int;
  ring : event option array; (* slot = seq mod capacity *)
  mutable next_seq : int;
}

let create ?(capacity = 1024) () =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  { capacity; ring = Array.make (max capacity 1) None; next_seq = 0 }

let none = create ~capacity:0 ()
let enabled t = t.capacity > 0
let capacity t = t.capacity

let emit t ?(time = Float.nan) name fields =
  if t.capacity > 0 then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.ring.(seq mod t.capacity) <- Some { seq; time; name; fields }
  end

let total t = t.next_seq
let length t = min t.next_seq t.capacity
let dropped t = t.next_seq - length t

(* Oldest first. *)
let events t =
  let n = length t in
  List.init n (fun i ->
      match t.ring.((t.next_seq - n + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let find t name = List.filter (fun e -> String.equal e.name name) (events t)
let count t name = List.length (find t name)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next_seq <- 0

(* Events recorded without a clock carry [nan]; JSON has no NaN, so the
   member is emitted as an explicit [null] — omitting it entirely would
   make "no clock" indistinguishable from "older schema" to consumers. *)
let event_to_json e =
  Json.Obj
    (("seq", Json.Int e.seq)
    :: ( "time",
         if Float.is_nan e.time then Json.Null else Json.Float e.time )
    :: ("event", Json.String e.name)
    :: e.fields)

let to_json t = Json.List (List.map event_to_json (events t))

let pp ppf t =
  List.iter
    (fun e ->
      Fmt.pf ppf "#%d %s%s@." e.seq e.name
        (String.concat ""
           (List.map (fun (k, v) -> " " ^ k ^ "=" ^ Json.to_string v) e.fields)))
    (events t)
