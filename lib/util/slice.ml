(* A borrowed view of a byte string: [base] is the backing buffer, the
   slice covers [off, off+len).  The datapath passes slices instead of
   freshly-copied strings so each datagram is materialized once (the
   sealed wire buffer on send, the plaintext on receive) instead of 5-8
   times.

   Ownership discipline (DESIGN.md, "Datapath and buffer ownership"): a
   slice borrows its base and is valid only while the base is.  Anything
   that outlives the current datagram's processing — cache entries,
   replay-window state, the application-visible payload — must copy via
   [to_string].  [of_bytes_unsafe] exists for per-engine scratch buffers
   that are refilled between datagrams; such slices must be consumed
   before the scratch is next written. *)

type t = { base : string; off : int; len : int }

let check base off len =
  if off < 0 || len < 0 || off > String.length base - len then
    invalid_arg
      (Printf.sprintf "Slice: [%d,%d+%d) outside base of length %d" off off len
         (String.length base))

let v ?(off = 0) ?len base =
  let len = match len with Some l -> l | None -> String.length base - off in
  check base off len;
  { base; off; len }

let of_string base = { base; off = 0; len = String.length base }

(* Zero-copy view of a mutable buffer.  The caller owns [b] and promises
   not to mutate it while the slice is live (scratch-buffer idiom: fill,
   feed to a consumer that reads immediately, refill). *)
let of_bytes_unsafe b = of_string (Bytes.unsafe_to_string b)

let base t = t.base
let offset t = t.off
let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Slice.get: out of bounds";
  String.unsafe_get t.base (t.off + i)

let unsafe_get t i = String.unsafe_get t.base (t.off + i)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos > t.len - len then
    invalid_arg "Slice.sub: out of bounds";
  { base = t.base; off = t.off + pos; len }

(* Materialize.  The whole-base fast path returns the base itself, so
   slicing a string and converting back is free — the common case on the
   unfaulted link path and the shim decapsulation path. *)
let to_string t =
  if t.off = 0 && t.len = String.length t.base then t.base
  else String.sub t.base t.off t.len

let blit t dst dst_pos = Bytes.blit_string t.base t.off dst dst_pos t.len

let iter f t =
  for i = t.off to t.off + t.len - 1 do
    f (String.unsafe_get t.base i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (String.unsafe_get t.base (t.off + i))
  done

(* Structural byte equality (not constant-time — see {!Ct.equal_slice}
   in the crypto layer for MAC comparison). *)
let equal a b =
  a.len = b.len
  && (a.base == b.base && a.off = b.off
     ||
     let rec go i =
       i >= a.len
       || String.unsafe_get a.base (a.off + i) = String.unsafe_get b.base (b.off + i)
          && go (i + 1)
     in
     go 0)

let equal_string t s =
  t.len = String.length s
  &&
  let rec go i =
    i >= t.len || String.unsafe_get t.base (t.off + i) = String.unsafe_get s i && go (i + 1)
  in
  go 0

(* Append to an assembly buffer without an intermediate copy. *)
let append w t = Byte_writer.substring w t.base t.off t.len

let pp ppf t = Fmt.pf ppf "slice[%d+%d]" t.off t.len
