(** Growable big-endian (network byte order) byte writer. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val u8 : t -> int -> unit
(** Append one byte (low 8 bits of the argument). *)

val u16 : t -> int -> unit
(** Append a 16-bit big-endian value. *)

val u32 : t -> int32 -> unit
(** Append a 32-bit big-endian value. *)

val u32_int : t -> int -> unit
(** Append the low 32 bits of a native int, big-endian. *)

val u64 : t -> int64 -> unit
(** Append a 64-bit big-endian value. *)

val bytes : t -> string -> unit
(** Append a raw byte string. *)

val substring : t -> string -> int -> int -> unit
(** [substring t s pos len] appends [len] bytes of [s] starting at
    [pos] — one blit, no intermediate [String.sub].
    @raise Invalid_argument on bad bounds. *)

val reserve : t -> int -> Bytes.t * int
(** [reserve t n] grows the buffer by [n] bytes and returns
    [(buf, pos)]: the caller must write exactly [n] bytes into [buf]
    at [pos].  Lets codecs (e.g. block ciphers) produce output directly
    into the assembly buffer.  The returned buffer is invalidated by
    any subsequent append that grows the writer. *)

val reset : t -> unit
(** Truncate to empty, keeping the backing buffer — for assembly
    buffers reused across datagrams. *)

val contents : t -> string
(** Snapshot of everything written so far. *)

val to_string : t -> string
(** Alias for {!contents}. *)

val sub_string : t -> pos:int -> len:int -> string
(** Copy of a written sub-range.  @raise Invalid_argument on bad bounds. *)

val finalize : t -> string
(** Like {!contents}, but when the written length equals the buffer
    capacity the backing buffer itself is returned without a copy (the
    one-allocation wire-assembly path: create with the exact capacity,
    fill, finalize).  The writer is reset and detached from the returned
    string either way. *)
