(** Flight recorder: a fixed-cadence, bounded ring of metric snapshots.

    Each [tick] past the cadence deadline snapshots every metric visible in
    the attached {!Metrics} registry into one row of a circular buffer, so a
    long run keeps the most recent [capacity] samples and a crashed or
    misbehaving interval can be reconstructed after the fact ("flight
    recorder", not "logger").

    Scalars record their value; histograms expand into three derived
    columns: [<name>.count], [<name>.sum], and [<name>.p99] — the latter a
    nearest-rank read over the *interval* bucket deltas (per-cadence tail,
    not lifetime-cumulative), which is what the health rules watch.

    The ["fbsr-timeseries/1"] artifact is delta-encoded: the first kept row
    is absolute, every later row stores per-column deltas (integral deltas
    as JSON ints), which keeps million-sample counter series compact and
    diff-friendly. *)

type t

val none : t
(** Shared disabled recorder: [tick] is a single branch. *)

val create :
  ?capacity:int -> ?cadence:float -> ?host:string -> metrics:Metrics.t -> unit -> t
(** [capacity] rows kept (default 1024); [cadence] seconds between
    snapshots on the driving clock (default 1.0); [host] labels the
    artifact. *)

val enabled : t -> bool
val cadence : t -> float

val tick : t -> now:float -> unit
(** Snapshot if [now] has reached the next cadence deadline (the first call
    always snapshots and anchors the cadence grid).  Cheap no-op between
    deadlines — safe to call from per-batch or per-event loops. *)

val force : t -> now:float -> unit
(** Unconditional snapshot (end-of-run flush). *)

val taken : t -> int
(** Total snapshots taken over the recorder's lifetime. *)

val kept : t -> int
(** Rows currently in the ring (at most [capacity]). *)

val names : t -> string list
(** Sorted column names seen so far (including derived histogram columns). *)

val series : t -> string -> (float * float) array
(** [(time, value)] pairs for one column, oldest first, over the kept rows.
    Rows snapshotted before the column first appeared report 0. *)

val times : t -> float array

val last2 : t -> string -> float * float
(** [(previous, latest)] values of one column over the two most recent
    rows — the interval-delta read the health rules poll each cadence.
    Missing column or missing row reads as 0. *)

val to_json : t -> Json.t
(** ["fbsr-timeseries/1"]: [{schema; host; cadence; taken; kept; names;
    times; base; deltas}]. *)

val dashboard :
  ?width:int -> ?height:int -> Format.formatter -> t -> names:string list -> unit
(** Render one {!Chart.timeseries} panel per named column. *)
