(* Space-Saving candidates over a linear count-min estimator.  See the .mli
   for the canonical-merge design; the key constraint implemented here is
   that the hot path (observe on an already-tracked key) allocates nothing:
   int-keyed hashtable lookup, int-array increments, native-int hashing. *)

type t = {
  slots : int; (* 0 = disabled *)
  cm_depth : int;
  cm_width : int; (* power of two *)
  seeds : int array; (* one per count-min row *)
  cm : int array; (* cm_depth * cm_width, row-major *)
  keys : int64 array; (* Space-Saving slot -> key *)
  counts : int array; (* Space-Saving slot -> count *)
  index : (int, int) Hashtbl.t; (* truncated key -> slot *)
  mutable used : int;
  mutable total : int;
}

let none =
  {
    slots = 0;
    cm_depth = 0;
    cm_width = 0;
    seeds = [||];
    cm = [||];
    keys = [||];
    counts = [||];
    index = Hashtbl.create 1;
    used = 0;
    total = 0;
  }

let enabled t = t.slots > 0

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Fixed seed schedule: every sketch of the same dimensions hashes keys the
   same way, which is what makes cross-shard count-min merges exact. *)
let row_seed row = 0x2b992ddf lxor (row * 0x9e3779b9) lxor (row lsl 17)

let create ?(slots = 512) ?(cm_depth = 4) ?(cm_width = 8192) () =
  if slots <= 0 || cm_depth <= 0 || cm_width <= 0 then
    invalid_arg "Sketch.create: dimensions must be positive";
  let cm_width = round_pow2 cm_width in
  {
    slots;
    cm_depth;
    cm_width;
    seeds = Array.init cm_depth row_seed;
    cm = Array.make (cm_depth * cm_width) 0;
    keys = Array.make slots 0L;
    counts = Array.make slots 0;
    index = Hashtbl.create (2 * slots);
    used = 0;
    total = 0;
  }

(* xorshift-multiply mix on the native int; constants fit in 62 bits. *)
let mix seed k =
  let h = k lxor seed in
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1B03738712FAD5C9 in
  let h = h lxor (h lsr 32) in
  h

let cm_update t ik w =
  let mask = t.cm_width - 1 in
  for row = 0 to t.cm_depth - 1 do
    let idx = mix (Array.unsafe_get t.seeds row) ik land mask in
    let cell = (row * t.cm_width) + idx in
    Array.unsafe_set t.cm cell (Array.unsafe_get t.cm cell + w)
  done

let cm_estimate t ik =
  let mask = t.cm_width - 1 in
  let est = ref max_int in
  for row = 0 to t.cm_depth - 1 do
    let idx = mix (Array.unsafe_get t.seeds row) ik land mask in
    let v = Array.unsafe_get t.cm ((row * t.cm_width) + idx) in
    if v < !est then est := v
  done;
  if !est = max_int then 0 else !est

let min_slot t =
  let best = ref 0 in
  let bestc = ref t.counts.(0) in
  for s = 1 to t.used - 1 do
    let c = Array.unsafe_get t.counts s in
    if c < !bestc then (
      bestc := c;
      best := s)
  done;
  !best

let insert_slot t key ik count =
  if t.used < t.slots then (
    let s = t.used in
    t.used <- t.used + 1;
    t.keys.(s) <- key;
    t.counts.(s) <- count;
    Hashtbl.replace t.index ik s)
  else
    let s = min_slot t in
    Hashtbl.remove t.index (Int64.to_int t.keys.(s));
    (* Space-Saving: the newcomer inherits the evicted minimum, bounding the
       overestimate by total/slots.  The counter only nominates candidates;
       reported estimates come from count-min. *)
    t.keys.(s) <- key;
    t.counts.(s) <- t.counts.(s) + count;
    Hashtbl.replace t.index ik s

let observe t key w =
  if t.slots > 0 then begin
    let ik = Int64.to_int key in
    t.total <- t.total + w;
    cm_update t ik w;
    match Hashtbl.find t.index ik with
    | s -> Array.unsafe_set t.counts s (Array.unsafe_get t.counts s + w)
    | exception Not_found -> insert_slot t key ik w
  end

let total t = t.total
let distinct_tracked t = t.used
let estimate t key = if t.slots = 0 then 0 else cm_estimate t (Int64.to_int key)
let ss_bound t = if t.slots = 0 then 0 else t.total / t.slots

let top t k =
  if t.slots = 0 || k <= 0 then []
  else begin
    let cand =
      Array.init t.used (fun s ->
          let key = t.keys.(s) in
          (key, cm_estimate t (Int64.to_int key)))
    in
    Array.sort
      (fun (ka, ea) (kb, eb) ->
        if ea <> eb then compare eb ea else compare ka kb)
      cand;
    let n = min k (Array.length cand) in
    Array.to_list (Array.sub cand 0 n)
  end

let merge ts =
  match ts with
  | [] -> invalid_arg "Sketch.merge: empty list"
  | hd :: _ ->
      List.iter
        (fun s ->
          if
            s.slots <> hd.slots || s.cm_depth <> hd.cm_depth
            || s.cm_width <> hd.cm_width
          then invalid_arg "Sketch.merge: dimension mismatch")
        ts;
      let m = create ~slots:hd.slots ~cm_depth:hd.cm_depth ~cm_width:hd.cm_width () in
      List.iter
        (fun s ->
          m.total <- m.total + s.total;
          for i = 0 to Array.length s.cm - 1 do
            m.cm.(i) <- m.cm.(i) + s.cm.(i)
          done)
        ts;
      (* Recombine candidate slots: keep the largest Space-Saving counters
         across all inputs (keys are disjoint under sfl sharding, so counts
         never need summing across inputs of the same key — but sum anyway
         to stay correct if they are not). *)
      let acc = Hashtbl.create (4 * hd.slots) in
      List.iter
        (fun s ->
          for i = 0 to s.used - 1 do
            let key = s.keys.(i) in
            let prev = try Hashtbl.find acc key with Not_found -> 0 in
            Hashtbl.replace acc key (prev + s.counts.(i))
          done)
        ts;
      let cand =
        Hashtbl.fold (fun key c l -> (key, c) :: l) acc []
        |> List.sort (fun (ka, ca) (kb, cb) ->
               if ca <> cb then compare cb ca else compare ka kb)
      in
      List.iteri
        (fun i (key, c) ->
          if i < m.slots then begin
            m.keys.(i) <- key;
            m.counts.(i) <- c;
            m.used <- m.used + 1;
            Hashtbl.replace m.index (Int64.to_int key) i
          end)
        cand;
      m

let cm_checksum t =
  let h = ref (mix 0x5ee7c4 (t.slots lxor (t.cm_depth lsl 20) lxor (t.cm_width lsl 8))) in
  Array.iter (fun c -> h := mix !h (c + 0x9e37)) t.cm;
  h := mix !h t.total;
  !h land max_int

let to_json ?(k = 32) t =
  let open Json in
  Obj
    [
      ("schema", String "fbsr-sketch/1");
      ("slots", Int t.slots);
      ("cm_depth", Int t.cm_depth);
      ("cm_width", Int t.cm_width);
      ("total", Int t.total);
      ("cm_checksum", Int (cm_checksum t));
      ("ss_bound", Int (ss_bound t));
      ( "top",
        List
          (List.map
             (fun (key, est) ->
               Obj [ ("key", String (Printf.sprintf "%016Lx" key)); ("est", Int est) ])
             (top t k)) );
    ]
