(** Per-datagram causal tracing: spans over the flow lifecycle.

    Where {!Metrics} answers "how many" and {!Trace} "what happened, in
    what order", [Span] answers "where did datagram #4711 spend its time,
    and at which stage was it dropped?".  Each datagram entering the FBS
    send path (and each MKD certificate fetch) is assigned a 64-bit trace
    id; every instrumented stage — FAM classification, flow-key
    derivation, sealing, link transit, decapsulation, receive processing,
    the replay check — records a span (begin/end timestamps plus an
    optional terminal outcome) into a bounded per-host flight recorder.

    The trace id travels in a {e sidecar context}: a process-ambient
    current-id cell that the sender sets before handing the datagram down
    and that the simulated network captures at transmit time and restores
    around each delivery, so receive-side spans join the sender's trace
    without a single wire-format byte.  This mirrors how the network
    itself is simulated: delivery metadata lives in the scheduler closure,
    not in the frame.

    Cost discipline mirrors {!Trace}: the shared {!none} recorder is
    disabled, [enabled none = false], and instrumented code guards every
    span construction with one branch —

    {[
      let tm = if Span.enabled sp then Some (Span.start sp) else None in
      ... stage work ...
      match tm with
      | Some tm -> Span.finish sp tm "engine.seal"
      | None -> ()
    ]}

    so a disabled datapath pays one branch and allocates nothing. *)

(** {1 Trace ids and the sidecar context} *)

val fresh_id : unit -> int64
(** A new nonzero 64-bit trace id (SplitMix64 sequence — well-spread,
    deterministic per process). *)

val current : unit -> int64
(** The ambient current trace id; [0L] means "no trace in scope". *)

val set_current : int64 -> unit
(** Overwrite the ambient id (the sender side does this once per
    datagram; only call it under an [enabled] guard). *)

val clear_current : unit -> unit
(** [set_current 0L]. *)

val with_current : int64 -> (unit -> 'a) -> 'a
(** Run the thunk with the ambient id set to [id], restoring the previous
    id afterwards (also on raise).  This is the delivery-side half of the
    sidecar: the network captures [current ()] at transmit time and wraps
    each delivery callback in [with_current], so everything a delivery
    triggers — decap, receive, replay, even the acknowledgement's own send
    (which overwrites the scope with a fresh id) — is attributed
    correctly and the previous context is restored when the event ends. *)

(** {1 Spans and recorders} *)

type span = {
  seq : int;  (** process-wide monotone record number (stable sort key) *)
  id : int64;  (** the datagram's trace id *)
  stage : string;  (** e.g. ["engine.seal"], ["netsim.link"] *)
  host : string;  (** recorder's host label, [""] when unattributed *)
  t_begin : float;  (** timeline clock at {!start} *)
  t_end : float;  (** timeline clock at {!finish} *)
  cost : float;  (** elapsed cost clock (seconds); = timeline when no
                     separate cost clock was given *)
  outcome : string;  (** [""] non-terminal; ["delivered"] or ["drop:<cause>"]
                         where the datagram's life ends *)
  detail : (string * Json.t) list;  (** stage-specific attribution, e.g.
                                        cache hit/miss, fault verdicts *)
}

type t
(** A bounded flight recorder (one per host in a simulated site).  When
    full, new spans overwrite the oldest. *)

(** {2 Adaptive sampling}

    At millions of flows an unsampled ring only remembers the last instant
    of traffic.  A {!sampler} thins retention instead: chains are
    head-sampled by trace-id hash (keep 1 in [ratio]), but any chain whose
    span terminates in a [drop:*] outcome, a forgery/replay verdict, or a
    degradation mark is kept {e in full} — undecided spans park in the
    sampler until their chain's terminal span decides their fate, so the
    complete causal context survives for every anomaly.

    A chain's spans conclude on a different recorder than they began (the
    sender's seal spans terminate at the receiver), so one sampler is
    shared by all of a site's recorders.  The shared state is not
    synchronized: share a sampler only among recorders driven from one
    domain.  Stage histograms ([metrics]) observe every span regardless of
    the sampling decision — sampling thins the causal ring only. *)

type sampler

val sampler : ?pending_cap:int -> ratio:int -> unit -> sampler
(** Keep 1 in [ratio] normal chains ([1] keeps everything).  At most
    [pending_cap] (default 16384) undecided spans park at once; beyond
    that the oldest undecided chains are evicted un-retained.
    @raise Invalid_argument when [ratio < 1]. *)

val ratio : sampler -> int

val sampled_in : sampler -> int64 -> bool
(** The head-sampling decision for a trace id (pure hash, identical on
    every recorder sharing the sampler). *)

val is_anomaly : span -> bool
(** The tail-keep predicate: a [drop:*] or forgery/replay outcome, or a
    ["degraded"] detail mark, makes the whole chain worth keeping
    regardless of the head-sampling decision. *)

type sampler_stats = {
  kept_chains : int;  (** head-sampled chains that reached a terminal *)
  promoted_chains : int;  (** chains retained by the anomaly tail-keep *)
  discarded_chains : int;  (** normal chains sampled out at their terminal *)
  evicted_chains : int;  (** undecided chains dropped at [pending_cap] *)
  pending_spans : int;  (** spans currently parked *)
}

val sampler_stats : sampler -> sampler_stats

val create :
  ?capacity:int ->
  ?host:string ->
  ?clock:(unit -> float) ->
  ?cost_clock:(unit -> float) ->
  ?metrics:Metrics.t ->
  ?sampler:sampler ->
  unit ->
  t
(** Default capacity 8192.  [clock] (default: always 0.0) supplies the
    timeline timestamps — simulated time in netsim runs, so cross-host
    timelines align.  [cost_clock] (default: [clock]) supplies the
    per-stage latency measurement — pass a wall clock to reproduce the
    paper's cost-breakdown table from a simulated run.  [metrics], when
    given, receives one owned histogram per stage (["stage.<stage>"],
    observing {!span.cost} seconds; scope the registry first, e.g.
    [Metrics.sub m "span"]).
    @raise Invalid_argument on negative capacity. *)

val none : t
(** The shared disabled recorder: [enabled none = false]; {!start} and
    {!finish} on it are no-ops. *)

val enabled : t -> bool
val capacity : t -> int
val host : t -> string

type timer
(** A captured begin point (both clocks).  Timers are plain values: one
    may be finished more than once (a duplicated link delivery records two
    spans sharing a begin), and may cross scheduler events (link transit
    finishes at delivery time). *)

val start : t -> timer
(** Read both clocks.  Only call under an [enabled] guard (on a disabled
    recorder it returns a zero timer). *)

val finish :
  t ->
  timer ->
  ?id:int64 ->
  ?outcome:string ->
  ?detail:(string * Json.t) list ->
  string ->
  unit
(** [finish t tm stage] records one span ending now.  [id] defaults to
    [current ()]; pass the id captured at stage entry when the finish may
    run in a later scheduler event (continuations, deliveries).  [outcome]
    (default [""]) marks a terminal span.  No-op on a disabled recorder. *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val total : t -> int
(** Spans recorded since creation/clear, including overwritten ones. *)

val dropped : t -> int
(** [total - retained]: spans lost to ring overwrite. *)

val clear : t -> unit

(** {1 Working with collected spans} *)

val collect : t list -> span list
(** Merge several recorders, sorted by [(t_begin, seq)] — the cross-host
    timeline of a whole site. *)

val ids : span list -> int64 list
(** Distinct trace ids in order of first appearance. *)

val by_id : int64 -> span list -> span list

(** {1 Exporters} *)

val to_json : span list -> Json.t
(** An ["fbsr-spans/1"] document: [{schema, spans: [...]}].  Trace ids
    serialize as 16-digit hex strings (they do not fit [Json.Int]'s
    63-bit range). *)

val of_json : Json.t -> span list
(** Inverse of {!to_json}.
    @raise Invalid_argument on a document that is not fbsr-spans/1. *)

val chrome_json : span list -> Json.t
(** Chrome trace-event JSON (chrome://tracing / Perfetto): one process
    per host, one thread lane per stage, complete ("X") events with
    microsecond [ts]/[dur] from the timeline clock; trace id, outcome,
    cost and detail ride in [args]. *)

val pp_timeline : ?id:int64 -> Format.formatter -> span list -> unit
(** Plain-text per-flow timeline: one block per trace id (or just [id]),
    one line per span with host, relative begin time, stage, duration and
    outcome/detail. *)

type stage_stat = {
  stat_stage : string;
  count : int;
  p50 : float;  (** median cost, seconds *)
  p99 : float;  (** 99th-percentile cost, seconds *)
  worst : float;  (** maximum cost, seconds *)
}

val stage_stats : span list -> stage_stat list
(** Per-stage latency distribution over {!span.cost} (nearest-rank
    percentiles), in datapath order (classify, derive, seal, link, decap,
    receive, replay, then anything else alphabetically). *)
