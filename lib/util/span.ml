(* Per-datagram causal tracing.  See span.mli for the model; the shape
   deliberately mirrors Trace: a bounded ring, a shared disabled value,
   and an [enabled] predicate so instrumented code pays one branch when
   tracing is off. *)

(* ---- Trace ids and the sidecar context ---------------------------------- *)

(* SplitMix64: a full-period 64-bit sequence with good bit diffusion, so
   ids from different subsystems (datagrams, MKD fetches) never collide
   within a process and truncated hex prefixes stay distinguishable.
   The state is an atomic draw counter — after the k-th draw the classic
   formulation's state is k * gamma, so mixing [gamma * (n + 1)] yields
   the identical id sequence while staying race-free when several shard
   domains allocate ids concurrently. *)
let id_state = Atomic.make 0

let fresh_id () =
  let n = Atomic.fetch_and_add id_state 1 in
  let z = Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (n + 1)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  if Int64.equal z 0L then 1L else z

(* The ambient trace context is per domain: a shard domain sealing one
   datagram must not see (or clobber) another shard's current id. *)
let current_id = Domain_shim.local_make (fun () -> 0L)
let current () = Domain_shim.local_get current_id
let set_current id = Domain_shim.local_set current_id id
let clear_current () = Domain_shim.local_set current_id 0L

let with_current id f =
  let saved = Domain_shim.local_get current_id in
  Domain_shim.local_set current_id id;
  match f () with
  | v ->
      Domain_shim.local_set current_id saved;
      v
  | exception e ->
      Domain_shim.local_set current_id saved;
      raise e

(* ---- Spans and recorders ------------------------------------------------ *)

type span = {
  seq : int;
  id : int64;
  stage : string;
  host : string;
  t_begin : float;
  t_end : float;
  cost : float;
  outcome : string;
  detail : (string * Json.t) list;
}

(* The seq counter is process-wide (not per recorder) so spans merged
   from several hosts sort into their true record order even when the
   simulated clock gives them identical timestamps.  Atomic, so per-shard
   recorders on separate domains still draw globally unique seqs. *)
let seq_state = Atomic.make 0

type t = {
  cap : int;
  host_label : string;
  clock : unit -> float;
  cost_clock : unit -> float;
  metrics : Metrics.t option;
  smp : sampler option;
  ring : span option array;
  mutable recorded : int;
}

(* A chain's fate is only known at its terminal span, usually on a
   different host's recorder than the spans already emitted (the sender's
   seal spans conclude at the receiver).  The sampler is therefore shared
   across a site's recorders: undecided spans park here tagged with their
   recorder, and the terminal span retro-flushes or discards them. *)
and sampler = {
  ratio : int; (* keep 1 in [ratio] chains by id hash; <= 1 keeps all *)
  pending_cap : int; (* max parked spans before oldest chains are evicted *)
  pending : (int64, (t * span) list ref) Hashtbl.t;
  order : int64 Queue.t; (* chain ids in first-parked order, may be stale *)
  mutable pending_count : int;
  promoted : (int64, unit) Hashtbl.t; (* anomalous chains: keep everything *)
  mutable kept_chains : int;
  mutable promoted_chains : int;
  mutable discarded_chains : int;
  mutable evicted_chains : int;
}

let zero_clock () = 0.0

let sampler ?(pending_cap = 16384) ~ratio () =
  if ratio < 1 then invalid_arg "Span.sampler: ratio must be >= 1";
  {
    ratio;
    pending_cap = max 1 pending_cap;
    pending = Hashtbl.create 256;
    order = Queue.create ();
    pending_count = 0;
    promoted = Hashtbl.create 64;
    kept_chains = 0;
    promoted_chains = 0;
    discarded_chains = 0;
    evicted_chains = 0;
  }

let ratio sm = sm.ratio
let sampled_in sm id = Int64.to_int id land max_int mod sm.ratio = 0

type sampler_stats = {
  kept_chains : int;
  promoted_chains : int;
  discarded_chains : int;
  evicted_chains : int;
  pending_spans : int;
}

let sampler_stats (sm : sampler) =
  {
    kept_chains = sm.kept_chains;
    promoted_chains = sm.promoted_chains;
    discarded_chains = sm.discarded_chains;
    evicted_chains = sm.evicted_chains;
    pending_spans = sm.pending_count;
  }

let create ?(capacity = 8192) ?(host = "") ?(clock = zero_clock) ?cost_clock
    ?metrics ?sampler () =
  if capacity < 0 then invalid_arg "Span.create: negative capacity";
  let cost_clock = Option.value cost_clock ~default:clock in
  {
    cap = capacity;
    host_label = host;
    clock;
    cost_clock;
    metrics;
    smp = sampler;
    ring = Array.make (max capacity 1) None;
    recorded = 0;
  }

let none = create ~capacity:0 ()
let enabled t = t.cap > 0
let capacity t = t.cap
let host t = t.host_label

type timer = { t0 : float; c0 : float }

let zero_timer = { t0 = 0.0; c0 = 0.0 }

let start t =
  if t.cap = 0 then zero_timer else { t0 = t.clock (); c0 = t.cost_clock () }

let record t s =
  t.ring.(t.recorded mod t.cap) <- Some s;
  t.recorded <- t.recorded + 1

(* The tail-keep predicate: any span that ends a chain in a drop, a
   forgery/replay verdict, or that carries a degradation mark makes the
   whole chain worth keeping regardless of the head-sampling decision. *)
let is_anomaly s =
  (String.length s.outcome >= 5 && String.sub s.outcome 0 5 = "drop:")
  || s.outcome = "forged" || s.outcome = "replay"
  || List.mem_assoc "degraded" s.detail

let flush_pending sm id ~keep =
  match Hashtbl.find_opt sm.pending id with
  | None -> ()
  | Some l ->
      sm.pending_count <- sm.pending_count - List.length !l;
      Hashtbl.remove sm.pending id;
      if keep then List.iter (fun (t, s) -> record t s) (List.rev !l)

let park sm t s =
  (match Hashtbl.find_opt sm.pending s.id with
  | Some l -> l := (t, s) :: !l
  | None ->
      Hashtbl.replace sm.pending s.id (ref [ (t, s) ]);
      Queue.push s.id sm.order);
  sm.pending_count <- sm.pending_count + 1;
  while sm.pending_count > sm.pending_cap && not (Queue.is_empty sm.order) do
    let victim = Queue.pop sm.order in
    match Hashtbl.find_opt sm.pending victim with
    | None -> () (* stale entry: that chain already concluded *)
    | Some l ->
        sm.pending_count <- sm.pending_count - List.length !l;
        Hashtbl.remove sm.pending victim;
        sm.evicted_chains <- sm.evicted_chains + 1
  done

let sampled_record t sm s =
  if Int64.equal s.id 0L then record t s (* unattributed: never sampled out *)
  else if sampled_in sm s.id then begin
    if s.outcome <> "" then sm.kept_chains <- sm.kept_chains + 1;
    record t s
  end
  else if Hashtbl.mem sm.promoted s.id then record t s
  else if is_anomaly s then begin
    (* Tail-keep: retro-flush the chain's parked spans (wherever they were
       recorded), then let any later spans of this chain pass through. *)
    flush_pending sm s.id ~keep:true;
    if Hashtbl.length sm.promoted > 65536 then Hashtbl.reset sm.promoted;
    Hashtbl.replace sm.promoted s.id ();
    sm.promoted_chains <- sm.promoted_chains + 1;
    record t s
  end
  else if s.outcome <> "" then begin
    (* Normal terminal on a chain the head-sample passed over. *)
    flush_pending sm s.id ~keep:false;
    sm.discarded_chains <- sm.discarded_chains + 1
  end
  else park sm t s

let finish t tm ?(id = 0L) ?(outcome = "") ?(detail = []) stage =
  if t.cap > 0 then begin
    let id = if Int64.equal id 0L then current () else id in
    let seq = Atomic.fetch_and_add seq_state 1 in
    let t1 = t.clock () in
    let cost = t.cost_clock () -. tm.c0 in
    let s =
      {
        seq;
        id;
        stage;
        host = t.host_label;
        t_begin = tm.t0;
        t_end = t1;
        cost;
        outcome;
        detail;
      }
    in
    (* Stage histograms see every span: sampling thins the causal ring, it
       must not bias the latency distributions the bench gates read. *)
    (match t.metrics with
    | Some m -> Metrics.observe (Metrics.histogram m ("stage." ^ stage)) cost
    | None -> ());
    match t.smp with
    | None -> record t s
    | Some sm when sm.ratio <= 1 -> record t s
    | Some sm -> sampled_record t sm s
  end

let total t = t.recorded
let retained t = min t.recorded t.cap
let dropped t = t.recorded - retained t

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.recorded <- 0

let spans t =
  let n = retained t in
  let first = t.recorded - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.cap) with
      | Some s -> s
      | None -> assert false)

(* ---- Working with collected spans --------------------------------------- *)

let compare_span a b =
  match compare a.t_begin b.t_begin with 0 -> compare a.seq b.seq | c -> c

let collect ts = List.sort compare_span (List.concat_map spans ts)

let ids spans =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if Hashtbl.mem seen s.id then None
      else begin
        Hashtbl.add seen s.id ();
        Some s.id
      end)
    spans

let by_id id spans = List.filter (fun s -> Int64.equal s.id id) spans

(* ---- JSON round trip ---------------------------------------------------- *)

let hex_of_id id = Printf.sprintf "%016Lx" id

let id_of_hex s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Span.of_json: bad trace id %S" s)

let span_to_json s =
  Json.Obj
    [
      ("seq", Json.Int s.seq);
      ("id", Json.String (hex_of_id s.id));
      ("stage", Json.String s.stage);
      ("host", Json.String s.host);
      ("begin", Json.Float s.t_begin);
      ("end", Json.Float s.t_end);
      ("cost", Json.Float s.cost);
      ("outcome", Json.String s.outcome);
      ("detail", Json.Obj s.detail);
    ]

let to_json spans =
  Json.Obj
    [
      ("schema", Json.String "fbsr-spans/1");
      ("spans", Json.List (List.map span_to_json spans));
    ]

let span_of_json j =
  let str name d =
    match Json.member name j with Some (Json.String s) -> s | _ -> d
  in
  let num name =
    match Option.bind (Json.member name j) Json.to_float_opt with
    | Some f -> f
    | None -> 0.0
  in
  {
    seq =
      (match Json.member "seq" j with Some (Json.Int n) -> n | _ -> 0);
    id = id_of_hex (str "id" "0000000000000000");
    stage = str "stage" "?";
    host = str "host" "";
    t_begin = num "begin";
    t_end = num "end";
    cost = num "cost";
    outcome = str "outcome" "";
    detail =
      (match Json.member "detail" j with Some (Json.Obj kvs) -> kvs | _ -> []);
  }

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.String "fbsr-spans/1") -> ()
  | _ -> invalid_arg "Span.of_json: not an fbsr-spans/1 document");
  match Json.member "spans" j with
  | Some (Json.List l) -> List.map span_of_json l
  | _ -> invalid_arg "Span.of_json: missing spans array"

(* ---- Stage ordering ----------------------------------------------------- *)

(* Datapath order: sender-side stages first, then transit, then the
   receive side.  Stages outside this list (e.g. a future subsystem's)
   sort after it, alphabetically. *)
let stage_rank = function
  | "fam.classify" -> 0
  | "keying.derive" -> 1
  | "mkd.fetch" -> 2
  | "engine.seal" -> 3
  | "engine.send" -> 4
  | "netsim.link" -> 5
  | "stack.decap" -> 6
  | "replay.check" -> 7
  | "engine.receive" -> 8
  | _ -> max_int

let compare_stage a b =
  match compare (stage_rank a) (stage_rank b) with
  | 0 -> compare a b
  | c -> c

(* ---- Chrome trace-event exporter ---------------------------------------- *)

let chrome_json spans =
  let spans = List.sort compare_span spans in
  let index keys =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i k -> Hashtbl.replace tbl k (i + 1)) keys;
    tbl
  in
  let uniq l =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun k ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      l
  in
  let hosts = uniq (List.map (fun s -> s.host) spans) in
  let stages =
    List.sort compare_stage (uniq (List.map (fun s -> s.stage) spans))
  in
  let pid_of = index hosts and tid_of = index stages in
  let meta =
    List.map
      (fun h ->
        Json.Obj
          [
            ("ph", Json.String "M");
            ("name", Json.String "process_name");
            ("pid", Json.Int (Hashtbl.find pid_of h));
            ("args", Json.Obj [ ("name", Json.String (if h = "" then "(unattributed)" else h)) ]);
          ])
      hosts
    @ List.concat_map
        (fun h ->
          List.map
            (fun st ->
              Json.Obj
                [
                  ("ph", Json.String "M");
                  ("name", Json.String "thread_name");
                  ("pid", Json.Int (Hashtbl.find pid_of h));
                  ("tid", Json.Int (Hashtbl.find tid_of st));
                  ("args", Json.Obj [ ("name", Json.String st) ]);
                ])
            stages)
        hosts
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String s.stage);
            ("cat", Json.String "fbsr");
            ("ph", Json.String "X");
            ("ts", Json.Float (s.t_begin *. 1e6));
            ("dur", Json.Float (max 0.0 (s.t_end -. s.t_begin) *. 1e6));
            ("pid", Json.Int (Hashtbl.find pid_of s.host));
            ("tid", Json.Int (Hashtbl.find tid_of s.stage));
            ( "args",
              Json.Obj
                ([
                   ("trace_id", Json.String (hex_of_id s.id));
                   ("outcome", Json.String s.outcome);
                   ("cost_us", Json.Float (s.cost *. 1e6));
                 ]
                @ s.detail) );
          ])
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

(* ---- Plain-text timeline ------------------------------------------------ *)

let pp_detail ppf detail =
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.to_string v))
    detail

let pp_flow ppf id spans =
  let t0 =
    List.fold_left (fun acc s -> min acc s.t_begin) infinity spans
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let terminal =
    List.fold_left
      (fun acc s -> if s.outcome <> "" then s.outcome else acc)
      "(in flight)" spans
  in
  Format.fprintf ppf "trace %s  %d span(s)  %s@." (hex_of_id id)
    (List.length spans) terminal;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %+12.1fus %-14s %-15s %9.1fus%s%a@."
        ((s.t_begin -. t0) *. 1e6)
        s.stage
        (if s.host = "" then "-" else s.host)
        (max 0.0 (s.t_end -. s.t_begin) *. 1e6)
        (if s.outcome = "" then "" else "  [" ^ s.outcome ^ "]")
        pp_detail s.detail)
    spans

let pp_timeline ?id ppf all =
  let all = List.sort compare_span all in
  let flow_ids =
    match id with Some id -> [ id ] | None -> ids all
  in
  List.iteri
    (fun i fid ->
      if i > 0 then Format.pp_print_newline ppf ();
      pp_flow ppf fid (by_id fid all))
    flow_ids

(* ---- Per-stage latency distribution ------------------------------------- *)

type stage_stat = {
  stat_stage : string;
  count : int;
  p50 : float;
  p99 : float;
  worst : float;
}

(* Nearest-rank percentile on a sorted array: the smallest value with at
   least q of the mass at or below it. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let stage_stats spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let l = try Hashtbl.find tbl s.stage with Not_found -> [] in
      Hashtbl.replace tbl s.stage (s.cost :: l))
    spans;
  Hashtbl.fold (fun stage costs acc -> (stage, costs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_stage a b)
  |> List.map (fun (stage, costs) ->
         let arr = Array.of_list costs in
         Array.sort compare arr;
         {
           stat_stage = stage;
           count = Array.length arr;
           p50 = percentile arr 0.50;
           p99 = percentile arr 0.99;
           worst = (if Array.length arr = 0 then 0.0 else arr.(Array.length arr - 1));
         })
