(** Heavy-hitter flow sketches: Space-Saving top-K candidates backed by a
    count-min estimator, keyed on 64-bit flow labels.

    The design splits responsibilities so the merged-across-shards sketch is
    *canonically identical* to a single sketch over the union stream:

    - The count-min array is a linear function of the observed multiset
      (plain updates, no conservative trick), so summing per-shard arrays
      cell-by-cell reconstructs exactly the single-sketch array.
    - The Space-Saving slots only nominate *candidates*; reported estimates
      are always re-read from the count-min side, which is order-independent.
      [top] and [to_json] therefore do not expose the order-dependent
      Space-Saving counters.

    The hit path ([observe] on a key already holding a slot) performs no
    allocation, preserving the datapath's exact allocs-per-datagram gate. *)

type t

val none : t
(** Shared disabled sketch: [observe] is a single branch, zero cost. *)

val create : ?slots:int -> ?cm_depth:int -> ?cm_width:int -> unit -> t
(** [slots] Space-Saving capacity (default 512); [cm_depth] count-min rows
    (default 4); [cm_width] count-min columns, rounded up to a power of two
    (default 8192).  State is [O(slots + cm_depth * cm_width)], independent
    of the number of distinct keys observed. *)

val enabled : t -> bool

val observe : t -> int64 -> int -> unit
(** [observe t key weight] adds [weight] to [key]'s count.  No-op when
    disabled.  Allocation-free when [key] already occupies a slot. *)

val total : t -> int
(** Sum of all observed weights. *)

val distinct_tracked : t -> int
(** Number of Space-Saving slots currently occupied (at most [slots]). *)

val estimate : t -> int64 -> int
(** Count-min point estimate: never under the true count; over by at most
    [e/cm_width * total] with probability [1 - exp(-cm_depth)]. *)

val ss_bound : t -> int
(** Space-Saving guarantee: any key with true count > [total t / slots] is
    guaranteed to occupy a slot (and hence to be a [top] candidate). *)

val top : t -> int -> (int64 * int) list
(** [top t k] is the top-[k] candidates ordered by count-min estimate
    (descending, ties broken by ascending key).  Deterministic given the
    count-min state and the candidate set. *)

val merge : t list -> t
(** Exact merge: count-min arrays are summed cell-by-cell (requires identical
    dimensions, which share one seed schedule), totals added, and candidate
    slots recombined keeping the largest.  Keys must be disjoint across
    inputs for the Space-Saving guarantee to carry over, which holds for
    sfl-sharded engines.
    @raise Invalid_argument on dimension mismatch or empty list. *)

val cm_checksum : t -> int
(** Order-independent digest of the count-min array, totals and dimensions;
    equal checksums mean identical estimator state. *)

val to_json : ?k:int -> t -> Json.t
(** Canonical ["fbsr-sketch/1"] form: dimensions, total, [cm_checksum], and
    the [top ?k] (default 32) candidates with count-min estimates.  Contains
    no order-dependent state, so a merged sketch serializes byte-for-byte
    equal to the single sketch over the same observations. *)
