(** Version compatibility shim over OCaml 5 Domains.

    The sharded datapath ({!Fbsr_fbs.Sharded}) wants one domain per shard
    on OCaml 5 and a plain sequential loop on 4.14, where the Domain
    module does not exist.  Dune selects one of two implementations at
    build time ([domain_shim_multicore.ml-in] on >= 5.0.0,
    [domain_shim_single.ml-in] otherwise), so everything above this
    module is version-independent.

    Setting the environment variable [FBSR_FORCE_SINGLE_SHARD] to a
    non-empty value other than ["0"] forces the sequential path even on
    OCaml 5 — CI uses this to prove the degraded single-shard behaviour
    on a Domains-capable runtime. *)

val parallelism_available : bool
(** [true] iff {!parallel_run} may actually run thunks concurrently.
    [false] on OCaml 4.14 and under [FBSR_FORCE_SINGLE_SHARD]. *)

val recommended_domain_count : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5 (clamped to 1 when
    parallelism is forced off); always [1] on 4.14. *)

type 'a local
(** Domain-local storage: one value per domain on OCaml 5 (via
    [Domain.DLS]), a single mutable cell on 4.14 where there is only
    ever one domain. *)

val local_make : (unit -> 'a) -> 'a local
(** [local_make init] creates a slot; [init] runs (per domain, lazily,
    on OCaml 5) to produce the initial value. *)

val local_get : 'a local -> 'a
val local_set : 'a local -> 'a -> unit

val parallel_run : (unit -> 'a) array -> 'a array
(** [parallel_run thunks] runs every thunk and returns their results in
    order.  On OCaml 5 thunk 0 runs on the calling domain and the rest
    on freshly spawned domains; on 4.14 (or when parallelism is
    unavailable, or with fewer than two thunks) they run sequentially.
    If any thunk raises, every other thunk still runs to completion
    (domains are always joined) and the lowest-index exception is
    re-raised afterwards. *)
