(** Master key daemon (client side): fetches public-value certificates from
    the CA over UDP with coalescing and retransmission — bounded retries,
    exponential backoff, deterministic seeded jitter; implements
    [Fbsr_fbs.Keying.resolver]. *)

open Fbsr_netsim

type config = {
  timeout : float;  (** first-attempt timeout, seconds *)
  max_attempts : int;  (** total transmissions before giving up *)
  backoff : float;  (** timeout multiplier per retry (>= 1) *)
  max_timeout : float;  (** ceiling on the backed-off timeout *)
  jitter : float;  (** fractional +- spread on each timeout, in [0,1) *)
}

val default_config : config
(** 2 s initial timeout, 3 attempts, 2x backoff capped at 30 s, 10% jitter. *)

type t

val create :
  ?local_port:int ->
  ?config:config ->
  ?seed:int ->
  ?metrics:Fbsr_util.Metrics.t ->
  ?trace:Fbsr_util.Trace.t ->
  ?spans:Fbsr_util.Span.t ->
  ca_addr:Addr.t ->
  ca_port:int ->
  Host.t ->
  t
(** The host must already have a UDP stack installed.  [seed] decorrelates
    the jitter stream (mixed with the host address by default).
    [metrics] (scope it first, e.g. [Metrics.sub m "fbs_ip.mkd"]) receives
    [fetches]/[retransmissions]/[failures] probes and the owned
    [backoff_seconds] histogram of armed retransmission timeouts; [trace]
    (default disabled) receives one ["fbs_ip.mkd.fetch"] event per
    transmission.  [spans] (default disabled) records one ["mkd.fetch"]
    span per coalesced fetch, begin-to-completion across every
    retransmission, under a fresh trace id of its own; the request frames
    (and the CA's replies) travel the network under that id.
    @raise Invalid_argument on a nonsensical [config]. *)

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register the counter probes on an additional registry scope (the
    [backoff_seconds] histogram stays in the registry given to
    {!create}). *)

val config : t -> config
val resolver : t -> Fbsr_fbs.Keying.resolver

type stats = { fetches : int; retransmissions : int; failures : int }

val stats : t -> stats
