(** One-call wiring of a simulated FBS site: shared segment, key server
    (CA), and FBS-enabled hosts with transport stacks and MKDs. *)

open Fbsr_netsim

type node = {
  host : Host.t;
  stack : Stack.t;
  mkd : Mkd.t;
  private_value : Fbsr_crypto.Dh.private_value;
  spans : Fbsr_util.Span.t;  (** the host's flight recorder (may be [none]) *)
}

type t

val create :
  ?seed:int ->
  ?bandwidth_bps:float ->
  ?group_bits:int ->
  ?config:Stack.config ->
  ?mkd_config:Mkd.config ->
  ?faults:Link.profile ->
  ?metrics:Fbsr_util.Metrics.t ->
  ?trace:Fbsr_util.Trace.t ->
  ?span_capacity:int ->
  ?span_cost_clock:(unit -> float) ->
  ?span_sample:int ->
  unit ->
  t
(** [group_bits = 0] (default) uses the fast 61-bit test group; [1024]
    selects Oakley group 2; other values generate a fresh safe-prime
    group.  [mkd_config] sets every node's certificate-fetch retry/backoff
    policy.  [faults] attaches a fault-injection {!Fbsr_netsim.Link} (with
    a per-host seed derived from [seed]) to the egress of every host added
    afterwards — including the key server, so certificate traffic suffers
    the same network as the datagrams.

    [metrics] (default: a fresh private registry, readable via {!metrics})
    receives every component's counters twice: once at the bare site-wide
    names ("fbs.engine.sends", "netsim.link.corrupted", ... — summed
    across hosts) and once under a per-host "host.<addr>." prefix.
    [trace] (default disabled) is threaded to every stack and MKD.

    [span_capacity] (default 0 = causal tracing disabled) gives every host
    — including the key server — a bounded per-datagram flight recorder of
    that capacity ({!Fbsr_util.Span}) on the shared simulated clock,
    threaded to the host's engine, stack, MKD and fault-injection link;
    each recorder's per-stage latency histograms land in the site registry
    under "span.stage.<stage>".  [span_cost_clock] (default: the simulated
    clock) supplies the per-stage cost measurement — pass a wall clock
    (e.g. [Unix.gettimeofday]) to measure real per-stage CPU latency from
    a simulated run.

    [span_sample] (default 1 = record everything) turns on adaptive span
    sampling: one shared {!Fbsr_util.Span.sampler} head-keeps 1-in-N
    chains by trace-id hash and tail-keeps {e every} chain whose terminal
    span is anomalous (a ["drop:*"] outcome, a forgery/replay verdict, or
    a degradation mark), with the full sender-side causal context parked
    until the verdict arrives.  The sampler is shared across all of the
    site's recorders because a chain's terminal span lands on the
    receiver (or a dropping link), not the sender.  Per-stage latency
    histograms observe every span regardless of the sampling decision.
    @raise Invalid_argument on negative [span_capacity] or
    [span_sample < 1]. *)

val add_host : t -> name:string -> addr:string -> node
val add_plain_host : t -> name:string -> addr:string -> Host.t
(** GENERIC (no security) host, for the Figure 8 baseline. *)

val ca_addr : t -> Addr.t
val engine : t -> Engine.t
val medium : t -> Medium.t

val links : t -> Link.t list
(** The fault-injection links attached so far (empty without [faults]). *)

val link_stats : t -> Link.stats
(** Aggregate fault statistics across every link in the site. *)

val group : t -> Fbsr_crypto.Dh.group
val authority : t -> Fbsr_cert.Authority.t

val metrics : t -> Fbsr_util.Metrics.t
(** The site's registry (the one passed to {!create}, or the private
    default). *)

val trace : t -> Fbsr_util.Trace.t

val span_sampler : t -> Fbsr_util.Span.sampler option
(** The shared adaptive sampler, when [span_sample > 1] was requested —
    read its {!Fbsr_util.Span.sampler_stats} to audit keep/discard
    decisions. *)

val span_recorders : t -> Fbsr_util.Span.t list
(** Every host's flight recorder, in host-creation order (key server
    first).  Empty when [span_capacity] was 0. *)

val collect_spans : t -> Fbsr_util.Span.span list
(** Merge every recorder's retained spans into one globally ordered list
    (see {!Fbsr_util.Span.collect}) — the input to the exporters. *)

val ca_server : t -> Ca_server.t
val nodes : t -> node list
val run : ?until:float -> t -> unit
val now : t -> float
