(* The mapping of FBS to IP (paper, Section 7).

   The FBS header is inserted between the IPv4 header and the transport
   payload — "a short-cut form of IP encapsulation".  Send processing hooks
   between ip_output's bulk processing and fragmentation; receive
   processing hooks between reassembly and dispatch; both are transparent
   to IP (the host stack provides exactly those hook points).  tcp_output's
   MSS calculation learns the FBS overhead through
   [Minitcp.set_mss_reduction], reproducing the paper's third kernel
   change.

   The flow policy is Section 7.1's 5-tuple + THRESHOLD policy: the
   classifier peeks at the transport ports just past the IP header — the
   same layering violation the paper defends in footnote 9.

   Traffic to or from the key server bypasses FBS (the "secure flow
   bypass" of Figure 5): securing certificate fetches would be circular,
   and certificates are verified on receipt.

   When a datagram needs a master key that is not cached, its processing
   suspends while the MKD round-trips the network; the datagram is parked
   and finishes through [Host.transmit_prepared] / [Host.deliver_up] when
   the key arrives — the simulator's analogue of the paper's blocking
   Upcall(). *)

open Fbsr_netsim

type config = {
  suite : Fbsr_fbs.Suite.t;
  threshold : float;
  fst_size : int;
  replay_window_minutes : int;
  strict_replay : bool;
  secret_policy : protocol:int -> src_port:int -> dst_port:int -> bool;
  bypass : Addr.t -> bool;
  tfkc_sets : int;
  rfkc_sets : int;
  cache_assoc : int;
  max_flow_bytes : int option;
  max_flow_life : float option;
  keying_fetch_retries : int;
      (** Extra keying-layer attempts after a failed certificate fetch
          (on top of the MKD's own retransmissions). *)
  combined_fast_path : bool;
      (** Use the Section 7.2 combined FST+TFKC table on the send side
          (one probe instead of FAM classification + TFKC lookup). *)
  encapsulation : [ `Shim | `Ip_option ];
      (** [`Shim] (default): FBS header between the IP header and the
          payload, the paper's implementation.  [`Ip_option]: carry the
          FBS header as an IPv4 option — the paper's noted alternative,
          workable only while the header fits the 40-byte option budget. *)
  batched_rx : bool;
      (** Route receive-side body opens through an
          {!Fbsr_fbs.Engine.Batch_rx} queue: frames arriving within
          [rx_linger] of each other decrypt in one cross-flow bitsliced
          sweep, delivered in arrival order via the parked-datagram
          upcall.  Verdicts and bytes are identical to the inline path;
          delivery of a deferrable frame lags arrival by at most
          [rx_linger]. *)
  rx_linger : float;  (** Max queue residence before a forced flush. *)
}

let default_config ?(suite = Fbsr_fbs.Suite.paper_md5_des) ?(threshold = 600.0)
    ?(fst_size = 256) ?(replay_window_minutes = 2) ?(strict_replay = false)
    ?(secret_policy = fun ~protocol:_ ~src_port:_ ~dst_port:_ -> true)
    ?(bypass = fun _ -> false) ?(tfkc_sets = 128) ?(rfkc_sets = 128) ?(cache_assoc = 1)
    ?max_flow_bytes ?max_flow_life ?(keying_fetch_retries = 0)
    ?(combined_fast_path = false) ?(encapsulation = `Shim)
    ?(batched_rx = false) ?(rx_linger = 0.001) () =
  {
    suite;
    threshold;
    fst_size;
    replay_window_minutes;
    strict_replay;
    secret_policy;
    bypass;
    tfkc_sets;
    rfkc_sets;
    cache_assoc;
    max_flow_bytes;
    max_flow_life;
    keying_fetch_retries;
    combined_fast_path;
    encapsulation;
    batched_rx;
    rx_linger;
  }

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable suspended_out : int; (* datagrams parked awaiting a master key *)
  mutable suspended_in : int;
  mutable resumed : int;
  mutable dropped_error : int;
  mutable bypassed : int;
  mutable rx_batched : int; (* frames parked in the receive batch *)
}

type t = {
  host : Host.t;
  engine : Fbsr_fbs.Engine.t;
  config : config;
  counters : counters;
  spans : Fbsr_util.Span.t;
  policy_state : Fbsr_fbs.Policy_five_tuple.t;
  fast_path : Fast_path.t option; (* combined FST+TFKC, when configured *)
  rx_batch : Fbsr_fbs.Engine.Batch_rx.batch option; (* when batched_rx *)
  mutable rx_flush_scheduled : bool;
      (* one pending linger-flush event at a time; re-armed on the next
         enqueue after it fires *)
  asm : Fbsr_util.Byte_writer.t;
      (* Reusable assembly buffer for the IP-option encapsulation splices
         (option build on send, option+payload rejoin on receive); reset
         per datagram, so its contents never outlive one hook call. *)
}

let engine t = t.engine
let counters t = t.counters
let host t = t.host

(* Register the stack's own counters (under "fbs_ip.stack.") and the whole
   engine subtree (under "fbs.") on [m].  Pass [Metrics.sub m
   "host.<addr>"] for a per-host view; several stacks on one registry sum. *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  let s = sub m "fbs_ip.stack" in
  let c = t.counters in
  register_probe s "sent" (fun () -> c.sent);
  register_probe s "received" (fun () -> c.received);
  register_probe s "suspended_out" (fun () -> c.suspended_out);
  register_probe s "suspended_in" (fun () -> c.suspended_in);
  register_probe s "resumed" (fun () -> c.resumed);
  register_probe s "dropped_error" (fun () -> c.dropped_error);
  register_probe s "bypassed" (fun () -> c.bypassed);
  register_probe s "rx_batched" (fun () -> c.rx_batched);
  Fbsr_fbs.Engine.register_metrics t.engine m
let policy_state t = t.policy_state
let fast_path t = t.fast_path
let principal_of_addr addr = Fbsr_fbs.Principal.of_string (Addr.to_string addr)

(* Peek transport ports just past the IP header (footnote 9's layering
   violation).  Returns (0,0) when the protocol has no ports or the
   datagram is too short (e.g. a non-first fragment of a bypassed flow —
   FBS itself always sees whole datagrams). *)
let peek_ports ~protocol payload =
  if (protocol = Ipv4.proto_tcp || protocol = Ipv4.proto_udp)
     && String.length payload >= 4
  then
    ( (Char.code payload.[0] lsl 8) lor Char.code payload.[1],
      (Char.code payload.[2] lsl 8) lor Char.code payload.[3] )
  else (0, 0)

(* --- IP-option encapsulation (paper Section 7.2's alternative) --- *)

let fbs_option_type = 0x9e (* copied flag set, experimental option number *)

(* Split the engine's wire output (FBS header ^ body) into the chosen
   on-the-wire carriage. *)
let encap t (h : Ipv4.header) wire =
  match t.config.encapsulation with
  | `Shim -> (h, wire)
  | `Ip_option ->
      let hdr_len = Fbsr_fbs.Engine.header_overhead t.engine in
      (* Assemble type | length | FBS header | zero padding in the
         reused buffer: one allocation for the options string instead of
         the old sub + sprintf + two concatenations. *)
      let w = t.asm in
      Fbsr_util.Byte_writer.reset w;
      Fbsr_util.Byte_writer.u8 w fbs_option_type;
      Fbsr_util.Byte_writer.u8 w (hdr_len + 2);
      Fbsr_util.Byte_writer.substring w wire 0 hdr_len;
      while Fbsr_util.Byte_writer.length w mod 4 <> 0 do
        Fbsr_util.Byte_writer.u8 w 0
      done;
      ( { h with Ipv4.options = Fbsr_util.Byte_writer.contents w },
        String.sub wire hdr_len (String.length wire - hdr_len) )

(* Reconstruct the engine's wire form on receive; [None] when the datagram
   does not carry FBS in the configured way.  Shim mode borrows the
   payload as-is (zero-copy); option mode rejoins header and payload in
   the reused assembly buffer — one allocation instead of the old
   sub + concat splice. *)
let decap t (h : Ipv4.header) payload : (Ipv4.header * Fbsr_util.Slice.t) option =
  match t.config.encapsulation with
  | `Shim -> Some (h, Fbsr_util.Slice.of_string payload)
  | `Ip_option ->
      let opts = h.Ipv4.options in
      if String.length opts >= 2 && Char.code opts.[0] = fbs_option_type then begin
        (* Option length counts the type and length bytes themselves. *)
        let len = Char.code opts.[1] in
        if len >= 2 && len <= String.length opts then begin
          let w = t.asm in
          Fbsr_util.Byte_writer.reset w;
          Fbsr_util.Byte_writer.substring w opts 2 (len - 2);
          Fbsr_util.Byte_writer.bytes w payload;
          Some
            ( { h with Ipv4.options = "" },
              Fbsr_util.Slice.of_string (Fbsr_util.Byte_writer.contents w) )
        end
        else None
      end
      else None

(* Send processing via the combined table (Section 7.2): one probe yields
   both the sfl and the flow key; a miss derives the key (possibly
   suspending on an MKD fetch) and installs it. *)
let output_via_fast_path t fp (h : Ipv4.header) payload ~src_port ~dst_port ~secret ~now
    : Host.hook_result =
  let src = Addr.to_string h.src and dst = Addr.to_string h.dst in
  match
    Fast_path.lookup fp ~now ~protocol:h.protocol ~src ~src_port ~dst ~dst_port
  with
  | Fast_path.Hit (sfl, flow_key) ->
      t.counters.sent <- t.counters.sent + 1;
      let h, p =
        encap t h
          (Fbsr_fbs.Engine.send_sealed t.engine ~now ~sfl ~flow_key ~secret ~payload)
      in
      Host.Pass (h, p)
  | Fast_path.Miss sfl -> (
      let sync_result = ref None in
      let completed_sync = ref true in
      Fbsr_fbs.Engine.derive_flow_key t.engine ~sfl
        ~src:(Fbsr_fbs.Principal.of_string src)
        ~dst:(Fbsr_fbs.Principal.of_string dst)
        (fun r ->
          (match r with
          | Ok flow_key -> Fast_path.install_key fp ~sfl ~flow_key
          | Error _ -> ());
          if !completed_sync then sync_result := Some r
          else
            match r with
            | Ok flow_key ->
                t.counters.resumed <- t.counters.resumed + 1;
                t.counters.sent <- t.counters.sent + 1;
                let h, p =
                  encap t h
                    (Fbsr_fbs.Engine.send_sealed t.engine ~now ~sfl ~flow_key ~secret
                       ~payload)
                in
                Host.transmit_prepared t.host h p
            | Error _ -> t.counters.dropped_error <- t.counters.dropped_error + 1);
      completed_sync := false;
      match !sync_result with
      | Some (Ok flow_key) ->
          t.counters.sent <- t.counters.sent + 1;
          let h, p =
            encap t h
              (Fbsr_fbs.Engine.send_sealed t.engine ~now ~sfl ~flow_key ~secret
                 ~payload)
          in
          Host.Pass (h, p)
      | Some (Error _) ->
          t.counters.dropped_error <- t.counters.dropped_error + 1;
          Host.Drop "fbs send error"
      | None ->
          t.counters.suspended_out <- t.counters.suspended_out + 1;
          Host.Drop "fbs awaiting master key")

let output_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.config.bypass h.dst then begin
    t.counters.bypassed <- t.counters.bypassed + 1;
    Host.Pass (h, payload)
  end
  else begin
    let src_port, dst_port = peek_ports ~protocol:h.protocol payload in
    let attrs =
      Fbsr_fbs.Fam.attrs ~protocol:h.protocol ~src_port ~dst_port
        ~size:(String.length payload) ~src:(principal_of_addr h.src)
        ~dst:(principal_of_addr h.dst) ()
    in
    let secret = t.config.secret_policy ~protocol:h.protocol ~src_port ~dst_port in
    let now = Host.now t.host in
    match t.fast_path with
    | Some fp -> output_via_fast_path t fp h payload ~src_port ~dst_port ~secret ~now
    | None ->
    let sync_result = ref None in
    let completed_sync = ref true in
    Fbsr_fbs.Engine.send t.engine ~now ~attrs ~secret ~payload (fun r ->
        if !completed_sync then sync_result := Some r
        else begin
          (* Late completion: the datagram was parked during an MKD fetch. *)
          match r with
          | Ok wire ->
              t.counters.resumed <- t.counters.resumed + 1;
              t.counters.sent <- t.counters.sent + 1;
              let h, p = encap t h wire in
              Host.transmit_prepared t.host h p
          | Error _ -> t.counters.dropped_error <- t.counters.dropped_error + 1
        end);
    completed_sync := false;
    match !sync_result with
    | Some (Ok wire) ->
        t.counters.sent <- t.counters.sent + 1;
        let h, p = encap t h wire in
        Host.Pass (h, p)
    | Some (Error _) ->
        t.counters.dropped_error <- t.counters.dropped_error + 1;
        Host.Drop "fbs send error"
    | None ->
        t.counters.suspended_out <- t.counters.suspended_out + 1;
        Host.Drop "fbs awaiting master key"
  end

let input_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.config.bypass h.src then begin
    t.counters.bypassed <- t.counters.bypassed + 1;
    Host.Pass (h, payload)
  end
  else begin
    let dtm =
      if Fbsr_util.Span.enabled t.spans then Some (Fbsr_util.Span.start t.spans)
      else None
    in
    match decap t h payload with
    | None ->
        (match dtm with
        | Some stm ->
            Fbsr_util.Span.finish t.spans stm "stack.decap"
              ~detail:[ ("ok", Fbsr_util.Json.Bool false) ]
        | None -> ());
        t.counters.dropped_error <- t.counters.dropped_error + 1;
        Host.Drop "fbs: no security header in configured encapsulation"
    | Some (h, wire) ->
    (match dtm with
    | Some stm ->
        Fbsr_util.Span.finish t.spans stm "stack.decap"
          ~detail:
            [
              ("ok", Fbsr_util.Json.Bool true);
              ("bytes", Fbsr_util.Json.Int (Fbsr_util.Slice.length wire));
            ]
    | None -> ());
    let now = Host.now t.host in
    let src = principal_of_addr h.src in
    let sync_result = ref None in
    let completed_sync = ref true in
    let batch_parked = ref false in
    let k r =
      if !completed_sync then sync_result := Some r
      else begin
        (* Late completion: the datagram was parked — during an MKD fetch
           ([resumed]), or in the receive batch until its flush. *)
        match r with
        | Ok acc ->
            if not !batch_parked then
              t.counters.resumed <- t.counters.resumed + 1;
            t.counters.received <- t.counters.received + 1;
            let h =
              {
                h with
                Ipv4.total_length =
                  Ipv4.header_length h + String.length acc.Fbsr_fbs.Engine.payload;
              }
            in
            Host.deliver_up t.host h acc.Fbsr_fbs.Engine.payload
        | Error _ -> t.counters.dropped_error <- t.counters.dropped_error + 1
      end
    in
    (match t.rx_batch with
    | None -> Fbsr_fbs.Engine.receive_slice t.engine ~now ~src ~wire k
    | Some b ->
        let before = Fbsr_fbs.Engine.Batch_rx.pending b in
        (* The queue borrows the wire until its flush, so it needs the
           whole backing string.  Both decap modes already hand out a
           slice spanning a fresh-or-owned heap string (shim borrows the
           IP payload, option mode a fresh rejoin), so this is
           allocation-free. *)
        let wire_s =
          if
            wire.Fbsr_util.Slice.off = 0
            && wire.Fbsr_util.Slice.len = String.length wire.Fbsr_util.Slice.base
          then wire.Fbsr_util.Slice.base
          else Fbsr_util.Slice.to_string wire
        in
        Fbsr_fbs.Engine.receive_batched b ~now ~src ~wire:wire_s k;
        (* Queued synchronously (not refused inline, not delivered by a
           capacity flush).  The linger flush is armed by the batch's
           on-park hook (see [install]), not here: a frame that suspends
           on the receive-side master-key fetch enqueues later, from the
           resumed keying continuation's event, where no synchronous
           check in this hook could observe it — arming only from here
           would park such a frame indefinitely. *)
        if
          Option.is_none !sync_result
          && Fbsr_fbs.Engine.Batch_rx.pending b = before + 1
        then batch_parked := true);
    completed_sync := false;
    match !sync_result with
    | Some (Ok acc) ->
        t.counters.received <- t.counters.received + 1;
        Host.Pass
          ( {
              h with
              Ipv4.total_length =
                Ipv4.header_length h + String.length acc.Fbsr_fbs.Engine.payload;
            },
            acc.Fbsr_fbs.Engine.payload )
    | Some (Error _) ->
        t.counters.dropped_error <- t.counters.dropped_error + 1;
        Host.Drop "fbs receive error"
    | None ->
        if !batch_parked then
          (* Delivered from the batch flush via [Host.deliver_up]. *)
          Host.Drop "fbs rx batched"
        else begin
          t.counters.suspended_in <- t.counters.suspended_in + 1;
          Host.Drop "fbs awaiting master key"
        end
  end

let install ?(config = default_config ()) ?(sfl_seed = 0x5f1)
    ?(trace = Fbsr_util.Trace.none) ?(spans = Fbsr_util.Span.none)
    ~private_value ~group ~ca_public ~ca_hash ~resolver host =
  let local = principal_of_addr (Host.addr host) in
  let keying =
    Fbsr_fbs.Keying.create ~fetch_retries:config.keying_fetch_retries ~trace ~local
      ~group ~private_value ~ca_public ~ca_hash ~resolver
      ~clock:(fun () -> Host.now host)
      ()
  in
  let alloc = Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create sfl_seed) in
  let policy, policy_state =
    Fbsr_fbs.Policy_five_tuple.policy_with_state ~fst_size:config.fst_size
      ~threshold:config.threshold ?max_flow_bytes:config.max_flow_bytes
      ?max_flow_life:config.max_flow_life ~alloc ()
  in
  let fam = Fbsr_fbs.Fam.create policy in
  let engine =
    Fbsr_fbs.Engine.create ~suite:config.suite ~tfkc_sets:config.tfkc_sets
      ~rfkc_sets:config.rfkc_sets ~cache_assoc:config.cache_assoc
      ~replay_window_minutes:config.replay_window_minutes
      ~strict_replay:config.strict_replay ~trace ~spans ~keying ~fam ()
  in
  let fast_path =
    if config.combined_fast_path then
      Some
        (Fast_path.create ~size:config.fst_size ~threshold:config.threshold
           ~alloc:(Fbsr_fbs.Sfl.allocator ~rng:(Fbsr_util.Rng.create (sfl_seed lxor 0x77)))
           ())
    else None
  in
  let t =
    {
      host;
      engine;
      config;
      spans;
      counters =
        {
          sent = 0;
          received = 0;
          suspended_out = 0;
          suspended_in = 0;
          resumed = 0;
          dropped_error = 0;
          bypassed = 0;
          rx_batched = 0;
        };
      policy_state;
      fast_path;
      rx_batch =
        (if config.batched_rx then
           Some (Fbsr_fbs.Engine.Batch_rx.create ~linger:config.rx_linger engine)
         else None);
      rx_flush_scheduled = false;
      asm = Fbsr_util.Byte_writer.create ~capacity:64 ();
    }
  in
  (* Arm the rx linger flush from the batch's own enqueue, so every park
     is covered — in particular a frame whose keying suspended, which
     enqueues from the resumed continuation's event, after [input_hook]
     has long returned.  The hook always runs inside a scheduler event
     (packet arrival or MKD-reply continuation), so [Engine.schedule] is
     available. *)
  (match t.rx_batch with
  | None -> ()
  | Some b ->
      Fbsr_fbs.Engine.Batch_rx.set_on_park b (fun () ->
          t.counters.rx_batched <- t.counters.rx_batched + 1;
          if not t.rx_flush_scheduled then begin
            t.rx_flush_scheduled <- true;
            Engine.schedule (Host.engine t.host) ~delay:t.config.rx_linger
              (fun () ->
                t.rx_flush_scheduled <- false;
                ignore (Fbsr_fbs.Engine.Batch_rx.flush b : int * int))
          end));
  (match config.encapsulation with
  | `Shim -> ()
  | `Ip_option ->
      (* "An alternative is to implement it as an IP option, but the 40
         byte maximum is fairly limiting": enforce the limit up front. *)
      let need = Fbsr_fbs.Engine.header_overhead engine + 2 in
      if need > Ipv4.max_options then
        invalid_arg
          (Printf.sprintf
             "Stack.install: suite %s needs %d option bytes; IPv4 allows %d (the 40-byte maximum is fairly limiting)"
             (Fbsr_fbs.Suite.name config.suite) need Ipv4.max_options));
  Host.set_output_hook host (output_hook t);
  Host.set_input_hook host (input_hook t);
  (* The paper's tcp_output fix: publish the per-datagram overhead so the
     MSS calculation can subtract it.  In option mode the FBS header rides
     in the (padded) IP options instead of the payload. *)
  (let overhead =
     match config.encapsulation with
     | `Shim -> Fbsr_fbs.Engine.wire_overhead engine
     | `Ip_option ->
         let opt = Fbsr_fbs.Engine.header_overhead engine + 2 in
         let padded = (opt + 3) land lnot 3 in
         padded + Fbsr_fbs.Engine.max_body_growth engine
   in
   Minitcp.set_mss_reduction host overhead);
  t

(* The standalone sweeper of Figure 7: periodically scan the FST and
   expire idle flows.  The paper's Section 7.2 implementation absorbs
   sweeping into the mapping phase (which [Policy_five_tuple.map] and the
   fast path both do); running the explicit sweeper as well bounds the
   table's occupancy between packets, at a configurable period. *)
let start_sweeper ?(period = 60.0) t =
  let engine = Host.engine t.host in
  let rec tick () =
    ignore (Fbsr_fbs.Policy_five_tuple.sweep t.policy_state ~now:(Host.now t.host));
    Engine.schedule engine ~delay:period tick
  in
  Engine.schedule engine ~delay:period tick

let uninstall t =
  Host.clear_hooks t.host;
  Minitcp.set_mss_reduction t.host 0
