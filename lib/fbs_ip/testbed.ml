(* Testbed wiring: a complete simulated FBS deployment in a few calls —
   shared segment, a key-server host running the certificate authority, and
   FBS-enabled hosts with UDP/TCP stacks, Diffie-Hellman keys, enrollment
   and an MKD.  The experimental setup of Section 7.3 in a box. *)

open Fbsr_netsim

type node = {
  host : Host.t;
  stack : Stack.t;
  mkd : Mkd.t;
  private_value : Fbsr_crypto.Dh.private_value;
  spans : Fbsr_util.Span.t;
}

type t = {
  engine : Engine.t;
  medium : Medium.t;
  group : Fbsr_crypto.Dh.group;
  authority : Fbsr_cert.Authority.t;
  ca_host : Host.t;
  ca_server : Ca_server.t;
  rng : Fbsr_util.Rng.t;
  mutable nodes : node list;
  config : Stack.config option; (* base config; bypass is forced *)
  mkd_config : Mkd.config;
  faults : Link.profile option;
  link_seed : int; (* base seed; each host's link derives from it *)
  mutable links : Link.t list;
  metrics : Fbsr_util.Metrics.t;
  trace : Fbsr_util.Trace.t;
  span_capacity : int; (* 0 = causal tracing disabled *)
  span_cost_clock : (unit -> float) option;
  sampler : Fbsr_util.Span.sampler option; (* shared across all recorders *)
  mutable recorders : Fbsr_util.Span.t list; (* one per host, newest first *)
}

(* One bounded flight recorder per host, on the shared simulated clock so
   merged cross-host timelines align.  The per-stage latency histograms of
   every recorder share the site registry's "span." scope, so
   "span.stage.<stage>" aggregates across hosts.  The adaptive sampler —
   when span sampling is on — is likewise shared: a chain's terminal span
   usually lands on a *different* host's recorder (the receiver, or a
   dropping link) than the sender-side spans it must retro-keep. *)
let new_recorder t label =
  if t.span_capacity = 0 then Fbsr_util.Span.none
  else begin
    let sp =
      Fbsr_util.Span.create ~capacity:t.span_capacity ~host:label
        ~clock:(fun () -> Engine.now t.engine)
        ?cost_clock:t.span_cost_clock ?sampler:t.sampler
        ~metrics:(Fbsr_util.Metrics.sub t.metrics "span")
        ()
    in
    t.recorders <- sp :: t.recorders;
    sp
  end

(* Attach a fault-injection link to a host when the testbed has a fault
   profile.  Each host gets its own link with a seed derived from the
   testbed seed and the host address, so runs are reproducible and
   per-host fault sequences are decorrelated. *)
let attach_link t ~spans host =
  match t.faults with
  | None -> ()
  | Some profile ->
      let link =
        Link.create ~seed:(t.link_seed lxor Addr.to_int (Host.addr host)) ~profile
          ~spans t.engine
      in
      Host.set_link host link;
      (* Every link feeds the site-wide "netsim.link.*" totals (summed
         probes) plus its own "host.<addr>.netsim.link.*" view. *)
      Link.register_metrics link (Fbsr_util.Metrics.sub t.metrics "netsim.link");
      Link.register_metrics link
        (Fbsr_util.Metrics.sub t.metrics
           ("host." ^ Addr.to_string (Host.addr host) ^ ".netsim.link"));
      t.links <- link :: t.links

let create ?(seed = 42) ?(bandwidth_bps = 10_000_000.0) ?(group_bits = 0) ?config
    ?(mkd_config = Mkd.default_config) ?faults ?metrics
    ?(trace = Fbsr_util.Trace.none) ?(span_capacity = 0) ?span_cost_clock
    ?(span_sample = 1) () =
  if span_capacity < 0 then invalid_arg "Testbed: negative span_capacity";
  if span_sample < 1 then invalid_arg "Testbed: span_sample must be >= 1";
  let sampler =
    if span_capacity > 0 && span_sample > 1 then
      Some (Fbsr_util.Span.sampler ~ratio:span_sample ())
    else None
  in
  let rng = Fbsr_util.Rng.create seed in
  let engine = Engine.create () in
  let medium = Medium.create ~bandwidth_bps ~seed:(seed + 1) engine in
  let group =
    (* Default: the fast 61-bit test group; ask for [group_bits] to pay for
       real group sizes (e.g. 1024 via Dh.oakley2-equivalent). *)
    if group_bits = 0 then Lazy.force Fbsr_crypto.Dh.test_group
    else if group_bits = 1024 then Lazy.force Fbsr_crypto.Dh.oakley2
    else Fbsr_crypto.Dh.generate_group ~bits:group_bits rng
  in
  let authority = Fbsr_cert.Authority.create ~rng ~bits:768 () in
  let ca_addr = Addr.of_string "10.0.0.100" in
  let ca_host = Host.create ~name:"keyserver" ~addr:ca_addr engine in
  Host.attach ca_host medium;
  Udp_stack.install ca_host;
  let ca_server = Ca_server.install ~authority ca_host in
  let t =
    {
      engine;
      medium;
      group;
      authority;
      ca_host;
      ca_server;
      rng;
      nodes = [];
      config;
      mkd_config;
      faults;
      link_seed = seed lxor 0x1a5e;
      links = [];
      metrics =
        (match metrics with Some m -> m | None -> Fbsr_util.Metrics.create ());
      trace;
      span_capacity;
      span_cost_clock;
      sampler;
      recorders = [];
    }
  in
  (* The key server's egress is faulty too: certificate responses must
     survive the same network the datagrams do (that is what the MKD's
     retry/backoff is for).  Its link records transit spans into the key
     server's own recorder, so certificate round trips show up as a lane
     in the merged timeline. *)
  attach_link t ~spans:(new_recorder t (Addr.to_string ca_addr)) ca_host;
  t

let ca_addr t = Host.addr t.ca_host

let node_config t =
  let base =
    match t.config with Some c -> c | None -> Stack.default_config ()
  in
  { base with Stack.bypass = (fun a -> Addr.equal a (ca_addr t)) }

let add_host t ~name ~addr =
  let addr = Addr.of_string addr in
  let host = Host.create ~name ~addr t.engine in
  Host.attach host t.medium;
  let spans = new_recorder t (Addr.to_string addr) in
  attach_link t ~spans host;
  Udp_stack.install host;
  Minitcp.install host;
  let private_value = Fbsr_crypto.Dh.gen_private t.group t.rng in
  let public = Fbsr_crypto.Dh.public t.group private_value in
  let subject = Addr.to_string addr in
  let (_ : Fbsr_cert.Certificate.t) =
    Fbsr_cert.Authority.enroll t.authority ~now:(Engine.now t.engine) ~subject
      ~group:t.group.Fbsr_crypto.Dh.name
      ~public_value:(Fbsr_crypto.Dh.public_to_bytes t.group public)
  in
  let host_scope = "host." ^ subject in
  let mkd =
    Mkd.create ~config:t.mkd_config
      ~metrics:(Fbsr_util.Metrics.sub t.metrics "fbs_ip.mkd")
      ~trace:t.trace ~spans ~ca_addr:(ca_addr t)
      ~ca_port:(Ca_server.port t.ca_server) host
  in
  Mkd.register_metrics mkd
    (Fbsr_util.Metrics.sub t.metrics (host_scope ^ ".fbs_ip.mkd"));
  let stack =
    Stack.install ~config:(node_config t) ~trace:t.trace ~spans ~private_value
      ~group:t.group
      ~ca_public:(Fbsr_cert.Authority.public t.authority)
      ~ca_hash:(Fbsr_cert.Authority.hash t.authority)
      ~resolver:(Mkd.resolver mkd) host
  in
  (* Site-wide aggregate (bare names, summed across hosts) and the
     per-host "host.<addr>." view of the same records. *)
  Stack.register_metrics stack t.metrics;
  Stack.register_metrics stack (Fbsr_util.Metrics.sub t.metrics host_scope);
  let node = { host; stack; mkd; private_value; spans } in
  t.nodes <- node :: t.nodes;
  node

(* A host with no FBS processing at all: the GENERIC configuration of
   Figure 8. *)
let add_plain_host t ~name ~addr =
  let addr = Addr.of_string addr in
  let host = Host.create ~name ~addr t.engine in
  Host.attach host t.medium;
  attach_link t ~spans:(new_recorder t (Addr.to_string addr)) host;
  Udp_stack.install host;
  Minitcp.install host;
  host

let engine t = t.engine
let medium t = t.medium
let links t = t.links

(* Aggregate fault statistics across every link in the site. *)
let link_stats t =
  let acc = Link.new_stats () in
  List.iter
    (fun l ->
      let s = Link.stats l in
      acc.Link.offered <- acc.Link.offered + s.Link.offered;
      acc.Link.delivered <- acc.Link.delivered + s.Link.delivered;
      acc.Link.dropped <- acc.Link.dropped + s.Link.dropped;
      acc.Link.duplicated <- acc.Link.duplicated + s.Link.duplicated;
      acc.Link.reordered <- acc.Link.reordered + s.Link.reordered;
      acc.Link.truncated <- acc.Link.truncated + s.Link.truncated;
      acc.Link.corrupted <- acc.Link.corrupted + s.Link.corrupted)
    t.links;
  acc
let group t = t.group
let authority t = t.authority
let metrics t = t.metrics
let trace t = t.trace
let span_sampler t = t.sampler
let span_recorders t = List.rev t.recorders
let collect_spans t = Fbsr_util.Span.collect (List.rev t.recorders)
let ca_server t = t.ca_server
let nodes t = t.nodes
let run ?until t = Engine.run ?until t.engine
let now t = Engine.now t.engine
