(* The master key daemon (MKD), client side.

   Figure 5 of the paper places the MKD in user space: it serves PVC
   misses by fetching public-value certificates from the certificate
   authority over the network (through the secure flow bypass) and hands
   them back to the in-kernel FBS engine.  "PVC cache misses ... are
   extremely expensive.  It incurs at the minimum a round trip
   communication delay."

   This implementation is a UDP client with per-name request coalescing,
   retransmission and a bounded retry budget.  Because the CA round trip
   shares the same unreliable network as the datagrams themselves (requests
   or responses may be dropped, reordered or corrupted by a fault-injected
   link), the retransmission timer backs off exponentially with
   deterministic seeded jitter: timeout for attempt n is

       min(max_timeout, timeout * backoff^(n-1)) * (1 +- jitter)

   It implements the [Keying.resolver] interface, so a PVC miss suspends
   the datagram in the FBS stack until the continuation fires. *)

open Fbsr_netsim

type config = {
  timeout : float;  (* first-attempt timeout, seconds *)
  max_attempts : int;  (* total transmissions before giving up *)
  backoff : float;  (* timeout multiplier per retry (>= 1) *)
  max_timeout : float;  (* ceiling on the backed-off timeout *)
  jitter : float;  (* fractional +- spread on each timeout, in [0,1) *)
}

let default_config =
  { timeout = 2.0; max_attempts = 3; backoff = 2.0; max_timeout = 30.0; jitter = 0.1 }

let validate_config c =
  if c.timeout <= 0.0 then invalid_arg "Mkd: nonpositive timeout";
  if c.max_attempts < 1 then invalid_arg "Mkd: max_attempts must be >= 1";
  if c.backoff < 1.0 then invalid_arg "Mkd: backoff must be >= 1";
  if c.max_timeout < c.timeout then invalid_arg "Mkd: max_timeout below timeout";
  if c.jitter < 0.0 || c.jitter >= 1.0 then invalid_arg "Mkd: jitter not in [0,1)"

type pending = {
  name : string;
  mutable continuations : (Fbsr_fbs.Keying.fetch_result -> unit) list;
  mutable attempts : int;
  mutable generation : int; (* invalidates stale timeout events *)
  span : (Fbsr_util.Span.timer * int64) option;
      (* causal-tracing sidecar: the fetch's own trace id and begin
         timestamp, carried across retransmissions until [complete] *)
}

type t = {
  host : Host.t;
  ca_addr : Addr.t;
  ca_port : int;
  local_port : int;
  config : config;
  rng : Fbsr_util.Rng.t; (* jitter source; seeded, so runs are reproducible *)
  pending : (string, pending) Hashtbl.t;
  mutable fetches : int;
  mutable retransmissions : int;
  mutable failures : int;
  backoff_hist : Fbsr_util.Metrics.histogram; (* armed timeout spans, seconds *)
  trace : Fbsr_util.Trace.t;
  spans : Fbsr_util.Span.t;
}

(* Counter probes, relative to the caller's scope (e.g. "fbs_ip.mkd").
   [create ?metrics] calls this on its own registry; Testbed calls it again
   per host so the same daemon shows up under both the aggregate and the
   "host.<addr>." prefixed names.  The backoff histogram is an owned cell
   and lives only in the registry given to [create]. *)
let register_metrics (t : t) m =
  let open Fbsr_util.Metrics in
  register_probe m "fetches" (fun () -> t.fetches);
  register_probe m "retransmissions" (fun () -> t.retransmissions);
  register_probe m "failures" (fun () -> t.failures)

let send_request t name =
  Udp_stack.send t.host ~src_port:t.local_port ~dst:t.ca_addr ~dst_port:t.ca_port
    (Mkd_protocol.encode (Mkd_protocol.Request name))

(* Every transmission of a fetch (initial or retransmitted) runs under the
   fetch's own trace id, so the CA request frame — and the CA's reply,
   whose transmit happens while the id is still ambient at the CA host —
   appears in the recorders as one ["mkd.fetch"] chain, distinct from the
   datagram that suspended on it. *)
let send_request_traced t p =
  match p.span with
  | Some (_, id) ->
      Fbsr_util.Span.with_current id (fun () -> send_request t p.name)
  | None -> send_request t p.name

(* One trace event per transmission (initial or retransmitted). *)
let trace_attempt t name attempt =
  if Fbsr_util.Trace.enabled t.trace then
    Fbsr_util.Trace.emit t.trace
      ~time:(Engine.now (Host.engine t.host))
      "fbs_ip.mkd.fetch"
      [
        ("name", Fbsr_util.Json.String name);
        ("attempt", Fbsr_util.Json.Int attempt);
      ]

let complete t name result =
  match Hashtbl.find_opt t.pending name with
  | None -> ()
  | Some p ->
      Hashtbl.remove t.pending name;
      p.generation <- p.generation + 1;
      if Result.is_error result then t.failures <- t.failures + 1;
      (match p.span with
      | Some (tm, id) ->
          Fbsr_util.Span.finish t.spans tm ~id "mkd.fetch"
            ~detail:
              [
                ("name", Fbsr_util.Json.String p.name);
                ("attempts", Fbsr_util.Json.Int p.attempts);
                ("ok", Fbsr_util.Json.Bool (Result.is_ok result));
              ]
      | None -> ());
      List.iter (fun k -> k result) (List.rev p.continuations)

(* Timeout for the [attempt]-th transmission (1-based): exponential backoff
   capped at [max_timeout], spread by +-jitter so coordinated fetches from
   many hosts do not retransmit in lockstep. *)
let attempt_timeout t attempt =
  let c = t.config in
  let base =
    Float.min c.max_timeout (c.timeout *. (c.backoff ** float_of_int (attempt - 1)))
  in
  if c.jitter = 0.0 then base
  else base *. (1.0 +. (c.jitter *. ((2.0 *. Fbsr_util.Rng.uniform t.rng) -. 1.0)))

let rec arm_timeout t p =
  let gen = p.generation in
  let timeout = attempt_timeout t p.attempts in
  Fbsr_util.Metrics.observe t.backoff_hist timeout;
  Engine.schedule (Host.engine t.host) ~delay:timeout
    (fun () ->
      if gen = p.generation && Hashtbl.mem t.pending p.name then begin
        if p.attempts >= t.config.max_attempts then
          complete t p.name (Error "certificate fetch timed out")
        else begin
          p.attempts <- p.attempts + 1;
          t.retransmissions <- t.retransmissions + 1;
          trace_attempt t p.name p.attempts;
          send_request_traced t p;
          arm_timeout t p
        end
      end)

let handle_response t raw =
  match Mkd_protocol.decode raw with
  | exception Mkd_protocol.Bad_message _ -> ()
  | Mkd_protocol.Certificate cert ->
      complete t cert.Fbsr_cert.Certificate.subject (Ok cert)
  | Mkd_protocol.Failure msg -> (
      (* The failure does not name the subject; fail the oldest pending
         request conservatively only if there is exactly one. *)
      match Hashtbl.fold (fun _ p acc -> p :: acc) t.pending [] with
      | [ p ] -> complete t p.name (Error msg)
      | _ -> ())
  | Mkd_protocol.Request _ -> ()

let fetch t name k =
  match Hashtbl.find_opt t.pending name with
  | Some p -> p.continuations <- k :: p.continuations
  | None ->
      t.fetches <- t.fetches + 1;
      let span =
        if Fbsr_util.Span.enabled t.spans then
          Some (Fbsr_util.Span.start t.spans, Fbsr_util.Span.fresh_id ())
        else None
      in
      let p =
        { name; continuations = [ k ]; attempts = 1; generation = 0; span }
      in
      Hashtbl.replace t.pending name p;
      trace_attempt t name 1;
      send_request_traced t p;
      arm_timeout t p

let create ?(local_port = 563) ?(config = default_config) ?(seed = 0xbac0ff) ?metrics
    ?(trace = Fbsr_util.Trace.none) ?(spans = Fbsr_util.Span.none) ~ca_addr
    ~ca_port host =
  validate_config config;
  (* Without a caller-supplied registry the histogram lives in a private
     throwaway one: the observation code stays unconditional. *)
  let m =
    match metrics with Some m -> m | None -> Fbsr_util.Metrics.create ()
  in
  let t =
    {
      host;
      ca_addr;
      ca_port;
      local_port;
      config;
      rng = Fbsr_util.Rng.create (seed lxor Addr.to_int (Host.addr host));
      pending = Hashtbl.create 8;
      fetches = 0;
      retransmissions = 0;
      failures = 0;
      backoff_hist = Fbsr_util.Metrics.histogram m "backoff_seconds";
      trace;
      spans;
    }
  in
  register_metrics t m;
  Udp_stack.listen host ~port:local_port (fun ~src ~src_port:_ raw ->
      if Addr.equal src ca_addr then handle_response t raw);
  t

let config t = t.config

let resolver t : Fbsr_fbs.Keying.resolver =
 fun peer k -> fetch t (Fbsr_fbs.Principal.to_string peer) k

type stats = { fetches : int; retransmissions : int; failures : int }

let stats (t : t) =
  { fetches = t.fetches; retransmissions = t.retransmissions; failures = t.failures }
