(** The FBS-to-IP mapping (paper Section 7): FBS header between the IPv4
    header and the transport payload, ip_output/ip_input hooks, 5-tuple +
    THRESHOLD flow policy, secure flow bypass, MSS fix, and datagram
    parking across MKD fetches. *)

open Fbsr_netsim

type config = {
  suite : Fbsr_fbs.Suite.t;
  threshold : float;
  fst_size : int;
  replay_window_minutes : int;
  strict_replay : bool;
  secret_policy : protocol:int -> src_port:int -> dst_port:int -> bool;
  bypass : Addr.t -> bool;
  tfkc_sets : int;
  rfkc_sets : int;
  cache_assoc : int;
  max_flow_bytes : int option;
  max_flow_life : float option;
  keying_fetch_retries : int;
      (** Extra keying-layer attempts after a failed certificate fetch
          (on top of the MKD's own retransmissions). *)
  combined_fast_path : bool;
  encapsulation : [ `Shim | `Ip_option ];
      (** [`Shim]: header between IP header and payload (the paper's
          implementation).  [`Ip_option]: header carried as an IPv4 option
          — workable only while it fits the 40-byte budget. *)
  batched_rx : bool;
      (** Route receive-side body opens through an
          {!Fbsr_fbs.Engine.Batch_rx} queue (default [false]): frames
          arriving within [rx_linger] of each other decrypt in one
          cross-flow bitsliced sweep and are delivered in arrival order
          through the parked-datagram upcall.  Verdicts and bytes are
          identical to the inline path; delivery of a deferrable frame
          lags arrival by at most [rx_linger]. *)
  rx_linger : float;
      (** Max simulated-time queue residence before a forced flush
          (default 1 ms). *)
}

val default_config :
  ?suite:Fbsr_fbs.Suite.t ->
  ?threshold:float ->
  ?fst_size:int ->
  ?replay_window_minutes:int ->
  ?strict_replay:bool ->
  ?secret_policy:(protocol:int -> src_port:int -> dst_port:int -> bool) ->
  ?bypass:(Addr.t -> bool) ->
  ?tfkc_sets:int ->
  ?rfkc_sets:int ->
  ?cache_assoc:int ->
  ?max_flow_bytes:int ->
  ?max_flow_life:float ->
  ?keying_fetch_retries:int ->
  ?combined_fast_path:bool ->
  ?encapsulation:[ `Shim | `Ip_option ] ->
  ?batched_rx:bool ->
  ?rx_linger:float ->
  unit ->
  config

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable suspended_out : int;
  mutable suspended_in : int;
  mutable resumed : int;
  mutable dropped_error : int;
  mutable bypassed : int;
  mutable rx_batched : int;
      (** Frames parked in the receive batch ([batched_rx] mode) and
          delivered from its flush. *)
}

type t

val install :
  ?config:config ->
  ?sfl_seed:int ->
  ?trace:Fbsr_util.Trace.t ->
  ?spans:Fbsr_util.Span.t ->
  private_value:Fbsr_crypto.Dh.private_value ->
  group:Fbsr_crypto.Dh.group ->
  ca_public:Fbsr_crypto.Rsa.public_key ->
  ca_hash:Fbsr_crypto.Hash.t ->
  resolver:Fbsr_fbs.Keying.resolver ->
  Host.t ->
  t
(** [trace] (default disabled) is threaded to the engine and keying layers
    — see {!Fbsr_fbs.Engine.create}.  [spans] (default disabled) is the
    host's per-datagram flight recorder: threaded to the engine for the
    classify/derive/seal/replay/receive stages, and used directly by the
    input hook for the ["stack.decap"] stage. *)

val uninstall : t -> unit

val engine : t -> Fbsr_fbs.Engine.t
val counters : t -> counters

val register_metrics : t -> Fbsr_util.Metrics.t -> unit
(** Register the stack's counters under [fbs_ip.stack.] and the engine's
    whole [fbs.*] subtree on [m] (see {!Fbsr_fbs.Engine.register_metrics}).
    Pass [Metrics.sub m "host.<addr>"] for a per-host view. *)

val host : t -> Host.t
val policy_state : t -> Fbsr_fbs.Policy_five_tuple.t
val fast_path : t -> Fast_path.t option
val principal_of_addr : Addr.t -> Fbsr_fbs.Principal.t
val peek_ports : protocol:int -> string -> int * int

val start_sweeper : ?period:float -> t -> unit
(** Run Figure 7's standalone sweeper every [period] (default 60 s)
    simulated seconds.  Note: once started it reschedules forever, so
    [Engine.run] without [~until] will not terminate. *)
