(* Tests for the workload/trace substrate and the flow & cache simulators
   that regenerate Figures 9-14. *)

open Fbsr_traffic

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Record --- *)

let gen_record =
  QCheck.Gen.(
    map
      (fun ((t, proto), (sp, dp), sz) ->
        {
          Record.time = float_of_int t /. 1000.0;
          src = "10.1.0.1";
          src_port = sp;
          dst = "10.1.0.2";
          dst_port = dp;
          protocol = (if proto then 6 else 17);
          size = sz;
        })
      (triple (pair (int_bound 1_000_000) bool)
         (pair (int_bound 0xffff) (int_bound 0xffff))
         (int_bound 65535)))

let arb_record = QCheck.make ~print:Record.to_line gen_record

let prop_record_line_roundtrip =
  QCheck.Test.make ~name:"record line roundtrip" ~count:300 arb_record (fun r ->
      let r' = Record.of_line (Record.to_line r) in
      r'.Record.src = r.Record.src
      && r'.Record.src_port = r.Record.src_port
      && r'.Record.dst = r.Record.dst
      && r'.Record.dst_port = r.Record.dst_port
      && r'.Record.protocol = r.Record.protocol
      && r'.Record.size = r.Record.size
      && abs_float (r'.Record.time -. r.Record.time) < 1e-6)

let test_record_bad_line () =
  List.iter
    (fun line ->
      match Record.of_line line with
      | _ -> Alcotest.failf "accepted %S" line
      | exception Record.Bad_line _ -> ())
    [ ""; "1.0 17 a"; "x 17 a 1 b 2 3" ]

let test_record_save_load () =
  let records =
    [
      { Record.time = 1.5; src = "10.0.0.1"; src_port = 1000; dst = "10.0.0.2";
        dst_port = 80; protocol = 6; size = 512 };
      { Record.time = 2.5; src = "10.0.0.2"; src_port = 80; dst = "10.0.0.1";
        dst_port = 1000; protocol = 6; size = 1024 };
    ]
  in
  let path = Filename.temp_file "fbs-trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Record.save path records;
      let loaded = Record.load path in
      check Alcotest.int "count" 2 (List.length loaded);
      check Alcotest.int "bytes" (Record.total_bytes records) (Record.total_bytes loaded))

(* --- Workload --- *)

let test_conversations_well_formed () =
  let rng = Fbsr_util.Rng.create 5 in
  List.iter
    (fun app ->
      let conv = Workload.generate rng app in
      check Alcotest.bool (Workload.app_name app ^ " non-empty") true
        (conv.Workload.events <> []);
      List.iter
        (fun e ->
          check Alcotest.bool "time nonneg" true (e.Workload.at >= 0.0);
          check Alcotest.bool "size positive" true (e.Workload.size > 0);
          check Alcotest.bool "size sane" true (e.Workload.size <= 1460))
        conv.Workload.events)
    Workload.all_apps

let test_bulk_packets_account () =
  let events = Workload.bulk_packets ~t0:1.0 ~bytes:5000 ~rate_bps:1e6 ~c2s:false in
  let total = List.fold_left (fun acc e -> acc + e.Workload.size) 0 events in
  check Alcotest.int "bytes conserved" 5000 total;
  (* Monotone times. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Workload.at <= b.Workload.at && monotone rest
    | _ -> true
  in
  check Alcotest.bool "monotone" true (monotone events)

let test_to_records_endpoints () =
  let rng = Fbsr_util.Rng.create 6 in
  let conv = Workload.generate rng Workload.Www in
  let records =
    Workload.to_records ~start:100.0 ~client:"10.1.0.5" ~client_port:2000
      ~server:"10.2.0.1" conv
  in
  List.iter
    (fun (r : Record.t) ->
      check Alcotest.int "protocol" (Workload.protocol Workload.Www) r.Record.protocol;
      check Alcotest.bool "start offset applied" true (r.Record.time >= 100.0);
      if r.Record.src = "10.1.0.5" then begin
        check Alcotest.int "c2s ports" 2000 r.Record.src_port;
        check Alcotest.int "server port" 80 r.Record.dst_port
      end
      else begin
        check Alcotest.string "s2c source" "10.2.0.1" r.Record.src;
        check Alcotest.int "s2c source port" 80 r.Record.src_port
      end)
    records

(* --- Scenario --- *)

let small_trace =
  lazy (Scenario.campus_lan ~seed:3 ~duration:1800.0 ~desktops:6 ())

let test_scenario_deterministic () =
  let a = Scenario.campus_lan ~seed:3 ~duration:600.0 ~desktops:4 () in
  let b = Scenario.campus_lan ~seed:3 ~duration:600.0 ~desktops:4 () in
  check Alcotest.int "same record count" (Record.count a.Scenario.records)
    (Record.count b.Scenario.records);
  check Alcotest.int "same bytes" (Record.total_bytes a.Scenario.records)
    (Record.total_bytes b.Scenario.records);
  let c = Scenario.campus_lan ~seed:4 ~duration:600.0 ~desktops:4 () in
  check Alcotest.bool "different seed differs" true
    (Record.total_bytes a.Scenario.records <> Record.total_bytes c.Scenario.records)

let test_scenario_sorted_and_bounded () =
  let sc = Lazy.force small_trace in
  let rec sorted = function
    | (a : Record.t) :: (b :: _ as rest) -> a.Record.time <= b.Record.time && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted" true (sorted sc.Scenario.records);
  check Alcotest.bool "non-trivial" true (Record.count sc.Scenario.records > 1000);
  List.iter
    (fun (r : Record.t) ->
      check Alcotest.bool "inside window" true
        (r.Record.time >= 0.0 && r.Record.time < sc.Scenario.duration))
    sc.Scenario.records

let test_www_scenario () =
  let sc = Scenario.www_server ~seed:5 ~duration:3600.0 ~hits_per_day:5000.0 () in
  check Alcotest.bool "records exist" true (Record.count sc.Scenario.records > 100);
  (* All conversations touch the single server. *)
  List.iter
    (fun (r : Record.t) ->
      check Alcotest.bool "server involved" true
        (r.Record.src = "10.2.0.1" || r.Record.dst = "10.2.0.1"))
    sc.Scenario.records

(* --- Flow_sim --- *)

let test_flow_sim_conservation () =
  let sc = Lazy.force small_trace in
  let res = Flow_sim.run ~threshold:600.0 sc.Scenario.records in
  let total_packets =
    List.fold_left (fun acc f -> acc + f.Flow_sim.packets) 0 res.Flow_sim.flows
  in
  let total_bytes =
    List.fold_left (fun acc f -> acc + f.Flow_sim.bytes) 0 res.Flow_sim.flows
  in
  check Alcotest.int "every datagram in exactly one flow" res.Flow_sim.datagrams
    total_packets;
  check Alcotest.int "bytes conserved" (Record.total_bytes sc.Scenario.records)
    total_bytes;
  List.iter
    (fun f ->
      check Alcotest.bool "flow interval sane" true (f.Flow_sim.last >= f.Flow_sim.start))
    res.Flow_sim.flows

let test_flow_sim_threshold_monotone () =
  let sc = Lazy.force small_trace in
  let flows th =
    List.length (Flow_sim.run ~threshold:th sc.Scenario.records).Flow_sim.flows
  in
  let repeated th = Flow_sim.repeated_flows (Flow_sim.run ~threshold:th sc.Scenario.records) in
  (* Larger THRESHOLD merges flows: both counts must be non-increasing. *)
  check Alcotest.bool "flows non-increasing" true
    (flows 300.0 >= flows 600.0 && flows 600.0 >= flows 1200.0);
  check Alcotest.bool "repeated non-increasing" true
    (repeated 300.0 >= repeated 600.0 && repeated 600.0 >= repeated 1200.0)

let test_flow_sim_heavy_tail () =
  let sc = Lazy.force small_trace in
  let res = Flow_sim.run ~threshold:600.0 sc.Scenario.records in
  let share = Flow_sim.bytes_in_top res ~fraction:0.1 in
  (* The Figure 9 shape: the top decile of flows carries most bytes. *)
  check Alcotest.bool "top 10% flows carry > 50% of bytes" true (share > 0.5);
  check Alcotest.bool "share bounded" true (share <= 1.0);
  let pk = Flow_sim.sizes_packets res in
  check Alcotest.bool "median much smaller than max" true
    (Fbsr_util.Stats.median pk *. 10.0 < (Fbsr_util.Stats.summary pk).Fbsr_util.Stats.max)

let test_flow_sim_active_series () =
  let sc = Lazy.force small_trace in
  let res = Flow_sim.run ~threshold:600.0 sc.Scenario.records in
  let series = Flow_sim.active_series ~bin:60.0 res in
  check Alcotest.bool "series non-empty" true (Array.length series > 0);
  Array.iter (fun n -> check Alcotest.bool "nonneg" true (n >= 0)) series;
  let host, hseries, mean_peak = Flow_sim.active_series_per_host res in
  check Alcotest.bool "busiest host named" true (host <> "");
  check Alcotest.bool "per-host peak <= LAN peak" true
    (Array.fold_left max 0 hseries <= Array.fold_left max 0 series);
  check Alcotest.bool "mean peak positive" true (mean_peak > 0.0)

let test_flow_sim_tuples () =
  let sc = Lazy.force small_trace in
  let res = Flow_sim.run ~threshold:600.0 sc.Scenario.records in
  let flows = List.length res.Flow_sim.flows in
  let tuples = Flow_sim.distinct_tuples res in
  let repeated = Flow_sim.repeated_flows res in
  check Alcotest.int "flows = tuples + repeats" flows (tuples + repeated);
  let tcp_rep, udp_rep = Flow_sim.repeated_flows_by_protocol res in
  check Alcotest.int "protocol split sums" repeated (tcp_rep + udp_rep)

(* --- Analysis --- *)

let test_analysis_accounting () =
  let sc = Lazy.force small_trace in
  let a = Analysis.analyse sc.Scenario.records in
  check Alcotest.int "packets" (Record.count sc.Scenario.records) a.Analysis.packets;
  check Alcotest.int "bytes" (Record.total_bytes sc.Scenario.records) a.Analysis.bytes;
  check Alcotest.int "udp+tcp = all" a.Analysis.packets
    (a.Analysis.udp_packets + a.Analysis.tcp_packets);
  check Alcotest.bool "hosts counted" true (a.Analysis.hosts > 2);
  check Alcotest.bool "sizes ordered" true
    (a.Analysis.packet_size_p50 <= a.Analysis.packet_size_p99);
  (* Per-service packet counts cover the whole trace. *)
  let svc_packets =
    List.fold_left
      (fun acc (s : Analysis.per_port) -> acc + s.Analysis.packets)
      0 a.Analysis.top_services
  in
  check Alcotest.int "service attribution total" a.Analysis.packets svc_packets;
  (* The named services of the paper's environment all appear. *)
  let names =
    List.map (fun (s : Analysis.per_port) -> s.Analysis.service) a.Analysis.top_services
  in
  List.iter
    (fun n -> check Alcotest.bool ("service " ^ n) true (List.mem n names))
    [ "nfs"; "telnet"; "www"; "dns"; "x11"; "ftp-data" ]

let test_analysis_empty () =
  let a = Analysis.analyse [] in
  check Alcotest.int "no packets" 0 a.Analysis.packets;
  check (Alcotest.float 1e-9) "no rate" 0.0 a.Analysis.mean_rate_bps

(* --- Cache_sim --- *)

let test_cache_sim_size_monotone () =
  let sc = Lazy.force small_trace in
  let results =
    Cache_sim.size_sweep ~sizes:[ 4; 16; 64; 256 ] sc.Scenario.records
  in
  let rates = List.map (fun r -> r.Cache_sim.miss_rate) results in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "miss rate falls with size" true (non_increasing rates);
  List.iter
    (fun r ->
      check Alcotest.bool "rate in [0,1]" true
        (r.Cache_sim.miss_rate >= 0.0 && r.Cache_sim.miss_rate <= 1.0);
      check Alcotest.int "accounting"
        (r.Cache_sim.hits + r.Cache_sim.misses_cold + r.Cache_sim.misses_capacity
        + r.Cache_sim.misses_conflict)
        r.Cache_sim.accesses)
    results

let test_cache_sim_sides () =
  let sc = Lazy.force small_trace in
  let run side =
    Cache_sim.run ~config:{ Cache_sim.default_config with Cache_sim.side } sc.Scenario.records
  in
  let tfkc = run Cache_sim.Tfkc and rfkc = run Cache_sim.Rfkc in
  (* Both sides see one access per datagram. *)
  check Alcotest.int "tfkc accesses = datagrams"
    (Record.count sc.Scenario.records) tfkc.Cache_sim.accesses;
  check Alcotest.int "rfkc accesses = datagrams"
    (Record.count sc.Scenario.records) rfkc.Cache_sim.accesses

let test_cache_sim_crc_beats_cheap_hashes () =
  (* Section 5.3's claim: with correlated inputs (sequential sfl values),
     CRC-32 indexing conflicts strictly less than low-bit "modulo"
     indexing would suggest... at minimum it must not be dramatically
     worse, and on this trace it wins. *)
  let sc = Lazy.force small_trace in
  let run hash =
    (Cache_sim.run
       ~config:{ Cache_sim.default_config with Cache_sim.sets = 32; hash }
       sc.Scenario.records)
      .Cache_sim.miss_rate
  in
  let crc = run Cache_sim.Crc32 and xor = run Cache_sim.Xor_fold in
  check Alcotest.bool "crc not worse than xor-fold" true (crc <= xor +. 0.02)

let () =
  Alcotest.run "traffic"
    [
      ( "record",
        [
          Alcotest.test_case "bad lines" `Quick test_record_bad_line;
          Alcotest.test_case "save/load" `Quick test_record_save_load;
          qtest prop_record_line_roundtrip;
        ] );
      ( "workload",
        [
          Alcotest.test_case "well-formed conversations" `Quick
            test_conversations_well_formed;
          Alcotest.test_case "bulk packets account" `Quick test_bulk_packets_account;
          Alcotest.test_case "to_records endpoints" `Quick test_to_records_endpoints;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "sorted + bounded" `Quick test_scenario_sorted_and_bounded;
          Alcotest.test_case "www server" `Quick test_www_scenario;
        ] );
      ( "flow-sim",
        [
          Alcotest.test_case "conservation" `Quick test_flow_sim_conservation;
          Alcotest.test_case "threshold monotonicity" `Quick
            test_flow_sim_threshold_monotone;
          Alcotest.test_case "heavy tail (Figure 9)" `Quick test_flow_sim_heavy_tail;
          Alcotest.test_case "active series (Figure 12)" `Quick
            test_flow_sim_active_series;
          Alcotest.test_case "tuple accounting (Figure 14)" `Quick test_flow_sim_tuples;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "accounting" `Quick test_analysis_accounting;
          Alcotest.test_case "empty trace" `Quick test_analysis_empty;
        ] );
      ( "cache-sim",
        [
          Alcotest.test_case "size monotonicity (Figure 11)" `Quick
            test_cache_sim_size_monotone;
          Alcotest.test_case "both cache sides" `Quick test_cache_sim_sides;
          Alcotest.test_case "hash quality (Section 5.3)" `Quick
            test_cache_sim_crc_beats_cheap_hashes;
        ] );
    ]
