(* Tests for the comparison schemes of Section 2: host-pair keying
   (SKIP-like, direct and per-datagram-key variants) and KDC session
   keying — plus the attack-harness primitives. *)

open Fbsr_netsim
open Fbsr_baselines

let check = Alcotest.check

(* Shared scaffolding: a testbed whose hosts run a given baseline. *)

let make_hostpair_site ?(variant = Hostpair.Direct) () =
  let tb = Fbsr_fbs_ip.Testbed.create () in
  let a = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"a" ~addr:"10.0.0.1" in
  let b = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"b" ~addr:"10.0.0.2" in
  let authority = Fbsr_fbs_ip.Testbed.authority tb in
  let group = Fbsr_fbs_ip.Testbed.group tb in
  let install host =
    let rng = Fbsr_util.Rng.create (Addr.to_int (Host.addr host)) in
    let private_value = Fbsr_crypto.Dh.gen_private group rng in
    let public = Fbsr_crypto.Dh.public group private_value in
    let (_ : Fbsr_cert.Certificate.t) =
      Fbsr_cert.Authority.enroll authority ~now:0.0
        ~subject:(Addr.to_string (Host.addr host))
        ~group:group.Fbsr_crypto.Dh.name
        ~public_value:(Fbsr_crypto.Dh.public_to_bytes group public)
    in
    let resolver peer k =
      match
        Fbsr_cert.Authority.lookup authority (Fbsr_fbs.Principal.to_string peer)
      with
      | Some c -> k (Ok c)
      | None -> k (Error "unknown")
    in
    Hostpair.install ~variant ~bbs_modulus_bits:64 ~private_value ~group
      ~ca_public:(Fbsr_cert.Authority.public authority)
      ~ca_hash:(Fbsr_cert.Authority.hash authority)
      ~resolver host
  in
  let sa = install a and sb = install b in
  (tb, a, b, sa, sb)

(* --- Host-pair keying --- *)

let hostpair_roundtrip variant () =
  let tb, a, b, sa, sb = make_hostpair_site ~variant () in
  let got = ref [] in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ d -> got := d :: !got);
  List.iter
    (fun m -> Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 m)
    [ "first"; "second" ];
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.(list string) "delivered" [ "first"; "second" ] (List.rev !got);
  check Alcotest.int "sent" 2 (Hostpair.counters sa).Hostpair.sent;
  check Alcotest.int "received" 2 (Hostpair.counters sb).Hostpair.received;
  (* Per-datagram keying pays BBS for every datagram; direct pays none. *)
  match variant with
  | Hostpair.Per_datagram ->
      check Alcotest.int "bbs bytes drawn" 16 (Hostpair.counters sa).Hostpair.bbs_bytes
  | Hostpair.Direct ->
      check Alcotest.int "no bbs" 0 (Hostpair.counters sa).Hostpair.bbs_bytes

let test_hostpair_direct_roundtrip () = hostpair_roundtrip Hostpair.Direct ()
let test_hostpair_pdk_roundtrip () = hostpair_roundtrip Hostpair.Per_datagram ()

let test_hostpair_tamper_rejected () =
  let tb, a, b, _, sb = make_hostpair_site () in
  let tap = Attacks.tap (Fbsr_fbs_ip.Testbed.medium tb) in
  let got = ref 0 in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ _ -> incr got);
  Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 "genuine";
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "genuine delivered" 1 !got;
  let _, frame = List.hd (Attacks.between tap ~src:(Host.addr a) ~dst:(Host.addr b)) in
  (* Corrupt a body byte (well past the headers). *)
  let corrupted = Attacks.flip_byte ~offset:(String.length frame - 2) frame in
  Attacks.inject (Fbsr_fbs_ip.Testbed.medium tb) corrupted;
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "tampered rejected" 1 !got;
  check Alcotest.bool "drop counted" true ((Hostpair.counters sb).Hostpair.dropped >= 1)

let test_hostpair_cut_and_paste_succeeds () =
  (* The Section 2.2 weakness: under one master key per host pair, a
     protected payload from conversation B can be re-bound into
     conversation A's envelope and still verifies. *)
  let tb, a, b, _, _ = make_hostpair_site () in
  let tap = Attacks.tap (Fbsr_fbs_ip.Testbed.medium tb) in
  let seen = ref [] in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ d -> seen := ("7:" ^ d) :: !seen);
  Udp_stack.listen b ~port:8 (fun ~src:_ ~src_port:_ d -> seen := ("8:" ^ d) :: !seen);
  Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 "conversation A";
  Udp_stack.send a ~src_port:8 ~dst:(Host.addr b) ~dst_port:8 "conversation B";
  Fbsr_fbs_ip.Testbed.run tb;
  match Attacks.between tap ~src:(Host.addr a) ~dst:(Host.addr b) with
  | (_, fa) :: (_, fb) :: _ ->
      let before = List.length !seen in
      (match Attacks.splice_hostpair ~envelope_from:fa ~body_from:fb with
      | Some forged ->
          Attacks.inject (Fbsr_fbs_ip.Testbed.medium tb) forged;
          Fbsr_fbs_ip.Testbed.run tb;
          check Alcotest.bool "splice accepted (the documented weakness)" true
            (List.length !seen > before)
      | None -> Alcotest.fail "could not splice")
  | _ -> Alcotest.fail "frames not captured"

let test_hostpair_mss_reduction () =
  let _, a, _, sa, _ = make_hostpair_site () in
  ignore sa;
  check Alcotest.bool "mss reduced" true (Minitcp.mss_reduction a > 0)

let test_hostpair_unprotect_errors () =
  let _, _, _, sa, _ = make_hostpair_site () in
  let master = "some master key material" in
  (match Hostpair.unprotect sa ~master ~wire:"x" with
  | Error Hostpair.Truncated -> ()
  | _ -> Alcotest.fail "truncated accepted");
  match Hostpair.unprotect sa ~master ~wire:(String.make 40 '\x07') with
  | Error Hostpair.Bad_variant -> ()
  | _ -> Alcotest.fail "bad variant accepted"

(* --- KDC session keying --- *)

let make_kdc_site () =
  let tb = Fbsr_fbs_ip.Testbed.create () in
  let a = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"a" ~addr:"10.0.0.1" in
  let b = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"b" ~addr:"10.0.0.2" in
  let kdc_host = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"kdc" ~addr:"10.0.0.50" in
  let server = Kdc.Server.install kdc_host in
  let enroll host =
    let key = Kdc.Server.enroll server ~name:(Addr.to_string (Host.addr host)) in
    Kdc.install ~kdc_addr:(Host.addr kdc_host) ~shared_key:key host
  in
  let sa = enroll a and sb = enroll b in
  (tb, a, b, server, sa, sb)

let test_kdc_roundtrip () =
  let tb, a, b, server, sa, sb = make_kdc_site () in
  let got = ref [] in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ d -> got := d :: !got);
  List.iter
    (fun m -> Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 m)
    [ "one"; "two"; "three" ];
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.(list string) "all delivered in order" [ "one"; "two"; "three" ]
    (List.rev !got);
  (* The defining costs of session keying (Section 2.1): an explicit setup
     exchange before the first datagram, and hard state at both ends. *)
  check Alcotest.int "one KDC request for the whole session" 1
    (Kdc.counters sa).Kdc.kdc_requests;
  check Alcotest.int "one ticket issued" 1 (Kdc.Server.tickets_issued server);
  check Alcotest.int "hard state at sender" 1 (Kdc.sessions_out sa);
  check Alcotest.int "hard state at receiver" 1 (Kdc.sessions_in sb)

let test_kdc_unknown_destination () =
  let tb, a, _, _, sa, _ = make_kdc_site () in
  (* 10.0.0.77 is not enrolled with the KDC: setup fails, nothing leaves. *)
  Udp_stack.send a ~src_port:7 ~dst:(Addr.of_string "10.0.0.77") ~dst_port:7 "void";
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "nothing sent" 0 (Kdc.counters sa).Kdc.sent

let test_kdc_ticket_corruption_rejected () =
  let tb, a, b, _, _, sb = make_kdc_site () in
  let tap = Attacks.tap (Fbsr_fbs_ip.Testbed.medium tb) in
  let got = ref 0 in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ _ -> incr got);
  Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 "msg";
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "delivered" 1 !got;
  let _, frame = List.hd (Attacks.between tap ~src:(Host.addr a) ~dst:(Host.addr b)) in
  let corrupted = Attacks.flip_byte ~offset:(String.length frame - 3) frame in
  Attacks.inject (Fbsr_fbs_ip.Testbed.medium tb) corrupted;
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "corrupt rejected" 1 !got;
  check Alcotest.bool "drop counted" true ((Kdc.counters sb).Kdc.dropped >= 1)

(* --- Photuris-style session keying (no third party) --- *)

let make_photuris_site () =
  let tb = Fbsr_fbs_ip.Testbed.create () in
  let a = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"a" ~addr:"10.0.0.1" in
  let b = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"b" ~addr:"10.0.0.2" in
  let group = Fbsr_fbs_ip.Testbed.group tb in
  let sa = Photuris.install ~group a in
  let sb = Photuris.install ~group b in
  (tb, a, b, sa, sb)

let test_photuris_roundtrip () =
  let tb, a, b, sa, sb = make_photuris_site () in
  let got = ref [] in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ d -> got := d :: !got);
  List.iter
    (fun m -> Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 m)
    [ "one"; "two"; "three" ];
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.(list string) "in order" [ "one"; "two"; "three" ] (List.rev !got);
  (* The Section 2.1 costs, quantified: *)
  let ca = Photuris.counters sa in
  check Alcotest.int "four setup messages (2 RTT) for one peer" 4
    (ca.Photuris.setup_messages + (Photuris.counters sb).Photuris.setup_messages);
  check Alcotest.int "hard state at initiator" 1 (Photuris.sessions_out sa);
  check Alcotest.int "hard state at responder" 1 (Photuris.sessions_in sb);
  check Alcotest.bool "ephemeral modexps spent" true (ca.Photuris.modexps >= 2)

let test_photuris_tamper_rejected () =
  let tb, a, b, _, sb = make_photuris_site () in
  let tap = Attacks.tap (Fbsr_fbs_ip.Testbed.medium tb) in
  let got = ref 0 in
  Udp_stack.listen b ~port:7 (fun ~src:_ ~src_port:_ _ -> incr got);
  Udp_stack.send a ~src_port:7 ~dst:(Host.addr b) ~dst_port:7 "genuine";
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "delivered" 1 !got;
  (* Corrupt the protected data packet: it is the last a->b frame. *)
  let frames = Attacks.between tap ~src:(Host.addr a) ~dst:(Host.addr b) in
  let _, data_frame = List.nth frames (List.length frames - 1) in
  Attacks.inject (Fbsr_fbs_ip.Testbed.medium tb)
    (Attacks.flip_byte ~offset:(String.length data_frame - 2) data_frame);
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "tampered rejected" 1 !got;
  check Alcotest.bool "drop counted" true ((Photuris.counters sb).Photuris.dropped >= 1)

let test_photuris_no_long_term_secret () =
  (* The Section 6.1 contrast: ephemeral-DH session keying has no long-term
     secret whose compromise exposes traffic; FBS (zero-message) cannot
     avoid one.  This is the trade the paper concedes. *)
  let _, _, _, sa, _ = make_photuris_site () in
  check Alcotest.bool "no long-term secrets" false (Photuris.has_long_term_secrets sa)

(* --- Attack harness primitives --- *)

let arbitrary_bytes = QCheck.string_gen (QCheck.Gen.char_range '\000' '\255')

let prop_baselines_never_crash_on_garbage =
  (* The baselines' unprotect paths must be as robust as FBS's. *)
  let _, _, _, hp, _ = make_hostpair_site () in
  let _, _, _, _, _, kdc = make_kdc_site () in
  let _, _, _, ph, _ = make_photuris_site () in
  QCheck.Test.make ~name:"baseline unprotect(garbage) never raises" ~count:200
    arbitrary_bytes (fun garbage ->
      let ok1 =
        match Hostpair.unprotect hp ~master:"some master key bytes" ~wire:garbage with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      let ok2 =
        match Kdc.unprotect kdc ~now:0.0 ~wire:garbage with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      let ok3 =
        match Photuris.unprotect ph ~wire:garbage with
        | Ok _ | Error _ -> true
        | exception _ -> false
      in
      ok1 && ok2 && ok3)

let test_attacks_tap_and_filter () =
  let tb = Fbsr_fbs_ip.Testbed.create () in
  let a = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"a" ~addr:"10.0.0.1" in
  let b = Fbsr_fbs_ip.Testbed.add_plain_host tb ~name:"b" ~addr:"10.0.0.2" in
  let tap = Attacks.tap (Fbsr_fbs_ip.Testbed.medium tb) in
  Udp_stack.listen b ~port:7 (fun ~src ~src_port d ->
      Udp_stack.send b ~src_port:7 ~dst:src ~dst_port:src_port d);
  Udp_stack.listen a ~port:5 (fun ~src:_ ~src_port:_ _ -> ());
  Udp_stack.send a ~src_port:5 ~dst:(Host.addr b) ~dst_port:7 "ping";
  Fbsr_fbs_ip.Testbed.run tb;
  check Alcotest.int "both directions captured" 2 (List.length (Attacks.frames tap));
  check Alcotest.int "a->b filter" 1
    (List.length (Attacks.between tap ~src:(Host.addr a) ~dst:(Host.addr b)));
  check Alcotest.int "b->a filter" 1
    (List.length (Attacks.between tap ~src:(Host.addr b) ~dst:(Host.addr a)));
  Attacks.clear tap;
  check Alcotest.int "cleared" 0 (List.length (Attacks.frames tap))

let test_attacks_flip_byte_keeps_ip_valid () =
  let h =
    Ipv4.make ~protocol:17 ~src:(Addr.of_string "1.2.3.4") ~dst:(Addr.of_string "5.6.7.8")
      ~payload_length:10 ()
  in
  let raw = Ipv4.encode h "0123456789" in
  let flipped = Attacks.flip_byte ~offset:25 raw in
  (* The IP header must still parse (checksum repaired); the payload byte
     differs. *)
  let _, payload = Ipv4.decode flipped in
  check Alcotest.bool "payload changed" true (payload <> "0123456789")

let () =
  Alcotest.run "baselines"
    [
      ( "hostpair",
        [
          Alcotest.test_case "direct roundtrip" `Quick test_hostpair_direct_roundtrip;
          Alcotest.test_case "per-datagram-key roundtrip" `Quick
            test_hostpair_pdk_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_hostpair_tamper_rejected;
          Alcotest.test_case "cut-and-paste succeeds (Section 2.2)" `Quick
            test_hostpair_cut_and_paste_succeeds;
          Alcotest.test_case "mss reduction" `Quick test_hostpair_mss_reduction;
          Alcotest.test_case "unprotect errors" `Quick test_hostpair_unprotect_errors;
        ] );
      ( "kdc",
        [
          Alcotest.test_case "session roundtrip" `Quick test_kdc_roundtrip;
          Alcotest.test_case "unknown destination" `Quick test_kdc_unknown_destination;
          Alcotest.test_case "corruption rejected" `Quick
            test_kdc_ticket_corruption_rejected;
        ] );
      ( "photuris",
        [
          Alcotest.test_case "session roundtrip" `Quick test_photuris_roundtrip;
          Alcotest.test_case "tamper rejected" `Quick test_photuris_tamper_rejected;
          Alcotest.test_case "no long-term secret (PFS)" `Quick
            test_photuris_no_long_term_secret;
        ] );
      ( "attack-harness",
        [
          Alcotest.test_case "tap + filters" `Quick test_attacks_tap_and_filter;
          Alcotest.test_case "flip_byte keeps IP valid" `Quick
            test_attacks_flip_byte_keeps_ip_valid;
          QCheck_alcotest.to_alcotest prop_baselines_never_crash_on_garbage;
        ] );
    ]
