test/test_fbs.mli:
