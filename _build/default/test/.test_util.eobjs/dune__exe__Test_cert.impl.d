test/test_cert.ml: Alcotest Authority Certificate Chain Fbsr_bignum Fbsr_cert Fbsr_crypto Fbsr_util List
