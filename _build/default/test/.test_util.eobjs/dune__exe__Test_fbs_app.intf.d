test/test_fbs_app.mli:
