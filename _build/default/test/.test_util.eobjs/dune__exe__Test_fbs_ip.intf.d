test/test_fbs_ip.mli:
