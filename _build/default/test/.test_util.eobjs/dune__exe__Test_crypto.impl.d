test/test_crypto.ml: Alcotest Bbs Bytes Char Ct Des Des3 Dh Fbsr_bignum Fbsr_crypto Fbsr_util Fused Hash Lazy List Mac Md5 QCheck QCheck_alcotest Rsa Sha1 String
