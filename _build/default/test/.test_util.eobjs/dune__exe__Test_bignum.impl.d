test/test_bignum.ml: Alcotest Fbsr_bignum Fbsr_util List Nat QCheck QCheck_alcotest String
