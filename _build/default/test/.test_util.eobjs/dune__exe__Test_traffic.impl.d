test/test_traffic.ml: Alcotest Analysis Array Cache_sim Fbsr_traffic Fbsr_util Filename Flow_sim Fun Lazy List QCheck QCheck_alcotest Record Scenario Sys Workload
