test/test_util.ml: Alcotest Array Buffer Byte_queue Byte_reader Byte_writer Bytes Char Chart Crc32 Fbsr_util Fmt Gen Hashtbl Hex Inet_checksum Lcg List QCheck QCheck_alcotest Rng Stats String
