test/test_fbs_app.ml: Alcotest App_socket Ca_server Engine Fbsr_baselines Fbsr_cert Fbsr_crypto Fbsr_fbs Fbsr_fbs_app Fbsr_fbs_ip Fbsr_netsim Fbsr_util Host Ipv4 List Mkd String Testbed Udp
