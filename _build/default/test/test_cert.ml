(* Tests for the certificate substrate: public-value certificates, the
   authority, and certification-hierarchy chains. *)

open Fbsr_cert

let check = Alcotest.check
let rng = Fbsr_util.Rng.create 2024
let hash = Fbsr_crypto.Hash.md5

let fresh_authority ?(validity = 1000.0) () =
  Authority.create ~validity ~rng ~bits:512 ()

(* --- Certificate --- *)

let test_certificate_roundtrip () =
  let ca = fresh_authority () in
  let cert =
    Authority.enroll ca ~now:100.0 ~subject:"host-a" ~group:"test-group"
      ~public_value:"public bytes here"
  in
  let cert' = Certificate.decode (Certificate.encode cert) in
  check Alcotest.string "subject" "host-a" cert'.Certificate.subject;
  check Alcotest.string "group" "test-group" cert'.Certificate.group;
  check Alcotest.string "public value" "public bytes here" cert'.Certificate.public_value;
  check Alcotest.bool "verifies after roundtrip" true
    (Certificate.verify ~ca_public:(Authority.public ca) ~hash ~now:100.0 cert' = Ok ())

let test_certificate_verify_errors () =
  let ca = fresh_authority () in
  let other_ca = fresh_authority () in
  let cert =
    Authority.enroll ca ~now:100.0 ~subject:"host-a" ~group:"g" ~public_value:"pv"
  in
  (match
     Certificate.verify ~ca_public:(Authority.public other_ca) ~hash ~now:100.0 cert
   with
  | Error Certificate.Bad_signature -> ()
  | _ -> Alcotest.fail "wrong CA accepted");
  (match Certificate.verify ~ca_public:(Authority.public ca) ~hash ~now:99999.0 cert with
  | Error (Certificate.Expired _) -> ()
  | _ -> Alcotest.fail "expired accepted");
  (match
     Certificate.verify ~ca_public:(Authority.public ca) ~hash ~now:100.0
       ~expected_subject:"host-b" cert
   with
  | Error (Certificate.Wrong_subject _) -> ()
  | _ -> Alcotest.fail "wrong subject accepted");
  (* Any field tamper breaks the signature. *)
  let tampered = { cert with Certificate.subject = "host-evil" } in
  match Certificate.verify ~ca_public:(Authority.public ca) ~hash ~now:100.0 tampered with
  | Error Certificate.Bad_signature -> ()
  | _ -> Alcotest.fail "tampered subject accepted"

let test_certificate_decode_garbage () =
  List.iter
    (fun raw ->
      match Certificate.decode raw with
      | _ -> Alcotest.failf "accepted %S" raw
      | exception Certificate.Bad_certificate _ -> ())
    [ ""; "\x00\x05ab" ]

(* --- Authority --- *)

let test_authority_directory () =
  let ca = fresh_authority () in
  check Alcotest.bool "empty" true (Authority.lookup ca "x" = None);
  let _ = Authority.enroll ca ~now:0.0 ~subject:"x" ~group:"g" ~public_value:"p" in
  check Alcotest.bool "found" true (Authority.lookup ca "x" <> None);
  check Alcotest.int "issued" 1 (Authority.issued ca);
  Authority.revoke ca "x";
  check Alcotest.bool "revoked" true (Authority.lookup ca "x" = None)

(* --- Chains --- *)

let build_hierarchy () =
  (* root -> site CA -> leaf host certificate *)
  let root = fresh_authority () in
  let site = fresh_authority () in
  let site_cert =
    Chain.sign_ca
      ~parent_key:(Authority.signing_key root)
      ~hash ~name:"site-ca" ~public:(Authority.public site) ~not_before:0.0
      ~not_after:1000.0
  in
  let leaf =
    Authority.enroll site ~now:10.0 ~subject:"10.1.0.1" ~group:"g" ~public_value:"pv"
  in
  (root, site, site_cert, leaf)

let test_chain_valid () =
  let root, _, site_cert, leaf = build_hierarchy () in
  check Alcotest.bool "valid chain" true
    (Chain.verify_chain ~root:(Authority.public root) ~hash ~now:50.0
       ~intermediates:[ site_cert ] ~expected_subject:"10.1.0.1" leaf
    = Ok ())

let test_chain_broken_link () =
  let root, site, _site_cert, leaf = build_hierarchy () in
  (* An intermediate signed by the WRONG parent. *)
  let rogue = fresh_authority () in
  let forged =
    Chain.sign_ca
      ~parent_key:(Authority.signing_key rogue)
      ~hash ~name:"site-ca" ~public:(Authority.public site) ~not_before:0.0
      ~not_after:1000.0
  in
  match
    Chain.verify_chain ~root:(Authority.public root) ~hash ~now:50.0
      ~intermediates:[ forged ] leaf
  with
  | Error (Chain.Bad_link "site-ca") -> ()
  | _ -> Alcotest.fail "forged intermediate accepted"

let test_chain_expired_link () =
  let root, site, _, leaf = build_hierarchy () in
  let stale =
    Chain.sign_ca
      ~parent_key:(Authority.signing_key root)
      ~hash ~name:"site-ca" ~public:(Authority.public site) ~not_before:0.0
      ~not_after:20.0
  in
  match
    Chain.verify_chain ~root:(Authority.public root) ~hash ~now:50.0
      ~intermediates:[ stale ] leaf
  with
  | Error (Chain.Link_expired "site-ca") -> ()
  | _ -> Alcotest.fail "expired intermediate accepted"

let test_chain_wrong_leaf () =
  let root, _, site_cert, _ = build_hierarchy () in
  (* A leaf signed by a different (unchained) authority. *)
  let stranger = fresh_authority () in
  let bad_leaf =
    Authority.enroll stranger ~now:10.0 ~subject:"10.1.0.1" ~group:"g" ~public_value:"pv"
  in
  match
    Chain.verify_chain ~root:(Authority.public root) ~hash ~now:50.0
      ~intermediates:[ site_cert ] bad_leaf
  with
  | Error (Chain.Leaf_invalid Certificate.Bad_signature) -> ()
  | _ -> Alcotest.fail "unchained leaf accepted"

let test_chain_three_levels () =
  (* root -> region -> site -> leaf. *)
  let root = fresh_authority () in
  let region = fresh_authority () in
  let site = fresh_authority () in
  let region_cert =
    Chain.sign_ca ~parent_key:(Authority.signing_key root) ~hash ~name:"region"
      ~public:(Authority.public region) ~not_before:0.0 ~not_after:1000.0
  in
  let site_cert =
    Chain.sign_ca ~parent_key:(Authority.signing_key region) ~hash ~name:"site"
      ~public:(Authority.public site) ~not_before:0.0 ~not_after:1000.0
  in
  let leaf = Authority.enroll site ~now:5.0 ~subject:"h" ~group:"g" ~public_value:"pv" in
  check Alcotest.bool "three-level chain" true
    (Chain.verify_chain ~root:(Authority.public root) ~hash ~now:50.0
       ~intermediates:[ region_cert; site_cert ] leaf
    = Ok ());
  (* Order matters: swapping intermediates must fail. *)
  check Alcotest.bool "misordered chain rejected" false
    (Chain.verify_chain ~root:(Authority.public root) ~hash ~now:50.0
       ~intermediates:[ site_cert; region_cert ] leaf
    = Ok ())

let test_ca_cert_wire_roundtrip () =
  let root, _, site_cert, _ = build_hierarchy () in
  ignore root;
  let c = Chain.decode (Chain.encode site_cert) in
  check Alcotest.string "name" site_cert.Chain.name c.Chain.name;
  check Alcotest.bool "modulus survives" true
    (Fbsr_bignum.Nat.equal c.Chain.public.Fbsr_crypto.Rsa.n
       site_cert.Chain.public.Fbsr_crypto.Rsa.n);
  match Chain.decode "garbage" with
  | _ -> Alcotest.fail "garbage decoded"
  | exception Chain.Bad_certificate _ -> ()

let () =
  Alcotest.run "cert"
    [
      ( "certificate",
        [
          Alcotest.test_case "roundtrip" `Quick test_certificate_roundtrip;
          Alcotest.test_case "verify errors" `Quick test_certificate_verify_errors;
          Alcotest.test_case "garbage" `Quick test_certificate_decode_garbage;
        ] );
      ("authority", [ Alcotest.test_case "directory" `Quick test_authority_directory ]);
      ( "chain",
        [
          Alcotest.test_case "valid two-level" `Quick test_chain_valid;
          Alcotest.test_case "broken link" `Quick test_chain_broken_link;
          Alcotest.test_case "expired link" `Quick test_chain_expired_link;
          Alcotest.test_case "wrong leaf" `Quick test_chain_wrong_leaf;
          Alcotest.test_case "three levels + ordering" `Quick test_chain_three_levels;
          Alcotest.test_case "CA cert wire roundtrip" `Quick test_ca_cert_wire_roundtrip;
        ] );
    ]
