(* Tests for the fbsr_util substrate: hex, byte IO, CRC-32, Internet
   checksum, PRNGs, statistics, byte queue. *)

open Fbsr_util

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let arbitrary_bytes = QCheck.string_gen (QCheck.Gen.char_range '\000' '\255')

(* --- Hex --- *)

let test_hex_known () =
  check Alcotest.string "encode" "00ff10ab" (Hex.encode "\x00\xff\x10\xab");
  check Alcotest.string "decode" "\x00\xff\x10\xab" (Hex.decode "00ff10ab");
  check Alcotest.string "uppercase accepted" "\xde\xad" (Hex.decode "DEAD");
  check Alcotest.string "empty" "" (Hex.encode "");
  check Alcotest.string "spaces ignored" "\xde\xad\xbe\xef" (Hex.decode "de ad\nbe ef")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd-length input")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Hex.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 arbitrary_bytes (fun s ->
      Hex.decode (Hex.encode s) = s)

(* --- Byte writer / reader --- *)

let test_byte_io_fixed () =
  let w = Byte_writer.create () in
  Byte_writer.u8 w 0xab;
  Byte_writer.u16 w 0x1234;
  Byte_writer.u32 w 0xdeadbeefl;
  Byte_writer.u64 w 0x0123456789abcdefL;
  Byte_writer.bytes w "tail";
  let s = Byte_writer.contents w in
  check Alcotest.int "length" (1 + 2 + 4 + 8 + 4) (String.length s);
  let r = Byte_reader.of_string s in
  check Alcotest.int "u8" 0xab (Byte_reader.u8 r);
  check Alcotest.int "u16" 0x1234 (Byte_reader.u16 r);
  check Alcotest.int32 "u32" 0xdeadbeefl (Byte_reader.u32 r);
  check Alcotest.int64 "u64" 0x0123456789abcdefL (Byte_reader.u64 r);
  check Alcotest.string "rest" "tail" (Byte_reader.rest r);
  check Alcotest.int "remaining" 0 (Byte_reader.remaining r)

let test_byte_reader_truncated () =
  let r = Byte_reader.of_string "ab" in
  Alcotest.check_raises "u32 truncated" Byte_reader.Truncated (fun () ->
      ignore (Byte_reader.u32 r));
  (* The failed read must not consume anything. *)
  check Alcotest.int "position unchanged" 0 (Byte_reader.position r);
  check Alcotest.int "u16 ok" 0x6162 (Byte_reader.u16 r)

let test_byte_reader_slice () =
  let r = Byte_reader.of_string ~pos:2 ~len:3 "XXabcYY" in
  check Alcotest.string "slice" "abc" (Byte_reader.rest r)

let prop_byte_io_roundtrip =
  QCheck.Test.make ~name:"writer/reader roundtrip" ~count:200
    QCheck.(
      triple (list (int_bound 255)) (list (int_bound 0xffff)) arbitrary_bytes)
    (fun (u8s, u16s, tail) ->
      let w = Byte_writer.create () in
      List.iter (Byte_writer.u8 w) u8s;
      List.iter (Byte_writer.u16 w) u16s;
      Byte_writer.bytes w tail;
      let r = Byte_reader.of_string (Byte_writer.contents w) in
      let u8s' = List.map (fun _ -> Byte_reader.u8 r) u8s in
      let u16s' = List.map (fun _ -> Byte_reader.u16 r) u16s in
      u8s' = u8s && u16s' = u16s && Byte_reader.rest r = tail)

(* --- CRC-32 --- *)

let test_crc32_known () =
  check Alcotest.int "check value" 0xcbf43926 (Crc32.string "123456789");
  check Alcotest.int "empty" 0 (Crc32.string "")

let prop_crc32_incremental =
  QCheck.Test.make ~name:"crc32 incremental = whole" ~count:200
    QCheck.(pair arbitrary_bytes arbitrary_bytes)
    (fun (a, b) ->
      let whole = Crc32.string (a ^ b) in
      let inc = Crc32.update (Crc32.update 0 a 0 (String.length a)) b 0 (String.length b) in
      whole = inc)

let test_crc32_int_helpers () =
  let v = 0x12345678 in
  let s = "\x12\x34\x56\x78" in
  check Alcotest.int "int32 = bytes" (Crc32.string s) (Crc32.update_int32 0 v);
  let v64 = 0x0102030405060708L in
  let s64 = "\x01\x02\x03\x04\x05\x06\x07\x08" in
  check Alcotest.int "int64 = bytes" (Crc32.string s64) (Crc32.update_int64 0 v64)

(* --- Internet checksum --- *)

let test_checksum_rfc1071 () =
  (* RFC 1071 example data: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, ck 220d *)
  let data = Hex.decode "0001f203f4f5f6f7" in
  check Alcotest.int "checksum" (lnot 0xddf2 land 0xffff) (Inet_checksum.string data)

let prop_checksum_verify =
  QCheck.Test.make ~name:"checksum verifies and detects flips" ~count:200
    QCheck.(pair arbitrary_bytes small_nat)
    (fun (s, pos) ->
      QCheck.assume (String.length s >= 2 && String.length s mod 2 = 0);
      (* Append the checksum and verify. *)
      let ck = Inet_checksum.string s in
      let full = s ^ String.init 2 (fun i -> Char.chr ((ck lsr (8 * (1 - i))) land 0xff)) in
      if not (Inet_checksum.verify full) then false
      else begin
        let pos = pos mod String.length s in
        let b = Bytes.of_string full in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
        (* One's-complement sums can miss 0x0000 <-> 0xffff flips only;
           a 0x5a xor is always detected. *)
        not (Inet_checksum.verify (Bytes.to_string b))
      end)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 50 do
    check Alcotest.int "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done;
  let c = Rng.create 124 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1_000_000 <> Rng.int c 1_000_000 then differs := true
  done;
  check Alcotest.bool "different seed differs" true !differs

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_range =
  QCheck.Test.make ~name:"rng int_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extra) ->
      let hi = lo + extra in
      let rng = Rng.create seed in
      let v = Rng.int_range rng lo hi in
      v >= lo && v <= hi)

let test_rng_distributions () =
  let rng = Rng.create 42 in
  for _ = 1 to 100 do
    let e = Rng.exponential rng 5.0 in
    check Alcotest.bool "exponential positive" true (e >= 0.0);
    let p = Rng.pareto rng ~shape:1.5 ~scale:10.0 in
    check Alcotest.bool "pareto >= scale" true (p >= 10.0);
    let f = Rng.float rng 3.0 in
    check Alcotest.bool "float in range" true (f >= 0.0 && f < 3.0)
  done

let test_rng_choose_weighted () =
  let rng = Rng.create 1 in
  (* A zero-weight option must never be chosen. *)
  for _ = 1 to 200 do
    let v = Rng.choose_weighted rng [ (0.0, `Never); (1.0, `Always) ] in
    check Alcotest.bool "never zero-weight" true (v = `Always)
  done

let test_rng_bytes () =
  let rng = Rng.create 9 in
  let s = Rng.bytes rng 100 in
  check Alcotest.int "length" 100 (String.length s);
  (* Not all equal (astronomically unlikely). *)
  check Alcotest.bool "not constant" true
    (String.exists (fun c -> c <> s.[0]) s)

(* --- Lcg --- *)

let test_lcg () =
  let a = Lcg.create 7 and b = Lcg.create 7 in
  for _ = 1 to 20 do
    check Alcotest.int "deterministic" (Lcg.next_u32 a) (Lcg.next_u32 b)
  done;
  let block = Lcg.next_block a 10 in
  check Alcotest.int "block length" 10 (String.length block)

let test_lcg_spread () =
  (* The high 32 bits should not obviously cycle over a small sample. *)
  let l = Lcg.create 1 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    Hashtbl.replace seen (Lcg.next_u32 l) ()
  done;
  check Alcotest.bool "mostly distinct" true (Hashtbl.length seen > 990)

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summary [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4.0 s.Stats.max;
  check (Alcotest.float 1e-9) "total" 10.0 s.Stats.total;
  check Alcotest.int "count" 4 s.Stats.count

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p90" 90.0 (Stats.percentile xs 90.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let prop_stats_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone and ends at 1" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let cdf = Stats.cdf (Array.of_list xs) in
      let rec monotone = function
        | (v1, f1) :: ((v2, f2) :: _ as rest) ->
            v1 < v2 && f1 <= f2 && monotone rest
        | _ -> true
      in
      monotone cdf
      && match List.rev cdf with (_, f) :: _ -> abs_float (f -. 1.0) < 1e-9 | [] -> false)

let test_stats_log_histogram () =
  let h = Stats.log_histogram ~base:2.0 [| 1.0; 2.0; 3.0; 4.0; 5.0; 100.0 |] in
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 h.Stats.buckets in
  check Alcotest.int "all samples bucketed" 6 total

let test_stats_bin_count () =
  let bins = Stats.bin_count ~bin:10.0 ~t_end:30.0 [ 1.0; 5.0; 15.0; 25.0; 29.9; 35.0 ] in
  check Alcotest.(list int) "bins" [ 2; 1; 2 ] (Array.to_list bins)

(* --- Byte_queue --- *)

let prop_byte_queue_model =
  (* Model-based test: a byte queue behaves like a string under push /
     drop / read. *)
  QCheck.Test.make ~name:"byte queue = string model" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 0 20)
        (pair (string_gen_of_size (Gen.int_range 0 40) Gen.char) (int_bound 30)))
    (fun ops ->
      let q = Byte_queue.create () in
      let model = ref "" in
      List.for_all
        (fun (push, dropn) ->
          Byte_queue.push q push;
          model := !model ^ push;
          let dropn = min dropn (String.length !model) in
          Byte_queue.drop q dropn;
          model := String.sub !model dropn (String.length !model - dropn);
          Byte_queue.length q = String.length !model
          &&
          let len = String.length !model in
          let off = if len = 0 then 0 else len / 3 in
          let n = len - off in
          Byte_queue.read q ~off ~len:n = String.sub !model off n)
        ops)

let test_byte_queue_errors () =
  let q = Byte_queue.create () in
  Byte_queue.push q "hello";
  Alcotest.check_raises "drop too much"
    (Invalid_argument "Byte_queue.drop: more than length") (fun () ->
      Byte_queue.drop q 6);
  Alcotest.check_raises "read out of bounds"
    (Invalid_argument "Byte_queue.read: out of bounds") (fun () ->
      ignore (Byte_queue.read q ~off:3 ~len:3))

(* --- Chart --- *)

let test_chart_bar () =
  check Alcotest.string "empty" "     " (Chart.bar 5 0.0);
  check Alcotest.string "full" "#####" (Chart.bar 5 1.0);
  check Alcotest.string "half" "##   " (Chart.bar 5 0.5);
  (* Out-of-range fractions are clamped. *)
  check Alcotest.string "clamped high" "#####" (Chart.bar 5 7.0);
  check Alcotest.string "clamped low" "     " (Chart.bar 5 (-1.0))

let test_chart_renders () =
  (* Smoke: both chart kinds produce non-empty output and never raise. *)
  let buf = Buffer.create 256 in
  let ppf = Fmt.with_buffer buf in
  Chart.hbar ppf [ ("alpha", 10.0); ("beta", 3.0) ];
  Chart.timeseries ppf ~x_label:"t" ~y_label:"v"
    (Array.init 100 (fun i -> float_of_int (i mod 17)));
  Fmt.flush ppf ();
  let out = Buffer.contents buf in
  check Alcotest.bool "hbar drew" true
    (String.length out > 0
    && String.split_on_char '\n' out
       |> List.exists (fun l -> String.length l > 0 && String.contains l '#'));
  check Alcotest.bool "series drew" true (String.contains out '*');
  (* Degenerate inputs. *)
  Chart.timeseries ppf ~x_label:"t" ~y_label:"v" [||];
  Chart.hbar ppf []

let () =
  Alcotest.run "util"
    [
      ( "hex",
        [
          Alcotest.test_case "known values" `Quick test_hex_known;
          Alcotest.test_case "errors" `Quick test_hex_errors;
          qtest prop_hex_roundtrip;
        ] );
      ( "byte-io",
        [
          Alcotest.test_case "fixed sequence" `Quick test_byte_io_fixed;
          Alcotest.test_case "truncated" `Quick test_byte_reader_truncated;
          Alcotest.test_case "slice" `Quick test_byte_reader_slice;
          qtest prop_byte_io_roundtrip;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known" `Quick test_crc32_known;
          Alcotest.test_case "int helpers" `Quick test_crc32_int_helpers;
          qtest prop_crc32_incremental;
        ] );
      ( "inet-checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick test_checksum_rfc1071;
          qtest prop_checksum_verify;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "distributions" `Quick test_rng_distributions;
          Alcotest.test_case "choose_weighted" `Quick test_rng_choose_weighted;
          Alcotest.test_case "bytes" `Quick test_rng_bytes;
          qtest prop_rng_int_bounds;
          qtest prop_rng_range;
        ] );
      ( "lcg",
        [
          Alcotest.test_case "deterministic + block" `Quick test_lcg;
          Alcotest.test_case "spread" `Quick test_lcg_spread;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "log histogram" `Quick test_stats_log_histogram;
          Alcotest.test_case "bin count" `Quick test_stats_bin_count;
          qtest prop_stats_cdf_monotone;
        ] );
      ( "byte-queue",
        [
          Alcotest.test_case "errors" `Quick test_byte_queue_errors;
          qtest prop_byte_queue_model;
        ] );
      ( "chart",
        [
          Alcotest.test_case "bar" `Quick test_chart_bar;
          Alcotest.test_case "renders" `Quick test_chart_renders;
        ] );
    ]
