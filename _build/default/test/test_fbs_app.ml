(* Tests for the application-layer FBS mapping: named principals,
   conversation-tag flows, envelope handling, spoofing resistance. *)

open Fbsr_netsim
open Fbsr_fbs_ip
open Fbsr_fbs_app

let check = Alcotest.check

let make_site () =
  let tb = Testbed.create () in
  let h1 = Testbed.add_plain_host tb ~name:"h1" ~addr:"10.0.0.1" in
  let h2 = Testbed.add_plain_host tb ~name:"h2" ~addr:"10.0.0.2" in
  let group = Testbed.group tb in
  let authority = Testbed.authority tb in
  let rng = Fbsr_util.Rng.create 77 in
  let make_user host name port =
    let private_value = Fbsr_crypto.Dh.gen_private group rng in
    let public = Fbsr_crypto.Dh.public group private_value in
    let (_ : Fbsr_cert.Certificate.t) =
      Fbsr_cert.Authority.enroll authority ~now:0.0 ~subject:name
        ~group:group.Fbsr_crypto.Dh.name
        ~public_value:(Fbsr_crypto.Dh.public_to_bytes group public)
    in
    let mkd =
      Mkd.create ~local_port:(port + 1000) ~ca_addr:(Testbed.ca_addr tb)
        ~ca_port:(Ca_server.port (Testbed.ca_server tb)) host
    in
    App_socket.create ~host ~port
      ~local:(Fbsr_fbs.Principal.of_string name)
      ~group ~private_value
      ~ca_public:(Fbsr_cert.Authority.public authority)
      ~ca_hash:(Fbsr_cert.Authority.hash authority)
      ~resolver:(Mkd.resolver mkd) ()
  in
  let alice = make_user h1 "alice@h1" 9000 in
  let bob = make_user h2 "bob@h2" 9000 in
  (tb, h1, h2, alice, bob)

let test_envelope_roundtrip () =
  let src = Fbsr_fbs.Principal.of_string "user@host" in
  let wire = "some fbs bytes" in
  match App_socket.decode_envelope (App_socket.encode_envelope ~src wire) with
  | Some (name, wire') ->
      check Alcotest.string "name" "user@host" name;
      check Alcotest.string "wire" wire wire'
  | None -> Alcotest.fail "envelope did not parse"

let test_envelope_garbage () =
  check Alcotest.bool "empty" true (App_socket.decode_envelope "" = None);
  check Alcotest.bool "short" true (App_socket.decode_envelope "\x00" = None);
  check Alcotest.bool "truncated name" true
    (App_socket.decode_envelope "\x00\x10abc" = None)

let test_app_exchange () =
  let tb, _, h2, alice, bob = make_site () in
  let got = ref [] in
  App_socket.on_receive bob (fun r ->
      got := (Fbsr_fbs.Principal.to_string r.App_socket.src, r.App_socket.payload) :: !got);
  App_socket.send alice ~dst:(App_socket.local bob) ~dst_addr:(Host.addr h2)
    ~tag:"chat" "hello bob";
  App_socket.send alice ~dst:(App_socket.local bob) ~dst_addr:(Host.addr h2)
    ~tag:"chat" "still me";
  Testbed.run tb;
  check Alcotest.int "both delivered" 2 (List.length !got);
  List.iter
    (fun (src, _) -> check Alcotest.string "authenticated source" "alice@h1" src)
    !got;
  (* Same tag: one flow, one master key. *)
  let fam = Fbsr_fbs.Engine.fam (App_socket.engine alice) in
  check Alcotest.int "one flow" 1 (Fbsr_fbs.Fam.stats fam).Fbsr_fbs.Fam.flows_started

let test_app_tags_separate_flows () =
  let tb, _, h2, alice, bob = make_site () in
  App_socket.on_receive bob (fun _ -> ());
  List.iter
    (fun tag ->
      App_socket.send alice ~dst:(App_socket.local bob) ~dst_addr:(Host.addr h2) ~tag
        (tag ^ " data"))
    [ "video"; "audio"; "whiteboard"; "video" ];
  Testbed.run tb;
  let fam = Fbsr_fbs.Engine.fam (App_socket.engine alice) in
  check Alcotest.int "three flows for three tags" 3
    (Fbsr_fbs.Fam.stats fam).Fbsr_fbs.Fam.flows_started;
  check Alcotest.int "four datagrams" 4 (Fbsr_fbs.Fam.stats fam).Fbsr_fbs.Fam.datagrams

let test_app_quiet_period_rotates_flow () =
  (* The app-tag policy is THRESHOLD-based like the 5-tuple one: a long
     quiet period on the same tag starts a fresh flow (fresh key). *)
  let tb, _, h2, alice, bob = make_site () in
  App_socket.on_receive bob (fun _ -> ());
  let send () =
    App_socket.send alice ~dst:(App_socket.local bob) ~dst_addr:(Host.addr h2)
      ~tag:"chat" "message"
  in
  send ();
  (* Within the 600 s default threshold: same flow. *)
  Engine.schedule (Testbed.engine tb) ~delay:100.0 send;
  (* Past it: new flow. *)
  Engine.schedule (Testbed.engine tb) ~delay:1000.0 send;
  Testbed.run tb;
  let fam = Fbsr_fbs.Engine.fam (App_socket.engine alice) in
  check Alcotest.int "two flows across the quiet period" 2
    (Fbsr_fbs.Fam.stats fam).Fbsr_fbs.Fam.flows_started

let test_app_spoofed_name_rejected () =
  let tb, h1, h2, alice, bob = make_site () in
  ignore h1;
  let got = ref 0 in
  App_socket.on_receive bob (fun _ -> incr got);
  (* Send a genuine datagram, then capture and rewrite the claimed name:
     the MAC is keyed by the alice<->bob master key, so claiming to be
     "mallory@h1" (also enrolled) must fail verification. *)
  let group = Testbed.group tb in
  let rng = Fbsr_util.Rng.create 99 in
  let m_priv = Fbsr_crypto.Dh.gen_private group rng in
  let m_pub = Fbsr_crypto.Dh.public group m_priv in
  let (_ : Fbsr_cert.Certificate.t) =
    Fbsr_cert.Authority.enroll (Testbed.authority tb) ~now:0.0 ~subject:"mallory@h1"
      ~group:group.Fbsr_crypto.Dh.name
      ~public_value:(Fbsr_crypto.Dh.public_to_bytes group m_pub)
  in
  let tap = Fbsr_baselines.Attacks.tap (Testbed.medium tb) in
  App_socket.send alice ~dst:(App_socket.local bob) ~dst_addr:(Host.addr h2)
    ~tag:"chat" "genuine";
  Testbed.run tb;
  check Alcotest.int "genuine delivered" 1 !got;
  (* Find the app datagram and rewrite the envelope name. *)
  let rewritten =
    List.find_map
      (fun (_, raw) ->
        match Ipv4.decode raw with
        | h, ip_payload when h.Ipv4.protocol = Ipv4.proto_udp -> (
            match Udp.decode ~src:h.Ipv4.src ~dst:h.Ipv4.dst ip_payload with
            | uh, udp_payload when uh.Udp.dst_port = 9000 -> (
                match App_socket.decode_envelope udp_payload with
                | Some (_, wire) ->
                    let forged_payload =
                      App_socket.encode_envelope
                        ~src:(Fbsr_fbs.Principal.of_string "mallory@h1") wire
                    in
                    let forged_udp =
                      Udp.encode ~src:h.Ipv4.src ~dst:h.Ipv4.dst
                        ~src_port:uh.Udp.src_port ~dst_port:uh.Udp.dst_port
                        forged_payload
                    in
                    let fh =
                      Ipv4.make ~ident:999 ~protocol:Ipv4.proto_udp ~src:h.Ipv4.src
                        ~dst:h.Ipv4.dst ~payload_length:(String.length forged_udp) ()
                    in
                    Some (Ipv4.encode fh forged_udp)
                | None -> None)
            | _ -> None
            | exception Udp.Bad_datagram _ -> None)
        | _ -> None
        | exception Ipv4.Bad_packet _ -> None)
      (Fbsr_baselines.Attacks.frames tap)
  in
  (match rewritten with
  | Some forged ->
      Fbsr_baselines.Attacks.inject (Testbed.medium tb) forged;
      Testbed.run tb;
      check Alcotest.int "spoofed name rejected" 1 !got;
      check Alcotest.bool "rejection counted" true
        ((App_socket.counters bob).App_socket.rejected >= 1)
  | None -> Alcotest.fail "could not capture app datagram")

let test_app_bidirectional () =
  let tb, h1, h2, alice, bob = make_site () in
  let alice_got = ref [] and bob_got = ref [] in
  App_socket.on_receive bob (fun r ->
      bob_got := r.App_socket.payload :: !bob_got;
      App_socket.send bob ~dst:r.App_socket.src ~dst_addr:r.App_socket.src_addr
        ~dst_port:r.App_socket.src_port ~tag:"chat" ("re: " ^ r.App_socket.payload));
  App_socket.on_receive alice (fun r -> alice_got := r.App_socket.payload :: !alice_got);
  ignore h1;
  App_socket.send alice ~dst:(App_socket.local bob) ~dst_addr:(Host.addr h2)
    ~tag:"chat" "ping";
  Testbed.run tb;
  check Alcotest.(list string) "bob got" [ "ping" ] !bob_got;
  check Alcotest.(list string) "alice got reply" [ "re: ping" ] !alice_got

let () =
  Alcotest.run "fbs_app"
    [
      ( "envelope",
        [
          Alcotest.test_case "roundtrip" `Quick test_envelope_roundtrip;
          Alcotest.test_case "garbage" `Quick test_envelope_garbage;
        ] );
      ( "socket",
        [
          Alcotest.test_case "exchange" `Quick test_app_exchange;
          Alcotest.test_case "tags separate flows" `Quick test_app_tags_separate_flows;
          Alcotest.test_case "quiet period rotates flow" `Quick
            test_app_quiet_period_rotates_flow;
          Alcotest.test_case "spoofed name rejected" `Quick
            test_app_spoofed_name_rejected;
          Alcotest.test_case "bidirectional" `Quick test_app_bidirectional;
        ] );
    ]
