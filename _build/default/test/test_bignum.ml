(* Tests for the arbitrary-precision naturals underlying Diffie-Hellman and
   RSA: ring laws, division invariants, Montgomery exponentiation, modular
   inverse, primality. *)

open Fbsr_bignum

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let nat = Alcotest.testable Nat.pp Nat.equal

(* Generator for naturals of up to ~256 bits. *)
let gen_nat =
  QCheck.Gen.(
    map
      (fun bytes -> Nat.of_bytes_be (String.concat "" (List.map (String.make 1) bytes)))
      (list_size (int_range 0 32) (char_range '\000' '\255')))

let arb_nat = QCheck.make ~print:Nat.to_hex gen_nat

let gen_small = QCheck.Gen.(map Nat.of_int (int_range 0 1_000_000))
let arb_small = QCheck.make ~print:Nat.to_hex gen_small

(* --- Conversions --- *)

let test_of_int () =
  check nat "zero" Nat.zero (Nat.of_int 0);
  check nat "one" Nat.one (Nat.of_int 1);
  check Alcotest.(option int) "roundtrip" (Some 123456789)
    (Nat.to_int_opt (Nat.of_int 123456789));
  check Alcotest.(option int) "max_int" (Some max_int) (Nat.to_int_opt (Nat.of_int max_int));
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)))

let test_hex () =
  check Alcotest.string "to_hex" "deadbeef" (Nat.to_hex (Nat.of_hex "deadbeef"));
  check Alcotest.string "odd digits" "abc" (Nat.to_hex (Nat.of_hex "abc"));
  check Alcotest.string "zero" "0" (Nat.to_hex Nat.zero);
  check nat "leading zeros" (Nat.of_hex "ff") (Nat.of_hex "00000000ff")

let test_decimal () =
  check Alcotest.string "decimal" "0" (Nat.to_string Nat.zero);
  check Alcotest.string "decimal" "123456789012345678901234567890"
    (Nat.to_string (Nat.of_hex "18ee90ff6c373e0ee4e3f0ad2"))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip with padding" ~count:200 arb_nat (fun a ->
      let width = ((Nat.bit_length a + 7) / 8) + 3 in
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be ~length:width a)))

let test_to_bytes_too_narrow () =
  Alcotest.check_raises "too narrow"
    (Invalid_argument "Nat.to_bytes_be: value too wide") (fun () ->
      ignore (Nat.to_bytes_be ~length:1 (Nat.of_hex "10000")))

(* --- Ring laws --- *)

let prop_add_commutative =
  QCheck.Test.make ~name:"a+b = b+a" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_mul_commutative =
  QCheck.Test.make ~name:"a*b = b*a" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_distributive =
  QCheck.Test.make ~name:"(a+b)*c = ac+bc" ~count:200
    (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul (Nat.add a b) c) (Nat.add (Nat.mul a c) (Nat.mul b c)))

let prop_add_sub =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b))

let prop_small_agrees_with_int =
  QCheck.Test.make ~name:"small arithmetic agrees with int" ~count:500
    QCheck.(pair (int_range 0 100000) (int_range 1 100000))
    (fun (a, b) ->
      let na = Nat.of_int a and nb = Nat.of_int b in
      Nat.to_int_opt (Nat.add na nb) = Some (a + b)
      && Nat.to_int_opt (Nat.mul na nb) = Some (a * b)
      && Nat.to_int_opt (Nat.div na nb) = Some (a / b)
      && Nat.to_int_opt (Nat.rem na nb) = Some (a mod b))

(* --- Division --- *)

let prop_divmod_invariant =
  QCheck.Test.make ~name:"a = q*b + r, r < b" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let test_div_by_zero () =
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod Nat.one Nat.zero))

(* --- Shifts and bits --- *)

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift left then right" ~count:200
    QCheck.(pair arb_nat (int_range 0 100))
    (fun (a, k) -> Nat.equal a (Nat.shift_right (Nat.shift_left a k) k))

let prop_shift_is_mul =
  QCheck.Test.make ~name:"shift_left = mul by 2^k" ~count:200
    QCheck.(pair arb_nat (int_range 0 64))
    (fun (a, k) ->
      Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.shift_left Nat.one k)))

let test_bit_length () =
  check Alcotest.int "0" 0 (Nat.bit_length Nat.zero);
  check Alcotest.int "1" 1 (Nat.bit_length Nat.one);
  check Alcotest.int "255" 8 (Nat.bit_length (Nat.of_int 255));
  check Alcotest.int "256" 9 (Nat.bit_length (Nat.of_int 256));
  check Alcotest.int "2^100" 101 (Nat.bit_length (Nat.shift_left Nat.one 100))

let prop_testbit =
  QCheck.Test.make ~name:"testbit matches shift" ~count:200
    QCheck.(pair arb_nat (int_range 0 120))
    (fun (a, i) ->
      Nat.testbit a i = not (Nat.is_zero (Nat.rem (Nat.shift_right a i) Nat.two)))

(* --- Modular exponentiation --- *)

let naive_mod_pow base e m =
  let result = ref (Nat.rem Nat.one m) in
  for i = Nat.bit_length e - 1 downto 0 do
    result := Nat.rem (Nat.mul !result !result) m;
    if Nat.testbit e i then result := Nat.rem (Nat.mul !result base) m
  done;
  !result

let prop_mod_pow_vs_naive =
  QCheck.Test.make ~name:"Montgomery mod_pow = naive" ~count:50
    QCheck.(triple arb_small arb_small arb_small)
    (fun (base, e, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0);
      (* Force odd modulus to exercise the Montgomery path. *)
      let m = if Nat.testbit m 0 then m else Nat.add m Nat.one in
      Nat.equal (Nat.mod_pow base e m) (naive_mod_pow base e m))

let prop_mod_pow_even_modulus =
  QCheck.Test.make ~name:"mod_pow handles even modulus" ~count:50
    QCheck.(triple arb_small arb_small arb_small)
    (fun (base, e, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0);
      let m = if Nat.testbit m 0 then Nat.add m Nat.one else m in
      Nat.equal (Nat.mod_pow base e m) (naive_mod_pow base e m))

let test_fermat () =
  (* a^(p-1) = 1 mod p for prime p not dividing a. *)
  let p = Nat.of_int 1_000_000_007 in
  List.iter
    (fun a ->
      let r = Nat.mod_pow (Nat.of_int a) (Nat.sub p Nat.one) p in
      check Alcotest.bool "fermat" true (Nat.is_one r))
    [ 2; 3; 12345; 999999937 ]

let test_mod_pow_large () =
  (* 2^(2^16) mod a 128-bit odd modulus, cross-checked with the naive
     square-and-reduce loop. *)
  let m = Nat.of_hex "f0000000000000000000000000000001" in
  let e = Nat.shift_left Nat.one 16 in
  check nat "large modexp" (naive_mod_pow Nat.two e m) (Nat.mod_pow Nat.two e m)

(* --- Modular inverse and gcd --- *)

let prop_mod_inv =
  QCheck.Test.make ~name:"a * inv(a) = 1 mod m" ~count:200
    QCheck.(pair arb_small arb_small)
    (fun (a, m) ->
      QCheck.assume (Nat.compare m Nat.two > 0 && not (Nat.is_zero (Nat.rem a m)));
      QCheck.assume (Nat.is_one (Nat.gcd a m));
      let inv = Nat.mod_inv a m in
      Nat.is_one (Nat.rem (Nat.mul (Nat.rem a m) inv) m))

let test_mod_inv_no_inverse () =
  Alcotest.check_raises "no inverse" Not_found (fun () ->
      ignore (Nat.mod_inv (Nat.of_int 6) (Nat.of_int 9)))

let prop_gcd =
  QCheck.Test.make ~name:"gcd divides both" ~count:200 (QCheck.pair arb_small arb_small)
    (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero a) || not (Nat.is_zero b));
      let g = Nat.gcd a b in
      (Nat.is_zero a || Nat.is_zero (Nat.rem a g))
      && (Nat.is_zero b || Nat.is_zero (Nat.rem b g)))

(* --- Primality --- *)

let test_known_primes () =
  let rng = Fbsr_util.Rng.create 55 in
  List.iter
    (fun p ->
      check Alcotest.bool (string_of_int p) true
        (Nat.is_probably_prime rng (Nat.of_int p)))
    [ 2; 3; 5; 7; 104729; 1_000_000_007; 2147483647 ]

let test_known_composites () =
  let rng = Fbsr_util.Rng.create 56 in
  (* Includes Carmichael numbers, which fool the Fermat test but not
     Miller-Rabin. *)
  List.iter
    (fun n ->
      check Alcotest.bool (string_of_int n) false
        (Nat.is_probably_prime rng (Nat.of_int n)))
    [ 1; 4; 561; 1105; 6601; 41041; 104730 ]

let test_mersenne61 () =
  let rng = Fbsr_util.Rng.create 57 in
  check Alcotest.bool "2^61-1 prime" true
    (Nat.is_probably_prime rng (Nat.of_hex "1fffffffffffffff"))

let test_random_prime () =
  let rng = Fbsr_util.Rng.create 58 in
  List.iter
    (fun bits ->
      let p = Nat.random_prime rng ~bits in
      check Alcotest.int "exact bit length" bits (Nat.bit_length p);
      check Alcotest.bool "is prime" true (Nat.is_probably_prime rng p);
      check Alcotest.bool "is odd" true (Nat.testbit p 0))
    [ 8; 16; 64; 128 ]

let prop_random_below =
  QCheck.Test.make ~name:"random_below in range" ~count:100
    QCheck.(pair small_int arb_small)
    (fun (seed, bound) ->
      QCheck.assume (not (Nat.is_zero bound));
      let rng = Fbsr_util.Rng.create seed in
      Nat.compare (Nat.random_below rng bound) bound < 0)

let () =
  Alcotest.run "bignum"
    [
      ( "conversions",
        [
          Alcotest.test_case "of_int" `Quick test_of_int;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "decimal" `Quick test_decimal;
          Alcotest.test_case "narrow bytes" `Quick test_to_bytes_too_narrow;
          qtest prop_bytes_roundtrip;
        ] );
      ( "ring",
        [
          qtest prop_add_commutative;
          qtest prop_mul_commutative;
          qtest prop_distributive;
          qtest prop_add_sub;
          qtest prop_small_agrees_with_int;
        ] );
      ( "division",
        [ Alcotest.test_case "by zero" `Quick test_div_by_zero; qtest prop_divmod_invariant ] );
      ( "bits",
        [
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          qtest prop_shift_roundtrip;
          qtest prop_shift_is_mul;
          qtest prop_testbit;
        ] );
      ( "mod-pow",
        [
          Alcotest.test_case "fermat" `Quick test_fermat;
          Alcotest.test_case "large" `Quick test_mod_pow_large;
          qtest prop_mod_pow_vs_naive;
          qtest prop_mod_pow_even_modulus;
        ] );
      ( "inverse-gcd",
        [
          Alcotest.test_case "no inverse" `Quick test_mod_inv_no_inverse;
          qtest prop_mod_inv;
          qtest prop_gcd;
        ] );
      ( "primality",
        [
          Alcotest.test_case "known primes" `Quick test_known_primes;
          Alcotest.test_case "known composites (incl. Carmichael)" `Quick
            test_known_composites;
          Alcotest.test_case "mersenne 61" `Quick test_mersenne61;
          Alcotest.test_case "random primes" `Quick test_random_prime;
          qtest prop_random_below;
        ] );
    ]
