(* Arbitrary-precision natural numbers.

   Representation: little-endian array of 26-bit limbs (base 2^26), with no
   trailing zero limbs ("normalized").  26-bit limbs keep every intermediate
   product and carry comfortably inside OCaml's 63-bit native int:
   limb*limb < 2^52, and schoolbook accumulation adds at most a few more
   bits.  This module is the substrate for Diffie-Hellman and RSA in the
   crypto library; performance-sensitive modular exponentiation goes through
   the Montgomery context below. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1
let limb_base = 1 lsl limb_bits

type t = int array (* invariant: normalized, each limb in [0, 2^26) *)

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
  Array.of_list (limbs v)

let to_int_opt (a : t) =
  (* Max int is 62 bits: three limbs always fit (78 bits do not), so check. *)
  let n = Array.length a in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v = ref 0 in
    let ok = ref true in
    for i = n - 1 downto 0 do
      if !v > max_int lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let is_one a = equal a one

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + msb top 0
  end

let testbit (a : t) i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + limb_base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry (it can be up to 27 bits wide). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left (a : t) k : t =
  if k < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right (a : t) k : t =
  if k < 0 then invalid_arg "Nat.shift_right: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Binary long division.  O(bits(a) * limbs(b)); divisions are rare on hot
   paths (modular exponentiation uses Montgomery reduction instead), so the
   simple, obviously-correct algorithm wins over Knuth's Algorithm D. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let bits_a = bit_length a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = bits_a - 1 downto 0 do
      r := shift_left !r 1;
      if testbit a i then r := add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Conversions. *)

let of_bytes_be (s : string) : t =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?length (a : t) : string =
  let nbytes = (bit_length a + 7) / 8 in
  let width =
    match length with
    | None -> max nbytes 1
    | Some w ->
        if w < nbytes then invalid_arg "Nat.to_bytes_be: value too wide";
        w
  in
  let out = Bytes.make width '\000' in
  let rec fill v i =
    if not (is_zero v) && i >= 0 then begin
      let q, r = (shift_right v 8, rem v (of_int 256)) in
      let byte = match to_int_opt r with Some x -> x | None -> assert false in
      Bytes.set out i (Char.chr byte);
      fill q (i - 1)
    end
  in
  fill a (width - 1);
  Bytes.unsafe_to_string out

let of_hex s = of_bytes_be (Fbsr_util.Hex.decode (if String.length s mod 2 = 1 then "0" ^ s else s))

let to_hex (a : t) =
  let s = Fbsr_util.Hex.encode (to_bytes_be a) in
  (* Strip leading zeros but keep at least one digit. *)
  let n = String.length s in
  let i = ref 0 in
  while !i < n - 1 && s.[!i] = '0' do
    incr i
  done;
  String.sub s !i (n - !i)

let pp ppf a = Fmt.pf ppf "0x%s" (to_hex a)

let to_string a =
  (* Decimal, for small display needs. *)
  if is_zero a then "0"
  else begin
    let ten = of_int 10 in
    let buf = Buffer.create 32 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v ten in
        go q;
        let d = match to_int_opt r with Some x -> x | None -> assert false in
        Buffer.add_char buf (Char.chr (Char.code '0' + d))
      end
    in
    go a;
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Montgomery modular arithmetic.                                      *)
(* ------------------------------------------------------------------ *)

module Mont = struct
  type ctx = {
    m : int array; (* modulus limbs, length n, m odd *)
    n : int;
    m' : int; (* -m^{-1} mod 2^26 *)
    r2 : t; (* R^2 mod m, R = 2^(26n) *)
    m_nat : t;
  }

  (* Inverse of an odd value mod 2^26 by Newton/Hensel lifting. *)
  let inv_limb m0 =
    let x = ref 1 in
    for _ = 1 to 5 do
      x := !x * (2 - (m0 * !x)) land limb_mask
    done;
    !x land limb_mask

  let make (m_nat : t) : ctx =
    if is_zero m_nat || m_nat.(0) land 1 = 0 then
      invalid_arg "Nat.Mont.make: modulus must be odd and positive";
    let n = Array.length m_nat in
    let m = Array.copy m_nat in
    let m' = limb_base - inv_limb m.(0) in
    let r = shift_left one (limb_bits * n) in
    let r2 = rem (mul r r) m_nat in
    { m; n; m'; r2; m_nat }

  (* Montgomery product: returns a*b*R^{-1} mod m.  Inputs are limb arrays
     of length <= n (logical value < m). *)
  let mont_mul ctx (a : int array) (b : int array) : int array =
    let n = ctx.n in
    let m = ctx.m and m' = ctx.m' in
    let t = Array.make (n + 2) 0 in
    let la = Array.length a and lb = Array.length b in
    for i = 0 to n - 1 do
      let ai = if i < la then a.(i) else 0 in
      (* t += ai * b *)
      let c = ref 0 in
      for j = 0 to n - 1 do
        let bj = if j < lb then b.(j) else 0 in
        let s = t.(j) + (ai * bj) + !c in
        t.(j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      let s = t.(n) + !c in
      t.(n) <- s land limb_mask;
      t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
      (* u = t0 * m' mod base; t += u * m; t >>= limb_bits *)
      let u = t.(0) * m' land limb_mask in
      let c = ref 0 in
      for j = 0 to n - 1 do
        let s = t.(j) + (u * m.(j)) + !c in
        t.(j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      let s = t.(n) + !c in
      t.(n) <- s land limb_mask;
      t.(n + 1) <- t.(n + 1) + (s lsr limb_bits);
      (* shift down one limb; t.(0) is now zero by construction *)
      for j = 0 to n do
        t.(j) <- t.(j + 1)
      done;
      t.(n + 1) <- 0
    done;
    let res = normalize (Array.sub t 0 (n + 1)) in
    if compare res ctx.m_nat >= 0 then sub res ctx.m_nat else res

  let to_mont ctx a = mont_mul ctx a ctx.r2
  let from_mont ctx a = mont_mul ctx a one

  (* Left-to-right square-and-multiply with 4-bit windows. *)
  let pow ctx (base : t) (e : t) : t =
    if is_zero e then rem one ctx.m_nat
    else begin
      let base = rem base ctx.m_nat in
      let bm = to_mont ctx base in
      (* Precompute bm^0..bm^15 in Montgomery form. *)
      let table = Array.make 16 [||] in
      table.(0) <- to_mont ctx one;
      for i = 1 to 15 do
        table.(i) <- mont_mul ctx table.(i - 1) bm
      done;
      let bits = bit_length e in
      (* Process exponent in 4-bit windows from the top. *)
      let nwin = (bits + 3) / 4 in
      let acc = ref table.(0) in
      for w = nwin - 1 downto 0 do
        for _ = 1 to 4 do
          acc := mont_mul ctx !acc !acc
        done;
        let nib =
          (if testbit e ((4 * w) + 3) then 8 else 0)
          lor (if testbit e ((4 * w) + 2) then 4 else 0)
          lor (if testbit e ((4 * w) + 1) then 2 else 0)
          lor if testbit e (4 * w) then 1 else 0
        in
        if nib <> 0 then acc := mont_mul ctx !acc table.(nib)
      done;
      from_mont ctx !acc
    end
end

let mod_pow base e m =
  if is_zero m then raise Division_by_zero;
  if is_one m then zero
  else if not (is_zero m) && m.(0) land 1 = 1 then Mont.pow (Mont.make m) base e
  else begin
    (* Even modulus: fall back to plain square-and-multiply with division.
       Rare (only tests exercise it) and still correct. *)
    let base = ref (rem base m) in
    let result = ref (rem one m) in
    for i = 0 to bit_length e - 1 do
      if testbit e i then result := rem (mul !result !base) m;
      base := rem (mul !base !base) m
    done;
    !result
  end

(* Modular inverse via extended Euclid with signed cofactors. *)

type signed = { neg : bool; mag : t }

let s_of_nat mag = { neg = false; mag }

let s_add a b =
  if a.neg = b.neg then { neg = a.neg; mag = add a.mag b.mag }
  else if compare a.mag b.mag >= 0 then { neg = a.neg; mag = sub a.mag b.mag }
  else { neg = b.neg; mag = sub b.mag a.mag }

let s_neg a = { a with neg = (not a.neg) }
let s_sub a b = s_add a (s_neg b)
let s_mul_nat a n = { a with mag = mul a.mag n }

let mod_inv a m =
  if is_zero m then raise Division_by_zero;
  let a = rem a m in
  if is_zero a then raise Not_found;
  (* Maintain r = old_r - q*r and the s cofactors. *)
  let old_r = ref m and r = ref a in
  let old_s = ref (s_of_nat zero) and s = ref (s_of_nat one) in
  while not (is_zero !r) do
    let q, rm = divmod !old_r !r in
    old_r := !r;
    r := rm;
    let tmp = s_sub !old_s (s_mul_nat !s q) in
    old_s := !s;
    s := tmp
  done;
  if not (is_one !old_r) then raise Not_found;
  (* old_s is the cofactor of [a]: a*old_s ≡ 1 (mod m). *)
  let cofactor = !old_s in
  let v = rem cofactor.mag m in
  if cofactor.neg && not (is_zero v) then sub m v else v

(* Random values and probabilistic primality. *)

let random rng ~bits =
  if bits <= 0 then invalid_arg "Nat.random: bits must be positive";
  let nbytes = (bits + 7) / 8 in
  let s = Bytes.of_string (Fbsr_util.Rng.bytes rng nbytes) in
  (* Clear excess high bits. *)
  let excess = (8 * nbytes) - bits in
  if excess > 0 then begin
    let mask = 0xff lsr excess in
    Bytes.set s 0 (Char.chr (Char.code (Bytes.get s 0) land mask))
  end;
  of_bytes_be (Bytes.unsafe_to_string s)

let random_below rng bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let bits = bit_length bound in
  let rec go () =
    let v = random rng ~bits in
    if compare v bound < 0 then v else go ()
  in
  go ()

let is_probably_prime ?(rounds = 20) rng n =
  if compare n two < 0 then false
  else if equal n two then true
  else if n.(0) land 1 = 0 then false
  else begin
    (* Write n-1 = d * 2^s. *)
    let n1 = sub n one in
    let s = ref 0 and d = ref n1 in
    while not (testbit !d 0) do
      d := shift_right !d 1;
      incr s
    done;
    let ctx = Mont.make n in
    let witness a =
      (* true iff a witnesses compositeness *)
      let x = ref (Mont.pow ctx a !d) in
      if is_one !x || equal !x n1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to !s - 1 do
             x := rem (mul !x !x) n;
             if equal !x n1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec rounds_left k =
      if k = 0 then true
      else begin
        let a = add two (random_below rng (sub n (of_int 4))) in
        if witness a then false else rounds_left (k - 1)
      end
    in
    if compare n (of_int 5) < 0 then true else rounds_left rounds
  end

let rec random_prime ?(rounds = 20) rng ~bits =
  if bits < 2 then invalid_arg "Nat.random_prime: need at least 2 bits";
  let cand = random rng ~bits in
  (* Force top and bottom bits so the size is exact and the value is odd. *)
  let cand =
    if testbit cand (bits - 1) then cand else add cand (shift_left one (bits - 1))
  in
  let cand = if testbit cand 0 then cand else add cand one in
  if bit_length cand = bits && is_probably_prime ~rounds rng cand then cand
  else random_prime ~rounds rng ~bits
