lib/bignum/nat.mli: Fbsr_util Format
