lib/bignum/nat.ml: Array Buffer Bytes Char Fbsr_util Fmt Stdlib String
