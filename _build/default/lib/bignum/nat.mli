(** Arbitrary-precision natural numbers on 26-bit limbs.

    This is the arithmetic substrate for Diffie-Hellman zero-message keying
    and RSA certificate signatures.  Modular exponentiation uses Montgomery
    reduction for odd moduli (every real-world DH/RSA modulus). *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [Some v] iff the value fits a native int. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val bit_length : t -> int
val testbit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** Quotient and remainder. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val gcd : t -> t -> t

val mod_pow : t -> t -> t -> t
(** [mod_pow base e m] is [base]{^[e]} mod [m].  Montgomery-accelerated for
    odd [m]. *)

val mod_inv : t -> t -> t
(** [mod_inv a m] is the inverse of [a] modulo [m].
    @raise Not_found if [gcd a m <> 1]. *)

(** Montgomery context for repeated exponentiations modulo the same odd
    modulus (as in a Diffie-Hellman group). *)
module Mont : sig
  type ctx

  val make : t -> ctx
  (** @raise Invalid_argument unless the modulus is odd and positive. *)

  val pow : ctx -> t -> t -> t
end

val of_bytes_be : string -> t
val to_bytes_be : ?length:int -> t -> string
(** Big-endian bytes; [?length] left-pads with zeros to a fixed width.
    @raise Invalid_argument if the value does not fit in [length]. *)

val of_hex : string -> t
val to_hex : t -> string
val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit

val random : Fbsr_util.Rng.t -> bits:int -> t
(** Uniform value with at most [bits] bits. *)

val random_below : Fbsr_util.Rng.t -> t -> t
(** Uniform in [0, bound). *)

val is_probably_prime : ?rounds:int -> Fbsr_util.Rng.t -> t -> bool
(** Miller-Rabin with [rounds] random witnesses (default 20). *)

val random_prime : ?rounds:int -> Fbsr_util.Rng.t -> bits:int -> t
(** Random prime with exactly [bits] bits (top bit set). *)
