(* Small statistics toolkit used by the flow-characteristic experiments
   (Figures 9-14): summaries, histograms, CDFs and time series binning. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

let summary xs =
  let n = Array.length xs in
  if n = 0 then { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; total = 0. }
  else begin
    let total = Array.fold_left ( +. ) 0.0 xs in
    let mean = total /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
      /. float_of_int n
    in
    let mn = Array.fold_left min xs.(0) xs in
    let mx = Array.fold_left max xs.(0) xs in
    { count = n; mean; stddev = sqrt var; min = mn; max = mx; total }
  end

let percentile xs p =
  (* Nearest-rank percentile on a copy; p in [0,100]. *)
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let median xs = percentile xs 50.0

(* Cumulative distribution: sorted (value, fraction <= value) points,
   deduplicated on value. *)
let cdf xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let points = ref [] in
    for i = n - 1 downto 0 do
      let frac = float_of_int (i + 1) /. float_of_int n in
      match !points with
      | (v, _) :: _ when v = sorted.(i) -> ()
      | _ -> points := (sorted.(i), frac) :: !points
    done;
    !points
  end

(* Logarithmic histogram: buckets [base^k, base^{k+1}). *)
type log_histogram = {
  base : float;
  buckets : (float * float * int) list; (* lo, hi, count *)
}

let log_histogram ?(base = 2.0) xs =
  if base <= 1.0 then invalid_arg "Stats.log_histogram: base must exceed 1";
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun x ->
      let k =
        if x <= 0.0 then min_int
        else int_of_float (floor (log x /. log base +. 1e-9))
      in
      Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    xs;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let keys = List.sort compare keys in
  let buckets =
    List.map
      (fun k ->
        let lo = if k = min_int then 0.0 else base ** float_of_int k in
        let hi = if k = min_int then 1.0 else base ** float_of_int (k + 1) in
        (lo, hi, Hashtbl.find tbl k))
      keys
  in
  { base; buckets }

(* Time series binning: given (time, value) events, count or sum per bin. *)
let bin_count ~bin ~t_end events =
  if bin <= 0.0 then invalid_arg "Stats.bin_count: bin must be positive";
  let n = int_of_float (ceil (t_end /. bin)) in
  let bins = Array.make (max n 1) 0 in
  List.iter
    (fun t ->
      if t >= 0.0 && t < t_end then begin
        let i = int_of_float (t /. bin) in
        if i >= 0 && i < Array.length bins then bins.(i) <- bins.(i) + 1
      end)
    events;
  bins

let mean_int xs =
  if xs = [] then 0.0
  else
    float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

(* Render helpers for the experiment harness. *)

let pp_cdf ppf points =
  List.iter (fun (v, f) -> Fmt.pf ppf "%12.2f  %6.4f@." v f) points

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f stddev=%.2f min=%.2f max=%.2f total=%.2f"
    s.count s.mean s.stddev s.min s.max s.total
