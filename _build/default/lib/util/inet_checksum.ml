(* The Internet checksum (RFC 1071): one's-complement sum of 16-bit words.
   Used by the simulated IPv4 and UDP codecs. *)

let sum ?(acc = 0) s pos len =
  let acc = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    acc := !acc + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code s.[!i] lsl 8);
  (* Fold carries. *)
  let a = ref !acc in
  while !a lsr 16 <> 0 do
    a := (!a land 0xffff) + (!a lsr 16)
  done;
  !a

let finish acc = lnot acc land 0xffff

let string s = finish (sum s 0 (String.length s))

let verify s = sum s 0 (String.length s) = 0xffff
