(** Big-endian byte reader with bounds checking.

    Wire decoders raise {!Truncated} on short input so that protocol code can
    treat malformed packets as an expected error rather than a programming
    bug. *)

exception Truncated

type t

val of_string : ?pos:int -> ?len:int -> string -> t
val remaining : t -> int
val position : t -> int

val u8 : t -> int
val u16 : t -> int
val u32 : t -> int32
val u32_int : t -> int
val u64 : t -> int64
val bytes : t -> int -> string
val rest : t -> string
val skip : t -> int -> unit
