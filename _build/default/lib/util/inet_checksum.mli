(** Internet checksum (RFC 1071), used by the IPv4/UDP codecs. *)

val sum : ?acc:int -> string -> int -> int -> int
(** Running one's-complement 16-bit sum with carries folded.  Chain partial
    sums by passing the previous result as [acc]. *)

val finish : int -> int
(** One's complement of the folded sum: the checksum field value. *)

val string : string -> int
(** Checksum of a whole buffer (with the checksum field zeroed). *)

val verify : string -> bool
(** [verify s] is true iff the buffer including its checksum field sums to
    0xffff. *)
