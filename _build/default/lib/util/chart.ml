(* Minimal ASCII charts for the experiment harness, so `fbs-experiments`
   output reads like the paper's figures rather than bare tables. *)

let bar width frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let n = int_of_float (frac *. float_of_int width) in
  String.make n '#' ^ String.make (width - n) ' '

(* Horizontal bars, one per labeled value, scaled to the maximum. *)
let hbar ?(width = 42) ppf items =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 items in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
  in
  List.iter
    (fun (label, v) ->
      Fmt.pf ppf "%-*s |%s %g@." label_width label (bar width (v /. vmax)) v)
    items

(* A y-over-x line chart drawn with rows of characters (top row = max). *)
let timeseries ?(width = 64) ?(height = 12) ppf ~x_label ~y_label (ys : float array) =
  let n = Array.length ys in
  if n = 0 then Fmt.pf ppf "(empty series)@."
  else begin
    let vmax = Array.fold_left Float.max 0.0 ys in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    (* Downsample/average into [width] columns. *)
    let cols = min width n in
    let col_value c =
      let lo = c * n / cols and hi = max (((c + 1) * n / cols) - 1) (c * n / cols) in
      let sum = ref 0.0 in
      for i = lo to hi do
        sum := !sum +. ys.(i)
      done;
      !sum /. float_of_int (hi - lo + 1)
    in
    let values = Array.init cols col_value in
    Fmt.pf ppf "%s@." y_label;
    for row = height downto 1 do
      let lo = float_of_int (row - 1) /. float_of_int height *. vmax in
      Fmt.pf ppf "%8.0f |" (float_of_int row /. float_of_int height *. vmax);
      Array.iter (fun v -> Fmt.pf ppf "%c" (if v > lo then '*' else ' ')) values;
      Fmt.pf ppf "@."
    done;
    Fmt.pf ppf "%8s +%s@." "" (String.make cols '-');
    Fmt.pf ppf "%8s  %s@." "" x_label
  end
