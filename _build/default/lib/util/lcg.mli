(** Linear congruential generator (Knuth MMIX parameters).

    The paper's recommended generator for per-datagram confounders:
    statistically random, very cheap, not cryptographically secure. *)

type t

val create : int -> t
val next_int64 : t -> int64
val next_u32 : t -> int
(** High 32 bits of the next state — the strongest bits of an LCG. *)

val next_block : t -> int -> string
(** [next_block t n] is [n] bytes of generator output. *)
