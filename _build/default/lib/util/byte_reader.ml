(* Big-endian byte reader over an immutable string, with bounds checking.
   All wire decoders raise [Truncated] rather than Invalid_argument so that
   protocol code can treat short packets as a normal error condition. *)

exception Truncated

type t = { src : string; mutable pos : int; limit : int }

let of_string ?(pos = 0) ?len src =
  let limit =
    match len with None -> String.length src | Some l -> pos + l
  in
  if pos < 0 || limit > String.length src || pos > limit then
    invalid_arg "Byte_reader.of_string: bad bounds";
  { src; pos; limit }

let remaining t = t.limit - t.pos
let position t = t.pos
let check t n = if t.pos + n > t.limit then raise Truncated

let u8 t =
  check t 1;
  let v = Char.code t.src.[t.pos] in
  t.pos <- t.pos + 1;
  v

let u16 t =
  check t 2;
  let v = (Char.code t.src.[t.pos] lsl 8) lor Char.code t.src.[t.pos + 1] in
  t.pos <- t.pos + 2;
  v

let u32 t =
  check t 4;
  let b i = Int32.of_int (Char.code t.src.[t.pos + i]) in
  let v =
    Int32.logor
      (Int32.shift_left (b 0) 24)
      (Int32.logor
         (Int32.shift_left (b 1) 16)
         (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  in
  t.pos <- t.pos + 4;
  v

let u32_int t =
  check t 4;
  let b i = Char.code t.src.[t.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  t.pos <- t.pos + 4;
  v

let u64 t =
  check t 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code t.src.[t.pos + i]))
  done;
  t.pos <- t.pos + 8;
  !v

let bytes t n =
  if n < 0 then invalid_arg "Byte_reader.bytes: negative length";
  check t n;
  let s = String.sub t.src t.pos n in
  t.pos <- t.pos + n;
  s

let rest t = bytes t (remaining t)

let skip t n =
  if n < 0 then invalid_arg "Byte_reader.skip: negative length";
  check t n;
  t.pos <- t.pos + n
