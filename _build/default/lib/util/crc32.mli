(** CRC-32 (IEEE 802.3, reflected).

    Used both as a checksum and, per Section 5.3 of the paper, as the
    randomising hash for cache indexing of correlated keys. *)

val string : string -> int
(** [string s] is the CRC-32 of [s] as a non-negative int in [0, 2^32). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] continues a running CRC over [s.[pos..pos+len-1]].
    Start from [0]. *)

val update_byte : int -> int -> int
(** Fold one byte (low 8 bits) into a running CRC. *)

val update_int32 : int -> int -> int
(** Fold the low 32 bits of an int, big-endian byte order. *)

val update_int64 : int -> int64 -> int
(** Fold a 64-bit value, big-endian byte order. *)
