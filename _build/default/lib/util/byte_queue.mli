(** FIFO byte queue with random-access reads (mini-TCP send buffer). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> string -> unit
val drop : t -> int -> unit
(** Drop [n] bytes from the front. *)

val read : t -> off:int -> len:int -> string
(** Read a range relative to the current front, without consuming. *)
