(** ASCII charts for the experiment harness. *)

val bar : int -> float -> string
(** [bar width frac] is a [width]-character bar filled to [frac] in [0,1]. *)

val hbar : ?width:int -> Format.formatter -> (string * float) list -> unit
(** Labeled horizontal bars scaled to the maximum value. *)

val timeseries :
  ?width:int ->
  ?height:int ->
  Format.formatter ->
  x_label:string ->
  y_label:string ->
  float array ->
  unit
(** Character line chart of a series, downsampled to [width] columns. *)
