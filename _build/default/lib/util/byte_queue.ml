(* A FIFO byte queue over string chunks with O(1) amortized append and
   drop-from-front, and random-access reads relative to the current head.
   Used by the mini-TCP send buffer: acknowledged bytes are dropped from the
   front while retransmission may re-read any unacknowledged range. *)

type t = {
  mutable chunks : string list; (* oldest first *)
  mutable tail : string list; (* newest first; reversed lazily *)
  mutable head_off : int; (* bytes consumed from the first chunk *)
  mutable length : int;
}

let create () = { chunks = []; tail = []; head_off = 0; length = 0 }

let length t = t.length
let is_empty t = t.length = 0

let push t s =
  if String.length s > 0 then begin
    t.tail <- s :: t.tail;
    t.length <- t.length + String.length s
  end

let normalize t =
  if t.chunks = [] && t.tail <> [] then begin
    t.chunks <- List.rev t.tail;
    t.tail <- []
  end

let rec drop t n =
  if n < 0 then invalid_arg "Byte_queue.drop: negative";
  if n > t.length then invalid_arg "Byte_queue.drop: more than length";
  if n > 0 then begin
    normalize t;
    match t.chunks with
    | [] -> assert false
    | c :: rest ->
        let avail = String.length c - t.head_off in
        if n >= avail then begin
          t.chunks <- rest;
          t.head_off <- 0;
          t.length <- t.length - avail;
          drop t (n - avail)
        end
        else begin
          t.head_off <- t.head_off + n;
          t.length <- t.length - n
        end
  end

let read t ~off ~len =
  if off < 0 || len < 0 || off + len > t.length then
    invalid_arg "Byte_queue.read: out of bounds";
  let out = Bytes.create len in
  let written = ref 0 in
  let skip = ref (t.head_off + off) in
  let consume chunk =
    if !written < len then begin
      let clen = String.length chunk in
      if !skip >= clen then skip := !skip - clen
      else begin
        let take = min (clen - !skip) (len - !written) in
        Bytes.blit_string chunk !skip out !written take;
        written := !written + take;
        skip := 0
      end
    end
  in
  List.iter consume t.chunks;
  List.iter consume (List.rev t.tail);
  assert (!written = len);
  Bytes.unsafe_to_string out
