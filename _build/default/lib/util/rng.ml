(* Deterministic pseudo-random number generator for the simulator and the
   synthetic workload generator.

   The core is splitmix64, which has excellent statistical quality for
   simulation purposes and is trivially seedable, making every experiment
   reproducible from a single integer seed.  It is NOT a cryptographic
   generator; the cryptographic generator (Blum-Blum-Shub) lives in the
   crypto library. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9e3779b97f4a7c15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34) (* 30 bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits t land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec go () =
      let r = bits t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then go () else v
    in
    go ()
  end

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 bits of mantissa from two draws. *)
  let hi = bits t land 0x3ffffff in
  (* 26 bits *)
  let lo = bits t land 0x7ffffff in
  (* 27 bits *)
  let f = (float_of_int hi *. 134217728.0 +. float_of_int lo) /. 9007199254740992.0 in
  f *. x

let bool t = bits t land 1 = 1

let uniform t = float t 1.0

let exponential t mean =
  let u = ref (uniform t) in
  while !u = 0.0 do
    u := uniform t
  done;
  -.mean *. log !u

let pareto t ~shape ~scale =
  let u = ref (uniform t) in
  while !u = 0.0 do
    u := uniform t
  done;
  scale /. (!u ** (1.0 /. shape))

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  Bytes.unsafe_to_string b

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_weighted t items =
  (* items: (weight, value) list with positive total weight. *)
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: nonpositive weight";
  let x = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0.0 items

let split t =
  (* Derive an independent stream; the constant decorrelates the child. *)
  create (Int64.to_int (next_int64 t))
