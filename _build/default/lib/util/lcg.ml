(* Linear congruential generator.

   Section 5.3 of the paper: "a confounder needs only be statistically
   random, as opposed to cryptographically random.  For example, the
   confounder can be generated using the highly efficient linear
   congruential generators [Knuth]."

   We use the MMIX multiplier from Knuth TAOCP vol. 2 with a 64-bit state
   and return the high 32 bits, which are the strongest bits of an LCG. *)

type t = { mutable state : int64 }

let multiplier = 6364136223846793005L
let increment = 1442695040888963407L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add (Int64.mul t.state multiplier) increment;
  t.state

let next_u32 t =
  (* High 32 bits of the 64-bit state. *)
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 32) land 0xffffffff

let next_block t n =
  (* n bytes of LCG output, used when a cipher block sized confounder is
     needed (the paper duplicates the 32-bit confounder for DES's 64-bit
     IV; [Fbs.Header] does that explicitly). *)
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = next_u32 t in
    let take = min 4 (n - !i) in
    for j = 0 to take - 1 do
      Bytes.set b (!i + j) (Char.chr ((v lsr (24 - (8 * j))) land 0xff))
    done;
    i := !i + take
  done;
  Bytes.unsafe_to_string b
