(** Deterministic simulation PRNG (splitmix64 core).

    Every experiment in this repository is reproducible from an integer seed.
    Not cryptographically secure — see [Fbsr_crypto.Bbs] for that. *)

type t

val create : int -> t
val copy : t -> t
val split : t -> t
(** Derive an independent child stream. *)

val next_int64 : t -> int64
val bits : t -> int
(** 30 uniform random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Heavy-tailed Pareto draw, >= [scale]. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)

val choose : t -> 'a array -> 'a
val choose_weighted : t -> (float * 'a) list -> 'a
