(** Statistics toolkit for the flow-characteristic experiments. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

val summary : float array -> summary
val percentile : float array -> float -> float
(** Nearest-rank percentile, [p] in [0,100]. *)

val median : float array -> float

val cdf : float array -> (float * float) list
(** Sorted (value, fraction of samples <= value) points. *)

type log_histogram = {
  base : float;
  buckets : (float * float * int) list;  (** (lo, hi, count) *)
}

val log_histogram : ?base:float -> float array -> log_histogram

val bin_count : bin:float -> t_end:float -> float list -> int array
(** Count events per time bin over [0, t_end). *)

val mean_int : int list -> float

val pp_cdf : Format.formatter -> (float * float) list -> unit
val pp_summary : Format.formatter -> summary -> unit
