(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]. *)

val decode : string -> string
(** [decode h] parses a hexadecimal string back into bytes.  Spaces and
    newlines in [h] are ignored, so RFC-style grouped vectors can be pasted
    verbatim.  @raise Invalid_argument on non-hex input or odd length. *)

val pp : Format.formatter -> string -> unit
(** Pretty-print a byte string as hex. *)
