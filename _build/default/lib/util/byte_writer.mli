(** Growable big-endian (network byte order) byte writer. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int

val u8 : t -> int -> unit
(** Append one byte (low 8 bits of the argument). *)

val u16 : t -> int -> unit
(** Append a 16-bit big-endian value. *)

val u32 : t -> int32 -> unit
(** Append a 32-bit big-endian value. *)

val u32_int : t -> int -> unit
(** Append the low 32 bits of a native int, big-endian. *)

val u64 : t -> int64 -> unit
(** Append a 64-bit big-endian value. *)

val bytes : t -> string -> unit
(** Append a raw byte string. *)

val contents : t -> string
(** Snapshot of everything written so far. *)

val to_string : t -> string
(** Alias for {!contents}. *)
