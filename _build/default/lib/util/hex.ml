(* Hexadecimal encoding and decoding of byte strings. *)

let hex_digits = "0123456789abcdef"

let encode (s : string) : string =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) hex_digits.[b lsr 4];
    Bytes.set out ((2 * i) + 1) hex_digits.[b land 0xf]
  done;
  Bytes.unsafe_to_string out

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode (s : string) : string =
  (* Whitespace is tolerated so that test vectors can be written in the
     grouped style used by RFCs and FIPS publications. *)
  let compact = String.concat "" (String.split_on_char ' ' s) in
  let compact = String.concat "" (String.split_on_char '\n' compact) in
  let n = String.length compact in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd-length input";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = digit_value compact.[2 * i] in
    let lo = digit_value compact.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string out

let pp ppf s = Fmt.string ppf (encode s)
