lib/util/inet_checksum.ml: Char String
