lib/util/lcg.mli:
