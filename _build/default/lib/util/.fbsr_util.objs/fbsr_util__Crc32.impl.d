lib/util/crc32.ml: Array Char Int64 Lazy String
