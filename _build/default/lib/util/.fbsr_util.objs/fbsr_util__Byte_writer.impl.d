lib/util/byte_writer.ml: Bytes Char Int32 Int64 String
