lib/util/byte_queue.ml: Bytes List String
