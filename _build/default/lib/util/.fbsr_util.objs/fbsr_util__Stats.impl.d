lib/util/stats.ml: Array Fmt Hashtbl List
