lib/util/lcg.ml: Bytes Char Int64
