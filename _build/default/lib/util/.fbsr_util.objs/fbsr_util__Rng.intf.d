lib/util/rng.mli:
