lib/util/byte_reader.ml: Char Int32 Int64 String
