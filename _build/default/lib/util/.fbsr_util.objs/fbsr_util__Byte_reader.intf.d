lib/util/byte_reader.mli:
