lib/util/hex.ml: Bytes Char Fmt String
