lib/util/byte_writer.mli:
