lib/util/byte_queue.mli:
