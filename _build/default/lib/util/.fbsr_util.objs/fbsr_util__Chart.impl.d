lib/util/chart.ml: Array Float Fmt List String
