(* CRC-32 (IEEE 802.3 polynomial, reflected).  The paper (Section 5.3)
   recommends CRC-32 as the randomising hash for indexing the key caches,
   because cache inputs (local addresses, sequential sfl values) are highly
   correlated and simple modulo/XOR hashing would cluster them. *)

let polynomial = 0xedb88320

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := polynomial lxor (!c lsr 1)
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let update crc s pos len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let string s = update 0 s 0 (String.length s)

(* Hash helpers used by the cache modules: fold small integers through the
   CRC without building an intermediate string. *)

let update_byte crc b =
  let t = Lazy.force table in
  let c = crc lxor 0xffffffff in
  let c = t.((c lxor (b land 0xff)) land 0xff) lxor (c lsr 8) in
  c lxor 0xffffffff

let update_int32 crc v =
  let crc = update_byte crc (v lsr 24) in
  let crc = update_byte crc (v lsr 16) in
  let crc = update_byte crc (v lsr 8) in
  update_byte crc v

let update_int64 crc (v : int64) =
  let hi = Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff in
  let lo = Int64.to_int (Int64.logand v 0xffffffffL) in
  update_int32 (update_int32 crc hi) lo
