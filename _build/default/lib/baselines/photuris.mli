(** Session keying without a third party (paper Section 2.1): a
    Photuris/Oakley-style baseline — cookie exchange, ephemeral DH, hard
    session state, two setup round trips before the first datagram. *)

open Fbsr_netsim

val port : int

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
  mutable handshakes : int;
  mutable setup_messages : int;
  mutable modexps : int;
}

type t

val install :
  ?secret:bool ->
  ?bypass:(Addr.t -> bool) ->
  ?seed:int ->
  group:Fbsr_crypto.Dh.group ->
  Host.t ->
  t
(** The host must already have a UDP stack installed. *)

val counters : t -> counters
val sessions_out : t -> int
val sessions_in : t -> int
val has_long_term_secrets : t -> bool

(** Exposed for tests: *)

type error = Truncated | Unknown_association | Bad_mac | Decrypt_error

val unprotect : t -> wire:string -> (string, error) result
