(** Attack harness (the Section 6 adversary): capture, replay,
    cut-and-paste, corruption. *)

open Fbsr_netsim

type capture

val tap : Medium.t -> capture
val frames : capture -> (float * string) list
val clear : capture -> unit
val matching : capture -> pred:(float * string -> bool) -> (float * string) list
val between : capture -> src:Addr.t -> dst:Addr.t -> (float * string) list

val inject : Medium.t -> string -> unit
val replay : Medium.t -> string -> unit

val splice_fbs : header_from:string -> body_from:string -> string option
(** A's IP + FBS header with B's protected body (cross-flow cut-and-paste). *)

val splice_hostpair : envelope_from:string -> body_from:string -> string option
(** B's protected payload in A's IP envelope (same host pair). *)

val flip_byte : offset:int -> string -> string
(** Flip one bit, repairing the IP checksum so the corruption reaches the
    security layer. *)
