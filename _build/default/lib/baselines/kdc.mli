(** Session-based keying baseline: Kerberos-style KDC with tickets (paper
    Section 2.1).  Demonstrates the explicit setup exchange and hard
    session state that FBS's zero-message keying avoids. *)

open Fbsr_netsim

val kdc_port : int

module Server : sig
  type t

  val install : ?ticket_lifetime:float -> ?seed:int -> Host.t -> t
  (** The host must already have a UDP stack installed. *)

  val enroll : t -> name:string -> string
  (** Register a principal; returns the shared DES key (out-of-band
      provisioning). *)

  val tickets_issued : t -> int
end

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
  mutable kdc_requests : int;
  mutable sessions : int;
}

type t

val install :
  ?secret:bool ->
  ?bypass:(Addr.t -> bool) ->
  ?local_port:int ->
  kdc_addr:Addr.t ->
  shared_key:string ->
  Host.t ->
  t

val counters : t -> counters
val sessions_out : t -> int
val sessions_in : t -> int

(** Exposed for tests: *)

type error = Truncated | Bad_ticket | Expired | Bad_mac | Decrypt_error

val unprotect : t -> now:float -> wire:string -> (string, error) result
