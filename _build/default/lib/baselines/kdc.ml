(* Session-based keying baseline (paper, Section 2.1): a Kerberos-style
   key distribution center.

   "Before a source sends a datagram, it contacts the KDC to request a
   session key and an authentication ticket.  The ticket, encrypted with
   the destination's secret key, allows the destination (and only the
   destination) to authenticate and decrypt transmissions from the source."

   This baseline exists to make the paper's argument concrete: the KDC
   round trip happens *before the first datagram can leave* (an explicit
   setup exchange), and both ends hold hard session state.  After setup its
   per-packet costs are comparable to FBS — which is exactly the paper's
   point: flows give you the efficiency without the setup.

   Each enrolled host shares a DES key with the KDC (out of band).

   KDC protocol (UDP):
     request:  "KREQ" u16 len | destination name
     response: "KRSP" u16 n | E(K_client, Ks || expiry)
                      u16 m | ticket = E(K_dst, Ks || src || expiry)
     failure:  "KFAI" u16 len | message

   Data packets (between IP header and payload):
     u8 flags | u16 ticket_len | ticket | 8B iv | 16B mac | body        *)

open Fbsr_netsim
open Fbsr_util

let kdc_port = 88
let zero_iv = String.make 8 '\000'
let mac_len = 16

(* --- KDC server --- *)

module Server = struct
  type t = {
    host : Host.t;
    registry : (string, string) Hashtbl.t; (* host name -> shared DES key *)
    rng : Fbsr_util.Rng.t;
    ticket_lifetime : float;
    mutable tickets_issued : int;
  }

  let enroll t ~name =
    let key = Fbsr_crypto.Des.adjust_parity (Fbsr_util.Rng.bytes t.rng 8) in
    Hashtbl.replace t.registry name key;
    key

  let session_blob ~session_key ~extra ~expiry =
    let w = Byte_writer.create () in
    Byte_writer.bytes w session_key;
    Byte_writer.u16 w (String.length extra);
    Byte_writer.bytes w extra;
    Byte_writer.u64 w (Int64.of_float expiry);
    Byte_writer.contents w

  let handle t ~src ~src_port raw =
    let r = Byte_reader.of_string raw in
    match
      let magic = Byte_reader.bytes r 4 in
      let len = Byte_reader.u16 r in
      let dst_name = Byte_reader.bytes r len in
      (magic, dst_name)
    with
    | exception Byte_reader.Truncated -> ()
    | magic, dst_name when magic = "KREQ" -> (
        let src_name = Addr.to_string src in
        let reply =
          match
            (Hashtbl.find_opt t.registry src_name, Hashtbl.find_opt t.registry dst_name)
          with
          | Some k_client, Some k_dst ->
              let session_key =
                Fbsr_crypto.Des.adjust_parity (Fbsr_util.Rng.bytes t.rng 8)
              in
              let expiry = Host.now t.host +. t.ticket_lifetime in
              let for_client =
                Fbsr_crypto.Des.encrypt_cbc ~iv:zero_iv
                  (Fbsr_crypto.Des.of_string k_client)
                  (session_blob ~session_key ~extra:dst_name ~expiry)
              in
              let ticket =
                Fbsr_crypto.Des.encrypt_cbc ~iv:zero_iv
                  (Fbsr_crypto.Des.of_string k_dst)
                  (session_blob ~session_key ~extra:src_name ~expiry)
              in
              t.tickets_issued <- t.tickets_issued + 1;
              let w = Byte_writer.create () in
              Byte_writer.bytes w "KRSP";
              Byte_writer.u16 w (String.length for_client);
              Byte_writer.bytes w for_client;
              Byte_writer.u16 w (String.length ticket);
              Byte_writer.bytes w ticket;
              Byte_writer.contents w
          | _ ->
              let msg = "unknown principal" in
              let w = Byte_writer.create () in
              Byte_writer.bytes w "KFAI";
              Byte_writer.u16 w (String.length msg);
              Byte_writer.bytes w msg;
              Byte_writer.contents w
        in
        Udp_stack.send t.host ~src_port:kdc_port ~dst:src ~dst_port:src_port reply)
    | _ -> ()

  let install ?(ticket_lifetime = 8.0 *. 3600.0) ?(seed = 0xadc1) host =
    let t =
      {
        host;
        registry = Hashtbl.create 16;
        rng = Fbsr_util.Rng.create seed;
        ticket_lifetime;
        tickets_issued = 0;
      }
    in
    Udp_stack.listen host ~port:kdc_port (fun ~src ~src_port raw ->
        handle t ~src ~src_port raw);
    t

  let tickets_issued t = t.tickets_issued
end

(* --- Client/receiver stack --- *)

type session = { session_key : string; ticket : string; expiry : float }

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
  mutable kdc_requests : int;
  mutable sessions : int;
}

type t = {
  host : Host.t;
  kdc_addr : Addr.t;
  shared_key : string; (* our key with the KDC *)
  secret : bool;
  bypass : Addr.t -> bool;
  outgoing : (string, session) Hashtbl.t; (* dst name -> session (hard state) *)
  incoming : (string, session) Hashtbl.t; (* ticket -> session (hard state) *)
  pending : (string, (Ipv4.header * string) list ref) Hashtbl.t;
  iv_gen : Lcg.t;
  counters : counters;
  local_port : int;
}

let parse_session_blob blob =
  let r = Byte_reader.of_string blob in
  let session_key = Byte_reader.bytes r 8 in
  let len = Byte_reader.u16 r in
  let extra = Byte_reader.bytes r len in
  let expiry = Int64.to_float (Byte_reader.u64 r) in
  (session_key, extra, expiry)

let compute_mac ~key parts = Fbsr_crypto.Mac.prefix Fbsr_crypto.Hash.md5 ~key parts

let protect t session payload =
  let iv = Lcg.next_block t.iv_gen 8 in
  let dk = Fbsr_crypto.Des.of_string session.session_key in
  let body = if t.secret then Fbsr_crypto.Des.encrypt_cbc ~iv dk payload else payload in
  let mac = compute_mac ~key:session.session_key [ iv; body ] in
  let w = Byte_writer.create () in
  Byte_writer.u8 w (if t.secret then 1 else 0);
  Byte_writer.u16 w (String.length session.ticket);
  Byte_writer.bytes w session.ticket;
  Byte_writer.bytes w iv;
  Byte_writer.bytes w mac;
  Byte_writer.bytes w body;
  Byte_writer.contents w

let transmit_with_session t session (h : Ipv4.header) payload =
  Host.transmit_prepared t.host h (protect t session payload)

let request_session t dst_name =
  t.counters.kdc_requests <- t.counters.kdc_requests + 1;
  let w = Byte_writer.create () in
  Byte_writer.bytes w "KREQ";
  Byte_writer.u16 w (String.length dst_name);
  Byte_writer.bytes w dst_name;
  Udp_stack.send t.host ~src_port:t.local_port ~dst:t.kdc_addr ~dst_port:kdc_port
    (Byte_writer.contents w)

let handle_kdc_reply t raw =
  let r = Byte_reader.of_string raw in
  match Byte_reader.bytes r 4 with
  | exception Byte_reader.Truncated -> ()
  | "KRSP" -> (
      match
        let n = Byte_reader.u16 r in
        let for_client = Byte_reader.bytes r n in
        let m = Byte_reader.u16 r in
        let ticket = Byte_reader.bytes r m in
        (for_client, ticket)
      with
      | exception Byte_reader.Truncated -> ()
      | for_client, ticket -> (
          match
            parse_session_blob
              (Fbsr_crypto.Des.decrypt_cbc ~iv:zero_iv
                 (Fbsr_crypto.Des.of_string t.shared_key)
                 for_client)
          with
          | exception _ -> ()
          | session_key, dst_name, expiry -> (
              let session = { session_key; ticket; expiry } in
              Hashtbl.replace t.outgoing dst_name session;
              t.counters.sessions <- t.counters.sessions + 1;
              (* Flush datagrams parked on this destination. *)
              match Hashtbl.find_opt t.pending dst_name with
              | None -> ()
              | Some queue ->
                  Hashtbl.remove t.pending dst_name;
                  List.iter
                    (fun (h, payload) ->
                      t.counters.sent <- t.counters.sent + 1;
                      transmit_with_session t session h payload)
                    (List.rev !queue))))
  | "KFAI" | _ -> ()

let output_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.bypass h.dst || Addr.equal h.dst t.kdc_addr then Host.Pass (h, payload)
  else begin
    let dst_name = Addr.to_string h.dst in
    match Hashtbl.find_opt t.outgoing dst_name with
    | Some session when session.expiry > Host.now t.host ->
        t.counters.sent <- t.counters.sent + 1;
        Host.Pass (h, protect t session payload)
    | Some _ | None -> (
        (* Session setup required before the first datagram can leave:
           the explicit message exchange FBS avoids. *)
        match Hashtbl.find_opt t.pending dst_name with
        | Some queue ->
            queue := (h, payload) :: !queue;
            Host.Drop "kdc awaiting session"
        | None ->
            Hashtbl.replace t.pending dst_name (ref [ (h, payload) ]);
            request_session t dst_name;
            Host.Drop "kdc awaiting session")
  end

type error = Truncated | Bad_ticket | Expired | Bad_mac | Decrypt_error

let unprotect t ~now ~wire =
  let r = Byte_reader.of_string wire in
  match
    let flags = Byte_reader.u8 r in
    let n = Byte_reader.u16 r in
    let ticket = Byte_reader.bytes r n in
    let iv = Byte_reader.bytes r 8 in
    let mac = Byte_reader.bytes r mac_len in
    let body = Byte_reader.rest r in
    (flags, ticket, iv, mac, body)
  with
  | exception Byte_reader.Truncated -> Error Truncated
  | flags, ticket, iv, mac, body -> (
      let session =
        match Hashtbl.find_opt t.incoming ticket with
        | Some s -> Ok s
        | None -> (
            match
              parse_session_blob
                (Fbsr_crypto.Des.decrypt_cbc ~iv:zero_iv
                   (Fbsr_crypto.Des.of_string t.shared_key)
                   ticket)
            with
            | exception _ -> Error Bad_ticket
            | session_key, _src_name, expiry ->
                let s = { session_key; ticket; expiry } in
                Hashtbl.replace t.incoming ticket s;
                t.counters.sessions <- t.counters.sessions + 1;
                Ok s)
      in
      match session with
      | Error e -> Error e
      | Ok session ->
          if session.expiry < now then Error Expired
          else if
            not (Fbsr_crypto.Ct.equal mac (compute_mac ~key:session.session_key [ iv; body ]))
          then Error Bad_mac
          else if flags land 1 = 1 then begin
            let dk = Fbsr_crypto.Des.of_string session.session_key in
            match Fbsr_crypto.Des.decrypt_cbc ~iv dk body with
            | plaintext -> Ok plaintext
            | exception Invalid_argument _ -> Error Decrypt_error
          end
          else Ok body)

let input_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.bypass h.src || Addr.equal h.src t.kdc_addr then Host.Pass (h, payload)
  else
    match unprotect t ~now:(Host.now t.host) ~wire:payload with
    | Ok plaintext ->
        t.counters.received <- t.counters.received + 1;
        Host.Pass
          ( { h with Ipv4.total_length = Ipv4.header_length h + String.length plaintext },
            plaintext )
    | Error _ ->
        t.counters.dropped <- t.counters.dropped + 1;
        Host.Drop "kdc verification failed"

let install ?(secret = true) ?(bypass = fun _ -> false) ?(local_port = 900) ~kdc_addr
    ~shared_key host =
  let t =
    {
      host;
      kdc_addr;
      shared_key;
      secret;
      bypass;
      outgoing = Hashtbl.create 8;
      incoming = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      iv_gen = Lcg.create (Addr.to_int (Host.addr host));
      counters = { sent = 0; received = 0; dropped = 0; kdc_requests = 0; sessions = 0 };
      local_port;
    }
  in
  Udp_stack.listen host ~port:local_port (fun ~src ~src_port:_ raw ->
      if Addr.equal src kdc_addr then handle_kdc_reply t raw);
  Host.set_output_hook host (output_hook t);
  Host.set_input_hook host (input_hook t);
  (* Worst case wire growth: flags+len+ticket(~32)+iv+mac+padding. *)
  Minitcp.set_mss_reduction host (3 + 32 + 8 + mac_len + 8);
  t

let counters t = t.counters
let sessions_out t = Hashtbl.length t.outgoing
let sessions_in t = Hashtbl.length t.incoming
