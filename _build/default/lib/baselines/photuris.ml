(* Session-based keying without a third party (paper, Section 2.1):
   a Photuris/Oakley-style baseline.

   "In session-based keying without a third party, a dynamic key exchange
   is performed between the source and destination principals.  This
   establishes a shared secret, which can be used to derive a session
   key.  The session key is stored as part of the security association,
   and is used in securing ensuing communications."

   The protocol here is deliberately minimal but structurally faithful to
   Photuris (the paper's [11]): a cookie exchange to damp flooding, then
   an ephemeral Diffie-Hellman exchange, then data under the derived
   session key.  The costs the paper attributes to this class are all
   visible: TWO round trips of setup messages before the first datagram
   can leave, per-peer hard state on both ends, and ephemeral modular
   exponentiations per session.  (In exchange the scheme has perfect
   forward secrecy, which Section 6.1 concedes no zero-message scheme can
   offer — our tests assert both halves of that trade.)

   Handshake (UDP port 468, Photuris's own):
     C->S  "PHC1" cookie_c
     S->C  "PHC2" cookie_c cookie_s
     C->S  "PHK1" cookie_c cookie_s g^x
     S->C  "PHK2" cookie_s g^y
   Session key = MD5(g^xy).  Data packets (between IP header and payload):
     u8 flags | 8B cookie_c | 8B iv | 16B mac | body                     *)

open Fbsr_netsim
open Fbsr_util

let port = 468
let mac_len = 16

type session = {
  session_key : string;
  cookie : string; (* the initiator cookie identifies the association *)
  peer : Addr.t;
}

type pending = {
  mutable cookie_c : string;
  mutable cookie_s : string option;
  mutable private_value : Fbsr_crypto.Dh.private_value option;
  mutable queue : (Ipv4.header * string) list;
}

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
  mutable handshakes : int;
  mutable setup_messages : int; (* wire messages spent on key exchange *)
  mutable modexps : int;
}

type t = {
  host : Host.t;
  group : Fbsr_crypto.Dh.group;
  rng : Rng.t;
  secret : bool;
  bypass : Addr.t -> bool;
  outgoing : (int, session) Hashtbl.t; (* peer addr -> session *)
  incoming : (string, session) Hashtbl.t; (* initiator cookie -> session *)
  pending : (int, pending) Hashtbl.t;
  iv_gen : Lcg.t;
  counters : counters;
}

let msg tag parts =
  let w = Byte_writer.create () in
  Byte_writer.bytes w tag;
  List.iter
    (fun p ->
      Byte_writer.u16 w (String.length p);
      Byte_writer.bytes w p)
    parts;
  Byte_writer.contents w

let parse_msg raw =
  let r = Byte_reader.of_string raw in
  try
    let tag = Byte_reader.bytes r 4 in
    let parts = ref [] in
    while Byte_reader.remaining r > 0 do
      let len = Byte_reader.u16 r in
      parts := Byte_reader.bytes r len :: !parts
    done;
    Some (tag, List.rev !parts)
  with Byte_reader.Truncated -> None

let send_handshake t ~dst payload =
  t.counters.setup_messages <- t.counters.setup_messages + 1;
  Udp_stack.send t.host ~src_port:port ~dst ~dst_port:port payload

let session_key_of_shared shared = Fbsr_crypto.Md5.digest shared

let compute_mac ~key parts = Fbsr_crypto.Mac.prefix Fbsr_crypto.Hash.md5 ~key parts

let protect t session payload =
  let iv = Lcg.next_block t.iv_gen 8 in
  let dk =
    Fbsr_crypto.Des.of_string
      (Fbsr_crypto.Des.adjust_parity (String.sub session.session_key 0 8))
  in
  let body = if t.secret then Fbsr_crypto.Des.encrypt_cbc ~iv dk payload else payload in
  let mac = compute_mac ~key:session.session_key [ iv; body ] in
  let w = Byte_writer.create () in
  Byte_writer.u8 w (if t.secret then 1 else 0);
  Byte_writer.bytes w session.cookie;
  Byte_writer.bytes w iv;
  Byte_writer.bytes w mac;
  Byte_writer.bytes w body;
  Byte_writer.contents w

type error = Truncated | Unknown_association | Bad_mac | Decrypt_error

let unprotect t ~wire =
  let r = Byte_reader.of_string wire in
  match
    let flags = Byte_reader.u8 r in
    let cookie = Byte_reader.bytes r 8 in
    let iv = Byte_reader.bytes r 8 in
    let mac = Byte_reader.bytes r mac_len in
    let body = Byte_reader.rest r in
    (flags, cookie, iv, mac, body)
  with
  | exception Byte_reader.Truncated -> Error Truncated
  | flags, cookie, iv, mac, body -> (
      match Hashtbl.find_opt t.incoming cookie with
      | None -> Error Unknown_association
      | Some session ->
          if not (Fbsr_crypto.Ct.equal mac (compute_mac ~key:session.session_key [ iv; body ]))
          then Error Bad_mac
          else if flags land 1 = 1 then begin
            let dk =
              Fbsr_crypto.Des.of_string
                (Fbsr_crypto.Des.adjust_parity (String.sub session.session_key 0 8))
            in
            match Fbsr_crypto.Des.decrypt_cbc ~iv dk body with
            | plaintext -> Ok plaintext
            | exception Invalid_argument _ -> Error Decrypt_error
          end
          else Ok body)

let flush_pending t ~dst session =
  match Hashtbl.find_opt t.pending (Addr.to_int dst) with
  | None -> ()
  | Some p ->
      Hashtbl.remove t.pending (Addr.to_int dst);
      List.iter
        (fun (h, payload) ->
          t.counters.sent <- t.counters.sent + 1;
          Host.transmit_prepared t.host h (protect t session payload))
        (List.rev p.queue)

let handle_handshake t ~src raw =
  match parse_msg raw with
  | None -> ()
  | Some ("PHC1", [ cookie_c ]) ->
      (* Responder: reflect the cookie pair; still stateless. *)
      let cookie_s = Rng.bytes t.rng 8 in
      send_handshake t ~dst:src (msg "PHC2" [ cookie_c; cookie_s ])
  | Some ("PHC2", [ cookie_c; cookie_s ]) -> (
      (* Initiator: cookies agreed; send our ephemeral public value. *)
      match Hashtbl.find_opt t.pending (Addr.to_int src) with
      | Some p when p.cookie_c = cookie_c ->
          p.cookie_s <- Some cookie_s;
          let x = Fbsr_crypto.Dh.gen_private t.group t.rng in
          p.private_value <- Some x;
          t.counters.modexps <- t.counters.modexps + 1;
          let gx = Fbsr_crypto.Dh.public_to_bytes t.group (Fbsr_crypto.Dh.public t.group x) in
          send_handshake t ~dst:src (msg "PHK1" [ cookie_c; cookie_s; gx ])
      | _ -> ())
  | Some ("PHK1", [ cookie_c; _cookie_s; gx ]) ->
      (* Responder: compute the shared secret, answer with our value, and
         install the inbound association (hard state). *)
      let y = Fbsr_crypto.Dh.gen_private t.group t.rng in
      t.counters.modexps <- t.counters.modexps + 2;
      let gy = Fbsr_crypto.Dh.public_to_bytes t.group (Fbsr_crypto.Dh.public t.group y) in
      let shared =
        Fbsr_crypto.Dh.shared_bytes t.group y (Fbsr_crypto.Dh.public_of_bytes gx)
      in
      let session =
        { session_key = session_key_of_shared shared; cookie = cookie_c; peer = src }
      in
      Hashtbl.replace t.incoming cookie_c session;
      t.counters.handshakes <- t.counters.handshakes + 1;
      send_handshake t ~dst:src (msg "PHK2" [ cookie_c; gy ])
  | Some ("PHK2", [ cookie_c; gy ]) -> (
      (* Initiator: finish; install the outbound association and drain the
         datagrams parked behind the handshake. *)
      match Hashtbl.find_opt t.pending (Addr.to_int src) with
      | Some p when p.cookie_c = cookie_c -> (
          match p.private_value with
          | Some x ->
              t.counters.modexps <- t.counters.modexps + 1;
              let shared =
                Fbsr_crypto.Dh.shared_bytes t.group x
                  (Fbsr_crypto.Dh.public_of_bytes gy)
              in
              let session =
                { session_key = session_key_of_shared shared; cookie = cookie_c;
                  peer = src }
              in
              Hashtbl.replace t.outgoing (Addr.to_int src) session;
              flush_pending t ~dst:src session
          | None -> ())
      | _ -> ())
  | Some _ -> ()

let start_handshake t ~dst =
  let p =
    { cookie_c = Rng.bytes t.rng 8; cookie_s = None; private_value = None; queue = [] }
  in
  Hashtbl.replace t.pending (Addr.to_int dst) p;
  send_handshake t ~dst (msg "PHC1" [ p.cookie_c ]);
  p

(* The handshake's own UDP messages must bypass the data-protection hooks
   (the same circularity the FBS secure-flow bypass solves). *)
let is_handshake ~(h : Ipv4.header) payload =
  h.Ipv4.protocol = Ipv4.proto_udp
  && String.length payload >= 4
  && (let sp = (Char.code payload.[0] lsl 8) lor Char.code payload.[1] in
      let dp = (Char.code payload.[2] lsl 8) lor Char.code payload.[3] in
      sp = port || dp = port)

let output_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.bypass h.dst || is_handshake ~h payload then Host.Pass (h, payload)
  else begin
    match Hashtbl.find_opt t.outgoing (Addr.to_int h.dst) with
    | Some session ->
        t.counters.sent <- t.counters.sent + 1;
        Host.Pass (h, protect t session payload)
    | None -> (
        (* Two round trips of setup must finish before this datagram can
           leave — the cost FBS's zero-message keying removes. *)
        match Hashtbl.find_opt t.pending (Addr.to_int h.dst) with
        | Some p ->
            p.queue <- (h, payload) :: p.queue;
            Host.Drop "photuris awaiting handshake"
        | None ->
            let p = start_handshake t ~dst:h.dst in
            p.queue <- (h, payload) :: p.queue;
            Host.Drop "photuris awaiting handshake")
  end

let input_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.bypass h.src || is_handshake ~h payload then Host.Pass (h, payload)
  else
    match unprotect t ~wire:payload with
    | Ok plaintext ->
        t.counters.received <- t.counters.received + 1;
        Host.Pass
          ( { h with Ipv4.total_length = Ipv4.header_length h + String.length plaintext },
            plaintext )
    | Error _ ->
        t.counters.dropped <- t.counters.dropped + 1;
        Host.Drop "photuris verification failed"

let install ?(secret = true) ?(bypass = fun _ -> false) ?(seed = 0x9047) ~group host =
  let t =
    {
      host;
      group;
      rng = Rng.create (seed lxor Addr.to_int (Host.addr host));
      secret;
      bypass;
      outgoing = Hashtbl.create 8;
      incoming = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      iv_gen = Lcg.create (Addr.to_int (Host.addr host) lxor 0x1234);
      counters =
        { sent = 0; received = 0; dropped = 0; handshakes = 0; setup_messages = 0;
          modexps = 0 };
    }
  in
  Udp_stack.listen host ~port (fun ~src ~src_port:_ raw -> handle_handshake t ~src raw);
  Host.set_output_hook host (output_hook t);
  Host.set_input_hook host (input_hook t);
  Minitcp.set_mss_reduction host (1 + 8 + 8 + mac_len + 8);
  t

let counters t = t.counters
let sessions_out t = Hashtbl.length t.outgoing
let sessions_in t = Hashtbl.length t.incoming

(* Perfect forward secrecy probe for tests: after the handshake, the
   ephemeral private values are gone — all that remains per session is the
   symmetric session key, which compromising a *long-term* key cannot
   recover.  We expose the session-key table size only; there is no
   long-term key at all in this scheme, which is the strongest possible
   form of the Section 6.1 contrast. *)
let has_long_term_secrets (_ : t) = false
