(** Host-pair keying baseline (SKIP-style, paper Section 2.2): implicit DH
    master key per host pair, used directly ([Direct], with that scheme's
    cut-and-paste weakness) or to wrap BBS-generated per-datagram keys
    ([Per_datagram], paying the CSPRNG cost the paper cites). *)

open Fbsr_netsim

type variant = Direct | Per_datagram

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
  mutable bbs_bytes : int;
}

type t

val install :
  ?variant:variant ->
  ?secret:bool ->
  ?bypass:(Addr.t -> bool) ->
  ?bbs_modulus_bits:int ->
  private_value:Fbsr_crypto.Dh.private_value ->
  group:Fbsr_crypto.Dh.group ->
  ca_public:Fbsr_crypto.Rsa.public_key ->
  ca_hash:Fbsr_crypto.Hash.t ->
  resolver:Fbsr_fbs.Keying.resolver ->
  Host.t ->
  t

val counters : t -> counters
val keying : t -> Fbsr_fbs.Keying.t
val variant : t -> variant
val header_size : variant -> int

(** Exposed for the attack harness and tests: *)

type error = Truncated | Bad_variant | Bad_mac | Decrypt_error

val protect : t -> master:string -> payload:string -> string
val unprotect : t -> master:string -> wire:string -> (string, error) result
