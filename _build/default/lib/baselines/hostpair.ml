(* Host-pair keying baseline (paper, Section 2.2) — the SKIP-style scheme
   FBS is compared against in Section 7.4.

   Every pair of hosts shares an implicit Diffie-Hellman master key; no
   setup messages, no hard state — but the unit of protection is the host
   pair, not the flow.  Two variants, both from Section 2.2:

   - [Direct]: the master key encrypts the traffic directly.  This is the
     scheme with the known weaknesses the paper lists: compromise of the
     master key exposes *all* traffic between the two hosts (past and
     future), and "basic host-pair keying can suffer from a cut-and-paste
     attack" — any datagram's ciphertext can be spliced into any other
     datagram between the same hosts, because they all share one key.
     (A MAC keyed by the same shared key still verifies after the splice.)

   - [Per_datagram]: the master key encrypts a fresh per-datagram key which
     encrypts the data.  Fixes cut-and-paste across datagrams, but the
     per-datagram keys must be cryptographically random — so this variant
     honestly pays for a Blum-Blum-Shub draw per datagram, the bottleneck
     the paper cites ("cryptographically secure random number generators
     such as the quadratic residue generator can be a performance
     bottleneck").

   Wire format between IP header and payload:
     u8 variant | u8 flags | 8B iv | [8B encrypted datagram key] | 16B mac
   MAC = keyed MD5 over iv | (wire key field) | body, keyed by the master
   key (Direct) or the datagram key (Per_datagram). *)

open Fbsr_netsim

type variant = Direct | Per_datagram

let variant_code = function Direct -> 1 | Per_datagram -> 2
let variant_of_code = function 1 -> Some Direct | 2 -> Some Per_datagram | _ -> None

let mac_len = 16
let header_size variant = 2 + 8 + (match variant with Direct -> 0 | Per_datagram -> 8) + mac_len

type counters = {
  mutable sent : int;
  mutable received : int;
  mutable dropped : int;
  mutable bbs_bytes : int; (* cryptographically-random bytes drawn *)
}

type t = {
  host : Host.t;
  keying : Fbsr_fbs.Keying.t; (* reused for implicit DH master keys *)
  variant : variant;
  secret : bool;
  bbs : Fbsr_crypto.Bbs.t; (* per-datagram key source *)
  iv_gen : Fbsr_util.Lcg.t;
  counters : counters;
  bypass : Addr.t -> bool;
}

let principal_of_addr addr = Fbsr_fbs.Principal.of_string (Addr.to_string addr)

let master_key_des master =
  Fbsr_crypto.Des.adjust_parity (String.sub (Fbsr_crypto.Md5.digest master) 0 8)

let compute_mac ~key parts =
  Fbsr_crypto.Mac.prefix Fbsr_crypto.Hash.md5 ~key parts

let protect t ~master ~payload =
  let iv = Fbsr_util.Lcg.next_block t.iv_gen 8 in
  match t.variant with
  | Direct ->
      let key = master_key_des master in
      let dk = Fbsr_crypto.Des.of_string key in
      let body =
        if t.secret then Fbsr_crypto.Des.encrypt_cbc ~iv dk payload else payload
      in
      let mac = compute_mac ~key [ iv; body ] in
      let flags = if t.secret then 1 else 0 in
      Printf.sprintf "%c%c" (Char.chr (variant_code Direct)) (Char.chr flags)
      ^ iv ^ mac ^ body
  | Per_datagram ->
      (* Fresh cryptographically random datagram key (BBS), wrapped under
         the master key. *)
      let datagram_key = Fbsr_crypto.Bbs.bytes t.bbs 8 in
      t.counters.bbs_bytes <- t.counters.bbs_bytes + 8;
      let wrap_key = Fbsr_crypto.Des.of_string (master_key_des master) in
      let wrapped = Fbsr_crypto.Des.encrypt_block_bytes wrap_key datagram_key in
      let dk = Fbsr_crypto.Des.of_string (Fbsr_crypto.Des.adjust_parity datagram_key) in
      let body =
        if t.secret then Fbsr_crypto.Des.encrypt_cbc ~iv dk payload else payload
      in
      let mac = compute_mac ~key:datagram_key [ iv; wrapped; body ] in
      let flags = if t.secret then 1 else 0 in
      Printf.sprintf "%c%c" (Char.chr (variant_code Per_datagram)) (Char.chr flags)
      ^ iv ^ wrapped ^ mac ^ body

type error = Truncated | Bad_variant | Bad_mac | Decrypt_error

let unprotect (_ : t) ~master ~wire =
  let open Fbsr_util in
  let r = Byte_reader.of_string wire in
  match
    let variant = Byte_reader.u8 r in
    let flags = Byte_reader.u8 r in
    let iv = Byte_reader.bytes r 8 in
    (variant, flags, iv)
  with
  | exception Byte_reader.Truncated -> Error Truncated
  | variant, flags, iv -> (
      match variant_of_code variant with
      | None -> Error Bad_variant
      | Some Direct -> (
          let key = master_key_des master in
          match
            let mac = Byte_reader.bytes r mac_len in
            let body = Byte_reader.rest r in
            (mac, body)
          with
          | exception Byte_reader.Truncated -> Error Truncated
          | mac, body ->
              if not (Fbsr_crypto.Ct.equal mac (compute_mac ~key [ iv; body ])) then
                Error Bad_mac
              else if flags land 1 = 1 then begin
                let dk = Fbsr_crypto.Des.of_string key in
                match Fbsr_crypto.Des.decrypt_cbc ~iv dk body with
                | plaintext -> Ok plaintext
                | exception Invalid_argument _ -> Error Decrypt_error
              end
              else Ok body)
      | Some Per_datagram -> (
          match
            let wrapped = Byte_reader.bytes r 8 in
            let mac = Byte_reader.bytes r mac_len in
            let body = Byte_reader.rest r in
            (wrapped, mac, body)
          with
          | exception Byte_reader.Truncated -> Error Truncated
          | wrapped, mac, body ->
              let wrap_key = Fbsr_crypto.Des.of_string (master_key_des master) in
              let datagram_key = Fbsr_crypto.Des.decrypt_block_bytes wrap_key wrapped in
              if
                not
                  (Fbsr_crypto.Ct.equal mac
                     (compute_mac ~key:datagram_key [ iv; wrapped; body ]))
              then Error Bad_mac
              else if flags land 1 = 1 then begin
                let dk =
                  Fbsr_crypto.Des.of_string (Fbsr_crypto.Des.adjust_parity datagram_key)
                in
                match Fbsr_crypto.Des.decrypt_cbc ~iv dk body with
                | plaintext -> Ok plaintext
                | exception Invalid_argument _ -> Error Decrypt_error
              end
              else Ok body))

let output_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.bypass h.dst then Host.Pass (h, payload)
  else begin
    let result = ref None in
    let sync = ref true in
    Fbsr_fbs.Keying.get_master t.keying (principal_of_addr h.dst) (fun r ->
        if !sync then result := Some r
        else
          match r with
          | Ok master ->
              t.counters.sent <- t.counters.sent + 1;
              Host.transmit_prepared t.host h (protect t ~master ~payload)
          | Error _ -> t.counters.dropped <- t.counters.dropped + 1);
    sync := false;
    match !result with
    | Some (Ok master) ->
        t.counters.sent <- t.counters.sent + 1;
        Host.Pass (h, protect t ~master ~payload)
    | Some (Error _) ->
        t.counters.dropped <- t.counters.dropped + 1;
        Host.Drop "host-pair keying failure"
    | None -> Host.Drop "host-pair awaiting master key"
  end

let input_hook t (h : Ipv4.header) payload : Host.hook_result =
  if t.bypass h.src then Host.Pass (h, payload)
  else begin
    let result = ref None in
    let sync = ref true in
    let finish master =
      match unprotect t ~master ~wire:payload with
      | Ok plaintext ->
          t.counters.received <- t.counters.received + 1;
          Some
            ( { h with Ipv4.total_length = Ipv4.header_length h + String.length plaintext },
              plaintext )
      | Error _ ->
          t.counters.dropped <- t.counters.dropped + 1;
          None
    in
    Fbsr_fbs.Keying.get_master t.keying (principal_of_addr h.src) (fun r ->
        if !sync then result := Some r
        else
          match r with
          | Ok master -> (
              match finish master with
              | Some (h, plaintext) -> Host.deliver_up t.host h plaintext
              | None -> ())
          | Error _ -> t.counters.dropped <- t.counters.dropped + 1);
    sync := false;
    match !result with
    | Some (Ok master) -> (
        match finish master with
        | Some (h, plaintext) -> Host.Pass (h, plaintext)
        | None -> Host.Drop "host-pair verification failed")
    | Some (Error _) ->
        t.counters.dropped <- t.counters.dropped + 1;
        Host.Drop "host-pair keying failure"
    | None -> Host.Drop "host-pair awaiting master key"
  end

let install ?(variant = Direct) ?(secret = true) ?(bypass = fun _ -> false)
    ?(bbs_modulus_bits = 128) ~private_value ~group ~ca_public ~ca_hash ~resolver host =
  let local = principal_of_addr (Host.addr host) in
  let keying =
    Fbsr_fbs.Keying.create ~local ~group ~private_value ~ca_public ~ca_hash ~resolver
      ~clock:(fun () -> Host.now host)
      ()
  in
  let rng = Fbsr_util.Rng.create (Fbsr_fbs.Principal.hash local) in
  let t =
    {
      host;
      keying;
      variant;
      secret;
      bbs = Fbsr_crypto.Bbs.create ~modulus_bits:bbs_modulus_bits rng ~seed:(Fbsr_util.Rng.bytes rng 16);
      iv_gen = Fbsr_util.Lcg.create (Fbsr_fbs.Principal.hash local lxor 0xabcd);
      counters = { sent = 0; received = 0; dropped = 0; bbs_bytes = 0 };
      bypass;
    }
  in
  Host.set_output_hook host (output_hook t);
  Host.set_input_hook host (input_hook t);
  Minitcp.set_mss_reduction host (header_size variant + 8);
  t

let counters t = t.counters
let keying t = t.keying
let variant t = t.variant
