(* Attack harness: the adversary of Section 6.

   An attacker on the shared segment can capture every frame (tcpdump-style
   tap), re-inject captured frames (replay), and splice pieces of captured
   datagrams together (cut-and-paste).  The tests and the attack-demo
   example use this harness to demonstrate:

   - replay inside the freshness window succeeds at the FBS layer (the
     paper concedes this; higher layers must finish the job), outside the
     window it is rejected;
   - cut-and-paste across FBS flows fails (per-flow keys), while against
     direct host-pair keying it succeeds (one key per host pair);
   - the Section 7.1 port-reuse attack against flow continuation. *)

open Fbsr_netsim

type capture = { mutable frames : (float * string) list (* newest first *) }

let tap medium =
  let c = { frames = [] } in
  Medium.add_sniffer medium (fun time raw -> c.frames <- (time, raw) :: c.frames);
  c

let frames c = List.rev c.frames
let clear c = c.frames <- []

let matching c ~pred = List.filter pred (frames c)

(* Frames between a given host pair, in capture order. *)
let between c ~src ~dst =
  matching c ~pred:(fun (_, raw) ->
      match Ipv4.decode raw with
      | h, _ -> Addr.equal h.Ipv4.src src && Addr.equal h.Ipv4.dst dst
      | exception Ipv4.Bad_packet _ -> false)

(* Inject a raw IP packet onto the segment — the attacker transmits it
   toward the destination in the IP header (spoofed sources welcome). *)
let inject medium raw =
  match Ipv4.decode raw with
  | h, _ -> Medium.transmit medium ~dst:h.Ipv4.dst raw
  | exception Ipv4.Bad_packet m -> invalid_arg ("Attacks.inject: " ^ m)

let replay = inject

(* Cut-and-paste against FBS: keep packet A's IP header and FBS header,
   replace the protected body with packet B's.  Returns None if either
   packet does not parse as FBS. *)
let splice_fbs ~header_from ~body_from =
  match (Ipv4.decode header_from, Ipv4.decode body_from) with
  | exception Ipv4.Bad_packet _ -> None
  | (ha, pa), (_, pb) -> (
      match (Fbsr_fbs.Header.decode pa, Fbsr_fbs.Header.decode pb) with
      | Ok (fa, _), Ok (_, body_b) ->
          let wire = Fbsr_fbs.Header.encode fa ^ body_b in
          let h =
            { ha with Ipv4.total_length = Ipv4.header_length ha + String.length wire }
          in
          Some (Ipv4.encode h wire)
      | _ -> None)

(* Cut-and-paste against host-pair keying: keep A's scheme header (variant,
   flags, iv, [wrapped key,] mac) — no, the interesting splice keeps A's
   *framing* and B's iv+mac+body, i.e. the attacker re-binds B's protected
   payload into A's IP envelope (different ports / different conversation).
   Under one shared master key the MAC still verifies. *)
let splice_hostpair ~envelope_from ~body_from =
  match (Ipv4.decode envelope_from, Ipv4.decode body_from) with
  | exception Ipv4.Bad_packet _ -> None
  | (ha, _), (hb, pb) ->
      if not (Addr.equal ha.Ipv4.src hb.Ipv4.src && Addr.equal ha.Ipv4.dst hb.Ipv4.dst)
      then None (* different host pair: different master key; splice is moot *)
      else begin
        let h = { ha with Ipv4.total_length = Ipv4.header_length ha + String.length pb } in
        Some (Ipv4.encode h pb)
      end

(* Corrupt one byte of the protected body (integrity test). *)
let flip_byte ~offset raw =
  if offset >= String.length raw then invalid_arg "Attacks.flip_byte: out of range";
  let b = Bytes.of_string raw in
  Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor 0x01));
  (* Fix the IP header checksum so the corruption reaches the security
     layer instead of being dropped by IP. *)
  match Ipv4.decode (Bytes.to_string b) with
  | h, payload -> Ipv4.encode h payload
  | exception Ipv4.Bad_packet _ ->
      let h, payload = Ipv4.decode raw in
      let pb = Bytes.of_string payload in
      let off = offset - Ipv4.header_size in
      if off < 0 || off >= Bytes.length pb then raw
      else begin
        Bytes.set pb off (Char.chr (Char.code (Bytes.get pb off) lxor 0x01));
        Ipv4.encode h (Bytes.to_string pb)
      end
