lib/baselines/hostpair.mli: Addr Fbsr_crypto Fbsr_fbs Fbsr_netsim Host
