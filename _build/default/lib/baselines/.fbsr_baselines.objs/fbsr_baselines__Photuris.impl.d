lib/baselines/photuris.ml: Addr Byte_reader Byte_writer Char Fbsr_crypto Fbsr_netsim Fbsr_util Hashtbl Host Ipv4 Lcg List Minitcp Rng String Udp_stack
