lib/baselines/kdc.ml: Addr Byte_reader Byte_writer Fbsr_crypto Fbsr_netsim Fbsr_util Hashtbl Host Int64 Ipv4 Lcg List Minitcp String Udp_stack
