lib/baselines/hostpair.ml: Addr Byte_reader Char Fbsr_crypto Fbsr_fbs Fbsr_netsim Fbsr_util Host Ipv4 Minitcp Printf String
