lib/baselines/attacks.mli: Addr Fbsr_netsim Medium
