lib/baselines/attacks.ml: Addr Bytes Char Fbsr_fbs Fbsr_netsim Ipv4 List Medium String
