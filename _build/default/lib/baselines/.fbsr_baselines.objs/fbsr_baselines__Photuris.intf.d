lib/baselines/photuris.mli: Addr Fbsr_crypto Fbsr_netsim Host
