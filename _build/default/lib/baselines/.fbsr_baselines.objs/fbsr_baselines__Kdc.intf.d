lib/baselines/kdc.mli: Addr Fbsr_netsim Host
