(** The security flow header (Figure 2 of the paper, Section 7.2 sizes):
    sfl 64 b | suite 8 b | flags 8 b | confounder 32 b | timestamp 32 b |
    MAC (suite-dependent, 128 b for the paper's suite). *)

type t = {
  sfl : Sfl.t;
  suite : Suite.t;
  secret : bool;
  confounder : int;
  timestamp : int;
  mac : string;
}

val fixed_size : int
val size : t -> int
val size_for_suite : Suite.t -> int

val encode : t -> string

type error = Truncated | Unknown_suite of int | Bad_flags of int

val decode : string -> (t * string, error) result
(** Returns the header and the remaining bytes (the protected body). *)

val confounder_bytes : t -> string
val timestamp_bytes : t -> string

val auth_bytes : t -> string
(** The suite and flags bytes, included in the MAC input (hardening of the
    paper's sketch: the algorithm-identification field is authenticated). *)

val confounder_iv : t -> string
(** The 32-bit confounder duplicated into a 64-bit DES IV (Section 7.2). *)

val pp : Format.formatter -> t -> unit
