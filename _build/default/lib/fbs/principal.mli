(** Opaque principal names (hosts, applications, users — layer-dependent). *)

type t

val of_string : string -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val encode : t -> string
(** Length-prefixed canonical encoding used inside key derivation. *)

val hash : t -> int
