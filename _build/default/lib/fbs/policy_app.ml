(* Application-layer flow policy: datagrams sharing an application
   "conversation" tag form a flow (the paper's application-layer
   instantiation, Section 4: "application data with different semantics
   (e.g., video, audio, and whiteboard data) could be separated into their
   own flows").  The tag is supplied by the application in
   [Fam.attrs.app_tag]; destination is still part of the flow identity
   since flows are unidirectional per-destination. *)

type entry = { sfl : Sfl.t; mutable last : float }

type t = {
  flows : (string * string, entry) Hashtbl.t; (* (dst, tag) -> flow *)
  threshold : float;
  alloc : Sfl.allocator;
}

let make ?(threshold = 600.0) ~alloc () = { flows = Hashtbl.create 16; threshold; alloc }

let map t ~now (a : Fam.attrs) =
  let key = (Principal.to_string a.Fam.dst, a.Fam.app_tag) in
  match Hashtbl.find_opt t.flows key with
  | Some e when now -. e.last <= t.threshold ->
      e.last <- now;
      (e.sfl, Fam.Existing)
  | Some _ | None ->
      let sfl = Sfl.fresh t.alloc in
      Hashtbl.replace t.flows key { sfl; last = now };
      (sfl, Fam.Fresh)

let sweep t ~now =
  let dead =
    Hashtbl.fold
      (fun k e acc -> if now -. e.last > t.threshold then k :: acc else acc)
      t.flows []
  in
  List.iter (Hashtbl.remove t.flows) dead;
  List.length dead

let active t ~now =
  Hashtbl.fold (fun _ e n -> if now -. e.last <= t.threshold then n + 1 else n) t.flows 0

let policy ?threshold ~alloc () : Fam.policy =
  let t = make ?threshold ~alloc () in
  {
    Fam.policy_name = "app-tag";
    map = (fun ~now a -> map t ~now a);
    sweep = (fun ~now -> sweep t ~now);
    active = (fun ~now -> active t ~now);
  }
