(** The paper's Section 7.1 security flow policy: 5-tuple conversations with
    a THRESHOLD idle timeout, on a direct-mapped CRC-32-indexed flow state
    table (Figure 7).  Optional rekeying extensions rotate the sfl on byte
    or lifetime limits. *)

type t

type counters = {
  mutable collisions : int;
  mutable expirations : int;
  mutable rekeys : int;
}

val make :
  ?fst_size:int ->
  ?threshold:float ->
  ?max_flow_bytes:int ->
  ?max_flow_life:float ->
  alloc:Sfl.allocator ->
  unit ->
  t

val map : t -> now:float -> Fam.attrs -> Sfl.t * Fam.decision
val sweep : t -> now:float -> int
val active : t -> now:float -> int
val counters : t -> counters
val threshold : t -> float
val iter_flows : t -> (sfl:Sfl.t -> started:float -> last:float -> unit) -> unit

val policy :
  ?fst_size:int ->
  ?threshold:float ->
  ?max_flow_bytes:int ->
  ?max_flow_life:float ->
  alloc:Sfl.allocator ->
  unit ->
  Fam.policy

val policy_with_state :
  ?fst_size:int ->
  ?threshold:float ->
  ?max_flow_bytes:int ->
  ?max_flow_life:float ->
  alloc:Sfl.allocator ->
  unit ->
  Fam.policy * t

val tuple_hash :
  protocol:int -> src:string -> src_port:int -> dst:string -> dst_port:int -> int
