(** Host-level flows: one flow per destination principal (the paper's raw-IP
    fallback and host/gateway granularity). *)

type t

val make : ?threshold:float -> alloc:Sfl.allocator -> unit -> t
val map : t -> now:float -> Fam.attrs -> Sfl.t * Fam.decision
val sweep : t -> now:float -> int
val active : t -> now:float -> int
val policy : ?threshold:float -> alloc:Sfl.allocator -> unit -> Fam.policy
