(** Security flow labels: 64-bit, unique per flow, counter-allocated with a
    randomized start (paper, Section 5.3). *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_int64 : t -> int64
val of_int64 : int64 -> t
val pp : Format.formatter -> t -> unit
val hash : t -> int

type allocator

val allocator : rng:Fbsr_util.Rng.t -> allocator
val fresh : allocator -> t
val allocated : allocator -> int
