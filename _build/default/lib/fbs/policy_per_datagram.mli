(** Degenerate one-flow-per-datagram policy (ablation baseline). *)

type t

val make : alloc:Sfl.allocator -> unit -> t
val map : t -> now:float -> Fam.attrs -> Sfl.t * Fam.decision
val policy : alloc:Sfl.allocator -> unit -> Fam.policy
