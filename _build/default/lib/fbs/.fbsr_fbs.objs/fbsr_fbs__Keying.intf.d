lib/fbs/keying.mli: Cache Fbsr_cert Fbsr_crypto Format Principal Sfl
