lib/fbs/fam.ml: Principal Sfl
