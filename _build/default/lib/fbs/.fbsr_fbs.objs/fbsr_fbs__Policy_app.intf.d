lib/fbs/policy_app.mli: Fam Sfl
