lib/fbs/policy_per_datagram.ml: Fam Sfl
