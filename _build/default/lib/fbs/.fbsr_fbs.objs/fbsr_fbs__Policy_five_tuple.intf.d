lib/fbs/policy_five_tuple.mli: Fam Sfl
