lib/fbs/replay.ml: Hashtbl List Sfl
