lib/fbs/replay.mli: Sfl
