lib/fbs/policy_per_datagram.mli: Fam Sfl
