lib/fbs/cache.ml: Array Fbsr_util Fmt Hashtbl
