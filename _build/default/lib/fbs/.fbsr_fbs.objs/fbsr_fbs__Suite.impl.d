lib/fbs/suite.ml: Fbsr_crypto Fmt List Printf
