lib/fbs/header.mli: Format Sfl Suite
