lib/fbs/engine.ml: Cache Fam Fbsr_crypto Fbsr_util Fmt Header Int64 Keying Principal Replay Sfl String Suite
