lib/fbs/fam.mli: Principal Sfl
