lib/fbs/keying.ml: Cache Char Fbsr_cert Fbsr_crypto Fbsr_util Fmt Hashtbl Int64 List Principal Sfl String
