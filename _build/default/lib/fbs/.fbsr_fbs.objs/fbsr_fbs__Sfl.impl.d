lib/fbs/sfl.ml: Fbsr_util Fmt Int64
