lib/fbs/suite.mli: Fbsr_crypto Format
