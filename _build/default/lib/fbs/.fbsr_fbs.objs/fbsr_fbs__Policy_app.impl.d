lib/fbs/policy_app.ml: Fam Hashtbl List Principal Sfl
