lib/fbs/policy_five_tuple.ml: Array Fam Fbsr_util Principal Sfl String
