lib/fbs/policy_host_pair.ml: Fam Hashtbl List Principal Sfl
