lib/fbs/header.ml: Byte_reader Byte_writer Char Fbsr_util Fmt Sfl String Suite
