lib/fbs/principal.ml: Char Fbsr_util Fmt String
