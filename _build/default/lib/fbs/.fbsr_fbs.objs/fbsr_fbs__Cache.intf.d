lib/fbs/cache.mli: Fbsr_util Format
