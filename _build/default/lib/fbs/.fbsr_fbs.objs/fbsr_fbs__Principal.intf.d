lib/fbs/principal.mli: Format
