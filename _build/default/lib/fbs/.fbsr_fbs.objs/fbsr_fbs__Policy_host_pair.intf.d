lib/fbs/policy_host_pair.mli: Fam Sfl
