lib/fbs/engine.mli: Cache Fam Format Header Keying Principal Replay Sfl Suite
