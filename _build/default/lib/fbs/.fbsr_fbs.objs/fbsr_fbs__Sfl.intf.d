lib/fbs/sfl.mli: Fbsr_util Format
