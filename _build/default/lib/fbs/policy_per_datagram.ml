(* Degenerate policy: every datagram is its own flow.

   This deliberately collapses FBS to per-datagram keying — the scheme the
   paper argues against in Section 2.2 (fresh key material per packet).
   It exists as the baseline endpoint of the policy spectrum and powers the
   ablation bench showing why per-flow keying wins: every datagram pays a
   flow-key derivation and the TFKC never hits. *)

type t = { alloc : Sfl.allocator; mutable mapped : int }

let make ~alloc () = { alloc; mapped = 0 }

let map t ~now:_ (_ : Fam.attrs) =
  t.mapped <- t.mapped + 1;
  (Sfl.fresh t.alloc, Fam.Fresh)

let policy ~alloc () : Fam.policy =
  let t = make ~alloc () in
  {
    Fam.policy_name = "per-datagram";
    map = (fun ~now a -> map t ~now a);
    sweep = (fun ~now:_ -> 0);
    active = (fun ~now:_ -> 0);
  }
