(* Security flow labels.

   Section 5.3: "The essential requirement is that the same value of sfl
   not be assigned to two different flows.  This can be done by simply
   keeping a large (at least 64-bit) counter ... The initial value of the
   counter should be randomized to prevent attackers who try to exploit
   reuse of sfl values by continuously resetting the protocol subsystem."

   sfl values need not be random — they feed a one-way hash — so a counter
   with a randomized start is exactly right. *)

type t = int64

let equal (a : t) (b : t) = Int64.equal a b
let compare = Int64.compare
let to_int64 t = t
let of_int64 (v : int64) : t = v
let pp ppf t = Fmt.pf ppf "sfl:%Lx" t

type allocator = { mutable next : int64; mutable allocated : int }

let allocator ~rng =
  (* Randomize the initial counter value across restarts. *)
  { next = Fbsr_util.Rng.next_int64 rng; allocated = 0 }

let fresh a =
  let v = a.next in
  a.next <- Int64.add a.next 1L;
  a.allocated <- a.allocated + 1;
  v

let allocated a = a.allocated

let hash (t : t) = Fbsr_util.Crc32.update_int64 0 t
