(* Host-level flow policy: one flow per destination principal.

   This is the coarsest useful policy — "host/gateway to host/gateway
   security ... by encrypting all datagrams going from one host/gateway to
   another" (Section 7.1) — and also the paper's stated treatment for raw
   IP (footnote 10: "raw IP can be considered as host-level flows").  It
   gives FBS the granularity of host-pair keying while keeping the FBS key
   schedule (the flow key is still derived from the sfl, so the master key
   is never used to encrypt traffic directly). *)

type entry = { sfl : Sfl.t; mutable started : float; mutable last : float }

type t = {
  flows : (string, entry) Hashtbl.t; (* destination principal -> flow *)
  threshold : float; (* idle expiry, like the 5-tuple policy *)
  alloc : Sfl.allocator;
}

let make ?(threshold = 3600.0) ~alloc () =
  { flows = Hashtbl.create 16; threshold; alloc }

let map t ~now (a : Fam.attrs) =
  let key = Principal.to_string a.Fam.dst in
  match Hashtbl.find_opt t.flows key with
  | Some e when now -. e.last <= t.threshold ->
      e.last <- now;
      (e.sfl, Fam.Existing)
  | Some _ | None ->
      let sfl = Sfl.fresh t.alloc in
      Hashtbl.replace t.flows key { sfl; started = now; last = now };
      (sfl, Fam.Fresh)

let sweep t ~now =
  let dead =
    Hashtbl.fold
      (fun k e acc -> if now -. e.last > t.threshold then k :: acc else acc)
      t.flows []
  in
  List.iter (Hashtbl.remove t.flows) dead;
  List.length dead

let active t ~now =
  Hashtbl.fold (fun _ e n -> if now -. e.last <= t.threshold then n + 1 else n) t.flows 0

let policy ?threshold ~alloc () : Fam.policy =
  let t = make ?threshold ~alloc () in
  {
    Fam.policy_name = "host-pair";
    map = (fun ~now a -> map t ~now a);
    sweep = (fun ~now -> sweep t ~now);
    active = (fun ~now -> active t ~now);
  }
