(* The paper's example security flow policy (Section 7.1, Figure 7):

     "a secure flow is defined as a sequence of datagrams of the same
      transport layer protocol going from a port on a host to another port
      on another host such that the datagrams do not arrive more than
      THRESHOLD apart"

   Mechanics reproduced exactly from Figure 7:
   - the flow state table (FST) is a direct-mapped array of FSTSIZE entries
     indexed by CRC-32 of the 5-tuple;
   - a hash collision evicts the resident flow and starts a new one —
     footnote 11: "a hash collision can prematurely terminate a flow.
     This does not affect security though";
   - an entry whose last packet is more than THRESHOLD old is invalid, so
     the next datagram on that 5-tuple starts a fresh flow (fresh sfl,
     hence fresh key);
   - the sweeper scans the table and invalidates idle entries.

   Two documented extensions beyond Figure 7 (the paper's Section 5.2
   "rekeying can be easily accomplished via the FAM by changing the sfl;
   rekeying decisions are made by policy modules"):
   [max_flow_bytes] and [max_flow_life] force a fresh sfl when a flow has
   encrypted too much data or lived too long under one key. *)

type entry = {
  mutable valid : bool;
  mutable protocol : int;
  mutable src : string; (* canonical principal names *)
  mutable src_port : int;
  mutable dst : string;
  mutable dst_port : int;
  mutable sfl : Sfl.t;
  mutable started : float;
  mutable last : float;
  mutable bytes : int;
}

type counters = {
  mutable collisions : int; (* flows evicted by a hash collision *)
  mutable expirations : int; (* flows expired by threshold / sweeper *)
  mutable rekeys : int; (* flows rotated by the rekeying extensions *)
}

type t = {
  table : entry array;
  threshold : float;
  alloc : Sfl.allocator;
  max_flow_bytes : int option;
  max_flow_life : float option;
  counters : counters;
}

let tuple_hash ~protocol ~src ~src_port ~dst ~dst_port =
  let open Fbsr_util.Crc32 in
  let h = update 0 src 0 (String.length src) in
  let h = update h dst 0 (String.length dst) in
  let h = update_int32 h ((protocol lsl 16) lor src_port) in
  update_int32 h dst_port

let fresh_entry () =
  {
    valid = false;
    protocol = 0;
    src = "";
    src_port = 0;
    dst = "";
    dst_port = 0;
    sfl = Sfl.of_int64 0L;
    started = 0.0;
    last = 0.0;
    bytes = 0;
  }

let make ?(fst_size = 256) ?(threshold = 600.0) ?max_flow_bytes ?max_flow_life ~alloc ()
    =
  if fst_size <= 0 then invalid_arg "Policy_five_tuple: fst_size must be positive";
  {
    table = Array.init fst_size (fun _ -> fresh_entry ());
    threshold;
    alloc;
    max_flow_bytes;
    max_flow_life;
    counters = { collisions = 0; expirations = 0; rekeys = 0 };
  }

let entry_matches e ~protocol ~src ~src_port ~dst ~dst_port =
  e.valid && e.protocol = protocol && e.src_port = src_port && e.dst_port = dst_port
  && String.equal e.src src && String.equal e.dst dst

let start_flow t e ~now ~protocol ~src ~src_port ~dst ~dst_port =
  let sfl = Sfl.fresh t.alloc in
  e.valid <- true;
  e.protocol <- protocol;
  e.src <- src;
  e.src_port <- src_port;
  e.dst <- dst;
  e.dst_port <- dst_port;
  e.sfl <- sfl;
  e.started <- now;
  e.last <- now;
  e.bytes <- 0;
  sfl

let needs_rekey t e ~now =
  (match t.max_flow_bytes with Some b -> e.bytes >= b | None -> false)
  || match t.max_flow_life with Some l -> now -. e.started >= l | None -> false

(* The mapper of Figure 7, with the implicit sweeping of Section 7.2: the
   idleness check happens inline, so a stale entry is replaced on access
   rather than waiting for the periodic sweeper. *)
let map t ~now (a : Fam.attrs) =
  let src = Principal.to_string a.Fam.src and dst = Principal.to_string a.Fam.dst in
  let protocol = a.Fam.protocol and src_port = a.Fam.src_port
  and dst_port = a.Fam.dst_port in
  let i = tuple_hash ~protocol ~src ~src_port ~dst ~dst_port mod Array.length t.table in
  let e = t.table.(i) in
  if entry_matches e ~protocol ~src ~src_port ~dst ~dst_port then begin
    if now -. e.last > t.threshold then begin
      (* Same conversation tuple, but idle past THRESHOLD: new flow. *)
      t.counters.expirations <- t.counters.expirations + 1;
      let sfl = start_flow t e ~now ~protocol ~src ~src_port ~dst ~dst_port in
      e.bytes <- a.Fam.size;
      (sfl, Fam.Fresh)
    end
    else if needs_rekey t e ~now then begin
      t.counters.rekeys <- t.counters.rekeys + 1;
      let sfl = start_flow t e ~now ~protocol ~src ~src_port ~dst ~dst_port in
      e.bytes <- a.Fam.size;
      (sfl, Fam.Fresh)
    end
    else begin
      e.last <- now;
      e.bytes <- e.bytes + a.Fam.size;
      (e.sfl, Fam.Existing)
    end
  end
  else begin
    if e.valid then t.counters.collisions <- t.counters.collisions + 1;
    let sfl = start_flow t e ~now ~protocol ~src ~src_port ~dst ~dst_port in
    e.bytes <- a.Fam.size;
    (sfl, Fam.Fresh)
  end

(* The sweeper of Figure 7: scan and invalidate idle entries. *)
let sweep t ~now =
  let expired = ref 0 in
  Array.iter
    (fun e ->
      if e.valid && now -. e.last > t.threshold then begin
        e.valid <- false;
        incr expired
      end)
    t.table;
  t.counters.expirations <- t.counters.expirations + !expired;
  !expired

let active t ~now =
  Array.fold_left
    (fun n e -> if e.valid && now -. e.last <= t.threshold then n + 1 else n)
    0 t.table

let counters t = t.counters
let threshold t = t.threshold

let iter_flows t f =
  Array.iter (fun e -> if e.valid then f ~sfl:e.sfl ~started:e.started ~last:e.last) t.table

let policy ?fst_size ?threshold ?max_flow_bytes ?max_flow_life ~alloc () : Fam.policy =
  let t = make ?fst_size ?threshold ?max_flow_bytes ?max_flow_life ~alloc () in
  {
    Fam.policy_name = "five-tuple";
    map = (fun ~now a -> map t ~now a);
    sweep = (fun ~now -> sweep t ~now);
    active = (fun ~now -> active t ~now);
  }

(* Expose the state too, for tests and the flow monitor example. *)
let policy_with_state ?fst_size ?threshold ?max_flow_bytes ?max_flow_life ~alloc () =
  let t = make ?fst_size ?threshold ?max_flow_bytes ?max_flow_life ~alloc () in
  let p =
    {
      Fam.policy_name = "five-tuple";
      map = (fun ~now a -> map t ~now a);
      sweep = (fun ~now -> sweep t ~now);
      active = (fun ~now -> active t ~now);
    }
  in
  (p, t)
