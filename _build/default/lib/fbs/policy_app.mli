(** Application-layer flows keyed by (destination, conversation tag). *)

type t

val make : ?threshold:float -> alloc:Sfl.allocator -> unit -> t
val map : t -> now:float -> Fam.attrs -> Sfl.t * Fam.decision
val sweep : t -> now:float -> int
val active : t -> now:float -> int
val policy : ?threshold:float -> alloc:Sfl.allocator -> unit -> Fam.policy
