(* Principals.

   The paper deliberately leaves the principal abstract: "the principals
   could be network interfaces on hosts, the hosts themselves, network
   protocol layers, applications, or end users" (Section 5.2).  A principal
   here is an opaque name with a canonical byte encoding; the IP mapping
   instantiates it with dotted-quad addresses, tests use symbolic names. *)

type t = string

let of_string s =
  if s = "" then invalid_arg "Principal.of_string: empty name";
  s

let to_string t = t
let equal (a : t) (b : t) = String.equal a b
let compare = String.compare
let pp = Fmt.string

(* Canonical encoding used in key derivation: length-prefixed so that the
   concatenation S | D in H(sfl | K | S | D) cannot be ambiguous (e.g.
   "ab"+"c" vs "a"+"bc"). *)
let encode t =
  let n = String.length t in
  String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xff)) ^ t

let hash t = Fbsr_util.Crc32.string t
