(* The security flow header (paper, Section 5.2, Figure 2), with the field
   sizes of the paper's FreeBSD implementation (Section 7.2):

     sfl 64 bits | confounder 32 bits | timestamp 32 bits | MAC 128 bits

   plus the algorithm-identification field the paper specifies but leaves
   undescribed (one suite byte) and one flags byte carrying the "secret"
   bit, which the receiver needs to know whether to decrypt.  The MAC field
   width is fixed by the suite's [mac_length].

   Wire layout (big-endian):
     u64 sfl | u8 suite | u8 flags | u32 confounder | u32 timestamp | MAC *)

open Fbsr_util

type t = {
  sfl : Sfl.t;
  suite : Suite.t;
  secret : bool; (* payload is encrypted *)
  confounder : int; (* 32-bit statistically-random value *)
  timestamp : int; (* minutes since the FBS epoch, 32-bit *)
  mac : string; (* suite.mac_length bytes *)
}

let fixed_size = 8 + 1 + 1 + 4 + 4
let size t = fixed_size + t.suite.Suite.mac_length
let size_for_suite (suite : Suite.t) = fixed_size + suite.Suite.mac_length

let flag_secret = 0x01

let encode t =
  if String.length t.mac <> t.suite.Suite.mac_length then
    invalid_arg "Header.encode: MAC length does not match suite";
  let w = Byte_writer.create ~capacity:(size t) () in
  Byte_writer.u64 w (Sfl.to_int64 t.sfl);
  Byte_writer.u8 w t.suite.Suite.id;
  Byte_writer.u8 w (if t.secret then flag_secret else 0);
  Byte_writer.u32_int w t.confounder;
  Byte_writer.u32_int w t.timestamp;
  Byte_writer.bytes w t.mac;
  Byte_writer.contents w

type error = Truncated | Unknown_suite of int | Bad_flags of int

let decode raw : (t * string, error) result =
  let r = Byte_reader.of_string raw in
  match
    let sfl = Sfl.of_int64 (Byte_reader.u64 r) in
    let suite_id = Byte_reader.u8 r in
    let flags = Byte_reader.u8 r in
    let confounder = Byte_reader.u32_int r in
    let timestamp = Byte_reader.u32_int r in
    (sfl, suite_id, flags, confounder, timestamp)
  with
  | exception Byte_reader.Truncated -> Error Truncated
  | sfl, suite_id, flags, confounder, timestamp -> (
      match Suite.of_id suite_id with
      | None -> Error (Unknown_suite suite_id)
      | Some _ when flags land lnot flag_secret <> 0 ->
          (* Reserved flag bits must be zero: they are not covered by the
             MAC recomputation (the receiver rebuilds the flags byte from
             the parsed fields), so tolerating them would let an attacker
             flip them undetected. *)
          Error (Bad_flags flags)
      | Some suite -> (
          match Byte_reader.bytes r suite.Suite.mac_length with
          | exception Byte_reader.Truncated -> Error Truncated
          | mac ->
              let body = Byte_reader.rest r in
              Ok
                ( {
                    sfl;
                    suite;
                    secret = flags land flag_secret <> 0;
                    confounder;
                    timestamp;
                    mac;
                  },
                  body )))

(* The suite and flags bytes as fed to the MAC.  The paper MACs only
   confounder | timestamp | payload (sfl integrity is implicit in the
   key); the algorithm-identification field is our concretization of the
   paper's sketch, so we authenticate those two bytes as well — otherwise
   reserved flag bits could be flipped in transit undetected. *)
let auth_bytes t =
  String.init 2 (fun i ->
      if i = 0 then Char.chr t.suite.Suite.id
      else Char.chr (if t.secret then flag_secret else 0))

(* Byte encodings of the confounder and timestamp as fed to the MAC: the
   same big-endian bytes that go on the wire. *)
let confounder_bytes t =
  String.init 4 (fun i -> Char.chr ((t.confounder lsr (8 * (3 - i))) land 0xff))

let timestamp_bytes t =
  String.init 4 (fun i -> Char.chr ((t.timestamp lsr (8 * (3 - i))) land 0xff))

(* The confounder expanded to a DES IV: "For DES encryption, the confounder
   is first duplicated to provide a 64-bit quantity" (Section 7.2). *)
let confounder_iv t =
  let c = confounder_bytes t in
  c ^ c

let pp ppf t =
  Fmt.pf ppf "%a %a%s conf=%08x ts=%d" Sfl.pp t.sfl Suite.pp t.suite
    (if t.secret then " secret" else "")
    t.confounder t.timestamp
