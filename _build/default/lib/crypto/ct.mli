(** Constant-time comparison for MAC verification. *)

val equal : string -> string -> bool
