(* Constant-time byte-string comparison for MAC verification: the running
   time depends only on the lengths, never on where the first difference
   falls, so a forger learns nothing from timing. *)

let equal (a : string) (b : string) =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end
