(* RSA signatures, used to sign public-value certificates.

   The paper assumes "the public values are made available and
   authenticated via a distributed certification hierarchy (e.g., X.509
   certificates)"; our certificate authority signs with RSA (which the
   paper's CryptoLib also provided).  PKCS#1 v1.5-style deterministic
   padding over a named hash.  Private operations use the CRT speedup. *)

open Fbsr_bignum

type public_key = { n : Nat.t; e : Nat.t }

type private_key = {
  pub : public_key;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
  dp : Nat.t; (* d mod (p-1) *)
  dq : Nat.t; (* d mod (q-1) *)
  qinv : Nat.t; (* q^{-1} mod p *)
}

let modulus_bytes pub = (Nat.bit_length pub.n + 7) / 8
let public_key key = key.pub

let generate ?(e = 65537) rng ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: modulus too small";
  let e_nat = Nat.of_int e in
  let rec gen_prime b =
    let p = Nat.random_prime rng ~bits:b in
    if Nat.is_one (Nat.gcd (Nat.sub p Nat.one) e_nat) then p else gen_prime b
  in
  let half = bits / 2 in
  let p = gen_prime half in
  let rec gen_q () =
    let q = gen_prime (bits - half) in
    if Nat.equal p q then gen_q () else q
  in
  let q = gen_q () in
  let n = Nat.mul p q in
  let p1 = Nat.sub p Nat.one and q1 = Nat.sub q Nat.one in
  let lambda = Nat.div (Nat.mul p1 q1) (Nat.gcd p1 q1) in
  let d = Nat.mod_inv e_nat lambda in
  let pub = { n; e = e_nat } in
  { pub; d; p; q; dp = Nat.rem d p1; dq = Nat.rem d q1; qinv = Nat.mod_inv q p }

(* Private-key operation with the Chinese-remainder speedup. *)
let private_op key (c : Nat.t) : Nat.t =
  let m1 = Nat.mod_pow (Nat.rem c key.p) key.dp key.p in
  let m2 = Nat.mod_pow (Nat.rem c key.q) key.dq key.q in
  (* h = qinv * (m1 - m2) mod p, m = m2 + h*q *)
  let diff =
    if Nat.compare m1 m2 >= 0 then Nat.sub m1 m2
    else Nat.sub key.p (Nat.rem (Nat.sub m2 m1) key.p)
  in
  let h = Nat.rem (Nat.mul key.qinv diff) key.p in
  Nat.add m2 (Nat.mul h key.q)

let public_op pub (m : Nat.t) : Nat.t = Nat.mod_pow m pub.e pub.n

(* EMSA-PKCS1-v1_5-style encoding: 00 01 FF..FF 00 | name ':' | digest. *)
let encode_digest ~hash_name ~digest ~width =
  let payload = hash_name ^ ":" ^ digest in
  let pad_len = width - String.length payload - 3 in
  if pad_len < 8 then invalid_arg "Rsa.encode_digest: modulus too small for digest";
  "\x00\x01" ^ String.make pad_len '\xff' ^ "\x00" ^ payload

let sign key ~hash msg =
  let (module H : Hash.S) = hash in
  let width = modulus_bytes key.pub in
  let em = encode_digest ~hash_name:H.name ~digest:(H.digest msg) ~width in
  let s = private_op key (Nat.of_bytes_be em) in
  Nat.to_bytes_be ~length:width s

let verify pub ~hash msg ~signature =
  let (module H : Hash.S) = hash in
  let width = modulus_bytes pub in
  String.length signature = width
  &&
  let m = public_op pub (Nat.of_bytes_be signature) in
  let expected = encode_digest ~hash_name:H.name ~digest:(H.digest msg) ~width in
  (* Signature verification is public; constant time is not required, but
     Ct.equal is cheap and removes any doubt. *)
  Ct.equal (Nat.to_bytes_be ~length:width m) expected
