(** Blum-Blum-Shub cryptographically secure PRNG (quadratic residues).

    Deliberately expensive (one modular squaring per bit): it exists so the
    per-datagram-key variant of the host-pair-keying baseline pays the cost
    the paper says makes that scheme a bottleneck (Section 2.2). *)

type t

val create : ?modulus_bits:int -> Fbsr_util.Rng.t -> seed:string -> t
(** Generate a fresh Blum modulus (two primes ≡ 3 mod 4) and seed the
    generator.  [rng] drives prime generation only. *)

val of_modulus : m:Fbsr_bignum.Nat.t -> seed:string -> t
(** Use an existing Blum modulus. *)

val next_bit : t -> int
val next_byte : t -> int
val bytes : t -> int -> string
