(* Single-pass MAC + encryption.

   Section 5.3: "The MAC computation is an expensive operation.  It
   requires touching all the data in the datagram.  An efficient
   implementation should try to combine all such data touching operations
   into a single pass.  For example, if data confidentiality is desired,
   then the MAC computation and encryption should be rolled into one
   loop."

   [mac_and_encrypt] walks the payload once in cache-friendly chunks,
   feeding each chunk to the (prefix-MD5) MAC context and to an incremental
   DES-CBC context.  Results are bit-identical to running the two passes
   separately; the ablation bench measures the locality benefit. *)

let chunk_size = 4096

let mac_and_encrypt ~mac_key ~des_key ~iv ~prefix_parts payload =
  (* MAC = MD5(mac_key | prefix_parts... | payload), as the FBS engine
     computes it; ciphertext = DES-CBC(des_key, iv, payload). *)
  let md5 = Md5.init () in
  Md5.update md5 mac_key;
  List.iter (Md5.update md5) prefix_parts;
  let cbc = Des.cbc_init ~iv des_key in
  let n = String.length payload in
  let pieces = ref [] in
  let off = ref 0 in
  while !off < n do
    let len = min chunk_size (n - !off) in
    Md5.feed md5 payload !off len;
    pieces := Des.cbc_update cbc (String.sub payload !off len) :: !pieces;
    off := !off + len
  done;
  pieces := Des.cbc_finish cbc :: !pieces;
  let mac = Md5.final md5 in
  (mac, String.concat "" (List.rev !pieces))

(* The two-pass equivalent, for equivalence tests and the bench. *)
let mac_then_encrypt ~mac_key ~des_key ~iv ~prefix_parts payload =
  let mac = Md5.digest_list ((mac_key :: prefix_parts) @ [ payload ]) in
  let ct = Des.encrypt_cbc ~iv des_key payload in
  (mac, ct)
