(** Single-pass MAC + encryption (the Section 5.3 data-touching
    optimization).  Bit-identical to the separate passes. *)

val mac_and_encrypt :
  mac_key:string ->
  des_key:Des.key ->
  iv:string ->
  prefix_parts:string list ->
  string ->
  string * string
(** [(mac, ciphertext)]: prefix-MD5 MAC over key|prefix|payload and
    DES-CBC ciphertext of the payload, computed in one pass. *)

val mac_then_encrypt :
  mac_key:string ->
  des_key:Des.key ->
  iv:string ->
  prefix_parts:string list ->
  string ->
  string * string
(** Reference two-pass implementation. *)
