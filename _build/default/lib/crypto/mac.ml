(* Message authentication codes.

   The paper defines the FBS MAC as a keyed hash with the key prepended:

       MAC = HMAC(K_f | confounder | timestamp | payload)

   where "HMAC" in the paper's notation is simply "some one-way
   cryptographic hash function" applied to the key-prefixed message — i.e.
   the 1996-era prefix MAC (keyed MD5), not RFC 2104 HMAC.  We implement
   both: [prefix] reproduces the paper exactly, and [hmac] is the modern
   construction (RFC 2104), selectable through the FBS algorithm-suite field
   and compared in an ablation bench. *)

let prefix (hash : Hash.t) ~key parts = Hash.digest_list hash (key :: parts)

let hmac (module H : Hash.S) ~key parts =
  let block = H.block_size in
  let key = if String.length key > block then H.digest key else key in
  let key = key ^ String.make (block - String.length key) '\000' in
  let xor_pad byte =
    String.init block (fun i -> Char.chr (Char.code key.[i] lxor byte))
  in
  let inner = H.digest_list (xor_pad 0x36 :: parts) in
  H.digest_list [ xor_pad 0x5c; inner ]

(* DES-CBC-MAC (FIPS 113 style): the paper's footnote 12 — "for
   efficiency, DES could have been used for both encryption and MAC
   computation".  The MAC is the last cipher block of a zero-IV CBC pass
   over the padded message; the 8-byte DES key is derived from the first
   key bytes with adjusted parity. *)
let des_cbc ~key parts =
  if String.length key < 8 then invalid_arg "Mac.des_cbc: key too short";
  let des_key = Des.of_string (Des.adjust_parity (String.sub key 0 8)) in
  let message = String.concat "" parts in
  let ct = Des.encrypt_cbc ~iv:(String.make 8 '\000') des_key message in
  String.sub ct (String.length ct - 8) 8

type algorithm = Prefix | Hmac | Des_cbc_mac

let compute ?(algorithm = Prefix) hash ~key parts =
  match algorithm with
  | Prefix -> prefix hash ~key parts
  | Hmac -> hmac hash ~key parts
  | Des_cbc_mac -> des_cbc ~key parts

let verify ?(algorithm = Prefix) hash ~key parts ~expected =
  Ct.equal (compute ~algorithm hash ~key parts) expected

let truncate mac n =
  if n > String.length mac then invalid_arg "Mac.truncate: too long";
  String.sub mac 0 n
