lib/crypto/md5.ml: Array Bytes Char Fbsr_util Int32 Int64 Lazy List String
