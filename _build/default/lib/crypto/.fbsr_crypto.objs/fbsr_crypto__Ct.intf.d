lib/crypto/ct.mli:
