lib/crypto/fused.mli: Des
