lib/crypto/des3.ml: Bytes Char Des Int64 String
