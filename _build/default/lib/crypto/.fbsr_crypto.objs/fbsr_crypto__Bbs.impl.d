lib/crypto/bbs.ml: Char Fbsr_bignum Nat String
