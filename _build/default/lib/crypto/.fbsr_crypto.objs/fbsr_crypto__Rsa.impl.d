lib/crypto/rsa.ml: Ct Fbsr_bignum Hash Nat String
