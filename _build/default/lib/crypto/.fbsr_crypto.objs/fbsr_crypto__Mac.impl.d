lib/crypto/mac.ml: Char Ct Des Hash String
