lib/crypto/fused.ml: Des List Md5 String
