lib/crypto/des.ml: Array Buffer Bytes Char Fbsr_util Int64 Lazy List String
