lib/crypto/des3.mli:
