lib/crypto/mac.mli: Hash
