lib/crypto/rsa.mli: Fbsr_bignum Fbsr_util Hash Nat
