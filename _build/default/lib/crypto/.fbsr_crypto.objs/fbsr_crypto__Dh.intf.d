lib/crypto/dh.mli: Fbsr_bignum Fbsr_util Nat
