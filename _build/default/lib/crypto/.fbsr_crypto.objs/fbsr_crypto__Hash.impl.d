lib/crypto/hash.ml: Md5 Sha1
