lib/crypto/bbs.mli: Fbsr_bignum Fbsr_util
