lib/crypto/des.mli:
