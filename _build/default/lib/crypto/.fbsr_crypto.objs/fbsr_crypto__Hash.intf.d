lib/crypto/hash.mli:
