lib/crypto/dh.ml: Fbsr_bignum Nat Printf
