lib/crypto/sha1.ml: Array Bytes Char Fbsr_util Int32 Int64 List String
