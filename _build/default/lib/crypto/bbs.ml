(* Blum-Blum-Shub quadratic-residue generator (Blum, Blum & Shub 1986).

   Section 2.2 of the paper: per-datagram keys under host-pair keying must
   be cryptographically random, and "cryptographically secure random number
   generators such as the quadratic residue generator can be a performance
   bottleneck".  We implement BBS so the host-pair baseline's per-datagram
   variant pays the honest cost, and so a bench can demonstrate the claim
   (BBS yields ~1 bit per modular squaring). *)

open Fbsr_bignum

type t = { m : Nat.t; mutable state : Nat.t }

(* A Blum prime is congruent to 3 mod 4. *)
let rec blum_prime rng ~bits =
  let p = Nat.random_prime rng ~bits in
  match Nat.to_int_opt (Nat.rem p (Nat.of_int 4)) with
  | Some 3 -> p
  | _ -> blum_prime rng ~bits

let create ?(modulus_bits = 256) rng ~seed =
  let half = modulus_bits / 2 in
  let p = blum_prime rng ~bits:half in
  let q =
    let rec distinct () =
      let q = blum_prime rng ~bits:(modulus_bits - half) in
      if Nat.equal p q then distinct () else q
    in
    distinct ()
  in
  let m = Nat.mul p q in
  (* The seed must be coprime to m and not 0/1. *)
  let rec pick s =
    let s = Nat.rem s m in
    if Nat.compare s Nat.two < 0 || not (Nat.is_one (Nat.gcd s m)) then
      pick (Nat.add s (Nat.of_int 0x10001))
    else s
  in
  let x0 = pick (Nat.of_bytes_be seed) in
  { m; state = Nat.rem (Nat.mul x0 x0) m }

let of_modulus ~m ~seed =
  let x = Nat.rem (Nat.of_bytes_be seed) m in
  let x = if Nat.compare x Nat.two < 0 then Nat.of_int 7 else x in
  { m; state = Nat.rem (Nat.mul x x) m }

let next_bit t =
  t.state <- Nat.rem (Nat.mul t.state t.state) t.m;
  if Nat.testbit t.state 0 then 1 else 0

let next_byte t =
  let b = ref 0 in
  for _ = 1 to 8 do
    b := (!b lsl 1) lor next_bit t
  done;
  !b

let bytes t n = String.init n (fun _ -> Char.chr (next_byte t))
