(* Diffie-Hellman key agreement (Diffie & Hellman 1976) — the basis of the
   paper's zero-message keying: the pair-based master key

       K_{S,D} = g^{sd} mod p

   is computable by S and D alone from their own private value and the
   other's (certified) public value, with no message exchange. *)

open Fbsr_bignum

type group = { p : Nat.t; g : Nat.t; ctx : Nat.Mont.ctx; name : string }

let make_group ~name ~p ~g = { p; g; ctx = Nat.Mont.make p; name }

(* Oakley "Group 2" (RFC 2412 / the First and Second Oakley Groups): the
   well-known 1024-bit MODP prime 2^1024 - 2^960 - 1 + 2^64*(floor(2^894 pi)
   + 129093), generator 2.  This is the group SKIP-era zero-message-keying
   implementations used. *)
let oakley2 =
  lazy
    (make_group ~name:"oakley-group2"
       ~p:
         (Nat.of_hex
            ("ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd1"
           ^ "29024e088a67cc74020bbea63b139b22514a08798e3404dd"
           ^ "ef9519b3cd3a431b302b0a6df25f14374fe1356d6d51c245"
           ^ "e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed"
           ^ "ee386bfb5a899fa5ae9f24117c4b1fe649286651ece65381"
           ^ "ffffffffffffffff"))
       ~g:Nat.two)

(* A 61-bit Mersenne-prime group for fast tests: p = 2^61 - 1, g = 3.
   Cryptographically toy, mathematically a perfectly good cyclic group. *)
let test_group =
  lazy (make_group ~name:"test-mersenne61" ~p:(Nat.of_hex "1fffffffffffffff") ~g:(Nat.of_int 3))

(* Generate a fresh group (safe prime p = 2q+1) of the given size.  Used by
   tests that want mid-sized groups without hardcoded constants. *)
let generate_group ?(bits = 256) rng =
  let rec go () =
    let q = Nat.random_prime rng ~bits:(bits - 1) in
    let p = Nat.add (Nat.shift_left q 1) Nat.one in
    if Nat.is_probably_prime rng p then (p, q) else go ()
  in
  let p, q = go () in
  (* For a safe prime, any g with g^2 <> 1 and g^q <> 1 generates a large
     subgroup; 2 works unless it has order 2 or q fails. *)
  let rec pick_g c =
    let g = Nat.of_int c in
    let gq = Nat.mod_pow g q p in
    if Nat.is_one gq || Nat.is_one (Nat.rem (Nat.mul g g) p) then pick_g (c + 1) else g
  in
  make_group ~name:(Printf.sprintf "generated-%d" bits) ~p ~g:(pick_g 2)

type private_value = Nat.t
type public_value = Nat.t

let gen_private group rng : private_value =
  (* Uniform in [2, p-2]. *)
  let bound = Nat.sub group.p (Nat.of_int 3) in
  Nat.add (Nat.random_below rng bound) Nat.two

let public group (s : private_value) : public_value = Nat.Mont.pow group.ctx group.g s

let shared group (s : private_value) (peer_public : public_value) : Nat.t =
  if Nat.compare peer_public Nat.two < 0 || Nat.compare peer_public group.p >= 0 then
    invalid_arg "Dh.shared: public value out of range";
  Nat.Mont.pow group.ctx peer_public s

let shared_bytes group s peer_public =
  (* Fixed-width encoding so both sides derive identical key material. *)
  let width = (Nat.bit_length group.p + 7) / 8 in
  Nat.to_bytes_be ~length:width (shared group s peer_public)

let public_to_bytes group (v : public_value) =
  let width = (Nat.bit_length group.p + 7) / 8 in
  Nat.to_bytes_be ~length:width v

let public_of_bytes s : public_value = Nat.of_bytes_be s
