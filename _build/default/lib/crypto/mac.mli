(** Message authentication codes.

    [Prefix] is the paper's construction (hash over the key-prefixed
    message, i.e. keyed MD5 as used by the 4.4BSD implementation); [Hmac]
    is RFC 2104. *)

type algorithm = Prefix | Hmac | Des_cbc_mac

val prefix : Hash.t -> key:string -> string list -> string
val hmac : Hash.t -> key:string -> string list -> string

val des_cbc : key:string -> string list -> string
(** DES-CBC-MAC over the concatenated parts (footnote 12 of the paper):
    8-byte tag, key taken from the first 8 key bytes. *)

val compute : ?algorithm:algorithm -> Hash.t -> key:string -> string list -> string
(** Default algorithm is [Prefix], matching the paper. *)

val verify :
  ?algorithm:algorithm -> Hash.t -> key:string -> string list -> expected:string -> bool
(** Constant-time comparison against [expected]. *)

val truncate : string -> int -> string
(** Keep the first [n] bytes of a MAC (header-overhead/security trade-off
    the paper mentions in Section 5.3). *)
