(** RSA signatures (PKCS#1 v1.5-style padding, CRT private operation).

    Used by the certificate authority to sign Diffie-Hellman public-value
    certificates. *)

open Fbsr_bignum

type public_key = { n : Nat.t; e : Nat.t }
type private_key

val generate : ?e:int -> Fbsr_util.Rng.t -> bits:int -> private_key
val public_key : private_key -> public_key
val modulus_bytes : public_key -> int

val sign : private_key -> hash:Hash.t -> string -> string
val verify : public_key -> hash:Hash.t -> string -> signature:string -> bool

val private_op : private_key -> Nat.t -> Nat.t
val public_op : public_key -> Nat.t -> Nat.t

(**/**)

val encode_digest : hash_name:string -> digest:string -> width:int -> string
