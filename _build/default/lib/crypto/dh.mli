(** Diffie-Hellman key agreement — the basis of FBS zero-message keying. *)

open Fbsr_bignum

type group = private { p : Nat.t; g : Nat.t; ctx : Nat.Mont.ctx; name : string }

val make_group : name:string -> p:Nat.t -> g:Nat.t -> group

val oakley2 : group lazy_t
(** The 1024-bit Oakley Group 2 MODP prime, generator 2. *)

val test_group : group lazy_t
(** Tiny (61-bit Mersenne) group for fast unit tests. *)

val generate_group : ?bits:int -> Fbsr_util.Rng.t -> group
(** Fresh safe-prime group. *)

type private_value
type public_value = Nat.t

val gen_private : group -> Fbsr_util.Rng.t -> private_value
val public : group -> private_value -> public_value

val shared : group -> private_value -> public_value -> Nat.t
(** [shared g s peer] is [peer]{^s} mod p.
    @raise Invalid_argument if the peer value is out of range. *)

val shared_bytes : group -> private_value -> public_value -> string
(** Fixed-width big-endian encoding of the shared secret. *)

val public_to_bytes : group -> public_value -> string
val public_of_bytes : string -> public_value
