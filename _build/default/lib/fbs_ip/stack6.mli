(** FBS over IPv6, packet level: security flow header between the base
    header and the payload, IPv6 flow label stamped from the sfl. *)

open Fbsr_netsim

val seal_packet :
  Fbsr_fbs.Engine.t ->
  now:float ->
  src:Ipv6.Addr6.t ->
  dst:Ipv6.Addr6.t ->
  next_header:int ->
  ?hop_limit:int ->
  ?src_port:int ->
  ?dst_port:int ->
  secret:bool ->
  string ->
  ((string, Fbsr_fbs.Engine.error) result -> unit) ->
  unit

type opened = {
  header : Ipv6.header;
  accepted : Fbsr_fbs.Engine.accepted;
  label_consistent : bool;
}

type error = Bad_ipv6 of string | Fbs of Fbsr_fbs.Engine.error

val open_packet :
  Fbsr_fbs.Engine.t -> now:float -> string -> ((opened, error) result -> unit) -> unit
