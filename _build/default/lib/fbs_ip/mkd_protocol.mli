(** MKD <-> certificate-authority wire protocol (travels via the secure
    flow bypass, deliberately unprotected — certificates are self-securing). *)

type message =
  | Request of string
  | Certificate of Fbsr_cert.Certificate.t
  | Failure of string

val encode : message -> string

exception Bad_message of string

val decode : string -> message

val default_port : int
