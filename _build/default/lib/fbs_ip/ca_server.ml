(* The certificate authority as a network service: a host that answers MKD
   certificate requests over UDP.  This is the "certificate authority on
   the network" of Section 5.3; in the paper's deployment picture it could
   equally be a secure DNS server. *)

open Fbsr_netsim

type t = {
  host : Host.t;
  authority : Fbsr_cert.Authority.t;
  port : int;
  mutable requests_served : int;
  mutable requests_failed : int;
}

let serve t ~src ~src_port raw =
  match Mkd_protocol.decode raw with
  | exception Mkd_protocol.Bad_message _ -> t.requests_failed <- t.requests_failed + 1
  | Request name ->
      let reply =
        match Fbsr_cert.Authority.lookup t.authority name with
        | Some cert ->
            t.requests_served <- t.requests_served + 1;
            Mkd_protocol.Certificate cert
        | None ->
            t.requests_failed <- t.requests_failed + 1;
            Mkd_protocol.Failure ("no certificate for " ^ name)
      in
      Udp_stack.send t.host ~src_port:t.port ~dst:src ~dst_port:src_port
        (Mkd_protocol.encode reply)
  | Certificate _ | Failure _ ->
      (* Only requests are valid inbound. *)
      t.requests_failed <- t.requests_failed + 1

let install ?(port = Mkd_protocol.default_port) ~authority host =
  let t = { host; authority; port; requests_served = 0; requests_failed = 0 } in
  Udp_stack.listen host ~port (fun ~src ~src_port raw -> serve t ~src ~src_port raw);
  t

let requests_served t = t.requests_served
let requests_failed t = t.requests_failed
let addr t = Host.addr t.host
let port t = t.port
