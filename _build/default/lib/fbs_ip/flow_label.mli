(** FBS sfl -> IPv6 flow label bridging (the paper's QoS-flow coincidence,
    RFC 1809). *)

val of_sfl : Fbsr_fbs.Sfl.t -> int
(** Uniform 20-bit label derived from the sfl (CRC-32 fold). *)

val stamp_header : sfl:Fbsr_fbs.Sfl.t -> Fbsr_netsim.Ipv6.header -> Fbsr_netsim.Ipv6.header
val consistent : sfl:Fbsr_fbs.Sfl.t -> Fbsr_netsim.Ipv6.header -> bool
