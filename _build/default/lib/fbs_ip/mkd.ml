(* The master key daemon (MKD), client side.

   Figure 5 of the paper places the MKD in user space: it serves PVC
   misses by fetching public-value certificates from the certificate
   authority over the network (through the secure flow bypass) and hands
   them back to the in-kernel FBS engine.  "PVC cache misses ... are
   extremely expensive.  It incurs at the minimum a round trip
   communication delay."

   This implementation is a UDP client with per-name request coalescing,
   retransmission and a bounded retry budget.  It implements the
   [Keying.resolver] interface, so a PVC miss suspends the datagram in the
   FBS stack until the continuation fires. *)

open Fbsr_netsim

type pending = {
  name : string;
  mutable continuations : (Fbsr_fbs.Keying.fetch_result -> unit) list;
  mutable attempts : int;
  mutable generation : int; (* invalidates stale timeout events *)
}

type t = {
  host : Host.t;
  ca_addr : Addr.t;
  ca_port : int;
  local_port : int;
  timeout : float;
  max_attempts : int;
  pending : (string, pending) Hashtbl.t;
  mutable fetches : int;
  mutable retransmissions : int;
  mutable failures : int;
}

let send_request t name =
  Udp_stack.send t.host ~src_port:t.local_port ~dst:t.ca_addr ~dst_port:t.ca_port
    (Mkd_protocol.encode (Mkd_protocol.Request name))

let complete t name result =
  match Hashtbl.find_opt t.pending name with
  | None -> ()
  | Some p ->
      Hashtbl.remove t.pending name;
      p.generation <- p.generation + 1;
      if Result.is_error result then t.failures <- t.failures + 1;
      List.iter (fun k -> k result) (List.rev p.continuations)

let rec arm_timeout t p =
  let gen = p.generation in
  Engine.schedule (Host.engine t.host) ~delay:t.timeout (fun () ->
      if gen = p.generation && Hashtbl.mem t.pending p.name then begin
        if p.attempts >= t.max_attempts then
          complete t p.name (Error "certificate fetch timed out")
        else begin
          p.attempts <- p.attempts + 1;
          t.retransmissions <- t.retransmissions + 1;
          send_request t p.name;
          arm_timeout t p
        end
      end)

let handle_response t raw =
  match Mkd_protocol.decode raw with
  | exception Mkd_protocol.Bad_message _ -> ()
  | Mkd_protocol.Certificate cert ->
      complete t cert.Fbsr_cert.Certificate.subject (Ok cert)
  | Mkd_protocol.Failure msg -> (
      (* The failure does not name the subject; fail the oldest pending
         request conservatively only if there is exactly one. *)
      match Hashtbl.fold (fun _ p acc -> p :: acc) t.pending [] with
      | [ p ] -> complete t p.name (Error msg)
      | _ -> ())
  | Mkd_protocol.Request _ -> ()

let fetch t name k =
  match Hashtbl.find_opt t.pending name with
  | Some p -> p.continuations <- k :: p.continuations
  | None ->
      t.fetches <- t.fetches + 1;
      let p = { name; continuations = [ k ]; attempts = 1; generation = 0 } in
      Hashtbl.replace t.pending name p;
      send_request t name;
      arm_timeout t p

let create ?(local_port = 563) ?(timeout = 2.0) ?(max_attempts = 3) ~ca_addr ~ca_port
    host =
  let t =
    {
      host;
      ca_addr;
      ca_port;
      local_port;
      timeout;
      max_attempts;
      pending = Hashtbl.create 8;
      fetches = 0;
      retransmissions = 0;
      failures = 0;
    }
  in
  Udp_stack.listen host ~port:local_port (fun ~src ~src_port:_ raw ->
      if Addr.equal src ca_addr then handle_response t raw);
  t

let resolver t : Fbsr_fbs.Keying.resolver =
 fun peer k -> fetch t (Fbsr_fbs.Principal.to_string peer) k

type stats = { fetches : int; retransmissions : int; failures : int }

let stats (t : t) =
  { fetches = t.fetches; retransmissions = t.retransmissions; failures = t.failures }
