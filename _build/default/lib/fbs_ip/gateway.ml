(* Gateway-to-gateway FBS (paper, Section 7.1): "At the IP level,
   host/gateway to host/gateway security can be easily provided.  This can
   be done by encrypting all datagrams going from one host/gateway to
   another."

   A security gateway fronts a trusted site segment.  Traffic from inside
   hosts to remote sites is encapsulated whole (IP-in-IP, protocol 4) in a
   gateway-to-gateway datagram; the gateway's own FBS stack then protects
   the tunnel.  Inside hosts run no FBS at all, and since the tunneled
   conversations have no ports visible to the gateway's classifier, the
   flows are gateway-pair-level — precisely the coarse policy the paper
   describes (finer conversation-level protection is what the rest of
   Section 7.1 refines).

   The receiving gateway decapsulates after FBS verification and delivers
   the untouched inner datagram onto its own site segment. *)

open Fbsr_netsim

let protocol_ipip = 4

type peer_route = { network : Addr.t; prefix : int; gateway : Addr.t }

type counters = {
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable no_route : int;
  mutable bad_inner : int;
}

type t = {
  inside : Medium.t;
  outer : Host.t; (* FBS-protected host on the backbone *)
  mutable peers : peer_route list;
  counters : counters;
}

let route_for t dst =
  List.find_opt (fun p -> Addr.in_subnet ~network:p.network ~prefix:p.prefix dst) t.peers

(* Frames from the inside segment addressed off-site arrive here (inside
   hosts use the gateway's inside address as their default gateway). *)
let from_inside t raw =
  match Ipv4.decode raw with
  | exception Ipv4.Bad_packet _ -> t.counters.bad_inner <- t.counters.bad_inner + 1
  | h, _ -> (
      match route_for t h.Ipv4.dst with
      | Some peer ->
          t.counters.encapsulated <- t.counters.encapsulated + 1;
          (* The whole inner datagram becomes the payload of a
             gateway-to-gateway datagram; the outer host's FBS hook then
             protects it like any other payload. *)
          Host.ip_output t.outer ~protocol:protocol_ipip ~dst:peer.gateway raw
      | None -> t.counters.no_route <- t.counters.no_route + 1)

(* Tunnel arrivals: FBS verification already happened in the outer host's
   input hook; [payload] is the inner datagram, delivered onto the site
   segment unchanged. *)
let from_tunnel t (_ : Host.t) (_ : Ipv4.header) payload =
  match Ipv4.decode payload with
  | exception Ipv4.Bad_packet _ -> t.counters.bad_inner <- t.counters.bad_inner + 1
  | inner, _ ->
      t.counters.decapsulated <- t.counters.decapsulated + 1;
      Medium.transmit t.inside ~dst:inner.Ipv4.dst payload

let create ~inside ~inside_addr ~outer () =
  let t =
    {
      inside;
      outer;
      peers = [];
      counters = { encapsulated = 0; decapsulated = 0; no_route = 0; bad_inner = 0 };
    }
  in
  (* The gateway's inside interface accepts every frame handed to its
     address and tunnels the off-site ones. *)
  Medium.attach inside ~addr:inside_addr ~deliver:(fun raw -> from_inside t raw);
  Host.register_protocol outer ~protocol:protocol_ipip (from_tunnel t);
  t

let add_peer t ~network ~prefix ~gateway =
  t.peers <- { network; prefix; gateway } :: t.peers

let counters t = t.counters
let outer t = t.outer
