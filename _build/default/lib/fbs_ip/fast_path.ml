(* The Section 7.2 combined fast path.

   "For efficiency reasons, we have combined the flow association mechanism
   and the flow key generation.  More specifically, FBSSend() hashes on the
   5-tuple ... and uses the result as an index into the TFKC.  If the
   indexed entry is 'active' (last use is less than THRESHOLD ago), it uses
   the stored flow key.  Otherwise, it begins a new flow by assigning a new
   sfl and calculating the new flow key.  In this way, the mapper module
   and the key cache lookup are combined (by combining the FST and the
   TFKC), thus saving an extra lookup.  The job of the sweeper module also
   becomes implicit as it is absorbed into the mapping phase."

   One direct-mapped table holds (5-tuple, sfl, flow key, last use); a
   single CRC-32 probe replaces the FAM classification plus the TFKC
   lookup of the generic path.  Collisions evict (footnote 11). *)

type entry = {
  mutable valid : bool;
  mutable protocol : int;
  mutable src : string;
  mutable src_port : int;
  mutable dst : string;
  mutable dst_port : int;
  mutable sfl : Fbsr_fbs.Sfl.t;
  mutable flow_key : string;
  mutable last : float;
}

type counters = {
  mutable hits : int;
  mutable misses : int; (* fresh flows: expiry, cold, or collision *)
  mutable collisions : int;
}

type t = {
  table : entry array;
  threshold : float;
  alloc : Fbsr_fbs.Sfl.allocator;
  counters : counters;
}

let fresh_entry () =
  {
    valid = false;
    protocol = 0;
    src = "";
    src_port = 0;
    dst = "";
    dst_port = 0;
    sfl = Fbsr_fbs.Sfl.of_int64 0L;
    flow_key = "";
    last = 0.0;
  }

let create ?(size = 256) ?(threshold = 600.0) ~alloc () =
  if size <= 0 then invalid_arg "Fast_path.create: size must be positive";
  {
    table = Array.init size (fun _ -> fresh_entry ());
    threshold;
    alloc;
    counters = { hits = 0; misses = 0; collisions = 0 };
  }

let counters t = t.counters

type lookup =
  | Hit of Fbsr_fbs.Sfl.t * string (* active entry: sfl and flow key *)
  | Miss of Fbsr_fbs.Sfl.t (* new flow started; key must be derived *)

(* One probe: classification and key lookup in a single table access. *)
let lookup t ~now ~protocol ~src ~src_port ~dst ~dst_port =
  let i =
    Fbsr_fbs.Policy_five_tuple.tuple_hash ~protocol ~src ~src_port ~dst ~dst_port
    mod Array.length t.table
  in
  let e = t.table.(i) in
  let matches =
    e.valid && e.protocol = protocol && e.src_port = src_port && e.dst_port = dst_port
    && String.equal e.src src && String.equal e.dst dst
  in
  if matches && now -. e.last <= t.threshold && e.flow_key <> "" then begin
    e.last <- now;
    t.counters.hits <- t.counters.hits + 1;
    Hit (e.sfl, e.flow_key)
  end
  else if matches && now -. e.last <= t.threshold then begin
    (* Entry is live but its key derivation is still in flight (an MKD
       fetch is round-tripping).  Keep the flow: same sfl, and let the
       caller wait on the coalesced derivation rather than restarting. *)
    e.last <- now;
    t.counters.misses <- t.counters.misses + 1;
    Miss e.sfl
  end
  else begin
    if e.valid && not matches then t.counters.collisions <- t.counters.collisions + 1;
    t.counters.misses <- t.counters.misses + 1;
    let sfl = Fbsr_fbs.Sfl.fresh t.alloc in
    e.valid <- true;
    e.protocol <- protocol;
    e.src <- src;
    e.src_port <- src_port;
    e.dst <- dst;
    e.dst_port <- dst_port;
    e.sfl <- sfl;
    e.flow_key <- ""; (* pending derivation *)
    e.last <- now;
    Miss sfl
  end

(* Install the derived key for the entry currently holding [sfl] (it may
   have been evicted meanwhile — then the key is simply not cached, which
   is fine for soft state). *)
let install_key t ~sfl ~flow_key =
  Array.iter
    (fun e -> if e.valid && Fbsr_fbs.Sfl.equal e.sfl sfl then e.flow_key <- flow_key)
    t.table

let active t ~now =
  Array.fold_left
    (fun n e -> if e.valid && now -. e.last <= t.threshold then n + 1 else n)
    0 t.table
