(** Gateway-to-gateway FBS (Section 7.1's host/gateway granularity):
    IP-in-IP tunneling between site gateways whose outer hosts run the FBS
    stack; inside hosts need no FBS at all. *)

open Fbsr_netsim

val protocol_ipip : int

type counters = {
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable no_route : int;
  mutable bad_inner : int;
}

type t

val create : inside:Medium.t -> inside_addr:Addr.t -> outer:Host.t -> unit -> t
(** [outer] should already have an FBS {!Stack} installed; inside hosts
    must use [inside_addr] as their default gateway. *)

val add_peer : t -> network:Addr.t -> prefix:int -> gateway:Addr.t -> unit
val counters : t -> counters
val outer : t -> Host.t
