(** Certificate authority as a simulated network service (UDP). *)

open Fbsr_netsim

type t

val install : ?port:int -> authority:Fbsr_cert.Authority.t -> Host.t -> t
(** The host must already have a UDP stack installed. *)

val requests_served : t -> int
val requests_failed : t -> int
val addr : t -> Addr.t
val port : t -> int
