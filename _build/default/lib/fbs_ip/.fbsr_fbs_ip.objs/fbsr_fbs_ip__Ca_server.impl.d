lib/fbs_ip/ca_server.ml: Fbsr_cert Fbsr_netsim Host Mkd_protocol Udp_stack
