lib/fbs_ip/stack.mli: Addr Fast_path Fbsr_crypto Fbsr_fbs Fbsr_netsim Host
