lib/fbs_ip/mkd_protocol.mli: Fbsr_cert
