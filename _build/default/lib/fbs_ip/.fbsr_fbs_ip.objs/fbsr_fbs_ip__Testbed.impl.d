lib/fbs_ip/testbed.ml: Addr Ca_server Engine Fbsr_cert Fbsr_crypto Fbsr_netsim Fbsr_util Host Lazy Medium Minitcp Mkd Stack Udp_stack
