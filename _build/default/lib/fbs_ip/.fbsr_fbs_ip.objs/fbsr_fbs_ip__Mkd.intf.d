lib/fbs_ip/mkd.mli: Addr Fbsr_fbs Fbsr_netsim Host
