lib/fbs_ip/testbed.mli: Addr Ca_server Engine Fbsr_cert Fbsr_crypto Fbsr_netsim Host Medium Mkd Stack
