lib/fbs_ip/mkd_protocol.ml: Byte_reader Byte_writer Fbsr_cert Fbsr_util Printf String
