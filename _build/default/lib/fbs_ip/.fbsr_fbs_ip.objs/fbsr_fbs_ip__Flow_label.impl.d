lib/fbs_ip/flow_label.ml: Fbsr_fbs Fbsr_netsim Fbsr_util
