lib/fbs_ip/ca_server.mli: Addr Fbsr_cert Fbsr_netsim Host
