lib/fbs_ip/gateway.ml: Addr Fbsr_netsim Host Ipv4 List Medium
