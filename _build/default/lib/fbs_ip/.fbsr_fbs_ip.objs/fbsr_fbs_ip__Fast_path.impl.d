lib/fbs_ip/fast_path.ml: Array Fbsr_fbs String
