lib/fbs_ip/stack.ml: Addr Char Engine Fast_path Fbsr_fbs Fbsr_netsim Fbsr_util Host Ipv4 Minitcp Printf String
