lib/fbs_ip/mkd.ml: Addr Engine Fbsr_cert Fbsr_fbs Fbsr_netsim Hashtbl Host List Mkd_protocol Result Udp_stack
