lib/fbs_ip/stack6.ml: Fbsr_fbs Fbsr_netsim Flow_label Ipv6 String
