lib/fbs_ip/flow_label.mli: Fbsr_fbs Fbsr_netsim
