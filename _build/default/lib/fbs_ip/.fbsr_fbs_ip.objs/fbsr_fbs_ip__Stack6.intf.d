lib/fbs_ip/stack6.mli: Fbsr_fbs Fbsr_netsim Ipv6
