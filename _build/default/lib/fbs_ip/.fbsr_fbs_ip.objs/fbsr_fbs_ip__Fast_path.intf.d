lib/fbs_ip/fast_path.mli: Fbsr_fbs
