lib/fbs_ip/gateway.mli: Addr Fbsr_netsim Host Medium
