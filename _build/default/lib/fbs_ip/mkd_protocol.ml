(* Wire protocol between a host's master key daemon (MKD) and the
   certificate authority server.

   The paper (Section 5.3): "In case of a cache miss, the public value
   certificate must be fetched from some certificate authority on the
   network.  The fetch request should not and need not be secure" —
   securing it would create a circular dependency, and the certificate is
   verified on receipt anyway.  These messages therefore travel through the
   secure flow *bypass*.

   Request:  "FBSC" u8 version=1 u8 op=1 u16 name_len | name
   Response: "FBSC" u8 version=1 u8 op=2 u16 cert_len | cert
             "FBSC" u8 version=1 u8 op=3 u16 msg_len  | error message *)

open Fbsr_util

let magic = "FBSC"
let version = 1

type message =
  | Request of string (* principal name *)
  | Certificate of Fbsr_cert.Certificate.t
  | Failure of string

let encode msg =
  let w = Byte_writer.create () in
  Byte_writer.bytes w magic;
  Byte_writer.u8 w version;
  (match msg with
  | Request name ->
      Byte_writer.u8 w 1;
      Byte_writer.u16 w (String.length name);
      Byte_writer.bytes w name
  | Certificate cert ->
      let raw = Fbsr_cert.Certificate.encode cert in
      Byte_writer.u8 w 2;
      Byte_writer.u16 w (String.length raw);
      Byte_writer.bytes w raw
  | Failure msg ->
      Byte_writer.u8 w 3;
      Byte_writer.u16 w (String.length msg);
      Byte_writer.bytes w msg);
  Byte_writer.contents w

exception Bad_message of string

let decode raw =
  let r = Byte_reader.of_string raw in
  try
    if Byte_reader.bytes r 4 <> magic then raise (Bad_message "bad magic");
    if Byte_reader.u8 r <> version then raise (Bad_message "bad version");
    let op = Byte_reader.u8 r in
    let len = Byte_reader.u16 r in
    let body = Byte_reader.bytes r len in
    match op with
    | 1 -> Request body
    | 2 -> (
        match Fbsr_cert.Certificate.decode body with
        | cert -> Certificate cert
        | exception Fbsr_cert.Certificate.Bad_certificate m -> raise (Bad_message m))
    | 3 -> Failure body
    | n -> raise (Bad_message (Printf.sprintf "unknown op %d" n))
  with Byte_reader.Truncated -> raise (Bad_message "truncated")

let default_port = 562 (* an unassigned low port for the key service *)
