(* Bridging FBS security flow labels onto IPv6 flow labels.

   The paper closes by observing that "in some cases, our notion of flow
   coincides with other notions of flow that have been proposed, e.g., QoS
   flows", and cites RFC 1809 (using the IPv6 flow label) alongside IPv6
   itself.  This module makes the coincidence concrete: an FBS sender can
   stamp the IPv6 header's 20-bit flow label with a value derived from the
   64-bit sfl, so routers give consistent special handling to exactly the
   datagram sequences FBS protects — without learning anything about the
   keys (the label is a public hash of an already-public header field).

   RFC 1809 asks that labels be drawn uniformly so routers can hash them
   directly; the CRC-32 fold provides that even though sfls are
   sequential. *)

let of_sfl sfl =
  Fbsr_util.Crc32.update_int64 0 (Fbsr_fbs.Sfl.to_int64 sfl) land Fbsr_netsim.Ipv6.max_flow_label

(* Stamp an IPv6 header for a datagram in flow [sfl]. *)
let stamp_header ~sfl (h : Fbsr_netsim.Ipv6.header) = { h with Fbsr_netsim.Ipv6.flow_label = of_sfl sfl }

(* The property routers rely on: all datagrams of one FBS flow carry one
   label, and distinct concurrent flows almost surely get distinct labels
   (20-bit space; collisions are harmless — they only merge QoS treatment,
   never security). *)
let consistent ~sfl (h : Fbsr_netsim.Ipv6.header) = h.Fbsr_netsim.Ipv6.flow_label = of_sfl sfl
