(** The Section 7.2 combined FST+TFKC fast path: one direct-mapped table
    probe serves both flow association and flow-key lookup; the sweeper is
    implicit in the THRESHOLD check. *)

type t

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
}

val create : ?size:int -> ?threshold:float -> alloc:Fbsr_fbs.Sfl.allocator -> unit -> t
val counters : t -> counters

type lookup = Hit of Fbsr_fbs.Sfl.t * string | Miss of Fbsr_fbs.Sfl.t

val lookup :
  t ->
  now:float ->
  protocol:int ->
  src:string ->
  src_port:int ->
  dst:string ->
  dst_port:int ->
  lookup

val install_key : t -> sfl:Fbsr_fbs.Sfl.t -> flow_key:string -> unit
val active : t -> now:float -> int
